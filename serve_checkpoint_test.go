package fistful

import (
	"bytes"
	"testing"

	"repro/internal/serve"
)

// TestServeCheckpointResumeEquivalence extends the snapshot-equivalence
// contract across a restart: ingest half the chain, checkpoint, restore into
// a fresh Ingester, finish the chain there, and require every published
// snapshot — including the one straight off the restore — to answer
// identically to a batch pipeline over the same prefix. Finally, the resumed
// ingester's own checkpoint must be byte-identical to one from a cold
// ingester that (with the same publish schedule) applied the whole chain in
// one life: resume loses nothing, down to the last serialized byte.
func TestServeCheckpointResumeEquivalence(t *testing.T) {
	w := serveWorld(t)
	const workers = 2
	an := analysisFromWorld(w, workers)
	blocks := w.Chain.Blocks()
	half := len(blocks) / 2

	ing := serve.NewIngester(an)
	for h, b := range blocks[:half] {
		if err := ing.ApplyBlock(b); err != nil {
			t.Fatalf("apply height %d: %v", h, err)
		}
	}
	ing.Publish()

	var ckpt bytes.Buffer
	if err := ing.WriteCheckpoint(&ckpt); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}

	// "Restart": everything the daemon knew is gone except the checkpoint.
	resumed, err := serve.ReadCheckpoint(an, bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	restoredSnap := resumed.Snapshot()
	assertSnapshotMatchesBatch(t, restoredSnap, batchAtHeight(t, w, restoredSnap.Height, workers))

	for h, b := range blocks[half:] {
		if err := resumed.ApplyBlock(b); err != nil {
			t.Fatalf("apply height %d after resume: %v", half+h, err)
		}
	}
	final := resumed.Publish()
	assertSnapshotMatchesBatch(t, final, batchAtHeight(t, w, final.Height, workers))

	// Cold reference with the identical publish schedule (publish counts
	// feed the epoch in the checkpoint header, so they must line up; the
	// restore itself republished once, mirrored by an extra Publish here).
	cold := serve.NewIngester(an)
	for _, b := range blocks[:half] {
		if err := cold.ApplyBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	cold.Publish()
	cold.Publish() // mirrors ReadCheckpoint's publish on the resumed path
	for _, b := range blocks[half:] {
		if err := cold.ApplyBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	cold.Publish()

	var fromResumed, fromCold bytes.Buffer
	if err := resumed.WriteCheckpoint(&fromResumed); err != nil {
		t.Fatal(err)
	}
	if err := cold.WriteCheckpoint(&fromCold); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromResumed.Bytes(), fromCold.Bytes()) {
		t.Fatal("checkpoint after resume is not byte-identical to a cold rebuild's")
	}
}
