package fistful

import (
	"fmt"

	"repro/internal/econ"
	"repro/internal/par"
	"repro/internal/report"
)

// The paper's conclusion leaves "a quantitative analysis of this
// hypothesis" — how much user effort it takes to thwart the heuristics —
// "as an interesting open problem". EvasionStudy is this repository's
// implementation of that extension: it regenerates the economy under
// increasingly disciplined idioms of use and measures how much analytic
// power each heuristic loses.

// EvasionLevel describes one rung of user discipline.
type EvasionLevel struct {
	Name string
	// Mutate adjusts the economy configuration to this discipline level.
	Mutate func(*econ.Config)
}

// DefaultEvasionLevels returns the three rungs the study runs: the observed
// 2013 idioms, a cautious population (no address reuse, no change
// handouts), and a paranoid one (additionally no cross-service transfers
// and no anomalous service change behaviour).
func DefaultEvasionLevels() []EvasionLevel {
	return []EvasionLevel{
		{Name: "2013 idioms", Mutate: func(*econ.Config) {}},
		{Name: "cautious", Mutate: func(c *econ.Config) {
			c.AddressReuseProb = 0
			c.SelfChangeProb = 0
		}},
		{Name: "paranoid", Mutate: func(c *econ.Config) {
			c.AddressReuseProb = 0
			c.SelfChangeProb = 0
			c.ChangeReuseProb = 0
			c.ServiceSelfChangeProb = 0
			c.DiceBetProb = 0
		}},
	}
}

// EvasionRow is the measured analytic power at one discipline level.
type EvasionRow struct {
	Level string
	// H2Labeled is how many change addresses the refined heuristic links.
	H2Labeled int
	// NamedAddresses is the tag-amplified coverage.
	NamedAddresses int
	// Amplification is coverage relative to the tagged bootstrap set.
	Amplification float64
	// NaiveContaminated counts ground-truth false merges of the unrefined
	// heuristic (evasion also starves the attacker's mistakes).
	NaiveContaminated int
}

// EvasionStudy generates one economy per level (same seed and scale) and
// reports the heuristics' yield at each, with one worker per CPU. It is not
// part of the default experiment suite because it runs several full
// generations.
func EvasionStudy(base Config, levels []EvasionLevel) (*report.Table, []EvasionRow, error) {
	return EvasionStudyOpts(base, levels, Options{})
}

// EvasionStudyOpts is EvasionStudy with execution options. The levels are
// fully independent — each regenerates its own economy and pipeline — so
// they fan out, dividing the worker budget between concurrent levels and
// their inner pipelines; the report always lists them in input order. Note
// the memory trade-off: with Parallelism > 1, up to that many generated
// economies are held in memory at once, where Parallelism 1 restores the
// old one-at-a-time footprint.
func EvasionStudyOpts(base Config, levels []EvasionLevel, opts Options) (*report.Table, []EvasionRow, error) {
	if levels == nil {
		levels = DefaultEvasionLevels()
	}
	t := &report.Table{
		Title:   "Evasion study — the paper's open problem, quantified",
		Headers: []string{"discipline", "refined H2 labels", "named addrs", "amplification", "naive false merges"},
	}
	workers := par.Workers(opts.Parallelism)
	outer := len(levels)
	if outer > workers {
		outer = workers
	}
	if outer < 1 {
		outer = 1 // empty non-nil levels: no tasks, but keep the math defined
	}
	inner := par.Split(workers, outer)
	rows := make([]EvasionRow, len(levels))
	grp := par.NewGroup(outer)
	for i := range levels {
		i, lvl := i, levels[i]
		grp.Go(func() error {
			cfg := base
			lvl.Mutate(&cfg)
			if cfg.SignWorkers == 0 {
				cfg.SignWorkers = inner
			}
			w, err := econ.Generate(cfg)
			if err != nil {
				return fmt.Errorf("fistful: evasion level %q: %w", lvl.Name, err)
			}
			p, err := NewPipelineFromWorldOpts(w, Options{Parallelism: inner})
			if err != nil {
				return err
			}
			naive := p.Naive.EvaluateAgainstOwners(p.Owners)
			rows[i] = EvasionRow{
				Level:             lvl.Name,
				H2Labeled:         len(p.Refined.ChangeLabels),
				NamedAddresses:    p.Naming.NamedAddresses,
				Amplification:     p.Naming.Amplification,
				NaiveContaminated: naive.Contaminated,
			}
			return nil
		})
	}
	if err := grp.Wait(); err != nil {
		return nil, nil, err
	}
	for _, row := range rows {
		t.AddRow(row.Level, row.H2Labeled, row.NamedAddresses,
			fmt.Sprintf("%.1fx", row.Amplification), row.NaiveContaminated)
	}
	t.Notes = append(t.Notes,
		"paper: \"to completely thwart our heuristics would require a significant effort on the part of the user\" (Section 6)",
		"each row regenerates the same economy under stricter idioms of use; analytic yield should fall monotonically")
	return t, rows, nil
}
