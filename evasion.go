package fistful

import (
	"fmt"

	"repro/internal/econ"
	"repro/internal/report"
)

// The paper's conclusion leaves "a quantitative analysis of this
// hypothesis" — how much user effort it takes to thwart the heuristics —
// "as an interesting open problem". EvasionStudy is this repository's
// implementation of that extension: it regenerates the economy under
// increasingly disciplined idioms of use and measures how much analytic
// power each heuristic loses.

// EvasionLevel describes one rung of user discipline.
type EvasionLevel struct {
	Name string
	// Mutate adjusts the economy configuration to this discipline level.
	Mutate func(*econ.Config)
}

// DefaultEvasionLevels returns the three rungs the study runs: the observed
// 2013 idioms, a cautious population (no address reuse, no change
// handouts), and a paranoid one (additionally no cross-service transfers
// and no anomalous service change behaviour).
func DefaultEvasionLevels() []EvasionLevel {
	return []EvasionLevel{
		{Name: "2013 idioms", Mutate: func(*econ.Config) {}},
		{Name: "cautious", Mutate: func(c *econ.Config) {
			c.AddressReuseProb = 0
			c.SelfChangeProb = 0
		}},
		{Name: "paranoid", Mutate: func(c *econ.Config) {
			c.AddressReuseProb = 0
			c.SelfChangeProb = 0
			c.ChangeReuseProb = 0
			c.ServiceSelfChangeProb = 0
			c.DiceBetProb = 0
		}},
	}
}

// EvasionRow is the measured analytic power at one discipline level.
type EvasionRow struct {
	Level string
	// H2Labeled is how many change addresses the refined heuristic links.
	H2Labeled int
	// NamedAddresses is the tag-amplified coverage.
	NamedAddresses int
	// Amplification is coverage relative to the tagged bootstrap set.
	Amplification float64
	// NaiveContaminated counts ground-truth false merges of the unrefined
	// heuristic (evasion also starves the attacker's mistakes).
	NaiveContaminated int
}

// EvasionStudy generates one economy per level (same seed and scale) and
// reports the heuristics' yield at each. It is not part of the default
// experiment suite because it runs several full generations.
func EvasionStudy(base Config, levels []EvasionLevel) (*report.Table, []EvasionRow, error) {
	if levels == nil {
		levels = DefaultEvasionLevels()
	}
	t := &report.Table{
		Title:   "Evasion study — the paper's open problem, quantified",
		Headers: []string{"discipline", "refined H2 labels", "named addrs", "amplification", "naive false merges"},
	}
	var rows []EvasionRow
	for _, lvl := range levels {
		cfg := base
		lvl.Mutate(&cfg)
		w, err := econ.Generate(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("fistful: evasion level %q: %w", lvl.Name, err)
		}
		p, err := NewPipelineFromWorld(w)
		if err != nil {
			return nil, nil, err
		}
		naive := p.Naive.EvaluateAgainstOwners(p.Owners)
		row := EvasionRow{
			Level:             lvl.Name,
			H2Labeled:         len(p.Refined.ChangeLabels),
			NamedAddresses:    p.Naming.NamedAddresses,
			Amplification:     p.Naming.Amplification,
			NaiveContaminated: naive.Contaminated,
		}
		rows = append(rows, row)
		t.AddRow(lvl.Name, row.H2Labeled, row.NamedAddresses,
			fmt.Sprintf("%.1fx", row.Amplification), row.NaiveContaminated)
	}
	t.Notes = append(t.Notes,
		"paper: \"to completely thwart our heuristics would require a significant effort on the part of the user\" (Section 6)",
		"each row regenerates the same economy under stricter idioms of use; analytic yield should fall monotonically")
	return t, rows, nil
}
