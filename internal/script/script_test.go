package script

import (
	"testing"

	"repro/internal/address"
)

func TestClassify(t *testing.T) {
	k := address.NewKeyFromSeed(1, 1)
	cases := []struct {
		name   string
		script []byte
		want   Class
	}{
		{"p2pkh", PayToAddr(k.Address()), P2PKH},
		{"p2pk", PayToPubKey(k.PubKey()), P2PK},
		{"nulldata", NullDataScript([]byte("hi")), NullData},
		{"empty", nil, NonStandard},
		{"garbage", []byte{0x01, 0x02, 0x03}, NonStandard},
		{"truncated p2pkh", PayToAddr(k.Address())[:20], NonStandard},
	}
	for _, c := range cases {
		if got := Classify(c.script); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestExtractAddressP2PKH(t *testing.T) {
	k := address.NewKeyFromSeed(1, 2)
	a, err := ExtractAddress(PayToAddr(k.Address()))
	if err != nil {
		t.Fatal(err)
	}
	if a != k.Address() {
		t.Fatalf("extracted %s, want %s", a, k.Address())
	}
}

func TestExtractAddressP2PK(t *testing.T) {
	k := address.NewKeyFromSeed(1, 3)
	a, err := ExtractAddress(PayToPubKey(k.PubKey()))
	if err != nil {
		t.Fatal(err)
	}
	if a != k.Address() {
		t.Fatalf("P2PK attributed to %s, want %s", a, k.Address())
	}
}

func TestExtractAddressNone(t *testing.T) {
	if _, err := ExtractAddress(NullDataScript([]byte("x"))); err != ErrNoAddress {
		t.Errorf("nulldata: err = %v, want ErrNoAddress", err)
	}
	if _, err := ExtractAddress([]byte{0xff}); err != ErrNoAddress {
		t.Errorf("nonstandard: err = %v, want ErrNoAddress", err)
	}
}

func TestVerifyP2PKH(t *testing.T) {
	k := address.NewKeyFromSeed(2, 1)
	var digest [32]byte
	digest[0] = 7
	pk := PayToAddr(k.Address())
	sig := SigScript(k.Sign(digest), k.PubKey())
	if err := Verify(pk, sig, digest); err != nil {
		t.Fatalf("valid spend rejected: %v", err)
	}
}

func TestVerifyP2PKHWrongKey(t *testing.T) {
	owner := address.NewKeyFromSeed(2, 2)
	thief := address.NewKeyFromSeed(2, 3)
	var digest [32]byte
	pk := PayToAddr(owner.Address())
	sig := SigScript(thief.Sign(digest), thief.PubKey())
	if err := Verify(pk, sig, digest); err == nil {
		t.Fatal("accepted spend with wrong key")
	}
}

func TestVerifyP2PKHWrongDigest(t *testing.T) {
	k := address.NewKeyFromSeed(2, 4)
	var d1, d2 [32]byte
	d2[0] = 1
	pk := PayToAddr(k.Address())
	sig := SigScript(k.Sign(d1), k.PubKey())
	if err := Verify(pk, sig, d2); err == nil {
		t.Fatal("accepted signature over a different digest")
	}
}

func TestVerifyP2PK(t *testing.T) {
	k := address.NewKeyFromSeed(2, 5)
	var digest [32]byte
	pk := PayToPubKey(k.PubKey())
	if err := Verify(pk, SigScriptP2PK(k.Sign(digest)), digest); err != nil {
		t.Fatalf("valid P2PK spend rejected: %v", err)
	}
	other := address.NewKeyFromSeed(2, 6)
	if err := Verify(pk, SigScriptP2PK(other.Sign(digest)), digest); err == nil {
		t.Fatal("accepted P2PK spend with wrong key")
	}
}

func TestVerifyRejectsUnspendable(t *testing.T) {
	var digest [32]byte
	if err := Verify(NullDataScript([]byte("data")), nil, digest); err == nil {
		t.Fatal("accepted OP_RETURN spend")
	}
	if err := Verify([]byte{0xde, 0xad}, nil, digest); err == nil {
		t.Fatal("accepted nonstandard spend")
	}
}

func TestVerifyMalformedSigScripts(t *testing.T) {
	k := address.NewKeyFromSeed(2, 7)
	var digest [32]byte
	pk := PayToAddr(k.Address())
	bad := [][]byte{
		nil,
		{},
		{75}, // truncated push
		append(SigScript(k.Sign(digest), k.PubKey()), 0x01, 0xff), // trailing bytes
		{OpPushData1},       // truncated pushdata1 header
		{OpPushData1, 0x10}, // truncated pushdata1 body
	}
	for i, s := range bad {
		if err := Verify(pk, s, digest); err == nil {
			t.Errorf("case %d: accepted malformed sigscript", i)
		}
	}
}

func TestReadPushPushData1(t *testing.T) {
	payload := make([]byte, 200)
	for i := range payload {
		payload[i] = byte(i)
	}
	s := append([]byte{OpPushData1, byte(len(payload))}, payload...)
	data, rest, err := readPush(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 200 || len(rest) != 0 {
		t.Fatalf("readPush: got %d data, %d rest", len(data), len(rest))
	}
}

func TestScriptRoundTripThroughAddress(t *testing.T) {
	// PayToAddr(ExtractAddress(s)) == s for all P2PKH scripts.
	for i := uint64(0); i < 20; i++ {
		k := address.NewKeyFromSeed(3, i)
		s := PayToAddr(k.Address())
		a, err := ExtractAddress(s)
		if err != nil {
			t.Fatal(err)
		}
		s2 := PayToAddr(a)
		if string(s) != string(s2) {
			t.Fatal("P2PKH script not canonical through address roundtrip")
		}
	}
}
