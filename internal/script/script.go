// Package script implements the minimal subset of Bitcoin's output-script
// language the analysis pipeline needs: building and recognizing standard
// pay-to-public-key-hash (P2PKH), pay-to-public-key (P2PK) and OP_RETURN
// scripts, extracting the destination address from an output, and a small
// stack machine that verifies spends.
package script

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/address"
)

// Opcode byte values, matching Bitcoin's where the opcode exists there.
const (
	OpPushData1   byte = 0x4c
	OpReturn      byte = 0x6a
	OpDup         byte = 0x76
	OpEqual       byte = 0x87
	OpEqualVerify byte = 0x88
	OpHash160     byte = 0xa9
	OpCheckSig    byte = 0xac
)

// Class identifies a standard script template.
type Class int

// Script classes recognized by Classify.
const (
	NonStandard Class = iota
	P2PKH
	P2PK
	NullData // OP_RETURN data carrier
)

// String names the class for diagnostics.
func (c Class) String() string {
	switch c {
	case P2PKH:
		return "p2pkh"
	case P2PK:
		return "p2pk"
	case NullData:
		return "nulldata"
	default:
		return "nonstandard"
	}
}

// PayToAddr builds the canonical P2PKH output script:
// OP_DUP OP_HASH160 <20-byte hash> OP_EQUALVERIFY OP_CHECKSIG.
func PayToAddr(a address.Address) []byte {
	s := make([]byte, 0, 25)
	s = append(s, OpDup, OpHash160, byte(address.HashLen))
	s = append(s, a.Hash[:]...)
	s = append(s, OpEqualVerify, OpCheckSig)
	return s
}

// PayToPubKey builds the P2PK output script: <pubkey> OP_CHECKSIG. Early
// coin generations used this form, and the simulator mirrors that for the
// first stretch of its timeline.
func PayToPubKey(pub []byte) []byte {
	s := make([]byte, 0, len(pub)+2)
	s = append(s, byte(len(pub)))
	s = append(s, pub...)
	s = append(s, OpCheckSig)
	return s
}

// NullDataScript builds an OP_RETURN data-carrier output.
func NullDataScript(data []byte) []byte {
	s := make([]byte, 0, len(data)+2)
	s = append(s, OpReturn, byte(len(data)))
	s = append(s, data...)
	return s
}

// SigScript builds the input script satisfying a P2PKH output:
// <sig> <pubkey>.
func SigScript(sig, pub []byte) []byte {
	s := make([]byte, 0, len(sig)+len(pub)+2)
	s = append(s, byte(len(sig)))
	s = append(s, sig...)
	s = append(s, byte(len(pub)))
	s = append(s, pub...)
	return s
}

// SigScriptP2PK builds the input script satisfying a P2PK output: <sig>.
func SigScriptP2PK(sig []byte) []byte {
	s := make([]byte, 0, len(sig)+1)
	s = append(s, byte(len(sig)))
	s = append(s, sig...)
	return s
}

// Classify identifies the standard template of an output script.
func Classify(pkScript []byte) Class {
	switch {
	case isP2PKH(pkScript):
		return P2PKH
	case isP2PK(pkScript):
		return P2PK
	case len(pkScript) >= 1 && pkScript[0] == OpReturn:
		return NullData
	default:
		return NonStandard
	}
}

func isP2PKH(s []byte) bool {
	return len(s) == 25 &&
		s[0] == OpDup && s[1] == OpHash160 && s[2] == address.HashLen &&
		s[23] == OpEqualVerify && s[24] == OpCheckSig
}

func isP2PK(s []byte) bool {
	return len(s) == address.PubKeyLen+2 &&
		s[0] == address.PubKeyLen &&
		s[len(s)-1] == OpCheckSig
}

// ErrNoAddress is returned by ExtractAddress for scripts that carry no
// spendable destination (OP_RETURN, nonstandard).
var ErrNoAddress = errors.New("script: no address in script")

// ExtractAddress returns the destination address of a standard output
// script. P2PK outputs are attributed to the address of their public key,
// matching how block-chain analyses (and the paper) treat them.
func ExtractAddress(pkScript []byte) (address.Address, error) {
	switch Classify(pkScript) {
	case P2PKH:
		var a address.Address
		a.Version = address.P2PKHVersion
		copy(a.Hash[:], pkScript[3:23])
		return a, nil
	case P2PK:
		pub := pkScript[1 : 1+address.PubKeyLen]
		return address.FromPubKey(pub), nil
	default:
		return address.Address{}, ErrNoAddress
	}
}

// Verification errors.
var (
	ErrScriptFormat = errors.New("script: malformed script")
	ErrBadSignature = errors.New("script: signature verification failed")
	ErrWrongKey     = errors.New("script: public key does not match output hash")
)

// Verify checks that sigScript satisfies pkScript for an input whose
// signature hash is sigHash. Only standard templates are accepted; the
// economy produces nothing else, and rejecting the rest keeps the validation
// surface small.
func Verify(pkScript, sigScript []byte, sigHash [32]byte) error {
	switch Classify(pkScript) {
	case P2PKH:
		sig, pub, err := parseSigScript(sigScript)
		if err != nil {
			return err
		}
		want := pkScript[3:23]
		got := address.Hash160(pub)
		if !bytes.Equal(want, got[:]) {
			return ErrWrongKey
		}
		if !address.Verify(pub, sig, sigHash) {
			return ErrBadSignature
		}
		return nil
	case P2PK:
		pub := pkScript[1 : 1+address.PubKeyLen]
		sig, err := parseSinglePush(sigScript)
		if err != nil {
			return err
		}
		if !address.Verify(pub, sig, sigHash) {
			return ErrBadSignature
		}
		return nil
	case NullData:
		return fmt.Errorf("%w: OP_RETURN outputs are unspendable", ErrScriptFormat)
	default:
		return fmt.Errorf("%w: nonstandard output", ErrScriptFormat)
	}
}

func parseSigScript(s []byte) (sig, pub []byte, err error) {
	sig, rest, err := readPush(s)
	if err != nil {
		return nil, nil, err
	}
	pub, rest, err = readPush(rest)
	if err != nil {
		return nil, nil, err
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("%w: trailing bytes in sigscript", ErrScriptFormat)
	}
	return sig, pub, nil
}

func parseSinglePush(s []byte) ([]byte, error) {
	data, rest, err := readPush(s)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in sigscript", ErrScriptFormat)
	}
	return data, nil
}

// readPush consumes one data push (direct length byte 1..75 or OP_PUSHDATA1)
// from the front of s.
func readPush(s []byte) (data, rest []byte, err error) {
	if len(s) == 0 {
		return nil, nil, fmt.Errorf("%w: empty push", ErrScriptFormat)
	}
	op := s[0]
	switch {
	case op >= 1 && op <= 75:
		n := int(op)
		if len(s) < 1+n {
			return nil, nil, fmt.Errorf("%w: truncated push", ErrScriptFormat)
		}
		return s[1 : 1+n], s[1+n:], nil
	case op == OpPushData1:
		if len(s) < 2 {
			return nil, nil, fmt.Errorf("%w: truncated pushdata1", ErrScriptFormat)
		}
		n := int(s[1])
		if len(s) < 2+n {
			return nil, nil, fmt.Errorf("%w: truncated pushdata1 body", ErrScriptFormat)
		}
		return s[2 : 2+n], s[2+n:], nil
	default:
		return nil, nil, fmt.Errorf("%w: unexpected opcode 0x%02x", ErrScriptFormat, op)
	}
}

// Verifier adapts Verify to the chain.ScriptVerifier interface.
type Verifier struct{}

// VerifyScript implements chain.ScriptVerifier.
func (Verifier) VerifyScript(pkScript, sigScript []byte, sigHash [32]byte) error {
	return Verify(pkScript, sigScript, sigHash)
}
