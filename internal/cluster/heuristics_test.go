package cluster

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/chaintest"
	"repro/internal/txgraph"
)

func buildGraph(t *testing.T, b *chaintest.Builder) *txgraph.Graph {
	t.Helper()
	g, err := txgraph.Build(b.Chain)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func id(t *testing.T, g *txgraph.Graph, b *chaintest.Builder, name string) txgraph.AddrID {
	t.Helper()
	aid, ok := g.LookupAddr(b.Addr(name))
	if !ok {
		t.Fatalf("address %q not in graph", name)
	}
	return aid
}

const btc = chain.Coin

func TestHeuristic1LinksCoSpentInputs(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("a1")
	b.Coinbase("a2")
	b.Coinbase("c1")
	b.Pay([]string{"a1", "a2"}, chaintest.Out{Name: "m", Value: 100 * btc})
	b.Mine(1)

	g := buildGraph(t, b)
	c := Heuristic1(g, 0)
	if !c.SameUser(id(t, g, b, "a1"), id(t, g, b, "a2")) {
		t.Fatal("co-spent inputs not merged")
	}
	if c.SameUser(id(t, g, b, "a1"), id(t, g, b, "c1")) {
		t.Fatal("unrelated addresses merged")
	}
	if c.SameUser(id(t, g, b, "a1"), id(t, g, b, "m")) {
		t.Fatal("H1 merged recipient with sender")
	}
}

func TestHeuristic1Transitive(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("a1")
	b.Coinbase("a2")
	b.Coinbase("a3")
	b.Pay([]string{"a1", "a2"}, chaintest.Out{Name: "x", Value: 100 * btc})
	b.Mine(1)
	b.Coinbase("a2b")
	// Link a2's owner to a3 via a second co-spend: give a2 more coins first.
	b.Pay([]string{"a2b", "a3"}, chaintest.Out{Name: "y", Value: 100 * btc})
	b.Mine(1)

	g := buildGraph(t, b)
	c := Heuristic1(g, 0)
	// a1–a2 share a tx; a2b–a3 share a tx; but a2 and a2b are different
	// addresses, so without another link a1 and a3 stay separate.
	if c.SameUser(id(t, g, b, "a1"), id(t, g, b, "a3")) {
		t.Fatal("merged across unlinked addresses")
	}
	b2 := chaintest.New(t)
	b2.Coinbase("a1")
	b2.Coinbase("a2")
	b2.Coinbase("a2x")
	b2.Coinbase("a3")
	b2.Pay([]string{"a1", "a2"}, chaintest.Out{Name: "x", Value: 100 * btc})
	b2.Mine(1)
	b2.Pay([]string{"a2x", "a3"}, chaintest.Out{Name: "y", Value: 100 * btc})
	b2.Mine(1)
	// Now link a2 and a2x by co-spending change... instead fund them again
	// and co-spend.
	b2.Coinbase("a2")
	b2.Coinbase("a2x")
	b2.Pay([]string{"a2", "a2x"}, chaintest.Out{Name: "z", Value: 100 * btc})
	b2.Mine(1)
	g2 := buildGraph(t, b2)
	c2 := Heuristic1(g2, 0)
	if !c2.SameUser(id(t, g2, b2, "a1"), id(t, g2, b2, "a3")) {
		t.Fatal("transitive closure failed: a1 and a3 should be one user")
	}
}

func TestHeuristic1Stats(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("a1")
	b.Pay([]string{"a1"}, chaintest.Out{Name: "sink1", Value: 20 * btc},
		chaintest.Out{Name: "sink2", Value: 30 * btc})
	b.Mine(1)

	g := buildGraph(t, b)
	c := Heuristic1(g, 0)
	s := c.ComputeStats()
	// Addresses: a1, sink1, sink2, miner (from Mine(1)).
	if s.Addresses != 4 {
		t.Fatalf("addresses = %d, want 4", s.Addresses)
	}
	if s.SinkAddresses != 3 { // sink1, sink2, miner never spend
		t.Fatalf("sinks = %d, want 3", s.SinkAddresses)
	}
	if s.SpenderClusters != 1 { // only a1 has spent
		t.Fatalf("spender clusters = %d, want 1", s.SpenderClusters)
	}
	if s.MaxUsers != 4 {
		t.Fatalf("max users = %d, want 4", s.MaxUsers)
	}
}

// changeScenario builds the canonical change situation: payer's coins split
// between a previously seen payee and a brand new change address.
func changeScenario(t *testing.T) (*chaintest.Builder, *chain.Tx) {
	b := chaintest.New(t)
	b.Coinbase("payer")
	b.Coinbase("payee") // payee appears on chain (condition 4 satisfied)
	tx := b.Pay([]string{"payer"},
		chaintest.Out{Name: "payee", Value: 10 * btc},
		chaintest.Out{Name: "change", Value: 40 * btc})
	b.Mine(1)
	return b, tx
}

func TestH2LabelsOneTimeChange(t *testing.T) {
	b, tx := changeScenario(t)
	g := buildGraph(t, b)
	labels, stats := FindChangeOutputs(g, Unrefined())
	if stats.Labeled != 1 {
		t.Fatalf("labeled = %d, want 1 (stats %+v)", stats.Labeled, stats)
	}
	seq, _ := g.LookupTx(tx.TxID())
	l := labels[0]
	if l.Tx != seq || l.Addr != id(t, g, b, "change") {
		t.Fatalf("wrong label %+v", l)
	}
	if l.FalsePositive {
		t.Fatal("clean change flagged as false positive")
	}

	c := Heuristic2(g, Unrefined(), 0)
	if !c.SameUser(id(t, g, b, "payer"), id(t, g, b, "change")) {
		t.Fatal("H2 did not merge change with payer")
	}
	if c.SameUser(id(t, g, b, "payer"), id(t, g, b, "payee")) {
		t.Fatal("H2 merged payee with payer")
	}
}

func TestH2Condition1_SeenAddressNotChange(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("payer")
	b.Coinbase("payee")
	b.Coinbase("oldaddr") // appears on chain before the payment
	b.Pay([]string{"payer"},
		chaintest.Out{Name: "payee", Value: 10 * btc},
		chaintest.Out{Name: "oldaddr", Value: 40 * btc})
	b.Mine(1)

	g := buildGraph(t, b)
	_, stats := FindChangeOutputs(g, Unrefined())
	if stats.Labeled != 0 {
		t.Fatalf("labeled = %d, want 0: both outputs were previously seen", stats.Labeled)
	}
}

func TestH2Condition2_CoinbaseNeverLabeled(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("pool")
	g := buildGraph(t, b)
	_, stats := FindChangeOutputs(g, Unrefined())
	if stats.Labeled != 0 {
		t.Fatalf("labeled coinbase output as change")
	}
}

func TestH2Condition3_SelfChangeSkipped(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("payer")
	b.Coinbase("payee")
	b.Pay([]string{"payer"},
		chaintest.Out{Name: "payee", Value: 10 * btc},
		chaintest.Out{Name: "fresh", Value: 20 * btc},
		chaintest.Out{Name: "payer", Value: 20 * btc}) // self-change present
	b.Mine(1)

	g := buildGraph(t, b)
	_, stats := FindChangeOutputs(g, Unrefined())
	if stats.Labeled != 0 {
		t.Fatal("labeled change in a self-change transaction")
	}
	if stats.SkippedSelf != 1 {
		t.Fatalf("SkippedSelf = %d, want 1", stats.SkippedSelf)
	}
}

func TestH2Condition4_TwoFreshIsAmbiguous(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("payer")
	b.Pay([]string{"payer"},
		chaintest.Out{Name: "fresh1", Value: 10 * btc},
		chaintest.Out{Name: "fresh2", Value: 40 * btc})
	b.Mine(1)

	g := buildGraph(t, b)
	_, stats := FindChangeOutputs(g, Unrefined())
	if stats.Labeled != 0 {
		t.Fatal("labeled change despite two fresh outputs")
	}
	if stats.Ambiguous != 1 {
		t.Fatalf("Ambiguous = %d, want 1", stats.Ambiguous)
	}
}

func TestH2TwoOutputsToOneFreshAddressAmbiguous(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("payer")
	b.Pay([]string{"payer"},
		chaintest.Out{Name: "dup", Value: 10 * btc},
		chaintest.Out{Name: "dup", Value: 20 * btc})
	b.Mine(1)

	g := buildGraph(t, b)
	_, stats := FindChangeOutputs(g, Unrefined())
	if stats.Labeled != 0 {
		t.Fatal("labeled change despite both outputs paying one fresh address")
	}
	if stats.Ambiguous != 1 {
		t.Fatalf("Ambiguous = %d, want 1", stats.Ambiguous)
	}
}

func TestH2SingleOutputNotLabeled(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("payer")
	b.Pay([]string{"payer"}, chaintest.Out{Name: "whole", Value: 50 * btc})
	b.Mine(1)
	g := buildGraph(t, b)
	_, stats := FindChangeOutputs(g, Unrefined())
	if stats.Labeled != 0 {
		t.Fatal("labeled the only output of a sweep as change")
	}
}

// reuseScenario: change address later receives another payment (reuse),
// which the temporal replay must flag as a false positive.
func reuseScenario(t *testing.T, gapBlocks int) (*chaintest.Builder, func(*txgraph.Graph) txgraph.AddrID) {
	b := chaintest.New(t)
	b.Coinbase("payer")
	b.Coinbase("payee")
	b.Coinbase("other")
	b.Pay([]string{"payer"},
		chaintest.Out{Name: "payee", Value: 10 * btc},
		chaintest.Out{Name: "change", Value: 40 * btc})
	b.Mine(1)
	b.Mine(gapBlocks)
	// Reuse: someone else pays the "change" address directly.
	b.Pay([]string{"other"}, chaintest.Out{Name: "change", Value: 1 * btc},
		chaintest.Out{Name: "payee", Value: 49 * btc})
	b.Mine(1)
	return b, func(g *txgraph.Graph) txgraph.AddrID { return id(t, g, b, "change") }
}

func TestH2ReuseCountedAsFalsePositive(t *testing.T) {
	b, _ := reuseScenario(t, 0)
	g := buildGraph(t, b)
	_, stats := FindChangeOutputs(g, Unrefined())
	if stats.Labeled < 1 {
		t.Fatalf("labeled = %d, want >= 1", stats.Labeled)
	}
	if stats.FalsePositives != 1 {
		t.Fatalf("FPs = %d, want 1 (stats %+v)", stats.FalsePositives, stats)
	}
}

func TestH2WaitSuppressesFastReuse(t *testing.T) {
	b, _ := reuseScenario(t, 10) // reuse ~11 blocks later
	g := buildGraph(t, b)
	cfg := ChangeConfig{WaitBlocks: 144} // a day: reuse falls inside window
	_, stats := FindChangeOutputs(g, cfg)
	if stats.FalsePositives != 0 {
		t.Fatalf("FPs = %d, want 0: fast reuse should be suppressed", stats.FalsePositives)
	}
	if stats.SuppressedByWait != 1 {
		t.Fatalf("SuppressedByWait = %d, want 1", stats.SuppressedByWait)
	}
}

func TestH2WaitDoesNotSuppressSlowReuse(t *testing.T) {
	b, _ := reuseScenario(t, 200) // reuse ~201 blocks later
	g := buildGraph(t, b)
	cfg := ChangeConfig{WaitBlocks: 144}
	_, stats := FindChangeOutputs(g, cfg)
	if stats.FalsePositives != 1 {
		t.Fatalf("FPs = %d, want 1: slow reuse escapes the wait window", stats.FalsePositives)
	}
}

// diceScenario: the user spends their change at a dice game, and the game
// pays winnings back to the same address — the pattern that inflated the
// naive FP estimate to 13%.
func diceScenario(t *testing.T) (*chaintest.Builder, string) {
	b := chaintest.New(t)
	b.Coinbase("payer")
	b.Coinbase("payee")
	b.Coinbase("dicebank")
	b.Pay([]string{"payer"},
		chaintest.Out{Name: "payee", Value: 10 * btc},
		chaintest.Out{Name: "change", Value: 40 * btc})
	b.Mine(1)
	// The change address bets at the dice game (sweep to the dice address,
	// with the dice's payout going straight back to "change").
	b.Pay([]string{"change"}, chaintest.Out{Name: "dicebank", Value: 40 * btc})
	b.Mine(1)
	b.Pay([]string{"dicebank"}, chaintest.Out{Name: "change", Value: 79 * btc},
		chaintest.Out{Name: "payee", Value: 11 * btc})
	b.Mine(1)
	return b, "dicebank"
}

func TestH2DiceExemptionRemovesFalsePositive(t *testing.T) {
	b, diceName := diceScenario(t)
	g := buildGraph(t, b)

	_, naive := FindChangeOutputs(g, Unrefined())
	if naive.FalsePositives != 1 {
		t.Fatalf("naive FPs = %d, want 1 (the dice payout)", naive.FalsePositives)
	}

	dice := map[txgraph.AddrID]bool{id(t, g, b, diceName): true}
	_, exempt := FindChangeOutputs(g, WithDice(dice))
	if exempt.FalsePositives != 0 {
		t.Fatalf("exempt FPs = %d, want 0", exempt.FalsePositives)
	}
	if exempt.Labeled < naive.Labeled {
		t.Fatalf("dice exemption lost labels: %d < %d", exempt.Labeled, naive.Labeled)
	}
}

func TestH2GuardReceivedOnce(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("payer")
	b.Coinbase("src")
	b.Coinbase("payee")
	// "reused" first appears as a one-time change address: src pays the
	// previously seen payee, change to the fresh "reused".
	b.Pay([]string{"src"}, chaintest.Out{Name: "payee", Value: 5 * btc},
		chaintest.Out{Name: "reused", Value: 45 * btc})
	b.Mine(1)
	// Now the same "change" address receives again in another user's tx
	// (used twice): under the guard, nothing in this tx may be labeled.
	tx := b.Pay([]string{"payer"},
		chaintest.Out{Name: "reused", Value: 10 * btc},
		chaintest.Out{Name: "fresh", Value: 40 * btc})
	b.Mine(1)

	g := buildGraph(t, b)
	seq, _ := g.LookupTx(tx.TxID())

	labels, _ := FindChangeOutputs(g, Unrefined())
	found := false
	for _, l := range labels {
		if l.Tx == seq {
			found = true
		}
	}
	if !found {
		t.Fatal("unrefined heuristic should have labeled the fresh output")
	}

	cfg := ChangeConfig{GuardReceivedOnce: true}
	labels, stats := FindChangeOutputs(g, cfg)
	for _, l := range labels {
		if l.Tx == seq {
			t.Fatal("guard failed: labeled a tx whose output had exactly one prior receive")
		}
	}
	// The guard also skips tx1 (its payee had exactly one coinbase receive),
	// so at least the two transactions are skipped.
	if stats.SkippedGuards < 1 {
		t.Fatalf("SkippedGuards = %d, want >= 1", stats.SkippedGuards)
	}
}

func TestH2GuardSelfChangeHistory(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("svc")
	b.Coinbase("payee")
	b.Coinbase("payer")
	// svc uses its own address as self-change once.
	b.Pay([]string{"svc"}, chaintest.Out{Name: "payee", Value: 10 * btc},
		chaintest.Out{Name: "svc", Value: 40 * btc})
	b.Mine(1)
	// Later, svc's address shows up as a (non-candidate) output of another
	// user's payment.
	tx := b.Pay([]string{"payer"},
		chaintest.Out{Name: "svc", Value: 10 * btc},
		chaintest.Out{Name: "fresh", Value: 40 * btc})
	b.Mine(1)

	g := buildGraph(t, b)
	seq, _ := g.LookupTx(tx.TxID())

	cfg := ChangeConfig{GuardSelfChangeHistory: true}
	labels, stats := FindChangeOutputs(g, cfg)
	for _, l := range labels {
		if l.Tx == seq {
			t.Fatal("guard failed: labeled a tx paying a known self-change address")
		}
	}
	if stats.SkippedGuards == 0 {
		t.Fatal("SkippedGuards = 0, want > 0")
	}
}

func TestH2DeterministicAcrossRuns(t *testing.T) {
	b, _ := diceScenario(t)
	g := buildGraph(t, b)
	l1, s1 := FindChangeOutputs(g, Unrefined())
	l2, s2 := FindChangeOutputs(g, Unrefined())
	if s1 != s2 || len(l1) != len(l2) {
		t.Fatal("classifier is not deterministic")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("labels differ across runs")
		}
	}
}

func TestH2FalseMergeVisibleInGroundTruth(t *testing.T) {
	// A cross-user payment to a fresh deposit address looks exactly like
	// change; the unrefined heuristic merges payer and payee. This is the
	// super-cluster mechanism in miniature, verified via owner metrics.
	b := chaintest.New(t)
	b.Coinbase("gox1")
	b.Coinbase("gox2") // gox's previously seen address
	// First, make gox2 seen and give gox1/gox2 common ownership via co-spend.
	b.Pay([]string{"gox1", "gox2"}, chaintest.Out{Name: "goxhot", Value: 100 * btc})
	b.Mine(1)
	// gox pays a user's *fresh* Instawallet deposit address; the other
	// output is gox's previously seen hot address -> deposit looks like
	// change.
	b.Pay([]string{"goxhot"},
		chaintest.Out{Name: "instadeposit", Value: 60 * btc},
		chaintest.Out{Name: "goxhot2", Value: 40 * btc})
	b.Mine(1)
	// Make goxhot2 "previously seen"? It is fresh too -> ambiguous. Redo:
	// to force exactly one fresh output, gox sends change back to goxhot
	// (seen) — but that is self-change... Use a different seen address.
	g := buildGraph(t, b)
	_, stats := FindChangeOutputs(g, Unrefined())
	// Both outputs fresh -> ambiguous, nothing labeled: also fine. The
	// stronger scenario is below.
	_ = stats

	b2 := chaintest.New(t)
	b2.Coinbase("gox1")
	b2.Coinbase("goxseen")
	b2.Pay([]string{"gox1", "goxseen"}, chaintest.Out{Name: "goxhot", Value: 100 * btc})
	b2.Mine(1)
	// goxseen got used again so it is "previously seen"; now the hot wallet
	// pays the fresh deposit with a seen gox address as true change target.
	b2.Coinbase("goxseen")
	b2.Pay([]string{"goxhot"},
		chaintest.Out{Name: "instadeposit", Value: 60 * btc},
		chaintest.Out{Name: "goxseen", Value: 40 * btc})
	b2.Mine(1)

	g2 := buildGraph(t, b2)
	c := Heuristic2(g2, Unrefined(), 0)
	gox := id(t, g2, b2, "goxhot")
	deposit := id(t, g2, b2, "instadeposit")
	if !c.SameUser(gox, deposit) {
		t.Fatal("expected the unrefined heuristic to falsely merge the deposit address")
	}
	owners := make([]int32, g2.NumAddrs())
	for i := range owners {
		owners[i] = -1
	}
	owners[gox] = 1
	owners[deposit] = 2
	m := c.EvaluateAgainstOwners(owners)
	if m.Contaminated != 1 {
		t.Fatalf("Contaminated = %d, want 1", m.Contaminated)
	}
	if m.Purity >= 1.0 {
		t.Fatal("purity should reflect the false merge")
	}
}

func TestH1PerfectPrecisionOnOwnedLedger(t *testing.T) {
	// H1 merges only addresses that truly co-sign, so with one owner per
	// name its precision against ground truth is perfect by construction.
	b := chaintest.New(t)
	b.Coinbase("u1a")
	b.Coinbase("u1b")
	b.Coinbase("u2a")
	b.Pay([]string{"u1a", "u1b"}, chaintest.Out{Name: "shop", Value: 100 * btc})
	b.Mine(1)
	b.Pay([]string{"u2a"}, chaintest.Out{Name: "shop", Value: 50 * btc})
	b.Mine(1)

	g := buildGraph(t, b)
	c := Heuristic1(g, 0)
	owners := make([]int32, g.NumAddrs())
	for i := range owners {
		owners[i] = -1
	}
	owners[id(t, g, b, "u1a")] = 1
	owners[id(t, g, b, "u1b")] = 1
	owners[id(t, g, b, "u2a")] = 2
	owners[id(t, g, b, "shop")] = 3
	m := c.EvaluateAgainstOwners(owners)
	if m.Contaminated != 0 {
		t.Fatalf("H1 contaminated %d clusters on an honest ledger", m.Contaminated)
	}
	if m.Purity != 1.0 {
		t.Fatalf("H1 purity = %f, want 1.0", m.Purity)
	}
}

func TestTopClustersOrdering(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("a1")
	b.Coinbase("a2")
	b.Coinbase("a3")
	b.Coinbase("b1")
	b.Pay([]string{"a1", "a2", "a3"}, chaintest.Out{Name: "x", Value: 150 * btc})
	b.Mine(1)
	g := buildGraph(t, b)
	c := Heuristic1(g, 0)
	top := c.TopClusters(2)
	sizes := c.ClusterSizes()
	if sizes[top[0]] < sizes[top[1]] {
		t.Fatal("TopClusters not sorted by size")
	}
	if sizes[top[0]] != 3 {
		t.Fatalf("largest cluster size = %d, want 3", sizes[top[0]])
	}
}
