// Package cluster implements the paper's primary contribution: collapsing
// Bitcoin's pseudonymous addresses into users. Heuristic 1 links addresses
// co-spent as inputs of one transaction (Section 4.1); Heuristic 2 links a
// transaction's one-time change address to its inputs (Section 4.1-4.2),
// with the full ladder of refinements the paper develops — the Satoshi-Dice
// exemption, waiting a day or a week before labeling, and the used-twice and
// self-change-history guards that eliminate the giant super-cluster.
package cluster

// UnionFind is a disjoint-set forest over dense integer ids with union by
// size and path halving, the standard near-constant-time construction. It is
// deterministic: the same sequence of unions always yields the same roots.
type UnionFind struct {
	parent []uint32
	size   []uint32
	sets   int
}

// NewUnionFind creates n singleton sets labeled 0..n-1.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{
		parent: make([]uint32, n),
		size:   make([]uint32, n),
		sets:   n,
	}
	for i := range u.parent {
		u.parent[i] = uint32(i)
		u.size[i] = 1
	}
	return u
}

// Clone returns an independent copy of the forest: unions on the copy never
// affect the original. Cloning a built Heuristic 1 forest is how the
// pipeline runs several Heuristic 2 variants without re-scanning the chain.
func (u *UnionFind) Clone() *UnionFind {
	cp := &UnionFind{
		parent: make([]uint32, len(u.parent)),
		size:   make([]uint32, len(u.size)),
		sets:   u.sets,
	}
	copy(cp.parent, u.parent)
	copy(cp.size, u.size)
	return cp
}

// Grow extends the forest with fresh singleton sets so it spans n elements;
// n at or below the current length is a no-op. Growing never disturbs
// existing sets, which is what makes a live Heuristic 1 forest incrementally
// maintainable: each block's new addresses append as singletons and its
// co-spend unions are monotone merges on top.
func (u *UnionFind) Grow(n int) {
	for i := len(u.parent); i < n; i++ {
		u.parent = append(u.parent, uint32(i))
		u.size = append(u.size, 1)
		u.sets++
	}
}

// Len returns the number of elements.
func (u *UnionFind) Len() int { return len(u.parent) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Find returns the canonical representative of x's set, compressing the path
// by halving as it walks.
func (u *UnionFind) Find(x uint32) uint32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing a and b, returning the new root. Smaller
// trees are attached beneath larger ones; ties attach the higher root under
// the lower so results are order-independent for equal sizes.
func (u *UnionFind) Union(a, b uint32) uint32 {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return ra
	}
	if u.size[ra] < u.size[rb] || (u.size[ra] == u.size[rb] && rb < ra) {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	u.sets--
	return ra
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b uint32) bool { return u.Find(a) == u.Find(b) }

// SizeOf returns the number of elements in x's set.
func (u *UnionFind) SizeOf(x uint32) uint32 { return u.size[u.Find(x)] }

// Labels assigns each element a compact cluster label in [0, Sets()), with
// labels issued in order of first appearance so they are deterministic.
// Labels depend only on the partition, not on which elements are roots, so
// any sequence of unions producing the same partition — in particular the
// sharded Heuristic 1 under any worker count — yields byte-identical labels.
// The root→label table is a flat slice rather than a map: label assignment
// was the dominant allocation in clustering-heavy experiment loops.
func (u *UnionFind) Labels() (labels []int32, numClusters int) {
	labels = make([]int32, len(u.parent))
	rootLabel := make([]int32, len(u.parent))
	for i := range rootLabel {
		rootLabel[i] = -1
	}
	next := int32(0)
	for i := range u.parent {
		r := u.Find(uint32(i))
		l := rootLabel[r]
		if l < 0 {
			l = next
			next++
			rootLabel[r] = l
		}
		labels[i] = l
	}
	return labels, int(next)
}
