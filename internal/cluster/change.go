package cluster

import (
	"sort"

	"repro/internal/par"
	"repro/internal/txgraph"
)

// ChangeConfig selects which of the paper's Heuristic 2 variants to run.
// The zero value is the unrefined first-attempt heuristic of Section 4.1
// (conditions 1-4 only).
type ChangeConfig struct {
	// Dice is the set of addresses controlled by Satoshi-Dice-style games.
	// When ExemptDice is true, later inputs to a labeled change address that
	// come solely from these addresses do not invalidate its one-timeness —
	// the payout-returns-to-sender refinement that took the estimated false
	// positive rate from 13% to 1%.
	Dice map[txgraph.AddrID]bool
	// ExemptDice enables the Satoshi-Dice exemption.
	ExemptDice bool
	// WaitBlocks delays labeling: an output is only labeled as change if it
	// receives no further (non-exempt) input within this many blocks. The
	// paper waits a day (144 blocks, FP 0.28%) and a week (1,008 blocks,
	// FP 0.17%).
	WaitBlocks int64
	// GuardReceivedOnce skips labeling in any transaction one of whose
	// output addresses has, at that point in time, received exactly one
	// prior input — the paper's literal guard against the "same change
	// address used twice in a short window" pattern behind the
	// Mt. Gox/Instawallet/BitPay/Silk Road super-cluster. It is deliberately
	// conservative ("the safest heuristic possible, even at the expense of
	// losing some utility").
	GuardReceivedOnce bool
	// GuardSelfChangeHistory skips labeling in any transaction one of whose
	// output addresses was previously used as a self-change address — the
	// second super-cluster pattern the paper identifies.
	GuardSelfChangeHistory bool
}

// Unrefined returns the first-attempt Heuristic 2 configuration.
func Unrefined() ChangeConfig { return ChangeConfig{} }

// WithDice returns the configuration after the Satoshi-Dice refinement.
func WithDice(dice map[txgraph.AddrID]bool) ChangeConfig {
	return ChangeConfig{Dice: dice, ExemptDice: true}
}

// Refined returns the final configuration the paper uses for all of its
// Section 5 analysis: dice exemption, one-week wait, and both guards.
func Refined(dice map[txgraph.AddrID]bool, waitBlocks int64) ChangeConfig {
	return ChangeConfig{
		Dice:                   dice,
		ExemptDice:             true,
		WaitBlocks:             waitBlocks,
		GuardReceivedOnce:      true,
		GuardSelfChangeHistory: true,
	}
}

// ChangeLabel records one identified one-time change output.
type ChangeLabel struct {
	Tx     txgraph.TxSeq
	Output int
	Addr   txgraph.AddrID
	// FalsePositive is set by the temporal replay when the address is later
	// used again (receiving a non-exempt input after the wait window) — the
	// paper's estimate of heuristic error, computable without ground truth.
	FalsePositive bool
}

// ChangeStats summarizes a classifier run; the fields mirror the quantities
// reported in Section 4.2.
type ChangeStats struct {
	TxsScanned       int
	Candidates       int // transactions with exactly one fresh output meeting conditions 1-4
	Ambiguous        int // transactions skipped: several outputs looked fresh
	SkippedSelf      int // transactions skipped by condition 3 (self-change present)
	SkippedGuards    int // transactions skipped by the used-twice / self-change-history guards
	SuppressedByWait int // labels withheld because reuse arrived within the wait window
	Labeled          int // change addresses identified
	FalsePositives   int // labeled addresses later used again (temporal estimate)
}

// FPRate returns the estimated false positive rate among labeled addresses.
func (s ChangeStats) FPRate() float64 {
	if s.Labeled == 0 {
		return 0
	}
	return float64(s.FalsePositives) / float64(s.Labeled)
}

// FindChangeOutputs runs the Heuristic 2 change classifier over the graph in
// block-major order and returns the labels it would assign, together with
// the replay statistics. The classifier only uses information available at
// each transaction's position in the chain (plus the configured wait
// window), exactly as the paper's stepped-through-time evaluation does. This
// is the sequential replay — the executable specification that the sharded
// scan of FindChangeOutputsWorkers is proven byte-identical to.
func FindChangeOutputs(g *txgraph.Graph, cfg ChangeConfig) ([]ChangeLabel, ChangeStats) {
	var stats ChangeStats
	var labels []ChangeLabel

	n := g.NumAddrs()
	st := &replayState{
		priorRecvs:     make([]uint32, n), // receives strictly before the current tx
		selfChangeHist: make([]bool, n),   // was a self-change output in an earlier tx
	}
	scratchFresh := make([]int, 0, 8) // candidate output indexes, reused
	numTxs := g.NumTxs()

	for seq := 0; seq < numTxs; seq++ {
		tx := g.Tx(txgraph.TxSeq(seq))
		stats.TxsScanned++

		label, ok := classifyTx(g, tx, txgraph.TxSeq(seq), cfg, st, scanReuse{}, &scratchFresh, &stats)
		if ok {
			labels = append(labels, label)
			stats.Labeled++
			if label.FalsePositive {
				stats.FalsePositives++
			}
		}

		// Advance as-of-time state after the decision for this tx.
		selfChange := tx.HasSelfChange()
		for _, id := range tx.OutputAddrs {
			if id == txgraph.NoAddr {
				continue
			}
			st.priorRecvs[id]++
			if selfChange && isInputAddr(tx, id) {
				st.selfChangeHist[id] = true
			}
		}
	}
	return labels, stats
}

// FindChangeOutputsWorkers is FindChangeOutputs sharded over contiguous
// transaction ranges across the given worker count (<= 0 means one per CPU,
// 1 forces the sequential replay). The output is byte-identical to the
// replay for every worker count: the only prefix-dependent state the replay
// threads through the scan — each address's prior-receive count and its
// self-change history — is derivable from the immutable graph instead (the
// count is the address's rank in its seq-sorted CSR receive list, the
// history is the precomputed FirstSelfChange pre-pass), so each transaction
// classifies independently. Labels are merged in shard order (each shard
// emits them seq-ascending) and the per-shard stats are summed exactly.
func FindChangeOutputsWorkers(g *txgraph.Graph, cfg ChangeConfig, workers int) ([]ChangeLabel, ChangeStats) {
	numTxs := g.NumTxs()
	w := par.Workers(workers)
	if w > numTxs {
		w = numTxs
	}
	if w <= 1 {
		return FindChangeOutputs(g, cfg)
	}

	type shard struct {
		labels []ChangeLabel
		stats  ChangeStats
	}
	// The reuse index replaces the per-candidate receive-list walk with an
	// O(1) per-address lookup; building it is one parallel pass over the
	// graph (and free when no dice exemption is configured).
	ix := newReuseIndex(g, cfg, w)

	// par.ForEach splits [0, numTxs) into ceil(numTxs/w)-sized contiguous
	// chunks; start/chunk recovers the shard index, so each callback owns
	// its shard slot exclusively.
	chunk := (numTxs + w - 1) / w
	shards := make([]shard, w)
	par.ForEach(numTxs, w, func(start, end int) {
		sh := &shards[start/chunk]
		st := indexState{g: g}
		scratchFresh := make([]int, 0, 8)
		for seq := start; seq < end; seq++ {
			tx := g.Tx(txgraph.TxSeq(seq))
			sh.stats.TxsScanned++
			label, ok := classifyTx(g, tx, txgraph.TxSeq(seq), cfg, st, ix, &scratchFresh, &sh.stats)
			if ok {
				sh.labels = append(sh.labels, label)
				sh.stats.Labeled++
				if label.FalsePositive {
					sh.stats.FalsePositives++
				}
			}
		}
	})

	var labels []ChangeLabel
	var stats ChangeStats
	for k := range shards {
		labels = append(labels, shards[k].labels...)
		stats = stats.add(shards[k].stats)
	}
	return labels, stats
}

// add sums two stats field-by-field; every counter is additive, so summing
// per-shard stats reproduces the sequential totals exactly.
func (s ChangeStats) add(o ChangeStats) ChangeStats {
	s.TxsScanned += o.TxsScanned
	s.Candidates += o.Candidates
	s.Ambiguous += o.Ambiguous
	s.SkippedSelf += o.SkippedSelf
	s.SkippedGuards += o.SkippedGuards
	s.SuppressedByWait += o.SuppressedByWait
	s.Labeled += o.Labeled
	s.FalsePositives += o.FalsePositives
	return s
}

// asOfState answers the two prefix-dependent questions the classifier asks
// about an address at a transaction's position in the chain. The sequential
// replay answers them from state it mutates as it steps through time; the
// sharded scan answers them from the immutable graph. classifyTx is written
// against this interface so both paths run the identical decision procedure.
type asOfState interface {
	// recvsBefore returns how many outputs paid the address in transactions
	// strictly before seq (counting each output, so an address paid twice by
	// one earlier transaction counts twice).
	recvsBefore(id txgraph.AddrID, seq txgraph.TxSeq) uint32
	// selfChangeBefore reports whether the address was used as a self-change
	// output in any transaction strictly before seq.
	selfChangeBefore(id txgraph.AddrID, seq txgraph.TxSeq) bool
}

// replayState is the as-of-time address state threaded through the
// sequential scan. Its answers are only valid for the replay's current
// position, which is why the scan must advance it transaction by
// transaction.
type replayState struct {
	priorRecvs     []uint32
	selfChangeHist []bool
}

func (st *replayState) recvsBefore(id txgraph.AddrID, _ txgraph.TxSeq) uint32 {
	return st.priorRecvs[id]
}

func (st *replayState) selfChangeBefore(id txgraph.AddrID, _ txgraph.TxSeq) bool {
	return st.selfChangeHist[id]
}

// indexState answers the as-of-time questions for any position from the
// immutable graph: the receive count is the address's rank in its seq-sorted
// CSR receive list, the self-change history is a comparison against the
// build's FirstSelfChange pre-pass. It is stateless, so shards share the
// graph with no synchronization.
type indexState struct {
	g *txgraph.Graph
}

func (st indexState) recvsBefore(id txgraph.AddrID, seq txgraph.TxSeq) uint32 {
	recvs := st.g.Recvs(id)
	// Lower bound of seq: entries are ascending (duplicates allowed), so the
	// insertion point is exactly the number of receives strictly before seq.
	return uint32(sort.Search(len(recvs), func(i int) bool { return recvs[i] >= seq }))
}

func (st indexState) selfChangeBefore(id txgraph.AddrID, seq txgraph.TxSeq) bool {
	return st.g.FirstSelfChange(id) < seq
}

func isInputAddr(tx *txgraph.TxInfo, id txgraph.AddrID) bool {
	for _, in := range tx.InputAddrs {
		if in == id {
			return true
		}
	}
	return false
}

// reuseSource answers the classifier's temporal-replay question: the height
// of the candidate's first receive after seq that is not an exempt dice
// payout. classifyTx only asks it about fresh candidates — seq is always
// the candidate's first appearance — which is what lets the sharded scan
// answer from a per-address index instead of walking the receive list.
type reuseSource interface {
	firstNonExemptReuse(g *txgraph.Graph, cand txgraph.AddrID, seq txgraph.TxSeq, cfg ChangeConfig) (int64, bool)
}

// scanReuse is the executable specification: walk the candidate's receive
// list until the first non-exempt receive. The sequential replay uses it;
// the sharded scan's reuseIndex is proven equivalent to it (the classifier
// equivalence suite compares whole runs, TestReuseIndexMatchesScan every
// address).
type scanReuse struct{}

func (scanReuse) firstNonExemptReuse(g *txgraph.Graph, cand txgraph.AddrID, seq txgraph.TxSeq, cfg ChangeConfig) (int64, bool) {
	for _, r := range g.Recvs(cand) {
		if r <= seq {
			continue
		}
		rt := g.Tx(r)
		if cfg.ExemptDice && isDicePayout(rt, cfg.Dice) {
			continue
		}
		return rt.Height, true
	}
	return 0, false
}

// reuseIndex answers firstNonExemptReuse with one per-address lookup.
// Without a dice exemption the graph's own FirstReuse index (precomputed by
// the build, same pre-pass family as FirstSelfChange) is already the exact
// answer; with one, newReuseIndex folds the exemption in with one parallel
// pass. Valid only for the query pattern classifyTx uses — seq equal to the
// candidate's first appearance.
type reuseIndex struct {
	g *txgraph.Graph
	// firstNonExempt is the dice-aware per-address index; nil when the
	// configuration exempts nothing.
	firstNonExempt []txgraph.TxSeq
}

// newReuseIndex builds the reuse index for one classifier configuration.
// The dice-aware pass memoizes each transaction's exemption once (the scan
// recomputed it for every candidate paid by the same dice payout) and then
// resolves each address from its graph-level FirstReuse, walking a receive
// list only in the rare case that an address's first reuse is itself an
// exempt payout.
func newReuseIndex(g *txgraph.Graph, cfg ChangeConfig, workers int) *reuseIndex {
	if !cfg.ExemptDice || len(cfg.Dice) == 0 {
		return &reuseIndex{g: g}
	}
	numTxs := g.NumTxs()
	n := g.NumAddrs()
	// Densify the dice set first: the exemption pass touches every input of
	// every transaction, and indexing a byte slice there is an order of
	// magnitude cheaper than hashing each address into the Dice map.
	dice := make([]bool, n)
	for id, in := range cfg.Dice {
		if in && int(id) < n {
			dice[id] = true
		}
	}
	exempt := make([]bool, numTxs)
	par.ForEach(numTxs, workers, func(start, end int) {
		for seq := start; seq < end; seq++ {
			exempt[seq] = isDicePayoutDense(g.Tx(txgraph.TxSeq(seq)), dice)
		}
	})
	idx := make([]txgraph.TxSeq, n)
	par.ForEach(n, workers, func(start, end int) {
		for id := start; id < end; id++ {
			aid := txgraph.AddrID(id)
			r := g.FirstReuse(aid)
			if r == txgraph.NoTx || !exempt[r] {
				idx[id] = r
				continue
			}
			// The first reuse is an exempt dice payout (a busy betting
			// address): walk the remainder of the receive list.
			idx[id] = txgraph.NoTx
			for _, rr := range g.Recvs(aid) {
				if rr > r && !exempt[rr] {
					idx[id] = rr
					break
				}
			}
		}
	})
	return &reuseIndex{g: g, firstNonExempt: idx}
}

func (ix *reuseIndex) firstNonExemptReuse(_ *txgraph.Graph, cand txgraph.AddrID, _ txgraph.TxSeq, _ ChangeConfig) (int64, bool) {
	r := ix.g.FirstReuse(cand)
	if ix.firstNonExempt != nil {
		r = ix.firstNonExempt[cand]
	}
	if r == txgraph.NoTx {
		return 0, false
	}
	return ix.g.Tx(r).Height, true
}

// classifyTx applies conditions 1-4 plus the configured refinements to one
// transaction. It returns the label and true when a change output is
// identified. The decision depends on the prefix only through the asOfState
// queries, so it runs identically under the sequential replay and the
// sharded scan.
func classifyTx(g *txgraph.Graph, tx *txgraph.TxInfo, seq txgraph.TxSeq, cfg ChangeConfig,
	st asOfState, reuse reuseSource, scratch *[]int, stats *ChangeStats) (ChangeLabel, bool) {

	// Condition 2: not a coin generation.
	if tx.Coinbase {
		return ChangeLabel{}, false
	}
	// Single-output transactions have no change to identify.
	if len(tx.OutputAddrs) < 2 {
		return ChangeLabel{}, false
	}
	// Condition 3: no self-change output.
	if tx.HasSelfChange() {
		stats.SkippedSelf++
		return ChangeLabel{}, false
	}

	// Conditions 1 and 4: exactly one output address appears here for the
	// first time; all others have appeared before.
	fresh := (*scratch)[:0]
	for j, id := range tx.OutputAddrs {
		if id == txgraph.NoAddr {
			continue // data-carrier outputs are not addresses
		}
		if g.FirstSeen(id) == seq {
			fresh = append(fresh, j)
		}
	}
	*scratch = fresh
	if len(fresh) != 1 {
		// Several outputs look like one-time change — including two outputs
		// paying the same fresh address: ambiguous, label none.
		if len(fresh) > 1 {
			stats.Ambiguous++
		}
		return ChangeLabel{}, false
	}
	stats.Candidates++
	candOut := fresh[0]
	cand := tx.OutputAddrs[candOut]

	// Super-cluster guards (Section 4.2, final refinement): a transaction
	// paying into an earlier one-time change address that has received only
	// its original input (change address used twice), or paying into an
	// address with self-change history, labels nothing.
	if cfg.GuardReceivedOnce || cfg.GuardSelfChangeHistory {
		for _, id := range tx.OutputAddrs {
			if id == txgraph.NoAddr || id == cand {
				continue
			}
			if cfg.GuardReceivedOnce && st.recvsBefore(id, seq) == 1 {
				stats.SkippedGuards++
				return ChangeLabel{}, false
			}
			if cfg.GuardSelfChangeHistory && st.selfChangeBefore(id, seq) {
				stats.SkippedGuards++
				return ChangeLabel{}, false
			}
		}
	}

	// Temporal replay: find the first later receive that is not exempt.
	reuseHeight, reused := reuse.firstNonExemptReuse(g, cand, seq, cfg)
	if reused {
		if cfg.WaitBlocks > 0 && reuseHeight <= tx.Height+cfg.WaitBlocks {
			// Reuse arrived inside the wait window: never labeled.
			stats.SuppressedByWait++
			return ChangeLabel{}, false
		}
		// Labeled, but the address was used again later: the paper's
		// false-positive estimate counts it.
		return ChangeLabel{Tx: seq, Output: candOut, Addr: cand, FalsePositive: true}, true
	}
	return ChangeLabel{Tx: seq, Output: candOut, Addr: cand}, true
}

// isDicePayout reports whether every input address of the transaction
// belongs to a known dice game — the shape of a Satoshi-Dice payout, which
// returns winnings to the betting address.
func isDicePayout(tx *txgraph.TxInfo, dice map[txgraph.AddrID]bool) bool {
	if len(dice) == 0 || tx.Coinbase {
		return false
	}
	any := false
	for _, id := range tx.InputAddrs {
		if id == txgraph.NoAddr {
			continue
		}
		if !dice[id] {
			return false
		}
		any = true
	}
	return any
}

// isDicePayoutDense is isDicePayout over a dense membership slice, for the
// reuse-index pre-pass that evaluates every transaction.
func isDicePayoutDense(tx *txgraph.TxInfo, dice []bool) bool {
	if tx.Coinbase {
		return false
	}
	any := false
	for _, id := range tx.InputAddrs {
		if id == txgraph.NoAddr {
			continue
		}
		if !dice[id] {
			return false
		}
		any = true
	}
	return any
}
