package cluster

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/chaintest"
	"repro/internal/txgraph"
)

// reuseFixture builds a scripted chain covering every reuse-index corner:
// an address whose first reuse is non-exempt, one whose first reuse is an
// exempt dice payout with a later non-exempt reuse behind it, one reused
// only by exempt payouts, and one never reused. It returns the graph and
// the dice address set (the "dice" name's addresses).
func reuseFixture(t *testing.T) (*txgraph.Graph, map[txgraph.AddrID]bool, *chaintest.Builder) {
	t.Helper()
	b := chaintest.New(t)
	b.Coinbase("alice")
	b.Coinbase("alice2")
	b.Coinbase("alice3")
	b.Coinbase("dice")
	b.Mine(1)

	btc := chain.BTC
	// First appearances: plain (reused non-exempt), betlike (first reuse
	// exempt, then non-exempt), dicefan (only exempt reuses), once (never
	// reused).
	b.Pay([]string{"alice"}, chaintest.Out{Name: "plain", Value: btc(1)},
		chaintest.Out{Name: "betlike", Value: btc(2)},
		chaintest.Out{Name: "dicefan", Value: btc(3)},
		chaintest.Out{Name: "once", Value: btc(4)})
	b.Mine(1)
	// Non-exempt reuse of plain.
	b.Pay([]string{"alice2"}, chaintest.Out{Name: "plain", Value: btc(1)})
	b.Mine(1)
	// Exempt dice payouts: betlike's and dicefan's first reuses.
	b.Pay([]string{"dice"}, chaintest.Out{Name: "betlike", Value: btc(1)},
		chaintest.Out{Name: "dicefan", Value: btc(1)},
		chaintest.Out{Name: "dice", Value: btc(40)})
	b.Mine(1)
	// Another exempt payout to dicefan, then a non-exempt reuse of betlike.
	b.Pay([]string{"dice"}, chaintest.Out{Name: "dicefan", Value: btc(1)},
		chaintest.Out{Name: "dice", Value: btc(30)})
	b.Mine(1)
	b.Pay([]string{"alice3"}, chaintest.Out{Name: "betlike", Value: btc(1)})
	b.Mine(1)

	g, err := txgraph.Build(b.Chain)
	if err != nil {
		t.Fatal(err)
	}
	dice := make(map[txgraph.AddrID]bool)
	if id, ok := g.LookupAddr(b.Addr("dice")); ok {
		dice[id] = true
	} else {
		t.Fatal("dice address not in graph")
	}
	return g, dice, b
}

// The per-address reuse index must answer exactly what the linear
// receive-list scan it replaces answers, for every address, for both a
// dice-exempting and a non-exempting configuration, at several worker
// counts. The scan is queried the way classifyTx queries it: at the
// address's first appearance. (The classifier equivalence suite proves the
// same over full generated economies; this pins the scripted corner cases.)
func TestReuseIndexMatchesScan(t *testing.T) {
	g, dice, _ := reuseFixture(t)
	configs := []struct {
		name string
		cfg  ChangeConfig
	}{
		{"unrefined", Unrefined()},
		{"dice-exempt", WithDice(dice)},
		{"refined", Refined(dice, 2)},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				ix := newReuseIndex(g, tc.cfg, workers)
				for id := 0; id < g.NumAddrs(); id++ {
					aid := txgraph.AddrID(id)
					seq := g.FirstSeen(aid)
					wantH, wantOK := scanReuse{}.firstNonExemptReuse(g, aid, seq, tc.cfg)
					gotH, gotOK := ix.firstNonExemptReuse(g, aid, seq, tc.cfg)
					if gotOK != wantOK || gotH != wantH {
						t.Fatalf("workers=%d addr %d: index says (%d,%v), scan says (%d,%v)",
							workers, id, gotH, gotOK, wantH, wantOK)
					}
				}
			}
		})
	}
}

// Spot-check the scripted corners by name, so a fixture regression cannot
// quietly turn the table-driven equivalence into a vacuous pass.
func TestReuseIndexScriptedCorners(t *testing.T) {
	g, dice, b := reuseFixture(t)
	lookup := func(name string) txgraph.AddrID {
		id, ok := g.LookupAddr(b.Addr(name))
		if !ok {
			t.Fatalf("%s not in graph", name)
		}
		return id
	}
	ix := newReuseIndex(g, WithDice(dice), 2)
	if ix.firstNonExempt == nil {
		t.Fatal("dice-exempt config did not build the dice-aware index")
	}
	// plain: first reuse non-exempt — index equals the graph's FirstReuse.
	plain := lookup("plain")
	if ix.firstNonExempt[plain] != g.FirstReuse(plain) {
		t.Fatal("plain: dice-aware index disagrees with FirstReuse")
	}
	// betlike: first reuse exempt, so the index must look past it.
	betlike := lookup("betlike")
	if ix.firstNonExempt[betlike] == g.FirstReuse(betlike) {
		t.Fatal("betlike: exempt first reuse was not skipped")
	}
	if ix.firstNonExempt[betlike] == txgraph.NoTx {
		t.Fatal("betlike: later non-exempt reuse missed")
	}
	// dicefan: every reuse exempt — no non-exempt reuse at all.
	dicefan := lookup("dicefan")
	if g.FirstReuse(dicefan) == txgraph.NoTx {
		t.Fatal("dicefan: fixture lost its exempt reuses")
	}
	if ix.firstNonExempt[dicefan] != txgraph.NoTx {
		t.Fatal("dicefan: exempt-only reuses produced a non-exempt answer")
	}
	// once: never reused under either view.
	once := lookup("once")
	if g.FirstReuse(once) != txgraph.NoTx || ix.firstNonExempt[once] != txgraph.NoTx {
		t.Fatal("once: phantom reuse")
	}
}

// With no exemption configured the index must not allocate anything: the
// graph's build-time FirstReuse already answers the query.
func TestReuseIndexNoDiceUsesGraphIndex(t *testing.T) {
	g, _, _ := reuseFixture(t)
	if ix := newReuseIndex(g, Unrefined(), 4); ix.firstNonExempt != nil {
		t.Fatal("non-exempting config built a dice-aware index")
	}
	// ExemptDice set but with an empty dice set exempts nothing either.
	if ix := newReuseIndex(g, ChangeConfig{ExemptDice: true}, 4); ix.firstNonExempt != nil {
		t.Fatal("empty dice set built a dice-aware index")
	}
}
