package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(5)
	if u.Sets() != 5 {
		t.Fatalf("fresh sets = %d, want 5", u.Sets())
	}
	u.Union(0, 1)
	u.Union(3, 4)
	if !u.Same(0, 1) || !u.Same(3, 4) {
		t.Fatal("union did not merge")
	}
	if u.Same(0, 3) {
		t.Fatal("disjoint sets reported same")
	}
	if u.Sets() != 3 {
		t.Fatalf("sets = %d, want 3", u.Sets())
	}
	u.Union(1, 4)
	if !u.Same(0, 3) {
		t.Fatal("transitive merge failed")
	}
	if u.Sets() != 2 {
		t.Fatalf("sets = %d, want 2", u.Sets())
	}
	if u.SizeOf(0) != 4 {
		t.Fatalf("size = %d, want 4", u.SizeOf(0))
	}
}

func TestUnionFindIdempotent(t *testing.T) {
	u := NewUnionFind(3)
	u.Union(0, 1)
	before := u.Sets()
	u.Union(0, 1)
	u.Union(1, 0)
	if u.Sets() != before {
		t.Fatal("repeated union changed set count")
	}
}

func TestUnionFindSelfUnion(t *testing.T) {
	u := NewUnionFind(2)
	u.Union(1, 1)
	if u.Sets() != 2 {
		t.Fatal("self union changed set count")
	}
}

func TestUnionFindLabelsPartition(t *testing.T) {
	u := NewUnionFind(10)
	u.Union(0, 5)
	u.Union(5, 9)
	u.Union(2, 3)
	labels, n := u.Labels()
	if n != u.Sets() {
		t.Fatalf("label count %d != sets %d", n, u.Sets())
	}
	if labels[0] != labels[5] || labels[5] != labels[9] {
		t.Fatal("merged elements got different labels")
	}
	if labels[2] != labels[3] {
		t.Fatal("merged elements got different labels")
	}
	if labels[0] == labels[2] {
		t.Fatal("distinct sets got the same label")
	}
	// Labels are compact: every value in [0, n) appears.
	seen := make([]bool, n)
	for _, l := range labels {
		if int(l) >= n {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("label %d unused", i)
		}
	}
}

// TestUnionFindMatchesNaive checks the structure against a brute-force
// partition under random union sequences.
func TestUnionFindMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		u := NewUnionFind(n)
		naive := make([]int, n) // naive[i] = group of i
		for i := range naive {
			naive[i] = i
		}
		ops := rng.Intn(60)
		for k := 0; k < ops; k++ {
			a, b := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			u.Union(a, b)
			ga, gb := naive[a], naive[b]
			if ga != gb {
				for i := range naive {
					if naive[i] == gb {
						naive[i] = ga
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if u.Same(uint32(i), uint32(j)) != (naive[i] == naive[j]) {
					t.Fatalf("trial %d: Same(%d,%d) mismatch", trial, i, j)
				}
			}
		}
		groups := make(map[int]struct{})
		for _, g := range naive {
			groups[g] = struct{}{}
		}
		if u.Sets() != len(groups) {
			t.Fatalf("trial %d: sets %d, want %d", trial, u.Sets(), len(groups))
		}
	}
}

// Property: the partition is independent of union order.
func TestUnionFindOrderIndependence(t *testing.T) {
	type pair struct{ A, B uint8 }
	f := func(pairs []pair, seed int64) bool {
		const n = 64
		u1 := NewUnionFind(n)
		for _, p := range pairs {
			u1.Union(uint32(p.A%n), uint32(p.B%n))
		}
		u2 := NewUnionFind(n)
		perm := rand.New(rand.NewSource(seed)).Perm(len(pairs))
		for _, i := range perm {
			u2.Union(uint32(pairs[i].A%n), uint32(pairs[i].B%n))
		}
		if u1.Sets() != u2.Sets() {
			return false
		}
		for i := uint32(0); i < n; i++ {
			for j := i + 1; j < n; j++ {
				if u1.Same(i, j) != u2.Same(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionFindSizeInvariant(t *testing.T) {
	// Sum of distinct root sizes equals n after arbitrary unions.
	rng := rand.New(rand.NewSource(5))
	const n = 200
	u := NewUnionFind(n)
	for k := 0; k < 300; k++ {
		u.Union(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	roots := make(map[uint32]struct{})
	total := uint32(0)
	for i := uint32(0); i < n; i++ {
		r := u.Find(i)
		if _, seen := roots[r]; !seen {
			roots[r] = struct{}{}
			total += u.SizeOf(r)
		}
	}
	if total != n {
		t.Fatalf("root sizes sum to %d, want %d", total, n)
	}
	if len(roots) != u.Sets() {
		t.Fatalf("distinct roots %d != Sets() %d", len(roots), u.Sets())
	}
}
