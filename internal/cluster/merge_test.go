package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

// linearMergeForests is the pre-tree-reduction merge: fold every forest
// into the first, one after another. Kept as the benchmark baseline and the
// equivalence oracle for the tree reduction.
func linearMergeForests(forests []*UnionFind, n int) *UnionFind {
	master := forests[0]
	for _, f := range forests[1:] {
		mergeForest(master, f, n)
	}
	return master
}

// randomShardForests builds w forests over n elements, each holding a
// deterministic pseudo-random slice of union pairs, mimicking the per-shard
// co-spend forests of the sharded Heuristic 1.
func randomShardForests(n, w int, seed int64) []*UnionFind {
	rng := rand.New(rand.NewSource(seed))
	forests := make([]*UnionFind, w)
	for k := range forests {
		forests[k] = NewUnionFind(n)
		for j := 0; j < n/(2*w); j++ {
			forests[k].Union(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
	}
	return forests
}

// TestTreeMergeMatchesLinear proves the tree reduction produces the same
// partition (canonical labels) as the linear fold for shard counts around
// and past powers of two.
func TestTreeMergeMatchesLinear(t *testing.T) {
	const n = 2000
	for _, w := range []int{2, 3, 4, 5, 8, 13} {
		linLabels, linNum := linearMergeForests(randomShardForests(n, w, 42), n).Labels()
		treeLabels, treeNum := treeMergeForests(randomShardForests(n, w, 42), n).Labels()
		if treeNum != linNum {
			t.Fatalf("w=%d: tree merge has %d clusters, linear %d", w, treeNum, linNum)
		}
		if !reflect.DeepEqual(treeLabels, linLabels) {
			t.Fatalf("w=%d: tree merge labels differ from linear fold", w)
		}
	}
}

// BenchmarkShardMerge is the regression benchmark for the Heuristic 1 merge
// step: the linear fold's critical path is O(W·n), the tree reduction's is
// O(n log W) because each round's pair merges run concurrently. Forest
// construction is excluded from the timings. On a single-core host the
// rounds serialize and the numbers compare total work instead — there the
// linear fold can edge ahead (its master accumulates path compression),
// which is why shardedHeuristic1 only shards at all when the worker budget
// exceeds one.
func BenchmarkShardMerge(b *testing.B) {
	const n = 1 << 18
	const w = 8
	bench := func(merge func([]*UnionFind, int) *UnionFind) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				forests := randomShardForests(n, w, int64(i))
				b.StartTimer()
				merge(forests, n)
			}
		}
	}
	b.Run("linear", bench(linearMergeForests))
	b.Run("tree", bench(treeMergeForests))
}
