package cluster

// GroundTruthMetrics compares a clustering against the true owner of every
// address. The paper could only estimate its error rates; the simulator's
// ground truth lets the reproduction verify them exactly.
type GroundTruthMetrics struct {
	// Clusters is the number of clusters evaluated (those with at least one
	// address whose owner is known).
	Clusters int
	// Contaminated is the number of clusters containing addresses of more
	// than one true owner — each is a false merge.
	Contaminated int
	// Purity is the fraction of addresses belonging to their cluster's
	// majority owner, weighted by cluster size; 1.0 means no false merges.
	Purity float64
	// MaxOwnersInCluster is the largest number of distinct owners collapsed
	// into one cluster — the super-cluster indicator.
	MaxOwnersInCluster int
	// SplitOwners is the number of owners whose addresses span more than
	// one cluster (expected: services deliberately keep separate wallets;
	// the paper saw 20 clusters for Mt. Gox).
	SplitOwners int
}

// EvaluateAgainstOwners computes ground-truth metrics. owners maps each
// AddrID to its true owner id, with NoOwner for addresses outside the
// ground truth.
func (c *Clustering) EvaluateAgainstOwners(owners []int32) GroundTruthMetrics {
	const NoOwner = int32(-1)
	type ownerCount map[int32]int
	perCluster := make(map[int32]ownerCount)
	for id, owner := range owners {
		if owner == NoOwner || id >= c.g.NumAddrs() {
			continue
		}
		l := c.labels[id]
		oc := perCluster[l]
		if oc == nil {
			oc = make(ownerCount)
			perCluster[l] = oc
		}
		oc[owner]++
	}

	var m GroundTruthMetrics
	var totalAddrs, majorityAddrs int
	ownerClusters := make(map[int32]map[int32]struct{})
	for l, oc := range perCluster {
		m.Clusters++
		if len(oc) > 1 {
			m.Contaminated++
		}
		if len(oc) > m.MaxOwnersInCluster {
			m.MaxOwnersInCluster = len(oc)
		}
		best, size := 0, 0
		for owner, n := range oc {
			size += n
			if n > best {
				best = n
			}
			set := ownerClusters[owner]
			if set == nil {
				set = make(map[int32]struct{})
				ownerClusters[owner] = set
			}
			set[l] = struct{}{}
		}
		totalAddrs += size
		majorityAddrs += best
	}
	if totalAddrs > 0 {
		m.Purity = float64(majorityAddrs) / float64(totalAddrs)
	}
	for _, set := range ownerClusters {
		if len(set) > 1 {
			m.SplitOwners++
		}
	}
	return m
}

// OwnersInCluster returns how many distinct known owners appear in the given
// cluster and the owner ids, for super-cluster forensics.
func (c *Clustering) OwnersInCluster(label int32, owners []int32) []int32 {
	seen := make(map[int32]struct{})
	var out []int32
	for id, l := range c.labels {
		if l != label {
			continue
		}
		o := owners[id]
		if o < 0 {
			continue
		}
		if _, dup := seen[o]; !dup {
			seen[o] = struct{}{}
			out = append(out, o)
		}
	}
	return out
}
