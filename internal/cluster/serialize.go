package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The forest's on-disk shape is the raw parent and size arrays plus the set
// count — see docs/FORMATS.md ("FRST section payload"). Path compression
// state is preserved verbatim, so a round trip is byte-exact and a restored
// forest continues from precisely the structure that was saved; Labels()
// depends only on the partition, so any compression state yields the same
// clustering.

// WriteState serializes the forest. The encoding is deterministic: the same
// forest always produces the same bytes.
func (u *UnionFind) WriteState(w io.Writer) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(u.parent)))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(u.sets))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("cluster: write forest header: %w", err)
	}
	if err := writeUint32s(w, u.parent); err != nil {
		return fmt.Errorf("cluster: write forest parents: %w", err)
	}
	if err := writeUint32s(w, u.size); err != nil {
		return fmt.Errorf("cluster: write forest sizes: %w", err)
	}
	return nil
}

// UnionFindFromState reads a forest serialized by WriteState, validating
// structural invariants (parents in range, set count consistent with the
// number of self-rooted elements) so a corrupt payload fails loudly instead
// of producing a silently wrong clustering.
func UnionFindFromState(r io.Reader) (*UnionFind, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("cluster: read forest header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	sets := binary.LittleEndian.Uint64(hdr[4:12])
	if sets > uint64(n) {
		return nil, fmt.Errorf("cluster: forest claims %d sets over %d elements", sets, n)
	}
	u := &UnionFind{
		parent: make([]uint32, n),
		size:   make([]uint32, n),
		sets:   int(sets),
	}
	if err := readUint32s(r, u.parent); err != nil {
		return nil, fmt.Errorf("cluster: read forest parents: %w", err)
	}
	if err := readUint32s(r, u.size); err != nil {
		return nil, fmt.Errorf("cluster: read forest sizes: %w", err)
	}
	roots := 0
	for i, p := range u.parent {
		if int(p) >= n {
			return nil, fmt.Errorf("cluster: forest parent[%d] = %d out of range [0,%d)", i, p, n)
		}
		if int(p) == i {
			roots++
		}
	}
	if roots != int(sets) {
		return nil, fmt.Errorf("cluster: forest has %d roots but claims %d sets", roots, sets)
	}
	return u, nil
}

// writeUint32s emits a []uint32 as packed little-endian words, buffering so
// large arrays do not issue one syscall per element.
func writeUint32s(w io.Writer, xs []uint32) error {
	const chunk = 16 << 10
	buf := make([]byte, 0, 4*chunk)
	for len(xs) > 0 {
		k := len(xs)
		if k > chunk {
			k = chunk
		}
		buf = buf[:0]
		for _, x := range xs[:k] {
			buf = binary.LittleEndian.AppendUint32(buf, x)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

// readUint32s fills xs from packed little-endian words.
func readUint32s(r io.Reader, xs []uint32) error {
	const chunk = 16 << 10
	buf := make([]byte, 4*chunk)
	for len(xs) > 0 {
		k := len(xs)
		if k > chunk {
			k = chunk
		}
		if _, err := io.ReadFull(r, buf[:4*k]); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			xs[i] = binary.LittleEndian.Uint32(buf[4*i:])
		}
		xs = xs[k:]
	}
	return nil
}
