package cluster

import (
	"sort"

	"repro/internal/txgraph"
)

// Clustering is the result of running the heuristics over a graph: a
// partition of the address space into users.
type Clustering struct {
	g      *txgraph.Graph
	uf     *UnionFind
	labels []int32
	num    int

	// ChangeLabels holds the Heuristic 2 labels used (nil for H1-only runs).
	ChangeLabels []ChangeLabel
	// ChangeStats holds the classifier statistics (zero for H1-only runs).
	ChangeStats ChangeStats
}

// Heuristic1 links all input addresses of every transaction: if two or more
// addresses are inputs to the same transaction, one user controls them.
func Heuristic1(g *txgraph.Graph) *Clustering {
	uf := NewUnionFind(g.NumAddrs())
	applyHeuristic1(g, uf)
	c := &Clustering{g: g, uf: uf}
	c.labels, c.num = uf.Labels()
	return c
}

func applyHeuristic1(g *txgraph.Graph, uf *UnionFind) {
	n := g.NumTxs()
	for seq := 0; seq < n; seq++ {
		tx := g.Tx(txgraph.TxSeq(seq))
		var first txgraph.AddrID = txgraph.NoAddr
		for _, id := range tx.InputAddrs {
			if id == txgraph.NoAddr {
				continue
			}
			if first == txgraph.NoAddr {
				first = id
				continue
			}
			uf.Union(uint32(first), uint32(id))
		}
	}
}

// Heuristic2 runs the change classifier with cfg and links each identified
// change address to the transaction's input user, on top of Heuristic 1
// (the paper always applies them together: H2 "allows us to cluster not
// only the input addresses but also the change address and the input user").
func Heuristic2(g *txgraph.Graph, cfg ChangeConfig) *Clustering {
	uf := NewUnionFind(g.NumAddrs())
	applyHeuristic1(g, uf)
	labels, stats := FindChangeOutputs(g, cfg)
	for _, l := range labels {
		tx := g.Tx(l.Tx)
		for _, in := range tx.InputAddrs {
			if in == txgraph.NoAddr {
				continue
			}
			uf.Union(uint32(in), uint32(l.Addr))
			break // inputs are already joined by H1; one link suffices
		}
	}
	c := &Clustering{g: g, uf: uf, ChangeLabels: labels, ChangeStats: stats}
	c.labels, c.num = uf.Labels()
	return c
}

// Graph returns the graph the clustering was computed over.
func (c *Clustering) Graph() *txgraph.Graph { return c.g }

// NumClusters returns the total number of clusters, counting every address
// (including sinks, which are singletons under both heuristics unless they
// are labeled change addresses).
func (c *Clustering) NumClusters() int { return c.num }

// ClusterOf returns the cluster label of an address.
func (c *Clustering) ClusterOf(id txgraph.AddrID) int32 { return c.labels[id] }

// SameUser reports whether two addresses were merged into one user.
func (c *Clustering) SameUser(a, b txgraph.AddrID) bool {
	return c.labels[a] == c.labels[b]
}

// Stats summarizes a clustering the way Section 4.1 reports it.
type Stats struct {
	Addresses int
	// SpenderClusters is the number of clusters that contain at least one
	// address that has spent coins — the "5.5 million clusters of users".
	SpenderClusters int
	// SinkAddresses is the number of addresses that have received but never
	// spent; each could be a distinct user.
	SinkAddresses int
	// MaxUsers = SpenderClusters + SinkAddresses, the paper's "at most
	// 6,595,564 distinct users" upper bound.
	MaxUsers int
	// LargestCluster is the size (in addresses) of the biggest cluster.
	LargestCluster int
	// LargestClusterLabel identifies it for further inspection.
	LargestClusterLabel int32
}

// ComputeStats derives the Section 4.1 statistics from the clustering.
func (c *Clustering) ComputeStats() Stats {
	s := Stats{Addresses: c.g.NumAddrs()}
	clusterHasSpender := make([]bool, c.num)
	clusterSize := make([]int, c.num)
	for id := 0; id < c.g.NumAddrs(); id++ {
		l := c.labels[id]
		clusterSize[l]++
		if len(c.g.Spends(txgraph.AddrID(id))) > 0 {
			clusterHasSpender[l] = true
		} else {
			s.SinkAddresses++
		}
	}
	for l := 0; l < c.num; l++ {
		if clusterHasSpender[l] {
			s.SpenderClusters++
		}
		if clusterSize[l] > s.LargestCluster {
			s.LargestCluster = clusterSize[l]
			s.LargestClusterLabel = int32(l)
		}
	}
	s.MaxUsers = s.SpenderClusters + s.SinkAddresses
	return s
}

// ClusterSizes returns the size of every cluster, indexed by label.
func (c *Clustering) ClusterSizes() []int {
	sizes := make([]int, c.num)
	for _, l := range c.labels {
		sizes[l]++
	}
	return sizes
}

// TopClusters returns the labels of the k largest clusters, largest first
// (ties broken by label for determinism).
func (c *Clustering) TopClusters(k int) []int32 {
	sizes := c.ClusterSizes()
	labels := make([]int32, c.num)
	for i := range labels {
		labels[i] = int32(i)
	}
	sort.Slice(labels, func(i, j int) bool {
		si, sj := sizes[labels[i]], sizes[labels[j]]
		if si != sj {
			return si > sj
		}
		return labels[i] < labels[j]
	})
	if k > len(labels) {
		k = len(labels)
	}
	return labels[:k]
}

// Members returns all addresses in the given cluster. It scans the address
// space; intended for inspection of a handful of clusters, not bulk export.
func (c *Clustering) Members(label int32) []txgraph.AddrID {
	var out []txgraph.AddrID
	for id, l := range c.labels {
		if l == label {
			out = append(out, txgraph.AddrID(id))
		}
	}
	return out
}
