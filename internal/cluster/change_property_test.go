package cluster_test

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/chaintest"
	"repro/internal/cluster"
	"repro/internal/econ"
	"repro/internal/txgraph"
)

// econGraph builds a small generated economy once for the property tests in
// this file.
var econGraphCache struct {
	w *econ.World
	g *txgraph.Graph
}

func econGraph(t *testing.T) (*econ.World, *txgraph.Graph) {
	t.Helper()
	if econGraphCache.g == nil {
		cfg := econ.Small()
		cfg.Blocks = 500
		cfg.Users = 80
		w, err := econ.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := txgraph.Build(w.Chain)
		if err != nil {
			t.Fatal(err)
		}
		econGraphCache.w, econGraphCache.g = w, g
	}
	return econGraphCache.w, econGraphCache.g
}

// Invariant: every label points at an output that is genuinely fresh at its
// transaction and the only fresh one there.
func TestH2LabelsSatisfyConditions(t *testing.T) {
	_, g := econGraph(t)
	labels, _ := cluster.FindChangeOutputs(g, cluster.Unrefined())
	if len(labels) == 0 {
		t.Fatal("no labels on a generated economy")
	}
	for _, l := range labels {
		tx := g.Tx(l.Tx)
		if tx.Coinbase {
			t.Fatal("labeled a coinbase output")
		}
		if tx.HasSelfChange() {
			t.Fatal("labeled a self-change transaction")
		}
		if g.FirstSeen(l.Addr) != l.Tx {
			t.Fatal("labeled address was not fresh")
		}
		fresh := 0
		for _, out := range tx.OutputAddrs {
			if out != txgraph.NoAddr && g.FirstSeen(out) == l.Tx {
				fresh++
			}
		}
		if fresh != 1 {
			t.Fatalf("labeled tx has %d fresh outputs", fresh)
		}
	}
}

// Invariant: the refined label set is a subset of the week-wait label set,
// which is a subset of the dice set, which equals the naive set (exemptions
// and waits only remove or keep labels, never add).
func TestH2LadderMonotonicity(t *testing.T) {
	w, g := econGraph(t)
	dice := w.GroundTruthDiceIDs(g)
	key := func(l cluster.ChangeLabel) [2]uint32 { return [2]uint32{uint32(l.Tx), uint32(l.Addr)} }
	setOf := func(cfg cluster.ChangeConfig) map[[2]uint32]bool {
		labels, _ := cluster.FindChangeOutputs(g, cfg)
		m := make(map[[2]uint32]bool, len(labels))
		for _, l := range labels {
			m[key(l)] = true
		}
		return m
	}
	naive := setOf(cluster.Unrefined())
	diceSet := setOf(cluster.WithDice(dice))
	week := setOf(cluster.ChangeConfig{Dice: dice, ExemptDice: true, WaitBlocks: 7 * w.BlocksPerDay})
	refined := setOf(cluster.Refined(dice, 7*w.BlocksPerDay))

	if len(diceSet) != len(naive) {
		t.Fatalf("dice exemption changed the label count: %d vs %d", len(diceSet), len(naive))
	}
	for k := range week {
		if !naive[k] {
			t.Fatal("week-wait labeled something naive did not")
		}
	}
	for k := range refined {
		if !week[k] {
			t.Fatal("refined labeled something week-wait did not")
		}
	}
}

// Invariant: Heuristic 2 never un-merges anything Heuristic 1 merged.
func TestH2ExtendsH1(t *testing.T) {
	_, g := econGraph(t)
	h1 := cluster.Heuristic1(g, 0)
	h2 := cluster.Heuristic2(g, cluster.Unrefined(), 0)
	n := g.NumAddrs()
	for i := 0; i < n-1; i += 7 { // sampled pairs keep the test fast
		a, b := txgraph.AddrID(i), txgraph.AddrID(i+1)
		if h1.SameUser(a, b) && !h2.SameUser(a, b) {
			t.Fatalf("H2 separated %d and %d which H1 merged", a, b)
		}
	}
	if h2.NumClusters() > h1.NumClusters() {
		t.Fatalf("H2 has more clusters (%d) than H1 (%d)", h2.NumClusters(), h1.NumClusters())
	}
}

// Determinism: two runs over the same graph give identical partitions.
func TestClusteringDeterministic(t *testing.T) {
	w, g := econGraph(t)
	dice := w.GroundTruthDiceIDs(g)
	c1 := cluster.Heuristic2(g, cluster.Refined(dice, 7*w.BlocksPerDay), 0)
	c2 := cluster.Heuristic2(g, cluster.Refined(dice, 7*w.BlocksPerDay), 0)
	for i := 0; i < g.NumAddrs(); i++ {
		if c1.ClusterOf(txgraph.AddrID(i)) != c2.ClusterOf(txgraph.AddrID(i)) {
			t.Fatal("clustering not deterministic")
		}
	}
}

// Mechanism ablation: with the anomalous service change idioms disabled,
// the unrefined heuristic's ground-truth contamination shrinks — evidence
// the super-cluster really is driven by those two patterns.
func TestSuperClusterMechanism(t *testing.T) {
	base := econ.Small()
	base.Blocks = 500
	base.Users = 80

	clean := base
	clean.ChangeReuseProb = 0
	clean.ServiceSelfChangeProb = 0

	contamination := func(cfg econ.Config) int {
		w, err := econ.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := txgraph.Build(w.Chain)
		if err != nil {
			t.Fatal(err)
		}
		c := cluster.Heuristic2(g, cluster.Unrefined(), 0)
		m := c.EvaluateAgainstOwners(w.OwnersForGraph(g))
		return m.Contaminated
	}
	withIdioms := contamination(base)
	without := contamination(clean)
	if withIdioms <= without {
		t.Fatalf("contamination with anomalous idioms (%d) should exceed without (%d)",
			withIdioms, without)
	}
}

// chaintest-level regression: ambiguity with three fresh outputs.
func TestH2ThreeFreshOutputsAmbiguous(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("payer")
	b.Pay([]string{"payer"},
		chaintest.Out{Name: "f1", Value: 10 * chain.Coin},
		chaintest.Out{Name: "f2", Value: 10 * chain.Coin},
		chaintest.Out{Name: "f3", Value: 29 * chain.Coin})
	b.Mine(1)
	g, err := txgraph.Build(b.Chain)
	if err != nil {
		t.Fatal(err)
	}
	_, stats := cluster.FindChangeOutputs(g, cluster.Unrefined())
	if stats.Labeled != 0 {
		t.Fatal("labeled change among three fresh outputs")
	}
}
