package cluster_test

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/econ"
	"repro/internal/txgraph"
)

// The sharded change-classifier scan must be byte-identical to the
// sequential temporal replay: same labels in the same order (including the
// FalsePositive flags) and the same value in every ChangeStats field, for
// every worker count, at two economy scales, for both the unrefined and the
// fully Refined configuration. Under -race this also proves the shards share
// the graph without unsynchronized writes.
func TestChangeClassifierShardedMatchesReplay(t *testing.T) {
	scales := []struct {
		name string
		g    *txgraph.Graph
		dice map[txgraph.AddrID]bool
	}{
		{"large", nil, nil},
		{"small", nil, nil},
	}
	// Scale 1: the shared 500-block property-test economy, with its ground
	// truth dice set so the exemption path is exercised.
	w, g := econGraph(t)
	scales[0].g = g
	scales[0].dice = w.GroundTruthDiceIDs(g)
	// Scale 2: a smaller economy, so shard boundaries land differently.
	smallCfg := econ.Small()
	smallCfg.Blocks = 250
	smallCfg.Users = 40
	ws, err := econ.Generate(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := txgraph.Build(ws.Chain)
	if err != nil {
		t.Fatal(err)
	}
	scales[1].g = gs
	scales[1].dice = ws.GroundTruthDiceIDs(gs)

	for _, sc := range scales {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			configs := []struct {
				name string
				cfg  cluster.ChangeConfig
			}{
				{"unrefined", cluster.Unrefined()},
				{"refined", cluster.Refined(sc.dice, 144)},
			}
			for _, tc := range configs {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					seqLabels, seqStats := cluster.FindChangeOutputs(sc.g, tc.cfg)
					if seqStats.Labeled == 0 {
						t.Fatal("replay labeled nothing; the comparison would be vacuous")
					}
					for _, workers := range []int{2, 3, 4, 8, 16} {
						parLabels, parStats := cluster.FindChangeOutputsWorkers(sc.g, tc.cfg, workers)
						if parStats != seqStats {
							t.Fatalf("workers=%d: stats differ:\nseq: %+v\npar: %+v",
								workers, seqStats, parStats)
						}
						if !reflect.DeepEqual(parLabels, seqLabels) {
							t.Fatalf("workers=%d: labels differ from the sequential replay", workers)
						}
					}
				})
			}
		})
	}
}

// A graph with fewer transactions than workers must still classify
// correctly (the shard count clamps to the transaction count).
func TestChangeClassifierMoreWorkersThanTxs(t *testing.T) {
	_, g := econGraph(t)
	seqLabels, seqStats := cluster.FindChangeOutputs(g, cluster.Unrefined())
	parLabels, parStats := cluster.FindChangeOutputsWorkers(g, cluster.Unrefined(), g.NumTxs()+7)
	if parStats != seqStats || !reflect.DeepEqual(parLabels, seqLabels) {
		t.Fatal("oversized worker count changed the classifier output")
	}
}
