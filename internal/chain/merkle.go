package chain

// MerkleRoot computes the merkle root over a list of transaction ids using
// Bitcoin's rule: pairs of hashes are concatenated and double-SHA256'd; an
// odd final element is paired with itself; the process repeats until a
// single root remains. An empty list yields the zero hash.
func MerkleRoot(txids []Hash) Hash {
	switch len(txids) {
	case 0:
		return ZeroHash
	case 1:
		return txids[0]
	}
	level := make([]Hash, len(txids))
	copy(level, txids)
	var buf [2 * HashSize]byte
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			j := i + 1
			if j == len(level) {
				j = i // duplicate the odd final element
			}
			copy(buf[:HashSize], level[i][:])
			copy(buf[HashSize:], level[j][:])
			next = append(next, DoubleSHA256(buf[:]))
		}
		level = next
	}
	return level[0]
}

// BlockMerkleRoot computes the merkle root of a block's transactions.
func BlockMerkleRoot(txs []*Tx) Hash {
	ids := make([]Hash, len(txs))
	for i, tx := range txs {
		ids[i] = tx.TxID()
	}
	return MerkleRoot(ids)
}
