package chain

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// The framed chain format is the on-disk shape of a chain: a fixed header
// (magic plus format version) followed by one length-prefixed frame per
// block, each frame holding the block's wire serialization from
// serialize.go. Length prefixes let a reader skip or bound-check a block
// without decoding it, and let a truncated or corrupted file fail with a
// precise error instead of a misparse. The format is what `fistful
// generate -out` writes and what the streaming measurement pipeline
// (`-chain`) consumes, so chains far larger than RAM never need to be
// resident as object graphs. The byte-level spec — framing, the block
// wire encoding, and the bounds the readers enforce — is docs/FORMATS.md.

// streamMagic identifies a framed chain file ("FBC" + format version 1).
var streamMagic = [4]byte{'F', 'B', 'C', 0x01}

// maxBlockFrame bounds a single block frame so a corrupted length prefix
// fails fast instead of forcing a giant allocation or a long blind read.
const maxBlockFrame = 1 << 28 // 256 MiB, far above any simulated block

// ErrBadMagic is returned when a stream does not start with the framed
// chain header.
var ErrBadMagic = errors.New("chain: not a framed chain stream (bad magic)")

// BlockSource is an iterator over a chain's blocks in height order.
// NextBlock returns io.EOF after the final block. Implementations are the
// disk-backed Reader and the in-memory Chain.Source; everything on the
// measurement side of the pipeline consumes this interface so the two are
// interchangeable.
type BlockSource interface {
	// NextBlock returns the next block, or (nil, io.EOF) when exhausted.
	// Any other error is terminal.
	NextBlock() (*Block, error)
}

// Writer emits blocks in the framed chain format. Writes are buffered;
// callers must Flush when done.
type Writer struct {
	w      *bufio.Writer
	frame  bytes.Buffer
	blocks int64
}

// NewWriter writes the stream header to w and returns a Writer appending
// frames to it.
func NewWriter(w io.Writer) (*Writer, error) {
	sw := &Writer{w: bufio.NewWriterSize(w, 1<<20)}
	if _, err := sw.w.Write(streamMagic[:]); err != nil {
		return nil, fmt.Errorf("chain: write stream header: %w", err)
	}
	return sw, nil
}

// WriteBlock appends one block frame.
func (sw *Writer) WriteBlock(b *Block) error {
	sw.frame.Reset()
	if err := b.Serialize(&sw.frame); err != nil {
		return fmt.Errorf("chain: serialize block %d: %w", sw.blocks, err)
	}
	if sw.frame.Len() > maxBlockFrame {
		return fmt.Errorf("chain: block %d frame is %d bytes, exceeds limit", sw.blocks, sw.frame.Len())
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(sw.frame.Len()))
	if _, err := sw.w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("chain: write block %d frame: %w", sw.blocks, err)
	}
	if _, err := sw.w.Write(sw.frame.Bytes()); err != nil {
		return fmt.Errorf("chain: write block %d frame: %w", sw.blocks, err)
	}
	sw.blocks++
	return nil
}

// Blocks returns how many blocks have been written.
func (sw *Writer) Blocks() int64 { return sw.blocks }

// Flush flushes any buffered frame bytes to the underlying writer.
func (sw *Writer) Flush() error { return sw.w.Flush() }

// Reader streams blocks back out of the framed chain format. It implements
// BlockSource.
type Reader struct {
	r      io.Reader
	frame  []byte
	blocks int64
}

// NewReader checks the stream header of r and returns a Reader iterating
// its frames. Callers streaming from an unbuffered source should wrap it in
// a bufio.Reader first.
func NewReader(r io.Reader) (*Reader, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("chain: read stream header: %w", eofIsUnexpected(err))
	}
	if magic != streamMagic {
		return nil, ErrBadMagic
	}
	return &Reader{r: r}, nil
}

// NextBlock decodes the next frame, returning io.EOF once the stream is
// exhausted. A stream that ends mid-frame, a frame whose length prefix
// exceeds the format bound, and a frame whose payload is shorter or longer
// than the block it frames all produce wrapped errors naming the failing
// block index.
func (sr *Reader) NextBlock() (*Block, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(sr.r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean end of stream
		}
		return nil, fmt.Errorf("chain: block %d: truncated frame length: %w", sr.blocks, eofIsUnexpected(err))
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > maxBlockFrame {
		return nil, fmt.Errorf("chain: block %d: frame length %d exceeds limit (corrupt length prefix?)", sr.blocks, n)
	}
	if uint32(cap(sr.frame)) < n {
		sr.frame = make([]byte, n)
	}
	frame := sr.frame[:n]
	if _, err := io.ReadFull(sr.r, frame); err != nil {
		return nil, fmt.Errorf("chain: block %d: truncated frame (want %d bytes): %w", sr.blocks, n, eofIsUnexpected(err))
	}
	body := bytes.NewReader(frame)
	b := new(Block)
	if err := b.Deserialize(body); err != nil {
		return nil, fmt.Errorf("chain: block %d: decode: %w", sr.blocks, eofIsUnexpected(err))
	}
	if body.Len() != 0 {
		return nil, fmt.Errorf("chain: block %d: frame has %d trailing bytes", sr.blocks, body.Len())
	}
	sr.blocks++
	return b, nil
}

// Blocks returns how many blocks have been decoded so far.
func (sr *Reader) Blocks() int64 { return sr.blocks }

// eofIsUnexpected converts a bare io.EOF into io.ErrUnexpectedEOF: inside a
// frame or header, running out of bytes is truncation, not a clean end.
func eofIsUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// FileReader is a Reader over an opened chain file; Close releases the file.
type FileReader struct {
	Reader
	f *os.File
}

// OpenReader opens a framed chain file for streaming.
func OpenReader(path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("chain: open chain file: %w", err)
	}
	r, err := NewReader(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileReader{Reader: *r, f: f}, nil
}

// Close closes the underlying file.
func (fr *FileReader) Close() error { return fr.f.Close() }

// memSource iterates an in-memory block slice; see Chain.Source.
type memSource struct {
	blocks []*Block
	next   int
}

func (m *memSource) NextBlock() (*Block, error) {
	if m.next >= len(m.blocks) {
		return nil, io.EOF
	}
	b := m.blocks[m.next]
	m.next++
	return b, nil
}

// Source returns a BlockSource iterating the chain's resident blocks in
// height order. It is the in-memory counterpart of Reader: the streaming
// graph build consumes either interchangeably.
func (c *Chain) Source() BlockSource { return &memSource{blocks: c.blocks} }
