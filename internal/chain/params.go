package chain

import "time"

// Params holds the consensus and simulation parameters of a chain instance.
// The defaults mirror Bitcoin's deployed values where the paper depends on
// them (50 BTC subsidy halving to 25 at block 210,000 — Section 2.1) and are
// otherwise scaled for simulation speed.
type Params struct {
	// Magic distinguishes wire-protocol networks.
	Magic uint32
	// InitialSubsidy is the block reward at height 0.
	InitialSubsidy Amount
	// HalvingInterval is the number of blocks between subsidy halvings.
	HalvingInterval int64
	// CoinbaseMaturity is the number of blocks a coin generation must be
	// buried under before its output may be spent.
	CoinbaseMaturity int64
	// TargetBits encodes the proof-of-work target for mined blocks. The
	// simulator uses a very easy target so mining completes in microseconds.
	TargetBits uint32
	// GenesisTime is the timestamp of block 0 (Bitcoin: 2009-01-03).
	GenesisTime time.Time
	// BlockInterval is the simulated time between consecutive blocks.
	BlockInterval time.Duration
	// MaxBlockTxs caps the number of transactions per block (including the
	// coinbase); the economy simulator packs up to this many.
	MaxBlockTxs int
}

// MainNetParams are Bitcoin-shaped defaults used by tests and the default
// economy configuration.
func MainNetParams() Params {
	return Params{
		Magic:            0xf9beb4d9,
		InitialSubsidy:   50 * Coin,
		HalvingInterval:  210_000,
		CoinbaseMaturity: 100,
		// Target with 16 leading zero bits: trivially minable in software.
		TargetBits:    16,
		GenesisTime:   time.Date(2009, 1, 3, 18, 15, 5, 0, time.UTC),
		BlockInterval: 10 * time.Minute,
		MaxBlockTxs:   4000,
	}
}

// SimParams returns parameters scaled for the economy simulator: the halving
// interval is set by the caller so the 50→25 subsidy drop lands at the same
// *fraction* of the simulated timeline as Bitcoin's November 2012 halving.
func SimParams(halvingAt int64, blockInterval time.Duration) Params {
	p := MainNetParams()
	p.HalvingInterval = halvingAt
	p.BlockInterval = blockInterval
	p.CoinbaseMaturity = 10
	return p
}

// SubsidyAt returns the block subsidy at the given height: the initial
// subsidy halved once per completed halving interval, reaching zero after 64
// halvings (Section 2.1: "eventually drop to 0 in 2140").
func (p *Params) SubsidyAt(height int64) Amount {
	if p.HalvingInterval <= 0 {
		return p.InitialSubsidy
	}
	halvings := height / p.HalvingInterval
	if halvings >= 64 {
		return 0
	}
	return p.InitialSubsidy >> uint(halvings)
}

// TimeAt returns the simulated wall-clock timestamp of a block height.
func (p *Params) TimeAt(height int64) time.Time {
	return p.GenesisTime.Add(time.Duration(height) * p.BlockInterval)
}

// HeightFor returns the first block height whose timestamp is >= t, or 0 if
// t precedes genesis.
func (p *Params) HeightFor(t time.Time) int64 {
	if !t.After(p.GenesisTime) {
		return 0
	}
	d := t.Sub(p.GenesisTime)
	h := int64(d / p.BlockInterval)
	if p.TimeAt(h).Before(t) {
		h++
	}
	return h
}

// CheckProofOfWork reports whether the block hash has at least TargetBits
// leading zero bits. Hash bytes are interpreted big-endian for this check,
// which is a simplification of Bitcoin's compact-target comparison that
// preserves the "hash begins with a certain number of zeroes" property the
// paper describes.
func (p *Params) CheckProofOfWork(h Hash) bool {
	bits := p.TargetBits
	i := 0
	for ; bits >= 8; bits -= 8 {
		if h[i] != 0 {
			return false
		}
		i++
	}
	if bits == 0 {
		return true
	}
	return h[i]>>(8-bits) == 0
}
