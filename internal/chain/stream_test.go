package chain

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// streamTestChain builds a few blocks' worth of framed chain bytes plus the
// source blocks for comparison.
func streamTestChain(t *testing.T) ([]*Block, []byte) {
	t.Helper()
	h := newHarness(t)
	key := h.newKey()
	for i := 0; i < 5; i++ {
		h.mineTo(key)
	}
	var buf bytes.Buffer
	sw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range h.chain.Blocks() {
		if err := sw.WriteBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	return h.chain.Blocks(), buf.Bytes()
}

func TestStreamRoundTrip(t *testing.T) {
	blocks, raw := streamTestChain(t)
	sr, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range blocks {
		got, err := sr.NextBlock()
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if got.BlockHash() != want.BlockHash() {
			t.Fatalf("block %d: hash mismatch", i)
		}
		if len(got.Txs) != len(want.Txs) {
			t.Fatalf("block %d: %d txs, want %d", i, len(got.Txs), len(want.Txs))
		}
	}
	if _, err := sr.NextBlock(); err != io.EOF {
		t.Fatalf("after last block: got %v, want io.EOF", err)
	}
	if sr.Blocks() != int64(len(blocks)) {
		t.Fatalf("Blocks() = %d, want %d", sr.Blocks(), len(blocks))
	}
}

func TestChainSourceMatchesReader(t *testing.T) {
	h := newHarness(t)
	key := h.newKey()
	for i := 0; i < 3; i++ {
		h.mineTo(key)
	}
	src := h.chain.Source()
	for i := 0; ; i++ {
		b, err := src.NextBlock()
		if err == io.EOF {
			if int64(i) != h.chain.Height()+1 {
				t.Fatalf("source yielded %d blocks, chain has %d", i, h.chain.Height()+1)
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if b != h.chain.BlockAt(int64(i)) {
			t.Fatalf("block %d: source does not alias the chain block", i)
		}
	}
}

func TestOpenReaderStreamsFile(t *testing.T) {
	blocks, raw := streamTestChain(t)
	path := filepath.Join(t.TempDir(), "chain.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fr, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	n := 0
	for {
		b, err := fr.NextBlock()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.BlockHash() != blocks[n].BlockHash() {
			t.Fatalf("block %d mismatch", n)
		}
		n++
	}
	if n != len(blocks) {
		t.Fatalf("streamed %d blocks, want %d", n, len(blocks))
	}
}

func TestReaderBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte{'n', 'o', 'p', 'e', 0, 0}))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestReaderTruncatedHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte{'F', 'B'}))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got %v, want wrapped io.ErrUnexpectedEOF", err)
	}
}

// TestReaderTruncation cuts the valid stream at every byte boundary class
// that matters: inside a frame length prefix and inside a block body. Every
// cut must surface as a wrapped io.ErrUnexpectedEOF, never a panic or a
// silent success.
func TestReaderTruncation(t *testing.T) {
	blocks, raw := streamTestChain(t)
	cases := []struct {
		name string
		cut  int
	}{
		{"inside first frame length", 4 + 2},
		{"inside first block body", 4 + 4 + 10},
		{"inside last block body", len(raw) - 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sr, err := NewReader(bytes.NewReader(raw[:tc.cut]))
			if err != nil {
				t.Fatal(err)
			}
			var last error
			for i := 0; i <= len(blocks); i++ {
				if _, last = sr.NextBlock(); last != nil {
					break
				}
			}
			if !errors.Is(last, io.ErrUnexpectedEOF) {
				t.Fatalf("got %v, want wrapped io.ErrUnexpectedEOF", last)
			}
		})
	}
}

func TestReaderCorruptFrameLength(t *testing.T) {
	_, raw := streamTestChain(t)
	mut := append([]byte(nil), raw...)
	// Overwrite the first frame's length prefix with a value beyond the
	// format bound.
	binary.LittleEndian.PutUint32(mut[4:8], maxBlockFrame+1)
	sr, err := NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.NextBlock(); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("got %v, want frame length limit error", err)
	}
}

// TestReaderTrailingFrameBytes corrupts a frame so the block decodes short
// of the frame's declared length; the reader must reject the leftovers.
func TestReaderTrailingFrameBytes(t *testing.T) {
	h := newHarness(t)
	key := h.newKey()
	b := h.mineTo(key)

	var body bytes.Buffer
	if err := b.Serialize(&body); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Write(streamMagic[:])
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(body.Len()+3))
	buf.Write(lenBuf[:])
	buf.Write(body.Bytes())
	buf.Write([]byte{1, 2, 3})

	sr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.NextBlock(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("got %v, want trailing-bytes error", err)
	}
}

// TestWriteToReadFromFramed proves the chain-level snapshot round-trips
// through the framed format and that the bytes are Reader-compatible.
func TestWriteToReadFromFramed(t *testing.T) {
	h := newHarness(t)
	key := h.newKey()
	for i := 0; i < 4; i++ {
		h.mineTo(key)
	}
	var buf bytes.Buffer
	if _, err := h.chain.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("WriteTo output is not Reader-framed: %v", err)
	}
	for {
		if _, err := sr.NextBlock(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if sr.Blocks() != h.chain.Height()+1 {
		t.Fatalf("framed %d blocks, want %d", sr.Blocks(), h.chain.Height()+1)
	}

	restored := New(*h.chain.Params())
	if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.TipHash() != h.chain.TipHash() {
		t.Fatal("restored chain tip differs")
	}
}
