package chain

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzSeedStreams builds the framed-chain byte strings used both as f.Add
// seeds and as the committed corpus under testdata/fuzz. Construction is
// deterministic (no mining harness) so corpus regeneration is stable.
func fuzzSeedStreams() [][]byte {
	mkBlock := func(height int64, extra byte) *Block {
		return &Block{
			Header: BlockHeader{Version: 1, Timestamp: height},
			Txs:    []*Tx{NewCoinbaseTx(height, BTC(50), []byte{0x51, extra}, nil)},
		}
	}
	stream := func(blocks ...*Block) []byte {
		var buf bytes.Buffer
		sw, err := NewWriter(&buf)
		if err != nil {
			panic(err)
		}
		for _, b := range blocks {
			if err := sw.WriteBlock(b); err != nil {
				panic(err)
			}
		}
		if err := sw.Flush(); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}

	valid := stream(mkBlock(1, 0xAA), mkBlock(2, 0xBB))
	single := stream(mkBlock(1, 0xCC))
	seeds := [][]byte{
		valid,
		single,
		streamMagic[:],       // header-only: zero blocks, clean EOF
		[]byte("XXXX"),       // bad magic
		[]byte("FB"),         // truncated header
		valid[:len(valid)-3], // truncated final frame
		append(append([]byte{}, single...), 0xFF, 0xFF, 0xFF, 0x7F), // huge length prefix after a valid block
		append(append([]byte{}, single...), 5, 0, 0, 0, 1, 2),       // frame shorter than its prefix
	}
	return seeds
}

// FuzzReadBlockFrame drives the framed-chain Reader with arbitrary bytes.
// Whatever the input, the reader must not panic, must end every stream with
// either a clean io.EOF or a descriptive error (never a bare io.EOF
// mid-frame), and every block it does decode must re-serialize.
func FuzzReadBlockFrame(f *testing.F) {
	for _, seed := range fuzzSeedStreams() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("NewReader returned bare io.EOF: %v", err)
			}
			return
		}
		for {
			b, err := sr.NextBlock()
			if err == io.EOF {
				return // clean end of stream
			}
			if err != nil {
				// Mid-frame truncation and corruption must name the block
				// and never surface as a clean end-of-stream.
				if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("NextBlock error wraps bare io.EOF: %v", err)
				}
				return
			}
			// A decoded block must round-trip: re-serialize and hash.
			var buf bytes.Buffer
			if err := b.Serialize(&buf); err != nil {
				t.Fatalf("decoded block does not re-serialize: %v", err)
			}
			rt := new(Block)
			if err := rt.Deserialize(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("re-serialized block does not decode: %v", err)
			}
			if rt.BlockHash() != b.BlockHash() {
				t.Fatalf("block hash changed across serialize round-trip")
			}
		}
	})
}

// TestRegenerateFuzzCorpus rewrites the committed seed corpus from
// fuzzSeedStreams. Run with REGEN_FUZZ_CORPUS=1 after changing the framed
// format or the seed set; otherwise it only verifies the files are present
// and current.
func TestRegenerateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzReadBlockFrame")
	regen := os.Getenv("REGEN_FUZZ_CORPUS") != ""
	if regen {
		if err := os.MkdirAll(dir, 0o777); err != nil {
			t.Fatal(err)
		}
	}
	for i, seed := range fuzzSeedStreams() {
		name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		if regen {
			if err := os.WriteFile(name, []byte(content), 0o666); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("%v (run with REGEN_FUZZ_CORPUS=1 to write the corpus)", err)
		}
		if string(got) != content {
			t.Errorf("%s is stale (run with REGEN_FUZZ_CORPUS=1 to rewrite)", name)
		}
	}
}
