package chain

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVarIntRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 0xfc, 0xfd, 0xfffe, 0xffff, 0x10000, 0xffffffff, 0x100000000, 1<<63 + 7, ^uint64(0)}
	for _, v := range cases {
		var buf bytes.Buffer
		if err := WriteVarInt(&buf, v); err != nil {
			t.Fatalf("write %d: %v", v, err)
		}
		got, err := ReadVarInt(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", v, err)
		}
		if got != v {
			t.Errorf("roundtrip %d -> %d", v, got)
		}
	}
}

func TestVarIntEncodedSizes(t *testing.T) {
	sizes := map[uint64]int{0: 1, 0xfc: 1, 0xfd: 3, 0xffff: 3, 0x10000: 5, 0xffffffff: 5, 0x100000000: 9}
	for v, want := range sizes {
		var buf bytes.Buffer
		if err := WriteVarInt(&buf, v); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != want {
			t.Errorf("varint %d encoded to %d bytes, want %d", v, buf.Len(), want)
		}
	}
}

func TestVarIntRejectsNonCanonical(t *testing.T) {
	bad := [][]byte{
		{0xfd, 0x01, 0x00},                                     // 1 encoded with 3 bytes
		{0xfe, 0xff, 0xff, 0x00, 0x00},                         // 0xffff encoded with 5 bytes
		{0xff, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}, // 1 encoded with 9 bytes
	}
	for _, b := range bad {
		if _, err := ReadVarInt(bytes.NewReader(b)); err == nil {
			t.Errorf("accepted non-canonical encoding % x", b)
		}
	}
}

func TestVarIntPropertyRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		var buf bytes.Buffer
		if err := WriteVarInt(&buf, v); err != nil {
			return false
		}
		got, err := ReadVarInt(&buf)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarBytesTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVarBytes(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		if _, err := ReadVarBytes(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("accepted truncation at %d", cut)
		}
	}
}

func TestVarBytesHostileLength(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVarInt(&buf, 1<<40); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadVarBytes(&buf); err == nil {
		t.Fatal("accepted 1 TiB length prefix")
	}
}

// randomTx builds a structurally valid random transaction for round-trip
// tests.
func randomTx(rng *rand.Rand) *Tx {
	tx := &Tx{Version: 1, LockTime: rng.Uint32()}
	nIn := 1 + rng.Intn(4)
	for i := 0; i < nIn; i++ {
		var op OutPoint
		rng.Read(op.TxID[:])
		op.Index = uint32(rng.Intn(10))
		script := make([]byte, rng.Intn(80))
		rng.Read(script)
		tx.Inputs = append(tx.Inputs, TxIn{Prev: op, SigScript: script, Sequence: rng.Uint32()})
	}
	nOut := 1 + rng.Intn(4)
	for i := 0; i < nOut; i++ {
		script := make([]byte, rng.Intn(40))
		rng.Read(script)
		tx.Outputs = append(tx.Outputs, TxOut{Value: Amount(rng.Int63n(int64(MaxMoney))), PkScript: script})
	}
	return tx
}

func TestTxRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		tx := randomTx(rng)
		var buf bytes.Buffer
		if err := tx.Serialize(&buf); err != nil {
			t.Fatal(err)
		}
		var got Tx
		if err := got.Deserialize(&buf); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if got.TxID() != tx.TxID() {
			t.Fatalf("iteration %d: txid changed across roundtrip", i)
		}
		if !txEqual(&got, tx) {
			t.Fatalf("iteration %d: structure changed across roundtrip", i)
		}
	}
}

// txEqual compares transactions treating nil and empty scripts as equal,
// which the wire format cannot distinguish.
func txEqual(a, b *Tx) bool {
	norm := func(tx *Tx) *Tx {
		cp := tx.Copy()
		for i := range cp.Inputs {
			if len(cp.Inputs[i].SigScript) == 0 {
				cp.Inputs[i].SigScript = nil
			}
		}
		for i := range cp.Outputs {
			if len(cp.Outputs[i].PkScript) == 0 {
				cp.Outputs[i].PkScript = nil
			}
		}
		return cp
	}
	return reflect.DeepEqual(norm(a), norm(b))
}

func TestBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := &Block{Header: BlockHeader{Version: 1, Timestamp: 1234567890, Bits: 16, Nonce: 99}}
	rng.Read(b.Header.PrevBlock[:])
	for i := 0; i < 5; i++ {
		b.Txs = append(b.Txs, randomTx(rng))
	}
	b.Header.MerkleRoot = BlockMerkleRoot(b.Txs)

	var buf bytes.Buffer
	if err := b.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	var got Block
	if err := got.Deserialize(&buf); err != nil {
		t.Fatal(err)
	}
	if got.BlockHash() != b.BlockHash() {
		t.Fatal("block hash changed across roundtrip")
	}
	if len(got.Txs) != len(b.Txs) {
		t.Fatalf("tx count %d != %d", len(got.Txs), len(b.Txs))
	}
}

func TestHeaderIs80Bytes(t *testing.T) {
	var h BlockHeader
	var buf bytes.Buffer
	if err := h.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 84 {
		// 4 version + 32 prev + 32 merkle + 8 time + 4 bits + 4 nonce.
		// (We widen Bitcoin's 4-byte timestamp to 8; everything else matches.)
		t.Fatalf("header serialized to %d bytes, want 84", buf.Len())
	}
}

func TestTxDeserializeTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tx := randomTx(rng)
	var buf bytes.Buffer
	if err := tx.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		var got Tx
		if err := got.Deserialize(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("accepted truncation at %d/%d", cut, len(raw))
		}
	}
}

func TestTxDeserializeHostileCounts(t *testing.T) {
	var buf bytes.Buffer
	if err := writeUint32(&buf, 1); err != nil { // version
		t.Fatal(err)
	}
	if err := WriteVarInt(&buf, maxTxItems+1); err != nil { // absurd input count
		t.Fatal(err)
	}
	var tx Tx
	if err := tx.Deserialize(&buf); err == nil {
		t.Fatal("accepted hostile input count")
	}
}

func TestReadVarIntEOF(t *testing.T) {
	if _, err := ReadVarInt(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}
