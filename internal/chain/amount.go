package chain

import (
	"fmt"
	"math"
)

// Amount is a monetary value in satoshis (1e-8 BTC), following Bitcoin's
// integer representation so arithmetic is exact.
type Amount int64

// Monetary constants mirroring the Bitcoin protocol parameters described in
// Section 2.1 of the paper.
const (
	// Satoshi is the smallest unit of value.
	Satoshi Amount = 1
	// Coin is one bitcoin in satoshis.
	Coin Amount = 1e8
	// MaxCoins is the 21 million coin supply cap.
	MaxCoins = 21_000_000
	// MaxMoney is the supply cap in satoshis; no transaction output or sum
	// of outputs may exceed it.
	MaxMoney = MaxCoins * Coin
)

// BTC converts a floating-point bitcoin quantity to an Amount, rounding to
// the nearest satoshi. It is intended for configuration and test fixtures;
// ledger arithmetic itself stays in integers.
func BTC(v float64) Amount {
	return Amount(math.Round(v * float64(Coin)))
}

// ToBTC returns the amount as a floating-point bitcoin quantity.
func (a Amount) ToBTC() float64 { return float64(a) / float64(Coin) }

// Valid reports whether the amount lies in the protocol's allowed range
// [0, MaxMoney].
func (a Amount) Valid() bool { return a >= 0 && a <= MaxMoney }

// String formats the amount as a BTC quantity with 8 decimal places,
// trimming is deliberately avoided so values align in tables.
func (a Amount) String() string {
	sign := ""
	v := a
	if v < 0 {
		sign = "-"
		v = -v
	}
	return fmt.Sprintf("%s%d.%08d BTC", sign, v/Coin, v%Coin)
}
