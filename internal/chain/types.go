package chain

import (
	"bytes"
	"fmt"
	"sync/atomic"
)

// OutPoint identifies a transaction output by the id of the transaction that
// created it and the output's index within that transaction.
type OutPoint struct {
	TxID  Hash
	Index uint32
}

// CoinbaseOutputIndex is the sentinel index used by coinbase inputs.
const CoinbaseOutputIndex = ^uint32(0)

// String renders the outpoint as "txid:index".
func (o OutPoint) String() string { return fmt.Sprintf("%s:%d", o.TxID, o.Index) }

// IsNull reports whether the outpoint is the null reference used by coinbase
// inputs (zero hash, max index).
func (o OutPoint) IsNull() bool { return o.TxID.IsZero() && o.Index == CoinbaseOutputIndex }

// TxIn is a transaction input: a reference to a previous output being spent
// together with the script that satisfies that output's spending condition.
type TxIn struct {
	Prev      OutPoint
	SigScript []byte
	Sequence  uint32
}

// TxOut is a transaction output: a value and the script that encumbers it.
type TxOut struct {
	Value    Amount
	PkScript []byte
}

// Tx is a transaction: a signed transfer of value from a set of previous
// outputs to a set of new outputs. The multi-input form is what Heuristic 1
// exploits; the change-output idiom is what Heuristic 2 exploits.
type Tx struct {
	Version  int32
	Inputs   []TxIn
	Outputs  []TxOut
	LockTime uint32

	// id memoizes TxID. The identifier excludes signature scripts, so
	// filling signatures in later never invalidates it; Deserialize resets
	// it. Access is atomic so concurrent first calls race benignly (both
	// compute the same value).
	id atomic.Pointer[Hash]
}

// IsCoinbase reports whether the transaction is a coin generation: a single
// input with a null previous outpoint.
func (tx *Tx) IsCoinbase() bool {
	return len(tx.Inputs) == 1 && tx.Inputs[0].Prev.IsNull()
}

// TxID returns the transaction's identifier: the double-SHA256 of its
// serialization with every signature script stripped (coinbase input
// scripts, which carry data such as the block height rather than
// signatures, are retained — that is what keeps coinbase ids unique per
// block). Excluding signatures makes the id stable from construction
// through signing, which lets the economy generator credit recipients
// before the deferred block-seal signing fan-out runs; it is the same
// malleability-free identity BIP 141 later gave Bitcoin. The result is
// memoized: merkle construction, UTXO application and graph indexing all
// reuse the first computation.
func (tx *Tx) TxID() Hash {
	if p := tx.id.Load(); p != nil {
		return *p
	}
	var buf bytes.Buffer
	// Serialization to an in-memory buffer cannot fail.
	if err := tx.serializeStripped(&buf, true); err != nil {
		panic("chain: tx serialize: " + err.Error())
	}
	id := DoubleSHA256(buf.Bytes())
	tx.id.Store(&id)
	return id
}

// TotalOut returns the sum of all output values. The result may exceed
// MaxMoney for an invalid transaction; validation checks for that.
func (tx *Tx) TotalOut() Amount {
	var sum Amount
	for _, out := range tx.Outputs {
		sum += out.Value
	}
	return sum
}

// Copy returns a deep copy of the transaction.
func (tx *Tx) Copy() *Tx {
	cp := &Tx{Version: tx.Version, LockTime: tx.LockTime}
	cp.Inputs = make([]TxIn, len(tx.Inputs))
	for i, in := range tx.Inputs {
		cp.Inputs[i] = TxIn{Prev: in.Prev, Sequence: in.Sequence}
		if in.SigScript != nil {
			cp.Inputs[i].SigScript = append([]byte(nil), in.SigScript...)
		}
	}
	cp.Outputs = make([]TxOut, len(tx.Outputs))
	for i, out := range tx.Outputs {
		cp.Outputs[i] = TxOut{Value: out.Value}
		if out.PkScript != nil {
			cp.Outputs[i].PkScript = append([]byte(nil), out.PkScript...)
		}
	}
	return cp
}

// BlockHeader carries the metadata that chains blocks together and
// timestamps the transactions they contain (Section 2.1).
type BlockHeader struct {
	Version    int32
	PrevBlock  Hash
	MerkleRoot Hash
	Timestamp  int64 // Unix seconds
	Bits       uint32
	Nonce      uint32
}

// BlockHash returns the double-SHA256 of the serialized header.
func (h *BlockHeader) BlockHash() Hash {
	var buf bytes.Buffer
	if err := h.Serialize(&buf); err != nil {
		panic("chain: header serialize: " + err.Error())
	}
	return DoubleSHA256(buf.Bytes())
}

// Block groups transactions, vouching for their validity and ordering them
// in time relative to other blocks.
type Block struct {
	Header BlockHeader
	Txs    []*Tx
}

// BlockHash returns the hash of the block's header.
func (b *Block) BlockHash() Hash { return b.Header.BlockHash() }

// NewCoinbaseTx builds a coin-generation transaction paying subsidy+fees to
// pkScript. The extra bytes are placed in the signature script so that
// coinbases of different blocks (or different miners) have distinct ids.
func NewCoinbaseTx(height int64, value Amount, pkScript, extra []byte) *Tx {
	sig := make([]byte, 0, 9+len(extra))
	// Encode the height so coinbase ids are unique per block (BIP34-style).
	for v := uint64(height); ; v >>= 8 {
		sig = append(sig, byte(v))
		if v < 0x100 {
			break
		}
	}
	sig = append(sig, extra...)
	return &Tx{
		Version: 1,
		Inputs: []TxIn{{
			Prev:      OutPoint{TxID: ZeroHash, Index: CoinbaseOutputIndex},
			SigScript: sig,
			Sequence:  ^uint32(0),
		}},
		Outputs: []TxOut{{Value: value, PkScript: pkScript}},
	}
}
