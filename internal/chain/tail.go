package chain

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/faults"
)

// TailReader follows a framed chain file that another process may still be
// appending to: Next blocks — polling the file and honoring ctx — until a
// complete frame is available, so a writer flushing mid-frame is observed as
// "not yet", never as corruption. It reads with ReadAt at an explicit offset
// and only advances past a frame once the whole frame decoded, which makes
// partially-written suffixes harmless. Unlike Reader, a TailReader never
// returns io.EOF: end-of-file just means the writer has not caught up.
// The framed format itself is specified in docs/FORMATS.md.
type TailReader struct {
	f        TailFile
	off      int64 // first byte after the last fully-decoded frame
	blocks   int64
	frame    []byte
	poll     time.Duration
	headerOK bool
}

// tailPoll is how often Next re-checks a file that had no complete frame.
// The daemon's ingest cadence is blocks (seconds to minutes apart), so the
// exact value only bounds shutdown-free wakeup latency.
const tailPoll = 25 * time.Millisecond

// ErrShortFrame reports that the file ends before the next frame completes —
// the tail condition. Next retries it internally; it escapes only through
// TryNext, where it means "no complete frame yet", so feed-layer probes can
// distinguish a short file from corruption.
var ErrShortFrame = errors.New("chain: tail: incomplete frame")

// ErrTailTruncated reports that the file shrank below the reader's current
// offset: bytes already delivered were removed, which is how a chain
// reorganization appears to a tailing reader. Next returns it as a terminal
// error; the feed layer above turns it into a rewind-and-replay.
var ErrTailTruncated = errors.New("chain: tail: file truncated below read offset")

// TailFile is the slice of *os.File a TailReader needs. It exists as a seam:
// fault-injection harnesses wrap a real file to simulate short reads,
// EAGAIN-style hiccups, and truncation without touching the filesystem.
type TailFile interface {
	io.ReaderAt
	Stat() (os.FileInfo, error)
	Close() error
}

// OpenTail opens a framed chain file for tailing. The file must exist, but
// may still be empty: the stream header itself is awaited by Next like any
// other bytes.
func OpenTail(path string) (*TailReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("chain: open chain file: %w", err)
	}
	return NewTailReader(f), nil
}

// NewTailReader tails an already-open file (or any TailFile). The reader
// takes ownership: Close closes f.
func NewTailReader(f TailFile) *TailReader {
	return &TailReader{f: f, poll: tailPoll}
}

// Next returns the next block, waiting for the file to grow if the frame is
// not complete yet. It returns ctx.Err() once ctx is done, and a terminal
// error on a corrupt header or frame.
func (t *TailReader) Next(ctx context.Context) (*Block, error) {
	for {
		b, err := t.tryNext()
		if err == nil {
			return b, nil
		}
		if err != ErrShortFrame {
			return nil, err
		}
		timer := time.NewTimer(t.poll)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
}

// Buffered reports whether a complete frame is available right now, so a
// caller can distinguish "more blocks queued" from "caught up with the
// writer" without blocking.
func (t *TailReader) Buffered() bool {
	off := t.off
	if !t.headerOK {
		off = int64(len(streamMagic))
	}
	st, err := t.f.Stat()
	if err != nil || st.Size() < off+4 {
		return false
	}
	var lenBuf [4]byte
	if _, err := t.f.ReadAt(lenBuf[:], off); err != nil {
		return false
	}
	n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
	return n <= maxBlockFrame && st.Size() >= off+4+n
}

// tryNext decodes one frame at the current offset, returning ErrShortFrame
// when the file does not yet hold a complete one and ErrTailTruncated when
// the file has shrunk below the offset.
func (t *TailReader) tryNext() (*Block, error) {
	if !t.headerOK {
		var magic [4]byte
		if _, err := t.f.ReadAt(magic[:], 0); err != nil {
			return nil, t.shortOrTerminal(err, "chain: read stream header")
		}
		if magic != streamMagic {
			return nil, ErrBadMagic
		}
		t.headerOK = true
		t.off = int64(len(streamMagic))
	}
	var lenBuf [4]byte
	if _, err := t.f.ReadAt(lenBuf[:], t.off); err != nil {
		return nil, t.shortOrTerminal(err, fmt.Sprintf("chain: block %d: read frame length", t.blocks))
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > maxBlockFrame {
		return nil, fmt.Errorf("chain: block %d: frame length %d exceeds limit (corrupt length prefix?)", t.blocks, n)
	}
	if uint32(cap(t.frame)) < n {
		t.frame = make([]byte, n)
	}
	frame := t.frame[:n]
	if _, err := t.f.ReadAt(frame, t.off+4); err != nil {
		return nil, t.shortOrTerminal(err, fmt.Sprintf("chain: block %d: read frame", t.blocks))
	}
	// The full frame is present, so from here any failure is real corruption,
	// exactly as in Reader.NextBlock.
	body := bytes.NewReader(frame)
	b := new(Block)
	if err := b.Deserialize(body); err != nil {
		return nil, fmt.Errorf("chain: block %d: decode: %w", t.blocks, eofIsUnexpected(err))
	}
	if body.Len() != 0 {
		return nil, fmt.Errorf("chain: block %d: frame has %d trailing bytes", t.blocks, body.Len())
	}
	t.off += 4 + int64(n)
	t.blocks++
	return b, nil
}

// shortOrTerminal maps a ReadAt running off the end of the file to
// ErrShortFrame (the bytes have not been appended yet) — unless the file has
// shrunk below the current offset, which is ErrTailTruncated — and wraps
// anything else as a terminal error. Retryable read failures (EAGAIN-class
// errnos, or errors a fault-injecting TailFile already marked) keep their
// transient classification through the wrap, so the layer above retries the
// read instead of treating the file as corrupt.
func (t *TailReader) shortOrTerminal(err error, what string) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		if st, serr := t.f.Stat(); serr == nil && st.Size() < t.off {
			return ErrTailTruncated
		}
		return ErrShortFrame
	}
	if faults.IsTransient(err) {
		return faults.Transient(fmt.Errorf("%s: %w", what, err))
	}
	return fmt.Errorf("%s: %w", what, err)
}

// TryNext attempts to decode one frame without waiting. It returns
// ErrShortFrame when the file does not (yet) hold a complete frame at the
// current offset, ErrTailTruncated when the file shrank below it, and a
// terminal error on corruption. The feed layer's reorg search uses it to
// probe frame boundaries after a Seek.
func (t *TailReader) TryNext() (*Block, error) { return t.tryNext() }

// Blocks returns how many blocks have been decoded so far.
func (t *TailReader) Blocks() int64 { return t.blocks }

// Offset returns the byte offset of the first byte after the last fully
// decoded frame (the stream-header length until the first frame decodes).
func (t *TailReader) Offset() int64 {
	if !t.headerOK {
		return int64(len(streamMagic))
	}
	return t.off
}

// SeekFrame repositions the reader to a known frame boundary: off must be the
// byte offset at which frame number blocks begins (an Offset value captured
// after decoding blocks frames, or the stream-header length for frame 0).
// The next TryNext or Next decodes from there. SeekFrame does not re-verify
// the stream header; use Restart to re-read a file from scratch.
func (t *TailReader) SeekFrame(off, blocks int64) {
	t.headerOK = true
	t.off = off
	t.blocks = blocks
}

// Restart rewinds the reader to the very beginning of the file, re-verifying
// the stream header on the next read — the recovery path when the writer
// rewrote the file from scratch.
func (t *TailReader) Restart() {
	t.headerOK = false
	t.off = 0
	t.blocks = 0
}

// Close releases the underlying file. A concurrent Next unblocks with the
// file's read error; callers shutting a daemon down cancel the ctx first.
func (t *TailReader) Close() error { return t.f.Close() }
