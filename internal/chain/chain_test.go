package chain

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/address"
	"repro/internal/script"
)

// testHarness wires up a chain plus helper key material for validation
// tests.
type testHarness struct {
	t      *testing.T
	chain  *Chain
	keys   []address.KeyPair
	nextID uint64
}

func newHarness(t *testing.T) *testHarness {
	t.Helper()
	params := MainNetParams()
	params.CoinbaseMaturity = 2
	return &testHarness{t: t, chain: New(params)}
}

func (h *testHarness) newKey() address.KeyPair {
	h.nextID++
	k := address.NewKeyFromSeed(1000, h.nextID)
	h.keys = append(h.keys, k)
	return k
}

// mineTo appends a block paying the full subsidy to key, carrying txs.
func (h *testHarness) mineTo(key address.KeyPair, txs ...*Tx) *Block {
	h.t.Helper()
	height := h.chain.Height() + 1
	var fees Amount
	for _, tx := range txs {
		var in Amount
		for _, txin := range tx.Inputs {
			e, ok := h.chain.UTXO().Lookup(txin.Prev)
			if !ok {
				h.t.Fatalf("mineTo: input %s not found", txin.Prev)
			}
			in += e.Value
		}
		fees += in - tx.TotalOut()
	}
	cb := NewCoinbaseTx(height, h.chain.Params().SubsidyAt(height)+fees,
		script.PayToAddr(key.Address()), nil)
	all := append([]*Tx{cb}, txs...)
	b := &Block{
		Header: BlockHeader{
			Version:    1,
			PrevBlock:  h.chain.TipHash(),
			MerkleRoot: BlockMerkleRoot(all),
			Timestamp:  h.chain.Params().TimeAt(height).Unix(),
		},
		Txs: all,
	}
	if err := h.chain.ConnectBlock(b, false, ConnectBlockOptions{Verifier: script.Verifier{}}); err != nil {
		h.t.Fatalf("mineTo height %d: %v", height, err)
	}
	return b
}

// spend builds a signed transaction moving the full value of op (owned by
// key) to outputs.
func (h *testHarness) spend(key address.KeyPair, op OutPoint, outs ...TxOut) *Tx {
	h.t.Helper()
	tx := &Tx{Version: 1, Inputs: []TxIn{{Prev: op, Sequence: ^uint32(0)}}, Outputs: outs}
	sig := key.Sign(SigHash(tx, 0))
	tx.Inputs[0].SigScript = script.SigScript(sig, key.PubKey())
	return tx
}

func TestChainGrowsAndPaysSubsidy(t *testing.T) {
	h := newHarness(t)
	miner := h.newKey()
	for i := 0; i < 5; i++ {
		h.mineTo(miner)
	}
	if h.chain.Height() != 4 {
		t.Fatalf("height = %d, want 4", h.chain.Height())
	}
	if got, want := h.chain.CoinsCreated(), 5*50*Coin; got != Amount(want) {
		t.Fatalf("coins created = %v, want %v", got, Amount(want))
	}
	if got := h.chain.UTXO().Total(); got != h.chain.CoinsCreated() {
		t.Fatalf("utxo total %v != created %v", got, h.chain.CoinsCreated())
	}
}

func TestSpendWithValidSignature(t *testing.T) {
	h := newHarness(t)
	miner, alice := h.newKey(), h.newKey()
	b := h.mineTo(miner)
	cbOut := OutPoint{TxID: b.Txs[0].TxID(), Index: 0}
	h.mineTo(miner) // bury once
	h.mineTo(miner) // maturity=2 satisfied

	tx := h.spend(miner, cbOut, TxOut{Value: 50 * Coin, PkScript: script.PayToAddr(alice.Address())})
	h.mineTo(miner, tx)
	if _, ok := h.chain.UTXO().Lookup(cbOut); ok {
		t.Fatal("spent output still in UTXO set")
	}
	if _, ok := h.chain.UTXO().Lookup(OutPoint{TxID: tx.TxID(), Index: 0}); !ok {
		t.Fatal("new output missing from UTXO set")
	}
}

func TestRejectWrongKeySignature(t *testing.T) {
	h := newHarness(t)
	miner, mallory := h.newKey(), h.newKey()
	b := h.mineTo(miner)
	h.mineTo(miner)
	h.mineTo(miner)
	cbOut := OutPoint{TxID: b.Txs[0].TxID(), Index: 0}

	// mallory signs with her own key for miner's output.
	tx := h.spend(mallory, cbOut, TxOut{Value: 50 * Coin, PkScript: script.PayToAddr(mallory.Address())})
	height := h.chain.Height() + 1
	cb := NewCoinbaseTx(height, h.chain.Params().SubsidyAt(height), script.PayToAddr(miner.Address()), nil)
	all := []*Tx{cb, tx}
	blk := &Block{Header: BlockHeader{PrevBlock: h.chain.TipHash(), MerkleRoot: BlockMerkleRoot(all)}, Txs: all}
	err := h.chain.ConnectBlock(blk, false, ConnectBlockOptions{Verifier: script.Verifier{}})
	if err == nil {
		t.Fatal("accepted spend signed with the wrong key")
	}
}

func TestRejectImmatureCoinbaseSpend(t *testing.T) {
	h := newHarness(t)
	miner := h.newKey()
	b := h.mineTo(miner)
	cbOut := OutPoint{TxID: b.Txs[0].TxID(), Index: 0}
	// Next block immediately tries to spend the fresh coinbase.
	tx := h.spend(miner, cbOut, TxOut{Value: 50 * Coin, PkScript: script.PayToAddr(miner.Address())})
	height := h.chain.Height() + 1
	cb := NewCoinbaseTx(height, h.chain.Params().SubsidyAt(height), script.PayToAddr(miner.Address()), nil)
	all := []*Tx{cb, tx}
	blk := &Block{Header: BlockHeader{PrevBlock: h.chain.TipHash(), MerkleRoot: BlockMerkleRoot(all)}, Txs: all}
	if err := h.chain.ConnectBlock(blk, false, ConnectBlockOptions{}); err == nil {
		t.Fatal("accepted immature coinbase spend")
	}
}

func TestRejectDoubleSpendInChain(t *testing.T) {
	h := newHarness(t)
	miner := h.newKey()
	b := h.mineTo(miner)
	h.mineTo(miner)
	h.mineTo(miner)
	cbOut := OutPoint{TxID: b.Txs[0].TxID(), Index: 0}
	tx1 := h.spend(miner, cbOut, TxOut{Value: 50 * Coin, PkScript: script.PayToAddr(miner.Address())})
	h.mineTo(miner, tx1)
	tx2 := h.spend(miner, cbOut, TxOut{Value: 50 * Coin, PkScript: script.PayToAddr(miner.Address())})
	height := h.chain.Height() + 1
	cb := NewCoinbaseTx(height, h.chain.Params().SubsidyAt(height), script.PayToAddr(miner.Address()), nil)
	all := []*Tx{cb, tx2}
	blk := &Block{Header: BlockHeader{PrevBlock: h.chain.TipHash(), MerkleRoot: BlockMerkleRoot(all)}, Txs: all}
	if err := h.chain.ConnectBlock(blk, false, ConnectBlockOptions{}); err == nil {
		t.Fatal("accepted double spend")
	}
}

func TestRejectValueInflation(t *testing.T) {
	h := newHarness(t)
	miner := h.newKey()
	b := h.mineTo(miner)
	h.mineTo(miner)
	h.mineTo(miner)
	cbOut := OutPoint{TxID: b.Txs[0].TxID(), Index: 0}
	tx := h.spend(miner, cbOut, TxOut{Value: 51 * Coin, PkScript: script.PayToAddr(miner.Address())})
	height := h.chain.Height() + 1
	cb := NewCoinbaseTx(height, h.chain.Params().SubsidyAt(height), script.PayToAddr(miner.Address()), nil)
	all := []*Tx{cb, tx}
	blk := &Block{Header: BlockHeader{PrevBlock: h.chain.TipHash(), MerkleRoot: BlockMerkleRoot(all)}, Txs: all}
	if err := h.chain.ConnectBlock(blk, false, ConnectBlockOptions{}); err == nil {
		t.Fatal("accepted output value exceeding input value")
	}
}

func TestRejectBadMerkleRoot(t *testing.T) {
	h := newHarness(t)
	miner := h.newKey()
	height := h.chain.Height() + 1
	cb := NewCoinbaseTx(height, 50*Coin, script.PayToAddr(miner.Address()), nil)
	blk := &Block{Header: BlockHeader{PrevBlock: h.chain.TipHash()}, Txs: []*Tx{cb}}
	// MerkleRoot left zero.
	err := h.chain.ConnectBlock(blk, false, ConnectBlockOptions{})
	if !errors.Is(err, ErrBadMerkleRoot) {
		t.Fatalf("err = %v, want ErrBadMerkleRoot", err)
	}
}

func TestRejectExcessCoinbase(t *testing.T) {
	h := newHarness(t)
	miner := h.newKey()
	height := h.chain.Height() + 1
	cb := NewCoinbaseTx(height, 50*Coin+1, script.PayToAddr(miner.Address()), nil)
	blk := &Block{Header: BlockHeader{PrevBlock: h.chain.TipHash(), MerkleRoot: BlockMerkleRoot([]*Tx{cb})}, Txs: []*Tx{cb}}
	err := h.chain.ConnectBlock(blk, false, ConnectBlockOptions{})
	if !errors.Is(err, ErrSubsidyExceeded) {
		t.Fatalf("err = %v, want ErrSubsidyExceeded", err)
	}
}

func TestRejectWrongPrevBlock(t *testing.T) {
	h := newHarness(t)
	miner := h.newKey()
	h.mineTo(miner)
	height := h.chain.Height() + 1
	cb := NewCoinbaseTx(height, 50*Coin, script.PayToAddr(miner.Address()), nil)
	blk := &Block{Header: BlockHeader{PrevBlock: hashOf(9), MerkleRoot: BlockMerkleRoot([]*Tx{cb})}, Txs: []*Tx{cb}}
	err := h.chain.ConnectBlock(blk, false, ConnectBlockOptions{})
	if !errors.Is(err, ErrBadPrevBlock) {
		t.Fatalf("err = %v, want ErrBadPrevBlock", err)
	}
}

func TestSubsidyHalving(t *testing.T) {
	p := MainNetParams()
	cases := []struct {
		height int64
		want   Amount
	}{
		{0, 50 * Coin}, {209_999, 50 * Coin}, {210_000, 25 * Coin},
		{419_999, 25 * Coin}, {420_000, 1250 * Coin / 100},
		{210_000 * 64, 0}, {210_000 * 100, 0},
	}
	for _, c := range cases {
		if got := p.SubsidyAt(c.height); got != c.want {
			t.Errorf("SubsidyAt(%d) = %v, want %v", c.height, got, c.want)
		}
	}
}

func TestChainSerializeRoundTrip(t *testing.T) {
	h := newHarness(t)
	miner, alice := h.newKey(), h.newKey()
	b := h.mineTo(miner)
	h.mineTo(miner)
	h.mineTo(miner)
	cbOut := OutPoint{TxID: b.Txs[0].TxID(), Index: 0}
	tx := h.spend(miner, cbOut,
		TxOut{Value: 20 * Coin, PkScript: script.PayToAddr(alice.Address())},
		TxOut{Value: 30 * Coin, PkScript: script.PayToAddr(miner.Address())})
	h.mineTo(miner, tx)

	var buf bytes.Buffer
	if _, err := h.chain.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(*h.chain.Params())
	if _, err := restored.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Height() != h.chain.Height() {
		t.Fatalf("restored height %d != %d", restored.Height(), h.chain.Height())
	}
	if restored.TipHash() != h.chain.TipHash() {
		t.Fatal("restored tip hash differs")
	}
	if restored.UTXO().Total() != h.chain.UTXO().Total() {
		t.Fatal("restored UTXO total differs")
	}
}

func TestCheckTransactionSanity(t *testing.T) {
	valid := &Tx{
		Inputs:  []TxIn{{Prev: OutPoint{TxID: hashOf(1), Index: 0}}},
		Outputs: []TxOut{{Value: Coin}},
	}
	if err := CheckTransactionSanity(valid); err != nil {
		t.Fatalf("valid tx rejected: %v", err)
	}
	noIn := &Tx{Outputs: []TxOut{{Value: Coin}}}
	if err := CheckTransactionSanity(noIn); !errors.Is(err, ErrNoInputs) {
		t.Errorf("no inputs: %v", err)
	}
	noOut := &Tx{Inputs: valid.Inputs}
	if err := CheckTransactionSanity(noOut); !errors.Is(err, ErrNoOutputs) {
		t.Errorf("no outputs: %v", err)
	}
	tooMuch := &Tx{Inputs: valid.Inputs, Outputs: []TxOut{{Value: MaxMoney + 1}}}
	if err := CheckTransactionSanity(tooMuch); !errors.Is(err, ErrBadValue) {
		t.Errorf("excess value: %v", err)
	}
	overflowSum := &Tx{Inputs: valid.Inputs, Outputs: []TxOut{{Value: MaxMoney}, {Value: MaxMoney}}}
	if err := CheckTransactionSanity(overflowSum); !errors.Is(err, ErrBadValue) {
		t.Errorf("sum overflow: %v", err)
	}
	dup := &Tx{
		Inputs:  []TxIn{{Prev: OutPoint{TxID: hashOf(1)}}, {Prev: OutPoint{TxID: hashOf(1)}}},
		Outputs: valid.Outputs,
	}
	if err := CheckTransactionSanity(dup); !errors.Is(err, ErrDuplicateInput) {
		t.Errorf("duplicate input: %v", err)
	}
}

func TestProofOfWorkCheck(t *testing.T) {
	p := MainNetParams()
	p.TargetBits = 12
	var ok Hash // all zero: passes
	if !p.CheckProofOfWork(ok) {
		t.Fatal("zero hash failed PoW")
	}
	var bad Hash
	bad[1] = 0x10 // bit 12 set -> only 11 leading zero bits
	if p.CheckProofOfWork(bad) {
		t.Fatal("hash with 11 leading zero bits passed a 12-bit target")
	}
	var edge Hash
	edge[1] = 0x08 // bit 13 set -> exactly 12 leading zero bits
	if !p.CheckProofOfWork(edge) {
		t.Fatal("hash with exactly 12 leading zero bits failed a 12-bit target")
	}
}

func TestTimeHeightMapping(t *testing.T) {
	p := MainNetParams()
	for _, h := range []int64{0, 1, 100, 210_000} {
		tm := p.TimeAt(h)
		if got := p.HeightFor(tm); got != h {
			t.Errorf("HeightFor(TimeAt(%d)) = %d", h, got)
		}
	}
}
