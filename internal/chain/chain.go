package chain

import (
	"bufio"
	"fmt"
	"io"
)

// Chain is an append-only sequence of validated blocks plus the UTXO state
// they imply. It is the in-memory analogue of the replicated block chain the
// paper analyzes; internal/txgraph builds its indexes from it.
type Chain struct {
	params  Params
	blocks  []*Block
	index   map[Hash]int64 // block hash -> height
	utxo    *UTXOSet
	fees    []Amount // total fees per block, for subsidy validation
	created Amount   // cumulative coins created
}

// New creates a chain with the given parameters and no blocks.
func New(params Params) *Chain {
	return &Chain{
		params: params,
		index:  make(map[Hash]int64),
		utxo:   NewUTXOSet(),
	}
}

// Params returns the chain's parameters.
func (c *Chain) Params() *Params { return &c.params }

// Height returns the height of the best block, or -1 for an empty chain.
func (c *Chain) Height() int64 { return int64(len(c.blocks)) - 1 }

// Tip returns the best block, or nil for an empty chain.
func (c *Chain) Tip() *Block {
	if len(c.blocks) == 0 {
		return nil
	}
	return c.blocks[len(c.blocks)-1]
}

// TipHash returns the best block's hash, or the zero hash for an empty chain.
func (c *Chain) TipHash() Hash {
	if t := c.Tip(); t != nil {
		return t.BlockHash()
	}
	return ZeroHash
}

// BlockAt returns the block at the given height.
func (c *Chain) BlockAt(height int64) *Block {
	if height < 0 || height >= int64(len(c.blocks)) {
		return nil
	}
	return c.blocks[height]
}

// HeightOf returns the height of the block with the given hash.
func (c *Chain) HeightOf(h Hash) (int64, bool) {
	height, ok := c.index[h]
	return height, ok
}

// UTXO returns the chain's unspent output set.
func (c *Chain) UTXO() *UTXOSet { return c.utxo }

// CoinsCreated returns the cumulative subsidy issued so far.
func (c *Chain) CoinsCreated() Amount { return c.created }

// Blocks returns the underlying block slice. Callers must not mutate it.
func (c *Chain) Blocks() []*Block { return c.blocks }

// ConnectBlock validates the block in the context of the current tip and, if
// valid, appends it, updating the UTXO set. Proof of work is only enforced
// when checkPoW is true: the economy simulator constructs blocks directly
// without mining, while the p2p network mines and verifies for real.
func (c *Chain) ConnectBlock(b *Block, checkPoW bool, opts ConnectBlockOptions) error {
	if err := CheckBlockSanity(b, &c.params); err != nil {
		return err
	}
	height := c.Height() + 1
	if b.Header.PrevBlock != c.TipHash() {
		return fmt.Errorf("%w: have tip %s, block claims %s",
			ErrBadPrevBlock, c.TipHash(), b.Header.PrevBlock)
	}
	if checkPoW && !c.params.CheckProofOfWork(b.BlockHash()) {
		return ErrBadPoW
	}
	var fees Amount
	for i, tx := range b.Txs {
		if i == 0 {
			continue // coinbase applied last, once fees are known
		}
		if opts.Verifier != nil {
			// Digests are computed lazily so a block rejected on an unknown
			// outpoint costs a map lookup, not a full serialization+hash.
			var digests []Hash
			for j, in := range tx.Inputs {
				entry, ok := c.utxo.Lookup(in.Prev)
				if !ok {
					return fmt.Errorf("chain: tx %d input %d: missing output %s", i, j, in.Prev)
				}
				if digests == nil {
					digests = SigHashes(tx)
				}
				if err := opts.Verifier.VerifyScript(entry.PkScript, in.SigScript, digests[j]); err != nil {
					return fmt.Errorf("chain: tx %d input %d: %w", i, j, err)
				}
			}
		}
		fee, err := c.utxo.ApplyTx(tx, height, c.params.CoinbaseMaturity)
		if err != nil {
			// NOTE: earlier transactions in this block remain applied; the
			// simulator never produces such blocks and the p2p node discards
			// its chain state on connect failure. Documented limitation.
			return fmt.Errorf("chain: tx %d: %w", i, err)
		}
		fees += fee
	}
	subsidy := c.params.SubsidyAt(height)
	if cb := b.Txs[0].TotalOut(); cb > subsidy+fees {
		return fmt.Errorf("%w: coinbase %v > subsidy %v + fees %v",
			ErrSubsidyExceeded, cb, subsidy, fees)
	}
	if _, err := c.utxo.ApplyTx(b.Txs[0], height, c.params.CoinbaseMaturity); err != nil {
		return fmt.Errorf("chain: coinbase: %w", err)
	}
	c.blocks = append(c.blocks, b)
	c.index[b.BlockHash()] = height
	c.fees = append(c.fees, fees)
	c.created += b.Txs[0].TotalOut()
	return nil
}

// WriteTo serializes the whole chain to w in the framed chain format (see
// stream.go), buffering writes. Files written this way stream back through
// Reader/OpenReader without materializing the chain.
func (c *Chain) WriteTo(w io.Writer) (int64, error) {
	//lint:ignore fistlint/leakclose Writer wraps the caller's w and owns no handle; a failed WriteBlock must not flush its partial frame downstream
	sw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	for _, b := range c.blocks {
		if err := sw.WriteBlock(b); err != nil {
			return 0, err
		}
	}
	return 0, sw.Flush()
}

// ReadFrom deserializes a chain previously written with WriteTo, validating
// and connecting every block (without proof-of-work checks).
func (c *Chain) ReadFrom(r io.Reader) (int64, error) {
	sr, err := NewReader(bufio.NewReaderSize(r, 1<<20))
	if err != nil {
		return 0, err
	}
	for {
		b, err := sr.NextBlock()
		if err == io.EOF {
			return 0, nil
		}
		if err != nil {
			return 0, err
		}
		if err := c.ConnectBlock(b, false, ConnectBlockOptions{}); err != nil {
			return 0, fmt.Errorf("chain: block %d: %w", sr.Blocks()-1, err)
		}
	}
}
