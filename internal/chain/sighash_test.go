package chain

import (
	"bytes"
	"testing"
)

// sigTestTx builds a transaction with n inputs (some carrying signature
// scripts, which the digests must ignore) and a couple of outputs, sized so
// the stripped serialization crosses SHA-256 block boundaries for larger n.
func sigTestTx(n int) *Tx {
	tx := &Tx{Version: 1, LockTime: 7}
	for i := 0; i < n; i++ {
		var id Hash
		id[0], id[1], id[31] = byte(i), byte(i>>8), 0xab
		in := TxIn{Prev: OutPoint{TxID: id, Index: uint32(i)}, Sequence: ^uint32(0)}
		if i%2 == 0 {
			in.SigScript = bytes.Repeat([]byte{byte(i + 1)}, 40)
		}
		tx.Inputs = append(tx.Inputs, in)
	}
	tx.Outputs = []TxOut{
		{Value: BTC(1.5), PkScript: bytes.Repeat([]byte{0x51}, 25)},
		{Value: BTC(0.25), PkScript: bytes.Repeat([]byte{0x52}, 25)},
	}
	return tx
}

func TestSigHashesMatchesSigHash(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 64, 256} {
		tx := sigTestTx(n)
		got := SigHashes(tx)
		if len(got) != n {
			t.Fatalf("n=%d: %d digests", n, len(got))
		}
		for i := 0; i < n; i++ {
			if want := SigHash(tx, i); got[i] != want {
				t.Fatalf("n=%d input %d: one-pass digest differs from SigHash", n, i)
			}
		}
	}
}

func TestSigHashIgnoresSignatureScripts(t *testing.T) {
	tx := sigTestTx(5)
	before := SigHashes(tx)
	for i := range tx.Inputs {
		tx.Inputs[i].SigScript = bytes.Repeat([]byte{0xff}, 66)
	}
	after := SigHashes(tx)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("input %d: digest depends on signature scripts", i)
		}
	}
}

func TestTxIDStableAcrossSigning(t *testing.T) {
	tx := sigTestTx(4)
	for i := range tx.Inputs {
		tx.Inputs[i].SigScript = nil
	}
	unsigned := tx.TxID()
	for i := range tx.Inputs {
		tx.Inputs[i].SigScript = bytes.Repeat([]byte{byte(i)}, 66)
	}
	// Memoized value is still the answer; a fresh, never-memoized copy of
	// the signed transaction must agree with it.
	if tx.TxID() != unsigned {
		t.Fatal("memoized TxID changed after signing")
	}
	if tx.Copy().TxID() != unsigned {
		t.Fatal("TxID covers signature scripts")
	}
}

func TestTxIDDeserializeResetsMemo(t *testing.T) {
	a, b := sigTestTx(2), sigTestTx(3)
	var buf bytes.Buffer
	if err := b.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	idA := a.TxID() // memoize before overwriting a's contents
	if err := a.Deserialize(&buf); err != nil {
		t.Fatal(err)
	}
	if a.TxID() == idA {
		t.Fatal("deserialization kept a stale memoized TxID")
	}
	if a.TxID() != b.TxID() {
		t.Fatal("deserialized transaction id differs from its source")
	}
}

func TestCoinbaseTxIDUniquePerHeight(t *testing.T) {
	// Coinbase ids must differ even when value and destination are equal:
	// the BIP34-style height in the coinbase input script is retained by the
	// stripped identity serialization.
	script := bytes.Repeat([]byte{0x51}, 25)
	seen := make(map[Hash]int64)
	for h := int64(0); h < 600; h++ {
		id := NewCoinbaseTx(h, BTC(50), script, nil).TxID()
		if prev, dup := seen[id]; dup {
			t.Fatalf("coinbase ids collide at heights %d and %d", prev, h)
		}
		seen[id] = h
	}
}
