package chain

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Serialization follows Bitcoin's conventions: little-endian fixed-width
// integers and CompactSize varints for counts and byte-slice lengths.

// maxAlloc bounds single variable-length allocations while deserializing so
// a corrupt or hostile length prefix cannot exhaust memory.
const maxAlloc = 1 << 26 // 64 MiB

// WriteVarInt writes a Bitcoin CompactSize varint.
func WriteVarInt(w io.Writer, v uint64) error {
	var buf [9]byte
	switch {
	case v < 0xfd:
		buf[0] = byte(v)
		_, err := w.Write(buf[:1])
		return err
	case v <= 0xffff:
		buf[0] = 0xfd
		binary.LittleEndian.PutUint16(buf[1:3], uint16(v))
		_, err := w.Write(buf[:3])
		return err
	case v <= 0xffffffff:
		buf[0] = 0xfe
		binary.LittleEndian.PutUint32(buf[1:5], uint32(v))
		_, err := w.Write(buf[:5])
		return err
	default:
		buf[0] = 0xff
		binary.LittleEndian.PutUint64(buf[1:9], v)
		_, err := w.Write(buf[:9])
		return err
	}
}

// ReadVarInt reads a Bitcoin CompactSize varint, rejecting non-canonical
// encodings (a value encoded in more bytes than necessary).
func ReadVarInt(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:1]); err != nil {
		return 0, err
	}
	switch b[0] {
	case 0xfd:
		if _, err := io.ReadFull(r, b[:2]); err != nil {
			return 0, err
		}
		v := uint64(binary.LittleEndian.Uint16(b[:2]))
		if v < 0xfd {
			return 0, fmt.Errorf("chain: non-canonical varint %d", v)
		}
		return v, nil
	case 0xfe:
		if _, err := io.ReadFull(r, b[:4]); err != nil {
			return 0, err
		}
		v := uint64(binary.LittleEndian.Uint32(b[:4]))
		if v <= 0xffff {
			return 0, fmt.Errorf("chain: non-canonical varint %d", v)
		}
		return v, nil
	case 0xff:
		if _, err := io.ReadFull(r, b[:8]); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint64(b[:8])
		if v <= 0xffffffff {
			return 0, fmt.Errorf("chain: non-canonical varint %d", v)
		}
		return v, nil
	default:
		return uint64(b[0]), nil
	}
}

// WriteVarBytes writes a length-prefixed byte slice.
func WriteVarBytes(w io.Writer, b []byte) error {
	if err := WriteVarInt(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadVarBytes reads a length-prefixed byte slice, bounding the allocation.
func ReadVarBytes(r io.Reader) ([]byte, error) {
	n, err := ReadVarInt(r)
	if err != nil {
		return nil, err
	}
	if n > maxAlloc {
		return nil, fmt.Errorf("chain: var bytes length %d exceeds limit", n)
	}
	if n == 0 {
		return nil, nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func writeUint32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readUint32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeUint64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readUint64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Serialize writes the outpoint in wire format.
func (o *OutPoint) Serialize(w io.Writer) error {
	if _, err := w.Write(o.TxID[:]); err != nil {
		return err
	}
	return writeUint32(w, o.Index)
}

// Deserialize reads the outpoint from wire format.
func (o *OutPoint) Deserialize(r io.Reader) error {
	if _, err := io.ReadFull(r, o.TxID[:]); err != nil {
		return err
	}
	idx, err := readUint32(r)
	if err != nil {
		return err
	}
	o.Index = idx
	return nil
}

// Serialize writes the input in wire format.
func (in *TxIn) Serialize(w io.Writer) error {
	if err := in.Prev.Serialize(w); err != nil {
		return err
	}
	if err := WriteVarBytes(w, in.SigScript); err != nil {
		return err
	}
	return writeUint32(w, in.Sequence)
}

// Deserialize reads the input from wire format.
func (in *TxIn) Deserialize(r io.Reader) error {
	if err := in.Prev.Deserialize(r); err != nil {
		return err
	}
	script, err := ReadVarBytes(r)
	if err != nil {
		return err
	}
	in.SigScript = script
	seq, err := readUint32(r)
	if err != nil {
		return err
	}
	in.Sequence = seq
	return nil
}

// Serialize writes the output in wire format.
func (out *TxOut) Serialize(w io.Writer) error {
	if err := writeUint64(w, uint64(out.Value)); err != nil {
		return err
	}
	return WriteVarBytes(w, out.PkScript)
}

// Deserialize reads the output from wire format.
func (out *TxOut) Deserialize(r io.Reader) error {
	v, err := readUint64(r)
	if err != nil {
		return err
	}
	out.Value = Amount(v)
	script, err := ReadVarBytes(r)
	if err != nil {
		return err
	}
	out.PkScript = script
	return nil
}

// Serialize writes the transaction in wire format.
func (tx *Tx) Serialize(w io.Writer) error {
	if err := writeUint32(w, uint32(tx.Version)); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(tx.Inputs))); err != nil {
		return err
	}
	for i := range tx.Inputs {
		if err := tx.Inputs[i].Serialize(w); err != nil {
			return err
		}
	}
	if err := WriteVarInt(w, uint64(len(tx.Outputs))); err != nil {
		return err
	}
	for i := range tx.Outputs {
		if err := tx.Outputs[i].Serialize(w); err != nil {
			return err
		}
	}
	return writeUint32(w, tx.LockTime)
}

// serializeStripped writes the transaction with signature scripts elided,
// the shared preimage of both TxID and the signature digests. When
// keepDataScripts is true, inputs with a null previous outpoint (coinbase
// inputs, whose scripts carry data such as the block height rather than
// signatures) keep their script bytes, so coinbase ids stay unique per block.
func (tx *Tx) serializeStripped(w io.Writer, keepDataScripts bool) error {
	if err := writeUint32(w, uint32(tx.Version)); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(tx.Inputs))); err != nil {
		return err
	}
	for i := range tx.Inputs {
		in := &tx.Inputs[i]
		if err := in.Prev.Serialize(w); err != nil {
			return err
		}
		var script []byte
		if keepDataScripts && in.Prev.IsNull() {
			script = in.SigScript
		}
		if err := WriteVarBytes(w, script); err != nil {
			return err
		}
		if err := writeUint32(w, in.Sequence); err != nil {
			return err
		}
	}
	if err := WriteVarInt(w, uint64(len(tx.Outputs))); err != nil {
		return err
	}
	for i := range tx.Outputs {
		if err := tx.Outputs[i].Serialize(w); err != nil {
			return err
		}
	}
	return writeUint32(w, tx.LockTime)
}

// maxTxItems bounds input/output counts during deserialization; it is far
// above anything a valid block can contain but prevents hostile prefixes
// from forcing huge allocations.
const maxTxItems = 1 << 20

// Deserialize reads the transaction from wire format.
func (tx *Tx) Deserialize(r io.Reader) error {
	tx.id.Store(nil) // invalidate any memoized identifier
	v, err := readUint32(r)
	if err != nil {
		return err
	}
	tx.Version = int32(v)
	nIn, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if nIn > maxTxItems {
		return fmt.Errorf("chain: input count %d exceeds limit", nIn)
	}
	tx.Inputs = make([]TxIn, nIn)
	for i := range tx.Inputs {
		if err := tx.Inputs[i].Deserialize(r); err != nil {
			return err
		}
	}
	nOut, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if nOut > maxTxItems {
		return fmt.Errorf("chain: output count %d exceeds limit", nOut)
	}
	tx.Outputs = make([]TxOut, nOut)
	for i := range tx.Outputs {
		if err := tx.Outputs[i].Deserialize(r); err != nil {
			return err
		}
	}
	lt, err := readUint32(r)
	if err != nil {
		return err
	}
	tx.LockTime = lt
	return nil
}

// Serialize writes the header in wire format: Bitcoin's field order, but 84
// bytes rather than 80 because the timestamp is 64-bit.
func (h *BlockHeader) Serialize(w io.Writer) error {
	if err := writeUint32(w, uint32(h.Version)); err != nil {
		return err
	}
	if _, err := w.Write(h.PrevBlock[:]); err != nil {
		return err
	}
	if _, err := w.Write(h.MerkleRoot[:]); err != nil {
		return err
	}
	if err := writeUint64(w, uint64(h.Timestamp)); err != nil {
		return err
	}
	if err := writeUint32(w, h.Bits); err != nil {
		return err
	}
	return writeUint32(w, h.Nonce)
}

// Deserialize reads the header from wire format.
func (h *BlockHeader) Deserialize(r io.Reader) error {
	v, err := readUint32(r)
	if err != nil {
		return err
	}
	h.Version = int32(v)
	if _, err := io.ReadFull(r, h.PrevBlock[:]); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, h.MerkleRoot[:]); err != nil {
		return err
	}
	ts, err := readUint64(r)
	if err != nil {
		return err
	}
	h.Timestamp = int64(ts)
	bits, err := readUint32(r)
	if err != nil {
		return err
	}
	h.Bits = bits
	nonce, err := readUint32(r)
	if err != nil {
		return err
	}
	h.Nonce = nonce
	return nil
}

// Serialize writes the block in wire format.
func (b *Block) Serialize(w io.Writer) error {
	if err := b.Header.Serialize(w); err != nil {
		return err
	}
	if err := WriteVarInt(w, uint64(len(b.Txs))); err != nil {
		return err
	}
	for _, tx := range b.Txs {
		if err := tx.Serialize(w); err != nil {
			return err
		}
	}
	return nil
}

// Deserialize reads the block from wire format.
func (b *Block) Deserialize(r io.Reader) error {
	if err := b.Header.Deserialize(r); err != nil {
		return err
	}
	n, err := ReadVarInt(r)
	if err != nil {
		return err
	}
	if n > maxTxItems {
		return fmt.Errorf("chain: tx count %d exceeds limit", n)
	}
	b.Txs = make([]*Tx, n)
	for i := range b.Txs {
		b.Txs[i] = new(Tx)
		if err := b.Txs[i].Deserialize(r); err != nil {
			return err
		}
	}
	return nil
}
