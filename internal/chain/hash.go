// Package chain implements the ledger substrate the paper's analysis runs
// on: a Bitcoin-like transaction and block model, canonical little-endian
// serialization with CompactSize varints, double-SHA256 identifiers, merkle
// trees, a UTXO set, and consensus-lite validation.
//
// The model intentionally mirrors the Bitcoin wire structures (version,
// inputs referencing previous outpoints, outputs carrying scripts, block
// headers chaining by previous-block hash) because the clustering heuristics
// in internal/cluster exploit exactly this structure: multi-input spending
// and change outputs.
package chain

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// HashSize is the byte length of all identifiers in the system.
const HashSize = 32

// Hash is a 32-byte identifier (transaction id or block hash). It is a fixed
// array rather than a slice so it is comparable and usable as a map key
// without allocation.
type Hash [HashSize]byte

// ZeroHash is the all-zero hash, used by coinbase inputs as the null
// previous-transaction reference.
var ZeroHash Hash

// DoubleSHA256 returns SHA-256(SHA-256(b)), the hash function used for all
// transaction and block identifiers.
func DoubleSHA256(b []byte) Hash {
	first := sha256.Sum256(b)
	return sha256.Sum256(first[:])
}

// String renders the hash in the conventional reversed (big-endian display)
// hex form used by Bitcoin block explorers.
func (h Hash) String() string {
	var rev [HashSize]byte
	for i := 0; i < HashSize; i++ {
		rev[i] = h[HashSize-1-i]
	}
	return hex.EncodeToString(rev[:])
}

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool { return h == ZeroHash }

// NewHashFromString parses the reversed hex form produced by Hash.String.
func NewHashFromString(s string) (Hash, error) {
	var h Hash
	if len(s) != HashSize*2 {
		return h, fmt.Errorf("chain: invalid hash length %d", len(s))
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("chain: invalid hash hex: %w", err)
	}
	for i := 0; i < HashSize; i++ {
		h[i] = raw[HashSize-1-i]
	}
	return h, nil
}
