package chain

import (
	"crypto/sha256"
	"math/rand"
	"testing"
)

func hashOf(b byte) Hash {
	return Hash(sha256.Sum256([]byte{b}))
}

func TestMerkleRootEmpty(t *testing.T) {
	if got := MerkleRoot(nil); got != ZeroHash {
		t.Fatalf("empty merkle root = %s, want zero", got)
	}
}

func TestMerkleRootSingle(t *testing.T) {
	h := hashOf(1)
	if got := MerkleRoot([]Hash{h}); got != h {
		t.Fatalf("single merkle root = %s, want the element itself", got)
	}
}

func TestMerkleRootPair(t *testing.T) {
	a, b := hashOf(1), hashOf(2)
	var buf [64]byte
	copy(buf[:32], a[:])
	copy(buf[32:], b[:])
	want := DoubleSHA256(buf[:])
	if got := MerkleRoot([]Hash{a, b}); got != want {
		t.Fatalf("pair merkle root = %s, want %s", got, want)
	}
}

func TestMerkleRootOddDuplicatesLast(t *testing.T) {
	a, b, c := hashOf(1), hashOf(2), hashOf(3)
	// Level 1: H(a||b), H(c||c); root = H(l||r).
	pair := func(x, y Hash) Hash {
		var buf [64]byte
		copy(buf[:32], x[:])
		copy(buf[32:], y[:])
		return DoubleSHA256(buf[:])
	}
	want := pair(pair(a, b), pair(c, c))
	if got := MerkleRoot([]Hash{a, b, c}); got != want {
		t.Fatalf("odd merkle root = %s, want %s", got, want)
	}
}

func TestMerkleRootOrderSensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	hashes := make([]Hash, 8)
	for i := range hashes {
		rng.Read(hashes[i][:])
	}
	orig := MerkleRoot(hashes)
	swapped := make([]Hash, len(hashes))
	copy(swapped, hashes)
	swapped[2], swapped[5] = swapped[5], swapped[2]
	if MerkleRoot(swapped) == orig {
		t.Fatal("merkle root did not change when transaction order changed")
	}
}

func TestMerkleRootTamperSensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 9; n++ {
		hashes := make([]Hash, n)
		for i := range hashes {
			rng.Read(hashes[i][:])
		}
		orig := MerkleRoot(hashes)
		for i := range hashes {
			tampered := make([]Hash, n)
			copy(tampered, hashes)
			tampered[i][0] ^= 0xff
			if MerkleRoot(tampered) == orig {
				t.Fatalf("n=%d: tampering element %d did not change root", n, i)
			}
		}
	}
}

func TestMerkleRootDoesNotMutateInput(t *testing.T) {
	hashes := []Hash{hashOf(1), hashOf(2), hashOf(3)}
	want := hashes[1]
	MerkleRoot(hashes)
	if hashes[1] != want {
		t.Fatal("MerkleRoot mutated its input")
	}
}
