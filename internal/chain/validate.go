package chain

import (
	"bytes"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
)

// Validation errors that callers (notably the p2p node and tests) match on.
var (
	ErrNoTxs            = errors.New("chain: block has no transactions")
	ErrFirstNotCoinbase = errors.New("chain: first transaction is not a coinbase")
	ErrExtraCoinbase    = errors.New("chain: non-first transaction is a coinbase")
	ErrBadMerkleRoot    = errors.New("chain: merkle root mismatch")
	ErrBadPrevBlock     = errors.New("chain: previous block mismatch")
	ErrBadPoW           = errors.New("chain: proof of work insufficient")
	ErrNoInputs         = errors.New("chain: transaction has no inputs")
	ErrNoOutputs        = errors.New("chain: transaction has no outputs")
	ErrBadValue         = errors.New("chain: output value out of range")
	ErrDuplicateInput   = errors.New("chain: duplicate input outpoint")
	ErrSubsidyExceeded  = errors.New("chain: coinbase claims more than subsidy plus fees")
)

// CheckTransactionSanity performs the context-free checks on a transaction:
// non-empty inputs and outputs, values in range, no duplicate inputs, and a
// well-formed (or absent) coinbase reference.
func CheckTransactionSanity(tx *Tx) error {
	if len(tx.Inputs) == 0 {
		return ErrNoInputs
	}
	if len(tx.Outputs) == 0 {
		return ErrNoOutputs
	}
	var total Amount
	for _, out := range tx.Outputs {
		if !out.Value.Valid() {
			return ErrBadValue
		}
		total += out.Value
		if !total.Valid() {
			return ErrBadValue
		}
	}
	seen := make(map[OutPoint]struct{}, len(tx.Inputs))
	for _, in := range tx.Inputs {
		if in.Prev.IsNull() {
			if !tx.IsCoinbase() {
				return fmt.Errorf("%w: null outpoint in non-coinbase", ErrDuplicateInput)
			}
			continue
		}
		if _, dup := seen[in.Prev]; dup {
			return ErrDuplicateInput
		}
		seen[in.Prev] = struct{}{}
	}
	return nil
}

// CheckBlockSanity performs the context-free checks on a block: it has
// transactions, exactly the first is a coinbase, every transaction is sane,
// and the header's merkle root commits to the transaction list.
func CheckBlockSanity(b *Block, params *Params) error {
	if len(b.Txs) == 0 {
		return ErrNoTxs
	}
	if !b.Txs[0].IsCoinbase() {
		return ErrFirstNotCoinbase
	}
	for i, tx := range b.Txs {
		if i > 0 && tx.IsCoinbase() {
			return ErrExtraCoinbase
		}
		if err := CheckTransactionSanity(tx); err != nil {
			return fmt.Errorf("tx %d: %w", i, err)
		}
	}
	if got := BlockMerkleRoot(b.Txs); got != b.Header.MerkleRoot {
		return ErrBadMerkleRoot
	}
	return nil
}

// SigHash computes the digest an input's signature commits to: the
// transaction serialized with all signature scripts removed, followed by the
// index of the input being signed. This is a simplification of Bitcoin's
// SIGHASH_ALL that preserves the property the clustering analysis relies on:
// the signer commits to where the coins came from and where they are going.
func SigHash(tx *Tx, inputIndex int) Hash {
	var buf bytes.Buffer
	if err := tx.serializeStripped(&buf, false); err != nil {
		panic("chain: sighash serialize: " + err.Error())
	}
	var idx [4]byte
	binary.LittleEndian.PutUint32(idx[:], uint32(inputIndex))
	buf.Write(idx[:])
	return DoubleSHA256(buf.Bytes())
}

// SigHashes computes every input's signature digest in one pass. The
// stripped transaction is serialized and absorbed into a single SHA-256
// state; each input's digest then resumes that midstate with the 4-byte
// input index. The result is byte-for-byte what calling SigHash for each
// index produces, but the transaction body is hashed once instead of once
// per input — O(size) rather than O(inputs × size), which is what makes
// signing the economy generator's 256-input whale transfers cheap.
func SigHashes(tx *Tx) []Hash {
	if len(tx.Inputs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := tx.serializeStripped(&buf, false); err != nil {
		panic("chain: sighash serialize: " + err.Error())
	}
	h := sha256.New()
	h.Write(buf.Bytes())
	m, ok := h.(encoding.BinaryMarshaler)
	if !ok {
		// No midstate access on this platform: fall back per input.
		out := make([]Hash, len(tx.Inputs))
		for i := range out {
			out[i] = SigHash(tx, i)
		}
		return out
	}
	state, err := m.MarshalBinary()
	if err != nil {
		panic("chain: sighash midstate: " + err.Error())
	}
	out := make([]Hash, len(tx.Inputs))
	var idx [4]byte
	var first [sha256.Size]byte
	for i := range out {
		hi := sha256.New()
		if err := hi.(encoding.BinaryUnmarshaler).UnmarshalBinary(state); err != nil {
			panic("chain: sighash midstate: " + err.Error())
		}
		binary.LittleEndian.PutUint32(idx[:], uint32(i))
		hi.Write(idx[:])
		hi.Sum(first[:0])
		out[i] = sha256.Sum256(first[:])
	}
	return out
}

// ScriptVerifier checks that an input's signature script satisfies the
// referenced output's public-key script given the input's signature hash.
// internal/script provides the implementation; chain accepts an interface
// (with an unnamed [32]byte digest) so the packages stay acyclic.
type ScriptVerifier interface {
	VerifyScript(pkScript, sigScript []byte, sigHash [32]byte) error
}

// ConnectBlockOptions controls optional (expensive) validation work.
type ConnectBlockOptions struct {
	// Verifier, when non-nil, runs script verification on every input.
	Verifier ScriptVerifier
}
