package chain

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: any structurally valid transaction survives a
// serialize/deserialize round trip with its id intact.
func TestTxRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tx := randomTx(rng)
		var buf bytes.Buffer
		if err := tx.Serialize(&buf); err != nil {
			return false
		}
		var got Tx
		if err := got.Deserialize(&buf); err != nil {
			return false
		}
		return got.TxID() == tx.TxID()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the merkle root over N random hashes changes whenever any single
// element changes.
func TestMerkleSensitivityProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		rng := rand.New(rand.NewSource(seed))
		hashes := make([]Hash, n)
		for i := range hashes {
			rng.Read(hashes[i][:])
		}
		root := MerkleRoot(hashes)
		i := rng.Intn(n)
		hashes[i][rng.Intn(HashSize)] ^= 1 + byte(rng.Intn(255))
		return MerkleRoot(hashes) != root
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: UTXO accounting conserves value: after any valid spend, total
// declines by exactly the fee.
func TestUTXOConservationProperty(t *testing.T) {
	f := func(split uint16, feeRaw uint16) bool {
		u := NewUTXOSet()
		fund := &Tx{
			Version: 1,
			Inputs:  []TxIn{{Prev: OutPoint{TxID: ZeroHash, Index: CoinbaseOutputIndex}}},
			Outputs: []TxOut{{Value: 50 * Coin}},
		}
		if _, err := u.ApplyTx(fund, 0, 0); err != nil {
			return false
		}
		before := u.Total()
		fee := Amount(feeRaw)
		a := Amount(split) * Coin / 100
		if a+fee > 50*Coin {
			a = 50*Coin - fee
		}
		spend := &Tx{
			Version: 1,
			Inputs:  []TxIn{{Prev: OutPoint{TxID: fund.TxID(), Index: 0}}},
			Outputs: []TxOut{{Value: a}, {Value: 50*Coin - a - fee}},
		}
		gotFee, err := u.ApplyTx(spend, 1, 0)
		if err != nil {
			return false
		}
		return gotFee == fee && u.Total() == before-fee
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Failure injection: a block containing an internal double spend is
// rejected by ConnectBlock.
func TestConnectBlockRejectsInternalDoubleSpend(t *testing.T) {
	h := newHarness(t)
	miner := h.newKey()
	b := h.mineTo(miner)
	h.mineTo(miner)
	h.mineTo(miner)
	cbOut := OutPoint{TxID: b.Txs[0].TxID(), Index: 0}
	tx1 := h.spend(miner, cbOut, TxOut{Value: 50 * Coin, PkScript: []byte{0x51}})
	tx2 := h.spend(miner, cbOut, TxOut{Value: 49 * Coin, PkScript: []byte{0x51}})

	height := h.chain.Height() + 1
	cb := NewCoinbaseTx(height, h.chain.Params().SubsidyAt(height), []byte{0x51}, nil)
	all := []*Tx{cb, tx1, tx2}
	blk := &Block{Header: BlockHeader{PrevBlock: h.chain.TipHash(), MerkleRoot: BlockMerkleRoot(all)}, Txs: all}
	if err := h.chain.ConnectBlock(blk, false, ConnectBlockOptions{}); err == nil {
		t.Fatal("accepted block with internal double spend")
	}
}

// Failure injection: deserializing random garbage never panics and always
// errors (or round-trips to the same bytes for the rare valid prefix).
func TestDeserializeGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 500; i++ {
		garbage := make([]byte, rng.Intn(200))
		rng.Read(garbage)
		var tx Tx
		_ = tx.Deserialize(bytes.NewReader(garbage)) // must not panic
		var blk Block
		_ = blk.Deserialize(bytes.NewReader(garbage))
		var hdr BlockHeader
		_ = hdr.Deserialize(bytes.NewReader(garbage))
	}
}

func TestAmountFormatting(t *testing.T) {
	cases := map[Amount]string{
		0:                "0.00000000 BTC",
		Coin:             "1.00000000 BTC",
		-15 * Coin / 10:  "-1.50000000 BTC",
		123456789:        "1.23456789 BTC",
		50*Coin + 500000: "50.00500000 BTC",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(v), got, want)
		}
	}
	if !BTC(0.7).Valid() {
		t.Error("0.7 BTC should be valid")
	}
	if (MaxMoney + 1).Valid() {
		t.Error("MaxMoney+1 should be invalid")
	}
}

func TestHashStringRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Hash
		rng.Read(h[:])
		got, err := NewHashFromString(h.String())
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewHashFromString("xyz"); err == nil {
		t.Error("accepted short hash string")
	}
	if _, err := NewHashFromString(string(make([]byte, 64))); err == nil {
		t.Error("accepted non-hex hash string")
	}
}
