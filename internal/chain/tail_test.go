package chain

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestTailReaderFollowsAppends writes the framed stream into the file in
// small odd-sized byte chunks — deliberately splitting headers, length
// prefixes, and frame bodies — while a TailReader consumes blocks, proving a
// partially-flushed suffix is always "wait", never a misparse.
func TestTailReaderFollowsAppends(t *testing.T) {
	blocks, raw := streamTestChain(t)
	path := filepath.Join(t.TempDir(), "chain.bin")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := OpenTail(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.poll = time.Millisecond

	done := make(chan error, 1)
	go func() {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			done <- err
			return
		}
		defer f.Close()
		const chunk = 7 // never aligned with the 4-byte prefixes
		for off := 0; off < len(raw); off += chunk {
			end := off + chunk
			if end > len(raw) {
				end = len(raw)
			}
			if _, err := f.Write(raw[off:end]); err != nil {
				done <- err
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
		done <- nil
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, want := range blocks {
		got, err := tr.Next(ctx)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if got.BlockHash() != want.BlockHash() {
			t.Fatalf("block %d: hash mismatch", i)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if tr.Blocks() != int64(len(blocks)) {
		t.Fatalf("Blocks() = %d, want %d", tr.Blocks(), len(blocks))
	}
	// Fully caught up: nothing buffered, and Next blocks until ctx expires.
	if tr.Buffered() {
		t.Fatal("Buffered() = true at end of stream")
	}
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer shortCancel()
	if _, err := tr.Next(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next at tip: got %v, want deadline exceeded", err)
	}
}

func TestTailReaderBuffered(t *testing.T) {
	blocks, raw := streamTestChain(t)
	path := filepath.Join(t.TempDir(), "chain.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := OpenTail(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx := context.Background()
	for i := range blocks {
		if !tr.Buffered() {
			t.Fatalf("block %d: Buffered() = false with frames on disk", i)
		}
		if _, err := tr.Next(ctx); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
	}
	if tr.Buffered() {
		t.Fatal("Buffered() = true after the final frame")
	}
}

func TestTailReaderCancelOnEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.bin")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := OpenTail(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.poll = time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next on cancelled ctx: got %v, want context.Canceled", err)
	}
}

func TestTailReaderBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.bin")
	if err := os.WriteFile(path, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := OpenTail(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Next(context.Background()); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestTailReaderCorruptFrameLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.bin")
	corrupt := append(append([]byte{}, streamMagic[:]...), 0xff, 0xff, 0xff, 0xff)
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := OpenTail(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	_, err = tr.Next(context.Background())
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("got %v, want frame-length error", err)
	}
}
