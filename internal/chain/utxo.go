package chain

import "fmt"

// UTXOEntry describes one unspent transaction output.
type UTXOEntry struct {
	Value    Amount
	PkScript []byte
	Height   int64
	Coinbase bool
}

// UTXOSet is the set of unspent transaction outputs. It is the state against
// which transactions are validated: every user of the system tracks it so
// double spending can be detected (Section 2.1).
//
// UTXOSet is not safe for concurrent mutation; the chain serializes access.
type UTXOSet struct {
	entries map[OutPoint]UTXOEntry
	total   Amount
}

// NewUTXOSet returns an empty UTXO set.
func NewUTXOSet() *UTXOSet {
	return &UTXOSet{entries: make(map[OutPoint]UTXOEntry)}
}

// Lookup returns the entry for the outpoint, if it is unspent.
func (u *UTXOSet) Lookup(op OutPoint) (UTXOEntry, bool) {
	e, ok := u.entries[op]
	return e, ok
}

// Len returns the number of unspent outputs.
func (u *UTXOSet) Len() int { return len(u.entries) }

// Total returns the sum of all unspent output values.
func (u *UTXOSet) Total() Amount { return u.total }

// add records a new unspent output. It panics if the outpoint already
// exists, which would indicate a validation bug upstream.
func (u *UTXOSet) add(op OutPoint, e UTXOEntry) {
	if _, ok := u.entries[op]; ok {
		panic(fmt.Sprintf("chain: duplicate utxo %s", op))
	}
	u.entries[op] = e
	u.total += e.Value
}

// spend removes an unspent output, returning its entry.
func (u *UTXOSet) spend(op OutPoint) (UTXOEntry, error) {
	e, ok := u.entries[op]
	if !ok {
		return UTXOEntry{}, fmt.Errorf("chain: missing or spent output %s", op)
	}
	delete(u.entries, op)
	u.total -= e.Value
	return e, nil
}

// ApplyTx spends the transaction's inputs and creates its outputs,
// validating existence, maturity and value balance. It returns the fee paid.
// On error the set is left unchanged.
func (u *UTXOSet) ApplyTx(tx *Tx, height int64, maturity int64) (Amount, error) {
	txid := tx.TxID()
	if tx.IsCoinbase() {
		for i, out := range tx.Outputs {
			u.add(OutPoint{TxID: txid, Index: uint32(i)}, UTXOEntry{
				Value: out.Value, PkScript: out.PkScript, Height: height, Coinbase: true,
			})
		}
		return 0, nil
	}
	var inSum Amount
	spent := make([]UTXOEntry, 0, len(tx.Inputs))
	spentOps := make([]OutPoint, 0, len(tx.Inputs))
	fail := func(err error) (Amount, error) {
		// Roll back partially applied spends.
		for i, op := range spentOps {
			u.entries[op] = spent[i]
			u.total += spent[i].Value
		}
		return 0, err
	}
	for _, in := range tx.Inputs {
		e, err := u.spend(in.Prev)
		if err != nil {
			return fail(err)
		}
		if e.Coinbase && height-e.Height < maturity {
			err := fmt.Errorf("chain: immature coinbase spend %s at height %d (created %d)",
				in.Prev, height, e.Height)
			// Restore before reporting.
			u.entries[in.Prev] = e
			u.total += e.Value
			return fail(err)
		}
		spent = append(spent, e)
		spentOps = append(spentOps, in.Prev)
		inSum += e.Value
	}
	outSum := tx.TotalOut()
	if outSum > inSum {
		return fail(fmt.Errorf("chain: tx %s spends %v but only provides %v", txid, outSum, inSum))
	}
	for i, out := range tx.Outputs {
		u.add(OutPoint{TxID: txid, Index: uint32(i)}, UTXOEntry{
			Value: out.Value, PkScript: out.PkScript, Height: height,
		})
	}
	return inSum - outSum, nil
}
