// Package econ generates a synthetic Bitcoin economy: a valid block chain
// populated by the service roster of the paper's Table 1 (mining pools,
// wallets, bank and fixed-rate exchanges, vendors behind payment gateways,
// gambling sites including Satoshi-Dice-style games, mixers, investment
// schemes) and a population of users whose wallets follow the idioms of use
// the paper's heuristics exploit — one-time change addresses, self-change,
// multi-input coin selection, peeling-chain withdrawals, dice payouts
// returning to the sender — plus the scripted Silk Road dissolution and
// theft case studies of Section 5.
//
// The simulator is the substitution for the real 2009-2013 block chain
// (see DESIGN.md): the heuristics only consume graph structure, which is
// preserved, and in exchange we gain exact ground truth about who owns
// every address.
package econ

import (
	"time"

	"repro/internal/chain"
)

// Config controls the scale and behavioural rates of a generated economy.
// DefaultConfig mirrors the paper's qualitative calibration targets
// (documented field by field); Small returns a fast variant for tests.
type Config struct {
	// Seed drives every random choice; same seed, same chain, same hashes.
	Seed int64

	// Blocks is the number of blocks to simulate. The timeline maps block 0
	// to Bitcoin's genesis date and the final block to EndDate.
	Blocks int64
	// EndDate is the simulated calendar date of the final block
	// (the study's data ends in April 2013).
	EndDate time.Time

	// Users is the size of the ordinary user population.
	Users int

	// PeakActionsPerBlock is the user activity level once adoption has
	// fully ramped (activity ramps quadratically from near zero).
	PeakActionsPerBlock int

	// MaxBlockTxs caps transactions per block; excess activity spills into
	// the next block.
	MaxBlockTxs int

	// SelfChangeProb is the probability a *user* transaction directs change
	// back to one of its input addresses. The paper measures 23% of all
	// first-half-2013 transactions as self-change; most of that volume is
	// service-side (dice payouts habitually self-change), so the per-user
	// rate is far lower than 23%.
	SelfChangeProb float64

	// AddressReuseProb is the probability a payment recipient hands out a
	// previously used address instead of a fresh one. Non-dice reuse of
	// one-time change addresses is what the post-dice FP ladder (1% ->
	// 0.28% -> 0.17%) is made of.
	AddressReuseProb float64

	// ChangeReuseProb is the probability a *service* withdrawal reuses the
	// previous withdrawal's change address ("the same change address was
	// sometimes used twice", one of the two super-cluster patterns).
	ChangeReuseProb float64

	// ServiceSelfChangeProb is the probability a service withdrawal uses
	// self-change; such addresses later reappearing as ordinary change
	// targets is the second super-cluster pattern.
	ServiceSelfChangeProb float64

	// DiceBetProb is the probability a user action (after the dice game
	// launches) is a dice bet. Dice payouts return to the betting address
	// and dominate the naive FP estimate (13% -> 1% once exempted).
	DiceBetProb float64

	// FeePerTx is the flat miner fee paid by generated transactions.
	FeePerTx chain.Amount

	// HotWalletShare is the fraction of total minted coins the Silk Road
	// hot wallet should hold at its peak ("at its height, it contained 5%
	// of all generated bitcoins").
	HotWalletShare float64

	// PeelHops is the number of hops followed per dissolution peeling
	// chain (the paper follows 100 per chain across 3 chains).
	PeelHops int

	// ServiceWallets is how many independent sub-wallets a large service
	// keeps (the paper found ~20 Heuristic-1 clusters for Mt. Gox).
	ServiceWallets int

	// SignWorkers is the worker count for the block-seal signing fan-out on
	// the inline seal path: transactions are built and credited unsigned,
	// and each block's batch is signed in parallel just before mining.
	// 0 means one worker per CPU, 1 forces fully sequential signing. When
	// the seal pipeline is active (PipelineDepth != 1), cross-block
	// concurrency replaces the per-block fan-out and this knob is unused.
	// The generated chain is byte-identical for every setting.
	SignWorkers int

	// PipelineDepth bounds the block-seal pipeline: how many sealed blocks
	// may be in flight — being signed, validated (ConnectBlock), and emitted
	// to the block sink — while the engine is already building later blocks.
	// The tip hash of a block is computable before any signature exists
	// (TxID excludes signature scripts), which is what makes the overlap
	// sound. 0 means one in-flight block per CPU; 1 forces the fully inline
	// sequential seal path. Blocks are validated and emitted in strict
	// height order, so the generated chain — resident and framed-file — is
	// byte-identical for every depth.
	PipelineDepth int

	// Researcher enables the Section 3.1 re-identification campaign (the
	// 344 transactions against the Table 1 roster).
	Researcher bool

	// Scenarios enables the scripted Silk Road dissolution and thefts.
	Scenarios bool
}

// DefaultConfig returns the full-experiment configuration: a ~1-minute,
// laptop-scale economy large enough for every table and figure.
func DefaultConfig() Config {
	return Config{
		Seed:                  20130827, // the IMC'13 camera-ready deadline
		Blocks:                6400,
		EndDate:               time.Date(2013, 4, 30, 0, 0, 0, 0, time.UTC),
		Users:                 2200,
		PeakActionsPerBlock:   26,
		MaxBlockTxs:           512,
		SelfChangeProb:        0.05,
		AddressReuseProb:      0.05,
		ChangeReuseProb:       0.02,
		ServiceSelfChangeProb: 0.03,
		DiceBetProb:           0.22,
		FeePerTx:              chain.BTC(0.0005),
		HotWalletShare:        0.05,
		PeelHops:              100,
		ServiceWallets:        6,
		Researcher:            true,
		Scenarios:             true,
	}
}

// Small returns a reduced configuration for unit tests: a few hundred
// blocks, a small population, scenarios and researcher enabled.
func Small() Config {
	c := DefaultConfig()
	c.Blocks = 900
	c.Users = 220
	c.PeakActionsPerBlock = 10
	c.PeelHops = 25
	c.ServiceWallets = 3
	return c
}

// params derives the chain parameters implied by the config: the halving
// lands at the same timeline fraction as Bitcoin's (Nov 28 2012).
func (c *Config) params() chain.Params {
	genesis := time.Date(2009, 1, 3, 18, 15, 5, 0, time.UTC)
	span := c.EndDate.Sub(genesis)
	interval := span / time.Duration(c.Blocks)
	halvingDate := time.Date(2012, 11, 28, 0, 0, 0, 0, time.UTC)
	halvingAt := int64(float64(c.Blocks) * float64(halvingDate.Sub(genesis)) / float64(span))
	p := chain.SimParams(halvingAt, interval)
	p.GenesisTime = genesis
	p.MaxBlockTxs = c.MaxBlockTxs
	return p
}
