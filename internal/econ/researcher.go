package econ

import (
	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/tags"
)

// The researcher actor reproduces Section 3.1: 344 transactions against the
// Table 1 roster, each observation turning into an own-transaction tag —
// deposit addresses for payments to a service, and the inputs of payout
// transactions for payments from a service.

// tagOwn records an own-transaction tag for an address observed to belong
// to a service.
func (e *engine) tagOwn(a address.Address, svc *Actor) {
	if a.IsZero() {
		return
	}
	e.world.Tags.Add(tags.Tag{
		Addr:     a,
		Service:  svc.Name,
		Category: svc.Category,
		Source:   tags.SourceOwnTransaction,
	})
}

// tagTxInputs tags every input address of a service's payout transaction
// ("for each payout transaction, we then labeled the input addresses as
// belonging to the pool").
func (e *engine) tagTxInputs(tx *chain.Tx, svc *Actor) {
	for i := range tx.Inputs {
		e.tagOwn(e.inputAddr(tx, i), svc)
	}
}

// countResearcherTx records one performed campaign transaction.
func (e *engine) countResearcherTx(svc *Actor) {
	e.world.ResearcherTxCount++
	if e.world.ResearcherByCat == nil {
		e.world.ResearcherByCat = make(map[tags.Category]int)
	}
	e.world.ResearcherByCat[svc.Category]++
	if e.researcherSeen == nil {
		e.researcherSeen = make(map[ActorID]bool)
	}
	if !e.researcherSeen[svc.ID] {
		e.researcherSeen[svc.ID] = true
		e.world.ResearcherServices++
	}
}

// setupResearcher schedules the campaign across the last stretch of the
// timeline (the study transacted in late 2012 and 2013).
func (e *engine) setupResearcher() {
	if !e.cfg.Researcher {
		return
	}
	res := e.newActor("researcher", tags.CatIndividual, KindResearcher, 0, 1)
	e.researcher = res
	start := e.cfg.Blocks * 82 / 100
	end := e.cfg.Blocks - 8
	window := end - start
	if window < 10 {
		return
	}

	// Fund the campaign: buy coins from the largest exchange just before
	// the window opens.
	e.schedule(start-4, func() {
		gox := e.services["Mt Gox"]
		if gox == nil {
			return
		}
		if tx, ok := e.serviceWithdraw(gox, e.freshAddr(res.Wallets[0]), chain.BTC(60)); ok {
			// A funding withdrawal is itself an interaction with Mt Gox.
			e.tagTxInputs(tx, gox)
		}
	})

	// Lay out every roster interaction evenly across the window.
	type interaction struct {
		svc *Actor
		seq int // per-service sequence number, drives the deposit/withdraw alternation
	}
	var plan []interaction
	for _, def := range Roster() {
		svc := e.services[def.Name]
		if svc == nil || def.ResearcherTxs == 0 {
			continue
		}
		for k := 0; k < def.ResearcherTxs; k++ {
			plan = append(plan, interaction{svc: svc, seq: k})
		}
	}
	for i, it := range plan {
		it := it
		h := start + int64(i)*window/int64(len(plan))
		e.schedule(h, func() { e.researcherTry(it.svc, it.seq, 4) })
	}
}

// researcherTry attempts an interaction, retrying a few blocks later if the
// service could not serve it (block full, temporary illiquidity).
func (e *engine) researcherTry(svc *Actor, seq, attempts int) {
	before := e.world.ResearcherTxCount
	e.researcherInteract(svc, seq)
	if e.world.ResearcherTxCount == before && attempts > 1 && !svc.dead {
		e.schedule(e.height+3, func() { e.researcherTry(svc, seq, attempts-1) })
	}
}

// researcherInteract performs one campaign transaction with a service.
func (e *engine) researcherInteract(svc *Actor, seq int) {
	res := e.researcher
	rw := res.Wallets[0]
	if svc.dead {
		return
	}
	switch svc.Kind {
	case KindPool:
		// Trigger a payout: the pool pays the researcher (with other
		// members in the same payout transaction).
		w := svc.Wallets[0]
		if w.Balance(e.height) < chain.BTC(2) {
			return
		}
		outs := []planOut{{addr: e.freshAddr(rw), value: chain.BTC(0.1 + 0.05*float64(seq%5))}}
		for i := 0; i < 2+e.rng.Intn(4); i++ {
			u := e.activeUser()
			outs = append(outs, planOut{addr: e.recvAddr(u.Wallets[0], e.cfg.AddressReuseProb), value: chain.BTC(0.2)})
		}
		tx, _, ok := e.send(w, outs, sendOpts{maxInputs: 16})
		if !ok {
			return
		}
		e.tagTxInputs(tx, svc)
		e.countResearcherTx(svc)

	case KindWallet, KindBankExchange, KindCasino, KindMarket:
		if seq%2 == 0 {
			// Deposit: learn (and tag) our account's deposit address.
			dep := e.accountAddr(svc, res.ID)
			if _, ok := e.pay(rw, dep, chain.BTC(0.3), false); ok {
				e.tagOwn(dep, svc)
				e.countResearcherTx(svc)
			}
		} else {
			// Withdraw: tag the inputs of the service's payout. Services
			// sweep small deposits into payouts, so one observed withdrawal
			// tags many service addresses.
			e.withdrawSmallFirst = true
			tx, ok := e.serviceWithdraw(svc, e.freshAddr(rw), chain.BTC(1.2))
			e.withdrawSmallFirst = false
			if ok {
				e.tagTxInputs(tx, svc)
				e.countResearcherTx(svc)
			}
		}

	case KindFixedExchange:
		if seq%2 == 0 {
			to := e.freshAddr(svc.Wallets[0])
			if _, ok := e.pay(rw, to, chain.BTC(0.3), false); ok {
				e.tagOwn(to, svc)
				e.countResearcherTx(svc)
			}
		} else {
			if tx, ok := e.serviceWithdraw(svc, e.freshAddr(rw), chain.BTC(0.2)); ok {
				e.tagTxInputs(tx, svc)
				e.countResearcherTx(svc)
			}
		}

	case KindVendor:
		// Purchase; most vendors route through a gateway, whose invoice
		// address is what we actually observe (the paper tagged BitPay).
		gateways := e.launchedOf(KindGateway)
		if len(gateways) > 0 && e.rng.Float64() < 0.8 {
			gw := gateways[e.rng.Intn(len(gateways))]
			invoice := e.freshAddr(gw.Wallets[0])
			if _, ok := e.pay(rw, invoice, chain.BTC(0.2), false); ok {
				e.tagOwn(invoice, gw)
				e.countResearcherTx(svc)
			}
			return
		}
		dep := e.accountAddr(svc, res.ID)
		if _, ok := e.pay(rw, dep, chain.BTC(0.2), false); ok {
			e.tagOwn(dep, svc)
			e.countResearcherTx(svc)
		}

	case KindGateway:
		invoice := e.freshAddr(svc.Wallets[0])
		if _, ok := e.pay(rw, invoice, chain.BTC(0.2), false); ok {
			e.tagOwn(invoice, svc)
			e.countResearcherTx(svc)
		}

	case KindDice:
		if len(svc.staticAddrs) == 0 {
			return
		}
		betAddr := svc.staticAddrs[seq%len(svc.staticAddrs)]
		tx, _, ok := e.send(rw, []planOut{{addr: betAddr, value: chain.BTC(0.1)}}, sendOpts{})
		if !ok {
			return
		}
		e.tagOwn(betAddr, svc)
		e.countResearcherTx(svc)
		returnTo := e.inputAddr(tx, 0)
		if !returnTo.IsZero() {
			svc.pendingBets = append(svc.pendingBets, bet{returnTo: returnTo, amount: chain.BTC(0.1)})
		}

	case KindMix:
		dep := e.freshAddr(svc.Wallets[0])
		tx, _, ok := e.send(rw, []planOut{{addr: dep, value: chain.BTC(0.4)}}, sendOpts{})
		if !ok {
			return
		}
		e.tagOwn(dep, svc)
		e.countResearcherTx(svc)
		switch svc.Name {
		case "BitMix":
			// BitMix simply stole our money.
		case "Bitcoin Laundry":
			// Returns our own coins, betraying an empty mixing pool.
			e.scheduleSameCoinReturn(svc, tx, dep, e.freshAddr(rw))
		default:
			e.mixJobs = append(e.mixJobs, mixJob{
				svc: svc, to: e.freshAddr(rw),
				amount: chain.BTC(0.38), due: e.height + 4 + int64(e.rng.Intn(10)),
			})
		}

	case KindMiscSvc:
		// Donations and micro-services: pay a (sometimes famous static)
		// address.
		var to address.Address
		if len(svc.staticAddrs) > 0 && seq == 0 {
			to = svc.staticAddrs[0] // e.g. the public Wikileaks donation address
		} else {
			to = e.freshAddr(svc.Wallets[0]) // one-time addresses via IRC
		}
		if _, ok := e.pay(rw, to, chain.BTC(0.1), false); ok {
			e.tagOwn(to, svc)
			e.countResearcherTx(svc)
		}
	}
}

// scheduleSameCoinReturn finds the deposited outpoint and schedules its
// exact return (Bitcoin Laundry's tell).
func (e *engine) scheduleSameCoinReturn(svc *Actor, tx *chain.Tx, depositAddr, returnTo address.Address) {
	txid := tx.TxID()
	for i, o := range tx.Outputs {
		a, err := extractAddr(o.PkScript)
		if err != nil || a != depositAddr {
			continue
		}
		e.mixJobs = append(e.mixJobs, mixJob{
			svc: svc, to: returnTo, due: e.height + 3,
			sameCoins: &wutxo{op: chain.OutPoint{TxID: txid, Index: uint32(i)}, value: o.Value, addr: a},
		})
		return
	}
}
