package econ

import (
	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/script"
	"repro/internal/tags"
)

// This file scripts the Section 5 case studies: the Silk Road hot wallet's
// accumulation and dissolution (Table 2) and the seven thefts (Table 3).
// The scripts preserve the paper's flow *shapes* — amounts are scaled by
// World.CaseScale (simulated supply / real 2013 supply of ~11M BTC).

const realSupply2013BTC = 11_000_000

// debugDissolve prints hot-wallet accounting at dissolution time.
const debugDissolve = false

// projectedSupply computes the coins that will have been minted by the end
// of the run, so case-study amounts can be scaled before generation starts.
func (e *engine) projectedSupply() chain.Amount {
	var total chain.Amount
	for h := int64(0); h < e.cfg.Blocks; h++ {
		total += e.params.SubsidyAt(h)
	}
	return total
}

// scaleBTC converts a paper-reported BTC amount into its simulated analogue.
func (e *engine) scaleBTC(paperBTC float64) chain.Amount {
	return chain.Amount(paperBTC * e.world.CaseScale * float64(chain.Coin))
}

// knownPeel describes one Table 2 row entry: a scripted peel to a known
// service on one of the three dissolution chains.
type knownPeel struct {
	service  string
	peels    int
	totalBTC float64
}

// table2Chains transcribes Table 2: per chain, the services peeled to, how
// many peels, and the total BTC (at paper scale). 54 of the 300 hops peel
// to exchanges.
var table2Chains = [3][]knownPeel{
	{ // first chain (50,000 BTC)
		{"Bitcoin 24", 1, 2}, {"Bitcoin Central", 2, 2}, {"Bitstamp", 5, 97},
		{"CA VirtEx", 1, 3}, {"Mt Gox", 11, 492}, {"OKPay", 2, 151},
		{"Instawallet", 7, 39}, {"WalletBit Wallet", 1, 1}, {"BitZino", 2, 1},
		{"Silk Road", 4, 28},
	},
	{ // second chain (50,000 BTC)
		{"Bitcoin.de", 1, 4}, {"Bitmarket", 1, 1}, {"Bitstamp", 1, 1},
		{"BTC-e", 1, 250}, {"CA VirtEx", 1, 10}, {"Mt Gox", 14, 70},
		{"OKPay", 1, 125}, {"Instawallet", 5, 135}, {"Seals with Clubs", 1, 8},
		{"Coinabul", 1, 29}, {"Medsforbitcoin", 3, 10}, {"Silk Road", 5, 102},
	},
	{ // third chain (58,336 BTC)
		{"Bitcoin 24", 3, 124}, {"CA VirtEx", 3, 22}, {"Mercado Bitcoin", 1, 9},
		{"Mt Gox", 5, 35}, {"Instawallet", 2, 43},
	},
}

// dissolutionWithdrawals are the seven withdrawals that emptied the hot
// address, at paper scale (the last one feeds the three peeling chains).
var dissolutionWithdrawals = []float64{20000, 19000, 60000, 100000, 100000, 150000, 158336}

// setupSilkRoad schedules the hot-wallet lifecycle.
func (e *engine) setupSilkRoad() {
	sr := e.services["Silk Road"]
	if sr == nil {
		return
	}
	hotStart := e.heightOf(2012, 1, 10)
	dissolveAt := e.heightOf(2012, 8, 20)
	peelStart := dissolveAt + 4

	e.schedule(hotStart, func() {
		hot := e.freshAddr(sr.Wallets[0])
		e.srHotPinned = hot
		e.world.Dissolution = &Dissolution{HotAddr: hot}
	})

	// During the accumulation window, sweep every Silk Road sub-wallet's
	// deposits into the pinned hot address ("the funds of 128 addresses
	// were combined to deposit 10,000 BTC ... many transactions of this
	// type followed").
	for h := hotStart + 5; h < dissolveAt; h += 12 {
		e.schedule(h, func() {
			for wi, w := range sr.Wallets {
				min := 8
				if wi == 0 {
					min = 2 // the vault always consolidates onto the hot address
				}
				if len(w.utxos) >= min {
					e.sweep(w, e.srHotPinned, 128)
				}
			}
		})
	}

	// Whale escrow: the market's heaviest customers (the early-mining
	// founders) park large balances during the window, which is what lets
	// the hot address reach its ~5%-of-supply peak.
	nWhale := 8
	for i := 0; i < nWhale; i++ {
		i := i
		h := hotStart + int64(i+1)*(dissolveAt-hotStart)/int64(nWhale+1)
		e.schedule(h, func() {
			f := e.users[i%founders]
			fw := f.Wallets[0]
			bal := fw.Balance(e.height)
			if bal < chain.BTC(10) {
				return
			}
			e.payBig(fw, e.accountAddr(sr, f.ID), bal*6/10)
		})
	}

	e.schedule(dissolveAt-2, func() {
		for _, w := range sr.Wallets {
			if len(w.utxos) >= 2 {
				e.sweep(w, e.srHotPinned, 128)
			}
		}
	})
	// Resolve the peel targets early and warm any that are not yet busy, so
	// every hop of the chains is classifiable by the refined heuristic.
	e.schedule(dissolveAt-6, func() {
		for ci := 0; ci < 3; ci++ {
			e.dissolutionTargets[ci] = e.buildDissolutionTargets(ci, e.scaleBTC(dissolutionWithdrawals[6]/3))
			e.warmTargets(sr.Wallets[1], e.dissolutionTargets[ci])
		}
	})
	e.schedule(dissolveAt, func() { e.dissolveHotWallet(sr) })
	e.schedule(peelStart, func() { e.startDissolutionChains(sr) })
	// After the dissolution the hot address is retired: the marketplace
	// reverts to routine wallet behaviour (Figure 2's vendor share falls
	// back once the scripted accumulation ends).
	e.schedule(peelStart+2, func() { e.srHotPinned = address.Address{} })
}

// dissolveHotWallet empties the hot address following the paper's schedule:
// six withdrawals to new storage, then the final amount parked in a single
// address awaiting the peeling chains.
func (e *engine) dissolveHotWallet(sr *Actor) {
	d := e.world.Dissolution
	if d == nil {
		return
	}
	w := sr.Wallets[0]
	// Consolidate everything sitting on the hot address into one UTXO.
	var hotU wutxo
	var total chain.Amount
	var hotUtxos []wutxo
	rest := w.utxos[:0]
	for i, u := range w.utxos {
		if u.addr == d.HotAddr && u.matureAt <= e.height {
			hotUtxos = append(hotUtxos, u)
			total += u.value
			continue
		}
		rest = append(rest, w.utxos[i])
	}
	w.utxos = rest
	if debugDissolve {
		var wbal [8]chain.Amount
		for wi, ww := range sr.Wallets {
			for _, u := range ww.utxos {
				wbal[wi] += u.value
			}
		}
		println("DISSOLVE height", e.height, "hotUtxos", len(hotUtxos), "total", int64(total/chain.Coin),
			"w0bal", int64(wbal[0]/chain.Coin), "w1bal", int64(wbal[1]/chain.Coin), "w2bal", int64(wbal[2]/chain.Coin))
	}
	if len(hotUtxos) == 0 {
		return
	}
	if len(hotUtxos) == 1 {
		hotU = hotUtxos[0]
	} else {
		// One aggregate transaction spending all hot UTXOs.
		tx := &chain.Tx{Version: 1}
		for _, u := range hotUtxos {
			tx.Inputs = append(tx.Inputs, chain.TxIn{Prev: u.op, Sequence: ^uint32(0)})
		}
		agg := e.freshAddr(w)
		tx.Outputs = []chain.TxOut{{Value: total - e.cfg.FeePerTx, PkScript: script.PayToAddr(agg)}}
		e.queueTx(tx, hotUtxos, "dissolveAggregate", e.cfg.FeePerTx)
		hotU = wutxo{op: chain.OutPoint{TxID: tx.TxID(), Index: 0}, value: total - e.cfg.FeePerTx, addr: agg}
	}

	// Trim the hot balance to the configured share of minted supply (the
	// paper's "5% of all generated bitcoins"); any excess becomes operating
	// float in a sub-wallet.
	if minted := e.minted; minted > 0 && e.cfg.HotWalletShare > 0 {
		target := chain.Amount(float64(minted) * e.cfg.HotWalletShare)
		if hotU.value > target+chain.BTC(1) && len(sr.Wallets) > 1 {
			excess := hotU.value - target
			opAddr := e.freshAddr(sr.Wallets[1])
			if _, changeOut, ok := e.sendFromUTXO(hotU, w, []planOut{{addr: opAddr, value: excess}}); ok {
				hotU = changeOut
			}
		}
	}
	total = hotU.value
	d.TotalReceived = total
	if minted := e.minted; minted > 0 {
		d.SupplyShare = float64(total) / float64(minted)
	}

	// Withdrawals proportional to the paper's schedule.
	var paperTotal float64
	for _, v := range dissolutionWithdrawals {
		paperTotal += v
	}
	cur := hotU
	for i, v := range dissolutionWithdrawals {
		amount := chain.Amount(float64(total) * v / paperTotal)
		last := i == len(dissolutionWithdrawals)-1
		if last {
			// Park the final amount (everything left) in a single address.
			// moveUTXO credits the wallet; reclaim the UTXO so the peeling
			// chains (not routine wallet activity) spend it.
			amount = cur.value - e.cfg.FeePerTx
			finalAddr := e.freshAddr(w)
			tx := e.moveUTXO(cur, finalAddr, amount)
			if tx == nil {
				return
			}
			d.Withdrawals = append(d.Withdrawals, amount)
			e.srFinal = wutxo{op: chain.OutPoint{TxID: tx.TxID(), Index: 0}, value: amount, addr: finalAddr}
			e.removeWalletUTXO(w, e.srFinal.op)
			return
		}
		dest := e.sinkAddr(w) // new cold storage, never moves again
		tx, changeOut, ok := e.sendFromUTXO(cur, w, []planOut{{addr: dest, value: amount}})
		if !ok || tx == nil {
			return
		}
		d.Withdrawals = append(d.Withdrawals, amount)
		cur = changeOut
	}
}

// removeWalletUTXO deletes an outpoint from a wallet's tracked set, for
// scripted flows that take custody of an output themselves.
func (e *engine) removeWalletUTXO(w *Wallet, op chain.OutPoint) {
	for i, u := range w.utxos {
		if u.op == op {
			w.utxos = append(w.utxos[:i], w.utxos[i+1:]...)
			return
		}
	}
}

// moveUTXO spends a UTXO entirely into a single output (no change).
func (e *engine) moveUTXO(u wutxo, to address.Address, amount chain.Amount) *chain.Tx {
	if amount > u.value-e.cfg.FeePerTx {
		amount = u.value - e.cfg.FeePerTx
	}
	if amount <= 0 {
		return nil
	}
	tx := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: u.op, Sequence: ^uint32(0)}},
		Outputs: []chain.TxOut{{Value: amount, PkScript: script.PayToAddr(to)}},
	}
	e.queueTx(tx, []wutxo{u}, "moveUTXO", u.value-amount)
	e.noteReceive(to)
	if rw, ok := e.walletOf[to]; ok {
		rw.utxos = append(rw.utxos, wutxo{op: chain.OutPoint{TxID: tx.TxID(), Index: 0}, value: amount, addr: to})
	}
	return tx
}

// startDissolutionChains splits the parked final amount 50k/50k/58,336
// (scaled) and launches the three 100-hop peeling chains of Table 2.
func (e *engine) startDissolutionChains(sr *Actor) {
	d := e.world.Dissolution
	if d == nil || e.srFinal.value == 0 {
		return
	}
	w := sr.Wallets[0]
	u := e.srFinal
	// Split proportions from the paper: 50,000 / 50,000 / 58,336.
	shares := []float64{50000, 50000, 58336}
	var shareTotal float64
	for _, s := range shares {
		shareTotal += s
	}
	tx := &chain.Tx{Version: 1, Inputs: []chain.TxIn{{Prev: u.op, Sequence: ^uint32(0)}}}
	var heads [3]wutxo
	remaining := u.value - e.cfg.FeePerTx
	for i, s := range shares {
		amount := chain.Amount(float64(u.value) * s / shareTotal)
		if i == len(shares)-1 {
			amount = remaining
		}
		remaining -= amount
		headAddr := e.freshAddr(w)
		tx.Outputs = append(tx.Outputs, chain.TxOut{Value: amount, PkScript: script.PayToAddr(headAddr)})
		heads[i] = wutxo{value: amount, addr: headAddr}
	}
	e.queueTx(tx, []wutxo{u}, "dissolutionSplit", e.cfg.FeePerTx)
	txid := tx.TxID()
	for i := range heads {
		heads[i].op = chain.OutPoint{TxID: txid, Index: uint32(i)}
		d.ChainStarts[i] = heads[i].op
	}
	d.FinalTx = txid

	for ci := 0; ci < 3; ci++ {
		targets := e.dissolutionTargets[ci]
		if len(targets) == 0 {
			targets = e.buildDissolutionTargets(ci, heads[ci].value)
		}
		e.startPeel(w, heads[ci], targets, 4, nil)
	}
}

// buildDissolutionTargets lays out one chain's peel schedule: the Table 2
// known-service peels at deterministic hops, unknown user peels elsewhere.
func (e *engine) buildDissolutionTargets(chainIdx int, startValue chain.Amount) []peelTarget {
	hops := e.cfg.PeelHops
	targets := make([]peelTarget, hops)
	d := e.world.Dissolution

	// Expand the known peels into individual (service, amount) entries.
	type entry struct {
		service string
		amount  chain.Amount
	}
	var known []entry
	for _, kp := range table2Chains[chainIdx] {
		per := e.scaleBTC(kp.totalBTC / float64(kp.peels))
		if per < dustLimit*4 {
			per = dustLimit * 4
		}
		for i := 0; i < kp.peels; i++ {
			known = append(known, entry{service: kp.service, amount: per})
		}
	}
	// Place known peels at evenly spread hops.
	positions := make(map[int]entry, len(known))
	for i, en := range known {
		hop := (i*hops)/len(known) + 1
		if hop > hops {
			hop = hops
		}
		for positions[hop-1] != (entry{}) && hop < hops {
			hop++
		}
		positions[hop-1] = en
	}

	// Budget for unknown peels: keep the chain solvent over all hops.
	var knownTotal chain.Amount
	for _, en := range known {
		knownTotal += en.amount
	}
	unknownBudget := startValue/4 - knownTotal
	unknownCount := hops - len(known)
	var unknownPer chain.Amount
	if unknownCount > 0 && unknownBudget > 0 {
		unknownPer = unknownBudget / chain.Amount(unknownCount)
	}
	if unknownPer < dustLimit*4 {
		unknownPer = dustLimit * 4
	}

	for hop := 0; hop < hops; hop++ {
		if en, ok := positions[hop]; ok {
			svc := e.services[en.service]
			var to address.Address
			if svc != nil {
				to = e.seenAccountAddr(svc)
			} else {
				to = e.seenUserAddr()
			}
			targets[hop] = peelTarget{addr: to, amount: en.amount}
			d.Planned = append(d.Planned, PlannedPeel{
				Chain: chainIdx, Hop: hop + 1, Service: en.service, Amount: en.amount,
			})
			continue
		}
		// Unknown recipient: a previously seen user address, with jitter.
		jitter := chain.Amount(e.rng.Int63n(int64(unknownPer)/2 + 1))
		targets[hop] = peelTarget{addr: e.seenUserAddr(), amount: unknownPer/2 + jitter}
	}
	return targets
}

// warmTargets sends two tiny payments to any peel target that has fewer
// than two receives, making the later peel transaction pass the
// received-once guard (as real, well-used service deposit addresses would).
func (e *engine) warmTargets(w *Wallet, targets []peelTarget) {
	for _, t := range targets {
		for tries := 0; e.recvCount[t.addr] < 2 && tries < 3; tries++ {
			src := w
			if src.Balance(e.height) < chain.BTC(1) {
				src = w.owner.richestWallet(e.height)
			}
			if _, ok := e.pay(src, t.addr, chain.BTC(0.02), false); !ok {
				break
			}
		}
	}
}

// seenUserAddr returns a busy (>= 2 receives) user address, so peel hops
// stay unambiguous for the change classifier and clear its received-once
// guard.
func (e *engine) seenUserAddr() address.Address {
	if n := len(e.busyUserAddrs); n > 0 {
		for try := 0; try < 16; try++ {
			a := e.busyUserAddrs[e.rng.Intn(n)]
			if !e.selfChangeUsed[a] {
				return a
			}
		}
	}
	u := e.activeUser()
	return e.recvAddr(u.Wallets[0], 1.0)
}

// ---------------------------------------------------------------------------
// Thefts (Table 3).

// theftPlan scripts one Table 3 row.
type theftPlan struct {
	name     string
	victim   string // roster service; empty means "users" (the trojan)
	paperBTC float64
	year     int
	month    int
	movement string // in order: A aggregation, P peeling, S split, F folding
	// exchangePeels: (hopIndex, exchange, paperBTC) executed during the
	// first P step (or the post-aggregation P for Bitfloor).
	exchangePeels []exPeel
	// delayMove postpones the laundering (Betcoin's thief sat on the coins
	// until March 2013).
	delayMoveUntil [2]int // year, month; zero means move immediately
	// unmovedFraction of the loot never moves (the trojan thief).
	unmovedFraction float64
}

type exPeel struct {
	hop      int
	exchange string
	paperBTC float64
}

func theftPlans() []theftPlan {
	return []theftPlan{
		{name: "MyBitcoin", victim: "MyBitcoin", paperBTC: 4019, year: 2011, month: 6,
			movement:      "A/P/S",
			exchangePeels: []exPeel{{4, "Mt Gox", 160}, {9, "BTC-e", 95}}},
		{name: "Linode", victim: "Bitcoinica", paperBTC: 46648, year: 2012, month: 3,
			movement:      "A/P/F",
			exchangePeels: []exPeel{{3, "Mt Gox", 740}, {8, "Bitstamp", 310}, {14, "Mt Gox", 410}}},
		{name: "Betcoin", victim: "Betcoin", paperBTC: 3171, year: 2012, month: 3,
			movement: "F/A/P", delayMoveUntil: [2]int{2013, 3},
			exchangePeels: []exPeel{{10, "Bitcoin 24", 86}, {20, "Mt Gox", 155}, {27, "Mt Gox", 133}}},
		{name: "Bitcoinica (May)", victim: "Bitcoinica", paperBTC: 18547, year: 2012, month: 5,
			movement:      "P/A",
			exchangePeels: []exPeel{{5, "Mt Gox", 260}, {11, "BTC-e", 180}}},
		{name: "Bitcoinica (Jul)", victim: "Bitcoinica", paperBTC: 40000, year: 2012, month: 7,
			movement:      "P/A/S",
			exchangePeels: []exPeel{{6, "Mt Gox", 420}, {13, "Bitstamp", 250}}},
		{name: "Bitfloor", victim: "Bitfloor", paperBTC: 24078, year: 2012, month: 9,
			movement:      "P/A/P",
			exchangePeels: []exPeel{{3, "Mt Gox", 191}, {9, "BTC-e", 240}, {15, "Bitstamp", 230}}},
		{name: "Trojan", victim: "", paperBTC: 3257, year: 2012, month: 10,
			movement: "F/A", unmovedFraction: 0.877},
	}
}

// setupThefts creates thief actors and schedules each theft.
func (e *engine) setupThefts() {
	for _, plan := range theftPlans() {
		plan := plan
		thief := e.newActor("thief:"+plan.name, tags.CatThief, KindThief, 0, 1)
		rec := &Theft{
			Name:     plan.name,
			Victim:   plan.victim,
			PaperBTC: plan.paperBTC,
			Movement: plan.movement,
			ThiefID:  thief.ID,
		}
		e.world.Thefts = append(e.world.Thefts, rec)
		h := e.heightOf(plan.year, plan.month, 15)
		rec.Height = h

		// Whale deposits shore up the victim's balance beforehand.
		if plan.victim != "" {
			e.schedule(h-20, func() {
				victim := e.services[plan.victim]
				if victim == nil {
					return
				}
				need := e.scaleBTC(plan.paperBTC) * 13 / 10
				for i := 0; i < founders && victim.Balance(e.height) < need; i++ {
					f := e.users[i]
					fw := f.Wallets[0]
					avail := fw.Balance(e.height)
					if avail < chain.BTC(1) {
						continue
					}
					amt := avail / 2
					if amt > need {
						amt = need
					}
					e.payBig(fw, e.accountAddr(victim, f.ID), amt)
				}
			})
			// Give the victim a chance to sweep the deposits into its
			// wallets before the theft.
		}
		e.schedule(h, func() { e.executeTheft(plan, rec, thief) })
	}
}

// executeTheft performs the initial breach: victim funds move to several
// fresh thief addresses, then the movement steps are scheduled.
func (e *engine) executeTheft(plan theftPlan, rec *Theft, thief *Actor) {
	tw := thief.Wallets[0]
	if plan.victim == "" {
		// Trojan: siphon many users' wallets directly. The dormant share
		// lands on addresses the thief never touches again ("most of the
		// stolen money did not in fact move at all").
		var stolen chain.Amount
		want := e.scaleBTC(plan.paperBTC)
		dormantTarget := chain.Amount(float64(want) * plan.unmovedFraction)
		var dormant chain.Amount
		for i := 0; i < 120 && stolen < want; i++ {
			u := e.activeUser()
			uw := u.Wallets[0]
			bal := uw.Balance(e.height)
			if bal < chain.BTC(0.2) {
				continue
			}
			amt := bal - e.cfg.FeePerTx - dustLimit
			// A trojan drains many modest wallets, not one whale.
			if cap := want / 14; amt > cap {
				amt = cap
			}
			if amt > want-stolen {
				amt = want - stolen
			}
			to := e.freshAddr(tw)
			if dormant < dormantTarget {
				to = e.sinkAddr(tw)
			}
			if tx, ok := e.pay(uw, to, amt, false); ok {
				rec.TheftTxs = append(rec.TheftTxs, tx.TxID())
				rec.TheftOutputs = append(rec.TheftOutputs, outpointsTo(tx, to)...)
				stolen += amt
				if dormant < dormantTarget {
					dormant += amt
				}
			}
		}
		rec.Amount = stolen
		rec.Unmoved = dormant
	} else {
		victim := e.services[plan.victim]
		if victim == nil {
			return
		}
		want := e.scaleBTC(plan.paperBTC)
		var stolen chain.Amount
		for _, vw := range victim.Wallets {
			if stolen >= want {
				break
			}
			avail := vw.Balance(e.height)
			if avail < chain.BTC(0.5) {
				continue
			}
			amt := avail * 9 / 10
			if amt > want-stolen {
				amt = want - stolen
			}
			// The loot lands spread over several fresh thief addresses,
			// which is what makes the subsequent folding and aggregation
			// steps visible.
			shares := []int{25, 20, 18, 15, 12}
			var outs []planOut
			rest := amt
			for _, sh := range shares {
				v := amt * chain.Amount(sh) / 100
				outs = append(outs, planOut{addr: e.freshAddr(tw), value: v})
				rest -= v
			}
			outs = append(outs, planOut{addr: e.freshAddr(tw), value: rest})
			tx, _, ok := e.send(vw, outs, sendOpts{maxInputs: 48, noChange: false})
			if ok {
				rec.TheftTxs = append(rec.TheftTxs, tx.TxID())
				for _, o := range outs {
					rec.TheftOutputs = append(rec.TheftOutputs, outpointsTo(tx, o.addr)...)
				}
				stolen += amt
			}
		}
		rec.Amount = stolen
		if plan.victim == "Bitcoinica" && plan.month == 7 {
			victim.dead = true // Bitcoinica shut down after the July theft
		}
		if plan.victim == "MyBitcoin" || plan.victim == "Betcoin" {
			victim.dead = true
		}
	}
	if rec.Amount == 0 {
		return
	}

	moveAt := e.height + 6
	if plan.delayMoveUntil[0] != 0 {
		moveAt = e.heightOf(plan.delayMoveUntil[0], plan.delayMoveUntil[1], 15)
	}
	e.scheduleMovement(plan, rec, thief, moveAt)
}

// scheduleMovement executes the movement string step by step with gaps. The
// scripted exchange peels run on the final peeling stage (matching Bitfloor,
// where exchanges were reached only on the post-aggregation chains).
func (e *engine) scheduleMovement(plan theftPlan, rec *Theft, thief *Actor, startAt int64) {
	tw := thief.Wallets[0]
	lastPeel := -1
	for i := 0; i < len(plan.movement); i += 2 {
		if plan.movement[i] == 'P' {
			lastPeel = i
		}
	}
	h := startAt
	fundedFold := false
	for i := 0; i < len(plan.movement); i += 2 {
		step := plan.movement[i]
		h += int64(4 + e.rng.Intn(8))
		if step == 'F' && !fundedFold {
			// Folding needs clean coins; the thief buys a little from an
			// exchange (twice) just before mixing them in.
			fundedFold = true
			fundAt := h - 2
			e.schedule(fundAt, func() {
				ex := e.pickWeighted(e.launchedOf(KindBankExchange), e.svcWeights)
				if ex != nil {
					e.serviceWithdraw(ex, e.freshAddr(tw), e.scaleBTC(plan.paperBTC/40)+chain.BTC(2))
					e.serviceWithdraw(ex, e.freshAddr(tw), chain.BTC(1.5))
				}
			})
		}
		switch step {
		case 'F':
			// Folding: part of the loot aggregated together with the clean
			// coins; later steps consume the rest.
			e.schedule(h, func() {
				e.sweep(tw, e.freshAddr(tw), 5)
			})
		case 'A':
			e.schedule(h, func() {
				e.sweep(tw, e.freshAddr(tw), 64)
			})
		case 'S':
			e.schedule(h, func() { e.splitLargest(tw, 3) })
		case 'P':
			var peels []exPeel
			if i == lastPeel {
				peels = plan.exchangePeels
			}
			// Resolve and warm the exchange deposit targets a few blocks
			// ahead so the peel transactions stay classifiable.
			warmAt := h - 4
			var resolved []peelTarget
			e.schedule(warmAt, func() {
				resolved = e.resolveTheftTargets(peels)
				e.warmTargets(tw, resolved)
			})
			e.schedule(h, func() { e.theftPeel(rec, tw, peels, resolved) })
			h += 16 // let the chain run before the next step
		}
	}
}

// splitLargest splits the wallet's largest UTXO into n fresh addresses.
func (e *engine) splitLargest(w *Wallet, n int) {
	best := -1
	for i, u := range w.utxos {
		if u.matureAt <= e.height && (best < 0 || u.value > w.utxos[best].value) {
			best = i
		}
	}
	if best < 0 {
		return
	}
	u := w.utxos[best]
	w.utxos = append(w.utxos[:best], w.utxos[best+1:]...)
	share := (u.value - e.cfg.FeePerTx) / chain.Amount(n)
	var outs []planOut
	for i := 0; i < n-1; i++ {
		outs = append(outs, planOut{addr: e.freshAddr(w), value: share})
	}
	tx, changeOut, ok := e.sendFromUTXO(u, w, outs)
	if !ok || tx == nil {
		w.utxos = append(w.utxos, u)
		return
	}
	w.utxos = append(w.utxos, changeOut)
}

// outpointsTo returns the outpoints of tx paying the given address.
func outpointsTo(tx *chain.Tx, to address.Address) []chain.OutPoint {
	var out []chain.OutPoint
	txid := tx.TxID()
	for i, o := range tx.Outputs {
		a, err := extractAddr(o.PkScript)
		if err == nil && a == to {
			out = append(out, chain.OutPoint{TxID: txid, Index: uint32(i)})
		}
	}
	return out
}

// resolveTheftTargets picks the busy exchange deposit addresses the
// scripted peels will pay.
func (e *engine) resolveTheftTargets(exPeels []exPeel) []peelTarget {
	out := make([]peelTarget, len(exPeels))
	for i, p := range exPeels {
		svc := e.services[p.exchange]
		var to address.Address
		if svc != nil {
			to = e.seenAccountAddr(svc)
		} else {
			to = e.seenUserAddr()
		}
		out[i] = peelTarget{addr: to, amount: e.scaleBTC(p.paperBTC)}
	}
	return out
}

// theftPeel launches a peeling chain from the thief's largest UTXO, with
// the scripted exchange peels at their planned hops (resolved holds their
// pre-warmed destination addresses). The peel fraction keeps most value
// moving down the chain, as in the real thefts.
func (e *engine) theftPeel(rec *Theft, w *Wallet, exPeels []exPeel, resolved []peelTarget) {
	best := -1
	for i, u := range w.utxos {
		if u.matureAt <= e.height && (best < 0 || u.value > w.utxos[best].value) {
			best = i
		}
	}
	if best < 0 {
		return
	}
	u := w.utxos[best]
	w.utxos = append(w.utxos[:best], w.utxos[best+1:]...)

	hops := 24
	for _, p := range exPeels {
		if p.hop > hops {
			hops = p.hop + 3
		}
	}
	byHop := make(map[int]exPeel, len(exPeels))
	for _, p := range exPeels {
		byHop[p.hop] = p
	}
	var knownTotal chain.Amount
	for _, p := range exPeels {
		knownTotal += e.scaleBTC(p.paperBTC)
	}
	budget := u.value/3 - knownTotal
	per := chain.Amount(0)
	if unknown := hops - len(exPeels); unknown > 0 && budget > 0 {
		per = budget / chain.Amount(unknown)
	}
	if per < dustLimit*4 {
		per = dustLimit * 4
	}

	exIdx := make(map[int]int, len(exPeels))
	for i, p := range exPeels {
		exIdx[p.hop] = i
	}
	targets := make([]peelTarget, 0, hops)
	for hop := 1; hop <= hops; hop++ {
		if p, ok := byHop[hop]; ok {
			amount := e.scaleBTC(p.paperBTC)
			var to address.Address
			if i, ok := exIdx[hop]; ok && i < len(resolved) && !resolved[i].addr.IsZero() {
				to = resolved[i].addr
			} else if svc := e.services[p.exchange]; svc != nil {
				to = e.seenAccountAddr(svc)
			} else {
				to = e.seenUserAddr()
			}
			targets = append(targets, peelTarget{addr: to, amount: amount})
			rec.ExchangePeels = append(rec.ExchangePeels, PlannedPeel{
				Hop: hop, Service: p.exchange, Amount: amount,
			})
			continue
		}
		jitter := chain.Amount(e.rng.Int63n(int64(per)/2 + 1))
		targets = append(targets, peelTarget{addr: e.seenUserAddr(), amount: per/2 + jitter})
	}
	e.startPeel(w, u, targets, 3, nil)
}
