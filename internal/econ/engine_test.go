package econ

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/script"
	"repro/internal/tags"
)

// newTestEngine builds a minimal engine with one funded user for unit tests
// of the transaction builder.
func newTestEngine(t *testing.T) (*engine, *Actor) {
	t.Helper()
	cfg := Small()
	cfg.Blocks = 200
	cfg.Users = 20
	e := newEngine(cfg)
	e.world.BlocksPerDay = 4
	u := e.newActor("tester", tags.CatIndividual, KindUser, 0, 1)
	// Fund with a few coinbases, matured.
	for i := 0; i < 4; i++ {
		addr := e.freshAddr(u.Wallets[0])
		if err := e.sealBlock(addr); err != nil {
			t.Fatal(err)
		}
	}
	for e.height < 20 {
		if err := e.sealBlock(e.sinkAddr(u.Wallets[0])); err != nil {
			t.Fatal(err)
		}
	}
	return e, u
}

func TestSendInsufficientFunds(t *testing.T) {
	e, u := newTestEngine(t)
	w := u.Wallets[0]
	before := len(w.utxos)
	_, _, ok := e.send(w, []planOut{{addr: e.sinkAddr(w), value: 10_000 * chain.Coin}}, sendOpts{})
	if ok {
		t.Fatal("send succeeded beyond balance")
	}
	if len(w.utxos) != before {
		t.Fatal("failed send leaked UTXOs")
	}
}

func TestSendCreatesChangeAndCredits(t *testing.T) {
	e, u := newTestEngine(t)
	w := u.Wallets[0]
	balBefore := w.Balance(e.height)
	tx, changeIdx, ok := e.send(w, []planOut{{addr: e.sinkAddr(w), value: 10 * chain.Coin}}, sendOpts{})
	if !ok {
		t.Fatal("send failed")
	}
	if changeIdx < 0 {
		t.Fatal("no change output created")
	}
	changeAddr, err := script.ExtractAddress(tx.Outputs[changeIdx].PkScript)
	if err != nil {
		t.Fatal(err)
	}
	if !e.changeClass[changeAddr] {
		t.Fatal("change address not marked change-class")
	}
	// Change credited back: balance fell by exactly amount+fee.
	want := balBefore - 10*chain.Coin - e.cfg.FeePerTx
	if got := w.Balance(e.height); got != want {
		t.Fatalf("balance %v, want %v", got, want)
	}
}

func TestSendSelfChangePrefersStableAddr(t *testing.T) {
	e, u := newTestEngine(t)
	w := u.Wallets[0]
	// First spend creates a change-class UTXO.
	_, _, ok := e.send(w, []planOut{{addr: e.sinkAddr(w), value: 10 * chain.Coin}}, sendOpts{})
	if !ok {
		t.Fatal("setup send failed")
	}
	// Self-change spend: the target must be a non-change (coinbase) address
	// when one is among the inputs.
	tx, changeIdx, ok := e.send(w, []planOut{{addr: e.sinkAddr(w), value: 30 * chain.Coin}},
		sendOpts{selfChange: true, maxInputs: 8})
	if !ok {
		t.Fatal("self-change send failed")
	}
	if changeIdx < 0 {
		t.Fatal("no change output")
	}
	changeAddr, err := script.ExtractAddress(tx.Outputs[changeIdx].PkScript)
	if err != nil {
		t.Fatal(err)
	}
	if e.changeClass[changeAddr] {
		t.Fatal("self-change landed on a change-class address despite stable inputs")
	}
	if !e.selfChangeUsed[changeAddr] {
		t.Fatal("self-change target not recorded")
	}
}

// fundDistinctValues replaces a wallet's queue with synthetic UTXOs of the
// given values (in order), minting a key for each so send can sign them.
func fundDistinctValues(e *engine, w *Wallet, values []chain.Amount) {
	w.utxos = nil
	for i, v := range values {
		a := e.freshAddr(w)
		var id chain.Hash
		id[0], id[31] = byte(i+1), 0xfd
		w.utxos = append(w.utxos, wutxo{
			op:    chain.OutPoint{TxID: id, Index: uint32(i)},
			value: v,
			addr:  a,
		})
	}
}

func TestSmallFirstSendPreservesFIFO(t *testing.T) {
	e, u := newTestEngine(t)
	w := u.Wallets[0]
	fundDistinctValues(e, w, []chain.Amount{
		50 * chain.Coin, 10 * chain.Coin, 40 * chain.Coin, 5 * chain.Coin, 30 * chain.Coin,
	})
	// Needs 12 BTC + fee: smallest-first must pick the 5 and 10 BTC coins.
	tx, _, ok := e.send(w, []planOut{{addr: e.sinkAddr(w), value: 12 * chain.Coin}},
		sendOpts{smallFirst: true})
	if !ok {
		t.Fatal("smallFirst send failed")
	}
	if len(tx.Inputs) != 2 {
		t.Fatalf("selected %d inputs, want 2 (the two smallest)", len(tx.Inputs))
	}
	// The unselected remainder must still be the original FIFO queue, not a
	// value-sorted one: one deposit-sweeping withdrawal must not convert the
	// wallet to value-ordered coin selection for every later send. The
	// send's own change (15 - 12 BTC - fee) joins at the back of the queue.
	want := []chain.Amount{50 * chain.Coin, 40 * chain.Coin, 30 * chain.Coin,
		3*chain.Coin - e.cfg.FeePerTx}
	if len(w.utxos) != len(want) {
		t.Fatalf("surviving utxos = %d, want %d", len(w.utxos), len(want))
	}
	for i, v := range want {
		if w.utxos[i].value != v {
			t.Fatalf("surviving queue reordered: position %d holds %v, want %v", i, w.utxos[i].value, v)
		}
	}
	if !e.changeClass[w.utxos[3].addr] {
		t.Fatal("queue tail is not the send's change output")
	}
}

func TestFailedSendLeavesQueueUntouched(t *testing.T) {
	e, u := newTestEngine(t)
	w := u.Wallets[0]
	values := []chain.Amount{20 * chain.Coin, 5 * chain.Coin, 15 * chain.Coin}
	fundDistinctValues(e, w, values)
	_, _, ok := e.send(w, []planOut{{addr: e.sinkAddr(w), value: 1000 * chain.Coin}}, sendOpts{})
	if ok {
		t.Fatal("send succeeded beyond balance")
	}
	for i, v := range values {
		if w.utxos[i].value != v {
			t.Fatalf("failed send reordered the queue at position %d", i)
		}
	}
}

func TestSweepConsolidates(t *testing.T) {
	e, u := newTestEngine(t)
	w := u.Wallets[0]
	if len(w.utxos) < 2 {
		t.Fatal("need several UTXOs")
	}
	target := e.freshAddr(w)
	balBefore := w.Balance(e.height)
	if _, ok := e.sweep(w, target, 128); !ok {
		t.Fatal("sweep failed")
	}
	if len(w.utxos) != 1 {
		t.Fatalf("after sweep: %d utxos, want 1", len(w.utxos))
	}
	if w.utxos[0].addr != target {
		t.Fatal("sweep output landed elsewhere")
	}
	if got := w.Balance(e.height); got != balBefore-e.cfg.FeePerTx {
		t.Fatalf("sweep lost value: %v -> %v", balBefore, got)
	}
}

func TestSendFromUTXOKeepsChangeOutOfWallet(t *testing.T) {
	e, u := newTestEngine(t)
	w := u.Wallets[0]
	seed := w.utxos[0]
	w.utxos = w.utxos[1:]
	before := len(w.utxos)
	_, changeOut, ok := e.sendFromUTXO(seed, w, []planOut{{addr: e.sinkAddr(w), value: chain.Coin}})
	if !ok {
		t.Fatal("sendFromUTXO failed")
	}
	if len(w.utxos) != before {
		t.Fatal("peel change leaked into the wallet")
	}
	if changeOut.value != seed.value-chain.Coin-e.cfg.FeePerTx {
		t.Fatalf("change value %v wrong", changeOut.value)
	}
}

func TestDoubleSpendPanicsWithAttribution(t *testing.T) {
	e, u := newTestEngine(t)
	w := u.Wallets[0]
	seed := w.utxos[0]
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("second spend of the same outpoint did not panic")
		}
	}()
	e.claim(seed.op, "test-one")
	e.claim(seed.op, "test-two")
}

func TestSealBlockRejectsOverdraw(t *testing.T) {
	e, u := newTestEngine(t)
	w := u.Wallets[0]
	// Manually queue a transaction that spends more than its inputs.
	seed := w.utxos[0]
	tx := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: seed.op, Sequence: ^uint32(0)}},
		Outputs: []chain.TxOut{{Value: seed.value * 2, PkScript: script.PayToAddr(e.sinkAddr(w))}},
	}
	k := e.keyOf[seed.addr]
	sig := k.Sign(chain.SigHash(tx, 0))
	tx.Inputs[0].SigScript = script.SigScript(sig, k.PubKey())
	e.pending = append(e.pending, tx)
	if err := e.sealBlock(e.sinkAddr(w)); err == nil {
		t.Fatal("sealed a block with an overdrawing transaction")
	}
}

func TestRecvAddrRespectsReuseProb(t *testing.T) {
	e, u := newTestEngine(t)
	w := u.Wallets[0]
	// With probability zero, every recv address is fresh.
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		a := e.recvAddr(w, 0)
		if seen[a.String()] {
			t.Fatal("reuseProb 0 produced a reused address")
		}
		seen[a.String()] = true
	}
}

func TestAccountAddrStablePerCustomer(t *testing.T) {
	e, _ := newTestEngine(t)
	svc := e.newActor("svc", tags.CatBankExchange, KindBankExchange, 0, 3)
	a1 := e.accountAddr(svc, 7)
	a2 := e.accountAddr(svc, 7)
	b1 := e.accountAddr(svc, 8)
	if a1 != a2 {
		t.Fatal("same customer got different account addresses")
	}
	if a1 == b1 {
		t.Fatal("different customers share an account address")
	}
}
