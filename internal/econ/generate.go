package econ

import (
	"context"
	"fmt"
	"os"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/par"
	"repro/internal/script"
	"repro/internal/tags"
)

// extractAddr is a local alias so behaviour files read cleanly.
func extractAddr(pkScript []byte) (address.Address, error) {
	return script.ExtractAddress(pkScript)
}

// Generate runs the full simulation and returns the world: a validated
// chain plus ground truth, tags, and the scripted case-study records.
func Generate(cfg Config) (*World, error) {
	return GenerateStream(context.Background(), cfg, nil)
}

// GenerateCtx is Generate under a context: cancellation is observed between
// blocks, the seal pipeline drains, and ctx.Err() is returned.
func GenerateCtx(ctx context.Context, cfg Config) (*World, error) {
	return GenerateStream(ctx, cfg, nil)
}

// GenerateToFile is Generate, additionally emitting the chain to path in
// the framed chain format (chain.Writer) block by block as each is sealed.
// The file is byte-identical to Chain.WriteTo over the finished chain, so
// the measurement pipeline can stream it back (fistful's -chain mode)
// without the economy generator and the analyst sharing memory. On any
// generation, flush, or close error the partially written file is removed:
// a truncated chain file left behind would trip a later `-chain -reuse` run
// with a confusing mid-stream decode error instead of a missing-file one.
func GenerateToFile(cfg Config, path string) (*World, error) {
	return GenerateToFileCtx(context.Background(), cfg, path)
}

// GenerateToFileCtx is GenerateToFile under a context; as with GenerateCtx,
// cancellation aborts between blocks and the partial file is removed.
func GenerateToFileCtx(ctx context.Context, cfg Config, path string) (w *World, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("econ: create chain file: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			_ = os.Remove(path) // best effort; the error already aborts the run
		}
	}()
	//lint:ignore fistlint/leakclose on error the deferred cleanup closes and removes the file; flushing a partial chain frame would corrupt it
	sw, err := chain.NewWriter(f)
	if err != nil {
		return nil, err
	}
	w, err = GenerateStream(ctx, cfg, sw.WriteBlock)
	if err != nil {
		return nil, err
	}
	if err = sw.Flush(); err != nil {
		return nil, fmt.Errorf("econ: flush chain file: %w", err)
	}
	if err = f.Close(); err != nil {
		return nil, fmt.Errorf("econ: close chain file: %w", err)
	}
	return w, nil
}

// GenerateStream is Generate with a per-block sink: sink (when non-nil) is
// called once per sealed block, in strict height order. With the seal
// pipeline active (Config.PipelineDepth != 1) the sink runs on the
// pipeline's committer goroutine, up to PipelineDepth blocks behind the
// builder; it is never called concurrently with itself. ctx is checked once
// per block in the build loop — the only submitter — so cancelling it stops
// generation promptly and the pipeline drains through the normal path.
func GenerateStream(ctx context.Context, cfg Config, sink func(*chain.Block) error) (*World, error) {
	if cfg.Blocks < 100 {
		return nil, fmt.Errorf("econ: need at least 100 blocks, got %d", cfg.Blocks)
	}
	if cfg.Users < founders {
		return nil, fmt.Errorf("econ: need at least %d users, got %d", founders, cfg.Users)
	}
	e := newEngine(cfg)
	e.blockSink = sink
	if depth := par.Workers(cfg.PipelineDepth); depth > 1 {
		e.sealer = newSealPipeline(e.chain, sink, depth)
	}
	e.world.BlocksPerDay = blocksPerDay(e.params.BlockInterval.Seconds())
	e.world.CaseScale = float64(e.projectedSupply()/1e8) / realSupply2013BTC

	e.setupActors()
	if cfg.Scenarios {
		e.setupSilkRoad()
		e.setupThefts()
	}
	e.setupResearcher()

	err := e.buildBlocks(ctx)
	if e.sealer != nil {
		// Always drain, success or not: a seal error from the last few
		// blocks surfaces here, and no pipeline goroutine may outlive
		// generation.
		if derr := e.sealer.drain(); err == nil {
			err = derr
		}
	}
	if err != nil {
		return nil, err
	}

	e.finalizeWorld()
	return e.world, nil
}

// buildBlocks runs the per-block simulation loop, sealing each block as it
// fills. It returns the first build, seal, or context error; under the seal
// pipeline the caller must still drain the sealer afterwards.
func (e *engine) buildBlocks(ctx context.Context) error {
	for h := int64(0); h < e.cfg.Blocks; h++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// e.height is advanced by sealBlock; assert the invariant cheaply.
		if e.height != h {
			return fmt.Errorf("econ: height skew %d != %d", e.height, h)
		}
		for _, fn := range e.scheduled[h] {
			fn()
		}
		e.investmentTick()
		e.poolPayoutTick()
		for i, n := 0, e.activityLevel(); i < n && !e.blockFull(); i++ {
			e.userAction()
		}
		e.serviceChurnTick()
		e.dicePayoutTick()
		e.mixPayoutTick()
		e.peelJobTick()
		if err := e.sealBlock(e.minerAddrFor()); err != nil {
			return err
		}
	}
	return nil
}

func blocksPerDay(blockSeconds float64) int64 {
	if blockSeconds <= 0 {
		return 144
	}
	bpd := int64(86400 / blockSeconds)
	if bpd < 1 {
		bpd = 1
	}
	return bpd
}

// setupActors instantiates the roster, the defunct theft victims, and the
// user population.
func (e *engine) setupActors() {
	cfg := e.cfg
	for _, def := range Roster() {
		e.addService(def)
	}
	// Defunct services that exist only as theft victims (Section 5).
	e.addService(ServiceDef{Name: "MyBitcoin", Category: tags.CatWallet, Kind: KindWallet, Launch: d(2010, 8), Weight: 3})
	e.addService(ServiceDef{Name: "Betcoin", Category: tags.CatGambling, Kind: KindCasino, Launch: d(2011, 5), Weight: 2})

	for i := 0; i < cfg.Users; i++ {
		e.newActor(fmt.Sprintf("user%04d", i), tags.CatIndividual, KindUser, 0, 1)
	}
}

func (e *engine) addService(def ServiceDef) *Actor {
	wallets := 1
	switch {
	case def.Kind == KindDice:
		wallets = 1 // dice games ran one famously hot wallet
	case def.Weight >= 8:
		wallets = e.cfg.ServiceWallets
	case def.Weight >= 4:
		wallets = 2
	}
	launch := e.params.HeightFor(def.Launch)
	if launch >= e.cfg.Blocks {
		launch = e.cfg.Blocks - 1
	}
	a := e.newActor(def.Name, def.Category, def.Kind, launch, wallets)
	if def.Kind == KindPool {
		e.poolWeights[a.ID] = def.Weight
	} else {
		e.svcWeights[a.ID] = def.Weight
	}
	switch def.Kind {
	case KindDice:
		// Famous static betting addresses (the 1dice... analogues).
		n := 2
		if def.Weight >= 10 {
			n = 6
		}
		for i := 0; i < n; i++ {
			a.staticAddrs = append(a.staticAddrs, e.freshAddr(a.Wallets[0]))
		}
		e.world.DiceStaticAddrs = append(e.world.DiceStaticAddrs, a.staticAddrs...)
	case KindMiscSvc:
		// Public donation address (e.g. Wikileaks).
		a.staticAddrs = append(a.staticAddrs, e.freshAddr(a.Wallets[0]))
	}
	return a
}

// finalizeWorld publishes the chain, actors, and the public (tag-site and
// forum) tags.
func (e *engine) finalizeWorld() {
	w := e.world
	w.Chain = e.chain
	w.Actors = e.actors

	// Self-labeled service addresses for the tag site: static addresses,
	// plus each service's earliest wallet addresses. These are the
	// "blockchain.info/tags"-style, lower-confidence sources.
	for _, a := range e.actors {
		if !a.IsService() {
			continue
		}
		emit := func(addr address.Address) {
			w.PublicTags = append(w.PublicTags, tags.Tag{
				Addr: addr, Service: a.Name, Category: a.Category, Source: tags.SourceTagSite,
			})
		}
		for _, s := range a.staticAddrs {
			emit(s)
		}
		// The community identifies a couple of early addresses per service
		// wallet over time (the tag site carried >5,000 such tags); without
		// these the sub-wallet clusters stay anonymous.
		for _, sw := range a.Wallets {
			if recs := sw.addrRecs; len(recs) > 0 {
				emit(recs[0].a)
				if len(recs) > 2 {
					emit(recs[2].a)
				}
			}
		}
	}
	// The community identified the Silk Road hot address (1DkyBEKt).
	if w.Dissolution != nil && !w.Dissolution.HotAddr.IsZero() {
		sr := e.services["Silk Road"]
		w.PublicTags = append(w.PublicTags, tags.Tag{
			Addr: w.Dissolution.HotAddr, Service: sr.Name, Category: sr.Category, Source: tags.SourceForum,
		})
	}
	// A slice of users self-label one address in forum signatures.
	for i := 0; i < len(e.users); i += 20 {
		u := e.users[i]
		if recs := u.Wallets[0].addrRecs; len(recs) > 0 {
			w.PublicTags = append(w.PublicTags, tags.Tag{
				Addr: recs[0].a, Service: u.Name, Category: tags.CatIndividual, Source: tags.SourceForum,
			})
		}
	}
}
