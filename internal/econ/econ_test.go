package econ

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/script"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

// genSmall caches one Small() world across tests in this package.
var smallWorld *World

func small(t *testing.T) *World {
	t.Helper()
	if smallWorld == nil {
		w, err := Generate(Small())
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		smallWorld = w
	}
	return smallWorld
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Small()
	cfg.Blocks = 300
	cfg.Users = 60
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Chain.TipHash() != w2.Chain.TipHash() {
		t.Fatal("same seed produced different chains")
	}
	if w1.TxsGenerated != w2.TxsGenerated {
		t.Fatal("same seed produced different tx counts")
	}
}

func TestGenerateDifferentSeeds(t *testing.T) {
	cfg := Small()
	cfg.Blocks = 300
	cfg.Users = 60
	w1, _ := Generate(cfg)
	cfg.Seed++
	w2, _ := Generate(cfg)
	if w1.Chain.TipHash() == w2.Chain.TipHash() {
		t.Fatal("different seeds produced identical chains")
	}
}

func TestGeneratedChainFullyValid(t *testing.T) {
	// Replay every block through a fresh chain with script verification on:
	// the generator must produce a consensus-valid history.
	w := small(t)
	replay := chain.New(w.Params)
	for h := int64(0); h <= w.Chain.Height(); h++ {
		blk := w.Chain.BlockAt(h)
		if err := replay.ConnectBlock(blk, false, chain.ConnectBlockOptions{Verifier: script.Verifier{}}); err != nil {
			t.Fatalf("block %d invalid: %v", h, err)
		}
	}
	if replay.UTXO().Total() != w.Chain.UTXO().Total() {
		t.Fatal("replayed UTXO total differs")
	}
}

func TestGroundTruthCoversAllSpenders(t *testing.T) {
	w := small(t)
	g, err := txgraph.Build(w.Chain)
	if err != nil {
		t.Fatal(err)
	}
	owners := w.OwnersForGraph(g)
	unknown := 0
	for id := 0; id < g.NumAddrs(); id++ {
		if owners[id] < 0 {
			unknown++
		}
	}
	if unknown > 0 {
		t.Fatalf("%d addresses lack ground-truth owners", unknown)
	}
}

func TestResearcherCampaignComplete(t *testing.T) {
	w := small(t)
	if w.ResearcherTxCount < 330 {
		t.Fatalf("researcher performed %d txs, want ~344", w.ResearcherTxCount)
	}
	if w.ResearcherServices < 80 {
		t.Fatalf("researcher reached %d services, want ~87", w.ResearcherServices)
	}
	if w.Tags.Len() < 150 {
		t.Fatalf("own-transaction tags = %d, want hundreds", w.Tags.Len())
	}
	counts := w.Tags.CountBySource()
	if counts[tags.SourceOwnTransaction] != w.Tags.Len() {
		t.Fatal("researcher store contains non-own-transaction tags")
	}
}

func TestDissolutionScripted(t *testing.T) {
	w := small(t)
	d := w.Dissolution
	if d == nil {
		t.Fatal("no dissolution record")
	}
	if len(d.Withdrawals) != 7 {
		t.Fatalf("withdrawals = %d, want 7", len(d.Withdrawals))
	}
	if d.SupplyShare < 0.02 || d.SupplyShare > 0.12 {
		t.Fatalf("hot wallet share = %.4f, want around 0.05", d.SupplyShare)
	}
	if len(d.Planned) == 0 {
		t.Fatal("no planned peels recorded")
	}
	for i := 0; i < 3; i++ {
		if d.ChainStarts[i].TxID.IsZero() {
			t.Fatalf("chain %d start missing", i)
		}
	}
}

func TestTheftsScripted(t *testing.T) {
	w := small(t)
	if len(w.Thefts) != 7 {
		t.Fatalf("thefts = %d, want 7", len(w.Thefts))
	}
	for _, th := range w.Thefts {
		if th.Amount <= 0 {
			t.Errorf("theft %s stole nothing", th.Name)
		}
		if len(th.TheftOutputs) == 0 {
			t.Errorf("theft %s has no recorded outputs", th.Name)
		}
		// Scaled amount within 30% of target (victim liquidity permitting).
		want := float64(th.PaperBTC) * w.CaseScale
		got := th.Amount.ToBTC()
		if got < want*0.5 {
			t.Errorf("theft %s stole %.1f, want about %.1f", th.Name, got, want)
		}
	}
}

func TestDiceBehaviourPresent(t *testing.T) {
	w := small(t)
	if len(w.DiceStaticAddrs) == 0 {
		t.Fatal("no dice static addresses")
	}
	g, err := txgraph.Build(w.Chain)
	if err != nil {
		t.Fatal(err)
	}
	// The famous static bet addresses must be busy.
	busy := 0
	for _, a := range w.DiceStaticAddrs {
		if id, ok := g.LookupAddr(a); ok && len(g.Recvs(id)) >= 2 {
			busy++
		}
	}
	if busy == 0 {
		t.Fatal("no dice address received multiple bets")
	}
}

func TestSelfChangeShareInRange(t *testing.T) {
	w := small(t)
	g, err := txgraph.Build(w.Chain)
	if err != nil {
		t.Fatal(err)
	}
	self, total := 0, 0
	for i := 0; i < g.NumTxs(); i++ {
		tx := g.Tx(txgraph.TxSeq(i))
		if tx.Coinbase {
			continue
		}
		total++
		if tx.HasSelfChange() {
			self++
		}
	}
	share := float64(self) / float64(total)
	if share < 0.02 || share > 0.45 {
		t.Fatalf("self-change share = %.3f, out of plausible range", share)
	}
}

func TestRosterInvariants(t *testing.T) {
	if got := RosterResearcherTotal(); got != 344 {
		t.Fatalf("roster researcher txs = %d, want 344", got)
	}
	byCat := map[tags.Category]int{}
	for _, def := range Roster() {
		byCat[def.Category]++
	}
	wantCounts := map[tags.Category]int{
		tags.CatMining: 11, tags.CatWallet: 10, tags.CatBankExchange: 18,
		tags.CatFixedExchange: 8, tags.CatGambling: 13, tags.CatInvestment: 2,
	}
	for cat, want := range wantCounts {
		if byCat[cat] != want {
			t.Errorf("%s services = %d, want %d", cat, byCat[cat], want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := Small()
	cfg.Blocks = 10
	if _, err := Generate(cfg); err == nil {
		t.Fatal("accepted too few blocks")
	}
	cfg = Small()
	cfg.Users = 2
	if _, err := Generate(cfg); err == nil {
		t.Fatal("accepted too few users")
	}
}

func TestPublicTagsCoverServices(t *testing.T) {
	w := small(t)
	names := map[string]bool{}
	for _, tg := range w.PublicTags {
		names[tg.Service] = true
	}
	for _, must := range []string{"Mt Gox", "Silk Road", "Satoshi Dice", "Instawallet", "Medsforbitcoin"} {
		if !names[must] {
			t.Errorf("no public tag for %s", must)
		}
	}
}
