package econ

import (
	"bytes"
	"testing"
)

// The signing-pipeline contract: any SignWorkers setting produces a chain
// that is byte-identical to the fully sequential path — same TxIDs, same
// block hashes, same serialized bytes (which also covers every signature
// script). Run under -race this shakes out unsynchronized sharing between
// the per-block signing jobs. Exercised at two scales so the fan-out chunks
// hold both single and multiple jobs per worker. PipelineDepth is pinned to
// 1: SignWorkers only drives the inline seal path (the seal pipeline signs
// cross-block instead), and that is the path this test must keep covering.
func TestParallelSigningByteIdentical(t *testing.T) {
	small := Small()
	small.Blocks, small.Users = 300, 60
	small.PipelineDepth = 1
	larger := Small()
	larger.Blocks, larger.Users = 600, 120
	larger.PipelineDepth = 1
	configs := []struct {
		name string
		cfg  Config
	}{
		{"small", small},
		{"larger", larger},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			seqCfg := tc.cfg
			seqCfg.SignWorkers = 1
			seq, err := Generate(seqCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 3} {
				parCfg := tc.cfg
				parCfg.SignWorkers = workers
				par, err := Generate(parCfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				compareChains(t, workers, seq, par)
			}
		})
	}
}

func compareChains(t *testing.T, workers int, seq, par *World) {
	t.Helper()
	if par.Chain.Height() != seq.Chain.Height() {
		t.Fatalf("workers=%d: height %d, sequential %d", workers, par.Chain.Height(), seq.Chain.Height())
	}
	for h := int64(0); h <= seq.Chain.Height(); h++ {
		sb, pb := seq.Chain.BlockAt(h), par.Chain.BlockAt(h)
		if pb.BlockHash() != sb.BlockHash() {
			t.Fatalf("workers=%d: block %d hash differs", workers, h)
		}
		if len(pb.Txs) != len(sb.Txs) {
			t.Fatalf("workers=%d: block %d has %d txs, sequential %d", workers, h, len(pb.Txs), len(sb.Txs))
		}
		for i := range sb.Txs {
			if pb.Txs[i].TxID() != sb.Txs[i].TxID() {
				t.Fatalf("workers=%d: block %d tx %d id differs", workers, h, i)
			}
		}
	}
	// Byte-level equality covers what the ids deliberately exclude: the
	// signature scripts themselves.
	var sbuf, pbuf bytes.Buffer
	if _, err := seq.Chain.WriteTo(&sbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := par.Chain.WriteTo(&pbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sbuf.Bytes(), pbuf.Bytes()) {
		t.Fatalf("workers=%d: serialized chains differ", workers)
	}
}
