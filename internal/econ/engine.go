package econ

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/par"
	"repro/internal/script"
	"repro/internal/tags"
)

// engine drives the generation: it owns the chain under construction, all
// actors and their wallets, the deterministic RNG, and the per-block pending
// transaction list.
type engine struct {
	cfg    Config
	params chain.Params
	chain  *chain.Chain
	rng    *rand.Rand

	keyCounter uint64
	keyOf      map[address.Address]address.KeyPair
	walletOf   map[address.Address]*Wallet
	// changeClass marks addresses minted as change; self-changing wallets
	// prefer a stable (non-change) address as the self-change target, the
	// way services with fixed receiving addresses behave.
	changeClass map[address.Address]bool
	// recvCount tracks on-chain receives per address, letting scripted
	// flows pick well-used (>= 2 receives) peel targets that the
	// received-once guard will not balk at.
	recvCount map[address.Address]uint32
	// busyUserAddrs lists user-owned addresses that have received at least
	// twice — guard-safe targets for the "unknown recipient" peel hops.
	busyUserAddrs []address.Address
	// selfChangeUsed marks addresses that have served as self-change
	// targets; the refined heuristic's self-change-history guard skips
	// transactions paying them, so scripted peels avoid them.
	selfChangeUsed map[address.Address]bool

	actors   []*Actor
	users    []*Actor
	services map[string]*Actor
	byKind   map[ServiceKind][]*Actor

	pending     []*chain.Tx
	pendingFees chain.Amount
	height      int64

	// pendingSign holds one signing job per pending transaction. Signature
	// scripts are not covered by TxID or by the signature digest, so
	// transactions are built, credited and queued unsigned; sealBlock signs
	// the whole batch in a parallel fan-out just before mining.
	pendingSign []signJob
	// pendingInputAddrs maps each pending (still unsigned) transaction to
	// its input addresses, replacing the signature-script parsing that
	// in-block bookkeeping (dice payout targets, researcher input tagging)
	// used to rely on.
	pendingInputAddrs map[*chain.Tx][]address.Address

	// Behavioural state.
	peelJobs    []*peelJob
	mixJobs     []mixJob
	poolWeights map[ActorID]int
	svcWeights  map[ActorID]int
	hotAddrs    map[*Wallet]address.Address
	srHotPinned address.Address
	srFinal     wutxo
	scheduled   map[int64][]func()

	researcher        *Actor
	researcherSeen    map[ActorID]bool
	syntheticAccounts int32
	// withdrawSmallFirst makes the next service withdrawal sweep small
	// UTXOs, yielding multi-input payout transactions; the researcher
	// campaign enables it so each observed withdrawal tags many inputs.
	withdrawSmallFirst bool
	// dissolutionTargets holds the pre-resolved (and warmed) peel schedules
	// of the three dissolution chains.
	dissolutionTargets [3][]peelTarget

	// spentBy tracks which generator path consumed each outpoint, turning
	// any internal double-spend into an immediate, attributable panic
	// instead of a late ConnectBlock failure.
	spentBy map[chain.OutPoint]string

	// blockSink, when non-nil, receives every block as it is sealed — the
	// hook GenerateToFile uses to emit the framed chain file while the
	// economy is still being generated, instead of re-serializing the
	// resident chain afterwards.
	blockSink func(*chain.Block) error

	// sealer, when non-nil, runs the seal tail (signing, validation,
	// emission) concurrently with building; sealBlock hands blocks to it
	// instead of sealing inline. See sealer.go.
	sealer *sealPipeline

	// tip is the hash of the most recently *built* block. It leads the
	// chain's own tip whenever the seal pipeline is active: the tip hash is
	// computable before any signature exists, so the builder never has to
	// wait for ConnectBlock to learn what block N+1 must chain to.
	tip chain.Hash

	// minted is the cumulative coinbase value (subsidy + fees) of built
	// blocks. The scripted scenarios read it instead of the chain's
	// CoinsCreated, which lags behind building under the seal pipeline.
	minted chain.Amount

	world *World
}

// noteReceive bumps an address's receive count, recording user addresses
// that become guard-safe (>= 2 receives) peel targets.
func (e *engine) noteReceive(a address.Address) {
	e.recvCount[a]++
	if e.recvCount[a] == 2 {
		if w, ok := e.walletOf[a]; ok && w.owner.Kind == KindUser {
			e.busyUserAddrs = append(e.busyUserAddrs, a)
		}
	}
}

// claim records that `who` is spending op, panicking on a double spend so
// generator bugs surface at their source.
func (e *engine) claim(op chain.OutPoint, who string) {
	if prev, dup := e.spentBy[op]; dup {
		panic(fmt.Sprintf("econ: double spend of %s at height %d: %s after %s", op, e.height, who, prev))
	}
	e.spentBy[op] = who
}

// schedule registers fn to run at the start of block h (clamped into the
// simulated range). Events at one height run in registration order, keeping
// generation deterministic.
func (e *engine) schedule(h int64, fn func()) {
	if h < 0 {
		h = 0
	}
	if h >= e.cfg.Blocks {
		h = e.cfg.Blocks - 1
	}
	e.scheduled[h] = append(e.scheduled[h], fn)
}

// dustLimit folds sub-dust change into the fee.
const dustLimit = chain.Amount(1000)

func newEngine(cfg Config) *engine {
	params := cfg.params()
	e := &engine{
		cfg:      cfg,
		params:   params,
		chain:    chain.New(params),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		keyOf:    make(map[address.Address]address.KeyPair),
		walletOf: make(map[address.Address]*Wallet),
		services: make(map[string]*Actor),
		byKind:   make(map[ServiceKind][]*Actor),

		poolWeights:       make(map[ActorID]int),
		svcWeights:        make(map[ActorID]int),
		hotAddrs:          make(map[*Wallet]address.Address),
		scheduled:         make(map[int64][]func()),
		spentBy:           make(map[chain.OutPoint]string),
		changeClass:       make(map[address.Address]bool),
		recvCount:         make(map[address.Address]uint32),
		selfChangeUsed:    make(map[address.Address]bool),
		pendingInputAddrs: make(map[*chain.Tx][]address.Address),
	}
	e.world = &World{
		Config:  cfg,
		Params:  params,
		OwnerOf: make(map[address.Address]ActorID),
		Tags:    tags.NewStore(),
	}
	return e
}

// newActor registers an actor with n wallets.
func (e *engine) newActor(name string, cat tags.Category, kind ServiceKind, launch int64, wallets int) *Actor {
	a := &Actor{
		ID:       ActorID(len(e.actors)),
		Name:     name,
		Category: cat,
		Kind:     kind,
		Launch:   launch,
		accounts: make(map[ActorID]address.Address),
	}
	for i := 0; i < wallets; i++ {
		a.Wallets = append(a.Wallets, &Wallet{owner: a})
	}
	e.actors = append(e.actors, a)
	e.byKind[kind] = append(e.byKind[kind], a)
	if kind < KindUser {
		e.services[name] = a
	}
	if kind == KindUser {
		e.users = append(e.users, a)
	}
	return a
}

// freshAddr mints a new key for the wallet and records ground truth.
func (e *engine) freshAddr(w *Wallet) address.Address {
	e.keyCounter++
	k := address.NewKeyFromSeed(e.cfg.Seed, e.keyCounter)
	a := k.Address()
	e.keyOf[a] = k
	e.walletOf[a] = w
	e.world.OwnerOf[a] = w.owner.ID
	w.addrRecs = append(w.addrRecs, addrRec{a: a, height: e.height})
	return a
}

// freshChangeAddr mints a change address, marked so that address reuse can
// discriminate against handing out change addresses for receiving.
func (e *engine) freshChangeAddr(w *Wallet) address.Address {
	a := e.freshAddr(w)
	w.addrRecs[len(w.addrRecs)-1].change = true
	e.changeClass[a] = true
	return a
}

// reuseChangeAddrProb is how often an address-reusing recipient hands out a
// former change address rather than a former receiving address. Users are
// "unlikely to give out this change address" (Section 4.1) — but a small
// rate exists, and it is what the post-dice false-positive ladder is made
// of (1% -> 0.28% -> 0.17%).
const reuseChangeAddrProb = 0.10

// recvAddr picks an address for the wallet to receive a payment at: usually
// fresh, sometimes (reuseProb) a previously used address. Reused addresses
// skew heavily toward recently minted ones (70% within a day, 15% within a
// week), which shapes how quickly a reused change address betrays itself to
// the wait-a-day / wait-a-week refinements.
func (e *engine) recvAddr(w *Wallet, reuseProb float64) address.Address {
	a, _ := e.recvAddrTagged(w, reuseProb)
	return a
}

// recvAddrTagged is recvAddr plus a flag reporting whether an existing
// (already seen) address was handed out.
func (e *engine) recvAddrTagged(w *Wallet, reuseProb float64) (address.Address, bool) {
	if len(w.addrRecs) > 0 && e.rng.Float64() < reuseProb {
		day := e.world.BlocksPerDay
		week := 7 * day
		u := e.rng.Float64()
		var horizon int64
		switch {
		case u < 0.75:
			horizon = day
		case u < 0.90:
			horizon = week
		default:
			horizon = e.height + 1 // anything ever used
		}
		wantChange := e.rng.Float64() < reuseChangeAddrProb
		// Scan back from the most recent mint; addrRecs is height-ordered.
		var candidates []address.Address
		for i := len(w.addrRecs) - 1; i >= 0; i-- {
			rec := w.addrRecs[i]
			if rec.height < e.height-horizon {
				break
			}
			if rec.change == wantChange {
				candidates = append(candidates, rec.a)
			}
		}
		if len(candidates) > 0 {
			return candidates[e.rng.Intn(len(candidates))], true
		}
		// Nothing suitable in the window: fall through to a fresh address.
	}
	return e.freshAddr(w), false
}

// accountAddr returns the customer's stable deposit address at a service,
// creating it on first use in the sub-wallet chosen by customer id.
func (e *engine) accountAddr(svc *Actor, customer ActorID) address.Address {
	if a, ok := svc.accounts[customer]; ok {
		return a
	}
	idx := int(customer) % len(svc.Wallets)
	if idx < 0 {
		idx = -idx
	}
	w := svc.Wallets[idx]
	a := e.freshAddr(w)
	svc.accounts[customer] = a
	svc.accountList = append(svc.accountList, a)
	return a
}

// seenAccountAddr returns a busy (>= 2 receives) deposit account of the
// service, scanning all accounts before falling back to any account and
// finally to a fresh one. Busy targets keep scripted peel hops
// classifiable: the received-once guard skips transactions paying an
// exactly-once-used address.
func (e *engine) seenAccountAddr(svc *Actor) address.Address {
	if len(svc.accountList) == 0 {
		return e.accountAddr(svc, ActorID(1<<30+len(svc.accounts)))
	}
	start := e.rng.Intn(len(svc.accountList))
	for i := 0; i < len(svc.accountList); i++ {
		a := svc.accountList[(start+i)%len(svc.accountList)]
		if e.recvCount[a] >= 2 && !e.selfChangeUsed[a] {
			return a
		}
	}
	return svc.accountList[start]
}

// planOut is one intended transaction output.
type planOut struct {
	addr  address.Address
	value chain.Amount
}

// sendOpts controls the change idiom of a built transaction.
type sendOpts struct {
	selfChange bool            // change returns to the first input address
	changeAddr address.Address // explicit change target (scripted reuse)
	noChange   bool            // sweep: fold any remainder into the outputs? (unused remainder becomes fee)
	maxInputs  int             // cap selected inputs (0 = 16)
	smallFirst bool            // select smallest UTXOs first (deposit-sweeping withdrawals)
}

// send builds, credits and queues a transaction from w paying outs; the
// signature scripts stay empty until sealBlock's signing fan-out fills them
// in (use inputAddr, not the scripts, to inspect a pending transaction's
// inputs). It returns the transaction and the change output index (-1 if
// none), or ok=false if the wallet cannot fund the payment or the block is
// full.
func (e *engine) send(w *Wallet, outs []planOut, opt sendOpts) (*chain.Tx, int, bool) {
	if e.blockFull() {
		return nil, -1, false
	}
	var need chain.Amount = e.cfg.FeePerTx
	for _, o := range outs {
		need += o.value
		if o.value <= 0 {
			return nil, -1, false
		}
	}
	maxIn := opt.maxInputs
	if maxIn == 0 {
		maxIn = 16
	}
	// Coin selection over mature UTXOs: FIFO by default, smallest-first for
	// deposit-sweeping service withdrawals (which is what makes their
	// payout transactions multi-input and thus richly taggable). Selection
	// scans the queue through an index permutation and only removes the
	// chosen entries on success, so neither a smallest-first pick nor a
	// failed attempt ever reorders the surviving FIFO queue.
	take, total := selectUTXOs(w, need, maxIn, e.height, opt.smallFirst)
	if total < need {
		return nil, -1, false
	}
	selected := takeUTXOs(w, take)

	tx := &chain.Tx{Version: 1}
	for _, u := range selected {
		tx.Inputs = append(tx.Inputs, chain.TxIn{Prev: u.op, Sequence: ^uint32(0)})
	}
	for _, o := range outs {
		tx.Outputs = append(tx.Outputs, chain.TxOut{Value: o.value, PkScript: script.PayToAddr(o.addr)})
	}
	change := total - need
	changeIdx := -1
	var changeAddr address.Address
	if change > dustLimit && !opt.noChange {
		switch {
		case opt.selfChange:
			// Self-change targets a stable (non-change) input address; a
			// wallet holding only one-time change outputs uses a fresh
			// change address instead, as real clients did.
			changeAddr = address.Address{}
			for _, u := range selected {
				if !e.changeClass[u.addr] {
					changeAddr = u.addr
					break
				}
			}
			if changeAddr.IsZero() {
				changeAddr = e.freshChangeAddr(w)
			} else {
				e.selfChangeUsed[changeAddr] = true
			}
		case !opt.changeAddr.IsZero():
			changeAddr = opt.changeAddr
		default:
			changeAddr = e.freshChangeAddr(w)
		}
		// Insert the change output at a random position: real clients do
		// not put change in a fixed slot.
		changeIdx = e.rng.Intn(len(tx.Outputs) + 1)
		out := chain.TxOut{Value: change, PkScript: script.PayToAddr(changeAddr)}
		tx.Outputs = append(tx.Outputs, chain.TxOut{})
		copy(tx.Outputs[changeIdx+1:], tx.Outputs[changeIdx:])
		tx.Outputs[changeIdx] = out
	}

	feePaid := e.cfg.FeePerTx
	if change <= dustLimit || opt.noChange {
		feePaid += change
	}
	e.queueTx(tx, selected, "send", feePaid)

	// Credit recipients (including our own change). TxID excludes signature
	// scripts, so the id is already final on the still-unsigned transaction.
	txid := tx.TxID()
	for i, out := range tx.Outputs {
		a, err := script.ExtractAddress(out.PkScript)
		if err != nil {
			continue
		}
		e.noteReceive(a)
		if rw, ok := e.walletOf[a]; ok {
			rw.utxos = append(rw.utxos, wutxo{
				op:    chain.OutPoint{TxID: txid, Index: uint32(i)},
				value: out.Value,
				addr:  a,
			})
		}
	}
	return tx, changeIdx, true
}

// selectUTXOs picks the inputs a payment of `need` should spend: the wallet
// queue is scanned in FIFO order (or ascending value, ties FIFO, when
// smallFirst is set), skipping immature entries, until the target or the
// input cap is reached. It returns the chosen queue indexes in scan order
// and their total; the wallet itself is not touched.
func selectUTXOs(w *Wallet, need chain.Amount, maxIn int, height int64, smallFirst bool) ([]int, chain.Amount) {
	var order []int
	if smallFirst {
		order = make([]int, len(w.utxos))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return w.utxos[order[a]].value < w.utxos[order[b]].value
		})
	}
	var take []int
	var total chain.Amount
	for i := 0; i < len(w.utxos); i++ {
		if total >= need || len(take) >= maxIn {
			break
		}
		idx := i
		if order != nil {
			idx = order[i]
		}
		if w.utxos[idx].matureAt <= height {
			take = append(take, idx)
			total += w.utxos[idx].value
		}
	}
	return take, total
}

// takeUTXOs removes the entries at the given queue indexes from the wallet,
// returning them in `take` order and preserving the FIFO order of everything
// left behind.
func takeUTXOs(w *Wallet, take []int) []wutxo {
	selected := make([]wutxo, len(take))
	taken := make([]bool, len(w.utxos))
	for j, i := range take {
		selected[j] = w.utxos[i]
		taken[i] = true
	}
	rest := w.utxos[:0]
	for i, u := range w.utxos {
		if !taken[i] {
			rest = append(rest, u)
		}
	}
	w.utxos = rest
	return selected
}

// signJob records a built-but-unsigned pending transaction together with its
// inputs' keys; signPending fills the signature scripts in at sealBlock time.
type signJob struct {
	tx   *chain.Tx
	keys []address.KeyPair
}

// queueTx claims the selected inputs and queues the unsigned transaction for
// the current block, recording its signing job and input addresses. Neither
// TxID nor the signature digest covers signature scripts, so crediting and
// all in-block bookkeeping can run before the signatures exist.
func (e *engine) queueTx(tx *chain.Tx, selected []wutxo, who string, fee chain.Amount) {
	keys := make([]address.KeyPair, len(selected))
	addrs := make([]address.Address, len(selected))
	for i, u := range selected {
		k, ok := e.keyOf[u.addr]
		if !ok {
			panic(fmt.Sprintf("econ: no key for %s", u.addr))
		}
		e.claim(u.op, who)
		keys[i] = k
		addrs[i] = u.addr
	}
	e.pendingSign = append(e.pendingSign, signJob{tx: tx, keys: keys})
	e.pendingInputAddrs[tx] = addrs
	e.pending = append(e.pending, tx)
	e.pendingFees += fee
	e.world.TxsGenerated++
}

// signBatch signs one block's queued transactions, fanning the jobs out
// across the given worker count. Each job computes its transaction's digests
// in one pass and writes only that transaction's signature scripts;
// signatures are deterministic functions of (key, digest), so the sealed
// block is byte-identical for any worker count — and for any interleaving of
// blocks across the seal pipeline's pool.
func signBatch(jobs []signJob, workers int) {
	if len(jobs) == 0 {
		return
	}
	par.ForEach(len(jobs), workers, func(start, end int) {
		for _, job := range jobs[start:end] {
			digests := chain.SigHashes(job.tx)
			for i, k := range job.keys {
				job.tx.Inputs[i].SigScript = script.SigScript(k.Sign(digests[i]), k.PubKey())
			}
		}
	})
}

// pay is the common case: w pays a single recipient with default change.
func (e *engine) pay(w *Wallet, to address.Address, amount chain.Amount, selfChange bool) (*chain.Tx, bool) {
	tx, _, ok := e.send(w, []planOut{{addr: to, value: amount}}, sendOpts{selfChange: selfChange})
	return tx, ok
}

// payBig is pay with a high input budget, for whale-sized transfers that
// must gather hundreds of coinbase-sized UTXOs.
func (e *engine) payBig(w *Wallet, to address.Address, amount chain.Amount) (*chain.Tx, bool) {
	tx, _, ok := e.send(w, []planOut{{addr: to, value: amount}}, sendOpts{maxInputs: 256})
	return tx, ok
}

// sweep moves every mature UTXO of the given wallets' addresses into a
// single destination address (aggregation, in the paper's movement
// vocabulary). maxInputs caps the combine size (the Silk Road deposits
// combined up to 128 addresses).
func (e *engine) sweep(w *Wallet, to address.Address, maxInputs int) (*chain.Tx, bool) {
	if e.blockFull() {
		return nil, false
	}
	if maxInputs <= 0 {
		maxInputs = 128
	}
	// Gather up to maxInputs mature UTXOs; a sweep too small to be worth a
	// transaction leaves the wallet queue untouched (and in order).
	var take []int
	var total chain.Amount
	for i, u := range w.utxos {
		if len(take) >= maxInputs {
			break
		}
		if u.matureAt <= e.height {
			take = append(take, i)
			total += u.value
		}
	}
	if len(take) < 2 || total <= e.cfg.FeePerTx+dustLimit {
		return nil, false
	}
	selected := takeUTXOs(w, take)
	tx := &chain.Tx{Version: 1}
	for _, u := range selected {
		tx.Inputs = append(tx.Inputs, chain.TxIn{Prev: u.op, Sequence: ^uint32(0)})
	}
	tx.Outputs = []chain.TxOut{{Value: total - e.cfg.FeePerTx, PkScript: script.PayToAddr(to)}}
	e.queueTx(tx, selected, "sweep", e.cfg.FeePerTx)
	e.noteReceive(to)
	if rw, ok := e.walletOf[to]; ok {
		rw.utxos = append(rw.utxos, wutxo{
			op:    chain.OutPoint{TxID: tx.TxID(), Index: 0},
			value: total - e.cfg.FeePerTx,
			addr:  to,
		})
	}
	return tx, true
}

func (e *engine) blockFull() bool {
	return len(e.pending) >= e.cfg.MaxBlockTxs-1
}

// sealBlock mines the pending transactions into a block credited to miner.
// The synchronous part is only what the builder needs before it may start
// the next block: assembling the header (TxID excludes signature scripts, so
// the merkle root — and therefore the new tip hash — is final while every
// transaction is still unsigned), publishing the tip, and crediting the
// miner. The expensive tail — the signing fan-out, ConnectBlock validation,
// and block-sink emission — runs inline when no seal pipeline is configured,
// and on the pipeline's pool otherwise, in which case an error from block N
// surfaces at a later sealBlock call or at drain.
func (e *engine) sealBlock(minerAddr address.Address) error {
	height := e.height
	subsidy := e.params.SubsidyAt(height)
	cb := chain.NewCoinbaseTx(height, subsidy+e.pendingFees, script.PayToAddr(minerAddr), nil)
	txs := append([]*chain.Tx{cb}, e.pending...)
	blk := &chain.Block{
		Header: chain.BlockHeader{
			Version:    1,
			PrevBlock:  e.tip,
			MerkleRoot: chain.BlockMerkleRoot(txs),
			Timestamp:  e.params.TimeAt(height).Unix(),
		},
		Txs: txs,
	}
	e.tip = blk.BlockHash()
	e.minted += cb.TotalOut()
	if mw, ok := e.walletOf[minerAddr]; ok && subsidy+e.pendingFees > 0 {
		mw.utxos = append(mw.utxos, wutxo{
			op:       chain.OutPoint{TxID: cb.TxID(), Index: 0},
			value:    subsidy + e.pendingFees,
			addr:     minerAddr,
			matureAt: height + e.params.CoinbaseMaturity,
		})
	}
	jobs := e.pendingSign
	clear(e.pendingInputAddrs)
	e.pending = nil
	e.pendingFees = 0
	e.height++
	if e.sealer != nil {
		// The pipeline owns the jobs slice from here; the builder starts the
		// next block with a fresh one.
		e.pendingSign = nil
		return e.sealer.submit(blk, height, jobs)
	}
	signBatch(jobs, e.cfg.SignWorkers)
	e.pendingSign = jobs[:0]
	return connectAndEmit(e.chain, e.blockSink, blk, height)
}

// connectAndEmit is the tail every sealed block goes through exactly once,
// in height order: validation against the chain tip, then emission to the
// block sink. It is called by sealBlock inline or by the seal pipeline's
// committer; the wrapped errors are identical either way.
func connectAndEmit(c *chain.Chain, sink func(*chain.Block) error, blk *chain.Block, height int64) error {
	if err := c.ConnectBlock(blk, false, chain.ConnectBlockOptions{}); err != nil {
		return fmt.Errorf("econ: sealing block %d: %w", height, err)
	}
	if sink != nil {
		if err := sink(blk); err != nil {
			return fmt.Errorf("econ: emitting block %d: %w", height, err)
		}
	}
	return nil
}

// heightOf maps a calendar date onto the simulated timeline.
func (e *engine) heightOf(y int, m int, day int) int64 {
	t := dateAt(y, m, day)
	h := e.params.HeightFor(t)
	if h >= e.cfg.Blocks {
		h = e.cfg.Blocks - 1
	}
	return h
}

// pickWeighted selects an actor from the launched subset of list, weighted
// by roster weight. Returns nil if none are launched and alive.
func (e *engine) pickWeighted(list []*Actor, weights map[ActorID]int) *Actor {
	total := 0
	for _, a := range list {
		if a.Launch > e.height || a.dead {
			continue
		}
		wt := weights[a.ID]
		if wt <= 0 {
			wt = 1
		}
		total += wt
	}
	if total == 0 {
		return nil
	}
	pick := e.rng.Intn(total)
	for _, a := range list {
		if a.Launch > e.height || a.dead {
			continue
		}
		wt := weights[a.ID]
		if wt <= 0 {
			wt = 1
		}
		if pick < wt {
			return a
		}
		pick -= wt
	}
	return nil
}
