package econ

import (
	"math"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/script"
)

// founders is how many early users act as the pre-pool solo miners and
// later bankroll services and exchanges with their holdings.
const founders = 12

// sinkAddr mints an address owned by the wallet's actor but deliberately
// not tracked for spending: coins sent there never move again, producing
// the "sink addresses" the paper counts (hoarding, lost coins).
func (e *engine) sinkAddr(w *Wallet) address.Address {
	e.keyCounter++
	k := address.NewKeyFromSeed(e.cfg.Seed, e.keyCounter)
	a := k.Address()
	e.keyOf[a] = k
	e.world.OwnerOf[a] = w.owner.ID
	// Not registered in walletOf: send() will not credit it, so it can
	// never be selected as an input.
	return a
}

// sendFromUTXO spends exactly one tracked-out-of-wallet UTXO, paying outs
// and directing change to a fresh address of w. The change UTXO is returned
// to the caller rather than credited to the wallet, so peeling chains can
// hold their own thread of coins. ok is false if the UTXO cannot cover the
// outputs or the block is full.
func (e *engine) sendFromUTXO(u wutxo, w *Wallet, outs []planOut) (tx *chain.Tx, changeOut wutxo, ok bool) {
	if e.blockFull() {
		return nil, wutxo{}, false
	}
	var need chain.Amount = e.cfg.FeePerTx
	for _, o := range outs {
		need += o.value
	}
	if u.value < need+dustLimit || u.matureAt > e.height {
		return nil, wutxo{}, false
	}
	tx = &chain.Tx{Version: 1, Inputs: []chain.TxIn{{Prev: u.op, Sequence: ^uint32(0)}}}
	for _, o := range outs {
		tx.Outputs = append(tx.Outputs, chain.TxOut{Value: o.value, PkScript: script.PayToAddr(o.addr)})
	}
	changeAddr := e.freshChangeAddr(w)
	change := u.value - need
	changeIdx := e.rng.Intn(len(tx.Outputs) + 1)
	out := chain.TxOut{Value: change, PkScript: script.PayToAddr(changeAddr)}
	tx.Outputs = append(tx.Outputs, chain.TxOut{})
	copy(tx.Outputs[changeIdx+1:], tx.Outputs[changeIdx:])
	tx.Outputs[changeIdx] = out

	e.queueTx(tx, []wutxo{u}, "sendFromUTXO", e.cfg.FeePerTx)
	txid := tx.TxID()
	for i, o := range tx.Outputs {
		a, err := script.ExtractAddress(o.PkScript)
		if err != nil {
			continue
		}
		e.noteReceive(a)
		if i == changeIdx {
			continue
		}
		if rw, ok := e.walletOf[a]; ok {
			rw.utxos = append(rw.utxos, wutxo{
				op: chain.OutPoint{TxID: txid, Index: uint32(i)}, value: o.Value, addr: a,
			})
		}
	}
	return tx, wutxo{
		op:    chain.OutPoint{TxID: txid, Index: uint32(changeIdx)},
		value: change,
		addr:  changeAddr,
	}, true
}

// ---------------------------------------------------------------------------
// Mining.

// minerAddrFor picks who mines the current block: founders solo-mine until
// pools launch, after which hash power belongs to the pools (weighted), with
// a residual 4% of solo blocks.
func (e *engine) minerAddrFor() address.Address {
	pools := e.byKind[KindPool]
	launched := 0
	for _, p := range pools {
		if p.Launch <= e.height {
			launched++
		}
	}
	if launched == 0 || e.rng.Float64() < 0.04 {
		f := e.users[e.rng.Intn(founders)]
		return e.freshAddr(f.Wallets[0])
	}
	p := e.pickWeighted(pools, e.poolWeights)
	if p == nil {
		f := e.users[e.rng.Intn(founders)]
		return e.freshAddr(f.Wallets[0])
	}
	return e.freshAddr(p.Wallets[0])
}

// poolPayoutTick distributes pool earnings: small pools pay members with one
// multi-output transaction (the many-recipient payouts that broke the
// Androulaki shadow-address assumption); large pools run peeling chains.
func (e *engine) poolPayoutTick() {
	if e.height%6 != 3 {
		return
	}
	for _, p := range e.byKind[KindPool] {
		if p.Launch > e.height || e.blockFull() {
			continue
		}
		w := p.Wallets[0]
		bal := w.Balance(e.height)
		if bal < 60*chain.Coin {
			continue
		}
		members := 4 + e.rng.Intn(8)
		share := bal * 6 / 10 / chain.Amount(members)
		if share <= dustLimit*4 {
			continue
		}
		if e.poolWeights[p.ID] >= 10 && e.rng.Float64() < 0.5 {
			// Large pool: peeling-chain payout (Section 5's non-criminal
			// peeling chains).
			agg := e.freshAddr(w)
			if _, ok := e.sweep(w, agg, 64); !ok {
				continue
			}
			var targets []peelTarget
			for i := 0; i < members; i++ {
				u := e.activeUser()
				targets = append(targets, peelTarget{
					addr:   e.recvAddr(u.Wallets[0], e.cfg.AddressReuseProb),
					amount: share,
				})
			}
			e.startPeelFromWalletAddr(w, agg, targets, 3, nil)
			continue
		}
		var outs []planOut
		for i := 0; i < members; i++ {
			u := e.activeUser()
			outs = append(outs, planOut{
				addr:  e.recvAddr(u.Wallets[0], e.cfg.AddressReuseProb),
				value: share,
			})
		}
		e.send(w, outs, sendOpts{maxInputs: 32})
	}
}

// ---------------------------------------------------------------------------
// Peeling chains.

type peelTarget struct {
	addr   address.Address
	amount chain.Amount
}

type peelJob struct {
	w        *Wallet
	utxo     wutxo
	targets  []peelTarget
	hop      int
	perBlock int
	// onPeel is invoked after each executed hop with the 1-based hop index
	// and the peel transaction (scenario bookkeeping).
	onPeel func(hop int, tx *chain.Tx)
}

// startPeelFromWalletAddr finds the wallet UTXO sitting on addr and starts a
// peeling chain over it. The UTXO is removed from normal wallet circulation.
func (e *engine) startPeelFromWalletAddr(w *Wallet, addr address.Address, targets []peelTarget, perBlock int, onPeel func(int, *chain.Tx)) bool {
	for i, u := range w.utxos {
		if u.addr == addr {
			w.utxos = append(w.utxos[:i], w.utxos[i+1:]...)
			e.startPeel(w, u, targets, perBlock, onPeel)
			return true
		}
	}
	return false
}

// startPeel begins a peeling chain from an explicit UTXO.
func (e *engine) startPeel(w *Wallet, u wutxo, targets []peelTarget, perBlock int, onPeel func(int, *chain.Tx)) {
	if perBlock <= 0 {
		perBlock = 2
	}
	e.peelJobs = append(e.peelJobs, &peelJob{w: w, utxo: u, targets: targets, perBlock: perBlock, onPeel: onPeel})
}

// peelJobTick advances every live peeling chain by up to perBlock hops.
func (e *engine) peelJobTick() {
	remaining := e.peelJobs[:0]
	for _, job := range e.peelJobs {
		done := false
		for i := 0; i < job.perBlock; i++ {
			if job.hop >= len(job.targets) {
				done = true
				break
			}
			t := job.targets[job.hop]
			tx, changeOut, ok := e.sendFromUTXO(job.utxo, job.w, []planOut{{addr: t.addr, value: t.amount}})
			if !ok {
				// Chain exhausted or block full; if exhausted, abandon the
				// remainder (the final sliver stays where it is).
				if job.utxo.value < t.amount+e.cfg.FeePerTx+dustLimit {
					done = true
				}
				break
			}
			job.hop++
			job.utxo = changeOut
			if job.onPeel != nil {
				job.onPeel(job.hop, tx)
			}
		}
		if !done && job.hop < len(job.targets) {
			remaining = append(remaining, job)
		} else if job.hop >= len(job.targets) || done {
			// Return the residual value to the owning wallet.
			if job.utxo.value > 0 {
				job.w.utxos = append(job.w.utxos, job.utxo)
			}
		}
	}
	e.peelJobs = remaining
}

// ---------------------------------------------------------------------------
// User actions.

// activeUser samples a user whose activation height has passed; early users
// are founders.
func (e *engine) activeUser() *Actor {
	// Activation staggers adoption: user i activates at Blocks*(i/n)^1.6.
	n := len(e.users)
	frac := float64(e.height) / float64(e.cfg.Blocks)
	maxIdx := int(math.Pow(frac, 1/1.6) * float64(n))
	if maxIdx < founders {
		maxIdx = founders
	}
	if maxIdx > n {
		maxIdx = n
	}
	return e.users[e.rng.Intn(maxIdx)]
}

// activityLevel is the number of user actions this block: a quadratic
// adoption ramp with jitter, zero before the first exchange launches.
func (e *engine) activityLevel() int {
	gox := e.services["Mt Gox"]
	if gox == nil || e.height < gox.Launch {
		return 0
	}
	frac := float64(e.height) / float64(e.cfg.Blocks)
	base := float64(e.cfg.PeakActionsPerBlock) * frac * frac
	jitter := 0.5 + e.rng.Float64()
	n := int(base * jitter)
	if n < 1 {
		n = 1
	}
	return n
}

// userAction performs one economic action by a random active user.
func (e *engine) userAction() {
	u := e.activeUser()
	w := u.Wallets[0]
	bal := w.Balance(e.height)

	// Dice bets dominate once the games launch (Satoshi Dice alone was a
	// large share of all Bitcoin transactions in 2012-2013).
	if len(e.launchedOf(KindDice)) > 0 && e.rng.Float64() < e.cfg.DiceBetProb {
		if bal > chain.BTC(0.3) {
			e.diceBet(u)
			return
		}
	}

	// Broke users buy coins first.
	if bal < chain.BTC(0.5) {
		e.buyFromExchange(u)
		return
	}

	switch pickAction(e.rng.Intn(100)) {
	case actBuy:
		e.buyFromExchange(u)
	case actDeposit:
		e.depositToService(u, KindBankExchange)
	case actP2P:
		e.p2pPayment(u)
	case actVendor:
		e.vendorPurchase(u)
	case actMarket:
		e.marketPurchase(u)
	case actWalletDep:
		e.depositToService(u, KindWallet)
	case actWalletWd:
		e.withdrawFromService(u, KindWallet)
	case actCasino:
		if e.rng.Float64() < 0.55 {
			e.depositToService(u, KindCasino)
		} else {
			e.withdrawFromService(u, KindCasino)
		}
	case actFixed:
		e.fixedConversion(u)
	case actMix:
		e.mixDeposit(u)
	case actInvest:
		e.investDeposit(u)
	case actHoard:
		e.hoard(u)
	}
}

type actionKind int

const (
	actBuy actionKind = iota
	actDeposit
	actP2P
	actVendor
	actMarket
	actWalletDep
	actWalletWd
	actCasino
	actFixed
	actMix
	actInvest
	actHoard
)

// pickAction maps a uniform 0-99 draw onto the action mix. The weights are
// the behavioural calibration: they shape Figure 2's category balances.
func pickAction(r int) actionKind {
	switch {
	case r < 20:
		return actBuy
	case r < 36:
		return actDeposit
	case r < 53:
		return actP2P
	case r < 60:
		return actVendor
	case r < 71:
		return actMarket
	case r < 77:
		return actWalletDep
	case r < 81:
		return actWalletWd
	case r < 86:
		return actCasino
	case r < 89:
		return actFixed
	case r < 91:
		return actMix
	case r < 95:
		return actInvest
	default:
		return actHoard
	}
}

// launchedOf filters a kind's actors to those currently operating.
func (e *engine) launchedOf(kind ServiceKind) []*Actor {
	var out []*Actor
	for _, a := range e.byKind[kind] {
		if a.Launch <= e.height && !a.dead {
			out = append(out, a)
		}
	}
	return out
}

// amountFor draws a payment size as a fraction of balance, clamped.
func (e *engine) amountFor(bal chain.Amount, lo, hi float64) chain.Amount {
	frac := lo + e.rng.Float64()*(hi-lo)
	amt := chain.Amount(float64(bal) * frac)
	if amt < chain.BTC(0.05) {
		amt = chain.BTC(0.05)
	}
	if amt > bal-e.cfg.FeePerTx-dustLimit {
		amt = bal - e.cfg.FeePerTx - dustLimit
	}
	return amt
}

func (e *engine) buyFromExchange(u *Actor) {
	ex := e.pickWeighted(e.launchedOf(KindBankExchange), e.svcWeights)
	if ex == nil {
		return
	}
	amount := chain.BTC(1 + e.rng.Float64()*12)
	// Destination: usually the user's wallet; sometimes directly another
	// service's deposit address (the cross-service transfers that fuel the
	// naive super-cluster).
	if e.rng.Float64() < 0.15 {
		if dst := e.pickCrossServiceDeposit(u); !dst.IsZero() {
			e.serviceWithdrawBoosted(ex, dst, amount, 8)
			return
		}
	}
	e.serviceWithdraw(ex, e.recvAddr(u.Wallets[0], e.cfg.AddressReuseProb), amount)
}

// pickCrossServiceDeposit returns a deposit address for u at some other
// service (wallet service, marketplace, casino, or a payment-gateway
// invoice).
func (e *engine) pickCrossServiceDeposit(u *Actor) address.Address {
	kinds := []ServiceKind{KindWallet, KindMarket, KindCasino, KindGateway}
	kind := kinds[e.rng.Intn(len(kinds))]
	candidates := e.launchedOf(kind)
	if len(candidates) == 0 {
		return address.Address{}
	}
	svc := candidates[e.rng.Intn(len(candidates))]
	if kind == KindGateway {
		// Fresh invoice address.
		return e.freshAddr(svc.Wallets[e.rng.Intn(len(svc.Wallets))])
	}
	// A fresh deposit account: the user is opening a new relationship, so
	// the destination has never appeared on chain — which is what makes
	// these transfers the naive heuristic's super-cluster fuel.
	_ = u
	e.syntheticAccounts++
	return e.accountAddr(svc, ActorID(1<<29+e.syntheticAccounts))
}

// serviceWithdraw pays out from a service with the service-specific change
// idioms: mostly fresh one-time change, occasionally the two anomalous
// patterns of Section 4.2 (change address used twice; self-change address
// later used as a change target).
func (e *engine) serviceWithdraw(svc *Actor, to address.Address, amount chain.Amount) (*chain.Tx, bool) {
	return e.serviceWithdrawBoosted(svc, to, amount, 1)
}

// serviceWithdrawBoosted is serviceWithdraw with the anomalous-change-reuse
// probabilities multiplied by boost. Withdrawals straight into another
// service's fresh deposit address use a high boost: large services batching
// withdrawals from pooled hot funds were exactly where the paper found the
// change-reuse patterns.
func (e *engine) serviceWithdrawBoosted(svc *Actor, to address.Address, amount chain.Amount, boost float64) (*chain.Tx, bool) {
	w := svc.richestWallet(e.height)
	// A marketplace with a pinned hot address treats wallet 0 as the vault:
	// routine payouts come from the other sub-wallets so the vault balance
	// stays parked on the hot address.
	if svc.Kind == KindMarket && !e.srHotPinned.IsZero() && e.walletOf[e.srHotPinned].owner == svc && len(svc.Wallets) > 1 {
		best := svc.Wallets[1]
		var bestBal chain.Amount
		for _, sub := range svc.Wallets[1:] {
			if b := sub.Balance(e.height); b > bestBal {
				best, bestBal = sub, b
			}
		}
		w = best
	}
	if w.Balance(e.height) < amount+e.cfg.FeePerTx {
		return nil, false
	}
	r := e.rng.Float64()
	opt := sendOpts{smallFirst: e.withdrawSmallFirst}
	reusedLast := false
	reuseProb := e.cfg.ChangeReuseProb * boost
	switch {
	case r < e.cfg.ServiceSelfChangeProb:
		opt.selfChange = true
	case r < e.cfg.ServiceSelfChangeProb+reuseProb && !svc.lastChange.IsZero():
		opt.changeAddr = svc.lastChange
		reusedLast = true
	case r < e.cfg.ServiceSelfChangeProb+1.5*reuseProb && len(svc.selfChanged) > 0:
		opt.changeAddr = svc.selfChanged[0]
		svc.selfChanged = svc.selfChanged[1:]
	}
	tx, changeIdx, ok := e.send(w, []planOut{{addr: to, value: amount}}, opt)
	if !ok {
		return nil, false
	}
	if changeIdx >= 0 {
		changeAddr, err := script.ExtractAddress(tx.Outputs[changeIdx].PkScript)
		if err == nil {
			switch {
			case opt.selfChange:
				svc.selfChanged = append(svc.selfChanged, changeAddr)
			case reusedLast:
				// Used twice now; never a third time (the paper's pattern
				// is a double use within a short window).
				svc.lastChange = address.Address{}
			case opt.changeAddr.IsZero():
				svc.lastChange = changeAddr
			}
		}
	}
	return tx, true
}

// stableAccountProb is how often a repeat deposit reuses the customer's
// fixed account address instead of a rotating one-time deposit address.
// Rotation keeps the population of exactly-twice-received addresses (which
// the received-once guard must skip) proportionally small, as on the real
// chain.
const stableAccountProb = 0.3

// depositAddr picks where a customer's deposit lands: the stable account
// sometimes, a rotating one-time deposit address otherwise.
func (e *engine) depositAddr(svc *Actor, customer ActorID) address.Address {
	if _, has := svc.accounts[customer]; !has || e.rng.Float64() < stableAccountProb {
		return e.accountAddr(svc, customer)
	}
	w := svc.Wallets[int(customer)%len(svc.Wallets)]
	return e.freshAddr(w)
}

func (e *engine) depositToService(u *Actor, kind ServiceKind) {
	svc := e.pickWeighted(e.launchedOf(kind), e.svcWeights)
	if svc == nil {
		return
	}
	w := u.Wallets[0]
	amount := e.amountFor(w.Balance(e.height), 0.15, 0.5)
	if amount <= dustLimit {
		return
	}
	e.pay(w, e.depositAddr(svc, u.ID), amount, e.rng.Float64() < e.cfg.SelfChangeProb)
}

func (e *engine) withdrawFromService(u *Actor, kind ServiceKind) {
	svc := e.pickWeighted(e.launchedOf(kind), e.svcWeights)
	if svc == nil {
		return
	}
	amount := chain.BTC(0.5 + e.rng.Float64()*6)
	e.serviceWithdraw(svc, e.recvAddr(u.Wallets[0], e.cfg.AddressReuseProb), amount)
}

// handOutChangeProb is how often a user, having just created a *labeled*
// one-time change address (the payment's recipient was already seen, so the
// change output was the unique fresh output), later hands that address out
// to be paid at — the behaviour whose timing produces the wait-a-day /
// wait-a-week ladder.
const handOutChangeProb = 0.5

func (e *engine) p2pPayment(u *Actor) {
	v := e.activeUser()
	if v == u {
		return
	}
	w := u.Wallets[0]
	amount := e.amountFor(w.Balance(e.height), 0.1, 0.4)
	if amount <= dustLimit {
		return
	}
	to, toSeen := e.recvAddrTagged(v.Wallets[0], e.cfg.AddressReuseProb)
	selfChange := e.rng.Float64() < e.cfg.SelfChangeProb
	tx, changeIdx, ok := e.send(w, []planOut{{addr: to, value: amount}},
		sendOpts{selfChange: selfChange})
	if !ok || changeIdx < 0 {
		return
	}
	if toSeen && !selfChange && e.rng.Float64() < handOutChangeProb {
		changeAddr, err := script.ExtractAddress(tx.Outputs[changeIdx].PkScript)
		if err == nil {
			e.scheduleChangeHandout(changeAddr)
		}
	}
}

// scheduleChangeHandout arranges a future payment into a just-created change
// address. Delays skew short: most reuse arrives within a day, some within a
// week, a tail much later (matching the shrinking FP counts the paper sees
// as it waits longer before labeling).
func (e *engine) scheduleChangeHandout(changeAddr address.Address) {
	day := e.world.BlocksPerDay
	u := e.rng.Float64()
	var delay int64
	switch {
	case u < 0.75:
		delay = 1 + e.rng.Int63n(day)
	case u < 0.90:
		delay = day + e.rng.Int63n(6*day)
	default:
		delay = 7*day + e.rng.Int63n(60*day)
	}
	e.schedule(e.height+delay, func() {
		payer := e.activeUser()
		pw := payer.Wallets[0]
		amount := chain.BTC(0.2 + e.rng.Float64()*2)
		if pw.Balance(e.height) < amount+e.cfg.FeePerTx {
			return
		}
		e.pay(pw, changeAddr, amount, false)
	})
}

func (e *engine) vendorPurchase(u *Actor) {
	gateways := e.launchedOf(KindGateway)
	vendors := e.launchedOf(KindVendor)
	if len(vendors) == 0 {
		return
	}
	w := u.Wallets[0]
	amount := e.amountFor(w.Balance(e.height), 0.05, 0.25)
	if amount <= dustLimit {
		return
	}
	var to address.Address
	if len(gateways) > 0 && e.rng.Float64() < 0.8 {
		// Most vendors accept through a gateway (BitPay); invoice addresses
		// are fresh and owned by the gateway.
		gw := e.pickWeighted(gateways, e.svcWeights)
		to = e.freshAddr(gw.Wallets[e.rng.Intn(len(gw.Wallets))])
	} else {
		vendor := e.pickWeighted(vendors, e.svcWeights)
		if vendor == nil {
			return
		}
		to = e.depositAddr(vendor, u.ID)
	}
	e.pay(w, to, amount, e.rng.Float64() < e.cfg.SelfChangeProb)
}

func (e *engine) marketPurchase(u *Actor) {
	markets := e.launchedOf(KindMarket)
	if len(markets) == 0 {
		return
	}
	m := markets[e.rng.Intn(len(markets))]
	w := u.Wallets[0]
	amount := e.amountFor(w.Balance(e.height), 0.15, 0.6)
	if amount <= dustLimit {
		return
	}
	e.pay(w, e.depositAddr(m, u.ID), amount, e.rng.Float64() < e.cfg.SelfChangeProb)
}

func (e *engine) fixedConversion(u *Actor) {
	svc := e.pickWeighted(e.launchedOf(KindFixedExchange), e.svcWeights)
	if svc == nil {
		return
	}
	if e.rng.Float64() < 0.5 {
		w := u.Wallets[0]
		amount := e.amountFor(w.Balance(e.height), 0.2, 0.6)
		if amount <= dustLimit {
			return
		}
		// One-time conversion to fiat: coins go to a fresh service address.
		e.pay(w, e.freshAddr(svc.Wallets[e.rng.Intn(len(svc.Wallets))]), amount,
			e.rng.Float64() < e.cfg.SelfChangeProb)
	} else {
		amount := chain.BTC(0.5 + e.rng.Float64()*4)
		e.serviceWithdraw(svc, e.recvAddr(u.Wallets[0], e.cfg.AddressReuseProb), amount)
	}
}

func (e *engine) hoard(u *Actor) {
	w := u.Wallets[0]
	amount := e.amountFor(w.Balance(e.height), 0.3, 0.8)
	if amount <= dustLimit {
		return
	}
	e.pay(w, e.sinkAddr(w), amount, false)
}

// ---------------------------------------------------------------------------
// Dice games.

func (e *engine) diceBet(u *Actor) {
	dice := e.pickWeighted(e.launchedOf(KindDice), e.svcWeights)
	if dice == nil || len(dice.staticAddrs) == 0 {
		return
	}
	w := u.Wallets[0]
	amount := chain.BTC(0.1 + e.rng.Float64()*1.5)
	if amount > w.Balance(e.height)-e.cfg.FeePerTx {
		return
	}
	betAddr := dice.staticAddrs[e.rng.Intn(len(dice.staticAddrs))]
	tx, _, ok := e.send(w, []planOut{{addr: betAddr, value: amount}},
		sendOpts{selfChange: e.rng.Float64() < e.cfg.SelfChangeProb})
	if !ok {
		return
	}
	// The payout returns to the first input's address — the defining
	// Satoshi Dice behaviour behind the 13% -> 1% refinement.
	returnTo := e.inputAddr(tx, 0)
	if returnTo.IsZero() {
		return
	}
	dice.pendingBets = append(dice.pendingBets, bet{returnTo: returnTo, amount: amount})
}

// inputAddr recovers the address an input spends from: for a still-pending
// (unsigned) transaction from the queue bookkeeping, for a sealed one via
// the signature script's embedded public key.
func (e *engine) inputAddr(tx *chain.Tx, i int) address.Address {
	if addrs, ok := e.pendingInputAddrs[tx]; ok {
		if i < len(addrs) {
			return addrs[i]
		}
		return address.Address{}
	}
	sig := tx.Inputs[i].SigScript
	if len(sig) < 2 {
		return address.Address{}
	}
	// <sig len><sig><pub len><pub>
	sl := int(sig[0])
	if len(sig) < 1+sl+1 {
		return address.Address{}
	}
	pl := int(sig[1+sl])
	if len(sig) < 2+sl+pl {
		return address.Address{}
	}
	return address.FromPubKey(sig[2+sl : 2+sl+pl])
}

// dicePayoutTick settles the previous block's bets: winners get 1.94x,
// losers get a token refund (the on-chain "you lost" notification), both
// sent back to the betting address.
func (e *engine) dicePayoutTick() {
	for _, dice := range e.byKind[KindDice] {
		if len(dice.pendingBets) == 0 {
			continue
		}
		bets := dice.pendingBets
		dice.pendingBets = nil
		w := dice.richestWallet(e.height)
		for _, b := range bets {
			if e.blockFull() {
				// Settle next block.
				dice.pendingBets = append(dice.pendingBets, b)
				continue
			}
			payout := b.amount / 200 // losing notification
			if e.rng.Float64() < 0.485 {
				payout = b.amount * 194 / 100
			}
			if payout <= dustLimit {
				payout = dustLimit * 2
			}
			if w.Balance(e.height) < payout+e.cfg.FeePerTx {
				continue // house is broke; bet absorbed
			}
			// Dice services habitually use self-change.
			e.send(w, []planOut{{addr: b.returnTo, value: payout}},
				sendOpts{selfChange: e.rng.Float64() < 0.7, maxInputs: 24})
		}
	}
}

// ---------------------------------------------------------------------------
// Mixes.

type mixJob struct {
	svc    *Actor
	to     address.Address
	amount chain.Amount
	due    int64
	// sameCoins, when set, returns exactly the deposited outpoint — the
	// Bitcoin Laundry behaviour the researcher caught ("twice sent us our
	// own coins back").
	sameCoins *wutxo
}

func (e *engine) mixDeposit(u *Actor) {
	mix := e.pickWeighted(e.launchedOf(KindMix), e.svcWeights)
	if mix == nil {
		return
	}
	w := u.Wallets[0]
	amount := e.amountFor(w.Balance(e.height), 0.2, 0.5)
	if amount <= dustLimit*4 {
		return
	}
	mw := mix.Wallets[e.rng.Intn(len(mix.Wallets))]
	depositAddr := e.freshAddr(mw)
	tx, _, ok := e.send(w, []planOut{{addr: depositAddr, value: amount}},
		sendOpts{selfChange: e.rng.Float64() < e.cfg.SelfChangeProb})
	if !ok {
		return
	}
	if mix.Name == "BitMix" {
		return // BitMix simply steals the coins (Section 3.1).
	}
	job := mixJob{
		svc:    mix,
		to:     e.freshAddr(u.Wallets[0]),
		amount: amount * 98 / 100,
		due:    e.height + 2 + int64(e.rng.Intn(18)),
	}
	if mix.Name == "Bitcoin Laundry" {
		// Possibly the only customer: the "mix" returns the same coins.
		txid := tx.TxID()
		for i, o := range tx.Outputs {
			a, err := script.ExtractAddress(o.PkScript)
			if err == nil && a == depositAddr {
				job.sameCoins = &wutxo{op: chain.OutPoint{TxID: txid, Index: uint32(i)}, value: o.Value, addr: a}
				break
			}
		}
	}
	e.mixJobs = append(e.mixJobs, job)
}

func (e *engine) mixPayoutTick() {
	remaining := e.mixJobs[:0]
	for _, j := range e.mixJobs {
		if j.due > e.height {
			remaining = append(remaining, j)
			continue
		}
		if e.blockFull() {
			remaining = append(remaining, j)
			continue
		}
		if j.sameCoins != nil {
			// Remove the original coins from the mix wallet and return them.
			mw := e.walletOf[j.sameCoins.addr]
			for i, u := range mw.utxos {
				if u.op == j.sameCoins.op {
					mw.utxos = append(mw.utxos[:i], mw.utxos[i+1:]...)
					e.sendFromUTXO(u, mw, []planOut{{addr: j.to, value: u.value - 2*e.cfg.FeePerTx - dustLimit}})
					break
				}
			}
			continue
		}
		w := j.svc.richestWallet(e.height)
		if w.Balance(e.height) < j.amount+e.cfg.FeePerTx {
			continue // mix cannot pay; customer is out of luck
		}
		e.send(w, []planOut{{addr: j.to, value: j.amount}}, sendOpts{})
	}
	e.mixJobs = remaining
}

// ---------------------------------------------------------------------------
// Investment schemes.

func (e *engine) investDeposit(u *Actor) {
	invs := e.launchedOf(KindInvestment)
	if len(invs) == 0 {
		return
	}
	inv := invs[e.rng.Intn(len(invs))]
	w := u.Wallets[0]
	frac := 0.3
	if int(u.ID) < founders {
		frac = 0.7 // whales go big on the ponzi
	}
	amount := e.amountFor(w.Balance(e.height), 0.2, frac)
	if amount <= dustLimit*4 {
		return
	}
	if _, ok := e.pay(w, e.depositAddr(inv, u.ID), amount, e.rng.Float64() < e.cfg.SelfChangeProb); ok {
		inv.invested += amount
	}
}

// investmentTick pays weekly "interest" out of new deposits (a ponzi) and
// collapses Bitcoin Savings & Trust on its real-world date, sweeping the
// remaining funds to the operator's sink.
func (e *engine) investmentTick() {
	week := 7 * e.world.BlocksPerDay
	if week == 0 {
		week = 28
	}
	for _, inv := range e.byKind[KindInvestment] {
		if inv.Launch > e.height || inv.dead {
			continue
		}
		if e.height%week == week/2 {
			w := inv.richestWallet(e.height)
			bal := w.Balance(e.height)
			if bal < chain.BTC(2) {
				continue
			}
			// Pay "interest" to a few investors.
			for i := 0; i < 3 && !e.blockFull(); i++ {
				u := e.activeUser()
				e.serviceWithdraw(inv, e.recvAddr(u.Wallets[0], e.cfg.AddressReuseProb), bal/50)
			}
		}
		if inv.Name == "Bitcoin Savings & Trust" && e.height >= e.heightOf(2012, 8, 17) {
			// The operator folds the scheme and parks the funds.
			for _, w := range inv.Wallets {
				e.sweep(w, e.sinkAddr(w), 128)
			}
			inv.dead = true
		}
	}
}

// ---------------------------------------------------------------------------
// Service housekeeping.

// serviceChurnTick aggregates scattered customer deposits into each
// service's hot address (the multi-input sweeps that give Heuristic 1 its
// large service clusters) and lets founders sell coins to exchanges so the
// market has inventory.
func (e *engine) serviceChurnTick() {
	if e.height%5 == 1 {
		for _, kind := range []ServiceKind{KindBankExchange, KindWallet, KindCasino, KindGateway, KindMarket, KindDice, KindFixedExchange, KindMix, KindInvestment} {
			for _, svc := range e.byKind[kind] {
				if svc.Launch > e.height || e.blockFull() {
					continue
				}
				for _, w := range svc.Wallets {
					if len(w.utxos) > 24 {
						hot := e.hotAddrOf(svc, w)
						e.sweep(w, hot, 128)
					}
				}
			}
		}
	}
	// Founders and pools sell inventory to exchanges.
	if e.height%16 == 2 {
		exchanges := e.launchedOf(KindBankExchange)
		if len(exchanges) == 0 {
			return
		}
		f := e.users[e.rng.Intn(founders)]
		fw := f.Wallets[0]
		if bal := fw.Balance(e.height); bal > 400*chain.Coin {
			ex := e.pickWeighted(exchanges, e.svcWeights)
			e.payBig(fw, e.accountAddr(ex, f.ID), bal/6)
		}
		for _, p := range e.launchedOf(KindPool) {
			pw := p.Wallets[0]
			if bal := pw.Balance(e.height); bal > 900*chain.Coin {
				ex := e.pickWeighted(exchanges, e.svcWeights)
				e.payBig(pw, e.accountAddr(ex, p.ID), bal/3)
			}
		}
	}
	// Gateways settle with their vendors weekly.
	week := 7 * e.world.BlocksPerDay
	if week > 0 && e.height%week == week-3 {
		vendors := e.launchedOf(KindVendor)
		for _, gw := range e.byKind[KindGateway] {
			if gw.Launch > e.height || len(vendors) == 0 || e.blockFull() {
				continue
			}
			w := gw.richestWallet(e.height)
			bal := w.Balance(e.height)
			if bal < chain.BTC(5) {
				continue
			}
			for i := 0; i < 3; i++ {
				v := vendors[e.rng.Intn(len(vendors))]
				e.serviceWithdraw(gw, e.accountAddr(v, v.ID), bal/8)
			}
		}
	}
	// Marketplaces pay their sellers out of the hot wallet, keeping a
	// commission. During the pinned-hot accumulation window payouts are
	// restrained, which is how the hot address reaches its ~5% peak.
	if e.height%9 == 4 {
		for _, m := range e.launchedOf(KindMarket) {
			w := m.richestWallet(e.height)
			bal := w.Balance(e.height)
			if bal < chain.BTC(20) || e.blockFull() {
				continue
			}
			payouts, share := 2, chain.Amount(30)
			if !e.srHotPinned.IsZero() && e.walletOf[e.srHotPinned] == m.Wallets[0] {
				payouts, share = 1, 200
			}
			for i := 0; i < payouts; i++ {
				seller := e.activeUser()
				e.serviceWithdraw(m, e.recvAddr(seller.Wallets[0], e.cfg.AddressReuseProb), bal/share)
			}
		}
	}
}

// hotAddrOf returns (and occasionally rotates) the aggregation target of a
// service sub-wallet. Scenario code pins the Silk Road hot address.
func (e *engine) hotAddrOf(svc *Actor, w *Wallet) address.Address {
	if svc.Kind == KindMarket && !e.srHotPinned.IsZero() && e.walletOf[e.srHotPinned].owner == svc {
		return e.srHotPinned
	}
	if e.hotAddrs == nil {
		e.hotAddrs = make(map[*Wallet]address.Address)
	}
	hot, ok := e.hotAddrs[w]
	if !ok || e.rng.Float64() < 0.05 {
		hot = e.freshAddr(w)
		e.hotAddrs[w] = hot
	}
	return hot
}
