package econ

import (
	"time"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

// World is a fully generated economy: the chain plus every piece of ground
// truth and scripted-artifact metadata the experiments consume.
type World struct {
	Config Config
	Params chain.Params
	Chain  *chain.Chain

	// Actors lists every actor; index == ActorID.
	Actors []*Actor
	// OwnerOf is the ground truth: the true controller of every address.
	OwnerOf map[address.Address]ActorID

	// Tags holds the researcher's own-transaction tags (Section 3.1).
	Tags *tags.Store
	// PublicTags are self-labeled addresses served by the synthetic tag
	// site and forum (Section 3.2); less reliable by construction.
	PublicTags []tags.Tag

	// DiceStaticAddrs are the famous static betting addresses of the
	// Satoshi-Dice-style games, the seed for the dice exemption.
	DiceStaticAddrs []address.Address

	// BlocksPerDay converts the paper's wait-a-day / wait-a-week refinements
	// into simulated block counts.
	BlocksPerDay int64

	// TxsGenerated counts non-coinbase transactions created.
	TxsGenerated int
	// ResearcherTxCount counts the Section 3.1 campaign's transactions.
	ResearcherTxCount int
	// ResearcherByCat breaks the campaign down by service category.
	ResearcherByCat map[tags.Category]int
	// ResearcherServices counts distinct services interacted with.
	ResearcherServices int

	// Dissolution records the Silk Road hot-wallet case study (Table 2).
	Dissolution *Dissolution
	// Thefts records the Table 3 case studies.
	Thefts []*Theft

	// CaseScale is the BTC scale factor applied to the case studies
	// (simulated supply / real 2013 supply), so paper amounts can be
	// compared against measured ones.
	CaseScale float64
}

// PlannedPeel is ground truth for one scripted peel to a known service.
type PlannedPeel struct {
	Chain   int // which peeling chain (0-based)
	Hop     int // 1-based hop index within the chain
	Service string
	Amount  chain.Amount
}

// Dissolution captures the scripted 1DkyBEKt-style hot wallet lifecycle.
type Dissolution struct {
	// HotAddr is the hot-wallet address (the 1DkyBEKt analogue).
	HotAddr address.Address
	// TotalReceived is what the hot address accumulated.
	TotalReceived chain.Amount
	// SupplyShare is TotalReceived / coins minted at dissolution time (the
	// paper's "5% of all generated bitcoins").
	SupplyShare float64
	// Withdrawals are the seven dissolution withdrawals in order.
	Withdrawals []chain.Amount
	// FinalTx is the transaction whose outputs start the three peeling
	// chains (the 158,336 BTC analogue, split 50k/50k/58,336).
	FinalTx chain.Hash
	// ChainStarts are the outpoints of the three chain heads.
	ChainStarts [3]chain.OutPoint
	// Planned lists the scripted peels to known services, ground truth for
	// Table 2.
	Planned []PlannedPeel
}

// Theft captures one Table 3 case study.
type Theft struct {
	Name     string
	Victim   string
	PaperBTC float64
	// Amount is the scaled amount actually stolen.
	Amount chain.Amount
	Height int64
	// TheftTxs are the transactions moving coins from victim to thief.
	TheftTxs []chain.Hash
	// TheftOutputs are the specific outputs paid to the thief — the
	// public theft reports listed the thief's addresses, so the analyst
	// seeds taint from exactly these.
	TheftOutputs []chain.OutPoint
	ThiefID      ActorID
	// Movement is the scripted movement sequence, in the paper's notation:
	// A aggregation, P peeling chain, S split, F folding.
	Movement string
	// ExchangePeels is ground truth for the peels that reach exchanges.
	ExchangePeels []PlannedPeel
	// Unmoved is how much never left the thief's addresses (the trojan
	// thief's 2,857 of 3,257 BTC).
	Unmoved chain.Amount
}

// ActorName returns the name of an actor id, or "?" when out of range.
func (w *World) ActorName(id ActorID) string {
	if int(id) < 0 || int(id) >= len(w.Actors) {
		return "?"
	}
	return w.Actors[id].Name
}

// ActorCategory returns the category of an actor id.
func (w *World) ActorCategory(id ActorID) tags.Category {
	if int(id) < 0 || int(id) >= len(w.Actors) {
		return tags.CatUnknown
	}
	return w.Actors[id].Category
}

// Service returns the actor for a roster service name.
func (w *World) Service(name string) *Actor {
	for _, a := range w.Actors {
		if a.IsService() && a.Name == name {
			return a
		}
	}
	return nil
}

// OwnersForGraph projects the ground truth onto a graph's dense address ids
// (-1 for addresses with no known owner).
func (w *World) OwnersForGraph(g *txgraph.Graph) []int32 {
	owners := make([]int32, g.NumAddrs())
	for i := range owners {
		owners[i] = -1
	}
	for a, id := range w.OwnerOf {
		if aid, ok := g.LookupAddr(a); ok {
			owners[aid] = int32(id)
		}
	}
	return owners
}

// DiceAddrIDs resolves the static dice addresses to graph ids, for seeding
// the Satoshi-Dice exemption. The experiment pipeline widens this seed to
// the full tagged dice clusters, as the paper did.
func (w *World) DiceAddrIDs(g *txgraph.Graph) map[txgraph.AddrID]bool {
	out := make(map[txgraph.AddrID]bool, len(w.DiceStaticAddrs))
	for _, a := range w.DiceStaticAddrs {
		if id, ok := g.LookupAddr(a); ok {
			out[id] = true
		}
	}
	return out
}

// DiceServiceNames lists the roster services that run Satoshi-Dice-style
// games; the pipeline widens the dice exemption to their tagged clusters.
func (w *World) DiceServiceNames() []string {
	var out []string
	for _, a := range w.Actors {
		if a.Kind == KindDice {
			out = append(out, a.Name)
		}
	}
	return out
}

// GroundTruthDiceIDs returns every address owned by a dice-kind service —
// the oracle version of the dice set, used to bound how much the
// tag-bootstrapped set misses.
func (w *World) GroundTruthDiceIDs(g *txgraph.Graph) map[txgraph.AddrID]bool {
	diceActors := make(map[ActorID]bool)
	for _, a := range w.Actors {
		if a.Kind == KindDice {
			diceActors[a.ID] = true
		}
	}
	out := make(map[txgraph.AddrID]bool)
	for a, owner := range w.OwnerOf {
		if !diceActors[owner] {
			continue
		}
		if id, ok := g.LookupAddr(a); ok {
			out[id] = true
		}
	}
	return out
}

func dateAt(y, m, day int) time.Time {
	return time.Date(y, time.Month(m), day, 0, 0, 0, 0, time.UTC)
}
