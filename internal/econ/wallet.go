package econ

import (
	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/tags"
)

// ActorID identifies an actor in the generated world; it doubles as the
// ground-truth owner id used by cluster.EvaluateAgainstOwners.
type ActorID int32

// Extra behavioural kinds for non-service actors.
const (
	KindUser ServiceKind = iota + 100
	KindThief
	KindResearcher
)

// Actor is one economic agent: a service from the roster, a user, a thief,
// or the researcher. Services may keep several independent sub-wallets
// whose addresses never co-spend, which is why the paper saw ~20 separate
// Heuristic-1 clusters for Mt. Gox.
type Actor struct {
	ID       ActorID
	Name     string
	Category tags.Category
	Kind     ServiceKind
	Launch   int64 // height at which the actor becomes active
	Wallets  []*Wallet

	// accounts maps a customer to their stable deposit address at this
	// service (Mt. Gox-style fixed per-account deposit addresses). Keyed by
	// customer actor id. accountList mirrors it in creation order so
	// scripted flows can sample deposit accounts deterministically.
	accounts    map[ActorID]address.Address
	accountList []address.Address

	// lastChange and selfChanged support the two anomalous change idioms of
	// Section 4.2 (reusing a change address, and reusing a self-change
	// address as a change target).
	lastChange  address.Address
	selfChanged []address.Address
	pendingBets []bet             // dice games: bets awaiting payout
	staticAddrs []address.Address // famous static addresses (dice, donations)
	dead        bool              // service shut down (thefts, ponzi collapse)
	invested    chain.Amount      // investment schemes: deposits taken
}

// bet records a dice wager whose payout must return to the betting address.
type bet struct {
	returnTo address.Address
	amount   chain.Amount
}

// Wallet is one pool of UTXOs spendable together. Its addresses co-spend
// freely (so Heuristic 1 will merge them); separate wallets of the same
// actor never co-spend.
type Wallet struct {
	owner *Actor
	utxos []wutxo
	// addrRecs lists every address minted for this wallet with the height
	// it first appeared, enabling recency-weighted address reuse.
	addrRecs []addrRec
}

type addrRec struct {
	a      address.Address
	height int64
	// change marks addresses minted as transaction change; wallets rarely
	// hand those out for receiving, which is exactly the assumption
	// Heuristic 2 leans on (and what its false positives are made of).
	change bool
}

type wutxo struct {
	op       chain.OutPoint
	value    chain.Amount
	addr     address.Address
	matureAt int64 // coinbase outputs: first spendable height
}

// Balance returns the wallet's total spendable value at the given height.
func (w *Wallet) Balance(height int64) chain.Amount {
	var sum chain.Amount
	for _, u := range w.utxos {
		if u.matureAt <= height {
			sum += u.value
		}
	}
	return sum
}

// Balance sums all of the actor's wallets.
func (a *Actor) Balance(height int64) chain.Amount {
	var sum chain.Amount
	for _, w := range a.Wallets {
		sum += w.Balance(height)
	}
	return sum
}

// richestWallet returns the sub-wallet with the highest spendable balance.
func (a *Actor) richestWallet(height int64) *Wallet {
	best := a.Wallets[0]
	var bestBal chain.Amount
	for _, w := range a.Wallets {
		if b := w.Balance(height); b > bestBal {
			best, bestBal = w, b
		}
	}
	return best
}

// IsService reports whether the actor is a roster service.
func (a *Actor) IsService() bool { return a.Kind < KindUser }
