package econ

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/chain"
)

// The seal-pipeline contract: any PipelineDepth produces a world that is
// byte-identical to the fully inline sequential seal path — same chain
// bytes, same framed file, same ground truth. Run under -race this shakes
// out unsynchronized sharing between the builder, the signing pool, and the
// committer. Exercised at two scales and at several depths (including 0 =
// one per CPU) so the pipeline holds both one and many blocks in flight.
func TestSealPipelineByteIdentical(t *testing.T) {
	small := Small()
	small.Blocks, small.Users = 300, 60
	larger := Small()
	larger.Blocks, larger.Users = 600, 120
	configs := []struct {
		name string
		cfg  Config
	}{
		{"small", small},
		{"larger", larger},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			seqCfg := tc.cfg
			seqCfg.PipelineDepth = 1
			seq, err := Generate(seqCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, depth := range []int{2, 4, 0} {
				pipeCfg := tc.cfg
				pipeCfg.PipelineDepth = depth
				pipe, err := Generate(pipeCfg)
				if err != nil {
					t.Fatalf("depth=%d: %v", depth, err)
				}
				compareChains(t, depth, seq, pipe)
				compareWorlds(t, depth, seq, pipe)
			}
		})
	}
}

// TestSealPipelineToFileByteIdentical is the framed-file counterpart: the
// chain file a pipelined GenerateToFile emits (blocks framed by the
// committer as they seal) must be byte-identical to the inline path's, at
// two scales and several depths.
func TestSealPipelineToFileByteIdentical(t *testing.T) {
	small := Small()
	small.Blocks, small.Users = 300, 60
	larger := Small()
	larger.Blocks, larger.Users = 600, 120
	configs := []struct {
		name string
		cfg  Config
	}{
		{"small", small},
		{"larger", larger},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeAt := func(depth int) []byte {
				t.Helper()
				c := tc.cfg
				c.PipelineDepth = depth
				path := filepath.Join(dir, fmt.Sprintf("chain-depth%d.bin", depth))
				w, err := GenerateToFile(c, path)
				if err != nil {
					t.Fatalf("depth=%d: %v", depth, err)
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("depth=%d: %v", depth, err)
				}
				// The file must also match the resident chain's own
				// serialization.
				var buf bytes.Buffer
				if _, err := w.Chain.WriteTo(&buf); err != nil {
					t.Fatalf("depth=%d: %v", depth, err)
				}
				if !bytes.Equal(data, buf.Bytes()) {
					t.Fatalf("depth=%d: framed file differs from resident chain serialization", depth)
				}
				return data
			}

			seq := writeAt(1)
			for _, depth := range []int{3, 0} {
				if !bytes.Equal(seq, writeAt(depth)) {
					t.Fatalf("depth=%d: framed chain file differs from sequential path", depth)
				}
			}
		})
	}
}

// compareWorlds checks the generation ground truth the chain bytes do not
// cover: ownership, tags, counters, and the scripted case-study records
// (whose amounts depend on the engine's minted-coins tracking).
func compareWorlds(t *testing.T, depth int, seq, pipe *World) {
	t.Helper()
	if pipe.TxsGenerated != seq.TxsGenerated {
		t.Fatalf("depth=%d: TxsGenerated %d, sequential %d", depth, pipe.TxsGenerated, seq.TxsGenerated)
	}
	if pipe.ResearcherTxCount != seq.ResearcherTxCount {
		t.Fatalf("depth=%d: ResearcherTxCount %d, sequential %d", depth, pipe.ResearcherTxCount, seq.ResearcherTxCount)
	}
	if !reflect.DeepEqual(pipe.OwnerOf, seq.OwnerOf) {
		t.Fatalf("depth=%d: ground-truth ownership differs", depth)
	}
	if !reflect.DeepEqual(pipe.Tags.All(), seq.Tags.All()) {
		t.Fatalf("depth=%d: researcher tags differ", depth)
	}
	if !reflect.DeepEqual(pipe.PublicTags, seq.PublicTags) {
		t.Fatalf("depth=%d: public tags differ", depth)
	}
	if !reflect.DeepEqual(pipe.Dissolution, seq.Dissolution) {
		t.Fatalf("depth=%d: dissolution record differs:\nseq: %+v\npipe: %+v",
			depth, seq.Dissolution, pipe.Dissolution)
	}
	if !reflect.DeepEqual(pipe.Thefts, seq.Thefts) {
		t.Fatalf("depth=%d: theft records differ", depth)
	}
}

// errAfter returns a block sink failing with sentinel once the block at
// failHeight arrives, counting the blocks it accepted.
func errAfter(failHeight int64, sentinel error, accepted *int64) func(*chain.Block) error {
	next := int64(0)
	return func(b *chain.Block) error {
		h := next
		next++
		if h >= failHeight {
			return sentinel
		}
		*accepted++
		return nil
	}
}

// A block sink failing at block k must abort generation with a wrapped,
// height-attributed error on both seal paths — inline, where the error
// surfaces at that block's own seal, and pipelined, where it surfaces at a
// later seal call or at drain — and must leave no pipeline goroutine
// behind.
func TestBlockSinkErrorPropagation(t *testing.T) {
	cfg := Small()
	cfg.Blocks, cfg.Users = 300, 60
	const failAt = 150
	for _, depth := range []int{1, 4} {
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			c := cfg
			c.PipelineDepth = depth
			sentinel := errors.New("sink exploded")
			var accepted int64
			before := runtime.NumGoroutine()
			w, err := GenerateStream(context.Background(), c, errAfter(failAt, sentinel, &accepted))
			if err == nil {
				t.Fatal("generation succeeded despite failing sink")
			}
			if w != nil {
				t.Fatal("failed generation returned a world")
			}
			if !errors.Is(err, sentinel) {
				t.Fatalf("error %v does not wrap the sink error", err)
			}
			if want := fmt.Sprintf("emitting block %d", failAt); !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q lacks height attribution %q", err, want)
			}
			if accepted != failAt {
				t.Fatalf("sink accepted %d blocks before failing, want %d", accepted, failAt)
			}
			waitForGoroutines(t, before)
		})
	}
}

// waitForGoroutines fails the test if the goroutine count does not settle
// back to the pre-generation level — a leaked signing or committer
// goroutine would hold it up.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines did not settle: %d > %d\n%s",
				runtime.NumGoroutine(), before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A generation error inside GenerateToFile must not leave a partial chain
// file behind: a later `-chain -reuse` run would trip over the truncated
// frame instead of a clean missing-file error.
func TestGenerateToFileRemovesPartialFileOnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.bin")
	cfg := Small()
	cfg.Blocks = 10 // rejected by GenerateStream's validation
	if _, err := GenerateToFile(cfg, path); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("partial chain file left behind (stat err = %v)", err)
	}
}

// A create failure must surface before the cleanup path is armed: nothing
// was written, so there is nothing to close or remove.
func TestGenerateToFileCreateError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "missing-dir", "chain.bin")
	if _, err := GenerateToFile(Small(), path); err == nil {
		t.Fatal("create into a missing directory succeeded")
	}
}

// TestGenerateCtxCancelled proves a cancelled context aborts generation with
// ctx.Err() and leaves no pipeline goroutines behind (the -race run and
// goleak gate the latter).
func TestGenerateCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateCtx(ctx, Small()); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestGenerateToFileCtxCancelledRemovesFile proves cancellation takes the
// same cleanup path as any other generation error: no partial chain file.
func TestGenerateToFileCtxCancelledRemovesFile(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	path := filepath.Join(t.TempDir(), "chain.bin")
	if _, err := GenerateToFileCtx(ctx, Small(), path); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("partial chain file left behind: %v", err)
	}
}
