package econ

import (
	"time"

	"repro/internal/tags"
)

// ServiceKind selects the behavioural model a service runs.
type ServiceKind int

// Service behaviour kinds.
const (
	KindPool ServiceKind = iota
	KindWallet
	KindBankExchange
	KindFixedExchange
	KindVendor
	KindGateway // payment gateway (BitPay/WalletBit): receives on vendors' behalf
	KindMarket  // Silk Road style marketplace with an internal wallet
	KindDice    // Satoshi-Dice style: static bet addresses, payout to sender
	KindCasino  // account-based gambling (poker etc.)
	KindMix
	KindInvestment
	KindMiscSvc
)

// ServiceDef declares one roster entry: the services of Table 1 plus the
// investment firms of Section 2.2 and Medsforbitcoin (which appears in
// Table 2).
type ServiceDef struct {
	Name     string
	Category tags.Category
	Kind     ServiceKind
	// Launch is the approximate real-world service launch date; the service
	// is inactive before the corresponding simulated height.
	Launch time.Time
	// ResearcherTxs is how many transactions the Section 3.1 campaign
	// performs with this service; the roster totals 344.
	ResearcherTxs int
	// Weight biases how often users pick this service within its kind.
	Weight int
}

func d(y int, m time.Month) time.Time { return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC) }

// Roster returns the full service list. Counts: 11 pools, 10 wallets, 18
// bank exchanges, 8 fixed-rate exchanges, 18 vendors (plus Medsforbitcoin),
// 13 gambling sites, 9 miscellaneous services, 2 investment firms.
// ResearcherTxs sums to exactly 344 (the paper's transaction count).
func Roster() []ServiceDef {
	return []ServiceDef{
		// Mining pools (11). Researcher: mined with each, 1-25 payouts.
		{"50 BTC", tags.CatMining, KindPool, d(2011, 5), 10, 8},
		{"ABC Pool", tags.CatMining, KindPool, d(2011, 8), 1, 2},
		{"Bitclockers", tags.CatMining, KindPool, d(2011, 6), 4, 3},
		{"Bitminter", tags.CatMining, KindPool, d(2011, 6), 6, 4},
		{"BTC Guild", tags.CatMining, KindPool, d(2011, 5), 15, 10},
		{"Deepbit", tags.CatMining, KindPool, d(2011, 2), 20, 12},
		{"EclipseMC", tags.CatMining, KindPool, d(2011, 7), 4, 3},
		{"Eligius", tags.CatMining, KindPool, d(2011, 4), 6, 4},
		{"Itzod", tags.CatMining, KindPool, d(2011, 9), 1, 2},
		{"Ozcoin", tags.CatMining, KindPool, d(2011, 6), 4, 3},
		{"Slush", tags.CatMining, KindPool, d(2010, 12), 25, 11},

		// Wallet services (10). Researcher: multiple deposits/withdrawals.
		{"Bitcoin Faucet", tags.CatWallet, KindWallet, d(2010, 6), 2, 2},
		{"My Wallet", tags.CatWallet, KindWallet, d(2011, 8), 8, 10},
		{"Coinbase", tags.CatWallet, KindWallet, d(2012, 6), 8, 8},
		{"Easycoin", tags.CatWallet, KindWallet, d(2011, 10), 4, 3},
		{"Easywallet", tags.CatWallet, KindWallet, d(2011, 9), 4, 3},
		{"Flexcoin", tags.CatWallet, KindWallet, d(2011, 6), 4, 3},
		{"Instawallet", tags.CatWallet, KindWallet, d(2011, 4), 10, 10},
		{"Paytunia", tags.CatWallet, KindWallet, d(2011, 7), 4, 2},
		{"Strongcoin", tags.CatWallet, KindWallet, d(2011, 5), 4, 3},
		{"WalletBit Wallet", tags.CatWallet, KindWallet, d(2011, 6), 4, 3},

		// Bank exchanges (18): real-time trading, hold balances.
		{"Bitcoin 24", tags.CatBankExchange, KindBankExchange, d(2012, 5), 4, 6},
		{"Bitcoin Central", tags.CatBankExchange, KindBankExchange, d(2011, 1), 4, 4},
		{"Bitcoin.de", tags.CatBankExchange, KindBankExchange, d(2011, 8), 4, 5},
		{"Bitcurex", tags.CatBankExchange, KindBankExchange, d(2012, 7), 2, 2},
		{"Bitfloor", tags.CatBankExchange, KindBankExchange, d(2011, 10), 4, 4},
		{"Bitmarket", tags.CatBankExchange, KindBankExchange, d(2011, 4), 2, 2},
		{"Bitme", tags.CatBankExchange, KindBankExchange, d(2012, 7), 2, 2},
		{"Bitstamp", tags.CatBankExchange, KindBankExchange, d(2011, 9), 6, 8},
		{"BTC China", tags.CatBankExchange, KindBankExchange, d(2011, 6), 2, 3},
		{"BTC-e", tags.CatBankExchange, KindBankExchange, d(2011, 8), 6, 8},
		{"CampBX", tags.CatBankExchange, KindBankExchange, d(2011, 7), 4, 3},
		{"CA VirtEx", tags.CatBankExchange, KindBankExchange, d(2011, 6), 4, 4},
		{"ICBit", tags.CatBankExchange, KindBankExchange, d(2011, 11), 2, 2},
		{"Mercado Bitcoin", tags.CatBankExchange, KindBankExchange, d(2011, 7), 2, 3},
		{"Mt Gox", tags.CatBankExchange, KindBankExchange, d(2010, 7), 13, 20},
		{"The Rock", tags.CatBankExchange, KindBankExchange, d(2011, 6), 2, 2},
		{"Vircurex", tags.CatBankExchange, KindBankExchange, d(2011, 12), 2, 2},
		{"Virwox", tags.CatBankExchange, KindBankExchange, d(2011, 4), 5, 4},

		// Fixed-rate (non-bank) exchanges (8): one-time conversions.
		{"Aurum Xchange", tags.CatFixedExchange, KindFixedExchange, d(2011, 8), 2, 2},
		{"BitInstant", tags.CatFixedExchange, KindFixedExchange, d(2011, 9), 2, 5},
		{"Bitcoin Nordic", tags.CatFixedExchange, KindFixedExchange, d(2011, 10), 2, 2},
		{"BTC Quick", tags.CatFixedExchange, KindFixedExchange, d(2012, 4), 2, 2},
		{"FastCash4Bitcoins", tags.CatFixedExchange, KindFixedExchange, d(2011, 11), 2, 2},
		{"Lilion Transfer", tags.CatFixedExchange, KindFixedExchange, d(2012, 8), 2, 1},
		{"Nanaimo Gold", tags.CatFixedExchange, KindFixedExchange, d(2011, 7), 2, 2},
		{"OKPay", tags.CatFixedExchange, KindFixedExchange, d(2012, 3), 2, 3},

		// Vendors (18 from Table 1 + Medsforbitcoin from Table 2). Most use
		// the BitPay gateway; WalletBit also acts as a gateway.
		{"ABU Games", tags.CatVendor, KindVendor, d(2012, 3), 2, 2},
		{"Bitbrew", tags.CatVendor, KindVendor, d(2012, 1), 2, 1},
		{"Bitdomain", tags.CatVendor, KindVendor, d(2011, 9), 2, 1},
		{"Bitmit", tags.CatVendor, KindVendor, d(2011, 10), 2, 2},
		{"Bitpay", tags.CatVendor, KindGateway, d(2011, 7), 2, 10},
		{"Bit Usenet", tags.CatVendor, KindVendor, d(2012, 2), 2, 1},
		{"BTC Buy", tags.CatVendor, KindVendor, d(2011, 12), 2, 1},
		{"BTC Gadgets", tags.CatVendor, KindVendor, d(2012, 4), 2, 1},
		{"Casascius", tags.CatVendor, KindVendor, d(2011, 9), 2, 3},
		{"Coinabul", tags.CatVendor, KindVendor, d(2011, 10), 2, 3},
		{"CoinDL", tags.CatVendor, KindVendor, d(2012, 1), 2, 1},
		{"Etsy", tags.CatVendor, KindVendor, d(2012, 6), 2, 2},
		{"HealthRX", tags.CatVendor, KindVendor, d(2012, 5), 2, 1},
		{"JJ Games", tags.CatVendor, KindVendor, d(2012, 2), 2, 1},
		{"NZBs R Us", tags.CatVendor, KindVendor, d(2011, 11), 2, 1},
		{"Silk Road", tags.CatVendor, KindMarket, d(2011, 2), 2, 12},
		{"WalletBit", tags.CatVendor, KindGateway, d(2011, 6), 2, 4},
		{"Yoku", tags.CatVendor, KindVendor, d(2012, 5), 2, 1},
		{"Medsforbitcoin", tags.CatVendor, KindVendor, d(2011, 12), 0, 2},

		// Gambling (13): Satoshi Dice-style games and account casinos.
		{"Bit Elfin", tags.CatGambling, KindDice, d(2012, 7), 2, 2},
		{"Bitcoin 24/7", tags.CatGambling, KindCasino, d(2011, 12), 4, 2},
		{"Bitcoin Darts", tags.CatGambling, KindCasino, d(2012, 2), 4, 2},
		{"Bitcoin Kamikaze", tags.CatGambling, KindDice, d(2012, 6), 2, 2},
		{"Bitcoin Minefield", tags.CatGambling, KindDice, d(2012, 5), 2, 2},
		{"BitZino", tags.CatGambling, KindCasino, d(2012, 7), 4, 3},
		{"BTC Griffin", tags.CatGambling, KindDice, d(2012, 9), 2, 1},
		{"BTC Lucky", tags.CatGambling, KindDice, d(2012, 8), 2, 1},
		{"BTC on Tilt", tags.CatGambling, KindCasino, d(2012, 6), 4, 1},
		{"Clone Dice", tags.CatGambling, KindDice, d(2012, 8), 2, 2},
		{"Gold Game Land", tags.CatGambling, KindCasino, d(2012, 4), 4, 1},
		{"Satoshi Dice", tags.CatGambling, KindDice, d(2012, 4), 14, 20},
		{"Seals with Clubs", tags.CatGambling, KindCasino, d(2011, 8), 6, 3},

		// Miscellaneous (9): mixes, ad services, forwarding, Wikileaks.
		{"Bit Visitor", tags.CatMisc, KindMiscSvc, d(2011, 11), 2, 2},
		{"Bitcoin Advertisers", tags.CatMisc, KindMiscSvc, d(2012, 1), 2, 1},
		{"Bitcoin Laundry", tags.CatMix, KindMix, d(2011, 12), 4, 2},
		{"Bitfog", tags.CatMix, KindMix, d(2012, 6), 3, 2},
		{"Bitlaundry", tags.CatMix, KindMix, d(2011, 9), 3, 2},
		{"BitMix", tags.CatMix, KindMix, d(2012, 3), 2, 1},
		{"CoinAd", tags.CatMisc, KindMiscSvc, d(2012, 2), 1, 1},
		{"Coinapult", tags.CatMisc, KindMiscSvc, d(2012, 4), 2, 2},
		{"Wikileaks", tags.CatMisc, KindMiscSvc, d(2011, 6), 3, 2},

		// Investment firms (Section 2.2): dead before the study's own
		// transactions, so ResearcherTxs is zero; tagged via public sources.
		{"Bitcoinica", tags.CatInvestment, KindInvestment, d(2011, 9), 0, 4},
		{"Bitcoin Savings & Trust", tags.CatInvestment, KindInvestment, d(2011, 11), 0, 6},
	}
}

// RosterResearcherTotal sums the planned Section 3.1 transaction count.
func RosterResearcherTotal() int {
	total := 0
	for _, s := range Roster() {
		total += s.ResearcherTxs
	}
	return total
}
