package econ

import (
	"sync"
	"sync/atomic"

	"repro/internal/chain"
)

// sealPipeline runs the expensive tail of block sealing — the signature
// fan-out, ConnectBlock validation, and block-sink emission — behind the
// block builder. Tx.TxID excludes signature scripts (PR 2), so the merkle
// root, the coinbase, and therefore the tip hash of block N are all final
// before a single signature exists; sealBlock publishes the new tip
// synchronously and hands the block here, and the engine starts building
// block N+1 immediately.
//
// The pipeline is bounded: at most `depth` blocks are in flight, each owned
// by one signing worker of a `depth`-sized pool (the cross-block concurrency
// of the pool IS the signing fan-out in pipelined mode), and a single
// committer connects and emits blocks in strict height order, so the
// resident chain and any framed chain file are byte-identical to the
// sequential seal path. Seal errors are sticky: they surface at the next
// submit call or at drain, whichever comes first.
type sealPipeline struct {
	chain *chain.Chain
	sink  func(*chain.Block) error

	// slots bounds the number of in-flight blocks to the pipeline depth;
	// submit acquires, the committer releases. Both stage channels are
	// buffered to the same depth, so a submit that holds a slot never blocks
	// on a channel send.
	slots   chan struct{}
	signCh  chan *sealedBlock
	orderCh chan *sealedBlock

	signers   sync.WaitGroup
	committed chan struct{} // closed when the committer exits

	failed   atomic.Bool
	mu       sync.Mutex
	firstErr error
}

// sealedBlock is one unit of pipeline work: a fully assembled (but unsigned)
// block plus the signing jobs of its transactions.
type sealedBlock struct {
	blk    *chain.Block
	height int64
	jobs   []signJob
	signed chan struct{} // closed by the signing pool once every script is in place
}

// newSealPipeline starts the signing pool and the committer. depth must be
// at least 2; a depth of 1 is the engine's inline seal path, not a pipeline.
func newSealPipeline(c *chain.Chain, sink func(*chain.Block) error, depth int) *sealPipeline {
	s := &sealPipeline{
		chain:     c,
		sink:      sink,
		slots:     make(chan struct{}, depth),
		signCh:    make(chan *sealedBlock, depth),
		orderCh:   make(chan *sealedBlock, depth),
		committed: make(chan struct{}),
	}
	s.signers.Add(depth)
	for i := 0; i < depth; i++ {
		go s.signLoop()
	}
	go s.commitLoop()
	return s
}

// submit hands one built block to the pipeline, blocking while `depth`
// blocks are already in flight (backpressure keeps the builder at most
// `depth` blocks ahead of validation). If an earlier block failed to seal,
// the error is returned here instead — the block is dropped, and the caller
// aborts generation.
func (s *sealPipeline) submit(blk *chain.Block, height int64, jobs []signJob) error {
	if s.failed.Load() {
		return s.err()
	}
	sb := &sealedBlock{blk: blk, height: height, jobs: jobs, signed: make(chan struct{})}
	s.slots <- struct{}{}
	s.signCh <- sb
	s.orderCh <- sb
	return nil
}

// drain waits for every in-flight block to be signed, validated, and
// emitted, shuts the pipeline down, and returns the first seal error (nil
// when the whole chain sealed cleanly). No pipeline goroutine outlives a
// drain call.
func (s *sealPipeline) drain() error {
	close(s.signCh)
	close(s.orderCh)
	<-s.committed
	s.signers.Wait()
	return s.err()
}

// signLoop is one worker of the signing pool. Signatures are deterministic
// functions of (key, digest) and each block's jobs touch only that block's
// transactions, so pool workers need no coordination beyond the channel.
func (s *sealPipeline) signLoop() {
	defer s.signers.Done()
	for sb := range s.signCh {
		if !s.failed.Load() { // after a failure only unblock the committer
			signBatch(sb.jobs, 1)
		}
		close(sb.signed)
	}
}

// commitLoop validates and emits blocks in submission (height) order,
// waiting for each block's signatures first. After a failure it keeps
// draining — releasing slots so a builder blocked in submit can observe the
// error — but connects and emits nothing further.
func (s *sealPipeline) commitLoop() {
	defer close(s.committed)
	for sb := range s.orderCh {
		<-sb.signed
		if !s.failed.Load() {
			if err := connectAndEmit(s.chain, s.sink, sb.blk, sb.height); err != nil {
				s.fail(err)
			}
		}
		<-s.slots
	}
}

// fail records the first error and flips the sticky failure flag; the order
// (error first, flag second) guarantees a submit that observes the flag
// reads a non-nil error.
func (s *sealPipeline) fail(err error) {
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.mu.Unlock()
	s.failed.Store(true)
}

func (s *sealPipeline) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}
