package wire

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/chain"
)

const testMagic = 0xfeedbeef

func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, testMagic, msg); err != nil {
		t.Fatalf("write %s: %v", msg.Command(), err)
	}
	got, err := ReadMessage(&buf, testMagic)
	if err != nil {
		t.Fatalf("read %s: %v", msg.Command(), err)
	}
	if got.Command() != msg.Command() {
		t.Fatalf("command %q != %q", got.Command(), msg.Command())
	}
	return got
}

func TestVersionRoundTrip(t *testing.T) {
	m := &MsgVersion{Version: 1, Nonce: 42, UserAgent: "/fistful:1.0/", StartHeight: 99}
	got := roundTrip(t, m).(*MsgVersion)
	if *got != *m {
		t.Fatalf("got %+v, want %+v", got, m)
	}
}

func TestPingPongRoundTrip(t *testing.T) {
	if got := roundTrip(t, &MsgPing{Nonce: 7}).(*MsgPing); got.Nonce != 7 {
		t.Fatal("ping nonce lost")
	}
	if got := roundTrip(t, &MsgPong{Nonce: 9}).(*MsgPong); got.Nonce != 9 {
		t.Fatal("pong nonce lost")
	}
	roundTrip(t, &MsgVerAck{})
}

func TestInvRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := &MsgInv{}
	for i := 0; i < 7; i++ {
		var iv InvVect
		iv.Type = InvTx
		if i%2 == 0 {
			iv.Type = InvBlock
		}
		rng.Read(iv.Hash[:])
		m.Items = append(m.Items, iv)
	}
	got := roundTrip(t, m).(*MsgInv)
	if len(got.Items) != len(m.Items) {
		t.Fatalf("items %d != %d", len(got.Items), len(m.Items))
	}
	for i := range m.Items {
		if got.Items[i] != m.Items[i] {
			t.Fatalf("item %d mismatch", i)
		}
	}
}

func TestTxAndBlockRoundTrip(t *testing.T) {
	tx := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: chain.OutPoint{Index: 1}, SigScript: []byte{1, 2, 3}}},
		Outputs: []chain.TxOut{{Value: 5 * chain.Coin, PkScript: []byte{0xaa}}},
	}
	gotTx := roundTrip(t, &MsgTx{Tx: tx}).(*MsgTx)
	if gotTx.Tx.TxID() != tx.TxID() {
		t.Fatal("tx id changed across wire")
	}
	blk := &chain.Block{
		Header: chain.BlockHeader{Version: 1, Timestamp: 12345},
		Txs:    []*chain.Tx{tx},
	}
	blk.Header.MerkleRoot = chain.BlockMerkleRoot(blk.Txs)
	gotBlk := roundTrip(t, &MsgBlock{Block: blk}).(*MsgBlock)
	if gotBlk.Block.BlockHash() != blk.BlockHash() {
		t.Fatal("block hash changed across wire")
	}
}

func TestGetBlocksRoundTrip(t *testing.T) {
	var m MsgGetBlocks
	m.Have[3] = 0x55
	got := roundTrip(t, &m).(*MsgGetBlocks)
	if got.Have != m.Have {
		t.Fatal("locator hash lost")
	}
}

func TestRejectWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, testMagic, &MsgPing{Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(&buf, testMagic+1); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestRejectCorruptChecksum(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, testMagic, &MsgPing{Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff // flip a payload byte
	if _, err := ReadMessage(bytes.NewReader(raw), testMagic); err != ErrBadChecksum {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestRejectUnknownCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, testMagic, &MsgPing{Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	copy(raw[4:16], "bogus\x00\x00\x00\x00\x00\x00\x00")
	_, err := ReadMessage(bytes.NewReader(raw), testMagic)
	if err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("err = %v, want unknown command", err)
	}
}

func TestRejectOversizePayloadHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, testMagic, &MsgPing{Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[16], raw[17], raw[18], raw[19] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadMessage(bytes.NewReader(raw), testMagic); err != ErrOversize {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
}

func TestRejectTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, testMagic, &MsgVersion{UserAgent: "x"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut += 5 {
		if _, err := ReadMessage(bytes.NewReader(raw[:cut]), testMagic); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
}

func TestHostileInvCount(t *testing.T) {
	// Build a syntactically valid frame claiming a huge inv list.
	var payload bytes.Buffer
	chain.WriteVarInt(&payload, maxInvItems+1)
	var frame bytes.Buffer
	hdr := make([]byte, 24)
	frame.Write(hdr)
	raw := frame.Bytes()
	copy(raw[0:4], []byte{0xef, 0xbe, 0xed, 0xfe}) // little-endian testMagic
	copy(raw[4:16], "inv")
	raw[16] = byte(payload.Len())
	sum := chain.DoubleSHA256(payload.Bytes())
	copy(raw[20:24], sum[:4])
	full := append(raw, payload.Bytes()...)
	if _, err := ReadMessage(bytes.NewReader(full), testMagic); err == nil {
		t.Fatal("accepted hostile inv count")
	}
}
