// Package wire implements the peer-to-peer message protocol the Figure 1
// network runs: Bitcoin-style framing (magic, 12-byte command, length,
// double-SHA256 checksum) around version/verack handshakes, inv-based
// gossip, and tx/block relay.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/chain"
)

// Message is one wire protocol message.
type Message interface {
	// Command returns the message's command string (<= 12 bytes).
	Command() string
	// EncodePayload writes the message body.
	EncodePayload(w io.Writer) error
	// DecodePayload reads the message body.
	DecodePayload(r io.Reader) error
}

// Command strings.
const (
	CmdVersion   = "version"
	CmdVerAck    = "verack"
	CmdPing      = "ping"
	CmdPong      = "pong"
	CmdInv       = "inv"
	CmdGetData   = "getdata"
	CmdTx        = "tx"
	CmdBlock     = "block"
	CmdGetBlocks = "getblocks"
)

// MaxPayload bounds a single message body (4 MiB).
const MaxPayload = 4 << 20

// Framing errors.
var (
	ErrBadMagic    = errors.New("wire: bad network magic")
	ErrBadChecksum = errors.New("wire: payload checksum mismatch")
	ErrOversize    = errors.New("wire: payload exceeds maximum size")
	ErrUnknownCmd  = errors.New("wire: unknown command")
)

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, magic uint32, msg Message) error {
	var payload bytes.Buffer
	if err := msg.EncodePayload(&payload); err != nil {
		return err
	}
	if payload.Len() > MaxPayload {
		return ErrOversize
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	copy(hdr[4:16], msg.Command())
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(payload.Len()))
	sum := chain.DoubleSHA256(payload.Bytes())
	copy(hdr[20:24], sum[:4])
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// ReadMessage reads and verifies one framed message.
func ReadMessage(r io.Reader, magic uint32) (Message, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magic {
		return nil, ErrBadMagic
	}
	cmd := string(bytes.TrimRight(hdr[4:16], "\x00"))
	length := binary.LittleEndian.Uint32(hdr[16:20])
	if length > MaxPayload {
		return nil, ErrOversize
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	sum := chain.DoubleSHA256(payload)
	if !bytes.Equal(sum[:4], hdr[20:24]) {
		return nil, ErrBadChecksum
	}
	msg, err := newMessage(cmd)
	if err != nil {
		return nil, err
	}
	if err := msg.DecodePayload(bytes.NewReader(payload)); err != nil {
		return nil, fmt.Errorf("wire: decoding %s: %w", cmd, err)
	}
	return msg, nil
}

func newMessage(cmd string) (Message, error) {
	switch cmd {
	case CmdVersion:
		return &MsgVersion{}, nil
	case CmdVerAck:
		return &MsgVerAck{}, nil
	case CmdPing:
		return &MsgPing{}, nil
	case CmdPong:
		return &MsgPong{}, nil
	case CmdInv:
		return &MsgInv{}, nil
	case CmdGetData:
		return &MsgGetData{}, nil
	case CmdTx:
		return &MsgTx{}, nil
	case CmdBlock:
		return &MsgBlock{}, nil
	case CmdGetBlocks:
		return &MsgGetBlocks{}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownCmd, cmd)
	}
}

// InvType distinguishes inventory entries.
type InvType uint32

// Inventory types.
const (
	InvTx    InvType = 1
	InvBlock InvType = 2
)

// InvVect is one inventory entry: "I have this object".
type InvVect struct {
	Type InvType
	Hash chain.Hash
}

// MsgVersion opens the handshake (Figure 1's peers learning about each
// other).
type MsgVersion struct {
	Version     int32
	Nonce       uint64
	UserAgent   string
	StartHeight int64
}

// Command implements Message.
func (*MsgVersion) Command() string { return CmdVersion }

// EncodePayload implements Message.
func (m *MsgVersion) EncodePayload(w io.Writer) error {
	var b [20]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(m.Version))
	binary.LittleEndian.PutUint64(b[4:12], m.Nonce)
	binary.LittleEndian.PutUint64(b[12:20], uint64(m.StartHeight))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	return chain.WriteVarBytes(w, []byte(m.UserAgent))
}

// DecodePayload implements Message.
func (m *MsgVersion) DecodePayload(r io.Reader) error {
	var b [20]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	m.Version = int32(binary.LittleEndian.Uint32(b[0:4]))
	m.Nonce = binary.LittleEndian.Uint64(b[4:12])
	m.StartHeight = int64(binary.LittleEndian.Uint64(b[12:20]))
	ua, err := chain.ReadVarBytes(r)
	if err != nil {
		return err
	}
	if len(ua) > 256 {
		return errors.New("wire: user agent too long")
	}
	m.UserAgent = string(ua)
	return nil
}

// MsgVerAck acknowledges a version message.
type MsgVerAck struct{}

// Command implements Message.
func (*MsgVerAck) Command() string { return CmdVerAck }

// EncodePayload implements Message.
func (*MsgVerAck) EncodePayload(io.Writer) error { return nil }

// DecodePayload implements Message.
func (*MsgVerAck) DecodePayload(io.Reader) error { return nil }

// MsgPing is a keepalive probe.
type MsgPing struct{ Nonce uint64 }

// Command implements Message.
func (*MsgPing) Command() string { return CmdPing }

// EncodePayload implements Message.
func (m *MsgPing) EncodePayload(w io.Writer) error { return writeU64(w, m.Nonce) }

// DecodePayload implements Message.
func (m *MsgPing) DecodePayload(r io.Reader) error { return readU64(r, &m.Nonce) }

// MsgPong answers a ping.
type MsgPong struct{ Nonce uint64 }

// Command implements Message.
func (*MsgPong) Command() string { return CmdPong }

// EncodePayload implements Message.
func (m *MsgPong) EncodePayload(w io.Writer) error { return writeU64(w, m.Nonce) }

// DecodePayload implements Message.
func (m *MsgPong) DecodePayload(r io.Reader) error { return readU64(r, &m.Nonce) }

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader, v *uint64) error {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	*v = binary.LittleEndian.Uint64(b[:])
	return nil
}

// maxInvItems bounds inventory lists.
const maxInvItems = 50_000

// MsgInv advertises objects ("allows it to flood the network", Figure 1
// steps 4 and 6).
type MsgInv struct{ Items []InvVect }

// Command implements Message.
func (*MsgInv) Command() string { return CmdInv }

// EncodePayload implements Message.
func (m *MsgInv) EncodePayload(w io.Writer) error { return encodeInv(w, m.Items) }

// DecodePayload implements Message.
func (m *MsgInv) DecodePayload(r io.Reader) error {
	items, err := decodeInv(r)
	m.Items = items
	return err
}

// MsgGetData requests advertised objects.
type MsgGetData struct{ Items []InvVect }

// Command implements Message.
func (*MsgGetData) Command() string { return CmdGetData }

// EncodePayload implements Message.
func (m *MsgGetData) EncodePayload(w io.Writer) error { return encodeInv(w, m.Items) }

// DecodePayload implements Message.
func (m *MsgGetData) DecodePayload(r io.Reader) error {
	items, err := decodeInv(r)
	m.Items = items
	return err
}

func encodeInv(w io.Writer, items []InvVect) error {
	if err := chain.WriteVarInt(w, uint64(len(items))); err != nil {
		return err
	}
	for _, it := range items {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(it.Type))
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
		if _, err := w.Write(it.Hash[:]); err != nil {
			return err
		}
	}
	return nil
}

func decodeInv(r io.Reader) ([]InvVect, error) {
	n, err := chain.ReadVarInt(r)
	if err != nil {
		return nil, err
	}
	if n > maxInvItems {
		return nil, fmt.Errorf("wire: inv list of %d items exceeds limit", n)
	}
	items := make([]InvVect, n)
	for i := range items {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, err
		}
		items[i].Type = InvType(binary.LittleEndian.Uint32(b[:]))
		if _, err := io.ReadFull(r, items[i].Hash[:]); err != nil {
			return nil, err
		}
	}
	return items, nil
}

// MsgTx relays a transaction (Figure 1 step 4).
type MsgTx struct{ Tx *chain.Tx }

// Command implements Message.
func (*MsgTx) Command() string { return CmdTx }

// EncodePayload implements Message.
func (m *MsgTx) EncodePayload(w io.Writer) error { return m.Tx.Serialize(w) }

// DecodePayload implements Message.
func (m *MsgTx) DecodePayload(r io.Reader) error {
	m.Tx = new(chain.Tx)
	return m.Tx.Deserialize(r)
}

// MsgBlock relays a block (Figure 1 step 6).
type MsgBlock struct{ Block *chain.Block }

// Command implements Message.
func (*MsgBlock) Command() string { return CmdBlock }

// EncodePayload implements Message.
func (m *MsgBlock) EncodePayload(w io.Writer) error { return m.Block.Serialize(w) }

// DecodePayload implements Message.
func (m *MsgBlock) DecodePayload(r io.Reader) error {
	m.Block = new(chain.Block)
	return m.Block.Deserialize(r)
}

// MsgGetBlocks asks a peer for block inventory after a locator.
type MsgGetBlocks struct {
	// Have is the requester's best block hash (simplified locator).
	Have chain.Hash
}

// Command implements Message.
func (*MsgGetBlocks) Command() string { return CmdGetBlocks }

// EncodePayload implements Message.
func (m *MsgGetBlocks) EncodePayload(w io.Writer) error {
	_, err := w.Write(m.Have[:])
	return err
}

// DecodePayload implements Message.
func (m *MsgGetBlocks) DecodePayload(r io.Reader) error {
	_, err := io.ReadFull(r, m.Have[:])
	return err
}
