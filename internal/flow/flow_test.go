package flow

import (
	"fmt"
	"testing"

	"repro/internal/chain"
	"repro/internal/chaintest"
	"repro/internal/cluster"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

const btc = chain.Coin

// buildPeelChain constructs a ledger with a 5-hop peeling chain from
// "start": each hop peels 5 BTC to a previously seen payee and passes the
// rest to a fresh change address.
func buildPeelChain(t *testing.T) (*chaintest.Builder, *txgraph.Graph, chain.OutPoint) {
	b := chaintest.New(t)
	b.Coinbase("funder")
	b.Coinbase("funder")
	// Make the payees seen in advance.
	var outs []chaintest.Out
	for i := 1; i <= 5; i++ {
		outs = append(outs, chaintest.Out{Name: fmt.Sprintf("payee%d", i), Value: 1 * btc})
	}
	outs = append(outs, chaintest.Out{Name: "start", Value: 90 * btc})
	startTx := b.Pay([]string{"funder"}, outs...)
	b.Mine(1)

	prev := "start"
	for i := 1; i <= 5; i++ {
		b.Pay([]string{prev},
			chaintest.Out{Name: fmt.Sprintf("payee%d", i), Value: 5 * btc},
			chaintest.Out{Name: fmt.Sprintf("change%d", i), Value: chain.Amount(90-10*i) * btc})
		b.Mine(1)
		prev = fmt.Sprintf("change%d", i)
	}
	g, err := txgraph.Build(b.Chain)
	if err != nil {
		t.Fatal(err)
	}
	// start was output index 5 of startTx.
	return b, g, chain.OutPoint{TxID: startTx.TxID(), Index: 5}
}

type testNamer struct {
	m map[txgraph.AddrID]string
}

func (n testNamer) NameOf(id txgraph.AddrID) (string, tags.Category, bool) {
	s, ok := n.m[id]
	return s, tags.CatBankExchange, ok
}

func TestFollowPeelingChainWithLabels(t *testing.T) {
	b, g, start := buildPeelChain(t)
	labels, _ := cluster.FindChangeOutputs(g, cluster.Unrefined())
	linker := NewLabelLinker(labels)

	namer := testNamer{m: map[txgraph.AddrID]string{}}
	for i := 1; i <= 5; i++ {
		id, ok := g.LookupAddr(b.Addr(fmt.Sprintf("payee%d", i)))
		if !ok {
			t.Fatal("payee missing")
		}
		namer.m[id] = fmt.Sprintf("svc%d", i)
	}

	res := FollowPeelingChain(g, start, 100, linker, namer)
	if res.Hops != 5 {
		t.Fatalf("hops = %d, want 5 (%s)", res.Hops, res.Terminated)
	}
	if res.Terminated != "unspent" {
		t.Fatalf("terminated = %q, want unspent", res.Terminated)
	}
	if len(res.Peels) != 5 {
		t.Fatalf("peels = %d, want 5", len(res.Peels))
	}
	for i, p := range res.Peels {
		if p.Hop != i+1 {
			t.Errorf("peel %d at hop %d", i, p.Hop)
		}
		if p.Amount != 5*btc {
			t.Errorf("peel %d amount %v", i, p.Amount)
		}
		if want := fmt.Sprintf("svc%d", i+1); p.Service != want {
			t.Errorf("peel %d service %q, want %q", i, p.Service, want)
		}
	}
}

func TestFollowPeelingChainMaxHops(t *testing.T) {
	_, g, start := buildPeelChain(t)
	labels, _ := cluster.FindChangeOutputs(g, cluster.Unrefined())
	res := FollowPeelingChain(g, start, 3, NewLabelLinker(labels), nil)
	if res.Hops != 3 || res.Terminated != "max-hops" {
		t.Fatalf("hops=%d terminated=%q", res.Hops, res.Terminated)
	}
}

func TestClusterLinkerFollowsChain(t *testing.T) {
	_, g, start := buildPeelChain(t)
	c := cluster.Heuristic2(g, cluster.Unrefined(), 0)
	res := FollowPeelingChain(g, start, 100, &ClusterLinker{Clusters: c}, nil)
	if res.Hops != 5 {
		t.Fatalf("cluster linker hops = %d, want 5 (%s)", res.Hops, res.Terminated)
	}
}

func TestSummarizePeels(t *testing.T) {
	peels := []Peel{
		{Service: "gox", Amount: 2 * btc},
		{Service: "gox", Amount: 3 * btc},
		{Service: "", Amount: 100 * btc}, // unknown, excluded
		{Service: "stamp", Amount: 1 * btc},
	}
	sum := SummarizePeels(peels)
	if len(sum) != 2 {
		t.Fatalf("groups = %d, want 2", len(sum))
	}
	if sum[0].Service != "gox" || sum[0].Peels != 2 || sum[0].Total != 5*btc {
		t.Fatalf("gox summary wrong: %+v", sum[0])
	}
}

func TestTrackTheftAggregationAndExchange(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("victim1")
	b.Coinbase("victim2")
	b.Coinbase("victim3")
	b.Coinbase("exchangeSeen") // the exchange deposit address, previously seen
	// Theft: three victim wallets drained to thief addresses.
	t1 := b.Pay([]string{"victim1"}, chaintest.Out{Name: "thief1", Value: 50 * btc})
	t2 := b.Pay([]string{"victim2"}, chaintest.Out{Name: "thief2", Value: 50 * btc})
	t3 := b.Pay([]string{"victim3"}, chaintest.Out{Name: "thief3", Value: 50 * btc})
	b.Mine(1)
	// Aggregation: thief combines into one address.
	b.Pay([]string{"thief1", "thief2", "thief3"}, chaintest.Out{Name: "thiefAgg", Value: 149 * btc})
	b.Mine(1)
	// Peeling: two peel-shaped hops, the second reaching the exchange.
	b.Pay([]string{"thiefAgg"},
		chaintest.Out{Name: "mule1", Value: 10 * btc},
		chaintest.Out{Name: "thiefC1", Value: 138 * btc})
	b.Mine(1)
	b.Pay([]string{"thiefC1"},
		chaintest.Out{Name: "exchangeSeen", Value: 20 * btc},
		chaintest.Out{Name: "thiefC2", Value: 117 * btc})
	b.Mine(1)

	g, err := txgraph.Build(b.Chain)
	if err != nil {
		t.Fatal(err)
	}
	exID, _ := g.LookupAddr(b.Addr("exchangeSeen"))
	namer := testNamer{m: map[txgraph.AddrID]string{exID: "Mt Gox"}}

	seeds := []chain.OutPoint{
		{TxID: t1.TxID(), Index: 0},
		{TxID: t2.TxID(), Index: 0},
		{TxID: t3.TxID(), Index: 0},
	}
	rep := TrackTheft(g, seeds, namer, 0)
	if rep.Movement == "" {
		t.Fatal("no movement sequence detected")
	}
	if rep.Movement[0] != 'A' {
		t.Fatalf("movement %q should start with aggregation", rep.Movement)
	}
	if rep.ExchangeTotal != 20*btc {
		t.Fatalf("exchange total %v, want 20 BTC", rep.ExchangeTotal)
	}
	if len(rep.ReachedExchanges) != 1 || rep.ReachedExchanges[0] != "Mt Gox" {
		t.Fatalf("exchanges %v", rep.ReachedExchanges)
	}
}

func TestTrackTheftUnmoved(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("victim")
	tx := b.Pay([]string{"victim"}, chaintest.Out{Name: "thief", Value: 50 * btc})
	b.Mine(2)
	g, err := txgraph.Build(b.Chain)
	if err != nil {
		t.Fatal(err)
	}
	rep := TrackTheft(g, []chain.OutPoint{{TxID: tx.TxID(), Index: 0}}, nil, 0)
	if rep.Unmoved != 50*btc {
		t.Fatalf("unmoved %v, want 50 BTC", rep.Unmoved)
	}
	if rep.Movement != "" {
		t.Fatalf("movement %q for unmoved theft", rep.Movement)
	}
}

func TestTrackTheftFoldingDetected(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("victim")
	b.Coinbase("cleanSource")
	theft := b.Pay([]string{"victim"}, chaintest.Out{Name: "thiefA", Value: 25 * btc},
		chaintest.Out{Name: "thiefB", Value: 24 * btc})
	b.Pay([]string{"cleanSource"}, chaintest.Out{Name: "thiefClean", Value: 50 * btc})
	b.Mine(1)
	// Folding: tainted + clean aggregated together.
	b.Pay([]string{"thiefA", "thiefB", "thiefClean"}, chaintest.Out{Name: "mixed", Value: 98 * btc})
	b.Mine(1)

	g, err := txgraph.Build(b.Chain)
	if err != nil {
		t.Fatal(err)
	}
	rep := TrackTheft(g, []chain.OutPoint{{TxID: theft.TxID(), Index: 0}, {TxID: theft.TxID(), Index: 1}}, nil, 0)
	if rep.Movement != "F" {
		t.Fatalf("movement %q, want F (folding)", rep.Movement)
	}
}

func TestClassifySplit(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("victim")
	theft := b.Pay([]string{"victim"}, chaintest.Out{Name: "thief", Value: 49 * btc})
	b.Mine(1)
	b.Pay([]string{"thief"},
		chaintest.Out{Name: "s1", Value: 16 * btc},
		chaintest.Out{Name: "s2", Value: 16 * btc},
		chaintest.Out{Name: "s3", Value: 16 * btc})
	b.Mine(1)
	g, err := txgraph.Build(b.Chain)
	if err != nil {
		t.Fatal(err)
	}
	rep := TrackTheft(g, []chain.OutPoint{{TxID: theft.TxID(), Index: 0}}, nil, 0)
	if rep.Movement != "S" {
		t.Fatalf("movement %q, want S", rep.Movement)
	}
}
