package flow

import (
	"sort"
	"strings"

	"repro/internal/chain"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

// MovementKind classifies one transaction in a theft's aftermath, using the
// paper's vocabulary (Table 3).
type MovementKind byte

// Movement kinds: A aggregation, P peeling chain, S split, F folding.
const (
	MoveAggregation MovementKind = 'A'
	MovePeeling     MovementKind = 'P'
	MoveSplit       MovementKind = 'S'
	MoveFolding     MovementKind = 'F'
)

// TheftReport is the tracked aftermath of a theft, the row shape of Table 3.
type TheftReport struct {
	// Movement is the observed sequence of movement types, e.g. "A/P/S"
	// (consecutive repeats collapsed).
	Movement string
	// ExchangeTotal is the BTC observed flowing into known exchanges.
	ExchangeTotal chain.Amount
	// ExchangePeels lists each observed flow into a named exchange.
	ExchangePeels []Peel
	// ReachedExchanges is the distinct exchanges reached.
	ReachedExchanges []string
	// Unmoved is the stolen value still sitting unspent on the thief's
	// original receiving addresses.
	Unmoved chain.Amount
	// TxsExamined is how many descendant transactions were traversed.
	TxsExamined int
}

// TrackTheft follows stolen coins forward from the outputs known to have
// paid the thief (public theft reports listed the thief's addresses),
// classifying movements and recording flows into named exchange clusters.
// Taint propagation stops when coins reach any named service cluster (the
// paper's analysis ends at the deposit: "the fairly direct flow of bitcoins
// from the point of theft to the deposit with an exchange") and after
// maxTxs descendant transactions. For peel-shaped hops only the chain side
// (the larger output) is followed, matching the manual methodology.
func TrackTheft(g *txgraph.Graph, seeds []chain.OutPoint, namer Namer, maxTxs int) TheftReport {
	var rep TheftReport
	if maxTxs <= 0 {
		maxTxs = 200
	}

	type outRef struct {
		tx  txgraph.TxSeq
		out int
	}
	var queue []outRef
	taintedOuts := make(map[outRef]bool)
	taintedTx := make(map[txgraph.TxSeq]bool)
	enqueue := func(r outRef) {
		if !taintedOuts[r] {
			taintedOuts[r] = true
			queue = append(queue, r)
		}
	}
	for _, op := range seeds {
		seq, ok := g.LookupTx(op.TxID)
		if !ok {
			continue
		}
		taintedTx[seq] = true
		tx := g.Tx(seq)
		j := int(op.Index)
		if j >= len(tx.OutputAddrs) {
			continue
		}
		enqueue(outRef{tx: seq, out: j})
		if tx.SpentBy[j] == txgraph.NoTx {
			rep.Unmoved += tx.OutputValues[j]
		}
	}

	// Phase 1: discover the tainted descendant transactions, stopping at
	// named service clusters and at the transaction budget.
	var discovered []txgraph.TxSeq
	seenSpender := make(map[txgraph.TxSeq]bool)
	seenExchange := make(map[outRef]bool)
	for len(queue) > 0 && len(discovered) < maxTxs {
		r := queue[0]
		queue = queue[1:]
		src := g.Tx(r.tx)
		spender := src.SpentBy[r.out]
		if spender == txgraph.NoTx || seenSpender[spender] {
			continue
		}
		seenSpender[spender] = true
		discovered = append(discovered, spender)
		taintedTx[spender] = true
		stx := g.Tx(spender)
		// Peel-shaped hop: follow only the larger (chain) output.
		onlyOut := -1
		if len(stx.OutputAddrs) == 2 {
			lo, hi := stx.OutputValues[0], stx.OutputValues[1]
			hiIdx := 1
			if lo > hi {
				lo, hi = hi, lo
				hiIdx = 0
			}
			if hi > 0 && lo < hi*3/4 {
				onlyOut = hiIdx
			}
		}
		for j := range stx.OutputAddrs {
			if onlyOut >= 0 && j != onlyOut {
				// Still check whether the peel landed at an exchange.
				addr := stx.OutputAddrs[j]
				if addr != txgraph.NoAddr && namer != nil {
					if svc, cat, ok := namer.NameOf(addr); ok &&
						(cat == tags.CatBankExchange || cat == tags.CatFixedExchange) {
						or := outRef{tx: spender, out: j}
						if !seenExchange[or] {
							seenExchange[or] = true
							p := Peel{Tx: spender, Addr: addr, Amount: stx.OutputValues[j], Service: svc, Cat: cat}
							rep.ExchangePeels = append(rep.ExchangePeels, p)
							rep.ExchangeTotal += p.Amount
						}
					}
				}
				continue
			}
			addr := stx.OutputAddrs[j]
			if addr != txgraph.NoAddr && namer != nil {
				if svc, cat, ok := namer.NameOf(addr); ok && serviceCategory(cat) {
					// Coins reached a known service: record exchange
					// deposits and stop following (ownership changed).
					or := outRef{tx: spender, out: j}
					if (cat == tags.CatBankExchange || cat == tags.CatFixedExchange) && !seenExchange[or] {
						seenExchange[or] = true
						p := Peel{Tx: spender, Addr: addr, Amount: stx.OutputValues[j], Service: svc, Cat: cat}
						rep.ExchangePeels = append(rep.ExchangePeels, p)
						rep.ExchangeTotal += p.Amount
					}
					continue
				}
			}
			enqueue(outRef{tx: spender, out: j})
		}
	}
	rep.TxsExamined = len(discovered)

	// Phase 2: classify movements in chain order, collapsing consecutive
	// repeats; a peeling chain needs a run of at least two peel-shaped hops.
	sort.Slice(discovered, func(i, j int) bool { return discovered[i] < discovered[j] })
	var moves []MovementKind
	peelRun := 0
	for _, seq := range discovered {
		kind := classifyMovement(g, g.Tx(seq), taintedTx)
		if kind == MovePeeling {
			peelRun++
			if peelRun < 2 {
				continue
			}
		} else {
			peelRun = 0
		}
		if kind != 0 && (len(moves) == 0 || moves[len(moves)-1] != kind) {
			moves = append(moves, kind)
		}
	}
	parts := make([]string, len(moves))
	for i, m := range moves {
		parts[i] = string(rune(m))
	}
	rep.Movement = strings.Join(parts, "/")

	seen := make(map[string]bool)
	for _, p := range rep.ExchangePeels {
		if !seen[p.Service] {
			seen[p.Service] = true
			rep.ReachedExchanges = append(rep.ReachedExchanges, p.Service)
		}
	}
	sort.Strings(rep.ReachedExchanges)
	return rep
}

// serviceCategory reports whether a category denotes a service (taint stops
// there) rather than an individual or unknown cluster.
func serviceCategory(c tags.Category) bool {
	switch c {
	case tags.CatUnknown, tags.CatIndividual, tags.CatThief:
		return false
	default:
		return true
	}
}

// classifyMovement assigns a movement kind to one spend of tainted coins:
//   - aggregation: several inputs collapse into one output;
//   - folding: an aggregation whose inputs mix tainted and clean coins;
//   - split: one-to-many with similarly sized outputs;
//   - peeling: two outputs, one much smaller than the other.
func classifyMovement(g *txgraph.Graph, tx *txgraph.TxInfo, taintedTx map[txgraph.TxSeq]bool) MovementKind {
	nIn, nOut := len(tx.InputAddrs), len(tx.OutputAddrs)
	switch {
	case nIn >= 2 && nOut == 1:
		for _, src := range tx.InputSrc {
			if !taintedTx[src] {
				return MoveFolding // clean coins folded in
			}
		}
		return MoveAggregation
	case nIn <= 2 && nOut >= 3:
		return MoveSplit
	case nOut == 2:
		a, b := tx.OutputValues[0], tx.OutputValues[1]
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > 0 && lo < hi*3/4 {
			return MovePeeling
		}
		return MoveSplit
	default:
		return 0
	}
}
