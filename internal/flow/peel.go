// Package flow implements the paper's Section 5 traffic analysis: following
// peeling chains hop by hop via change links, identifying the meaningful
// recipient ("peel") at each hop, classifying how stolen money moves
// (aggregation, peeling, splitting, folding), and tracking flows from thefts
// to known services such as exchanges.
package flow

import (
	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

// ChangeLinker identifies which output of a transaction is the change — the
// link followed from hop to hop. The paper uses Heuristic 2; a
// cluster-membership linker is provided for the ablation.
type ChangeLinker interface {
	// ChangeOutput returns the change output index of the transaction, if
	// one can be determined.
	ChangeOutput(g *txgraph.Graph, seq txgraph.TxSeq) (int, bool)
}

// LabelLinker links via precomputed Heuristic 2 change labels.
type LabelLinker struct {
	byTx map[txgraph.TxSeq]int
}

// NewLabelLinker indexes a label set by transaction.
func NewLabelLinker(labels []cluster.ChangeLabel) *LabelLinker {
	m := make(map[txgraph.TxSeq]int, len(labels))
	for _, l := range labels {
		m[l.Tx] = l.Output
	}
	return &LabelLinker{byTx: m}
}

// ChangeOutput implements ChangeLinker.
func (l *LabelLinker) ChangeOutput(_ *txgraph.Graph, seq txgraph.TxSeq) (int, bool) {
	out, ok := l.byTx[seq]
	return out, ok
}

// ClusterLinker links via cluster membership: the change output is the one
// whose address clusters with the transaction's inputs; ambiguous if none or
// several do.
type ClusterLinker struct {
	Clusters *cluster.Clustering
}

// ChangeOutput implements ChangeLinker.
func (l *ClusterLinker) ChangeOutput(g *txgraph.Graph, seq txgraph.TxSeq) (int, bool) {
	tx := g.Tx(seq)
	if len(tx.InputAddrs) == 0 {
		return 0, false
	}
	var inCluster int32 = -1
	for _, in := range tx.InputAddrs {
		if in != txgraph.NoAddr {
			inCluster = l.Clusters.ClusterOf(in)
			break
		}
	}
	if inCluster < 0 {
		return 0, false
	}
	found, idx := 0, 0
	for j, out := range tx.OutputAddrs {
		if out == txgraph.NoAddr {
			continue
		}
		if l.Clusters.ClusterOf(out) == inCluster {
			found++
			idx = j
		}
	}
	if found != 1 {
		return 0, false
	}
	return idx, true
}

// Peel records the meaningful recipient of one hop of a peeling chain.
type Peel struct {
	Hop     int // 1-based hop index
	Tx      txgraph.TxSeq
	Addr    txgraph.AddrID
	Amount  chain.Amount
	Service string        // named recipient via cluster naming; "" if unknown
	Cat     tags.Category // recipient's category, if named
}

// FollowResult is a traversed peeling chain.
type FollowResult struct {
	Peels []Peel
	// Hops is how many change links were followed.
	Hops int
	// Terminated describes why the walk stopped: "max-hops", "unspent",
	// "no-change-link".
	Terminated string
}

// Namer resolves an address to a known service, typically tags.Naming over a
// clustering.
type Namer interface {
	NameOf(id txgraph.AddrID) (service string, cat tags.Category, ok bool)
}

// NamingAdapter adapts tags.Naming + a clustering to the Namer interface.
type NamingAdapter struct {
	Clusters *cluster.Clustering
	Naming   *tags.Naming
}

// NameOf implements Namer.
func (n NamingAdapter) NameOf(id txgraph.AddrID) (string, tags.Category, bool) {
	svc, ok := n.Naming.ServiceOf(n.Clusters, id)
	if !ok {
		return "", tags.CatUnknown, false
	}
	return svc, n.Naming.CategoryOf(n.Clusters, id), true
}

// FollowPeelingChain walks a peeling chain starting from the output `start`
// (an outpoint holding the chain's initial amount) for up to maxHops hops.
// At each hop it follows the change link and records every other output as a
// peel, named when the recipient's cluster is known (Section 5's
// methodology: "at each hop, we look at the two output addresses; if one is
// a change address, we follow the chain ... and identify the meaningful
// recipient as the other output").
func FollowPeelingChain(g *txgraph.Graph, start chain.OutPoint, maxHops int, linker ChangeLinker, namer Namer) FollowResult {
	var res FollowResult
	seq, ok := g.LookupTx(start.TxID)
	if !ok {
		res.Terminated = "no-change-link"
		return res
	}
	cur := seq
	curOut := int(start.Index)
	for res.Hops < maxHops {
		tx := g.Tx(cur)
		if curOut >= len(tx.SpentBy) || tx.SpentBy[curOut] == txgraph.NoTx {
			res.Terminated = "unspent"
			return res
		}
		next := tx.SpentBy[curOut]
		ntx := g.Tx(next)
		changeIdx, ok := linker.ChangeOutput(g, next)
		if !ok {
			res.Terminated = "no-change-link"
			return res
		}
		res.Hops++
		for j := range ntx.OutputAddrs {
			if j == changeIdx {
				continue
			}
			p := Peel{
				Hop:    res.Hops,
				Tx:     next,
				Addr:   ntx.OutputAddrs[j],
				Amount: ntx.OutputValues[j],
			}
			if p.Addr != txgraph.NoAddr && namer != nil {
				if svc, cat, ok := namer.NameOf(p.Addr); ok {
					p.Service = svc
					p.Cat = cat
				}
			}
			res.Peels = append(res.Peels, p)
		}
		cur, curOut = next, changeIdx
	}
	res.Terminated = "max-hops"
	return res
}

// PeelSummary aggregates peels by service.
type PeelSummary struct {
	Service string
	Cat     tags.Category
	Peels   int
	Total   chain.Amount
}

// SummarizePeels groups named peels by recipient service, in first-seen
// order.
func SummarizePeels(peels []Peel) []PeelSummary {
	index := make(map[string]int)
	var out []PeelSummary
	for _, p := range peels {
		if p.Service == "" {
			continue
		}
		i, ok := index[p.Service]
		if !ok {
			i = len(out)
			index[p.Service] = i
			out = append(out, PeelSummary{Service: p.Service, Cat: p.Cat})
		}
		out[i].Peels++
		out[i].Total += p.Amount
	}
	return out
}
