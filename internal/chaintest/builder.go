// Package chaintest provides a compact ledger builder for tests: addresses
// are referred to by string names, keys are minted on first use, and
// transactions are specified as (from-names, to-name/amount pairs). Every
// block it produces passes full validation including script verification, so
// tests exercise the real pipeline end to end.
package chaintest

import (
	"fmt"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/script"
)

// TB is the subset of *testing.T the builder needs; keeping it an interface
// avoids importing the testing package from non-test code.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Out specifies one transaction output by recipient name and amount.
type Out struct {
	Name  string
	Value chain.Amount
}

// Builder accumulates transactions and mines them into a validated chain.
type Builder struct {
	t       TB
	Chain   *chain.Chain
	keys    map[string]address.KeyPair
	byAddr  map[address.Address]string
	utxos   map[string][]utxo
	pending []*chain.Tx
	nextKey uint64
	seed    int64
}

type utxo struct {
	op    chain.OutPoint
	value chain.Amount
}

// New returns a builder over a fresh chain with zero coinbase maturity (so
// tests can spend immediately) and deterministic keys.
func New(t TB) *Builder {
	params := chain.MainNetParams()
	params.CoinbaseMaturity = 0
	return &Builder{
		t:      t,
		Chain:  chain.New(params),
		keys:   make(map[string]address.KeyPair),
		byAddr: make(map[address.Address]string),
		utxos:  make(map[string][]utxo),
		seed:   0x5eed,
	}
}

// Key returns (minting if needed) the key pair for a name.
func (b *Builder) Key(name string) address.KeyPair {
	if k, ok := b.keys[name]; ok {
		return k
	}
	b.nextKey++
	k := address.NewKeyFromSeed(b.seed, b.nextKey)
	b.keys[name] = k
	b.byAddr[k.Address()] = name
	return k
}

// Addr returns the address for a name.
func (b *Builder) Addr(name string) address.Address { return b.Key(name).Address() }

// NameOf returns the name that owns an address, if the builder minted it.
func (b *Builder) NameOf(a address.Address) (string, bool) {
	n, ok := b.byAddr[a]
	return n, ok
}

// Balance returns the spendable balance recorded for a name.
func (b *Builder) Balance(name string) chain.Amount {
	var sum chain.Amount
	for _, u := range b.utxos[name] {
		sum += u.value
	}
	return sum
}

// Coinbase mines a block paying the subsidy to name, flushing any pending
// transactions into the same block. It returns the block height.
func (b *Builder) Coinbase(name string) int64 {
	b.t.Helper()
	height := b.Chain.Height() + 1
	var fees chain.Amount
	for _, tx := range b.pending {
		var in chain.Amount
		for _, txin := range tx.Inputs {
			e, ok := b.Chain.UTXO().Lookup(txin.Prev)
			if !ok {
				b.t.Fatalf("chaintest: pending tx input %s not in UTXO set", txin.Prev)
			}
			in += e.Value
		}
		fees += in - tx.TotalOut()
	}
	subsidy := b.Chain.Params().SubsidyAt(height)
	cb := chain.NewCoinbaseTx(height, subsidy+fees, script.PayToAddr(b.Addr(name)), nil)
	txs := append([]*chain.Tx{cb}, b.pending...)
	b.pending = nil
	blk := &chain.Block{
		Header: chain.BlockHeader{
			Version:    1,
			PrevBlock:  b.Chain.TipHash(),
			MerkleRoot: chain.BlockMerkleRoot(txs),
			Timestamp:  b.Chain.Params().TimeAt(height).Unix(),
		},
		Txs: txs,
	}
	if err := b.Chain.ConnectBlock(blk, false, chain.ConnectBlockOptions{Verifier: script.Verifier{}}); err != nil {
		b.t.Fatalf("chaintest: connect block %d: %v", height, err)
	}
	b.utxos[name] = append(b.utxos[name], utxo{
		op:    chain.OutPoint{TxID: cb.TxID(), Index: 0},
		value: subsidy + fees,
	})
	return height
}

// Pay builds, signs and queues a transaction spending all UTXOs of the named
// source addresses to the given outputs; any remainder becomes the fee. The
// transaction joins the next mined block.
func (b *Builder) Pay(from []string, outs ...Out) *chain.Tx {
	b.t.Helper()
	tx := &chain.Tx{Version: 1}
	var inSum chain.Amount
	type signer struct {
		key address.KeyPair
	}
	var signers []signer
	for _, name := range from {
		us := b.utxos[name]
		if len(us) == 0 {
			b.t.Fatalf("chaintest: %q has no UTXOs to spend", name)
		}
		for _, u := range us {
			tx.Inputs = append(tx.Inputs, chain.TxIn{Prev: u.op, Sequence: ^uint32(0)})
			signers = append(signers, signer{key: b.Key(name)})
			inSum += u.value
		}
		b.utxos[name] = nil
	}
	var outSum chain.Amount
	for _, o := range outs {
		tx.Outputs = append(tx.Outputs, chain.TxOut{
			Value:    o.Value,
			PkScript: script.PayToAddr(b.Addr(o.Name)),
		})
		outSum += o.Value
	}
	if outSum > inSum {
		b.t.Fatalf("chaintest: outputs %v exceed inputs %v", outSum, inSum)
	}
	for i := range tx.Inputs {
		sig := signers[i].key.Sign(chain.SigHash(tx, i))
		tx.Inputs[i].SigScript = script.SigScript(sig, signers[i].key.PubKey())
	}
	txid := tx.TxID()
	for i, o := range outs {
		b.utxos[o.Name] = append(b.utxos[o.Name], utxo{
			op:    chain.OutPoint{TxID: txid, Index: uint32(i)},
			value: o.Value,
		})
	}
	b.pending = append(b.pending, tx)
	return tx
}

// Mine flushes pending transactions into n blocks mined to "miner", the
// first carrying the pending set and the rest empty (for advancing time).
func (b *Builder) Mine(n int) {
	b.t.Helper()
	for i := 0; i < n; i++ {
		b.Coinbase("miner")
	}
}

// MustOut returns the outpoint of output idx of tx.
func MustOut(tx *chain.Tx, idx uint32) chain.OutPoint {
	if int(idx) >= len(tx.Outputs) {
		panic(fmt.Sprintf("chaintest: tx has %d outputs, want index %d", len(tx.Outputs), idx))
	}
	return chain.OutPoint{TxID: tx.TxID(), Index: idx}
}
