package txgraph

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/par"
	"repro/internal/script"
)

// The streaming build processes the chain in bounded windows of blocks so
// nothing chain-wide is materialized up front: per window, the hash/script
// pre-pass fans out across workers, output addresses are interned across
// fixed hash-prefix shards, and the input-linking pass runs sequentially.
// Final address ids are assigned strictly in first-appearance (block-major
// output) order, so the graph is byte-identical to a fully sequential build
// for every worker count, window size, and block source.

// windowBlocks bounds how many blocks are resident per streaming window.
// With the default simulator block cap (512 txs) a window tops out around
// 64k transactions of scratch state, far below holding the chain.
const windowBlocks = 128

// internShardBits fixes the power-of-two shard count of the address intern
// map. Shards are keyed by the first byte of the address hash, which is
// uniformly distributed, so each shard holds ~1/32 of the address space and
// intern lookups fan out across cores instead of serializing on one map.
const internShardBits = 5

const numInternShards = 1 << internShardBits

// internShard maps an address to its shard by hash prefix.
func internShard(a *address.Address) uint32 {
	return uint32(a.Hash[0]) & (numInternShards - 1)
}

// addrIntern is the sharded address -> AddrID map behind Graph.LookupAddr
// and the streaming intern pass. Ids are assigned by the build; the shards
// only store them.
type addrIntern struct {
	shards [numInternShards]map[address.Address]AddrID
}

func newAddrIntern() *addrIntern {
	ix := &addrIntern{}
	for s := range ix.shards {
		ix.shards[s] = make(map[address.Address]AddrID)
	}
	return ix
}

func (ix *addrIntern) get(a address.Address) (AddrID, bool) {
	id, ok := ix.shards[internShard(&a)][a]
	return id, ok
}

// BuildStream indexes every transaction yielded by src, in order, using the
// bounded-window scan. src may be a disk-backed chain.Reader or an
// in-memory chain's Source; the resulting graph is identical either way,
// and identical for every worker count (workers <= 0 means one per CPU, 1
// is fully sequential).
func BuildStream(src chain.BlockSource, workers int) (*Graph, error) {
	return buildStream(src, workers, windowBlocks)
}

// buildStream is BuildStream with the window size exposed for tests.
func buildStream(src chain.BlockSource, workers, window int) (*Graph, error) {
	if window < 1 {
		window = 1
	}
	w := par.Workers(workers)
	g := &Graph{
		lookup: newAddrIntern(),
		txSeq:  make(map[chain.Hash]TxSeq),
		height: -1,
	}
	win := &windowState{}
	blocks := make([]*chain.Block, 0, window)
	for {
		blocks = blocks[:0]
		for len(blocks) < window {
			b, err := src.NextBlock()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("txgraph: stream block %d: %w", g.height+int64(len(blocks))+1, err)
			}
			blocks = append(blocks, b)
		}
		if len(blocks) == 0 {
			break
		}
		if err := g.addWindow(blocks, w, win); err != nil {
			return nil, err
		}
		if len(blocks) < window {
			break // the source returned io.EOF mid-window
		}
	}
	g.buildAppearanceIndex()
	g.buildSelfChangeIndex(w)
	g.buildFirstReuseIndex(w)
	return g, nil
}

// windowState is the per-window scratch reused across windows so steady-state
// streaming allocates only the arenas that the graph retains.
type windowState struct {
	flat    []flatTx
	ids     []chain.Hash
	outOff  []int   // per tx: offset of its outputs in the slot arrays
	slotSeq []TxSeq // per output slot: the tx it belongs to
	addrs   []address.Address
	hasAddr []bool
	// resolved is the per-slot interned id, or unresolvedID for addresses
	// first seen in this window until the assignment pass fills them in.
	resolved []AddrID
	// bySlot groups output slots by intern shard (CSR layout) so each shard
	// worker walks only its own slots, in ascending slot order.
	shardCnt [numInternShards + 1]int
	bySlot   []int32
	pending  [numInternShards]shardPending
}

type flatTx struct {
	tx     *chain.Tx
	height int64
}

// shardPending accumulates one shard's first-in-window addresses, in slot
// order, plus the final ids the assignment pass gives them.
type shardPending struct {
	addrs []address.Address
	slots []int32
	ids   []AddrID
}

// unresolvedID marks a slot whose address is first interned by this window.
// It can never collide with a real id: assigning it would require 2^32-2
// addresses, which the 32-bit id space already excludes.
const unresolvedID = NoAddr - 1

// grow returns s resized to n, reallocating only when capacity is short.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// addWindow indexes one window of blocks: parallel pre-pass, sharded
// intern, then the sequential link pass.
func (g *Graph) addWindow(blocks []*chain.Block, workers int, win *windowState) error {
	// Flatten the window into block-major order and size its arenas.
	win.flat = win.flat[:0]
	totalIns, totalOuts := 0, 0
	for _, b := range blocks {
		g.height++
		for _, tx := range b.Txs {
			win.flat = append(win.flat, flatTx{tx, g.height})
			if !tx.IsCoinbase() {
				totalIns += len(tx.Inputs)
			}
			totalOuts += len(tx.Outputs)
		}
	}
	n := len(win.flat)
	win.ids = grow(win.ids, n)
	win.outOff = grow(win.outOff, n+1)
	win.slotSeq = grow(win.slotSeq, totalOuts)
	win.addrs = grow(win.addrs, totalOuts)
	win.hasAddr = grow(win.hasAddr, totalOuts)
	win.resolved = grow(win.resolved, totalOuts)
	win.outOff[0] = 0
	seqBase := TxSeq(len(g.txs))
	for i, f := range win.flat {
		off := win.outOff[i]
		win.outOff[i+1] = off + len(f.tx.Outputs)
		for j := range f.tx.Outputs {
			win.slotSeq[off+j] = seqBase + TxSeq(i)
		}
	}

	// Parallel pre-pass: tx hashing and output-script address extraction.
	// Workers own disjoint index ranges of the window arenas, so the result
	// is deterministic and race-free by construction.
	par.ForEach(n, workers, func(start, end int) {
		for i := start; i < end; i++ {
			tx := win.flat[i].tx
			win.ids[i] = tx.TxID()
			base := win.outOff[i]
			for j, out := range tx.Outputs {
				a, err := script.ExtractAddress(out.PkScript)
				if err != nil {
					win.hasAddr[base+j] = false
					continue
				}
				win.addrs[base+j] = a
				win.hasAddr[base+j] = true
			}
		}
	})

	g.internWindow(totalOuts, workers, win)

	// Sequential link pass in block-major order. The arenas back every
	// TxInfo of this window with eight exact-capacity allocations that the
	// graph retains; appends never reallocate, so the subslices stay valid.
	ar := &txArena{
		inAddrs:  make([]AddrID, 0, totalIns),
		inVals:   make([]chain.Amount, 0, totalIns),
		inSrc:    make([]TxSeq, 0, totalIns),
		inSrcOut: make([]uint32, 0, totalIns),
		outAddrs: make([]AddrID, 0, totalOuts),
		outVals:  make([]chain.Amount, 0, totalOuts),
		spentBy:  make([]TxSeq, 0, totalOuts),
		spentIn:  make([]uint32, 0, totalOuts),
	}
	for i, f := range win.flat {
		if err := g.addTx(f.tx, f.height, win, i, ar); err != nil {
			return fmt.Errorf("txgraph: block %d: %w", f.height, err)
		}
	}
	return nil
}

// internWindow resolves every output slot's address to its final id. Known
// addresses resolve with a sharded parallel lookup; addresses first seen in
// this window are assigned fresh ids sequentially in slot (first
// appearance) order — exactly the order a sequential build would intern
// them in — and then inserted back into their shards in parallel.
func (g *Graph) internWindow(totalOuts, workers int, win *windowState) {
	// Bucket slots by shard (counting sort, stable in slot order).
	for s := range win.shardCnt {
		win.shardCnt[s] = 0
	}
	for slot := 0; slot < totalOuts; slot++ {
		if !win.hasAddr[slot] {
			win.resolved[slot] = NoAddr
			continue
		}
		win.shardCnt[internShard(&win.addrs[slot])+1]++
	}
	for s := 0; s < numInternShards; s++ {
		win.shardCnt[s+1] += win.shardCnt[s]
	}
	win.bySlot = grow(win.bySlot, win.shardCnt[numInternShards])
	var cur [numInternShards]int
	for s := range cur {
		cur[s] = win.shardCnt[s]
	}
	for slot := 0; slot < totalOuts; slot++ {
		if !win.hasAddr[slot] {
			continue
		}
		s := internShard(&win.addrs[slot])
		win.bySlot[cur[s]] = int32(slot)
		cur[s]++
	}

	// Phase A (parallel per shard): resolve known addresses, collect the
	// window's new addresses per shard in slot order.
	par.ForEach(numInternShards, workers, func(start, end int) {
		for s := start; s < end; s++ {
			m := g.lookup.shards[s]
			p := &win.pending[s]
			p.addrs = p.addrs[:0]
			p.slots = p.slots[:0]
			var seen map[address.Address]struct{}
			for _, slot := range win.bySlot[win.shardCnt[s]:win.shardCnt[s+1]] {
				a := win.addrs[slot]
				if id, ok := m[a]; ok {
					win.resolved[slot] = id
					continue
				}
				win.resolved[slot] = unresolvedID
				if seen == nil {
					seen = make(map[address.Address]struct{})
				}
				if _, dup := seen[a]; dup {
					continue
				}
				seen[a] = struct{}{}
				p.addrs = append(p.addrs, a)
				p.slots = append(p.slots, slot)
			}
		}
	})

	// Assignment (sequential): merge the shards' new addresses by first
	// slot and issue dense ids in that order. This is the only serial part
	// of interning and touches new addresses only.
	type newAddr struct {
		shard uint32
		idx   int32
	}
	var fresh []newAddr
	for s := range win.pending {
		p := &win.pending[s]
		p.ids = grow(p.ids, len(p.addrs))
		for i := range p.addrs {
			fresh = append(fresh, newAddr{uint32(s), int32(i)})
		}
	}
	sort.Slice(fresh, func(i, j int) bool {
		a, b := fresh[i], fresh[j]
		return win.pending[a.shard].slots[a.idx] < win.pending[b.shard].slots[b.idx]
	})
	for _, f := range fresh {
		p := &win.pending[f.shard]
		id := AddrID(len(g.addrs))
		g.addrs = append(g.addrs, p.addrs[f.idx])
		// An address is always interned at its first appearance: inputs
		// only ever resolve to addresses interned by an earlier output.
		g.firstSeen = append(g.firstSeen, win.slotSeq[p.slots[f.idx]])
		p.ids[f.idx] = id
	}

	// Phase B (parallel per shard): publish the new ids into the shard maps
	// and fill the slots left unresolved by phase A.
	par.ForEach(numInternShards, workers, func(start, end int) {
		for s := start; s < end; s++ {
			m := g.lookup.shards[s]
			p := &win.pending[s]
			for i, a := range p.addrs {
				m[a] = p.ids[i]
			}
			for _, slot := range win.bySlot[win.shardCnt[s]:win.shardCnt[s+1]] {
				if win.resolved[slot] == unresolvedID {
					win.resolved[slot] = m[win.addrs[slot]]
				}
			}
		}
	})
}

// txArena backs every TxInfo's slices of one window with eight allocations
// instead of eight per transaction. Capacities are exact, so appends never
// reallocate and the subslices handed to TxInfo stay valid.
type txArena struct {
	inAddrs  []AddrID
	inVals   []chain.Amount
	inSrc    []TxSeq
	inSrcOut []uint32
	outAddrs []AddrID
	outVals  []chain.Amount
	spentBy  []TxSeq
	spentIn  []uint32
}

func (g *Graph) addTx(tx *chain.Tx, height int64, win *windowState, winIdx int, ar *txArena) error {
	seq := TxSeq(len(g.txs))
	info := TxInfo{
		ID:       win.ids[winIdx],
		Height:   height,
		Coinbase: tx.IsCoinbase(),
	}

	if !info.Coinbase {
		base := len(ar.inAddrs)
		n := len(tx.Inputs)
		ar.inAddrs = ar.inAddrs[:base+n]
		ar.inVals = ar.inVals[:base+n]
		ar.inSrc = ar.inSrc[:base+n]
		ar.inSrcOut = ar.inSrcOut[:base+n]
		info.InputAddrs = ar.inAddrs[base : base+n : base+n]
		info.InputValues = ar.inVals[base : base+n : base+n]
		info.InputSrc = ar.inSrc[base : base+n : base+n]
		info.InputSrcOut = ar.inSrcOut[base : base+n : base+n]
		for i, in := range tx.Inputs {
			srcSeq, ok := g.txSeq[in.Prev.TxID]
			if !ok {
				return fmt.Errorf("input %d references unknown tx %s", i, in.Prev.TxID)
			}
			src := &g.txs[srcSeq]
			if int(in.Prev.Index) >= len(src.OutputAddrs) {
				return fmt.Errorf("input %d references output %d of tx with %d outputs",
					i, in.Prev.Index, len(src.OutputAddrs))
			}
			if src.SpentBy[in.Prev.Index] != NoTx {
				return fmt.Errorf("input %d double-spends %s", i, in.Prev)
			}
			src.SpentBy[in.Prev.Index] = seq
			src.SpentByIn[in.Prev.Index] = uint32(i)
			info.InputAddrs[i] = src.OutputAddrs[in.Prev.Index]
			info.InputValues[i] = src.OutputValues[in.Prev.Index]
			info.InputSrc[i] = srcSeq
			info.InputSrcOut[i] = in.Prev.Index
		}
	}

	base := len(ar.outAddrs)
	n := len(tx.Outputs)
	ar.outAddrs = ar.outAddrs[:base+n]
	ar.outVals = ar.outVals[:base+n]
	ar.spentBy = ar.spentBy[:base+n]
	ar.spentIn = ar.spentIn[:base+n]
	info.OutputAddrs = ar.outAddrs[base : base+n : base+n]
	info.OutputValues = ar.outVals[base : base+n : base+n]
	info.SpentBy = ar.spentBy[base : base+n : base+n]
	info.SpentByIn = ar.spentIn[base : base+n : base+n]
	winBase := win.outOff[winIdx]
	for i, out := range tx.Outputs {
		info.OutputValues[i] = out.Value
		info.SpentBy[i] = NoTx
		info.OutputAddrs[i] = win.resolved[winBase+i]
	}

	info.SelfChange = computeSelfChange(&info)

	g.txs = append(g.txs, info)
	g.txSeq[info.ID] = seq
	return nil
}
