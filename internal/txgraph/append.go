package txgraph

import (
	"repro/internal/chain"
	"repro/internal/par"
)

// Appender grows a Graph one block at a time — the incremental form of the
// streaming build that `fistful serve` ingests with. Each AppendBlock runs
// the same window machinery as BuildStream over a single-block window (so
// intern order, tx sequence numbers, and every TxInfo are byte-identical to
// a batch build over the same prefix) and then maintains the derived
// per-address state incrementally instead of by chain-wide passes:
//
//   - appearance lists: receives and (per-tx deduplicated) spends append in
//     sequence order, exactly the order the batch counting pass emits;
//   - firstSeen: assigned at intern time, as in the batch build;
//   - firstSelfChange: sequence numbers only ascend, so the first write is
//     the minimum the batch atomic-min pass would compute;
//   - firstReuse: the first receive strictly after firstSeen, observed the
//     moment it happens.
//
// The CSR form of the appearance index that Graph's accessors read is
// materialized on demand by Refresh — O(total appearances), reusing its
// backing arrays — so per-block apply stays O(block) and the flatten cost is
// paid once per published snapshot rather than per block.
//
// An Appender is not safe for concurrent use; serve's ingest loop owns it.
type Appender struct {
	g       *Graph
	workers int
	win     windowState
	window  []*chain.Block // single-element scratch for addWindow

	// Per-address appearance lists, indexed by AddrID in step with g.addrs.
	recvs  [][]TxSeq
	spends [][]TxSeq
}

// NewAppender returns an Appender over an empty graph. workers sizes the
// per-block pre-pass and the Refresh flatten (<= 0 means one per CPU).
func NewAppender(workers int) *Appender {
	return &Appender{
		g: &Graph{
			lookup: newAddrIntern(),
			txSeq:  make(map[chain.Hash]TxSeq),
			height: -1,
		},
		workers: par.Workers(workers),
	}
}

// AppendBlock indexes one block and updates every incremental index. Blocks
// must arrive in height order, each spending only outputs created earlier —
// what a validated chain always yields.
func (a *Appender) AppendBlock(b *chain.Block) error {
	g := a.g
	base := len(g.txs)
	a.window = append(a.window[:0], b)
	if err := g.addWindow(a.window, a.workers, &a.win); err != nil {
		return err
	}

	// Extend the per-address state for addresses first interned by this
	// block. firstSeen is already appended by the intern pass itself.
	n := len(g.addrs)
	for len(a.recvs) < n {
		a.recvs = append(a.recvs, nil)
		a.spends = append(a.spends, nil)
		g.firstSelfChange = append(g.firstSelfChange, NoTx)
		g.firstReuse = append(g.firstReuse, NoTx)
	}

	for i := base; i < len(g.txs); i++ {
		tx := &g.txs[i]
		seq := TxSeq(i)
		for _, id := range tx.InputAddrs {
			if id == NoAddr {
				continue
			}
			// Per-tx dedup: an address spending several outputs of one tx
			// appears once, matching buildAppearanceIndex's lastSpend marker.
			if s := a.spends[id]; len(s) > 0 && s[len(s)-1] == seq {
				continue
			}
			a.spends[id] = append(a.spends[id], seq)
		}
		for _, id := range tx.OutputAddrs {
			if id == NoAddr {
				continue
			}
			a.recvs[id] = append(a.recvs[id], seq)
			if g.firstReuse[id] == NoTx && seq > g.firstSeen[id] {
				g.firstReuse[id] = seq
			}
		}
		if tx.SelfChange {
			for _, out := range tx.OutputAddrs {
				if out != NoAddr && g.firstSelfChange[out] == NoTx && txHasInputAddr(tx, out) {
					g.firstSelfChange[out] = seq
				}
			}
		}
	}
	return nil
}

// Graph returns the live graph. Transaction-level accessors (Tx, LookupTx,
// FirstSeen, FirstSelfChange, FirstReuse, Height) are always current; the
// CSR-backed accessors (Recvs, Spends, NumSpends, IsSink, and anything built
// on them) reflect the last Refresh.
func (a *Appender) Graph() *Graph { return a.g }

// Refresh flattens the per-address appearance lists into the graph's CSR
// arrays and returns the graph, after which every Graph accessor answers as
// if the graph had been batch-built over the blocks appended so far. Backing
// arrays are reused across calls once capacity stabilizes.
func (a *Appender) Refresh() *Graph {
	g := a.g
	n := len(g.addrs)
	g.recvOff = grow(g.recvOff, n+1)
	g.spendOff = grow(g.spendOff, n+1)
	g.recvOff[0], g.spendOff[0] = 0, 0
	for i := 0; i < n; i++ {
		g.recvOff[i+1] = g.recvOff[i] + uint32(len(a.recvs[i]))
		g.spendOff[i+1] = g.spendOff[i] + uint32(len(a.spends[i]))
	}
	g.recvTxs = grow(g.recvTxs, int(g.recvOff[n]))
	g.spendTxs = grow(g.spendTxs, int(g.spendOff[n]))
	// A batch build allocates the CSR arrays even when empty; match it so
	// equivalence is reflect.DeepEqual-strict, not just element-wise.
	if g.recvTxs == nil {
		g.recvTxs = make([]TxSeq, 0)
	}
	if g.spendTxs == nil {
		g.spendTxs = make([]TxSeq, 0)
	}
	par.ForEach(n, a.workers, func(start, end int) {
		for i := start; i < end; i++ {
			copy(g.recvTxs[g.recvOff[i]:g.recvOff[i+1]], a.recvs[i])
			copy(g.spendTxs[g.spendOff[i]:g.spendOff[i+1]], a.spends[i])
		}
	})
	return g
}
