package txgraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/par"
)

// The graph's on-disk shape (the checkpoint's GRPH section payload — see
// docs/FORMATS.md) is the monotone state only: the address table with its
// per-address first-appearance indexes, and every TxInfo. Everything else a
// live Appender holds is derivable deterministically on restore — the intern
// shards from the address table, the tx-id map from the TxInfo ids, and the
// per-address appearance lists by replaying the serialized transactions in
// order — so the encoding stays compact and, crucially, contains no
// map-iteration-order bytes: the same graph always serializes identically.

// graphStateVersion guards the GRPH payload layout; bump on any change.
const graphStateVersion = 1

// txFlag bits in the per-transaction flags byte.
const (
	txFlagCoinbase   = 1 << 0
	txFlagSelfChange = 1 << 1
)

// WriteState serializes the graph's monotone state. It must not run
// concurrently with appends: call it from the ingest goroutine, or on a
// frozen graph (see Appender.Freeze).
func (g *Graph) WriteState(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	totalIns, totalOuts := 0, 0
	for i := range g.txs {
		totalIns += len(g.txs[i].InputAddrs)
		totalOuts += len(g.txs[i].OutputAddrs)
	}

	var hdr [44]byte
	binary.LittleEndian.PutUint32(hdr[0:4], graphStateVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(g.addrs)))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(g.txs)))
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(totalIns))
	binary.LittleEndian.PutUint64(hdr[28:36], uint64(totalOuts))
	binary.LittleEndian.PutUint64(hdr[36:44], uint64(g.height))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("txgraph: write state header: %w", err)
	}

	for i := range g.addrs {
		a := &g.addrs[i]
		if err := bw.WriteByte(a.Version); err != nil {
			return fmt.Errorf("txgraph: write address table: %w", err)
		}
		if _, err := bw.Write(a.Hash[:]); err != nil {
			return fmt.Errorf("txgraph: write address table: %w", err)
		}
	}
	if err := writeTxSeqs(bw, g.firstSeen); err != nil {
		return fmt.Errorf("txgraph: write firstSeen: %w", err)
	}
	if err := writeTxSeqs(bw, g.firstSelfChange); err != nil {
		return fmt.Errorf("txgraph: write firstSelfChange: %w", err)
	}
	if err := writeTxSeqs(bw, g.firstReuse); err != nil {
		return fmt.Errorf("txgraph: write firstReuse: %w", err)
	}

	var rec [17]byte // ID is written separately; this holds height + flags
	for i := range g.txs {
		t := &g.txs[i]
		if _, err := bw.Write(t.ID[:]); err != nil {
			return fmt.Errorf("txgraph: write tx %d: %w", i, err)
		}
		binary.LittleEndian.PutUint64(rec[0:8], uint64(t.Height))
		var flags byte
		if t.Coinbase {
			flags |= txFlagCoinbase
		}
		if t.SelfChange {
			flags |= txFlagSelfChange
		}
		rec[8] = flags
		binary.LittleEndian.PutUint32(rec[9:13], uint32(len(t.InputAddrs)))
		binary.LittleEndian.PutUint32(rec[13:17], uint32(len(t.OutputAddrs)))
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("txgraph: write tx %d: %w", i, err)
		}
		var quad [16]byte
		for j := range t.InputAddrs {
			binary.LittleEndian.PutUint32(quad[0:4], uint32(t.InputAddrs[j]))
			binary.LittleEndian.PutUint64(quad[4:12], uint64(t.InputValues[j]))
			binary.LittleEndian.PutUint32(quad[12:16], uint32(t.InputSrc[j]))
			if _, err := bw.Write(quad[:]); err != nil {
				return fmt.Errorf("txgraph: write tx %d inputs: %w", i, err)
			}
			binary.LittleEndian.PutUint32(quad[0:4], t.InputSrcOut[j])
			if _, err := bw.Write(quad[:4]); err != nil {
				return fmt.Errorf("txgraph: write tx %d inputs: %w", i, err)
			}
		}
		for j := range t.OutputAddrs {
			binary.LittleEndian.PutUint32(quad[0:4], uint32(t.OutputAddrs[j]))
			binary.LittleEndian.PutUint64(quad[4:12], uint64(t.OutputValues[j]))
			binary.LittleEndian.PutUint32(quad[12:16], uint32(t.SpentBy[j]))
			if _, err := bw.Write(quad[:]); err != nil {
				return fmt.Errorf("txgraph: write tx %d outputs: %w", i, err)
			}
			binary.LittleEndian.PutUint32(quad[0:4], t.SpentByIn[j])
			if _, err := bw.Write(quad[:4]); err != nil {
				return fmt.Errorf("txgraph: write tx %d outputs: %w", i, err)
			}
		}
	}
	return bw.Flush()
}

// AppenderFromState reads a graph serialized by WriteState and returns an
// Appender positioned to continue appending from the next block, with every
// derived structure — intern shards, tx-id map, per-address appearance lists
// — rebuilt deterministically. Appending the same blocks to the result
// yields a graph byte-identical to one that ingested the whole chain cold;
// the serve package's resume-equivalence test pins that.
//
// The reader is validated structurally (ids in range, spend links
// consistent), so a corrupt or truncated payload fails with an error rather
// than a wrong graph.
func AppenderFromState(r io.Reader, workers int) (*Appender, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [44]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("txgraph: read state header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != graphStateVersion {
		return nil, fmt.Errorf("txgraph: state version %d, want %d", v, graphStateVersion)
	}
	n := int(binary.LittleEndian.Uint64(hdr[4:12]))
	m := int(binary.LittleEndian.Uint64(hdr[12:20]))
	totalIns := int(binary.LittleEndian.Uint64(hdr[20:28]))
	totalOuts := int(binary.LittleEndian.Uint64(hdr[28:36]))
	height := int64(binary.LittleEndian.Uint64(hdr[36:44]))
	if n < 0 || m < 0 || totalIns < 0 || totalOuts < 0 || totalOuts < n {
		return nil, fmt.Errorf("txgraph: implausible state header (addrs=%d txs=%d ins=%d outs=%d)",
			n, m, totalIns, totalOuts)
	}

	g := &Graph{
		addrs:     make([]address.Address, n),
		lookup:    newAddrIntern(),
		txs:       make([]TxInfo, m),
		txSeq:     make(map[chain.Hash]TxSeq, m),
		firstSeen: make([]TxSeq, n),
		height:    height,
	}
	for i := range g.addrs {
		a := &g.addrs[i]
		var err error
		if a.Version, err = br.ReadByte(); err == nil {
			_, err = io.ReadFull(br, a.Hash[:])
		}
		if err != nil {
			return nil, fmt.Errorf("txgraph: read address table: %w", err)
		}
		shard := g.lookup.shards[internShard(a)]
		if _, dup := shard[*a]; dup {
			return nil, fmt.Errorf("txgraph: duplicate address at id %d", i)
		}
		shard[*a] = AddrID(i)
	}
	g.firstSelfChange = make([]TxSeq, n)
	g.firstReuse = make([]TxSeq, n)
	if err := readTxSeqs(br, g.firstSeen); err != nil {
		return nil, fmt.Errorf("txgraph: read firstSeen: %w", err)
	}
	if err := readTxSeqs(br, g.firstSelfChange); err != nil {
		return nil, fmt.Errorf("txgraph: read firstSelfChange: %w", err)
	}
	if err := readTxSeqs(br, g.firstReuse); err != nil {
		return nil, fmt.Errorf("txgraph: read firstReuse: %w", err)
	}

	// One arena per side for the whole prefix, exact capacity, so TxInfo
	// subslices never reallocate — the same invariant the window arenas keep.
	ar := &txArena{
		inAddrs:  make([]AddrID, 0, totalIns),
		inVals:   make([]chain.Amount, 0, totalIns),
		inSrc:    make([]TxSeq, 0, totalIns),
		inSrcOut: make([]uint32, 0, totalIns),
		outAddrs: make([]AddrID, 0, totalOuts),
		outVals:  make([]chain.Amount, 0, totalOuts),
		spentBy:  make([]TxSeq, 0, totalOuts),
		spentIn:  make([]uint32, 0, totalOuts),
	}
	var rec [17]byte
	var quad [16]byte
	for i := 0; i < m; i++ {
		t := &g.txs[i]
		if _, err := io.ReadFull(br, t.ID[:]); err != nil {
			return nil, fmt.Errorf("txgraph: read tx %d: %w", i, err)
		}
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("txgraph: read tx %d: %w", i, err)
		}
		t.Height = int64(binary.LittleEndian.Uint64(rec[0:8]))
		t.Coinbase = rec[8]&txFlagCoinbase != 0
		t.SelfChange = rec[8]&txFlagSelfChange != 0
		nin := int(binary.LittleEndian.Uint32(rec[9:13]))
		nout := int(binary.LittleEndian.Uint32(rec[13:17]))
		if nin > totalIns-len(ar.inAddrs) || nout > totalOuts-len(ar.outAddrs) {
			return nil, fmt.Errorf("txgraph: tx %d overflows declared input/output totals", i)
		}
		if _, dup := g.txSeq[t.ID]; dup {
			return nil, fmt.Errorf("txgraph: duplicate tx id at seq %d", i)
		}
		g.txSeq[t.ID] = TxSeq(i)

		base := len(ar.inAddrs)
		ar.inAddrs = ar.inAddrs[:base+nin]
		ar.inVals = ar.inVals[:base+nin]
		ar.inSrc = ar.inSrc[:base+nin]
		ar.inSrcOut = ar.inSrcOut[:base+nin]
		t.InputAddrs = ar.inAddrs[base : base+nin : base+nin]
		t.InputValues = ar.inVals[base : base+nin : base+nin]
		t.InputSrc = ar.inSrc[base : base+nin : base+nin]
		t.InputSrcOut = ar.inSrcOut[base : base+nin : base+nin]
		for j := 0; j < nin; j++ {
			if _, err := io.ReadFull(br, quad[:]); err != nil {
				return nil, fmt.Errorf("txgraph: read tx %d inputs: %w", i, err)
			}
			t.InputAddrs[j] = AddrID(binary.LittleEndian.Uint32(quad[0:4]))
			t.InputValues[j] = chain.Amount(binary.LittleEndian.Uint64(quad[4:12]))
			t.InputSrc[j] = TxSeq(binary.LittleEndian.Uint32(quad[12:16]))
			if _, err := io.ReadFull(br, quad[:4]); err != nil {
				return nil, fmt.Errorf("txgraph: read tx %d inputs: %w", i, err)
			}
			t.InputSrcOut[j] = binary.LittleEndian.Uint32(quad[0:4])
			if id := t.InputAddrs[j]; id != NoAddr && int(id) >= n {
				return nil, fmt.Errorf("txgraph: tx %d input %d address %d out of range", i, j, id)
			}
			if src := t.InputSrc[j]; int(src) >= i {
				return nil, fmt.Errorf("txgraph: tx %d input %d spends tx %d not earlier in order", i, j, src)
			}
		}

		base = len(ar.outAddrs)
		ar.outAddrs = ar.outAddrs[:base+nout]
		ar.outVals = ar.outVals[:base+nout]
		ar.spentBy = ar.spentBy[:base+nout]
		ar.spentIn = ar.spentIn[:base+nout]
		t.OutputAddrs = ar.outAddrs[base : base+nout : base+nout]
		t.OutputValues = ar.outVals[base : base+nout : base+nout]
		t.SpentBy = ar.spentBy[base : base+nout : base+nout]
		t.SpentByIn = ar.spentIn[base : base+nout : base+nout]
		for j := 0; j < nout; j++ {
			if _, err := io.ReadFull(br, quad[:]); err != nil {
				return nil, fmt.Errorf("txgraph: read tx %d outputs: %w", i, err)
			}
			t.OutputAddrs[j] = AddrID(binary.LittleEndian.Uint32(quad[0:4]))
			t.OutputValues[j] = chain.Amount(binary.LittleEndian.Uint64(quad[4:12]))
			t.SpentBy[j] = TxSeq(binary.LittleEndian.Uint32(quad[12:16]))
			if _, err := io.ReadFull(br, quad[:4]); err != nil {
				return nil, fmt.Errorf("txgraph: read tx %d outputs: %w", i, err)
			}
			t.SpentByIn[j] = binary.LittleEndian.Uint32(quad[0:4])
			if id := t.OutputAddrs[j]; id != NoAddr && int(id) >= n {
				return nil, fmt.Errorf("txgraph: tx %d output %d address %d out of range", i, j, id)
			}
			if sb := t.SpentBy[j]; sb != NoTx && int(sb) >= m {
				return nil, fmt.Errorf("txgraph: tx %d output %d spender %d out of range", i, j, sb)
			}
		}
		// Spend links must agree with the spender recorded on the source
		// output — the cheap cross-check that catches shuffled payloads a
		// per-field range check would miss.
		for j, src := range t.InputSrc {
			so := t.InputSrcOut[j]
			st := &g.txs[src]
			if int(so) >= len(st.SpentBy) || st.SpentBy[so] != TxSeq(i) {
				return nil, fmt.Errorf("txgraph: tx %d input %d spend link inconsistent", i, j)
			}
		}
	}
	if len(ar.inAddrs) != totalIns || len(ar.outAddrs) != totalOuts {
		return nil, fmt.Errorf("txgraph: state declares %d/%d input/output slots, found %d/%d",
			totalIns, totalOuts, len(ar.inAddrs), len(ar.outAddrs))
	}

	a := &Appender{
		g:       g,
		workers: par.Workers(workers),
		recvs:   make([][]TxSeq, n),
		spends:  make([][]TxSeq, n),
	}
	// Replay the appearance lists exactly as AppendBlock maintains them —
	// per-tx spend dedup included — so the restored appender's next Freeze
	// lays out the same CSR a cold ingest would.
	for i := range g.txs {
		t := &g.txs[i]
		seq := TxSeq(i)
		for _, id := range t.InputAddrs {
			if id == NoAddr {
				continue
			}
			if s := a.spends[id]; len(s) > 0 && s[len(s)-1] == seq {
				continue
			}
			a.spends[id] = append(a.spends[id], seq)
		}
		for _, id := range t.OutputAddrs {
			if id == NoAddr {
				continue
			}
			a.recvs[id] = append(a.recvs[id], seq)
		}
	}
	return a, nil
}

// writeTxSeqs emits a []TxSeq as packed little-endian words.
func writeTxSeqs(w io.Writer, xs []TxSeq) error {
	buf := make([]byte, 0, 4096)
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
		if len(buf) == cap(buf) {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// readTxSeqs fills xs from packed little-endian words.
func readTxSeqs(r io.Reader, xs []TxSeq) error {
	buf := make([]byte, 4096)
	for len(xs) > 0 {
		k := len(xs)
		if k > len(buf)/4 {
			k = len(buf) / 4
		}
		if _, err := io.ReadFull(r, buf[:4*k]); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			xs[i] = TxSeq(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		xs = xs[k:]
	}
	return nil
}
