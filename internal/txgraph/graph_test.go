package txgraph

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/chaintest"
)

func build(t *testing.T, b *chaintest.Builder) *Graph {
	t.Helper()
	g, err := Build(b.Chain)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func addrID(t *testing.T, g *Graph, b *chaintest.Builder, name string) AddrID {
	t.Helper()
	id, ok := g.LookupAddr(b.Addr(name))
	if !ok {
		t.Fatalf("address %q not in graph", name)
	}
	return id
}

func TestGraphIndexesSimpleChain(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("alice")
	b.Pay([]string{"alice"}, chaintest.Out{Name: "bob", Value: 20 * chain.Coin},
		chaintest.Out{Name: "alice2", Value: 30 * chain.Coin})
	b.Mine(1)

	g := build(t, b)
	if g.NumTxs() != 3 { // 2 coinbases + 1 payment
		t.Fatalf("NumTxs = %d, want 3", g.NumTxs())
	}
	alice := addrID(t, g, b, "alice")
	bob := addrID(t, g, b, "bob")
	alice2 := addrID(t, g, b, "alice2")

	if len(g.Spends(alice)) != 1 {
		t.Errorf("alice spends = %d, want 1", len(g.Spends(alice)))
	}
	if !g.IsSink(bob) || !g.IsSink(alice2) {
		t.Error("bob and alice2 should be sinks")
	}
	if g.IsSink(alice) {
		t.Error("alice is not a sink")
	}
}

func TestGraphResolvesInputAddressesAndValues(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("alice")
	pay := b.Pay([]string{"alice"}, chaintest.Out{Name: "bob", Value: 50 * chain.Coin})
	b.Mine(1)

	g := build(t, b)
	seq, ok := g.LookupTx(pay.TxID())
	if !ok {
		t.Fatal("payment tx not indexed")
	}
	info := g.Tx(seq)
	alice := addrID(t, g, b, "alice")
	if len(info.InputAddrs) != 1 || info.InputAddrs[0] != alice {
		t.Fatalf("input addrs = %v, want [alice=%d]", info.InputAddrs, alice)
	}
	if info.InputValues[0] != 50*chain.Coin {
		t.Fatalf("input value = %v, want 50 BTC", info.InputValues[0])
	}
}

func TestGraphSpentByLinks(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("alice")
	p1 := b.Pay([]string{"alice"}, chaintest.Out{Name: "bob", Value: 50 * chain.Coin})
	b.Mine(1)
	p2 := b.Pay([]string{"bob"}, chaintest.Out{Name: "carol", Value: 50 * chain.Coin})
	b.Mine(1)

	g := build(t, b)
	s1, _ := g.LookupTx(p1.TxID())
	s2, _ := g.LookupTx(p2.TxID())
	if got := g.Tx(s1).SpentBy[0]; got != s2 {
		t.Fatalf("SpentBy = %v, want %v", got, s2)
	}
	if got := g.Tx(s2).InputSrc[0]; got != s1 {
		t.Fatalf("InputSrc = %v, want %v", got, s1)
	}
	if got := g.Tx(s2).SpentBy[0]; got != NoTx {
		t.Fatalf("unspent output has SpentBy = %v, want NoTx", got)
	}
}

func TestGraphSelfChangeDetection(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("alice")
	// Self-change: alice pays bob and sends change back to her own input
	// address.
	self := b.Pay([]string{"alice"},
		chaintest.Out{Name: "bob", Value: 10 * chain.Coin},
		chaintest.Out{Name: "alice", Value: 40 * chain.Coin})
	b.Mine(1)
	fresh := b.Pay([]string{"alice"},
		chaintest.Out{Name: "carol", Value: 10 * chain.Coin},
		chaintest.Out{Name: "aliceChange", Value: 30 * chain.Coin})
	b.Mine(1)

	g := build(t, b)
	s1, _ := g.LookupTx(self.TxID())
	if !g.Tx(s1).HasSelfChange() {
		t.Error("self-change tx not detected")
	}
	s2, _ := g.LookupTx(fresh.TxID())
	if g.Tx(s2).HasSelfChange() {
		t.Error("fresh-change tx misreported as self-change")
	}
}

func TestGraphFirstSeenAndRecvOrder(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("alice")
	p1 := b.Pay([]string{"alice"}, chaintest.Out{Name: "bob", Value: 10 * chain.Coin},
		chaintest.Out{Name: "rest", Value: 40 * chain.Coin})
	b.Mine(1)
	p2 := b.Pay([]string{"rest"}, chaintest.Out{Name: "bob", Value: 5 * chain.Coin},
		chaintest.Out{Name: "rest2", Value: 35 * chain.Coin})
	b.Mine(1)

	g := build(t, b)
	bob := addrID(t, g, b, "bob")
	s1, _ := g.LookupTx(p1.TxID())
	s2, _ := g.LookupTx(p2.TxID())
	if g.FirstSeen(bob) != s1 {
		t.Fatalf("FirstSeen(bob) = %v, want %v", g.FirstSeen(bob), s1)
	}
	recvs := g.Recvs(bob)
	if len(recvs) != 2 || recvs[0] != s1 || recvs[1] != s2 {
		t.Fatalf("Recvs(bob) = %v, want [%v %v]", recvs, s1, s2)
	}
}

func TestGraphBalances(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("alice")
	b.Pay([]string{"alice"}, chaintest.Out{Name: "bob", Value: 20 * chain.Coin},
		chaintest.Out{Name: "carol", Value: 29 * chain.Coin}) // 1 BTC fee
	b.Coinbase("miner")

	g := build(t, b)
	bal := g.Balances()
	check := func(name string, want chain.Amount) {
		t.Helper()
		id := addrID(t, g, b, name)
		if bal[id] != want {
			t.Errorf("balance(%s) = %v, want %v", name, bal[id], want)
		}
	}
	check("alice", 0)
	check("bob", 20*chain.Coin)
	check("carol", 29*chain.Coin)
	check("miner", 51*chain.Coin) // subsidy + 1 BTC fee

	var total chain.Amount
	for _, v := range bal {
		total += v
	}
	if total != b.Chain.UTXO().Total() {
		t.Fatalf("sum of balances %v != UTXO total %v", total, b.Chain.UTXO().Total())
	}
}

func TestGraphCoinbaseHasNoInputs(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("alice")
	g := build(t, b)
	info := g.Tx(0)
	if !info.Coinbase {
		t.Fatal("tx 0 should be coinbase")
	}
	if len(info.InputAddrs) != 0 {
		t.Fatalf("coinbase has %d input addrs", len(info.InputAddrs))
	}
}

func TestGraphMultiInputTx(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("a1")
	b.Coinbase("a2")
	pay := b.Pay([]string{"a1", "a2"}, chaintest.Out{Name: "merchant", Value: 100 * chain.Coin})
	b.Mine(1)

	g := build(t, b)
	seq, _ := g.LookupTx(pay.TxID())
	info := g.Tx(seq)
	if len(info.InputAddrs) != 2 {
		t.Fatalf("input count = %d, want 2", len(info.InputAddrs))
	}
	if info.InputAddrs[0] == info.InputAddrs[1] {
		t.Fatal("distinct addresses interned to same id")
	}
}
