package txgraph

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/chain"
	"repro/internal/chaintest"
)

// streamChain builds a chain whose structure exercises the streaming build:
// address reuse across blocks (so later windows hit earlier windows'
// interned addresses), multi-input spends, multi-output payments, and
// cross-block input linking.
func streamChain(t *testing.T) *chaintest.Builder {
	t.Helper()
	b := chaintest.New(t)
	b.Coinbase("miner")
	for i := 0; i < 6; i++ {
		b.Coinbase(fmt.Sprintf("m%d", i))
	}
	b.Pay([]string{"m0"}, chaintest.Out{Name: "alice", Value: 20 * chain.Coin},
		chaintest.Out{Name: "m0change", Value: 25 * chain.Coin})
	b.Mine(1)
	b.Pay([]string{"m1", "m2"}, chaintest.Out{Name: "bob", Value: 80 * chain.Coin})
	b.Mine(1)
	// Reuse: alice receives again two blocks after her first appearance.
	b.Pay([]string{"m3"}, chaintest.Out{Name: "alice", Value: 10 * chain.Coin},
		chaintest.Out{Name: "carol", Value: 30 * chain.Coin})
	b.Mine(1)
	b.Pay([]string{"alice"}, chaintest.Out{Name: "dave", Value: 25 * chain.Coin})
	b.Pay([]string{"bob", "carol"}, chaintest.Out{Name: "alice", Value: 100 * chain.Coin})
	b.Mine(1)
	b.Pay([]string{"alice", "dave"}, chaintest.Out{Name: "erin", Value: 120 * chain.Coin})
	b.Mine(2)
	return b
}

// graphsEqual asserts two graphs are byte-identical in every observable:
// intern order, per-tx info, appearance CSR, firstSeen.
func graphsEqual(t *testing.T, label string, want, got *Graph) {
	t.Helper()
	if got.NumTxs() != want.NumTxs() || got.NumAddrs() != want.NumAddrs() {
		t.Fatalf("%s: %d txs/%d addrs, want %d/%d", label,
			got.NumTxs(), got.NumAddrs(), want.NumTxs(), want.NumAddrs())
	}
	if got.Height() != want.Height() {
		t.Fatalf("%s: height %d, want %d", label, got.Height(), want.Height())
	}
	if !reflect.DeepEqual(got.addrs, want.addrs) {
		t.Fatalf("%s: address intern order differs", label)
	}
	if !reflect.DeepEqual(got.firstSeen, want.firstSeen) {
		t.Fatalf("%s: firstSeen differs", label)
	}
	for seq := 0; seq < want.NumTxs(); seq++ {
		w, g := want.Tx(TxSeq(seq)), got.Tx(TxSeq(seq))
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("%s: tx %d differs:\nwant %+v\ngot  %+v", label, seq, w, g)
		}
	}
	if !reflect.DeepEqual(got.recvOff, want.recvOff) || !reflect.DeepEqual(got.recvTxs, want.recvTxs) ||
		!reflect.DeepEqual(got.spendOff, want.spendOff) || !reflect.DeepEqual(got.spendTxs, want.spendTxs) {
		t.Fatalf("%s: appearance index differs", label)
	}
	for id := 0; id < want.NumAddrs(); id++ {
		a := want.Addr(AddrID(id))
		gid, ok := got.LookupAddr(a)
		if !ok || gid != AddrID(id) {
			t.Fatalf("%s: LookupAddr(%s) = %d,%v, want %d", label, a, gid, ok, id)
		}
	}
}

// TestBuildStreamMatchesInMemory proves the streamed-from-disk build is
// identical to the in-memory build for every combination of window size and
// worker count, including windows smaller than a block span and windows
// larger than the chain.
func TestBuildStreamMatchesInMemory(t *testing.T) {
	b := streamChain(t)
	want, err := BuildWorkers(b.Chain, 1)
	if err != nil {
		t.Fatal(err)
	}

	var raw bytes.Buffer
	if _, err := b.Chain.WriteTo(&raw); err != nil {
		t.Fatal(err)
	}

	for _, window := range []int{1, 2, 3, 1000} {
		for _, workers := range []int{1, 2, 7} {
			label := fmt.Sprintf("window=%d workers=%d", window, workers)

			sr, err := chain.NewReader(bytes.NewReader(raw.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			fromDisk, err := buildStream(sr, workers, window)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			graphsEqual(t, label+" (disk)", want, fromDisk)

			fromMem, err := buildStream(b.Chain.Source(), workers, window)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			graphsEqual(t, label+" (memory)", want, fromMem)
		}
	}
}

// TestBuildStreamPropagatesSourceErrors proves a failing source surfaces as
// a wrapped error, not a panic or a truncated graph.
func TestBuildStreamPropagatesSourceErrors(t *testing.T) {
	b := streamChain(t)
	var raw bytes.Buffer
	if _, err := b.Chain.WriteTo(&raw); err != nil {
		t.Fatal(err)
	}
	trunc := raw.Bytes()[:raw.Len()-5]
	sr, err := chain.NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildStream(sr, 2); err == nil {
		t.Fatal("truncated stream built without error")
	}
}
