package txgraph

import (
	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/par"
)

// Freeze returns an immutable copy of the graph over the blocks appended so
// far — the substrate an off-thread snapshot publish runs on while the
// ingest goroutine keeps appending. It must be called from the goroutine
// that owns the Appender; the returned graph is then safe to read from any
// goroutine, forever.
//
// The copy is as shallow as the live graph's mutation pattern allows:
//
//   - addrs and firstSeen are write-once at address creation, so the frozen
//     graph aliases the current prefix with full-capacity slices — later
//     appends can never land inside the window. firstSelfChange and
//     firstReuse are copied: an address interned before the freeze records
//     its first self-change or reuse whenever it happens, which mutates
//     existing slots.
//   - TxInfo structs are copied because later appends mutate the SpentBy /
//     SpentByIn entries of earlier transactions (spending their outputs)
//     through shared arenas; those two arenas are duplicated and every
//     frozen TxInfo is redirected into the duplicates. All other TxInfo
//     slices (inputs, output addrs/values) are write-once and stay aliased.
//   - The intern shards and the txSeq map are copied: map reads are not safe
//     against concurrent inserts, and publish-time naming resolves tags via
//     LookupAddr.
//   - The CSR appearance index is built fresh from the appender's live
//     per-address lists, exactly as Refresh lays it out.
func (a *Appender) Freeze() *Graph {
	g := a.g
	n := len(g.addrs)
	m := len(g.txs)
	fg := &Graph{
		addrs:           g.addrs[:n:n],
		firstSeen:       g.firstSeen[:n:n],
		firstSelfChange: append([]TxSeq(nil), g.firstSelfChange[:n]...),
		firstReuse:      append([]TxSeq(nil), g.firstReuse[:n]...),
		height:          g.height,
		lookup:          newAddrIntern(),
		txSeq:           make(map[chain.Hash]TxSeq, m),
	}

	par.ForEach(numInternShards, a.workers, func(start, end int) {
		for s := start; s < end; s++ {
			src := g.lookup.shards[s]
			dst := make(map[address.Address]AddrID, len(src))
			for k, v := range src {
				dst[k] = v
			}
			fg.lookup.shards[s] = dst
		}
	})
	for k, v := range g.txSeq {
		fg.txSeq[k] = v
	}

	fg.txs = make([]TxInfo, m)
	copy(fg.txs, g.txs)
	totalOuts := 0
	for i := range fg.txs {
		totalOuts += len(fg.txs[i].SpentBy)
	}
	spentBy := make([]TxSeq, totalOuts)
	spentIn := make([]uint32, totalOuts)
	off := 0
	for i := range fg.txs {
		t := &fg.txs[i]
		k := len(t.SpentBy)
		copy(spentBy[off:off+k], t.SpentBy)
		copy(spentIn[off:off+k], t.SpentByIn)
		t.SpentBy = spentBy[off : off+k : off+k]
		t.SpentByIn = spentIn[off : off+k : off+k]
		off += k
	}

	fg.recvOff = make([]uint32, n+1)
	fg.spendOff = make([]uint32, n+1)
	for i := 0; i < n; i++ {
		fg.recvOff[i+1] = fg.recvOff[i] + uint32(len(a.recvs[i]))
		fg.spendOff[i+1] = fg.spendOff[i] + uint32(len(a.spends[i]))
	}
	fg.recvTxs = make([]TxSeq, fg.recvOff[n])
	fg.spendTxs = make([]TxSeq, fg.spendOff[n])
	par.ForEach(n, a.workers, func(start, end int) {
		for i := start; i < end; i++ {
			copy(fg.recvTxs[fg.recvOff[i]:fg.recvOff[i+1]], a.recvs[i])
			copy(fg.spendTxs[fg.spendOff[i]:fg.spendOff[i+1]], a.spends[i])
		}
	})
	return fg
}
