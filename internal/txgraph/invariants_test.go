package txgraph_test

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/econ"
	"repro/internal/txgraph"
)

// buildEconGraph generates a small economy once for the invariant tests.
var cached struct {
	w *econ.World
	g *txgraph.Graph
}

func econGraph(t *testing.T) (*econ.World, *txgraph.Graph) {
	t.Helper()
	if cached.g == nil {
		cfg := econ.Small()
		cfg.Blocks = 400
		cfg.Users = 60
		w, err := econ.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := txgraph.Build(w.Chain)
		if err != nil {
			t.Fatal(err)
		}
		cached.w, cached.g = w, g
	}
	return cached.w, cached.g
}

// Invariant: the sum of final per-address balances equals the UTXO total of
// the chain (value conservation through the whole index).
func TestBalancesMatchUTXOSet(t *testing.T) {
	w, g := econGraph(t)
	var total chain.Amount
	for _, v := range g.Balances() {
		total += v
	}
	if total != w.Chain.UTXO().Total() {
		t.Fatalf("graph balances sum %v != UTXO total %v", total, w.Chain.UTXO().Total())
	}
}

// Invariant: SpentBy and InputSrc are mutually consistent: if tx A's output
// j is spent by tx B at input i, then B's input i references (A, j).
func TestSpenderLinksSymmetric(t *testing.T) {
	_, g := econGraph(t)
	for seq := 0; seq < g.NumTxs(); seq++ {
		tx := g.Tx(txgraph.TxSeq(seq))
		for j, spender := range tx.SpentBy {
			if spender == txgraph.NoTx {
				continue
			}
			stx := g.Tx(spender)
			i := int(tx.SpentByIn[j])
			if i >= len(stx.InputSrc) {
				t.Fatalf("tx %d out %d: spender input index %d out of range", seq, j, i)
			}
			if stx.InputSrc[i] != txgraph.TxSeq(seq) || int(stx.InputSrcOut[i]) != j {
				t.Fatalf("tx %d out %d: spender back-reference mismatch", seq, j)
			}
			if stx.InputValues[i] != tx.OutputValues[j] {
				t.Fatalf("tx %d out %d: value mismatch across link", seq, j)
			}
			if stx.InputAddrs[i] != tx.OutputAddrs[j] {
				t.Fatalf("tx %d out %d: address mismatch across link", seq, j)
			}
		}
	}
}

// Invariant: every address's recv/spend lists reference transactions that
// actually mention it, in non-decreasing chain order.
func TestAppearanceListsConsistent(t *testing.T) {
	_, g := econGraph(t)
	for id := 0; id < g.NumAddrs(); id++ {
		aid := txgraph.AddrID(id)
		prev := txgraph.TxSeq(0)
		for k, seq := range g.Recvs(aid) {
			if k > 0 && seq < prev {
				t.Fatalf("addr %d: recvs out of order", id)
			}
			prev = seq
			found := false
			for _, out := range g.Tx(seq).OutputAddrs {
				if out == aid {
					found = true
				}
			}
			if !found {
				t.Fatalf("addr %d: recv tx %d does not pay it", id, seq)
			}
		}
		for _, seq := range g.Spends(aid) {
			found := false
			for _, in := range g.Tx(seq).InputAddrs {
				if in == aid {
					found = true
				}
			}
			if !found {
				t.Fatalf("addr %d: spend tx %d does not spend from it", id, seq)
			}
		}
		// FirstSeen is the minimum of all appearances.
		first := g.FirstSeen(aid)
		if rs := g.Recvs(aid); len(rs) > 0 && rs[0] < first {
			t.Fatalf("addr %d: recv before FirstSeen", id)
		}
		if ss := g.Spends(aid); len(ss) > 0 && ss[0] < first {
			t.Fatalf("addr %d: spend before FirstSeen", id)
		}
	}
}

// Invariant: sinks have no spends and at least one receive; every non-sink
// non-fresh address has spent.
func TestSinkDefinition(t *testing.T) {
	_, g := econGraph(t)
	sinks := 0
	for id := 0; id < g.NumAddrs(); id++ {
		aid := txgraph.AddrID(id)
		if g.IsSink(aid) {
			sinks++
			if len(g.Spends(aid)) != 0 {
				t.Fatalf("sink %d has spends", id)
			}
			if len(g.Recvs(aid)) == 0 {
				t.Fatalf("sink %d never received", id)
			}
		}
	}
	if sinks == 0 {
		t.Fatal("economy produced no sink addresses")
	}
}

// Invariant: FirstReuse is the first receive strictly after the address's
// first appearance — exactly what a linear walk of the receive list finds —
// and NoTx for never-reused addresses. At least some addresses in a real
// economy must be reused (dice betting addresses, service deposit accounts).
func TestFirstReuseMatchesReceiveLists(t *testing.T) {
	_, g := econGraph(t)
	reused := 0
	for id := 0; id < g.NumAddrs(); id++ {
		aid := txgraph.AddrID(id)
		want := txgraph.NoTx
		for _, r := range g.Recvs(aid) {
			if r > g.FirstSeen(aid) {
				want = r
				break
			}
		}
		if got := g.FirstReuse(aid); got != want {
			t.Fatalf("addr %d: FirstReuse %d, receive-list walk %d", id, got, want)
		}
		if want != txgraph.NoTx {
			reused++
		}
	}
	if reused == 0 {
		t.Fatal("economy produced no reused addresses")
	}
}
