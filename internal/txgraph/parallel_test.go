package txgraph_test

import (
	"reflect"
	"testing"

	"repro/internal/txgraph"
)

// The worker count must never change what Build produces: the pre-pass is
// partitioned over disjoint index ranges and the interning pass is
// sequential, so every id, link, and appearance list has to be identical.
func TestBuildWorkerCountInvariant(t *testing.T) {
	w, _ := econGraph(t)
	seq, err := txgraph.BuildWorkers(w.Chain, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		par, err := txgraph.BuildWorkers(w.Chain, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.NumTxs() != seq.NumTxs() || par.NumAddrs() != seq.NumAddrs() {
			t.Fatalf("workers=%d: %d txs/%d addrs, sequential %d/%d",
				workers, par.NumTxs(), par.NumAddrs(), seq.NumTxs(), seq.NumAddrs())
		}
		for i := 0; i < seq.NumTxs(); i++ {
			a, b := seq.Tx(txgraph.TxSeq(i)), par.Tx(txgraph.TxSeq(i))
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("workers=%d: tx %d differs:\nseq: %+v\npar: %+v", workers, i, a, b)
			}
		}
		for id := 0; id < seq.NumAddrs(); id++ {
			aid := txgraph.AddrID(id)
			if seq.Addr(aid) != par.Addr(aid) {
				t.Fatalf("workers=%d: addr %d interned differently", workers, id)
			}
			if seq.FirstSeen(aid) != par.FirstSeen(aid) {
				t.Fatalf("workers=%d: addr %d FirstSeen differs", workers, id)
			}
			if seq.FirstSelfChange(aid) != par.FirstSelfChange(aid) {
				t.Fatalf("workers=%d: addr %d FirstSelfChange differs", workers, id)
			}
			if !reflect.DeepEqual(seq.Recvs(aid), par.Recvs(aid)) {
				t.Fatalf("workers=%d: addr %d recvs differ", workers, id)
			}
			if !reflect.DeepEqual(seq.Spends(aid), par.Spends(aid)) {
				t.Fatalf("workers=%d: addr %d spends differ", workers, id)
			}
		}
	}
}

// The precomputed SelfChange flag must agree with a from-scratch derivation.
func TestSelfChangePrecomputedMatchesDerivation(t *testing.T) {
	_, g := econGraph(t)
	saw := false
	for i := 0; i < g.NumTxs(); i++ {
		tx := g.Tx(txgraph.TxSeq(i))
		want := false
		if !tx.Coinbase {
		derive:
			for _, out := range tx.OutputAddrs {
				if out == txgraph.NoAddr {
					continue
				}
				for _, in := range tx.InputAddrs {
					if in == out {
						want = true
						break derive
					}
				}
			}
		}
		if tx.HasSelfChange() != want {
			t.Fatalf("tx %d: SelfChange=%v, derivation says %v", i, tx.SelfChange, want)
		}
		saw = saw || want
	}
	if !saw {
		t.Fatal("economy produced no self-change transactions to check")
	}
}

// The precomputed per-address first-self-change index must agree with a
// sequential replay of the chain — the exact state the change classifier's
// temporal replay used to thread through its scan.
func TestFirstSelfChangeMatchesReplay(t *testing.T) {
	_, g := econGraph(t)
	want := make([]txgraph.TxSeq, g.NumAddrs())
	for i := range want {
		want[i] = txgraph.NoTx
	}
	for i := 0; i < g.NumTxs(); i++ {
		tx := g.Tx(txgraph.TxSeq(i))
		if !tx.HasSelfChange() {
			continue
		}
		for _, out := range tx.OutputAddrs {
			if out == txgraph.NoAddr || want[out] != txgraph.NoTx {
				continue
			}
			for _, in := range tx.InputAddrs {
				if in == out {
					want[out] = txgraph.TxSeq(i)
					break
				}
			}
		}
	}
	saw := 0
	for id := range want {
		if got := g.FirstSelfChange(txgraph.AddrID(id)); got != want[id] {
			t.Fatalf("addr %d: FirstSelfChange=%v, replay says %v", id, got, want[id])
		}
		if want[id] != txgraph.NoTx {
			saw++
		}
	}
	if saw == 0 {
		t.Fatal("economy produced no self-change addresses to check")
	}
}

// NumSpends must agree with the materialized slice.
func TestNumSpendsMatchesSlice(t *testing.T) {
	_, g := econGraph(t)
	for id := 0; id < g.NumAddrs(); id++ {
		aid := txgraph.AddrID(id)
		if g.NumSpends(aid) != len(g.Spends(aid)) {
			t.Fatalf("addr %d: NumSpends=%d, len(Spends)=%d", id, g.NumSpends(aid), len(g.Spends(aid)))
		}
	}
}
