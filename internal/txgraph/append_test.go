package txgraph

import (
	"fmt"
	"io"
	"reflect"
	"testing"

	"repro/internal/chain"
)

// prefixSource iterates a block-slice prefix; the test's stand-in for "the
// same chain truncated at height H".
type prefixSource struct {
	blocks []*chain.Block
	next   int
}

func (p *prefixSource) NextBlock() (*chain.Block, error) {
	if p.next >= len(p.blocks) {
		return nil, io.EOF
	}
	b := p.blocks[p.next]
	p.next++
	return b, nil
}

// TestAppenderMatchesBatchAtEveryHeight proves the incremental build is
// byte-identical to a batch BuildStream over the same prefix after every
// single block — the graph-level half of the serve daemon's equivalence
// guarantee. It also covers the derived indexes graphsEqual does not:
// firstSelfChange and firstReuse.
func TestAppenderMatchesBatchAtEveryHeight(t *testing.T) {
	b := streamChain(t)
	blocks := b.Chain.Blocks()

	for _, workers := range []int{1, 4} {
		ap := NewAppender(workers)
		for h, blk := range blocks {
			if err := ap.AppendBlock(blk); err != nil {
				t.Fatalf("workers=%d height=%d: %v", workers, h, err)
			}
			got := ap.Refresh()

			want, err := buildStream(&prefixSource{blocks: blocks[:h+1]}, 1, windowBlocks)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("workers=%d height=%d", workers, h)
			graphsEqual(t, label, want, got)
			if !reflect.DeepEqual(got.firstSelfChange, want.firstSelfChange) {
				t.Fatalf("%s: firstSelfChange differs:\nwant %v\ngot  %v",
					label, want.firstSelfChange, got.firstSelfChange)
			}
			if !reflect.DeepEqual(got.firstReuse, want.firstReuse) {
				t.Fatalf("%s: firstReuse differs:\nwant %v\ngot  %v",
					label, want.firstReuse, got.firstReuse)
			}
		}
	}
}

// TestAppenderRefreshIsRepeatable proves Refresh is idempotent and that
// calling it mid-stream does not disturb later appends (serve publishes
// between blocks, so the flatten must be a pure read of the lists).
func TestAppenderRefreshIsRepeatable(t *testing.T) {
	b := streamChain(t)
	blocks := b.Chain.Blocks()

	ap := NewAppender(2)
	for _, blk := range blocks {
		if err := ap.AppendBlock(blk); err != nil {
			t.Fatal(err)
		}
		ap.Refresh()
		ap.Refresh()
	}
	got := ap.Refresh()
	want, err := buildStream(&prefixSource{blocks: blocks}, 1, windowBlocks)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, "after repeated refresh", want, got)
}
