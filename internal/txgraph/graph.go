// Package txgraph builds the dense in-memory index of the block chain that
// the clustering heuristics and flow trackers operate on. Addresses are
// interned to small integer ids (AddrID) and transactions to sequence
// numbers (TxSeq) so that union-find and the temporal replay in
// internal/cluster run over flat slices instead of hash maps.
//
// The build streams over a chain.BlockSource in bounded windows (see
// stream.go): within each window, transaction hashing and output-script
// address extraction — the only CPU-heavy per-transaction work that needs
// no shared state — run across a worker pool, address interning runs across
// fixed hash-prefix shards with deterministic first-appearance id
// assignment, and the input-linking pass runs sequentially in block-major
// order, so address and transaction ids are identical no matter how many
// workers ran. A final counting pass lays the per-address appearance lists
// out as CSR-style flat arrays (one shared backing array plus offsets)
// instead of one heap slice per address.
package txgraph

import (
	"sync/atomic"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/par"
)

// AddrID is a dense identifier for an interned address.
type AddrID uint32

// NoAddr marks an output with no extractable address (OP_RETURN or
// nonstandard scripts).
const NoAddr = ^AddrID(0)

// TxSeq is a dense identifier for a transaction: its position in the chain's
// total block-major order.
type TxSeq uint32

// NoTx marks an unspent output's spender.
const NoTx = ^TxSeq(0)

// TxInfo is the indexed form of one transaction. Input addresses and values
// are resolved from the outputs they spend, so the heuristics never have to
// chase outpoints.
type TxInfo struct {
	ID       chain.Hash
	Height   int64
	Coinbase bool

	// SelfChange records whether any output address also appears among the
	// input addresses — the "self-change" idiom (23% of 2013-H1 transactions
	// per the paper) that Heuristic 2's condition (3) excludes. It is
	// precomputed by Build so the change classifier's hot path never
	// re-derives it.
	SelfChange bool

	// Inputs, one entry per transaction input.
	InputAddrs  []AddrID
	InputValues []chain.Amount
	InputSrc    []TxSeq  // transaction that created each spent output
	InputSrcOut []uint32 // index of the spent output within InputSrc

	// Outputs, one entry per transaction output.
	OutputAddrs  []AddrID
	OutputValues []chain.Amount
	SpentBy      []TxSeq // spender of each output, or NoTx
	SpentByIn    []uint32
}

// TotalOut returns the sum of output values.
func (t *TxInfo) TotalOut() chain.Amount {
	var s chain.Amount
	for _, v := range t.OutputValues {
		s += v
	}
	return s
}

// HasSelfChange reports whether any output address also appears among the
// input addresses. For graphs produced by Build this is a precomputed flag;
// see TxInfo.SelfChange.
func (t *TxInfo) HasSelfChange() bool { return t.SelfChange }

// computeSelfChange derives the self-change flag once, at index time.
func computeSelfChange(t *TxInfo) bool {
	if t.Coinbase {
		return false
	}
	for _, out := range t.OutputAddrs {
		if out != NoAddr && txHasInputAddr(t, out) {
			return true
		}
	}
	return false
}

// Graph is the full index over a chain.
type Graph struct {
	addrs  []address.Address
	lookup *addrIntern
	txs    []TxInfo
	txSeq  map[chain.Hash]TxSeq

	// Per-address appearance lists in CSR layout: the transactions in which
	// address id received are recvTxs[recvOff[id]:recvOff[id+1]], and
	// likewise for spends. Built by one counting pass + one fill pass so the
	// whole index is two allocations instead of one slice per address.
	recvOff  []uint32
	recvTxs  []TxSeq
	spendOff []uint32
	spendTxs []TxSeq

	firstSeen []TxSeq // per address: first tx (input or output side) it appears in
	// firstSelfChange is, per address, the first transaction that used it as
	// a self-change output (the address appears on both the input and output
	// side), or NoTx if that never happens. Together with the seq-sorted CSR
	// receive lists it makes the change classifier's as-of-time state
	// derivable at any transaction without replaying the prefix, which is
	// what lets the Heuristic 2 scan shard across workers.
	firstSelfChange []TxSeq
	// firstReuse is, per address, the first transaction strictly after the
	// address's first appearance that pays it again, or NoTx if the address
	// is never reused. It is the same pre-pass family as firstSelfChange:
	// the change classifier's temporal replay asks "when was this candidate
	// first reused?" only at the candidate's first appearance, so the
	// per-address answer replaces a linear receive-list walk with an O(1)
	// lookup (see cluster.firstNonExemptReuse).
	firstReuse []TxSeq
	height     int64
}

// Build indexes every transaction in the chain using one worker per CPU for
// the hash/script pre-pass. It returns an error if an input references a
// transaction not seen earlier in block-major order, which a validated chain
// can never produce. The result is identical for any worker count.
func Build(c *chain.Chain) (*Graph, error) { return BuildWorkers(c, 0) }

// BuildWorkers is Build with an explicit parallelism knob: workers <= 0
// means one per CPU, 1 forces the fully sequential path (no goroutines).
// The in-memory chain is indexed through the same streaming window scan
// (stream.go) that disk-backed chains use.
func BuildWorkers(c *chain.Chain, workers int) (*Graph, error) {
	return BuildStream(c.Source(), workers)
}

// buildAppearanceIndex lays out the per-address recv/spend lists in CSR
// form: one counting pass sizes the offsets, one fill pass writes the
// transaction sequences in chain order. Spends are deduplicated per
// transaction (an address spending several outputs in one tx appears once),
// matching the append-time dedup of the old per-address slices.
func (g *Graph) buildAppearanceIndex() {
	n := len(g.addrs)
	g.recvOff = make([]uint32, n+1)
	g.spendOff = make([]uint32, n+1)

	// Counting pass. lastSpend dedups an address's multiple inputs within
	// one transaction; NoTx never collides with a real sequence number.
	lastSpend := make([]TxSeq, n)
	for i := range lastSpend {
		lastSpend[i] = NoTx
	}
	for i := range g.txs {
		tx := &g.txs[i]
		seq := TxSeq(i)
		for _, id := range tx.InputAddrs {
			if id == NoAddr || lastSpend[id] == seq {
				continue
			}
			lastSpend[id] = seq
			g.spendOff[id+1]++
		}
		for _, id := range tx.OutputAddrs {
			if id == NoAddr {
				continue
			}
			g.recvOff[id+1]++
		}
	}
	for i := 0; i < n; i++ {
		g.recvOff[i+1] += g.recvOff[i]
		g.spendOff[i+1] += g.spendOff[i]
	}
	g.recvTxs = make([]TxSeq, g.recvOff[n])
	g.spendTxs = make([]TxSeq, g.spendOff[n])

	// Fill pass, reusing the offset slices as write cursors and the marker
	// array for the same per-tx dedup.
	recvCur := make([]uint32, n)
	spendCur := make([]uint32, n)
	copy(recvCur, g.recvOff[:n])
	copy(spendCur, g.spendOff[:n])
	for i := range lastSpend {
		lastSpend[i] = NoTx
	}
	for i := range g.txs {
		tx := &g.txs[i]
		seq := TxSeq(i)
		for _, id := range tx.InputAddrs {
			if id == NoAddr || lastSpend[id] == seq {
				continue
			}
			lastSpend[id] = seq
			g.spendTxs[spendCur[id]] = seq
			spendCur[id]++
		}
		for _, id := range tx.OutputAddrs {
			if id == NoAddr {
				continue
			}
			g.recvTxs[recvCur[id]] = seq
			recvCur[id]++
		}
	}
}

// buildSelfChangeIndex computes firstSelfChange with a parallel pre-pass:
// workers fold disjoint contiguous transaction ranges into a shared
// atomic-min array. Min is commutative, so the result is identical for every
// worker count. Only transactions whose precomputed SelfChange flag is set
// contribute, which keeps the pass a near-no-op on chains where the idiom is
// rare.
func (g *Graph) buildSelfChangeIndex(workers int) {
	n := len(g.addrs)
	g.firstSelfChange = make([]TxSeq, n)
	for i := range g.firstSelfChange {
		g.firstSelfChange[i] = NoTx
	}
	par.ForEach(len(g.txs), workers, func(start, end int) {
		for i := start; i < end; i++ {
			tx := &g.txs[i]
			if !tx.SelfChange {
				continue
			}
			for _, out := range tx.OutputAddrs {
				if out == NoAddr || !txHasInputAddr(tx, out) {
					continue
				}
				atomicMinTxSeq(&g.firstSelfChange[out], TxSeq(i))
			}
		}
	})
}

// buildFirstReuseIndex computes firstReuse from the CSR receive lists:
// workers scan disjoint address ranges, and each address's answer is the
// first entry of its (seq-ascending) receive list strictly greater than its
// first appearance. The list's leading entries can only equal firstSeen (an
// address is interned at its first appearance, which for receive lists is
// tx granularity), so the scan inspects at most one transaction's worth of
// duplicates before answering — O(1) amortized per address.
func (g *Graph) buildFirstReuseIndex(workers int) {
	n := len(g.addrs)
	g.firstReuse = make([]TxSeq, n)
	par.ForEach(n, workers, func(start, end int) {
		for id := start; id < end; id++ {
			first := g.firstSeen[id]
			g.firstReuse[id] = NoTx
			for _, r := range g.Recvs(AddrID(id)) {
				if r > first {
					g.firstReuse[id] = r
					break
				}
			}
		}
	})
}

// txHasInputAddr reports whether id appears among the transaction's inputs.
func txHasInputAddr(tx *TxInfo, id AddrID) bool {
	for _, in := range tx.InputAddrs {
		if in == id {
			return true
		}
	}
	return false
}

// atomicMinTxSeq lowers *p to seq if seq is smaller. NoTx is the maximum
// TxSeq, so unset entries lose to any real sequence number.
func atomicMinTxSeq(p *TxSeq, seq TxSeq) {
	addr := (*uint32)(p)
	for {
		old := atomic.LoadUint32(addr)
		if uint32(seq) >= old {
			return
		}
		if atomic.CompareAndSwapUint32(addr, old, uint32(seq)) {
			return
		}
	}
}

// NumAddrs returns the number of distinct addresses seen.
func (g *Graph) NumAddrs() int { return len(g.addrs) }

// NumTxs returns the number of indexed transactions.
func (g *Graph) NumTxs() int { return len(g.txs) }

// Height returns the chain height the graph was built from.
func (g *Graph) Height() int64 { return g.height }

// Addr returns the address for an id.
func (g *Graph) Addr(id AddrID) address.Address { return g.addrs[id] }

// Addrs returns the interned address table, indexed by AddrID. On a live
// graph the table is append-only (existing entries are never rewritten); on
// a frozen graph (Appender.Freeze) it is immutable. Callers must not mutate
// it.
func (g *Graph) Addrs() []address.Address { return g.addrs }

// LookupAddr returns the id of an address, if it appears in the chain.
func (g *Graph) LookupAddr(a address.Address) (AddrID, bool) {
	return g.lookup.get(a)
}

// Tx returns the indexed transaction at seq. The pointer aliases internal
// state; callers must not mutate it.
func (g *Graph) Tx(seq TxSeq) *TxInfo { return &g.txs[seq] }

// LookupTx returns the sequence number of a transaction id.
func (g *Graph) LookupTx(id chain.Hash) (TxSeq, bool) {
	seq, ok := g.txSeq[id]
	return seq, ok
}

// Recvs returns the transactions in which the address received an output, in
// chain order. The slice aliases the shared CSR array; callers must not
// mutate it.
func (g *Graph) Recvs(id AddrID) []TxSeq {
	return g.recvTxs[g.recvOff[id]:g.recvOff[id+1]]
}

// Spends returns the transactions in which the address spent, in chain
// order. The slice aliases the shared CSR array; callers must not mutate it.
func (g *Graph) Spends(id AddrID) []TxSeq {
	return g.spendTxs[g.spendOff[id]:g.spendOff[id+1]]
}

// NumSpends returns len(Spends(id)) without constructing the slice.
func (g *Graph) NumSpends(id AddrID) int {
	return int(g.spendOff[id+1] - g.spendOff[id])
}

// FirstSeen returns the first transaction the address appears in.
func (g *Graph) FirstSeen(id AddrID) TxSeq { return g.firstSeen[id] }

// FirstSelfChange returns the first transaction that used the address as a
// self-change output (it appears on both the input and output side), or NoTx
// if the address was never used that way. The index is precomputed by the
// build, so "had this address self-change history as of tx seq" is the O(1)
// comparison FirstSelfChange(id) < seq.
func (g *Graph) FirstSelfChange(id AddrID) TxSeq { return g.firstSelfChange[id] }

// FirstReuse returns the first transaction strictly after the address's
// first appearance that pays the address again, or NoTx if it is never
// reused. Precomputed by the build; the change classifier's temporal replay
// reads it instead of walking the receive list per candidate.
func (g *Graph) FirstReuse(id AddrID) TxSeq { return g.firstReuse[id] }

// IsSink reports whether the address has received coins but never spent any
// — the "sink" addresses the paper counts toward its upper bound on users
// and excludes from "active" balance in Figure 2.
func (g *Graph) IsSink(id AddrID) bool {
	return g.spendOff[id+1] == g.spendOff[id] && g.recvOff[id+1] > g.recvOff[id]
}

// Balances computes the final balance of every address by replaying outputs
// minus spends. Used by the category balance series and tests.
func (g *Graph) Balances() []chain.Amount {
	bal := make([]chain.Amount, len(g.addrs))
	for i := range g.txs {
		tx := &g.txs[i]
		for j, id := range tx.InputAddrs {
			if id != NoAddr {
				bal[id] -= tx.InputValues[j]
			}
		}
		for j, id := range tx.OutputAddrs {
			if id != NoAddr {
				bal[id] += tx.OutputValues[j]
			}
		}
	}
	return bal
}
