// Package txgraph builds the dense in-memory index of the block chain that
// the clustering heuristics and flow trackers operate on. Addresses are
// interned to small integer ids (AddrID) and transactions to sequence
// numbers (TxSeq) so that union-find and the temporal replay in
// internal/cluster run over flat slices instead of hash maps.
package txgraph

import (
	"fmt"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/script"
)

// AddrID is a dense identifier for an interned address.
type AddrID uint32

// NoAddr marks an output with no extractable address (OP_RETURN or
// nonstandard scripts).
const NoAddr = ^AddrID(0)

// TxSeq is a dense identifier for a transaction: its position in the chain's
// total block-major order.
type TxSeq uint32

// NoTx marks an unspent output's spender.
const NoTx = ^TxSeq(0)

// TxInfo is the indexed form of one transaction. Input addresses and values
// are resolved from the outputs they spend, so the heuristics never have to
// chase outpoints.
type TxInfo struct {
	ID       chain.Hash
	Height   int64
	Coinbase bool

	// Inputs, one entry per transaction input.
	InputAddrs  []AddrID
	InputValues []chain.Amount
	InputSrc    []TxSeq  // transaction that created each spent output
	InputSrcOut []uint32 // index of the spent output within InputSrc

	// Outputs, one entry per transaction output.
	OutputAddrs  []AddrID
	OutputValues []chain.Amount
	SpentBy      []TxSeq // spender of each output, or NoTx
	SpentByIn    []uint32
}

// TotalOut returns the sum of output values.
func (t *TxInfo) TotalOut() chain.Amount {
	var s chain.Amount
	for _, v := range t.OutputValues {
		s += v
	}
	return s
}

// HasSelfChange reports whether any output address also appears among the
// input addresses — the "self-change" idiom (23% of 2013-H1 transactions per
// the paper) that Heuristic 2's condition (3) excludes.
func (t *TxInfo) HasSelfChange() bool {
	if t.Coinbase {
		return false
	}
	for _, out := range t.OutputAddrs {
		if out == NoAddr {
			continue
		}
		for _, in := range t.InputAddrs {
			if in == out {
				return true
			}
		}
	}
	return false
}

// Graph is the full index over a chain.
type Graph struct {
	addrs  []address.Address
	lookup map[address.Address]AddrID
	txs    []TxInfo
	txSeq  map[chain.Hash]TxSeq

	recvs  [][]TxSeq // per address: txs in which it received an output, in order
	spends [][]TxSeq // per address: txs in which it spent, in order

	firstSeen []TxSeq // per address: first tx (input or output side) it appears in
	height    int64
}

// Build indexes every transaction in the chain. It returns an error if an
// input references a transaction not seen earlier in block-major order,
// which a validated chain can never produce.
func Build(c *chain.Chain) (*Graph, error) {
	g := &Graph{
		lookup: make(map[address.Address]AddrID),
		txSeq:  make(map[chain.Hash]TxSeq),
		height: c.Height(),
	}
	for height := int64(0); height <= c.Height(); height++ {
		blk := c.BlockAt(height)
		for _, tx := range blk.Txs {
			if err := g.addTx(tx, height); err != nil {
				return nil, fmt.Errorf("txgraph: block %d: %w", height, err)
			}
		}
	}
	return g, nil
}

func (g *Graph) intern(a address.Address) AddrID {
	if id, ok := g.lookup[a]; ok {
		return id
	}
	id := AddrID(len(g.addrs))
	g.addrs = append(g.addrs, a)
	g.lookup[a] = id
	g.recvs = append(g.recvs, nil)
	g.spends = append(g.spends, nil)
	g.firstSeen = append(g.firstSeen, NoTx)
	return id
}

func (g *Graph) addTx(tx *chain.Tx, height int64) error {
	seq := TxSeq(len(g.txs))
	info := TxInfo{
		ID:       tx.TxID(),
		Height:   height,
		Coinbase: tx.IsCoinbase(),
	}

	if !info.Coinbase {
		info.InputAddrs = make([]AddrID, len(tx.Inputs))
		info.InputValues = make([]chain.Amount, len(tx.Inputs))
		info.InputSrc = make([]TxSeq, len(tx.Inputs))
		info.InputSrcOut = make([]uint32, len(tx.Inputs))
		for i, in := range tx.Inputs {
			srcSeq, ok := g.txSeq[in.Prev.TxID]
			if !ok {
				return fmt.Errorf("input %d references unknown tx %s", i, in.Prev.TxID)
			}
			src := &g.txs[srcSeq]
			if int(in.Prev.Index) >= len(src.OutputAddrs) {
				return fmt.Errorf("input %d references output %d of tx with %d outputs",
					i, in.Prev.Index, len(src.OutputAddrs))
			}
			if src.SpentBy[in.Prev.Index] != NoTx {
				return fmt.Errorf("input %d double-spends %s", i, in.Prev)
			}
			src.SpentBy[in.Prev.Index] = seq
			src.SpentByIn[in.Prev.Index] = uint32(i)
			info.InputAddrs[i] = src.OutputAddrs[in.Prev.Index]
			info.InputValues[i] = src.OutputValues[in.Prev.Index]
			info.InputSrc[i] = srcSeq
			info.InputSrcOut[i] = in.Prev.Index
		}
	}

	info.OutputAddrs = make([]AddrID, len(tx.Outputs))
	info.OutputValues = make([]chain.Amount, len(tx.Outputs))
	info.SpentBy = make([]TxSeq, len(tx.Outputs))
	info.SpentByIn = make([]uint32, len(tx.Outputs))
	for i, out := range tx.Outputs {
		info.OutputValues[i] = out.Value
		info.SpentBy[i] = NoTx
		a, err := script.ExtractAddress(out.PkScript)
		if err != nil {
			info.OutputAddrs[i] = NoAddr
			continue
		}
		info.OutputAddrs[i] = g.intern(a)
	}

	// Record appearances after interning everything so ids are stable.
	for _, id := range info.InputAddrs {
		if id == NoAddr {
			continue
		}
		if g.firstSeen[id] == NoTx {
			g.firstSeen[id] = seq
		}
		if n := len(g.spends[id]); n == 0 || g.spends[id][n-1] != seq {
			g.spends[id] = append(g.spends[id], seq)
		}
	}
	for _, id := range info.OutputAddrs {
		if id == NoAddr {
			continue
		}
		if g.firstSeen[id] == NoTx {
			g.firstSeen[id] = seq
		}
		g.recvs[id] = append(g.recvs[id], seq)
	}

	g.txs = append(g.txs, info)
	g.txSeq[info.ID] = seq
	return nil
}

// NumAddrs returns the number of distinct addresses seen.
func (g *Graph) NumAddrs() int { return len(g.addrs) }

// NumTxs returns the number of indexed transactions.
func (g *Graph) NumTxs() int { return len(g.txs) }

// Height returns the chain height the graph was built from.
func (g *Graph) Height() int64 { return g.height }

// Addr returns the address for an id.
func (g *Graph) Addr(id AddrID) address.Address { return g.addrs[id] }

// LookupAddr returns the id of an address, if it appears in the chain.
func (g *Graph) LookupAddr(a address.Address) (AddrID, bool) {
	id, ok := g.lookup[a]
	return id, ok
}

// Tx returns the indexed transaction at seq. The pointer aliases internal
// state; callers must not mutate it.
func (g *Graph) Tx(seq TxSeq) *TxInfo { return &g.txs[seq] }

// LookupTx returns the sequence number of a transaction id.
func (g *Graph) LookupTx(id chain.Hash) (TxSeq, bool) {
	seq, ok := g.txSeq[id]
	return seq, ok
}

// Recvs returns the transactions in which the address received an output, in
// chain order. Callers must not mutate the slice.
func (g *Graph) Recvs(id AddrID) []TxSeq { return g.recvs[id] }

// Spends returns the transactions in which the address spent, in chain
// order. Callers must not mutate the slice.
func (g *Graph) Spends(id AddrID) []TxSeq { return g.spends[id] }

// FirstSeen returns the first transaction the address appears in.
func (g *Graph) FirstSeen(id AddrID) TxSeq { return g.firstSeen[id] }

// IsSink reports whether the address has received coins but never spent any
// — the "sink" addresses the paper counts toward its upper bound on users
// and excludes from "active" balance in Figure 2.
func (g *Graph) IsSink(id AddrID) bool {
	return len(g.spends[id]) == 0 && len(g.recvs[id]) > 0
}

// Balances computes the final balance of every address by replaying outputs
// minus spends. Used by the category balance series and tests.
func (g *Graph) Balances() []chain.Amount {
	bal := make([]chain.Amount, len(g.addrs))
	for i := range g.txs {
		tx := &g.txs[i]
		for j, id := range tx.InputAddrs {
			if id != NoAddr {
				bal[id] -= tx.InputValues[j]
			}
		}
		for j, id := range tx.OutputAddrs {
			if id != NoAddr {
				bal[id] += tx.OutputValues[j]
			}
		}
	}
	return bal
}
