// Package txgraph builds the dense in-memory index of the block chain that
// the clustering heuristics and flow trackers operate on. Addresses are
// interned to small integer ids (AddrID) and transactions to sequence
// numbers (TxSeq) so that union-find and the temporal replay in
// internal/cluster run over flat slices instead of hash maps.
//
// Build is split into two passes. The pre-pass — transaction hashing and
// output-script address extraction, the only CPU-heavy per-transaction work
// that needs no shared state — runs across a worker pool. The interning and
// input-linking pass then runs sequentially in block-major order, so address
// and transaction ids are identical no matter how many workers ran the
// pre-pass. A final counting pass lays the per-address appearance lists out
// as CSR-style flat arrays (one shared backing array plus offsets) instead
// of one heap slice per address.
package txgraph

import (
	"fmt"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/par"
	"repro/internal/script"
)

// AddrID is a dense identifier for an interned address.
type AddrID uint32

// NoAddr marks an output with no extractable address (OP_RETURN or
// nonstandard scripts).
const NoAddr = ^AddrID(0)

// TxSeq is a dense identifier for a transaction: its position in the chain's
// total block-major order.
type TxSeq uint32

// NoTx marks an unspent output's spender.
const NoTx = ^TxSeq(0)

// TxInfo is the indexed form of one transaction. Input addresses and values
// are resolved from the outputs they spend, so the heuristics never have to
// chase outpoints.
type TxInfo struct {
	ID       chain.Hash
	Height   int64
	Coinbase bool

	// SelfChange records whether any output address also appears among the
	// input addresses — the "self-change" idiom (23% of 2013-H1 transactions
	// per the paper) that Heuristic 2's condition (3) excludes. It is
	// precomputed by Build so the change classifier's hot path never
	// re-derives it.
	SelfChange bool

	// Inputs, one entry per transaction input.
	InputAddrs  []AddrID
	InputValues []chain.Amount
	InputSrc    []TxSeq  // transaction that created each spent output
	InputSrcOut []uint32 // index of the spent output within InputSrc

	// Outputs, one entry per transaction output.
	OutputAddrs  []AddrID
	OutputValues []chain.Amount
	SpentBy      []TxSeq // spender of each output, or NoTx
	SpentByIn    []uint32
}

// TotalOut returns the sum of output values.
func (t *TxInfo) TotalOut() chain.Amount {
	var s chain.Amount
	for _, v := range t.OutputValues {
		s += v
	}
	return s
}

// HasSelfChange reports whether any output address also appears among the
// input addresses. For graphs produced by Build this is a precomputed flag;
// see TxInfo.SelfChange.
func (t *TxInfo) HasSelfChange() bool { return t.SelfChange }

// computeSelfChange derives the self-change flag once, at index time.
func computeSelfChange(t *TxInfo) bool {
	if t.Coinbase {
		return false
	}
	for _, out := range t.OutputAddrs {
		if out == NoAddr {
			continue
		}
		for _, in := range t.InputAddrs {
			if in == out {
				return true
			}
		}
	}
	return false
}

// Graph is the full index over a chain.
type Graph struct {
	addrs  []address.Address
	lookup map[address.Address]AddrID
	txs    []TxInfo
	txSeq  map[chain.Hash]TxSeq

	// Per-address appearance lists in CSR layout: the transactions in which
	// address id received are recvTxs[recvOff[id]:recvOff[id+1]], and
	// likewise for spends. Built by one counting pass + one fill pass so the
	// whole index is two allocations instead of one slice per address.
	recvOff  []uint32
	recvTxs  []TxSeq
	spendOff []uint32
	spendTxs []TxSeq

	firstSeen []TxSeq // per address: first tx (input or output side) it appears in
	height    int64
}

// prePass holds the parallel pre-pass results for the whole chain: one
// transaction id per tx and, per output, the extracted address (shared
// arenas indexed through outOff so workers write disjoint ranges).
type prePass struct {
	ids     []chain.Hash
	outOff  []int // per tx: offset of its outputs in the arenas; len = numTxs+1
	addrs   []address.Address
	hasAddr []bool
}

// Build indexes every transaction in the chain using one worker per CPU for
// the hash/script pre-pass. It returns an error if an input references a
// transaction not seen earlier in block-major order, which a validated chain
// can never produce. The result is identical for any worker count.
func Build(c *chain.Chain) (*Graph, error) { return BuildWorkers(c, 0) }

// BuildWorkers is Build with an explicit parallelism knob: workers <= 0
// means one per CPU, 1 forces the fully sequential path (no goroutines).
func BuildWorkers(c *chain.Chain, workers int) (*Graph, error) {
	// Flatten the chain into block-major order and size the arenas.
	type flatTx struct {
		tx     *chain.Tx
		height int64
	}
	var flat []flatTx
	totalIns, totalOuts := 0, 0
	for height := int64(0); height <= c.Height(); height++ {
		for _, tx := range c.BlockAt(height).Txs {
			flat = append(flat, flatTx{tx, height})
			if !tx.IsCoinbase() {
				totalIns += len(tx.Inputs)
			}
			totalOuts += len(tx.Outputs)
		}
	}

	// Parallel pre-pass: tx hashing and output-script address extraction.
	// Workers own disjoint index ranges of shared arenas, so the result is
	// deterministic and race-free by construction.
	pre := prePass{
		ids:     make([]chain.Hash, len(flat)),
		outOff:  make([]int, len(flat)+1),
		addrs:   make([]address.Address, totalOuts),
		hasAddr: make([]bool, totalOuts),
	}
	for i, f := range flat {
		pre.outOff[i+1] = pre.outOff[i] + len(f.tx.Outputs)
	}
	par.ForEach(len(flat), workers, func(start, end int) {
		for i := start; i < end; i++ {
			tx := flat[i].tx
			pre.ids[i] = tx.TxID()
			base := pre.outOff[i]
			for j, out := range tx.Outputs {
				a, err := script.ExtractAddress(out.PkScript)
				if err != nil {
					continue
				}
				pre.addrs[base+j] = a
				pre.hasAddr[base+j] = true
			}
		}
	})

	// Sequential pass: interning and input linking in block-major order.
	g := &Graph{
		lookup: make(map[address.Address]AddrID),
		txSeq:  make(map[chain.Hash]TxSeq, len(flat)),
		height: c.Height(),
	}
	g.txs = make([]TxInfo, 0, len(flat))
	arena := txArena{
		inAddrs:  make([]AddrID, 0, totalIns),
		inVals:   make([]chain.Amount, 0, totalIns),
		inSrc:    make([]TxSeq, 0, totalIns),
		inSrcOut: make([]uint32, 0, totalIns),
		outAddrs: make([]AddrID, 0, totalOuts),
		outVals:  make([]chain.Amount, 0, totalOuts),
		spentBy:  make([]TxSeq, 0, totalOuts),
		spentIn:  make([]uint32, 0, totalOuts),
	}
	for i, f := range flat {
		if err := g.addTx(f.tx, f.height, &pre, i, &arena); err != nil {
			return nil, fmt.Errorf("txgraph: block %d: %w", f.height, err)
		}
	}

	g.buildAppearanceIndex()
	return g, nil
}

// txArena backs every TxInfo's slices with eight chain-wide allocations
// instead of eight per transaction. Capacities are exact, so appends never
// reallocate and the subslices handed to TxInfo stay valid.
type txArena struct {
	inAddrs  []AddrID
	inVals   []chain.Amount
	inSrc    []TxSeq
	inSrcOut []uint32
	outAddrs []AddrID
	outVals  []chain.Amount
	spentBy  []TxSeq
	spentIn  []uint32
}

func (g *Graph) intern(a address.Address, seq TxSeq) AddrID {
	if id, ok := g.lookup[a]; ok {
		return id
	}
	id := AddrID(len(g.addrs))
	g.addrs = append(g.addrs, a)
	g.lookup[a] = id
	// An address is always interned at its first appearance: inputs only
	// ever resolve to addresses interned by an earlier output.
	g.firstSeen = append(g.firstSeen, seq)
	return id
}

func (g *Graph) addTx(tx *chain.Tx, height int64, pre *prePass, preIdx int, ar *txArena) error {
	seq := TxSeq(len(g.txs))
	info := TxInfo{
		ID:       pre.ids[preIdx],
		Height:   height,
		Coinbase: tx.IsCoinbase(),
	}

	if !info.Coinbase {
		base := len(ar.inAddrs)
		n := len(tx.Inputs)
		ar.inAddrs = ar.inAddrs[:base+n]
		ar.inVals = ar.inVals[:base+n]
		ar.inSrc = ar.inSrc[:base+n]
		ar.inSrcOut = ar.inSrcOut[:base+n]
		info.InputAddrs = ar.inAddrs[base : base+n : base+n]
		info.InputValues = ar.inVals[base : base+n : base+n]
		info.InputSrc = ar.inSrc[base : base+n : base+n]
		info.InputSrcOut = ar.inSrcOut[base : base+n : base+n]
		for i, in := range tx.Inputs {
			srcSeq, ok := g.txSeq[in.Prev.TxID]
			if !ok {
				return fmt.Errorf("input %d references unknown tx %s", i, in.Prev.TxID)
			}
			src := &g.txs[srcSeq]
			if int(in.Prev.Index) >= len(src.OutputAddrs) {
				return fmt.Errorf("input %d references output %d of tx with %d outputs",
					i, in.Prev.Index, len(src.OutputAddrs))
			}
			if src.SpentBy[in.Prev.Index] != NoTx {
				return fmt.Errorf("input %d double-spends %s", i, in.Prev)
			}
			src.SpentBy[in.Prev.Index] = seq
			src.SpentByIn[in.Prev.Index] = uint32(i)
			info.InputAddrs[i] = src.OutputAddrs[in.Prev.Index]
			info.InputValues[i] = src.OutputValues[in.Prev.Index]
			info.InputSrc[i] = srcSeq
			info.InputSrcOut[i] = in.Prev.Index
		}
	}

	base := len(ar.outAddrs)
	n := len(tx.Outputs)
	ar.outAddrs = ar.outAddrs[:base+n]
	ar.outVals = ar.outVals[:base+n]
	ar.spentBy = ar.spentBy[:base+n]
	ar.spentIn = ar.spentIn[:base+n]
	info.OutputAddrs = ar.outAddrs[base : base+n : base+n]
	info.OutputValues = ar.outVals[base : base+n : base+n]
	info.SpentBy = ar.spentBy[base : base+n : base+n]
	info.SpentByIn = ar.spentIn[base : base+n : base+n]
	preBase := pre.outOff[preIdx]
	for i, out := range tx.Outputs {
		info.OutputValues[i] = out.Value
		info.SpentBy[i] = NoTx
		if !pre.hasAddr[preBase+i] {
			info.OutputAddrs[i] = NoAddr
			continue
		}
		info.OutputAddrs[i] = g.intern(pre.addrs[preBase+i], seq)
	}

	info.SelfChange = computeSelfChange(&info)

	g.txs = append(g.txs, info)
	g.txSeq[info.ID] = seq
	return nil
}

// buildAppearanceIndex lays out the per-address recv/spend lists in CSR
// form: one counting pass sizes the offsets, one fill pass writes the
// transaction sequences in chain order. Spends are deduplicated per
// transaction (an address spending several outputs in one tx appears once),
// matching the append-time dedup of the old per-address slices.
func (g *Graph) buildAppearanceIndex() {
	n := len(g.addrs)
	g.recvOff = make([]uint32, n+1)
	g.spendOff = make([]uint32, n+1)

	// Counting pass. lastSpend dedups an address's multiple inputs within
	// one transaction; NoTx never collides with a real sequence number.
	lastSpend := make([]TxSeq, n)
	for i := range lastSpend {
		lastSpend[i] = NoTx
	}
	for i := range g.txs {
		tx := &g.txs[i]
		seq := TxSeq(i)
		for _, id := range tx.InputAddrs {
			if id == NoAddr || lastSpend[id] == seq {
				continue
			}
			lastSpend[id] = seq
			g.spendOff[id+1]++
		}
		for _, id := range tx.OutputAddrs {
			if id == NoAddr {
				continue
			}
			g.recvOff[id+1]++
		}
	}
	for i := 0; i < n; i++ {
		g.recvOff[i+1] += g.recvOff[i]
		g.spendOff[i+1] += g.spendOff[i]
	}
	g.recvTxs = make([]TxSeq, g.recvOff[n])
	g.spendTxs = make([]TxSeq, g.spendOff[n])

	// Fill pass, reusing the offset slices as write cursors and the marker
	// array for the same per-tx dedup.
	recvCur := make([]uint32, n)
	spendCur := make([]uint32, n)
	copy(recvCur, g.recvOff[:n])
	copy(spendCur, g.spendOff[:n])
	for i := range lastSpend {
		lastSpend[i] = NoTx
	}
	for i := range g.txs {
		tx := &g.txs[i]
		seq := TxSeq(i)
		for _, id := range tx.InputAddrs {
			if id == NoAddr || lastSpend[id] == seq {
				continue
			}
			lastSpend[id] = seq
			g.spendTxs[spendCur[id]] = seq
			spendCur[id]++
		}
		for _, id := range tx.OutputAddrs {
			if id == NoAddr {
				continue
			}
			g.recvTxs[recvCur[id]] = seq
			recvCur[id]++
		}
	}
}

// NumAddrs returns the number of distinct addresses seen.
func (g *Graph) NumAddrs() int { return len(g.addrs) }

// NumTxs returns the number of indexed transactions.
func (g *Graph) NumTxs() int { return len(g.txs) }

// Height returns the chain height the graph was built from.
func (g *Graph) Height() int64 { return g.height }

// Addr returns the address for an id.
func (g *Graph) Addr(id AddrID) address.Address { return g.addrs[id] }

// LookupAddr returns the id of an address, if it appears in the chain.
func (g *Graph) LookupAddr(a address.Address) (AddrID, bool) {
	id, ok := g.lookup[a]
	return id, ok
}

// Tx returns the indexed transaction at seq. The pointer aliases internal
// state; callers must not mutate it.
func (g *Graph) Tx(seq TxSeq) *TxInfo { return &g.txs[seq] }

// LookupTx returns the sequence number of a transaction id.
func (g *Graph) LookupTx(id chain.Hash) (TxSeq, bool) {
	seq, ok := g.txSeq[id]
	return seq, ok
}

// Recvs returns the transactions in which the address received an output, in
// chain order. The slice aliases the shared CSR array; callers must not
// mutate it.
func (g *Graph) Recvs(id AddrID) []TxSeq {
	return g.recvTxs[g.recvOff[id]:g.recvOff[id+1]]
}

// Spends returns the transactions in which the address spent, in chain
// order. The slice aliases the shared CSR array; callers must not mutate it.
func (g *Graph) Spends(id AddrID) []TxSeq {
	return g.spendTxs[g.spendOff[id]:g.spendOff[id+1]]
}

// NumSpends returns len(Spends(id)) without constructing the slice.
func (g *Graph) NumSpends(id AddrID) int {
	return int(g.spendOff[id+1] - g.spendOff[id])
}

// FirstSeen returns the first transaction the address appears in.
func (g *Graph) FirstSeen(id AddrID) TxSeq { return g.firstSeen[id] }

// IsSink reports whether the address has received coins but never spent any
// — the "sink" addresses the paper counts toward its upper bound on users
// and excludes from "active" balance in Figure 2.
func (g *Graph) IsSink(id AddrID) bool {
	return g.spendOff[id+1] == g.spendOff[id] && g.recvOff[id+1] > g.recvOff[id]
}

// Balances computes the final balance of every address by replaying outputs
// minus spends. Used by the category balance series and tests.
func (g *Graph) Balances() []chain.Amount {
	bal := make([]chain.Amount, len(g.addrs))
	for i := range g.txs {
		tx := &g.txs[i]
		for j, id := range tx.InputAddrs {
			if id != NoAddr {
				bal[id] -= tx.InputValues[j]
			}
		}
		for j, id := range tx.OutputAddrs {
			if id != NoAddr {
				bal[id] += tx.OutputValues[j]
			}
		}
	}
	return bal
}
