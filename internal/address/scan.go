package address

// Scan extracts every valid Base58Check address embedded in free text. The
// tag crawler uses it to harvest self-labeled addresses from forum and
// tag-site pages, mirroring the paper's Section 3.2 collection: candidate
// substrings are located by alphabet membership and then validated by
// checksum, so random Base58-looking strings are rejected.
func Scan(text string) []Address {
	var out []Address
	seen := make(map[Address]struct{})
	n := len(text)
	for i := 0; i < n; {
		if !isBase58(text[i]) {
			i++
			continue
		}
		j := i
		for j < n && isBase58(text[j]) {
			j++
		}
		run := text[i:j]
		// Addresses encode 25 bytes -> 26..35 characters when version is 0
		// (leading '1'). Try every plausible window anchored at the run
		// start; runs are short so this stays cheap.
		for start := 0; start < len(run); start++ {
			if run[start] != '1' {
				// Our simulated addresses all use version 0x00 and thus
				// start with '1'; skip other anchors quickly.
				continue
			}
			for _, wlen := range []int{34, 33, 32, 31, 30, 29, 28, 27, 26} {
				if start+wlen > len(run) {
					continue
				}
				cand := run[start : start+wlen]
				a, err := Decode(cand)
				if err != nil || a.Version != P2PKHVersion {
					continue
				}
				if _, dup := seen[a]; !dup {
					seen[a] = struct{}{}
					out = append(out, a)
				}
				break
			}
		}
		i = j
	}
	return out
}

func isBase58(c byte) bool {
	return c < 128 && decodeMap[c] >= 0
}
