package address

import (
	"crypto/sha256"
	"encoding/binary"
)

// PubKeyLen is the length of a (simulated) compressed public key.
const PubKeyLen = 33

// SigLen is the length of a (simulated) signature.
const SigLen = 32

// KeyPair is a simulated signing key. The seed stands in for the secp256k1
// secret key; everything derived from it is deterministic so economies are
// reproducible from a single RNG seed.
type KeyPair struct {
	Seed [32]byte

	// pub caches the derived public key. NewKeyFromSeed populates it, so
	// every copy of the pair (wallet maps, signing jobs) shares one
	// derivation instead of re-hashing the seed on each Sign call;
	// zero-constructed pairs derive lazily.
	pub []byte
}

// NewKeyFromSeed derives a key pair deterministically from a 64-bit seed and
// a stream index, using SHA-256 as the expansion function. The economy
// simulator mints keys this way so a (seed, counter) pair fully determines
// every address in a generated chain.
func NewKeyFromSeed(seed int64, counter uint64) KeyPair {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], counter)
	var k KeyPair
	k.Seed = sha256.Sum256(buf[:])
	k.pub = derivePubKey(k.Seed)
	return k
}

// PubKey returns the simulated compressed public key: a 0x02 prefix followed
// by SHA-256(seed || "pub"). Callers must not mutate the returned slice.
func (k KeyPair) PubKey() []byte {
	if k.pub != nil {
		return k.pub
	}
	return derivePubKey(k.Seed)
}

func derivePubKey(seed [32]byte) []byte {
	h := sha256.New()
	h.Write(seed[:])
	h.Write([]byte("pub"))
	sum := h.Sum(nil)
	out := make([]byte, PubKeyLen)
	out[0] = 0x02
	copy(out[1:], sum)
	return out
}

// Address returns the P2PKH address of the key's public key.
func (k KeyPair) Address() Address { return FromPubKey(k.PubKey()) }

// Sign produces the simulated signature over a 32-byte digest. The
// construction — SHA-256(pubkey || digest) — is verifiable from the public
// key alone, which is all the script engine needs; it is not unforgeable,
// which nothing in the reproduced analysis requires.
func (k KeyPair) Sign(digest [32]byte) []byte {
	return SignWithPubKey(k.PubKey(), digest)
}

// SignWithPubKey computes the signature value that Verify expects for the
// given public key and digest.
func SignWithPubKey(pub []byte, digest [32]byte) []byte {
	h := sha256.New()
	h.Write(pub)
	h.Write(digest[:])
	return h.Sum(nil)
}

// Verify reports whether sig is the correct simulated signature of digest
// under pub.
func Verify(pub, sig []byte, digest [32]byte) bool {
	if len(sig) != SigLen {
		return false
	}
	want := SignWithPubKey(pub, digest)
	// Constant-time comparison is irrelevant for the simulation; plain
	// comparison keeps it readable.
	for i := range want {
		if want[i] != sig[i] {
			return false
		}
	}
	return true
}
