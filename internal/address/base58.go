// Package address implements Bitcoin-style addresses: Base58 and
// Base58Check encoding, deterministic simulated key pairs, address
// derivation, and a free-text address scanner used by the tag crawler.
//
// Cryptography substitution (documented in DESIGN.md): the standard library
// provides neither secp256k1 nor RIPEMD-160, and nothing in the paper's
// analysis verifies signatures cryptographically, so keys and signatures are
// simulated with SHA-256 constructions that preserve structure (a pseudonym
// per key, a 20-byte hash per address, a per-input signature that commits to
// the transaction) without providing real unforgeability.
package address

import (
	"bytes"
	"errors"
	"math/big"
)

// Base58 alphabet as used by Bitcoin (no 0, O, I, l).
const alphabet = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"

var decodeMap [128]int8

func init() {
	for i := range decodeMap {
		decodeMap[i] = -1
	}
	for i, c := range alphabet {
		decodeMap[c] = int8(i)
	}
}

var bigRadix = big.NewInt(58)

// Base58Encode encodes b as a Base58 string, preserving leading zero bytes
// as leading '1' characters.
func Base58Encode(b []byte) string {
	zeros := 0
	for zeros < len(b) && b[zeros] == 0 {
		zeros++
	}
	x := new(big.Int).SetBytes(b)
	// Worst-case output length: log58(256) ~ 1.37 digits per byte.
	out := make([]byte, 0, len(b)*137/100+1)
	mod := new(big.Int)
	for x.Sign() > 0 {
		x.DivMod(x, bigRadix, mod)
		out = append(out, alphabet[mod.Int64()])
	}
	for i := 0; i < zeros; i++ {
		out = append(out, alphabet[0])
	}
	// Reverse.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return string(out)
}

// ErrInvalidBase58 is returned when a string contains characters outside the
// Base58 alphabet.
var ErrInvalidBase58 = errors.New("address: invalid base58 character")

// Base58Decode decodes a Base58 string, restoring leading zero bytes from
// leading '1' characters.
func Base58Decode(s string) ([]byte, error) {
	zeros := 0
	for zeros < len(s) && s[zeros] == alphabet[0] {
		zeros++
	}
	x := new(big.Int)
	for _, c := range []byte(s) {
		if c >= 128 || decodeMap[c] < 0 {
			return nil, ErrInvalidBase58
		}
		x.Mul(x, bigRadix)
		x.Add(x, big.NewInt(int64(decodeMap[c])))
	}
	raw := x.Bytes()
	out := make([]byte, zeros+len(raw))
	copy(out[zeros:], raw)
	return out, nil
}

// checksum returns the 4-byte double-SHA256 checksum used by Base58Check.
func checksum(payload []byte) [4]byte {
	h := doubleSHA256(payload)
	var c [4]byte
	copy(c[:], h[:4])
	return c
}

// Base58CheckEncode encodes version||payload with a 4-byte checksum.
func Base58CheckEncode(version byte, payload []byte) string {
	b := make([]byte, 0, 1+len(payload)+4)
	b = append(b, version)
	b = append(b, payload...)
	c := checksum(b)
	b = append(b, c[:]...)
	return Base58Encode(b)
}

// ErrBadChecksum is returned when a Base58Check string fails its checksum.
var ErrBadChecksum = errors.New("address: bad base58check checksum")

// ErrTooShort is returned when a Base58Check string decodes to fewer bytes
// than version plus checksum.
var ErrTooShort = errors.New("address: base58check payload too short")

// Base58CheckDecode decodes a Base58Check string, returning the version byte
// and payload after validating the checksum.
func Base58CheckDecode(s string) (version byte, payload []byte, err error) {
	b, err := Base58Decode(s)
	if err != nil {
		return 0, nil, err
	}
	if len(b) < 5 {
		return 0, nil, ErrTooShort
	}
	body, check := b[:len(b)-4], b[len(b)-4:]
	want := checksum(body)
	if !bytes.Equal(check, want[:]) {
		return 0, nil, ErrBadChecksum
	}
	return body[0], body[1:], nil
}
