package address

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBase58KnownVectors(t *testing.T) {
	cases := []struct {
		raw []byte
		enc string
	}{
		{[]byte{}, ""},
		{[]byte{0}, "1"},
		{[]byte{0, 0, 0}, "111"},
		{[]byte{57}, "z"},
		{[]byte{58}, "21"},
		{[]byte("hello world"), "StV1DL6CwTryKyV"},
		{[]byte{0x00, 0x01}, "12"},
	}
	for _, c := range cases {
		if got := Base58Encode(c.raw); got != c.enc {
			t.Errorf("encode(% x) = %q, want %q", c.raw, got, c.enc)
		}
		dec, err := Base58Decode(c.enc)
		if err != nil {
			t.Errorf("decode(%q): %v", c.enc, err)
			continue
		}
		if !bytes.Equal(dec, c.raw) {
			t.Errorf("decode(%q) = % x, want % x", c.enc, dec, c.raw)
		}
	}
}

func TestBase58RejectsBadChars(t *testing.T) {
	for _, s := range []string{"0", "O", "I", "l", "abcd0", "Ω"} {
		if _, err := Base58Decode(s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestBase58PropertyRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		dec, err := Base58Decode(Base58Encode(b))
		return err == nil && bytes.Equal(dec, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBase58CheckRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		payload := make([]byte, HashLen)
		rng.Read(payload)
		s := Base58CheckEncode(P2PKHVersion, payload)
		v, got, err := Base58CheckDecode(s)
		if err != nil {
			t.Fatal(err)
		}
		if v != P2PKHVersion || !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
}

func TestBase58CheckDetectsCorruption(t *testing.T) {
	payload := make([]byte, HashLen)
	s := Base58CheckEncode(P2PKHVersion, payload)
	// Flip each character to a different alphabet character; all must fail.
	for i := 0; i < len(s); i++ {
		for _, repl := range []byte{'2', '3', 'z'} {
			if s[i] == repl {
				continue
			}
			mut := s[:i] + string(repl) + s[i+1:]
			if _, _, err := Base58CheckDecode(mut); err == nil {
				t.Fatalf("accepted corrupted address %q (pos %d)", mut, i)
			}
		}
	}
}

func TestAddressStringDecodeRoundTrip(t *testing.T) {
	for i := uint64(0); i < 50; i++ {
		k := NewKeyFromSeed(7, i)
		a := k.Address()
		s := a.String()
		if !strings.HasPrefix(s, "1") {
			t.Fatalf("P2PKH address %q does not start with 1", s)
		}
		got, err := Decode(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != a {
			t.Fatalf("decode(%q) != original", s)
		}
	}
}

func TestKeyDeterminism(t *testing.T) {
	a := NewKeyFromSeed(42, 3)
	b := NewKeyFromSeed(42, 3)
	if a.Seed != b.Seed || a.Address() != b.Address() {
		t.Fatal("same (seed, counter) produced different keys")
	}
	c := NewKeyFromSeed(42, 4)
	if a.Seed == c.Seed || a.Address() == c.Address() {
		t.Fatal("different counters produced the same key")
	}
	d := NewKeyFromSeed(43, 3)
	if a.Seed == d.Seed || a.Address() == d.Address() {
		t.Fatal("different seeds produced the same key")
	}
}

func TestPubKeyCacheConsistent(t *testing.T) {
	k := NewKeyFromSeed(7, 9)
	cached := k.PubKey()
	derived := derivePubKey(k.Seed)
	if !bytes.Equal(cached, derived) {
		t.Fatal("cached public key differs from a fresh derivation")
	}
	var lazy KeyPair
	lazy.Seed = k.Seed
	if !bytes.Equal(lazy.PubKey(), cached) {
		t.Fatal("zero-constructed pair derives a different public key")
	}
}

func TestSignVerify(t *testing.T) {
	k := NewKeyFromSeed(1, 1)
	var digest [32]byte
	digest[5] = 0xaa
	sig := k.Sign(digest)
	if !Verify(k.PubKey(), sig, digest) {
		t.Fatal("valid signature rejected")
	}
	var other [32]byte
	if Verify(k.PubKey(), sig, other) {
		t.Fatal("signature accepted for a different digest")
	}
	k2 := NewKeyFromSeed(1, 2)
	if Verify(k2.PubKey(), sig, digest) {
		t.Fatal("signature accepted under a different key")
	}
	if Verify(k.PubKey(), sig[:31], digest) {
		t.Fatal("short signature accepted")
	}
}

func TestScanFindsEmbeddedAddresses(t *testing.T) {
	k1 := NewKeyFromSeed(9, 1)
	k2 := NewKeyFromSeed(9, 2)
	a1, a2 := k1.Address(), k2.Address()
	text := "Donate to " + a1.String() + "!! my cold wallet:\n" + a2.String() + " thanks"
	got := Scan(text)
	if len(got) != 2 {
		t.Fatalf("found %d addresses, want 2 (%v)", len(got), got)
	}
	found := map[Address]bool{got[0]: true, got[1]: true}
	if !found[a1] || !found[a2] {
		t.Fatalf("scan missed an address: got %v", got)
	}
}

func TestScanRejectsLookalikes(t *testing.T) {
	// Base58-looking strings with broken checksums must not be reported.
	k := NewKeyFromSeed(9, 3)
	s := k.Address().String()
	corrupted := s[:len(s)-1] + "2"
	if s[len(s)-1] == '2' {
		corrupted = s[:len(s)-1] + "3"
	}
	got := Scan("addr " + corrupted + " and junk 1BoatSLRHtKNngkdXEeobR76b53LETtpyT")
	for _, a := range got {
		if a.String() == corrupted {
			t.Fatalf("scan accepted corrupted address %q", corrupted)
		}
	}
}

func TestScanDeduplicates(t *testing.T) {
	k := NewKeyFromSeed(9, 4)
	s := k.Address().String()
	got := Scan(s + " " + s + " " + s)
	if len(got) != 1 {
		t.Fatalf("scan returned %d results for a repeated address, want 1", len(got))
	}
}

func TestScanEmptyAndNoise(t *testing.T) {
	if got := Scan(""); len(got) != 0 {
		t.Fatalf("scan of empty text found %v", got)
	}
	if got := Scan("!!!! ???? \n\t ... O0Il"); len(got) != 0 {
		t.Fatalf("scan of noise found %v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode("1"); err == nil {
		t.Error("accepted too-short address")
	}
	if _, err := Decode("notbase58!!!"); err == nil {
		t.Error("accepted invalid characters")
	}
	// Valid base58check but wrong payload length.
	s := Base58CheckEncode(P2PKHVersion, []byte{1, 2, 3})
	if _, err := Decode(s); err != ErrBadLength {
		t.Errorf("short payload: err = %v, want ErrBadLength", err)
	}
}
