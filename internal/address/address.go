package address

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// HashLen is the byte length of an address's public-key hash. It matches
// Bitcoin's RIPEMD-160 output length; we derive it from SHA-256 instead (see
// the package comment).
const HashLen = 20

// Version bytes for the supported address forms.
const (
	// P2PKHVersion is the pay-to-public-key-hash version byte ('1...'
	// addresses on Bitcoin mainnet).
	P2PKHVersion byte = 0x00
)

// Address is a pseudonym: the hashed public key that identifies the owner of
// transaction outputs. As the paper notes, users can use any number of
// addresses, which is exactly what the clustering heuristics collapse.
//
// Address is a small comparable value type so it can key maps directly.
type Address struct {
	Version byte
	Hash    [HashLen]byte
}

// String renders the address in Base58Check form.
func (a Address) String() string { return Base58CheckEncode(a.Version, a.Hash[:]) }

// IsZero reports whether the address is the zero value.
func (a Address) IsZero() bool { return a == Address{} }

// ErrBadLength is returned when a decoded address payload is not HashLen
// bytes.
var ErrBadLength = errors.New("address: payload is not 20 bytes")

// Decode parses a Base58Check address string.
func Decode(s string) (Address, error) {
	version, payload, err := Base58CheckDecode(s)
	if err != nil {
		return Address{}, err
	}
	if len(payload) != HashLen {
		return Address{}, ErrBadLength
	}
	var a Address
	a.Version = version
	copy(a.Hash[:], payload)
	return a, nil
}

// FromPubKey derives the address for a public key: version byte plus the
// first 20 bytes of SHA-256(pubkey) (the RIPEMD-160 substitution).
func FromPubKey(pub []byte) Address {
	h := sha256.Sum256(pub)
	var a Address
	a.Version = P2PKHVersion
	copy(a.Hash[:], h[:HashLen])
	return a
}

// Hash160 returns the 20-byte hash of the input using the same construction
// as FromPubKey, for use by the script engine.
func Hash160(b []byte) [HashLen]byte {
	h := sha256.Sum256(b)
	var out [HashLen]byte
	copy(out[:], h[:HashLen])
	return out
}

func doubleSHA256(b []byte) [32]byte {
	first := sha256.Sum256(b)
	return sha256.Sum256(first[:])
}

// GoString lets %#v print addresses readably in test failures.
func (a Address) GoString() string { return fmt.Sprintf("address.Address(%s)", a.String()) }
