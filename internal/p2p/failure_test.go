package p2p

import (
	"net"
	"testing"
	"time"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/script"
	"repro/internal/wire"
)

// A peer that sends garbage must be dropped without disturbing the node.
func TestGarbagePeerDropped(t *testing.T) {
	node, err := NewNode(Config{Params: testParams()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	conn, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("this is not a bitcoin message at all, not even close......"))
	buf := make([]byte, 64)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	conn.Read(buf) // drain whatever comes back until the node hangs up
	conn.Close()

	// The node keeps serving: a legitimate node can still connect and sync.
	miner := address.NewKeyFromSeed(8, 1)
	if _, err := node.Mine(script.PayToAddr(miner.Address())); err != nil {
		t.Fatalf("node unusable after garbage peer: %v", err)
	}
	good, err := NewNode(Config{Params: testParams()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if err := good.ConnectTo(node.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for good.Height() < 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if good.Height() < 0 {
		t.Fatal("legitimate peer failed to sync after garbage peer")
	}
}

// A peer speaking the wrong network magic is rejected at the first frame.
func TestWrongMagicPeerRejected(t *testing.T) {
	node, err := NewNode(Config{Params: testParams()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	conn, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteMessage(conn, 0xdeadbeef, &wire.MsgVersion{UserAgent: "evil"}); err != nil {
		t.Fatal(err)
	}
	// The node must hang up rather than answer.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("node answered a wrong-magic peer")
	}
}

// An invalid block (bad proof of work) relayed by a peer is rejected and
// does not extend the chain.
func TestInvalidBlockRejected(t *testing.T) {
	params := testParams()
	params.TargetBits = 24 // hard enough that a zero nonce will not pass
	node, err := NewNode(Config{Params: params}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	miner := address.NewKeyFromSeed(8, 2)
	cb := chain.NewCoinbaseTx(0, 50*chain.Coin, script.PayToAddr(miner.Address()), nil)
	bad := &chain.Block{
		Header: chain.BlockHeader{
			Version:    1,
			PrevBlock:  node.tipHash(),
			MerkleRoot: chain.BlockMerkleRoot([]*chain.Tx{cb}),
			Timestamp:  time.Now().Unix(),
			Nonce:      0,
		},
		Txs: []*chain.Tx{cb},
	}
	if params.CheckProofOfWork(bad.BlockHash()) {
		t.Skip("freak nonce satisfied PoW; skip")
	}
	if err := node.acceptBlock(bad, "test"); err == nil {
		t.Fatal("accepted block without proof of work")
	}
	if node.Height() != -1 {
		t.Fatalf("height advanced to %d on invalid block", node.Height())
	}
}

// Closing a node mid-conversation must not deadlock its peers.
func TestPeerSurvivesRemoteClose(t *testing.T) {
	a, err := NewNode(Config{Params: testParams()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(Config{Params: testParams()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := b.ConnectTo(a.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		a.mu.Lock()
		connected := len(a.peers) > 0
		a.mu.Unlock()
		if connected {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	done := make(chan struct{})
	go func() { b.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("closing a connected node deadlocked")
	}
	// The surviving node keeps working.
	miner := address.NewKeyFromSeed(8, 3)
	if _, err := a.Mine(script.PayToAddr(miner.Address())); err != nil {
		t.Fatalf("survivor unusable: %v", err)
	}
}
