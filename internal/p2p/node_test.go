package p2p

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/script"
)

func testParams() chain.Params {
	p := chain.MainNetParams()
	p.TargetBits = 8 // trivial mining for tests
	p.CoinbaseMaturity = 1
	return p
}

func TestHandshakeAndPing(t *testing.T) {
	net, err := NewNetwork(Config{Params: testParams()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		net.Nodes[0].mu.Lock()
		n := len(net.Nodes[0].peers)
		net.Nodes[0].mu.Unlock()
		if n >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("handshake did not complete")
}

func TestBlockPropagation(t *testing.T) {
	net, err := NewNetwork(Config{Params: testParams()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	miner := address.NewKeyFromSeed(1, 1)
	for i := 0; i < 3; i++ {
		if _, err := net.Nodes[0].Mine(script.PayToAddr(miner.Address())); err != nil {
			t.Fatalf("mine %d: %v", i, err)
		}
	}
	if !net.WaitHeight(2, 5*time.Second) {
		heights := make([]int64, len(net.Nodes))
		for i, n := range net.Nodes {
			heights[i] = n.Height()
		}
		t.Fatalf("network did not converge: heights %v", heights)
	}
	// All tips identical.
	tip := net.Nodes[0].tipHash()
	for i, n := range net.Nodes {
		if n.tipHash() != tip {
			t.Fatalf("node %d tip differs", i)
		}
	}
}

func TestTransactionLifecycle(t *testing.T) {
	// Figure 1 end to end: merchant picks an address, user pays, the
	// network relays, a miner includes it, everyone sees the block.
	net, err := NewNetwork(Config{Params: testParams()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	userNode, minerNode := net.Nodes[0], net.Nodes[1]

	user := address.NewKeyFromSeed(2, 1)
	merchant := address.NewKeyFromSeed(2, 2)

	// Fund the user: mine a block paying them, then one to mature it.
	blk, err := minerNode.Mine(script.PayToAddr(user.Address()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := minerNode.Mine(script.PayToAddr(user.Address())); err != nil {
		t.Fatal(err)
	}
	if !net.WaitHeight(1, 5*time.Second) {
		t.Fatal("funding blocks did not propagate")
	}

	// Steps 1-3: merchant address, user forms and signs the transaction.
	cbOut := chain.OutPoint{TxID: blk.Txs[0].TxID(), Index: 0}
	subsidy := blk.Txs[0].Outputs[0].Value
	tx := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: cbOut, Sequence: ^uint32(0)}},
		Outputs: []chain.TxOut{
			{Value: chain.BTC(0.7), PkScript: script.PayToAddr(merchant.Address())},
			{Value: subsidy - chain.BTC(0.7) - chain.BTC(0.001), PkScript: script.PayToAddr(user.Address())},
		},
	}
	sig := user.Sign(chain.SigHash(tx, 0))
	tx.Inputs[0].SigScript = script.SigScript(sig, user.PubKey())

	// Step 4: broadcast.
	if err := userNode.SubmitTx(tx); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// The miner must learn the tx through gossip.
	deadline := time.Now().Add(5 * time.Second)
	for minerNode.MempoolSize() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if minerNode.MempoolSize() == 0 {
		t.Fatal("transaction did not reach the miner")
	}

	// Steps 5-6: mine and flood the block.
	minerKey := address.NewKeyFromSeed(2, 3)
	mined, err := minerNode.Mine(script.PayToAddr(minerKey.Address()))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	txid := tx.TxID()
	for _, btx := range mined.Txs {
		if btx.TxID() == txid {
			found = true
		}
	}
	if !found {
		t.Fatal("mined block does not contain the payment")
	}
	if !net.WaitHeight(mined.Header.Timestamp*0+2, 5*time.Second) {
		t.Fatal("block did not propagate")
	}
	// The payment is now confirmed everywhere: no node has it in mempool.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		total := 0
		for _, n := range net.Nodes {
			total += n.MempoolSize()
		}
		if total == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("mempool not cleared after confirmation")
}

func TestRejectInvalidTx(t *testing.T) {
	node, err := NewNode(Config{Params: testParams()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	user := address.NewKeyFromSeed(3, 1)
	// Spending a nonexistent output must be rejected.
	tx := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: chain.OutPoint{Index: 3}}},
		Outputs: []chain.TxOut{{Value: chain.Coin, PkScript: script.PayToAddr(user.Address())}},
	}
	if err := node.SubmitTx(tx); err == nil {
		t.Fatal("accepted spend of nonexistent output")
	}
}

func TestLateJoinerSyncs(t *testing.T) {
	params := testParams()
	seedNode, err := NewNode(Config{Params: params, UserAgent: "seed"}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer seedNode.Close()
	miner := address.NewKeyFromSeed(4, 1)
	for i := 0; i < 5; i++ {
		if _, err := seedNode.Mine(script.PayToAddr(miner.Address())); err != nil {
			t.Fatal(err)
		}
	}
	late, err := NewNode(Config{Params: params, UserAgent: "late"}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if err := late.ConnectTo(seedNode.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for late.Height() < 4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if late.Height() < 4 {
		t.Fatalf("late joiner at height %d, want 4", late.Height())
	}
}

func TestBroadcastTargetsOrderedByPeerID(t *testing.T) {
	// fistlint/detrange regression: relay order used to follow map
	// iteration, so gossip event interleavings differed run to run.
	n := &Node{peers: map[string]*peer{
		"10.0.0.3:8333": {id: "10.0.0.3:8333"},
		"10.0.0.1:8333": {id: "10.0.0.1:8333"},
		"10.0.0.4:8333": {id: "10.0.0.4:8333"},
		"10.0.0.2:8333": {id: "10.0.0.2:8333"},
	}}
	for trial := 0; trial < 10; trial++ {
		got := n.broadcastTargets("10.0.0.2:8333")
		want := []string{"10.0.0.1:8333", "10.0.0.3:8333", "10.0.0.4:8333"}
		if len(got) != len(want) {
			t.Fatalf("got %d targets, want %d", len(got), len(want))
		}
		for i, p := range got {
			if p.id != want[i] {
				t.Fatalf("trial %d: target[%d] = %s, want %s", trial, i, p.id, want[i])
			}
		}
	}
}

func TestMempoolOrderedSortsByTxID(t *testing.T) {
	// fistlint/detrange regression: block templates used to pull
	// transactions out of the mempool map in iteration order, making both
	// the block's tx sequence and the MaxBlockTxs cutoff nondeterministic.
	n := &Node{mempool: make(map[chain.Hash]*chain.Tx)}
	for i := 0; i < 8; i++ {
		tx := chain.NewCoinbaseTx(int64(i+1), chain.BTC(1), []byte{byte(i)}, nil)
		n.mempool[tx.TxID()] = tx
	}
	var prev chain.Hash
	for trial := 0; trial < 10; trial++ {
		ordered := n.mempoolOrdered()
		if len(ordered) != 8 {
			t.Fatalf("got %d txs, want 8", len(ordered))
		}
		for i := 1; i < len(ordered); i++ {
			a, b := ordered[i-1].TxID(), ordered[i].TxID()
			if bytes.Compare(a[:], b[:]) >= 0 {
				t.Fatalf("trial %d: txs out of order at %d: %s >= %s", trial, i, a, b)
			}
		}
		if trial > 0 && ordered[0].TxID() != prev {
			t.Fatalf("trial %d: first tx changed across calls", trial)
		}
		prev = ordered[0].TxID()
	}
}
