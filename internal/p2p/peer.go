package p2p

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/faults"
	"repro/internal/wire"
)

// peer is one live connection. Each peer runs a reader goroutine (the
// connection's message loop) and serializes writes through a mutex-guarded
// send method, following the share-by-communicating structure the network
// needs: the node never blocks its state lock on network I/O.
type peer struct {
	node *Node
	conn net.Conn
	id   string

	writeMu sync.Mutex
	closed  sync.Once
}

func (p *peer) close() {
	p.closed.Do(func() { p.conn.Close() })
}

// send writes one message, dropping the peer on failure.
func (p *peer) send(msg wire.Message) {
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	p.conn.SetWriteDeadline(time.Now().Add(p.node.cfg.WriteTimeout))
	//lint:ignore fistlint/lockheld writeMu exists to serialize conn writes; blocking writers here is the design, and the deadline above bounds the stall
	if err := wire.WriteMessage(p.conn, p.node.cfg.Params.Magic, msg); err != nil {
		p.node.cfg.Logf("p2p: write to %s: %v", p.id, err)
		//lint:ignore fistlint/lockheld dropping the peer inside its own write lock keeps a racing writer from reusing the dead conn
		p.close()
	}
}

// runPeer performs the version/verack handshake and then serves the
// connection until it closes. inbound selects who speaks first.
func (n *Node) runPeer(conn net.Conn, inbound bool) error {
	p := &peer{node: n, conn: conn, id: conn.RemoteAddr().String()}
	defer p.close()

	// Handshake: both sides send version, then verack.
	ours := &wire.MsgVersion{
		Version:     1,
		Nonce:       rand.Uint64(),
		UserAgent:   n.cfg.UserAgent,
		StartHeight: n.Height(),
	}
	if !inbound {
		p.send(ours)
	}
	theirVersion, err := n.expect(conn, wire.CmdVersion)
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	remote := theirVersion.(*wire.MsgVersion)
	if inbound {
		p.send(ours)
	}
	p.send(&wire.MsgVerAck{})
	if _, err := n.expect(conn, wire.CmdVerAck); err != nil {
		return fmt.Errorf("handshake: %w", err)
	}

	n.mu.Lock()
	n.peers[p.id] = p
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.peers, p.id)
		n.mu.Unlock()
	}()
	n.emit(Event{Kind: EvPeerConnected, Peer: p.id})

	// Initial reconciliation: always ask the peer what it has past our tip.
	// This also heals the race where an inv arrives while the handshake is
	// still in flight (expect() discards non-handshake messages).
	_ = remote
	p.send(&wire.MsgGetBlocks{Have: n.tipHash()})

	// Every read carries a deadline so a stalled peer cannot wedge the
	// reader goroutine: an idle timeout first probes with a ping, and a peer
	// silent past StallTimeout — not even answering the probes — is dropped
	// (transient: the redial supervisor, if any, will reconnect).
	lastHeard := time.Now()
	for {
		select {
		case <-n.ctx.Done():
			return nil
		default:
		}
		conn.SetReadDeadline(time.Now().Add(n.cfg.ReadIdle))
		msg, err := wire.ReadMessage(conn, n.cfg.Params.Magic)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if silent := time.Since(lastHeard); silent > n.cfg.StallTimeout {
					return faults.Transient(fmt.Errorf("p2p: peer %s stalled (silent %v)", p.id, silent.Round(time.Millisecond)))
				}
				p.send(&wire.MsgPing{Nonce: rand.Uint64()})
				continue
			}
			return err
		}
		lastHeard = time.Now()
		if err := n.handleMessage(p, msg); err != nil {
			return err
		}
	}
}

// expect reads messages until one with the wanted command arrives (pings are
// answered in passing).
func (n *Node) expect(conn net.Conn, cmd string) (wire.Message, error) {
	for {
		conn.SetReadDeadline(time.Now().Add(n.cfg.HandshakeTimeout))
		msg, err := wire.ReadMessage(conn, n.cfg.Params.Magic)
		if err != nil {
			return nil, err
		}
		if msg.Command() == cmd {
			return msg, nil
		}
	}
}

func (n *Node) tipHash() chain.Hash {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.chain.TipHash()
}

// handleMessage dispatches one received message.
func (n *Node) handleMessage(p *peer, msg wire.Message) error {
	switch m := msg.(type) {
	case *wire.MsgPing:
		p.send(&wire.MsgPong{Nonce: m.Nonce})

	case *wire.MsgPong:
		// Keepalive answered; nothing to do.

	case *wire.MsgInv:
		// Request anything we have not seen (Figure 1's flooding).
		var want []wire.InvVect
		n.mu.Lock()
		for _, iv := range m.Items {
			if !n.seenInv[iv.Hash] {
				want = append(want, iv)
			}
		}
		n.mu.Unlock()
		if len(want) > 0 {
			p.send(&wire.MsgGetData{Items: want})
		}

	case *wire.MsgGetData:
		for _, iv := range m.Items {
			switch iv.Type {
			case wire.InvTx:
				n.mu.Lock()
				tx := n.mempool[iv.Hash]
				n.mu.Unlock()
				if tx != nil {
					p.send(&wire.MsgTx{Tx: tx})
				}
			case wire.InvBlock:
				n.mu.Lock()
				var blk *chain.Block
				if h, ok := n.chain.HeightOf(iv.Hash); ok {
					blk = n.chain.BlockAt(h)
				}
				n.mu.Unlock()
				if blk != nil {
					p.send(&wire.MsgBlock{Block: blk})
				}
			}
		}

	case *wire.MsgTx:
		txid := m.Tx.TxID()
		n.mu.Lock()
		seen := n.seenInv[txid]
		n.mu.Unlock()
		if seen {
			return nil
		}
		if err := chain.CheckTransactionSanity(m.Tx); err != nil {
			n.cfg.Logf("p2p: rejecting tx from %s: %v", p.id, err)
			return nil
		}
		n.mu.Lock()
		if err := n.checkMempoolTx(m.Tx); err != nil {
			n.mu.Unlock()
			n.cfg.Logf("p2p: rejecting tx from %s: %v", p.id, err)
			return nil
		}
		n.mempool[txid] = m.Tx
		n.seenInv[txid] = true
		n.mu.Unlock()
		n.emit(Event{Kind: EvTxAccepted, Hash: txid, Peer: p.id})
		n.broadcastInv(wire.InvVect{Type: wire.InvTx, Hash: txid}, p.id)

	case *wire.MsgBlock:
		if err := n.acceptBlock(m.Block, p.id); err != nil {
			// A block that does not extend our tip may mean we are behind;
			// ask the peer for its view.
			n.cfg.Logf("p2p: block from %s not connected: %v", p.id, err)
			p.send(&wire.MsgGetBlocks{Have: n.tipHash()})
		}

	case *wire.MsgGetBlocks:
		// Send inventory for everything after the peer's tip (or our whole
		// chain if we do not recognize it).
		n.mu.Lock()
		from := int64(0)
		if h, ok := n.chain.HeightOf(m.Have); ok {
			from = h + 1
		}
		var items []wire.InvVect
		for h := from; h <= n.chain.Height(); h++ {
			items = append(items, wire.InvVect{Type: wire.InvBlock, Hash: n.chain.BlockAt(h).BlockHash()})
		}
		n.mu.Unlock()
		if len(items) > 0 {
			p.send(&wire.MsgInv{Items: items})
		}

	default:
		n.cfg.Logf("p2p: unhandled %s from %s", msg.Command(), p.id)
	}
	return nil
}
