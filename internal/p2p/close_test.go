package p2p

import (
	"net"
	"testing"
	"time"
)

// blockingConn is a net.Conn whose Close blocks until released, signalling
// when it has been entered. Only Close is ever called on it.
type blockingConn struct {
	net.Conn
	entered chan struct{}
	release chan struct{}
}

func (c *blockingConn) Close() error {
	close(c.entered)
	<-c.release
	return nil
}

// TestCloseDoesNotHoldLockDuringPeerClose is the regression test for
// Node.Close holding n.mu across conn.Close: peer teardown is network I/O
// and must not stall concurrent state readers. The fake peer's Close
// blocks until released; while Close is parked inside it, Height() must
// still be able to take the lock.
func TestCloseDoesNotHoldLockDuringPeerClose(t *testing.T) {
	node, err := NewNode(Config{Params: testParams()}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn := &blockingConn{entered: make(chan struct{}), release: make(chan struct{})}
	node.mu.Lock()
	node.peers["fake"] = &peer{node: node, conn: conn, id: "fake"}
	node.mu.Unlock()

	done := make(chan struct{})
	go func() {
		node.Close()
		close(done)
	}()

	select {
	case <-conn.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never reached the peer's conn.Close")
	}

	heights := make(chan int64, 1)
	go func() { heights <- node.Height() }()
	select {
	case <-heights:
		// The lock was free while peer teardown blocked — the fix holds.
	case <-time.After(2 * time.Second):
		t.Fatal("Height() blocked while Close was tearing down peers: n.mu held across conn.Close")
	}

	close(conn.release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not finish after the peer's Close was released")
	}
}
