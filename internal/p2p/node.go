// Package p2p implements the peer-to-peer network of Figure 1: nodes
// connected over real TCP sockets that handshake, gossip transactions and
// blocks via inventory announcements, validate and extend their chains, and
// mine. A small harness (Network) wires nodes together for the transaction
// lifecycle demo and tests.
package p2p

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/faults"
	"repro/internal/script"
	"repro/internal/wire"
)

// EventKind tags node events, mirroring Figure 1's steps.
type EventKind int

// Node event kinds.
const (
	EvTxAccepted     EventKind = iota // transaction entered the mempool (step 4)
	EvTxRelayed                       // transaction announced to peers
	EvBlockMined                      // miner found a nonce (step 5)
	EvBlockConnected                  // block validated and connected (step 6)
	EvPeerConnected
)

// Event is one observable node action.
type Event struct {
	Kind   EventKind
	Hash   chain.Hash
	Height int64
	Peer   string
	Time   time.Time
}

// Node timeout and backoff defaults; see Config.
const (
	DefaultDialTimeout      = 5 * time.Second
	DefaultHandshakeTimeout = 10 * time.Second
	DefaultWriteTimeout     = 10 * time.Second
	DefaultReadIdle         = 30 * time.Second
	DefaultStallTimeout     = 2 * time.Minute
	DefaultRedialBase       = 500 * time.Millisecond
	DefaultRedialMax        = 15 * time.Second
)

// Config configures a node.
type Config struct {
	Params    chain.Params
	UserAgent string
	// EventBuf is the event channel capacity (0 = 256).
	EventBuf int
	// Logf receives debug output; nil discards it.
	Logf func(format string, args ...any)

	// DialTimeout bounds one outbound dial (0 = DefaultDialTimeout). Dials
	// also abort when the node closes, whatever the timeout.
	DialTimeout time.Duration
	// HandshakeTimeout bounds each handshake read (0 = DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds one message write (0 = DefaultWriteTimeout).
	WriteTimeout time.Duration
	// ReadIdle is how long a connection read waits before the node probes the
	// peer with a keepalive ping (0 = DefaultReadIdle).
	ReadIdle time.Duration
	// StallTimeout drops a peer that has sent nothing — not even a pong —
	// for this long, so one wedged socket cannot hold a peer slot forever
	// (0 = DefaultStallTimeout; it should exceed ReadIdle so at least one
	// ping goes out first).
	StallTimeout time.Duration
	// RedialBase and RedialMax bound ConnectPersistent's exponential redial
	// backoff (0 = DefaultRedialBase / DefaultRedialMax).
	RedialBase time.Duration
	RedialMax  time.Duration
}

// withDefaults fills the zero values in.
func (c Config) withDefaults() Config {
	if c.EventBuf == 0 {
		c.EventBuf = 256
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.ReadIdle <= 0 {
		c.ReadIdle = DefaultReadIdle
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = DefaultStallTimeout
	}
	if c.RedialBase <= 0 {
		c.RedialBase = DefaultRedialBase
	}
	if c.RedialMax <= 0 {
		c.RedialMax = DefaultRedialMax
	}
	if c.RedialMax < c.RedialBase {
		c.RedialMax = c.RedialBase
	}
	return c
}

// Node is one network participant: wallet-less, it validates, relays and
// optionally mines.
type Node struct {
	cfg      Config
	listener net.Listener

	mu      sync.Mutex
	chain   *chain.Chain
	mempool map[chain.Hash]*chain.Tx
	peers   map[string]*peer
	seenInv map[chain.Hash]bool

	events chan Event
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc

	// dial opens one outbound connection; the seam tests use to fake dial
	// failures and hangs. nil means net.Dialer.DialContext.
	dial func(ctx context.Context, addr string) (net.Conn, error)
}

// NewNode creates a node with a fresh chain and starts listening on addr
// ("127.0.0.1:0" for an ephemeral port).
func NewNode(cfg Config, addr string) (*Node, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("p2p: listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		cfg:      cfg,
		listener: ln,
		chain:    chain.New(cfg.Params),
		mempool:  make(map[chain.Hash]*chain.Tx),
		peers:    make(map[string]*peer),
		seenInv:  make(map[chain.Hash]bool),
		events:   make(chan Event, cfg.EventBuf),
		ctx:      ctx,
		cancel:   cancel,
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.listener.Addr().String() }

// Events returns the node's event stream.
func (n *Node) Events() <-chan Event { return n.events }

// Chain gives access to the node's chain; callers must treat it as
// read-only and should capture heights/hashes rather than retaining it.
func (n *Node) Chain() *chain.Chain { return n.chain }

// Height returns the node's best height.
func (n *Node) Height() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.chain.Height()
}

// BlockAt returns the connected block at the given height, or nil if the
// chain has not reached it. Blocks are immutable once connected, so the
// returned pointer is safe to read after the lock is released — this is the
// accessor a serve-side feed uses to pull blocks in height order, with
// Events() as a wake-up signal rather than a data channel (events may drop
// under overflow).
func (n *Node) BlockAt(height int64) *chain.Block {
	n.mu.Lock()
	defer n.mu.Unlock()
	if height < 0 || height > n.chain.Height() {
		return nil
	}
	return n.chain.BlockAt(height)
}

// HashAt returns the hash of the connected block at the given height, and
// whether the chain has reached it. It is the feed layer's reorg probe: a
// follower that remembers the hashes it delivered can compare them against
// HashAt to detect that the node's chain was rewritten beneath it.
func (n *Node) HashAt(height int64) (chain.Hash, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if height < 0 || height > n.chain.Height() {
		return chain.Hash{}, false
	}
	return n.chain.BlockAt(height).BlockHash(), true
}

// MempoolSize returns the number of queued transactions.
func (n *Node) MempoolSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.mempool)
}

// Close shuts the node down, closing all peer connections. Peers are
// snapshotted under the lock but closed outside it: conn.Close is network
// I/O, and holding n.mu across it would stall every Height/MempoolSize
// caller until the kernel finishes tearing down the sockets.
func (n *Node) Close() {
	n.cancel()
	n.listener.Close()
	n.mu.Lock()
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		//lint:ignore fistlint/detrange teardown order of peer conns is irrelevant; the snapshot exists only to close them outside the lock
		peers = append(peers, p)
	}
	n.mu.Unlock()
	for _, p := range peers {
		p.close()
	}
	n.wg.Wait()
}

func (n *Node) emit(ev Event) {
	ev.Time = time.Now()
	select {
	case n.events <- ev:
	default: // drop when the consumer lags; events are advisory
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			if err := n.runPeer(conn, true); err != nil && !errors.Is(err, net.ErrClosed) {
				n.cfg.Logf("p2p: inbound peer %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// ConnectTo dials a peer and performs the handshake. The dial is bounded by
// Config.DialTimeout and aborts early if the node closes; a failed dial is
// tagged transient (retryable) since the remote may simply not be up yet.
func (n *Node) ConnectTo(addr string) error {
	conn, err := n.dialPeer(addr)
	if err != nil {
		return err
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		if err := n.runPeer(conn, false); err != nil && !errors.Is(err, net.ErrClosed) {
			n.cfg.Logf("p2p: outbound peer %s: %v", addr, err)
		}
	}()
	return nil
}

// dialPeer opens one outbound connection under the node's lifetime context,
// so Close cancels in-flight dials instead of waiting out their timeout.
func (n *Node) dialPeer(addr string) (net.Conn, error) {
	ctx, cancel := context.WithTimeout(n.ctx, n.cfg.DialTimeout)
	defer cancel()
	dial := n.dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	conn, err := dial(ctx, addr)
	if err != nil {
		return nil, faults.Transient(fmt.Errorf("p2p: dial %s: %w", addr, err))
	}
	return conn, nil
}

// ConnectPersistent maintains an outbound connection to addr for the node's
// lifetime: it dials, serves the peer, and when the connection drops — dial
// failure, handshake failure, stall cutoff, remote restart — redials with
// exponential backoff between RedialBase and RedialMax. A session that
// survived past RedialMax resets the backoff, so a briefly flapping remote
// does not pay a long-outage penalty. Returns immediately; the supervision
// goroutine stops when the node closes.
func (n *Node) ConnectPersistent(addr string) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		delay := n.cfg.RedialBase
		for n.ctx.Err() == nil {
			start := time.Now()
			if conn, err := n.dialPeer(addr); err != nil {
				n.cfg.Logf("p2p: persistent dial %s: %v", addr, err)
			} else if err := n.runPeer(conn, false); err != nil && !errors.Is(err, net.ErrClosed) {
				n.cfg.Logf("p2p: persistent peer %s: %v", addr, err)
			}
			if time.Since(start) > n.cfg.RedialMax {
				delay = n.cfg.RedialBase
			}
			timer := time.NewTimer(delay)
			select {
			case <-n.ctx.Done():
				timer.Stop()
				return
			case <-timer.C:
			}
			if delay *= 2; delay > n.cfg.RedialMax {
				delay = n.cfg.RedialMax
			}
		}
	}()
}

// NumPeers returns how many handshaken connections the node currently has.
func (n *Node) NumPeers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.peers)
}

// SubmitTx validates a transaction against the node's chain state, accepts
// it into the mempool, and announces it to peers — Figure 1's step 4 seen
// from the user's node.
func (n *Node) SubmitTx(tx *chain.Tx) error {
	if err := chain.CheckTransactionSanity(tx); err != nil {
		return err
	}
	txid := tx.TxID()
	n.mu.Lock()
	if _, dup := n.mempool[txid]; dup {
		n.mu.Unlock()
		return nil
	}
	if err := n.checkMempoolTx(tx); err != nil {
		n.mu.Unlock()
		return err
	}
	n.mempool[txid] = tx
	n.seenInv[txid] = true
	n.mu.Unlock()

	n.emit(Event{Kind: EvTxAccepted, Hash: txid})
	n.broadcastInv(wire.InvVect{Type: wire.InvTx, Hash: txid}, "")
	n.emit(Event{Kind: EvTxRelayed, Hash: txid})
	return nil
}

// checkMempoolTx verifies a transaction spends existing unspent outputs
// with valid scripts. Callers hold n.mu.
func (n *Node) checkMempoolTx(tx *chain.Tx) error {
	// Digests are computed lazily so a transaction rejected on its first
	// unknown outpoint costs a map lookup, not a full serialization+hash.
	var digests []chain.Hash
	for i, in := range tx.Inputs {
		entry, ok := n.chain.UTXO().Lookup(in.Prev)
		if !ok {
			return fmt.Errorf("p2p: tx input %d: unknown or spent output %s", i, in.Prev)
		}
		if digests == nil {
			digests = chain.SigHashes(tx)
		}
		if err := script.Verify(entry.PkScript, in.SigScript, digests[i]); err != nil {
			return fmt.Errorf("p2p: tx input %d: %w", i, err)
		}
	}
	return nil
}

// broadcastInv announces an inventory item to every peer except `skip`.
func (n *Node) broadcastInv(iv wire.InvVect, skip string) {
	n.mu.Lock()
	targets := n.broadcastTargets(skip)
	n.mu.Unlock()
	for _, p := range targets {
		p.send(&wire.MsgInv{Items: []wire.InvVect{iv}})
	}
}

// broadcastTargets returns every peer except `skip`, ordered by peer id so
// relay order (and therefore event interleaving in demos and traces) does
// not depend on map iteration order. Callers must hold n.mu.
func (n *Node) broadcastTargets(skip string) []*peer {
	ids := make([]string, 0, len(n.peers))
	for id := range n.peers {
		if id != skip {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	targets := make([]*peer, len(ids))
	for i, id := range ids {
		targets[i] = n.peers[id]
	}
	return targets
}

// acceptBlock validates and connects a block received from `from` (empty
// for self-mined), relaying it onward on success — Figure 1's step 6.
func (n *Node) acceptBlock(b *chain.Block, from string) error {
	hash := b.BlockHash()
	n.mu.Lock()
	if _, known := n.chain.HeightOf(hash); known {
		n.mu.Unlock()
		return nil
	}
	err := n.chain.ConnectBlock(b, true, chain.ConnectBlockOptions{Verifier: script.Verifier{}})
	if err != nil {
		n.mu.Unlock()
		return err
	}
	height := n.chain.Height()
	// Evict mined transactions from the mempool.
	for _, tx := range b.Txs {
		delete(n.mempool, tx.TxID())
	}
	n.seenInv[hash] = true
	n.mu.Unlock()

	n.emit(Event{Kind: EvBlockConnected, Hash: hash, Height: height, Peer: from})
	n.broadcastInv(wire.InvVect{Type: wire.InvBlock, Hash: hash}, from)
	return nil
}

// mempoolOrdered returns the mempool's transactions sorted by TxID, so
// block assembly — including which transactions make the cut when the
// mempool exceeds MaxBlockTxs — does not depend on map iteration order.
// Callers must hold n.mu.
func (n *Node) mempoolOrdered() []*chain.Tx {
	txs := make([]*chain.Tx, 0, len(n.mempool))
	for _, tx := range n.mempool {
		txs = append(txs, tx)
	}
	sort.Slice(txs, func(i, j int) bool {
		a, b := txs[i].TxID(), txs[j].TxID()
		return bytes.Compare(a[:], b[:]) < 0
	})
	return txs
}

// Mine assembles a block from the mempool, grinds a nonce satisfying the
// target (Figure 1's step 5), connects it locally and relays it. The
// coinbase pays pkScript.
func (n *Node) Mine(pkScript []byte) (*chain.Block, error) {
	n.mu.Lock()
	height := n.chain.Height() + 1
	var fees chain.Amount
	txs := make([]*chain.Tx, 0, len(n.mempool)+1)
	txs = append(txs, nil) // coinbase placeholder
	for _, tx := range n.mempoolOrdered() {
		var in chain.Amount
		ok := true
		for _, txin := range tx.Inputs {
			e, found := n.chain.UTXO().Lookup(txin.Prev)
			if !found {
				ok = false
				break
			}
			in += e.Value
		}
		if !ok {
			continue
		}
		fees += in - tx.TotalOut()
		txs = append(txs, tx)
		if len(txs) >= n.cfg.Params.MaxBlockTxs {
			break
		}
	}
	subsidy := n.cfg.Params.SubsidyAt(height)
	txs[0] = chain.NewCoinbaseTx(height, subsidy+fees, pkScript, []byte(n.cfg.UserAgent))
	blk := &chain.Block{
		Header: chain.BlockHeader{
			Version:    1,
			PrevBlock:  n.chain.TipHash(),
			MerkleRoot: chain.BlockMerkleRoot(txs),
			Timestamp:  time.Now().Unix(),
		},
		Txs: txs,
	}
	n.mu.Unlock()

	// Grind the nonce outside the lock.
	for nonce := uint32(0); ; nonce++ {
		blk.Header.Nonce = nonce
		if n.cfg.Params.CheckProofOfWork(blk.BlockHash()) {
			break
		}
		if nonce == ^uint32(0) {
			return nil, errors.New("p2p: nonce space exhausted")
		}
	}
	n.emit(Event{Kind: EvBlockMined, Hash: blk.BlockHash(), Height: height})
	if err := n.acceptBlock(blk, ""); err != nil {
		return nil, err
	}
	return blk, nil
}

// Network is a test/demo harness owning several interconnected nodes.
type Network struct {
	Nodes []*Node
}

// NewNetwork creates n nodes on ephemeral localhost ports, connected in a
// ring plus a hub (node 0), and returns the harness.
func NewNetwork(cfg Config, count int) (*Network, error) {
	net := &Network{}
	for i := 0; i < count; i++ {
		c := cfg
		if c.UserAgent == "" {
			c.UserAgent = fmt.Sprintf("node%d", i)
		}
		node, err := NewNode(c, "127.0.0.1:0")
		if err != nil {
			net.Close()
			return nil, err
		}
		net.Nodes = append(net.Nodes, node)
	}
	for i, node := range net.Nodes {
		if i == 0 {
			continue
		}
		if err := node.ConnectTo(net.Nodes[0].Addr()); err != nil {
			net.Close()
			return nil, err
		}
		if err := node.ConnectTo(net.Nodes[(i+1)%count].Addr()); err != nil {
			net.Close()
			return nil, err
		}
	}
	return net, nil
}

// Close shuts every node down.
func (n *Network) Close() {
	for _, node := range n.Nodes {
		if node != nil {
			node.Close()
		}
	}
}

// WaitHeight blocks until every node reaches the height or the timeout
// elapses; it returns whether convergence happened.
func (n *Network) WaitHeight(h int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		done := true
		for _, node := range n.Nodes {
			if node.Height() < h {
				done = false
				break
			}
		}
		if done {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}
