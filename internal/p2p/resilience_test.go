package p2p

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/wire"
)

// waitPeers polls until the node has exactly want peers or the timeout
// elapses, reporting success.
func waitPeers(n *Node, want int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n.NumPeers() == want {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return n.NumPeers() == want
}

// TestDialAbortsOnClose pins the dial-context threading: an outbound dial in
// flight when the node closes returns promptly instead of waiting out its
// timeout, and a failed dial is tagged transient.
func TestDialAbortsOnClose(t *testing.T) {
	cfg := Config{Params: testParams(), DialTimeout: time.Hour}
	node, err := NewNode(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node.dial = func(ctx context.Context, addr string) (net.Conn, error) {
		<-ctx.Done() // a dial that hangs until cancelled
		return nil, ctx.Err()
	}

	dialErr := make(chan error, 1)
	go func() { dialErr <- node.ConnectTo("192.0.2.1:1") }()
	time.Sleep(20 * time.Millisecond) // let the dial park on the context
	start := time.Now()
	node.Close()
	select {
	case err := <-dialErr:
		if err == nil {
			t.Fatal("dial succeeded against a hanging dialer")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("dial error %v, want context cancellation", err)
		}
		if !faults.IsTransient(err) {
			t.Fatalf("dial error %v not tagged transient", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight dial not aborted by Close")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close waited %v on the dial, want prompt abort", elapsed)
	}
}

// TestConnectPersistentRedials kills the remote node out from under a
// persistent connection and proves the supervisor notices the drop and
// redials once a fresh node reclaims the address.
func TestConnectPersistentRedials(t *testing.T) {
	fast := Config{
		Params:       testParams(),
		ReadIdle:     25 * time.Millisecond,
		StallTimeout: 100 * time.Millisecond,
		RedialBase:   10 * time.Millisecond,
		RedialMax:    50 * time.Millisecond,
	}
	remote, err := NewNode(fast, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := remote.Addr()

	local, err := NewNode(fast, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	local.ConnectPersistent(addr)
	if !waitPeers(local, 1, 5*time.Second) {
		t.Fatal("persistent connection never established")
	}

	remote.Close()
	if !waitPeers(local, 0, 5*time.Second) {
		t.Fatal("dropped remote not noticed")
	}

	// A new node reclaims the same address (Go listeners set SO_REUSEADDR);
	// the supervisor must find it without any new ConnectTo call.
	revived, err := NewNode(fast, addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer revived.Close()
	if !waitPeers(local, 1, 10*time.Second) {
		t.Fatal("supervisor did not redial the revived remote")
	}
}

// TestStalledPeerDropped handshakes by hand and then goes silent: the node
// must probe with pings and, once StallTimeout passes with no response, drop
// the peer instead of letting it hold a slot forever.
func TestStalledPeerDropped(t *testing.T) {
	cfg := Config{
		Params:       testParams(),
		ReadIdle:     25 * time.Millisecond,
		StallTimeout: 100 * time.Millisecond,
	}
	node, err := NewNode(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	conn, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	magic := cfg.Params.Magic

	// Outbound side of the handshake: version, their version, verack both ways.
	if err := wire.WriteMessage(conn, magic, &wire.MsgVersion{Version: 1, UserAgent: "stall-test"}); err != nil {
		t.Fatal(err)
	}
	sawVersion, sawVerAck := false, false
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for !sawVersion || !sawVerAck {
		msg, err := wire.ReadMessage(conn, magic)
		if err != nil {
			t.Fatalf("handshake read: %v", err)
		}
		switch msg.Command() {
		case wire.CmdVersion:
			sawVersion = true
		case wire.CmdVerAck:
			sawVerAck = true
		}
	}
	if err := wire.WriteMessage(conn, magic, &wire.MsgVerAck{}); err != nil {
		t.Fatal(err)
	}
	if !waitPeers(node, 1, 5*time.Second) {
		t.Fatal("handshake did not register the peer")
	}

	// Go silent: no reads, no writes. The node pings into our socket buffer,
	// hears nothing back, and must cut us off after StallTimeout.
	if !waitPeers(node, 0, 5*time.Second) {
		t.Fatal("stalled peer still holds its slot")
	}
}
