package faultinject

import (
	"os"
	"sync/atomic"
	"syscall"

	"repro/internal/chain"
)

// File wraps the file behind a chain.TailReader, failing ReadAt with
// EAGAIN-style errors — and optionally short reads — whenever the schedule
// fires. The injected errors carry a real syscall.EAGAIN inside an
// os.PathError, so they exercise the chain layer's errno classification
// rather than bypassing it.
type File struct {
	f          chain.TailFile
	sched      *Schedule
	shortReads bool
	injected   atomic.Int64
}

// WrapFile wraps f with read faults drawn from sched. With shortReads set,
// every other injection delivers half the requested bytes before failing,
// the way an interrupted read does; otherwise injections fail outright.
func WrapFile(f chain.TailFile, sched *Schedule, shortReads bool) *File {
	return &File{f: f, sched: sched, shortReads: shortReads}
}

// errAgain builds the injected failure: a plain EAGAIN wrapped the way the
// os package wraps it, classified transient by internal/faults.
func errAgain() error {
	return &os.PathError{Op: "read", Path: "faultinject", Err: syscall.EAGAIN}
}

// ReadAt reads from the wrapped file, or injects a fault.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.sched.Hit() {
		n := f.injected.Add(1)
		if f.shortReads && n%2 == 0 && len(p) > 1 {
			short, _ := f.f.ReadAt(p[:len(p)/2], off)
			return short, errAgain()
		}
		return 0, errAgain()
	}
	return f.f.ReadAt(p, off)
}

// Stat passes through to the wrapped file.
func (f *File) Stat() (os.FileInfo, error) { return f.f.Stat() }

// Close passes through to the wrapped file.
func (f *File) Close() error { return f.f.Close() }

// Injected returns how many faults have been injected so far.
func (f *File) Injected() int64 { return f.injected.Load() }
