// Package faultinject is a deterministic fault-injection harness for the
// serving stack's chaos tests. It wraps the seams the daemon reads from — a
// chain.BlockSource, a serve-shaped block feed, the file behind a
// chain.TailReader, and a net.Conn — and injects transient errors, delays,
// short reads, and mid-stream disconnects on a seedable Schedule.
//
// Everything is deterministic: the same seed produces the same fault
// sequence, so a chaos test that fails replays exactly. Injected errors are
// marked with internal/faults.Transient (or carry an EAGAIN-class errno), so
// the layers under test classify them the same way they would classify the
// real failures they stand in for.
package faultinject

import (
	"errors"
	"sync"
)

// ErrInjected is the base error every injected failure wraps; tests can
// errors.Is against it to tell an injected fault from a real one.
var ErrInjected = errors.New("faultinject: injected fault")

// Schedule decides, operation by operation, whether to inject a fault. It is
// deterministic for a given constructor and seed, and safe for concurrent
// use (a wrapped net.Conn is probed from reader and writer goroutines).
type Schedule struct {
	mu    sync.Mutex
	op    int64 // decisions taken so far
	hits  int64
	state uint64 // splitmix64 state for probabilistic schedules and kind picks
	hit   func(op int64, draw func() uint64) bool
}

// splitmix64 is the canonical 64-bit mix; tiny, seedable, and plenty for
// deciding fault timing.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewProb returns a schedule that injects each operation independently with
// probability prob (clamped to [0, 1]), drawn from a PRNG seeded with seed.
func NewProb(seed uint64, prob float64) *Schedule {
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	threshold := uint64(prob * (1 << 63) * 2) // prob scaled to the uint64 range
	if prob == 1 {
		threshold = ^uint64(0)
	}
	return &Schedule{
		state: seed,
		hit: func(_ int64, draw func() uint64) bool {
			return draw() < threshold
		},
	}
}

// NewEveryN returns a schedule that injects every nth operation (operations
// n, 2n, 3n, … counting from 1). n <= 0 never injects.
func NewEveryN(n int64) *Schedule {
	return &Schedule{
		hit: func(op int64, _ func() uint64) bool {
			return n > 0 && (op+1)%n == 0
		},
	}
}

// NewBurst returns a schedule that injects every operation in the window
// [start, start+n) (counting from 0) — the shape that drives a daemon into
// its degraded state and back out.
func NewBurst(start, n int64) *Schedule {
	return &Schedule{
		hit: func(op int64, _ func() uint64) bool {
			return op >= start && op < start+n
		},
	}
}

// Hit consumes one operation slot and reports whether to inject.
func (s *Schedule) Hit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	op := s.op
	s.op++
	h := s.hit(op, func() uint64 { return splitmix64(&s.state) })
	if h {
		s.hits++
	}
	return h
}

// pick returns a deterministic value in [0, k) for choosing among fault
// kinds; it draws from the same PRNG stream as probabilistic schedules.
func (s *Schedule) pick(k int) int {
	if k <= 1 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(splitmix64(&s.state) % uint64(k))
}

// Ops returns how many decisions the schedule has taken.
func (s *Schedule) Ops() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.op
}

// Hits returns how many of those decisions injected a fault.
func (s *Schedule) Hits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}
