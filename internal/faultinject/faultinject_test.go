package faultinject

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/faults"
)

func TestProbScheduleDeterministic(t *testing.T) {
	a, b := NewProb(42, 0.3), NewProb(42, 0.3)
	hits := 0
	for i := 0; i < 500; i++ {
		ha, hb := a.Hit(), b.Hit()
		if ha != hb {
			t.Fatalf("op %d: schedules with the same seed diverged", i)
		}
		if ha {
			hits++
		}
	}
	if hits == 0 || hits == 500 {
		t.Fatalf("prob 0.3 produced %d/500 hits", hits)
	}
	if a.Ops() != 500 || a.Hits() != int64(hits) {
		t.Fatalf("counters: ops=%d hits=%d, want 500/%d", a.Ops(), a.Hits(), hits)
	}
	x, y := NewProb(42, 0.3), NewProb(43, 0.3)
	same := true
	for i := 0; i < 500; i++ {
		if x.Hit() != y.Hit() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestProbScheduleExtremes(t *testing.T) {
	never := NewProb(1, 0)
	always := NewProb(1, 1)
	for i := 0; i < 50; i++ {
		if never.Hit() {
			t.Fatal("prob 0 injected")
		}
		if !always.Hit() {
			t.Fatal("prob 1 skipped")
		}
	}
	// Out-of-range probabilities clamp.
	if NewProb(1, -3).Hit() {
		t.Fatal("negative prob injected")
	}
	if !NewProb(1, 7).Hit() {
		t.Fatal("prob > 1 skipped")
	}
}

func TestEveryNSchedule(t *testing.T) {
	s := NewEveryN(3)
	var got []bool
	for i := 0; i < 7; i++ {
		got = append(got, s.Hit())
	}
	want := []bool{false, false, true, false, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d: hit=%v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	if NewEveryN(0).Hit() {
		t.Fatal("n=0 injected")
	}
}

func TestBurstSchedule(t *testing.T) {
	s := NewBurst(2, 3) // ops 2,3,4 fail
	want := []bool{false, false, true, true, true, false, false}
	for i, w := range want {
		if got := s.Hit(); got != w {
			t.Fatalf("op %d: hit=%v, want %v", i, got, w)
		}
	}
}

// sliceSource replays a fixed block slice.
type sliceSource struct {
	blocks []*chain.Block
	next   int
}

func (s *sliceSource) NextBlock() (*chain.Block, error) {
	if s.next >= len(s.blocks) {
		return nil, io.EOF
	}
	b := s.blocks[s.next]
	s.next++
	return b, nil
}

func testBlocks(n int) []*chain.Block {
	blocks := make([]*chain.Block, n)
	for i := range blocks {
		blocks[i] = &chain.Block{Header: chain.BlockHeader{Version: 1, Nonce: uint32(i)}}
	}
	return blocks
}

func TestBlockSourceInjectsWithoutLosingBlocks(t *testing.T) {
	blocks := testBlocks(10)
	src := WrapBlockSource(&sliceSource{blocks: blocks}, NewEveryN(3))
	var delivered []*chain.Block
	faultsSeen := 0
	for {
		b, err := src.NextBlock()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !faults.IsTransient(err) || !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error not transient+marked: %v", err)
			}
			faultsSeen++
			continue
		}
		delivered = append(delivered, b)
	}
	if len(delivered) != len(blocks) {
		t.Fatalf("delivered %d blocks, want %d (faults must not consume blocks)", len(delivered), len(blocks))
	}
	for i, b := range delivered {
		if b != blocks[i] {
			t.Fatalf("block %d reordered or replaced", i)
		}
	}
	if faultsSeen == 0 || int64(faultsSeen) != src.Injected() {
		t.Fatalf("faultsSeen=%d, Injected()=%d", faultsSeen, src.Injected())
	}
}

// sliceFeed is a minimal BlockFeed over a block slice.
type sliceFeed struct {
	blocks []*chain.Block
	next   int
	closed bool
}

func (f *sliceFeed) Next(ctx context.Context) (*chain.Block, error) {
	if f.next >= len(f.blocks) {
		return nil, io.EOF
	}
	b := f.blocks[f.next]
	f.next++
	return b, nil
}
func (f *sliceFeed) Rewind(height int64) error { f.next = int(height); return nil }
func (f *sliceFeed) Buffered() bool            { return f.next < len(f.blocks) }
func (f *sliceFeed) Close() error              { f.closed = true; return nil }

func TestFeedInjectsAndDelegates(t *testing.T) {
	inner := &sliceFeed{blocks: testBlocks(6)}
	feed := WrapFeed(inner, NewEveryN(2), FeedFaults{})
	ctx := context.Background()
	delivered, injected := 0, 0
	for {
		_, err := feed.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !faults.IsTransient(err) {
				t.Fatalf("injected feed error not transient: %v", err)
			}
			injected++
			continue
		}
		delivered++
	}
	if delivered != 6 {
		t.Fatalf("delivered %d, want 6", delivered)
	}
	if injected == 0 || feed.Injected() != int64(injected) {
		t.Fatalf("injected=%d, Injected()=%d", injected, feed.Injected())
	}
	if err := feed.Rewind(0); err != nil || inner.next != 0 {
		t.Fatal("Rewind did not pass through")
	}
	if !feed.Buffered() {
		t.Fatal("Buffered did not pass through")
	}
	if err := feed.Close(); err != nil || !inner.closed {
		t.Fatal("Close did not pass through")
	}
}

func TestFeedDelayHonorsContext(t *testing.T) {
	feed := WrapFeed(&sliceFeed{blocks: testBlocks(1)}, NewProb(1, 1), FeedFaults{Delay: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := feed.Next(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Next under cancelled ctx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not honor ctx during injected delay")
	}
}

// writeTailFile writes a few bytes to a temp file and opens it.
func openTempFile(t *testing.T, content []byte) *os.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFileInjectsEAGAINAndShortReads(t *testing.T) {
	content := []byte("0123456789abcdef")
	f := WrapFile(openTempFile(t, content), NewProb(7, 1), true)
	defer f.Close()

	// First injection (odd count): outright EAGAIN failure.
	buf := make([]byte, 8)
	n, err := f.ReadAt(buf, 0)
	if n != 0 || !faults.IsTransient(err) {
		t.Fatalf("first injection: n=%d err=%v, want transient failure", n, err)
	}
	// Second injection (even count): short read of half the bytes.
	n, err = f.ReadAt(buf, 0)
	if n != 4 || !faults.IsTransient(err) {
		t.Fatalf("short read: n=%d err=%v, want 4 bytes + transient error", n, err)
	}
	if string(buf[:4]) != "0123" {
		t.Fatalf("short read delivered %q", buf[:4])
	}
	if f.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", f.Injected())
	}
	if st, err := f.Stat(); err != nil || st.Size() != int64(len(content)) {
		t.Fatalf("Stat passthrough: %v %v", st, err)
	}
}

func TestFilePassesCleanReadsThrough(t *testing.T) {
	content := []byte("0123456789")
	f := WrapFile(openTempFile(t, content), NewProb(1, 0), true)
	defer f.Close()
	buf := make([]byte, 4)
	if n, err := f.ReadAt(buf, 3); err != nil || n != 4 || string(buf) != "3456" {
		t.Fatalf("clean read: n=%d err=%v buf=%q", n, err, buf)
	}
}

// pipeConn builds a connected pair and pumps the far side.
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestConnInjectsErrors(t *testing.T) {
	near, _ := pipePair(t)
	c := WrapConn(near, NewProb(1, 1), ConnFaults{Errors: true})
	if _, err := c.Read(make([]byte, 4)); !faults.IsTransient(err) || !errors.Is(err, ErrInjected) {
		t.Fatalf("read error not transient+marked: %v", err)
	}
	if _, err := c.Write([]byte("x")); !faults.IsTransient(err) {
		t.Fatalf("write error not transient: %v", err)
	}
	if c.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", c.Injected())
	}
}

func TestConnDisconnectsMidStream(t *testing.T) {
	near, far := pipePair(t)
	c := WrapConn(near, NewBurst(1, 1), ConnFaults{Disconnects: true})
	go func() { far.Write([]byte("hello")) }()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("clean read before fault: %v %q", err, buf)
	}
	if _, err := c.Read(buf); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("disconnect read = %v, want injected disconnect", err)
	}
	// The underlying conn is closed: the far side observes EOF-ish failure
	// and further reads on the near side fail without injection.
	if _, err := c.Conn.Read(buf); err == nil {
		t.Fatal("underlying conn still alive after injected disconnect")
	}
}

func TestConnShortReadsAndDelays(t *testing.T) {
	near, far := pipePair(t)
	c := WrapConn(near, NewBurst(0, 1), ConnFaults{ShortReads: true})
	go func() { far.Write([]byte("abcd")) }()
	buf := make([]byte, 4)
	n, err := c.Read(buf)
	if err != nil || n != 1 || buf[0] != 'a' {
		t.Fatalf("short read: n=%d err=%v buf=%q", n, err, buf[:n])
	}

	near2, far2 := pipePair(t)
	d := WrapConn(near2, NewBurst(0, 1), ConnFaults{Delay: time.Millisecond})
	go func() { far2.Write([]byte("zz")) }()
	start := time.Now()
	if n, err := d.Read(buf[:2]); err != nil || n != 2 {
		t.Fatalf("delayed read: n=%d err=%v", n, err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay fault did not delay")
	}
}

func TestConnNoFaultsConfiguredIsTransparent(t *testing.T) {
	near, far := pipePair(t)
	c := WrapConn(near, NewProb(1, 1), ConnFaults{})
	go func() { far.Write([]byte("ok")) }()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("transparent conn: %v %q", err, buf)
	}
	if c.Injected() != 0 {
		t.Fatal("injected with no kinds enabled")
	}
}
