package faultinject

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/chain"
	"repro/internal/faults"
)

// BlockFeed is the structural shape of serve.BlockFeed, restated here so the
// harness can wrap a daemon feed without importing internal/serve (whose
// tests in turn import this package). A *Feed satisfies serve.BlockFeed.
type BlockFeed interface {
	Next(ctx context.Context) (*chain.Block, error)
	Rewind(height int64) error
	Buffered() bool
	Close() error
}

// FeedFaults configures what a wrapped feed injects on a schedule hit.
type FeedFaults struct {
	// Delay, when positive, stalls for this long (honoring ctx) before the
	// injected error is returned — a slow, failing source rather than a
	// fast-failing one.
	Delay time.Duration
}

// Feed wraps a block feed, failing Next with a transient error whenever the
// schedule fires. Faults are injected before the underlying feed is polled,
// so no delivered block is lost; Rewind, Buffered, and Close pass through
// untouched (reorg signaling stays the wrapped feed's job).
type Feed struct {
	feed     BlockFeed
	sched    *Schedule
	opts     FeedFaults
	injected atomic.Int64
}

// WrapFeed wraps feed with faults drawn from sched.
func WrapFeed(feed BlockFeed, sched *Schedule, opts FeedFaults) *Feed {
	return &Feed{feed: feed, sched: sched, opts: opts}
}

// Next returns the next block, or an injected transient error.
func (f *Feed) Next(ctx context.Context) (*chain.Block, error) {
	if f.sched.Hit() {
		n := f.injected.Add(1)
		if f.opts.Delay > 0 {
			timer := time.NewTimer(f.opts.Delay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
			}
		}
		return nil, faults.Transient(fmt.Errorf("%w: feed next %d", ErrInjected, n))
	}
	return f.feed.Next(ctx)
}

// Rewind passes through to the wrapped feed.
func (f *Feed) Rewind(height int64) error { return f.feed.Rewind(height) }

// Buffered passes through to the wrapped feed.
func (f *Feed) Buffered() bool { return f.feed.Buffered() }

// Close passes through to the wrapped feed.
func (f *Feed) Close() error { return f.feed.Close() }

// Injected returns how many faults have been injected so far.
func (f *Feed) Injected() int64 { return f.injected.Load() }
