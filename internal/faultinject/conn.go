package faultinject

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/faults"
)

// ConnFaults selects which fault kinds a wrapped connection may inject. On a
// schedule hit, one enabled kind is chosen deterministically from the
// schedule's stream.
type ConnFaults struct {
	// Delay, when positive, enables stall faults: the operation sleeps this
	// long and then proceeds normally.
	Delay time.Duration
	// ShortReads enables reads that deliver only the first byte requested.
	ShortReads bool
	// Errors enables transient read/write errors that leave the connection
	// usable.
	Errors bool
	// Disconnects enables mid-stream disconnects: the underlying connection
	// is closed, so every later operation fails the way a dropped peer does.
	Disconnects bool
}

// connFault is one injectable fault kind.
type connFault int

const (
	faultDelay connFault = iota
	faultShortRead
	faultError
	faultDisconnect
)

// Conn wraps a net.Conn with injected faults on reads and writes. Deadline
// and address methods pass through. Safe for one concurrent reader and one
// concurrent writer, like net.Conn itself.
type Conn struct {
	net.Conn
	sched    *Schedule
	kinds    []connFault
	delay    time.Duration
	injected atomic.Int64
}

// WrapConn wraps c with faults drawn from sched. A ConnFaults with nothing
// enabled injects nothing.
func WrapConn(c net.Conn, sched *Schedule, f ConnFaults) *Conn {
	var kinds []connFault
	if f.Delay > 0 {
		kinds = append(kinds, faultDelay)
	}
	if f.ShortReads {
		kinds = append(kinds, faultShortRead)
	}
	if f.Errors {
		kinds = append(kinds, faultError)
	}
	if f.Disconnects {
		kinds = append(kinds, faultDisconnect)
	}
	return &Conn{Conn: c, sched: sched, kinds: kinds, delay: f.Delay}
}

// inject decides whether this operation faults and, if so, which kind.
func (c *Conn) inject() (connFault, bool) {
	if len(c.kinds) == 0 || !c.sched.Hit() {
		return 0, false
	}
	c.injected.Add(1)
	return c.kinds[c.sched.pick(len(c.kinds))], true
}

// Read reads from the wrapped connection, or injects a fault.
func (c *Conn) Read(p []byte) (int, error) {
	switch kind, hit := c.inject(); {
	case !hit:
	case kind == faultDelay:
		time.Sleep(c.delay)
	case kind == faultShortRead && len(p) > 1:
		return c.Conn.Read(p[:1])
	case kind == faultError:
		return 0, faults.Transient(fmt.Errorf("%w: conn read", ErrInjected))
	case kind == faultDisconnect:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: conn disconnected mid-stream", ErrInjected)
	}
	return c.Conn.Read(p)
}

// Write writes to the wrapped connection, or injects a fault.
func (c *Conn) Write(p []byte) (int, error) {
	switch kind, hit := c.inject(); {
	case !hit:
	case kind == faultDelay:
		time.Sleep(c.delay)
	case kind == faultError:
		return 0, faults.Transient(fmt.Errorf("%w: conn write", ErrInjected))
	case kind == faultDisconnect:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: conn disconnected mid-stream", ErrInjected)
	}
	return c.Conn.Write(p)
}

// Injected returns how many faults have been injected so far.
func (c *Conn) Injected() int64 { return c.injected.Load() }
