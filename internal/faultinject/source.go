package faultinject

import (
	"fmt"
	"sync/atomic"

	"repro/internal/chain"
	"repro/internal/faults"
)

// BlockSource wraps a chain.BlockSource, failing NextBlock with a transient
// error whenever the schedule fires. The fault is injected before the
// underlying source is consulted, so no block is ever lost to an injection:
// a caller that retries sees the full stream.
type BlockSource struct {
	src      chain.BlockSource
	sched    *Schedule
	injected atomic.Int64
}

// WrapBlockSource wraps src with faults drawn from sched.
func WrapBlockSource(src chain.BlockSource, sched *Schedule) *BlockSource {
	return &BlockSource{src: src, sched: sched}
}

// NextBlock returns the next block, or an injected transient error.
func (s *BlockSource) NextBlock() (*chain.Block, error) {
	if s.sched.Hit() {
		n := s.injected.Add(1)
		return nil, faults.Transient(fmt.Errorf("%w: block source read %d", ErrInjected, n))
	}
	return s.src.NextBlock()
}

// Injected returns how many faults have been injected so far.
func (s *BlockSource) Injected() int64 { return s.injected.Load() }
