package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive knob must resolve to at least one worker")
	}
	if Workers(5) != 5 {
		t.Fatal("explicit knob must pass through")
	}
}

func TestGroupCollectsFirstError(t *testing.T) {
	g := NewGroup(2)
	var ran atomic.Int32
	boom := errors.New("boom")
	for i := 0; i < 8; i++ {
		i := i
		g.Go(func() error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	if ran.Load() != 8 {
		t.Fatalf("ran %d tasks, want all 8", ran.Load())
	}
}

func TestGroupZeroValueAndLimitOne(t *testing.T) {
	var g Group
	g.Go(func() error { return nil })
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	// Limit 1 serializes: tasks must observe strictly increasing order.
	seq := NewGroup(1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		seq.Go(func() error {
			order = append(order, i)
			return nil
		})
	}
	if err := seq.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("limit-1 group ran out of order: %v", order)
		}
	}
}

func TestForEachCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 16} {
		const n = 103
		seen := make([]atomic.Int32, n)
		ForEach(n, workers, func(start, end int) {
			for i := start; i < end; i++ {
				seen[i].Add(1)
			}
		})
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, seen[i].Load())
			}
		}
	}
	ForEach(0, 4, func(start, end int) { t.Fatal("fn called for empty range") })
}
