// Package par provides the small concurrency primitives the measurement
// pipeline is built on: an errgroup-style Group for fanning out independent
// stages and helpers for sizing worker pools. The standard library has no
// errgroup (that lives in golang.org/x/sync, which this repo does not
// depend on), so the ~50 lines are reimplemented here.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a parallelism knob: n <= 0 means "one worker per CPU",
// anything else is used as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Split divides a resolved worker budget evenly across branches that run
// concurrently, never dropping below one worker per branch. It is the single
// place the pipeline's "N variants share the Parallelism knob" arithmetic
// lives, so fan-out call sites cannot drift apart.
func Split(budget, branches int) int {
	if branches < 1 {
		branches = 1
	}
	w := Workers(budget) / branches
	if w < 1 {
		w = 1
	}
	return w
}

// Group runs a set of tasks concurrently and collects the first error.
// The zero value is ready to use and applies no concurrency limit.
type Group struct {
	wg   sync.WaitGroup
	sem  chan struct{}
	ctx  context.Context
	once sync.Once
	err  error
}

// NewGroup returns a Group that runs at most limit tasks at once.
// limit <= 0 means no limit.
func NewGroup(limit int) *Group {
	g := &Group{}
	if limit > 0 {
		g.sem = make(chan struct{}, limit)
	}
	return g
}

// NewGroupCtx is NewGroup bound to a context: once ctx is cancelled, Go
// stops launching new tasks (recording ctx.Err() as the group error) and a
// Go blocked on the concurrency limit gives up. Tasks already running are
// not interrupted — stages that can stop midway observe the same ctx
// themselves.
func NewGroupCtx(ctx context.Context, limit int) *Group {
	g := NewGroup(limit)
	g.ctx = ctx
	return g
}

// Go starts f in its own goroutine, blocking first if the concurrency limit
// is saturated. The first non-nil error wins; later tasks still run (the
// pipeline's stages have no way to be cancelled midway and their results are
// discarded on error).
func (g *Group) Go(f func() error) {
	if g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			g.once.Do(func() { g.err = err })
			return
		}
	}
	if g.sem != nil && g.ctx != nil {
		select {
		case g.sem <- struct{}{}:
		case <-g.ctx.Done():
			g.once.Do(func() { g.err = g.ctx.Err() })
			return
		}
	} else if g.sem != nil {
		g.sem <- struct{}{}
	}
	g.wg.Add(1)
	go func() {
		defer func() {
			if g.sem != nil {
				<-g.sem
			}
			g.wg.Done()
		}()
		if err := f(); err != nil {
			g.once.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every task started with Go has returned and reports the
// first error any of them produced.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}

// ForEach splits the half-open range [0, n) into at most workers contiguous
// chunks and runs fn(start, end) for each chunk concurrently, waiting for
// all of them. With workers <= 1 (or n < 2) it calls fn(0, n) inline, so the
// sequential path allocates nothing and runs no goroutines.
func ForEach(n, workers int, fn func(start, end int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}
