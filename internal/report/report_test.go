package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"name", "count"}}
	tb.AddRow("short", 1)
	tb.AddRow("a much longer name", 22222)
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, rule, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Fatal("missing title")
	}
	// Count column starts at the same offset in both data rows.
	idx1 := strings.Index(lines[4], "1")
	idx2 := strings.Index(lines[5], "22222")
	if idx1 != idx2 {
		t.Fatalf("misaligned columns: %d vs %d\n%s", idx1, idx2, out)
	}
}

func TestRenderRaggedRows(t *testing.T) {
	tb := &Table{Headers: []string{"name", "count"}}
	tb.AddRow("short", 1, "an overflow cell", 7)
	tb.AddRow("longer name", 22, "x")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Overflow columns must be padded like any other: the third column
	// starts at the same offset in both data rows.
	idx1 := strings.Index(lines[2], "an overflow cell")
	idx2 := strings.Index(lines[3], "x")
	if idx1 < 0 || idx1 != idx2 {
		t.Fatalf("overflow column misaligned: %d vs %d\n%s", idx1, idx2, out)
	}
	// The separator rule must span every column, including the ones the
	// header doesn't know about.
	sep := lines[1]
	widest := 0
	for _, l := range []string{lines[0], strings.TrimRight(lines[2], " "), strings.TrimRight(lines[3], " ")} {
		if len(l) > widest {
			widest = len(l)
		}
	}
	if len(sep) < widest {
		t.Fatalf("separator rule length %d shorter than widest row %d:\n%s", len(sep), widest, out)
	}
}

func TestRenderNotes(t *testing.T) {
	tb := &Table{Headers: []string{"a"}, Notes: []string{"hello"}}
	tb.AddRow("x")
	if !strings.Contains(tb.Render(), "note: hello") {
		t.Fatal("note not rendered")
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{Headers: []string{"name", "value"}}
	tb.AddRow(`with,comma`, `with"quote`)
	csv := tb.CSV()
	want := "name,value\n\"with,comma\",\"with\"\"quote\"\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.1362); got != "13.62%" {
		t.Errorf("Pct = %q", got)
	}
	if got := BTC(1234.5); got != "1234" { // >= 1000: integers (rounded)
		if got != "1235" {
			t.Errorf("BTC large = %q", got)
		}
	}
	if got := BTC(2.5); got != "2.50" {
		t.Errorf("BTC mid = %q", got)
	}
	if got := BTC(0.12345); got != "0.1234" {
		if got != "0.1235" {
			t.Errorf("BTC small = %q", got)
		}
	}
}
