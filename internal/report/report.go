// Package report renders experiment results as aligned text tables and CSV,
// the output format of the benchmark harness and the CLI.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are printed under the table (e.g. paper-vs-measured caveats).
	Notes []string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned text with a title rule.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
		b.WriteString(strings.Repeat("=", len(t.Title)) + "\n")
	}
	// Size columns to the widest row, not just the headers: a row may carry
	// more cells than the header (e.g. ragged diagnostic rows), and those
	// columns must still be padded and counted in the separator rule.
	cols := len(t.Headers)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2) + "\n")
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// CSV returns the table in RFC-4180-ish CSV (quotes around cells containing
// commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a ratio as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// BTC formats a float BTC quantity compactly.
func BTC(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
