package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestDetRange(t *testing.T) {
	linttest.Run(t, lint.DetRange, "detrange")
}
