package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMix flags variables accessed both through sync/atomic and plainly.
//
// A counter that one goroutine bumps with atomic.AddInt64 and another reads
// with a plain load has no defined value — the atomic call buys nothing if
// any access bypasses it. The econ sealer's engine-tracked counters are the
// motivating case: every access to such a field must go through sync/atomic
// (or the field should become an atomic.Int64, which makes plain access
// impossible to express). The analyzer collects every variable passed by
// address to a sync/atomic function anywhere in the package and reports
// every other plain read or write of it. Composite-literal keys (struct
// construction) are exempt: the value is not shared until published.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags variables accessed both via sync/atomic and via plain loads/stores in the same package",
	Run:  runAtomicMix,
}

// isAtomicOp reports whether call is a package-level sync/atomic operation
// taking the target's address as first argument, e.g.
// atomic.AddUint64(&x, 1). Methods on the typed atomics (atomic.Bool,
// atomic.Pointer, ...) are excluded: their receiver is the atomic cell, and
// a pointer argument (Pointer.Store(&v)) is a stored value, not a variable
// being accessed atomically.
func isAtomicOp(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

func runAtomicMix(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1: variables (fields or vars) whose address feeds sync/atomic,
	// and the identifier nodes used inside those atomic arguments.
	atomicVars := make(map[types.Object]bool)
	inAtomicArg := make(map[*ast.Ident]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicOp(info, call) || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			var target *ast.Ident
			switch e := ast.Unparen(addr.X).(type) {
			case *ast.Ident:
				target = e
			case *ast.SelectorExpr:
				target = e.Sel
			}
			if target == nil {
				return true
			}
			obj := info.ObjectOf(target)
			if _, isVar := obj.(*types.Var); !isVar {
				return true
			}
			atomicVars[obj] = true
			// Exempt every identifier inside the &... argument (the base
			// expression s in &s.f is a plain read of s, not of s.f).
			ast.Inspect(call.Args[0], func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					inAtomicArg[id] = true
				}
				return true
			})
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: plain uses of those variables anywhere else in the package.
	for _, file := range pass.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || inAtomicArg[id] {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || !atomicVars[obj] {
				return true
			}
			if isCompositeLitKey(id, stack) {
				return true
			}
			pass.Reportf(id.Pos(), "%s is accessed with sync/atomic elsewhere in this package; this plain access races with the atomic ones — use sync/atomic here too, or an atomic.Int64-style typed field", obj.Name())
			return true
		})
	}
	return nil
}

// isCompositeLitKey reports whether id is the key of a composite-literal
// element (S{counter: 0} names the field, it does not access it).
func isCompositeLitKey(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	kv, ok := stack[len(stack)-1].(*ast.KeyValueExpr)
	if !ok || kv.Key != id {
		return false
	}
	_, ok = stack[len(stack)-2].(*ast.CompositeLit)
	return ok
}
