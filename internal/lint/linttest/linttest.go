// Package linttest is the analysistest counterpart for the in-tree lint
// framework: it loads a fixture package from testdata/src/<name>, typechecks
// it (stdlib imports resolve from source, fixture-local fakes like "par"
// resolve from sibling testdata directories), runs one analyzer, and
// compares the diagnostics against `// want "regexp"` comments in the
// fixture — the same contract as golang.org/x/tools/go/analysis/analysistest.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run loads testdata/src/<pkg> relative to the calling test's directory,
// applies the analyzer, and reports any mismatch between diagnostics and
// `// want` expectations as test errors. It returns the diagnostics so
// callers can make extra assertions.
func Run(t *testing.T, a *lint.Analyzer, pkg string) []lint.Diagnostic {
	t.Helper()
	l := newLoader(t, filepath.Join("testdata", "src"))
	fset, files, tpkg, info := l.load(pkg)
	diags, err := lint.Run(fset, files, tpkg, info, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("lint.Run(%s, %s): %v", a.Name, pkg, err)
	}
	checkWants(t, fset, files, diags)
	return diags
}

// loader typechecks fixture packages, resolving imports of sibling fixture
// directories before falling back to compiling stdlib from source (the
// module has no external dependencies, so those are the only two cases).
type loader struct {
	t    *testing.T
	root string
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*fixturePkg
}

type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func newLoader(t *testing.T, root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		t:    t,
		root: root,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*fixturePkg),
	}
}

func (l *loader) load(path string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	p := l.loadFixture(path)
	if p == nil {
		l.t.Fatalf("fixture package %q not found under %s", path, l.root)
	}
	return l.fset, p.files, p.pkg, p.info
}

// Import implements types.Importer for fixture typechecking.
func (l *loader) Import(path string) (*types.Package, error) {
	if p := l.loadFixture(path); p != nil {
		return p.pkg, nil
	}
	return l.std.Import(path)
}

// loadFixture parses and typechecks testdata/src/<path>, returning nil when
// no such fixture directory exists (the import is stdlib).
func (l *loader) loadFixture(path string) *fixturePkg {
	if p, ok := l.pkgs[path]; ok {
		return p
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			l.t.Fatalf("parse fixture %s: %v", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.t.Fatalf("fixture directory %s has no Go files", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		l.t.Fatalf("typecheck fixture %s: %v", path, err)
	}
	p := &fixturePkg{files: files, pkg: pkg, info: info}
	l.pkgs[path] = p
	return p
}

var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	wantStrs = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")
)

type expectation struct {
	re      *regexp.Regexp
	pos     string // file:line, for error messages
	matched bool
}

// checkWants compares diagnostics against `// want "re"` comments by
// (file, line). Each quoted string is one expected diagnostic on that line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantStrs.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, s, err)
					}
					wants[key] = append(wants[key], &expectation{re: re, pos: key})
				}
			}
		}
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: fistlint/%s: %s", key, d.Analyzer, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched %q", w.pos, w.re)
			}
		}
	}
}
