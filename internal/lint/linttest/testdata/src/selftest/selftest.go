// Package selftest is the harness's own fixture: one deliberate detrange
// finding plus an import of a sibling fixture package, so a single Run
// call exercises loading, fixture-vs-stdlib import resolution, analysis,
// and want-matching end to end.
package selftest

import (
	"fmt"
	"io"
	"sort"

	"selfdep"
)

func dumpUnsorted(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) // want "map order is random"
	}
}

func dumpSorted(w io.Writer, m map[string]int) {
	keys := selfdep.Keys(m)
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}
