// Package selfdep exists to be imported by the selftest fixture, so the
// harness's sibling-fixture import path is exercised alongside the
// stdlib-from-source fallback.
package selfdep

// Keys returns the map's keys in arbitrary order; callers sort.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
