package linttest

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestRunSelfFixture points the harness at its own fixture package:
// loading must resolve the sibling selfdep fixture through the fixture
// importer and fmt/io/sort through the stdlib fallback, the analyzer must
// produce exactly the one deliberate finding, and the want comment must
// absorb it without test errors.
func TestRunSelfFixture(t *testing.T) {
	diags := Run(t, lint.DetRange, "selftest")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "detrange" {
		t.Errorf("diagnostic attributed to %q, want detrange", d.Analyzer)
	}
	if !strings.Contains(d.Message, "map order is random") {
		t.Errorf("diagnostic message %q missing the detrange rationale", d.Message)
	}
	if !strings.HasSuffix(d.Pos.Filename, "selftest.go") {
		t.Errorf("diagnostic positioned in %q, want selftest.go", d.Pos.Filename)
	}
}

// TestLoaderCachesFixtures verifies one loader typechecks each fixture
// package once: the selftest package and its selfdep dependency come back
// pointer-identical on a second load.
func TestLoaderCachesFixtures(t *testing.T) {
	l := newLoader(t, "testdata/src")
	_, _, first, _ := l.load("selftest")
	_, _, again, _ := l.load("selftest")
	if first != again {
		t.Fatal("second load returned a different *types.Package; fixture cache is broken")
	}
	dep, err := l.Import("selfdep")
	if err != nil {
		t.Fatalf("Import(selfdep): %v", err)
	}
	if dep != l.pkgs["selfdep"].pkg {
		t.Fatal("Import(selfdep) bypassed the fixture cache")
	}
}

// TestLoaderStdlibFallback pins the importer's other branch: a path with
// no fixture directory resolves from the standard library.
func TestLoaderStdlibFallback(t *testing.T) {
	l := newLoader(t, "testdata/src")
	pkg, err := l.Import("strings")
	if err != nil {
		t.Fatalf("Import(strings): %v", err)
	}
	if pkg.Path() != "strings" {
		t.Fatalf("Import(strings) resolved to %q", pkg.Path())
	}
}
