package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is pass 1 of the two-pass framework the lifecycle analyzers
// (leakclose, goleak, lockheld, ctxflow) are built on. Before any analyzer
// runs, Summarize walks every function declaration in the package once and
// computes a FuncInfo summary — does the function close its parameters,
// spawn goroutines, block, accept a context — plus an intra-package call
// graph resolved from static call sites. Pass 2 (the analyzers) consumes
// the summaries instead of re-deriving facts at every call site, which is
// what lets a check reason across function boundaries: "this callee closes
// the file I pass it", "this callee blocks, so calling it under a mutex is
// a stall", "this named function is the body of a goroutine".
//
// Known approximations, shared by every consumer:
//
//   - The call graph covers static call sites only. Dynamic dispatch
//     through interfaces and calls through function values resolve to
//     nothing, so their effects are invisible (callers treat an unresolved
//     callee conservatively: unknown functions neither block nor close).
//   - Summaries are intra-package. Cross-package callees fall back to a
//     fixed model of the standard library (channel syntax, sync.*.Wait,
//     time.Sleep, net/os I/O) rather than real summaries.
//   - A function's blocking bit ignores code it only spawns (`go` bodies):
//     spawning is instantaneous even when the spawned body blocks.
type FuncInfo struct {
	// Decl is the summarized declaration; Fn its types object.
	Decl *ast.FuncDecl
	Fn   *types.Func

	// ClosesParam[i] reports that some path through the function calls
	// Close or Flush on the i-th parameter (the receiver is index -1). It
	// is how leakclose sees ownership transfer into a callee.
	ClosesParam map[int]bool

	// CtxParam is the index of the first context.Context parameter, -1
	// when the function does not accept one.
	CtxParam int

	// SpawnsGo reports a `go` statement anywhere in the body. SpawnedByGo
	// reports that some function in the package spawns THIS function with
	// a `go` statement — its body runs on its own goroutine.
	SpawnsGo    bool
	SpawnedByGo bool

	// BlocksDirect reports a blocking operation lexically in the body
	// (channel send/receive/select/range, a Wait, time.Sleep, known I/O).
	// Blocks adds transitivity: the function calls an in-package function
	// that Blocks. Code only spawned (`go` bodies) is excluded from both.
	BlocksDirect bool
	Blocks       bool

	// Join evidence for goleak, gathered over the body outside `go`
	// statements: the function signals a WaitGroup, closes or sends on or
	// receives from or ranges over a channel, or selects on a Done
	// channel. A goroutine whose body shows any of these has a join or
	// cancellation path.
	DoneWaitGroup bool
	ClosesChan    bool
	ChanOps       bool

	// Calls holds the intra-package functions this function calls from
	// static call sites (excluding `go` bodies, which don't run on this
	// function's goroutine).
	Calls map[*types.Func]bool
}

// JoinEvidence reports whether the function's body shows a join or
// cancellation path for a goroutine running it: it signals a WaitGroup,
// interacts with a channel, or closes one.
func (fi *FuncInfo) JoinEvidence() bool {
	return fi.DoneWaitGroup || fi.ClosesChan || fi.ChanOps
}

// Summaries is the pass-1 result for one package: a FuncInfo per function
// declaration, keyed by its types object.
type Summaries struct {
	byFn map[*types.Func]*FuncInfo
}

// Of returns fn's summary, or nil for functions not declared in this
// package (or not resolvable).
func (s *Summaries) Of(fn *types.Func) *FuncInfo {
	if s == nil || fn == nil {
		return nil
	}
	return s.byFn[fn]
}

// OfCallee resolves call's static callee and returns its summary, nil when
// the callee is dynamic, a builtin, or declared outside the package.
func (s *Summaries) OfCallee(info *types.Info, call *ast.CallExpr) *FuncInfo {
	return s.Of(calleeFunc(info, call))
}

// Funcs returns every summarized function (iteration order is undefined;
// callers needing determinism must sort).
func (s *Summaries) Funcs() map[*types.Func]*FuncInfo { return s.byFn }

// Summarize computes pass-1 summaries for every function declaration in the
// package files.
func Summarize(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Summaries {
	s := &Summaries{byFn: make(map[*types.Func]*FuncInfo)}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			s.byFn[fn] = summarizeFunc(info, fd, fn)
		}
	}
	s.markSpawned(info)
	s.propagateBlocks()
	return s
}

// summarizeFunc builds one FuncInfo by walking the body, skipping the
// subtrees of `go` statements (they run on another goroutine).
func summarizeFunc(info *types.Info, fd *ast.FuncDecl, fn *types.Func) *FuncInfo {
	fi := &FuncInfo{
		Decl:        fd,
		Fn:          fn,
		ClosesParam: make(map[int]bool),
		CtxParam:    -1,
		Calls:       make(map[*types.Func]bool),
	}
	params := paramObjects(info, fd)
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			fi.CtxParam = i
			break
		}
	}

	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			fi.SpawnsGo = true
			return false // spawned code runs elsewhere; see markSpawned
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			fi.BlocksDirect = true
			fi.ChanOps = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				fi.BlocksDirect = true
				fi.ChanOps = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				fi.BlocksDirect = true
			}
			fi.ChanOps = true
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && isChanType(tv.Type) {
				fi.BlocksDirect = true
				fi.ChanOps = true
			}
		case *ast.CallExpr:
			summarizeCall(info, fi, params, n)
		}
		return true
	})
	return fi
}

// summarizeCall folds one call expression into the summary.
func summarizeCall(info *types.Info, fi *FuncInfo, params map[types.Object]int, call *ast.CallExpr) {
	// close(ch) is join evidence (the done-channel idiom).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && info.Uses[id] == types.Universe.Lookup("close") {
		fi.ClosesChan = true
		return
	}
	fn := calleeFunc(info, call)
	if fn != nil {
		if fi.Fn.Pkg() != nil && fn.Pkg() == fi.Fn.Pkg() && fn != fi.Fn {
			fi.Calls[fn] = true
		}
		if fn.Name() == "Done" && isMethodOn(fn, "sync", "WaitGroup") {
			fi.DoneWaitGroup = true
		}
	}
	if callBlocksDirect(info, call) {
		fi.BlocksDirect = true
	}
	// x.Close() / x.Flush() on a parameter: the function releases a value
	// it was handed — leakclose's ownership-transfer exemption.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
		(sel.Sel.Name == "Close" || sel.Sel.Name == "Flush") && len(call.Args) == 0 {
		if obj := baseIdentObj(info, sel.X); obj != nil {
			if idx, ok := params[obj]; ok {
				fi.ClosesParam[idx] = true
			}
		}
	}
}

// markSpawned records, for every `go` statement whose callee resolves to an
// in-package function (directly or as the sole call inside a spawned
// closure), that the target function runs on its own goroutine.
func (s *Summaries) markSpawned(info *types.Info) {
	for _, fi := range s.byFn {
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if target := s.OfCallee(info, g.Call); target != nil {
				target.SpawnedByGo = true
			}
			// go func() { ... f() ... }: everything inside the literal runs
			// on the new goroutine, so any in-package callee is goroutine-borne.
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if target := s.OfCallee(info, call); target != nil {
							target.SpawnedByGo = true
						}
					}
					return true
				})
			}
			return true
		})
	}
}

// propagateBlocks closes the Blocks bit over the intra-package call graph:
// a function blocks when it blocks directly or calls an in-package function
// that blocks. Cycles converge because the bit only ever flips one way.
func (s *Summaries) propagateBlocks() {
	for _, fi := range s.byFn {
		fi.Blocks = fi.BlocksDirect
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range s.byFn {
			if fi.Blocks {
				continue
			}
			for callee := range fi.Calls {
				if target := s.byFn[callee]; target != nil && target.Blocks {
					fi.Blocks = true
					changed = true
					break
				}
			}
		}
	}
}

// paramObjects maps each parameter (and the receiver, index -1) of fd to
// its signature index.
func paramObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	params := make(map[types.Object]int)
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = -1
				}
			}
		}
	}
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = idx
				}
				idx++
			}
		}
	}
	return params
}

// ---------------------------------------------------------------------------
// the shared blocking / type classification model

// callBlocksDirect reports whether a call is a known blocking operation
// without consulting summaries: Wait on anything, time.Sleep, and the I/O
// model (methods on net types and *os.File, functions in package net, any
// call handed a net value).
func callBlocksDirect(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn != nil {
		sig := fn.Type().(*types.Signature)
		if fn.Name() == "Wait" && sig.Recv() != nil {
			return true // sync.WaitGroup, sync.Cond, par.Group, exec.Cmd, ...
		}
		if pkgPathIs(fn, "time") && fn.Name() == "Sleep" {
			return true
		}
		// par.ForEach runs its workers and waits for them.
		if pkgPathIs(fn, "par") && fn.Name() == "ForEach" && sig.Recv() == nil {
			return true
		}
	}
	return callIsIO(info, call)
}

// ioExemptNetMethods are methods on net types that complete without
// touching the wire: address accessors and deadline bookkeeping.
var ioExemptNetMethods = map[string]bool{
	"LocalAddr": true, "RemoteAddr": true, "Addr": true,
	"Network": true, "String": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// ioExemptOsFileMethods are *os.File methods that don't perform I/O.
var ioExemptOsFileMethods = map[string]bool{"Name": true, "Fd": true}

// callIsIO reports whether a call performs (potentially blocking) I/O under
// the fixed stdlib model: a method on a net type or *os.File, a function in
// package net (Dial, Listen, ...), or any call that receives a net value as
// an argument (e.g. wire.WriteMessage(conn, ...)).
func callIsIO(info *types.Info, call *ast.CallExpr) bool {
	if fn := calleeFunc(info, call); fn != nil {
		sig := fn.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			if isNetType(recv.Type()) && !ioExemptNetMethods[fn.Name()] {
				return true
			}
			if isOsFileType(recv.Type()) && !ioExemptOsFileMethods[fn.Name()] {
				return true
			}
		} else if fn.Pkg() != nil && fn.Pkg().Path() == "net" {
			return true
		}
	}
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isNetType(tv.Type) {
			return true
		}
	}
	return false
}

// isNetType reports whether t (possibly behind a pointer) is a named type
// declared in package net (net.Conn, net.Listener, *net.TCPConn, ...).
func isNetType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net"
}

// isOsFileType reports whether t is *os.File (or os.File).
func isOsFileType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Name() == "File" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "os"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Name() == "Context" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context"
}

// namedOf unwraps pointers and returns t's named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isMethodOn reports whether fn is a method on (a pointer to) pkg.recvType.
func isMethodOn(fn *types.Func, pkg, recvType string) bool {
	if fn == nil || !pkgPathIs(fn, pkg) {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := namedOf(recv.Type())
	return named != nil && named.Obj().Name() == recvType
}

// selectHasDefault reports whether a select statement has a default case
// (making it non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
