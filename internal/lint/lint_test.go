package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/lint"
)

// typecheckSrc parses and typechecks one import-free source file.
func typecheckSrc(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, []*ast.File{f}, pkg, info
}

// incAnalyzer reports every ++/-- statement; it exists to exercise the
// framework (suppression, ordering, error paths) with predictable findings.
var incAnalyzer = &lint.Analyzer{
	Name: "inc",
	Doc:  "test analyzer flagging IncDec statements",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.IncDecStmt); ok {
					pass.Reportf(id.Pos(), "incdec")
				}
				return true
			})
		}
		return nil
	},
}

func TestAllRegistersEightAnalyzers(t *testing.T) {
	got := lint.All()
	want := []string{"detrange", "parcapture", "atomicmix", "errflow", "leakclose", "goleak", "lockheld", "ctxflow"}
	if len(got) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("All()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}

func TestSuppressionCoversSameAndNextLine(t *testing.T) {
	src := `package x

func f() {
	n := 0
	n++
	//lint:ignore fistlint/inc covered by directive above
	n++
	n++ //lint:ignore inc trailing directive, bare analyzer name
	_ = n
}
`
	fset, files, pkg, info := typecheckSrc(t, src)
	diags, err := lint.Run(fset, files, pkg, info, []*lint.Analyzer{incAnalyzer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (only the unsuppressed n++): %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 5 {
		t.Errorf("surviving diagnostic on line %d, want 5", diags[0].Pos.Line)
	}
	if !strings.Contains(diags[0].String(), "fistlint/inc") {
		t.Errorf("String() = %q, want analyzer name included", diags[0].String())
	}
}

func TestSuppressionForOtherAnalyzerDoesNotApply(t *testing.T) {
	src := `package x

func f() {
	n := 0
	//lint:ignore fistlint/detrange wrong analyzer for this finding
	n++
	_ = n
}
`
	fset, files, pkg, info := typecheckSrc(t, src)
	diags, err := lint.Run(fset, files, pkg, info, []*lint.Analyzer{incAnalyzer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (directive names another analyzer): %v", len(diags), diags)
	}
}

func TestMalformedDirectiveIsReported(t *testing.T) {
	src := `package x

func f() {
	n := 0
	//lint:ignore fistlint/inc
	n++
	_ = n
}
`
	fset, files, pkg, info := typecheckSrc(t, src)
	diags, err := lint.Run(fset, files, pkg, info, []*lint.Analyzer{incAnalyzer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var sawDirective, sawInc bool
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			sawDirective = strings.Contains(d.Message, "missing a reason")
		case "inc":
			sawInc = true
		}
	}
	if !sawDirective {
		t.Errorf("missing-reason directive not reported: %v", diags)
	}
	if !sawInc {
		t.Errorf("reasonless directive must not suppress the finding: %v", diags)
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	src := `package x

func g() {
	b := 0
	b++
	b++
	_ = b
}

func f() {
	a := 0
	a++
	_ = a
}
`
	fset, files, pkg, info := typecheckSrc(t, src)
	diags, err := lint.Run(fset, files, pkg, info, []*lint.Analyzer{incAnalyzer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		if diags[i-1].Pos.Line > diags[i].Pos.Line {
			t.Errorf("diagnostics out of order: line %d before line %d", diags[i-1].Pos.Line, diags[i].Pos.Line)
		}
	}
}
