package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestErrFlow(t *testing.T) {
	linttest.Run(t, lint.ErrFlow, "errflow")
}
