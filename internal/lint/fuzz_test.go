package lint

import (
	"strings"
	"testing"
)

// FuzzParseIgnoreDirective hardens the suppression-directive parser: it
// must never panic on arbitrary comment text, and every matched directive
// must come out normalized — non-empty prefix-stripped analyzer names and
// a trimmed reason — so malformed directives are reported by applyIgnores
// instead of silently dropped or, worse, silently suppressing.
func FuzzParseIgnoreDirective(f *testing.F) {
	seeds := []string{
		"//lint:ignore fistlint/detrange map order never reaches output",
		"//lint:ignore detrange bare analyzer name",
		"//lint:ignore fistlint/errflow,fistlint/goleak one directive, two analyzers",
		"//lint:ignore fistlint/inc",
		"//lint:ignore ,,, reason for nobody",
		"//lint:ignore",
		"//lint:ignore\tfistlint/inc tab separated",
		"// an ordinary comment",
		"//lint:ignorefistlint/inc no space after the verb",
		"/*lint:ignore fistlint/inc block comment*/",
		"//lint:ignore fistlint/ reason with empty name",
		"//lint:ignore fistlint/a    reason   with   runs   of   spaces",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		names, reason, matched := parseIgnoreDirective(text)
		if !matched {
			if len(names) != 0 || reason != "" {
				t.Fatalf("unmatched text %q returned names=%v reason=%q", text, names, reason)
			}
			return
		}
		if !strings.HasPrefix(text, "//lint:ignore") {
			t.Fatalf("matched text %q lacks the directive prefix", text)
		}
		for _, n := range names {
			if n == "" {
				t.Fatalf("empty analyzer name parsed from %q", text)
			}
			if strings.HasPrefix(n, "fistlint/") {
				t.Fatalf("name %q from %q kept its fistlint/ prefix", n, text)
			}
			if strings.ContainsAny(n, " \t\n") {
				t.Fatalf("name %q from %q contains whitespace", n, text)
			}
		}
		if reason != strings.TrimSpace(reason) {
			t.Fatalf("reason %q from %q is not trimmed", reason, text)
		}
	})
}

// TestDirectiveNamingNoAnalyzerIsReported pins the applyIgnores side of
// the malformed-directive contract for the all-commas case.
func TestParseIgnoreDirectiveCases(t *testing.T) {
	cases := []struct {
		text    string
		names   []string
		reason  string
		matched bool
	}{
		{"//lint:ignore fistlint/detrange why not", []string{"detrange"}, "why not", true},
		{"//lint:ignore a,fistlint/b shared reason", []string{"a", "b"}, "shared reason", true},
		{"//lint:ignore ,,, orphan reason", nil, "orphan reason", true},
		{"//lint:ignore fistlint/inc", []string{"inc"}, "", true},
		{"// plain comment", nil, "", false},
	}
	for _, tc := range cases {
		names, reason, matched := parseIgnoreDirective(tc.text)
		if matched != tc.matched || reason != tc.reason || len(names) != len(tc.names) {
			t.Errorf("parseIgnoreDirective(%q) = (%v, %q, %v), want (%v, %q, %v)",
				tc.text, names, reason, matched, tc.names, tc.reason, tc.matched)
			continue
		}
		for i := range names {
			if names[i] != tc.names[i] {
				t.Errorf("parseIgnoreDirective(%q) names[%d] = %q, want %q", tc.text, i, names[i], tc.names[i])
			}
		}
	}
}
