package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file holds the AST/type helpers shared by the four analyzers.

// inspectStack walks root like ast.Inspect but also hands fn the stack of
// enclosing nodes (outermost first, not including n). Returning false skips
// n's children.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// calleeFunc resolves the *types.Func a call expression invokes (function or
// method), or nil for calls through function values, builtins, and
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// pkgPathIs reports whether fn is declared in a package whose import path is
// name or ends in "/"+name. Suffix matching keeps the analyzers working both
// against the real tree ("repro/internal/par") and the test fixtures, whose
// fake packages use bare paths ("par").
func pkgPathIs(fn *types.Func, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == name || strings.HasSuffix(path, "/"+name)
}

// isPkgFunc reports whether call invokes the package-level function
// pkg.name (pkg matched by pkgPathIs).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkg, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == name && pkgPathIs(fn, pkg) && fn.Type().(*types.Signature).Recv() == nil
}

// isMethod reports whether call invokes a method named name on a (pointer
// to) named type recvType declared in package pkg.
func isMethod(info *types.Info, call *ast.CallExpr, pkg, recvType, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name || !pkgPathIs(fn, pkg) {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == recvType
}

// declaredOutside reports whether obj is declared outside node's source
// range, i.e. node's body only captured it. Objects without a position
// (builtins, nil) are never "captured".
func declaredOutside(obj types.Object, node ast.Node) bool {
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() < node.Pos() || obj.Pos() >= node.End()
}

// baseIdentObj resolves the root identifier's object of an lvalue
// expression: x -> x, x.f.g -> x, m[k] -> m, (*p).f -> p. Returns nil when
// the root is not a plain identifier (e.g. a call result).
func baseIdentObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return info.ObjectOf(e)
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// callsMethodNamed reports whether any call to a method with the given name
// appears under root (used for the crude but effective "this closure takes a
// lock" exemption in parcapture).
func callsMethodNamed(info *types.Info, root ast.Node, name string) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil && fn.Name() == name && fn.Type().(*types.Signature).Recv() != nil {
			found = true
			return false
		}
		return true
	})
	return found
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// resultTypes returns the result types of the function a call invokes, or
// nil when the callee's type is not a signature (conversions, builtins).
func resultTypes(info *types.Info, call *ast.CallExpr) []types.Type {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	out := make([]types.Type, sig.Results().Len())
	for i := range out {
		out[i] = sig.Results().At(i).Type()
	}
	return out
}
