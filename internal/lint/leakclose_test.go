package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestLeakClose(t *testing.T) {
	linttest.Run(t, lint.LeakClose, "leakclose")
}
