package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestLockHeld(t *testing.T) {
	linttest.Run(t, lint.LockHeld, "lockheld")
}
