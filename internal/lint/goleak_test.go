package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestGoLeak(t *testing.T) {
	linttest.Run(t, lint.GoLeak, "goleak")
}
