package lint

import (
	"go/ast"
	"go/types"
)

// DetRange flags map iteration whose order can leak into pipeline output.
//
// Go randomizes map iteration order, so a `range` over a map that feeds an
// ordering-sensitive sink — an append that escapes the function, a writer,
// a rendered table row, a hash — makes output differ run to run, which is
// exactly the property the repo's parallel≡sequential determinism tests
// exist to forbid. Two patterns are reported:
//
//  1. a call to a sink (Write/WriteString/WriteBlock/AddRow/Encode methods,
//     fmt.Fprint*/fmt.Print*) inside the body of a map range;
//  2. an append inside a map range that accumulates into a slice declared
//     outside the loop, when that slice later escapes (returned, ranged
//     over, or passed to a non-sorting call) without an intervening
//     sort.*/slices.* call.
//
// Order-insensitive reductions (sums, counts, writes into another map) are
// not flagged, and sorting the accumulated slice before use clears pattern 2.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc:  "flags range-over-map results flowing into ordering-sensitive sinks without a deterministic sort",
	Run:  runDetRange,
}

// detSinkMethods are method names treated as ordering-sensitive sinks when
// called inside a map range: byte/stream writers (including chain.Writer's
// WriteBlock and hash.Hash's Write), table rendering, and encoders.
var detSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteBlock":  true,
	"AddRow":      true,
	"Encode":      true,
}

// detSinkFmtFuncs are fmt functions that emit directly to a stream.
var detSinkFmtFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runDetRange(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			detRangeFunc(pass, fd.Body)
		}
	}
	return nil
}

// detRangeFunc analyzes one function body: finds map ranges, then checks
// their bodies for sink calls and escaping append accumulations.
func detRangeFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || !isMapType(tv.Type) {
			return true
		}
		detCheckSinks(pass, rng)
		detCheckAppends(pass, body, rng)
		return true
	})
}

// detCheckSinks reports direct sink calls inside a map-range body.
func detCheckSinks(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		sig := fn.Type().(*types.Signature)
		switch {
		case sig.Recv() != nil && detSinkMethods[fn.Name()]:
			pass.Reportf(call.Pos(), "%s.%s called inside range over map: map order is random, so emitted output is nondeterministic; iterate a sorted key slice instead", recvTypeName(sig), fn.Name())
		case sig.Recv() == nil && pkgPathIs(fn, "fmt") && detSinkFmtFuncs[fn.Name()]:
			pass.Reportf(call.Pos(), "fmt.%s called inside range over map: map order is random, so emitted output is nondeterministic; iterate a sorted key slice instead", fn.Name())
		}
		return true
	})
}

// recvTypeName renders a method receiver's type name for diagnostics.
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// detCheckAppends reports appends inside a map range that accumulate into an
// outer slice which later escapes unsorted.
func detCheckAppends(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	seen := make(map[types.Object]bool)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(as.Lhs) <= i {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || info.Uses[id] != types.Universe.Lookup("append") {
				continue
			}
			obj := baseIdentObj(info, as.Lhs[i])
			if obj == nil || seen[obj] || !declaredOutside(obj, rng) {
				continue
			}
			seen[obj] = true
			if sortedAfter(info, body, rng, obj) {
				continue
			}
			if escapesUnsorted(info, body, rng, obj) {
				pass.Reportf(as.Pos(), "append to %s inside range over map accumulates in random order and %s escapes without a deterministic sort; sort it before use", obj.Name(), obj.Name())
			}
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sort.* or slices.* call
// after the range loop ends.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || !(pkgPathIs(fn, "sort") || pkgPathIs(fn, "slices")) {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(info, arg, obj) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// escapesUnsorted reports whether obj's iteration-ordered contents reach
// beyond the enclosing function after the loop: returned, ranged over,
// spread into another append, or passed to a call other than the builtins
// and sorting helpers that don't observe order.
func escapesUnsorted(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	escapes := false
	inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		if escapes {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj || id.Pos() < rng.End() {
			return true
		}
		for i := len(stack) - 1; i >= 0; i-- {
			switch outer := stack[i].(type) {
			case *ast.ReturnStmt:
				escapes = true
				return false
			case *ast.RangeStmt:
				if exprMentions(info, outer.X, obj) {
					escapes = true
					return false
				}
			case *ast.CallExpr:
				if callObservesOrder(info, outer, id) {
					escapes = true
					return false
				}
				// A call that doesn't observe order (len, sort, append
				// into the same accumulator) neutralizes the value; stop
				// climbing so e.g. t.AddRow(len(keys)) is not an escape.
				return true
			}
		}
		return true
	})
	return escapes
}

// callObservesOrder reports whether passing id to call lets the callee see
// element order: true for ordinary calls, false for len/cap/delete and for
// append when id is the accumulation target (first argument).
func callObservesOrder(info *types.Info, call *ast.CallExpr, id *ast.Ident) bool {
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if ok {
		switch obj := info.Uses[fn]; obj {
		case types.Universe.Lookup("len"), types.Universe.Lookup("cap"), types.Universe.Lookup("delete"):
			return false
		case types.Universe.Lookup("append"):
			// append(s, ...) grows the accumulator; order escapes only when
			// s is spread into a different slice (not the first argument).
			return len(call.Args) == 0 || !exprMentions(info, call.Args[0], info.Uses[id])
		}
	}
	if f := calleeFunc(info, call); f != nil && (pkgPathIs(f, "sort") || pkgPathIs(f, "slices")) {
		return false
	}
	return true
}

// exprMentions reports whether expr contains an identifier bound to obj.
func exprMentions(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
