package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ParCapture flags worker closures that mutate shared state they captured.
//
// The pipeline's fan-outs hand closures to par.ForEach, (*par.Group).Go,
// errgroup-style Go methods, and bare `go` statements. A closure that
// mutates captured state races against its sibling workers — the exact bug
// class every shard merge in PRs 1–5 was hand-audited for. Flagged:
//
//   - ++/-- or compound assignment (+=, |=, ...) on a captured variable or
//     field: a read-modify-write is a race whenever any other goroutine
//     touches the same cell;
//   - writes into a captured map (concurrent map writes fault at runtime);
//   - plain assignment to a captured variable or field when the closure
//     body runs on multiple workers (par.ForEach), when the spawn site sits
//     inside a loop (one closure per iteration, all targeting the same
//     cell), or when two different worker closures assign the same object.
//
// Deliberately not flagged, because they are the repo's sanctioned
// patterns: writes to distinct slice elements (out[i] = ... — each worker
// owns its index range), a single one-shot closure assigning a result slot
// it alone owns (p.Owners = ... with each Group.Go branch writing disjoint
// fields), closures that take a mutex (any .Lock() call), closures that
// synchronize via channel sends, and sync.Once.Do bodies.
var ParCapture = &Analyzer{
	Name: "parcapture",
	Doc:  "flags closures passed to par.ForEach/Group.Go/go that mutate captured unsynchronized state",
	Run:  runParCapture,
}

// plainWrite records one plain assignment to a captured location from a
// one-shot worker closure; it becomes a finding only if another closure
// assigns the same location.
type plainWrite struct {
	pos   token.Pos
	lit   *ast.FuncLit
	spawn string
	name  string
}

// plainKey identifies the written location: the captured root variable plus
// the selected field path. Distinct fields of one struct are distinct slots
// (the pipeline's disjoint-field fan-out writes p.Naive and p.Owners from
// different Group.Go branches — not a race).
type plainKey struct {
	obj  types.Object
	path string
}

func runParCapture(pass *Pass) error {
	info := pass.TypesInfo
	plain := make(map[plainKey][]plainWrite)
	for _, file := range pass.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isWorkerSpawn(info, n) {
					return true
				}
				// A ForEach body runs concurrently on every worker; a Go
				// closure runs once but multiplies when spawned in a loop.
				multi := isPkgFunc(info, n, "par", "ForEach") || inLoop(stack)
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkWorkerLit(pass, lit, spawnName(info, n), multi, plain)
					}
				}
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkWorkerLit(pass, lit, "go", inLoop(stack), plain)
				}
			}
			return true
		})
	}
	// Plain assignments from one-shot closures race only when two different
	// closures target the same location.
	for _, writes := range plain {
		lits := make(map[*ast.FuncLit]bool)
		for _, w := range writes {
			lits[w.lit] = true
		}
		if len(lits) < 2 {
			continue
		}
		for _, w := range writes {
			pass.Reportf(w.pos, "closure passed to %s writes captured variable %s, which another concurrent closure also writes; give each closure its own slot or add synchronization", w.spawn, w.name)
		}
	}
	return nil
}

// inLoop reports whether the innermost enclosing statement context (up to
// the nearest function boundary) is a for/range loop.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}

// isWorkerSpawn reports whether call fans work out to concurrent workers:
// par.ForEach, a Go method on a par/errgroup Group, or sync.WaitGroup.Go.
func isWorkerSpawn(info *types.Info, call *ast.CallExpr) bool {
	return isPkgFunc(info, call, "par", "ForEach") ||
		isMethod(info, call, "par", "Group", "Go") ||
		isMethod(info, call, "errgroup", "Group", "Go") ||
		isMethod(info, call, "sync", "WaitGroup", "Go")
}

// spawnName renders the spawning callee for diagnostics.
func spawnName(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "worker spawn"
	}
	if sig := fn.Type().(*types.Signature); sig.Recv() != nil {
		return recvTypeName(sig) + "." + fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// checkWorkerLit flags captured-state mutation inside one worker closure.
// Inline helper closures run on the worker's goroutine and are scanned too;
// closures handed to their own spawn site (checked there) and sync.Once.Do
// bodies (synchronized by definition) are skipped.
func checkWorkerLit(pass *Pass, lit *ast.FuncLit, spawn string, multi bool, plain map[plainKey][]plainWrite) {
	info := pass.TypesInfo
	if closureSynchronizes(info, lit) {
		return
	}
	skip := nestedSkips(info, lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && skip[inner] {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkCapturedWrite(pass, lit, lhs, spawn, n.Tok != token.ASSIGN, multi, plain)
			}
		case *ast.IncDecStmt:
			checkCapturedWrite(pass, lit, n.X, spawn, true, multi, plain)
		}
		return true
	})
}

// nestedSkips collects closures under lit that must not be scanned as part
// of lit's body: arguments to further worker spawns or go statements (they
// are checked at that spawn site) and sync.Once.Do arguments.
func nestedSkips(info *types.Info, lit *ast.FuncLit) map[*ast.FuncLit]bool {
	skips := make(map[*ast.FuncLit]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWorkerSpawn(info, n) || isMethod(info, n, "sync", "Once", "Do") {
				for _, arg := range n.Args {
					if l, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						skips[l] = true
					}
				}
			}
		case *ast.GoStmt:
			if l, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				skips[l] = true
			}
		}
		return true
	})
	return skips
}

// closureSynchronizes reports whether the closure body contains its own
// synchronization — a mutex Lock or a channel send — making shared writes
// a deliberate, guarded pattern rather than a race.
func closureSynchronizes(info *types.Info, lit *ast.FuncLit) bool {
	if callsMethodNamed(info, lit.Body, "Lock") {
		return true
	}
	hasSend := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.SendStmt); ok {
			hasSend = true
		}
		return !hasSend
	})
	return hasSend
}

// checkCapturedWrite classifies one lvalue written inside a worker closure
// and reports (or records, for one-shot plain assigns) writes that mutate
// captured shared state.
func checkCapturedWrite(pass *Pass, lit *ast.FuncLit, lhs ast.Expr, spawn string, rmw, multi bool, plain map[plainKey][]plainWrite) {
	info := pass.TypesInfo

	// Walk the access path: x, x.f, m[k], s[i].f, (*p).f ...
	var sawMapIndex, sawSliceIndex bool
	var fields []string
	expr := ast.Unparen(lhs)
walk:
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			if tv, ok := info.Types[e.X]; ok && isMapType(tv.Type) {
				sawMapIndex = true
			} else {
				sawSliceIndex = true
			}
			expr = ast.Unparen(e.X)
		case *ast.SelectorExpr:
			fields = append(fields, e.Sel.Name)
			expr = ast.Unparen(e.X)
		case *ast.StarExpr:
			expr = ast.Unparen(e.X)
		default:
			break walk
		}
	}
	root, ok := expr.(*ast.Ident)
	if !ok || root.Name == "_" {
		return
	}
	obj := info.ObjectOf(root)
	if _, isVar := obj.(*types.Var); !isVar || !declaredOutside(obj, lit) {
		return
	}
	// fields was collected outside-in; the full written location reads
	// root.fieldN...field0.
	name := obj.Name()
	for i := len(fields) - 1; i >= 0; i-- {
		name += "." + fields[i]
	}
	switch {
	case sawMapIndex:
		pass.Reportf(lhs.Pos(), "closure passed to %s writes captured map %s: concurrent workers race on unsynchronized map writes; merge per-worker maps after the fan-out instead", spawn, obj.Name())
	case sawSliceIndex:
		// Writes to distinct slice elements are the sanctioned shard
		// pattern (each worker owns its index range).
	case rmw:
		pass.Reportf(lhs.Pos(), "closure passed to %s read-modify-writes captured variable %s: concurrent workers race on it; use a per-worker accumulator, sync/atomic, or a mutex", spawn, name)
	case multi:
		pass.Reportf(lhs.Pos(), "closure passed to %s writes captured variable %s from concurrently running workers; use a per-worker slot or a mutex", spawn, name)
	default:
		key := plainKey{obj: obj, path: name}
		plain[key] = append(plain[key], plainWrite{pos: lhs.Pos(), lit: lit, spawn: spawn, name: name})
	}
}
