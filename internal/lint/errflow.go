package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrFlow enforces the repo's two error-propagation conventions.
//
//  1. Errors crossing boundaries are wrapped with %w, never flattened with
//     %v/%s: fmt.Errorf("...: %v", err) severs the chain, so callers lose
//     errors.Is/errors.As — the streaming chain reader's typed truncation
//     errors are matched exactly that way in tests and callers.
//  2. Goroutines must not drop errors: work that can fail runs through
//     par.Group (or an errgroup) so Wait surfaces the first failure. A bare
//     `go f()` where f returns an error, or a discarded error inside a
//     `go func(){...}` body, silently loses the failure.
//
// Only arguments whose static type is exactly `error` are checked by rule 1;
// formatting a concrete error type with %v is assumed deliberate.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "flags error args formatted without %w and goroutine errors that are dropped instead of propagated",
	Run:  runErrFlow,
}

func runErrFlow(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			case *ast.GoStmt:
				checkGoDiscard(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkErrorfWrap verifies that every exactly-error-typed argument of a
// fmt.Errorf call is matched to a %w verb.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if !isPkgFunc(info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		at, ok := info.Types[arg]
		if !ok || !isErrorType(at.Type) {
			continue
		}
		if v := verbs[i]; v == 'v' || v == 's' {
			pass.Reportf(arg.Pos(), "error argument formatted with %%%c severs the error chain; wrap it with %%w so callers can errors.Is/errors.As", v)
		}
	}
}

// formatVerbs extracts the verb letter consuming each successive argument
// of a Printf-style format string. A '*' width or precision consumes an
// argument of its own and is recorded as '*'.
func formatVerbs(format string) []rune {
	var verbs []rune
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i < len(runes) && runes[i] == '%' {
			continue
		}
		// flags, width, precision — a '*' in either consumes an argument.
		for i < len(runes) {
			c := runes[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(runes) {
			verbs = append(verbs, runes[i])
		}
	}
	return verbs
}

// checkGoDiscard flags errors lost at a go statement: either the spawned
// call itself returns an error nobody can see, or the goroutine body
// discards one.
func checkGoDiscard(pass *Pass, g *ast.GoStmt) {
	info := pass.TypesInfo
	lit, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !isLit {
		if results := resultTypes(info, g.Call); len(results) > 0 && isErrorType(results[len(results)-1]) {
			pass.Reportf(g.Pos(), "go discards the callee's error result; run it through a par.Group so Wait can surface the failure")
		}
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested closures have their own call sites
		}
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if results := resultTypes(info, call); len(results) > 0 && isErrorType(results[len(results)-1]) {
					pass.Reportf(call.Pos(), "error result dropped inside a goroutine; propagate it through a par.Group (or handle it explicitly)")
				}
			}
			return false
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name != "_" {
					continue
				}
				if blankDiscardsError(info, n, i) {
					pass.Reportf(lhs.Pos(), "error result dropped inside a goroutine; propagate it through a par.Group (or handle it explicitly)")
				}
			}
		}
		return true
	})
}

// blankDiscardsError reports whether the i-th blank LHS of assign receives
// an error value.
func blankDiscardsError(info *types.Info, assign *ast.AssignStmt, i int) bool {
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		// x, _ := f(): look up f's i-th result.
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return false
		}
		results := resultTypes(info, call)
		return i < len(results) && isErrorType(results[i])
	}
	if i < len(assign.Rhs) {
		tv, ok := info.Types[assign.Rhs[i]]
		return ok && isErrorType(tv.Type)
	}
	return false
}
