package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces context propagation, the cancellation backbone of a
// long-running process. Two rules:
//
// Rule A — a function that receives a context.Context (per its pass-1
// summary) must forward it: calling a ctx-accepting callee with a fresh
// context.Background() or context.TODO() detaches the callee from the
// caller's cancellation and deadline, which is how a daemon ends up with
// requests that cannot be shed. Forwarding the received ctx — directly or
// derived via context.With* — is clean, including through helpers.
//
// Rule B — an infinite `for` loop running on a goroutine (a spawned
// function literal, or a named function the summaries mark SpawnedByGo)
// must be cancellable: its body must observe a channel (select, receive,
// range), or be able to leave (return, break). A loop with none of these
// spins until the process dies, immune to every shutdown signal.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags ctx-receiving functions that detach callees with context.Background/TODO, and un-cancellable infinite loops in goroutines",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			fi := pass.Sums.Of(fn)

			// Rule A: the summary says this function accepts a ctx.
			if fi != nil && fi.CtxParam >= 0 {
				checkCtxForwarding(pass, fd)
			}

			// Rule B, named form: this function's body runs on a goroutine
			// somewhere in the package (summary-resolved `go f()` sites).
			if fi != nil && fi.SpawnedByGo {
				checkCancellableLoops(pass, fd.Body)
			}

			// Rule B, literal form: go func() { ... }().
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
					checkCancellableLoops(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checkCtxForwarding flags calls inside a ctx-receiving function that hand
// a ctx-accepting callee a fresh Background/TODO context instead of the
// one this function was given.
func checkCtxForwarding(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig := callSignature(info, call)
		if sig == nil {
			return true
		}
		for j := 0; j < sig.Params().Len() && j < len(call.Args); j++ {
			if !isContextType(sig.Params().At(j).Type()) {
				continue
			}
			if name, fresh := freshContextCall(info, call.Args[j]); fresh {
				pass.Reportf(call.Args[j].Pos(), "context.%s() detaches %s from this function's ctx; forward the ctx parameter (or derive via context.With*) so cancellation propagates", name, calleeName(info, call))
			}
			break // only the first ctx parameter matters
		}
		return true
	})
}

// callSignature returns the signature of the function a call invokes,
// resolving both named callees and function values; nil for conversions
// and builtins.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// freshContextCall reports whether expr is a direct context.Background()
// or context.TODO() call, returning which.
func freshContextCall(info *types.Info, expr ast.Expr) (string, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	for _, name := range []string{"Background", "TODO"} {
		if isPkgFunc(info, call, "context", name) {
			return name, true
		}
	}
	return "", false
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.Name()
	}
	return "the callee"
}

// checkCancellableLoops flags infinite for-loops in goroutine bodies with
// no way to observe shutdown: no select, channel receive, channel range,
// return, or break in the loop body.
func checkCancellableLoops(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals are separate goroutine decisions
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if loopObservesCancellation(info, loop.Body) {
			return true
		}
		pass.Reportf(loop.Pos(), "infinite loop on a goroutine never observes cancellation (no select, channel op, return, or break); bind it to ctx.Done() or a done channel")
		return true
	})
}

// loopObservesCancellation reports whether the loop body can notice
// shutdown or leave the loop: a select, channel receive/send/range, a
// return, or a break bound to this loop.
func loopObservesCancellation(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt, *ast.ReturnStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && isChanType(tv.Type) {
				found = true
			}
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
