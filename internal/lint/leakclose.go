package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LeakClose flags values that own an OS resource — anything whose method
// set has a niladic Close or Flush, which in this repo means chain.Writer,
// chain.FileReader, *os.File, net.Listener, net.Conn — acquired in a
// function but not released on every path out of it. A batch run leaks a
// handle for milliseconds; the `fistful serve` daemon leaks it forever, so
// the invariant becomes compile-time-enforced here.
//
// A candidate is a local variable assigned from a call returning a
// closeable type. It is exempt when ownership demonstrably transfers out
// of the function: the value is returned, stored into a composite or a
// field/element, sent on a channel, or passed to a callee. Passing is the
// interprocedural case: an in-package callee whose pass-1 summary closes
// the corresponding parameter counts as a release at that call; any other
// callee is conservatively assumed to take ownership.
//
// Otherwise every exit after the acquisition must be covered by a release:
// a direct or deferred x.Close()/x.Flush() whose enclosing block still
// encloses the exit. The error-check immediately following the acquisition
// (`x, err := f(); if err != nil { return ... }`) is exempt — on that path
// the constructor failed and x is nil by convention.
var LeakClose = &Analyzer{
	Name: "leakclose",
	Doc:  "flags Close/Flush-owning values (files, listeners, chain readers/writers) not released on every path, with ownership-transfer exemptions",
	Run:  runLeakClose,
}

func runLeakClose(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, acq := range findAcquisitions(pass.TypesInfo, fd.Body) {
				checkAcquisition(pass, fd, acq)
			}
		}
	}
	return nil
}

// acquisition is one closeable-typed local bound from a call result.
type acquisition struct {
	obj    types.Object
	assign *ast.AssignStmt
	errObj types.Object // the error assigned alongside, nil if none
}

// findAcquisitions collects := assignments binding a closeable call result
// to a plain local identifier.
func findAcquisitions(info *types.Info, body *ast.BlockStmt) []acquisition {
	var acqs []acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		// x, err := f(...) — one call, several results.
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			results := resultTypes(info, call)
			errObj := errorLhs(info, as, results)
			for i, lhs := range as.Lhs {
				if i < len(results) && isCloseable(results[i]) {
					if obj := localIdentObj(info, lhs); obj != nil {
						acqs = append(acqs, acquisition{obj: obj, assign: as, errObj: errObj})
					}
				}
			}
			return true
		}
		// x := f() — pairwise.
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				continue // conversion, not an acquisition
			}
			if tv, ok := info.Types[call]; ok && isCloseable(tv.Type) {
				if obj := localIdentObj(info, as.Lhs[i]); obj != nil {
					acqs = append(acqs, acquisition{obj: obj, assign: as})
				}
			}
		}
		return true
	})
	return acqs
}

// errorLhs returns the object of the error-typed identifier bound by the
// same assignment (the `err` of `x, err := f()`), if any.
func errorLhs(info *types.Info, as *ast.AssignStmt, results []types.Type) types.Object {
	for i, lhs := range as.Lhs {
		if i < len(results) && isErrorType(results[i]) {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
				return info.ObjectOf(id)
			}
		}
	}
	return nil
}

// localIdentObj returns the object of a plain non-blank identifier lvalue.
func localIdentObj(info *types.Info, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return info.ObjectOf(id)
}

// isCloseable reports whether t owns a releasable resource: its method set
// (through a pointer) contains a niladic Close or Flush.
func isCloseable(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Signature); ok {
		return false
	}
	for _, name := range []string{"Close", "Flush"} {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if fn, ok := obj.(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Params().Len() == 0 {
				return true
			}
		}
	}
	return false
}

// release is one point where the acquired value is closed/flushed. For a
// deferred release (direct `defer x.Close()` or a deferred cleanup
// closure) pos is the DeferStmt's position — where the defer is
// registered, which is what decides the exits it covers.
type release struct {
	pos token.Pos
}

// checkAcquisition classifies every use of the acquired value, then audits
// the exits.
func checkAcquisition(pass *Pass, fd *ast.FuncDecl, acq acquisition) {
	info := pass.TypesInfo
	var releases []release
	transferred := false

	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if transferred {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != acq.obj {
			return true
		}
		switch classifyUse(pass, id, stack) {
		case useRelease:
			releases = append(releases, release{pos: releasePos(id, stack)})
		case useTransfer:
			transferred = true
		}
		return true
	})
	if transferred {
		return
	}

	exits := collectExits(fd, acq)
	if len(releases) == 0 {
		if len(exits) > 0 {
			pass.Reportf(acq.assign.Pos(), "%s holds a Close/Flush resource but is never closed; release it (defer %s.Close()) or transfer ownership", acq.obj.Name(), acq.obj.Name())
		}
		return
	}
	for _, exit := range exits {
		if !covered(fd, releases, exit) {
			pass.Reportf(acq.assign.Pos(), "%s is not closed on the return path at line %d; close it before returning or defer the close", acq.obj.Name(), pass.Fset.Position(exit).Line)
			return // one report per acquisition is enough
		}
	}
}

// releasePos returns the position coverage is computed from: the enclosing
// DeferStmt when the release is deferred, the use itself otherwise.
func releasePos(id *ast.Ident, stack []ast.Node) token.Pos {
	for _, n := range stack {
		if d, ok := n.(*ast.DeferStmt); ok {
			return d.Pos()
		}
	}
	return id.Pos()
}

type useKind int

const (
	useNeutral useKind = iota
	useRelease
	useTransfer
)

// classifyUse decides what one appearance of the value means by walking
// its enclosing nodes innermost-first: a release (x.Close()/x.Flush(), or
// passed to an in-package callee whose summary closes that parameter), a
// transfer of ownership (returned, stored, sent, aliased, or passed to an
// unknown callee), or neutral (reads and other method calls).
func classifyUse(pass *Pass, id *ast.Ident, stack []ast.Node) useKind {
	info := pass.TypesInfo
	for i := len(stack) - 1; i >= 0; i-- {
		switch outer := stack[i].(type) {
		case *ast.SelectorExpr:
			if outer.X != id {
				continue
			}
			// x.Close() / x.Flush() under a CallExpr is a release.
			if outer.Sel.Name == "Close" || outer.Sel.Name == "Flush" {
				if i > 0 {
					if call, ok := stack[i-1].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == outer {
						return useRelease
					}
				}
			}
			return useNeutral // other method calls / field reads
		case *ast.CallExpr:
			idxs := callArgIndexes(outer, id)
			if len(idxs) == 0 {
				continue // id sits in the Fun position; inner arms decide
			}
			// x is an argument. An in-package callee that closes this
			// parameter releases it; anything else takes ownership.
			if fi := pass.Sums.OfCallee(info, outer); fi != nil {
				closesAll := true
				for _, idx := range idxs {
					if !fi.ClosesParam[idx] {
						closesAll = false
					}
				}
				if closesAll {
					return useRelease
				}
			}
			return useTransfer
		case *ast.ReturnStmt:
			return useTransfer
		case *ast.CompositeLit:
			return useTransfer
		case *ast.SendStmt:
			if containsPos(outer.Value, id.Pos()) {
				return useTransfer
			}
		case *ast.AssignStmt:
			// x on the RHS of another assignment: aliased or stored.
			// Conservatively a transfer, so the alias' closes aren't
			// misattributed.
			for _, rhs := range outer.Rhs {
				if containsPos(rhs, id.Pos()) {
					return useTransfer
				}
			}
		}
	}
	return useNeutral
}

// callArgIndexes returns the argument positions of call containing id.
func callArgIndexes(call *ast.CallExpr, id *ast.Ident) []int {
	var out []int
	for i, arg := range call.Args {
		if containsPos(arg, id.Pos()) {
			out = append(out, i)
		}
	}
	return out
}

// containsPos reports whether pos falls inside n's source range.
func containsPos(n ast.Node, pos token.Pos) bool {
	return n != nil && n.Pos() <= pos && pos < n.End()
}

// collectExits lists the function's exit positions after the acquisition:
// return statements, plus the fall-off exit for bodies that can reach the
// closing brace. Returns inside the acquisition's immediate error-check
// are excluded (the constructor failed; the value is nil by convention).
func collectExits(fd *ast.FuncDecl, acq acquisition) []token.Pos {
	exempt := immediateErrCheck(fd.Body, acq)
	var exits []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // returns inside closures exit the closure
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() < acq.assign.End() {
			return true
		}
		if exempt != nil && containsPos(exempt, ret.Pos()) {
			return true
		}
		// The exit point is the return's end, so a release inside the
		// return expression itself (`return drainAndClose(f)`) covers it.
		exits = append(exits, ret.End())
		return true
	})
	stmts := fd.Body.List
	if len(stmts) == 0 || !isTerminating(stmts[len(stmts)-1]) {
		exits = append(exits, fd.Body.Rbrace)
	}
	return exits
}

// immediateErrCheck returns the `if err != nil` statement directly
// following the acquisition in its block and testing the error bound by
// the same assignment, or nil.
func immediateErrCheck(body *ast.BlockStmt, acq acquisition) *ast.IfStmt {
	if acq.errObj == nil {
		return nil
	}
	var found *ast.IfStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			if stmt != ast.Stmt(acq.assign) || i+1 >= len(block.List) {
				continue
			}
			if ifs, ok := block.List[i+1].(*ast.IfStmt); ok && condMentionsName(ifs.Cond, acq.errObj.Name()) {
				found = ifs
			}
			return false
		}
		return true
	})
	return found
}

func condMentionsName(cond ast.Expr, name string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// isTerminating reports whether stmt definitely transfers control away
// (return, panic, break-less infinite for) — a crude subset of go/types'
// terminating-statement analysis, enough to decide whether the fall-off
// exit exists.
func isTerminating(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		return s.Cond == nil && !hasBreak(s.Body)
	}
	return false
}

// hasBreak reports a break binding to the enclosing loop (not one inside a
// nested loop, switch, or select).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false
		}
		return !found
	})
	return found
}

// covered reports whether some release guards the exit: the release (or
// the registration of the deferred release) is lexically before the exit
// and its innermost enclosing block still encloses the exit, so the exit
// path passes through it. A top-of-function `defer x.Close()` therefore
// covers every later exit; a close inside an error branch covers only that
// branch's return.
func covered(fd *ast.FuncDecl, releases []release, exit token.Pos) bool {
	for _, r := range releases {
		if r.pos >= exit {
			continue
		}
		block := innermostBlock(fd.Body, r.pos)
		if block != nil && block.Pos() <= exit && exit <= block.End() {
			return true
		}
	}
	return false
}

// innermostBlock returns the smallest BlockStmt in body containing pos.
func innermostBlock(body *ast.BlockStmt, pos token.Pos) *ast.BlockStmt {
	best := body
	ast.Inspect(body, func(n ast.Node) bool {
		b, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		if b.Pos() <= pos && pos <= b.End() && b.Pos() >= best.Pos() && b.End() <= best.End() {
			best = b
		}
		return true
	})
	return best
}
