package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockHeld flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: channel sends/receives, selects without default,
// Wait calls, I/O (net/os under the summary model), and — the
// interprocedural case — calls to in-package functions whose pass-1
// summary says they block. Holding a lock across a blocking operation
// turns one slow peer or full channel into a stall for every goroutine
// contending on that lock, which a batch run survives and a daemon does
// not. It also flags locks copied by value (a copied mutex guards
// nothing).
//
// The scan is block-structured: Lock/RLock adds the receiver expression to
// the held set, Unlock/RUnlock removes it, branches are scanned with a
// copy of the set so `mu.Unlock(); return` inside an error branch doesn't
// leak into the fallthrough path. A deferred unlock keeps the lock held to
// the end of the function — that is the point of the idiom — so the whole
// remainder is checked. `go` bodies and deferred closures are skipped:
// they don't run while the spawner holds the lock.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "flags channel ops, Wait, I/O, and blocking callees while a sync.Mutex/RWMutex is held, plus locks copied by value",
	Run:  runLockHeld,
}

func runLockHeld(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockValueParams(pass, fd)
			lockScanStmts(pass, fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

// lockScanStmts walks one statement list, threading the set of held lock
// expressions through it and recursing into nested blocks with copies.
func lockScanStmts(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	info := pass.TypesInfo
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if key, op := lockOp(info, call); op != lockOpNone {
					if op == lockOpLock {
						held[key] = true
					} else {
						delete(held, key)
					}
					continue
				}
			}
			reportBlockingIn(pass, s, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to function exit — the
			// idiom this analyzer exists to audit — so the held set is
			// untouched. Other deferred work runs after the body and is
			// not scanned here.
		case *ast.GoStmt:
			// The spawned body runs on its own goroutine without the lock;
			// only the argument expressions evaluate here.
			for _, arg := range s.Call.Args {
				reportBlockingExpr(pass, arg, held)
			}
		case *ast.BlockStmt:
			lockScanStmts(pass, s.List, copyHeld(held))
		case *ast.IfStmt:
			if s.Init != nil {
				lockScanStmts(pass, []ast.Stmt{s.Init}, held)
			}
			reportBlockingExpr(pass, s.Cond, held)
			lockScanStmts(pass, s.Body.List, copyHeld(held))
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				lockScanStmts(pass, e.List, copyHeld(held))
			case *ast.IfStmt:
				lockScanStmts(pass, []ast.Stmt{e}, copyHeld(held))
			}
		case *ast.ForStmt:
			if s.Init != nil {
				lockScanStmts(pass, []ast.Stmt{s.Init}, held)
			}
			reportBlockingExpr(pass, s.Cond, held)
			lockScanStmts(pass, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			if tv, ok := info.Types[s.X]; ok && isChanType(tv.Type) && len(held) > 0 {
				pass.Reportf(s.Pos(), "ranging over a channel while %s is held blocks every goroutine contending on the lock", heldName(held))
			} else {
				reportBlockingExpr(pass, s.X, held)
			}
			lockScanStmts(pass, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if s.Init != nil {
				lockScanStmts(pass, []ast.Stmt{s.Init}, held)
			}
			reportBlockingExpr(pass, s.Tag, held)
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					lockScanStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					lockScanStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !selectHasDefault(s) {
				pass.Reportf(s.Pos(), "select without default while %s is held blocks every goroutine contending on the lock", heldName(held))
			}
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					lockScanStmts(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			lockScanStmts(pass, []ast.Stmt{s.Stmt}, held)
		case *ast.AssignStmt:
			checkLockValueCopy(pass, s)
			reportBlockingIn(pass, s, held)
		default:
			reportBlockingIn(pass, stmt, held)
		}
	}
}

type lockOpKind int

const (
	lockOpNone lockOpKind = iota
	lockOpLock
	lockOpUnlock
)

// lockOp classifies a call as taking or releasing a sync mutex and returns
// the lock's receiver expression as the held-set key.
func lockOp(info *types.Info, call *ast.CallExpr) (string, lockOpKind) {
	fn := calleeFunc(info, call)
	if fn == nil || !(isMethodOn(fn, "sync", "Mutex") || isMethodOn(fn, "sync", "RWMutex")) {
		return "", lockOpNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockOpNone
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, lockOpLock
	case "Unlock", "RUnlock":
		return key, lockOpUnlock
	}
	return "", lockOpNone
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// heldName names one held lock for the diagnostic, smallest key first so
// the message is deterministic.
func heldName(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[0]
}

// reportBlockingIn scans one simple statement's subtree for blocking
// operations while locks are held, skipping nested function literals and
// go/defer subtrees (they don't run here).
func reportBlockingIn(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while %s is held blocks every goroutine contending on the lock", heldName(held))
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive while %s is held blocks every goroutine contending on the lock", heldName(held))
			}
		case *ast.CallExpr:
			reportBlockingCall(pass, n, held)
		}
		return true
	})
}

// reportBlockingExpr is reportBlockingIn for a bare expression (loop
// conditions, range operands, call arguments).
func reportBlockingExpr(pass *Pass, expr ast.Expr, held map[string]bool) {
	if expr == nil || len(held) == 0 {
		return
	}
	reportBlockingIn(pass, &ast.ExprStmt{X: expr}, held)
}

// reportBlockingCall flags a call that blocks under the summary model
// while a lock is held: known-blocking stdlib shapes (Wait, Sleep, net/os
// I/O) or an in-package callee whose summary blocks. sync primitives are
// exempt — Lock/Unlock on another mutex is lock ordering, not blocking
// I/O, and flagging it would drown the signal.
func reportBlockingCall(pass *Pass, call *ast.CallExpr, held map[string]bool) {
	info := pass.TypesInfo
	fn := calleeFunc(info, call)
	if fn != nil && (isMethodOn(fn, "sync", "Mutex") || isMethodOn(fn, "sync", "RWMutex") || isMethodOn(fn, "sync", "Cond")) {
		return
	}
	if callBlocksDirect(info, call) {
		pass.Reportf(call.Pos(), "blocking call %s while %s is held stalls every goroutine contending on the lock", callName(fn), heldName(held))
		return
	}
	if fi := pass.Sums.OfCallee(info, call); fi != nil && fi.Blocks {
		pass.Reportf(call.Pos(), "call to %s while %s is held: its summary says it blocks (channel op, Wait, or I/O), stalling lock contenders", fn.Name(), heldName(held))
	}
}

func callName(fn *types.Func) string {
	if fn == nil {
		return "(dynamic)"
	}
	return fn.Name()
}

// ---------------------------------------------------------------------------
// by-value lock copies

// checkLockValueParams flags parameters and receivers whose non-pointer
// type contains a sync.Mutex/RWMutex: the callee operates on a copy, so
// the lock guards nothing.
func checkLockValueParams(pass *Pass, fd *ast.FuncDecl) {
	check := func(fields *ast.FieldList, what string) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				continue
			}
			if typeContainsLock(tv.Type, 0) {
				pass.Reportf(field.Pos(), "%s passes a lock by value; the copy guards nothing — use a pointer", what)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
}

// checkLockValueCopy flags plain assignments that copy an existing
// lock-containing value (y := x, y := *p, y := s.field). Composite
// literals are fine: a fresh zero mutex is a valid new lock.
func checkLockValueCopy(pass *Pass, as *ast.AssignStmt) {
	info := pass.TypesInfo
	for _, rhs := range as.Rhs {
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		tv, ok := info.Types[rhs]
		if !ok {
			continue
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			continue
		}
		if typeContainsLock(tv.Type, 0) {
			pass.Reportf(rhs.Pos(), "assignment copies a value containing a sync lock; the copy guards nothing — use a pointer")
		}
	}
}

// typeContainsLock reports whether t embeds a sync.Mutex/RWMutex by value,
// directly or through struct fields and array elements (bounded depth).
func typeContainsLock(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeContainsLock(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return typeContainsLock(u.Elem(), depth+1)
	}
	return false
}
