package lint_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/lint"
)

// summarize typechecks src (stdlib imports compiled from source) and
// returns the pass-1 summaries keyed by function name.
func summarize(t *testing.T, src string) map[string]*lint.FuncInfo {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	sums := lint.Summarize(fset, []*ast.File{f}, pkg, info)
	byName := make(map[string]*lint.FuncInfo)
	for fn, fi := range sums.Funcs() {
		byName[fn.Name()] = fi
	}
	return byName
}

func TestSummaryBlockingPropagatesThroughCallGraph(t *testing.T) {
	src := `package x

func leaf(ch chan int) { ch <- 1 }

func mid(ch chan int) { leaf(ch) }

func top(ch chan int) { mid(ch) }

func pure(n int) int { return n * 2 }

func spawner(ch chan int) {
	go leaf(ch)
}
`
	fis := summarize(t, src)
	if !fis["leaf"].BlocksDirect || !fis["leaf"].Blocks {
		t.Errorf("leaf: want BlocksDirect and Blocks, got %+v", fis["leaf"])
	}
	if fis["mid"].BlocksDirect {
		t.Errorf("mid: BlocksDirect should be false (it only calls leaf)")
	}
	if !fis["mid"].Blocks || !fis["top"].Blocks {
		t.Errorf("mid/top: Blocks should propagate transitively through the call graph")
	}
	if fis["pure"].Blocks {
		t.Errorf("pure: must not block")
	}
	// Spawned code doesn't block the spawner.
	if fis["spawner"].Blocks {
		t.Errorf("spawner: go leaf(ch) must not set the spawner's blocking bit")
	}
	if !fis["spawner"].SpawnsGo {
		t.Errorf("spawner: SpawnsGo not recorded")
	}
	if !fis["leaf"].SpawnedByGo {
		t.Errorf("leaf: SpawnedByGo not recorded from go leaf(ch)")
	}
}

func TestSummaryClosesParamAndCtx(t *testing.T) {
	src := `package x

import (
	"context"
	"os"
)

type res struct{ f *os.File }

func closeIt(f *os.File) error { return f.Close() }

func (r *res) release() { r.f.Close() }

func keepOpen(f *os.File) int {
	st, err := f.Stat()
	if err != nil {
		return 0
	}
	return int(st.Size())
}

func withCtx(ctx context.Context, n int) {}

func noCtx(n int) {}
`
	fis := summarize(t, src)
	if !fis["closeIt"].ClosesParam[0] {
		t.Errorf("closeIt: ClosesParam[0] not recorded")
	}
	if fis["keepOpen"].ClosesParam[0] {
		t.Errorf("keepOpen: must not be marked as closing its parameter")
	}
	if fis["withCtx"].CtxParam != 0 {
		t.Errorf("withCtx: CtxParam = %d, want 0", fis["withCtx"].CtxParam)
	}
	if fis["noCtx"].CtxParam != -1 {
		t.Errorf("noCtx: CtxParam = %d, want -1", fis["noCtx"].CtxParam)
	}
}

func TestSummaryJoinEvidence(t *testing.T) {
	src := `package x

import "sync"

type s struct {
	ch   chan int
	done chan struct{}
	wg   sync.WaitGroup
}

func (x *s) ranger() {
	for v := range x.ch {
		_ = v
	}
}

func (x *s) signaller() {
	defer x.wg.Done()
}

func (x *s) closer() {
	close(x.done)
}

func plain(n int) int { return n + 1 }
`
	fis := summarize(t, src)
	for _, name := range []string{"ranger", "signaller", "closer"} {
		if !fis[name].JoinEvidence() {
			t.Errorf("%s: JoinEvidence() = false, want true", name)
		}
	}
	if fis["plain"].JoinEvidence() {
		t.Errorf("plain: JoinEvidence() = true, want false")
	}
}
