// Package lint implements fistlint, the repo's project-specific static
// analysis pass. It mechanically enforces the determinism and shard-safety
// invariants the measurement pipeline depends on: parallel output must be
// byte-identical to sequential, so map iteration must not feed
// ordering-sensitive sinks unsorted (detrange), worker closures must not
// mutate shared unsynchronized state (parcapture), counters must not mix
// sync/atomic and plain access (atomicmix), and errors must cross package
// and goroutine boundaries intact (errflow).
//
// The package deliberately reimplements the thin slice of
// golang.org/x/tools/go/analysis that the four analyzers need (Analyzer,
// Pass, diagnostics, an analysistest-style fixture runner in linttest).
// This module carries zero external dependencies as a matter of policy —
// see go.mod — and the x/tools analysis API is small enough that vendoring
// a hand-rolled equivalent is cheaper than taking the dependency. The
// shapes mirror x/tools so a future migration is mechanical.
//
// Diagnostics are suppressed with a staticcheck-style directive on the
// flagged line or the line immediately above it:
//
//	//lint:ignore fistlint/<name> reason
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name is the short analyzer name ("detrange"); the suppression key is
	// "fistlint/" + Name.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run inspects the package held by pass and reports diagnostics via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// All returns the full fistlint analyzer suite in stable order: the PR 6
// determinism/shard-safety checks followed by the lifecycle analyzers that
// gate the always-on daemon work (leakclose, goleak, lockheld, ctxflow).
func All() []*Analyzer {
	return []*Analyzer{DetRange, ParCapture, AtomicMix, ErrFlow, LeakClose, GoLeak, LockHeld, CtxFlow}
}

// A Pass holds one typechecked package being analyzed by one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Sums holds the pass-1 per-function summaries and intra-package call
	// graph (see summary.go), computed once per package by Run and shared
	// by every analyzer.
	Sums *Summaries

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: fistlint/%s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies every analyzer to the package and returns the surviving
// diagnostics (suppression directives applied) in file/line order.
// Analyzer errors are returned as-is; diagnostics found before the failing
// analyzer are kept.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	sums := Summarize(fset, files, pkg, info)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Sums: sums}
		if err := a.Run(pass); err != nil {
			return all, fmt.Errorf("fistlint/%s: %w", a.Name, err)
		}
		all = append(all, pass.diags...)
	}
	all = applyIgnores(fset, files, all)
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Pos.Filename != all[j].Pos.Filename {
			return all[i].Pos.Filename < all[j].Pos.Filename
		}
		if all[i].Pos.Line != all[j].Pos.Line {
			return all[i].Pos.Line < all[j].Pos.Line
		}
		return all[i].Pos.Column < all[j].Pos.Column
	})
	return all, nil
}

// ignoreRe matches one suppression directive. Comment column is irrelevant;
// the directive may share the flagged line or sit on the line above it.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(?:\s+(.*))?$`)

// parseIgnoreDirective parses one comment's text as a suppression
// directive. matched is false when the comment is not a //lint:ignore
// directive at all. For a matched directive, names holds the non-empty
// analyzer names (comma-separated in the source, "fistlint/" prefix
// stripped) and reason the trimmed justification; either may be empty on a
// malformed directive, which the caller reports rather than drops.
func parseIgnoreDirective(text string) (names []string, reason string, matched bool) {
	m := ignoreRe.FindStringSubmatch(text)
	if m == nil {
		return nil, "", false
	}
	for _, name := range strings.Split(m[1], ",") {
		name = strings.TrimPrefix(strings.TrimSpace(name), "fistlint/")
		if name != "" {
			names = append(names, name)
		}
	}
	return names, strings.TrimSpace(m[2]), true
}

// ignoreKey identifies one suppressed (file, line, analyzer) cell.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// applyIgnores drops diagnostics covered by a //lint:ignore directive and
// appends a diagnostic for any malformed directive (missing reason), so a
// suppression can never silently decay into a reasonless one.
func applyIgnores(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	ignored := make(map[ignoreKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, matched := parseIgnoreDirective(c.Text)
				if !matched {
					continue
				}
				pos := fset.Position(c.Pos())
				if reason == "" {
					diags = append(diags, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "//lint:ignore directive is missing a reason",
					})
					continue
				}
				if len(names) == 0 {
					diags = append(diags, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "//lint:ignore directive names no analyzer",
					})
					continue
				}
				for _, name := range names {
					// The directive covers its own line and the next one.
					ignored[ignoreKey{pos.Filename, pos.Line, name}] = true
					ignored[ignoreKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if ignored[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
