package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestParCapture(t *testing.T) {
	linttest.Run(t, lint.ParCapture, "parcapture")
}
