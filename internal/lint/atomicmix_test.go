package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, lint.AtomicMix, "atomicmix")
}
