// Fixture for the leakclose analyzer: Close/Flush-owning values must be
// released on every path or demonstrably transfer ownership.
package leakclose

import "os"

// Positive: opened, read, never closed.
func leaky(path string) (int, error) {
	f, err := os.Open(path) // want `never closed`
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	return n, err
}

// Positive: closed on the happy path but leaked on the mid-function error
// return.
func leakyOnError(path string) error {
	f, err := os.Open(path) // want `not closed on the return path`
	if err != nil {
		return err
	}
	hdr := make([]byte, 8)
	if _, err := f.Read(hdr); err != nil {
		return err
	}
	return f.Close()
}

// Suppression: a deliberate leak carries a reason.
func deliberateLeak(path string) int {
	//lint:ignore fistlint/leakclose scratch probe; the process exits immediately after
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	buf := make([]byte, 1)
	n, _ := f.Read(buf)
	return n
}

// Guard: deferred close right after the error check covers every later
// exit, including error returns.
func readHeader(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, 8)
	if _, err := f.Read(hdr); err != nil {
		return nil, err
	}
	return hdr, nil
}

// Guard: returning the value transfers ownership to the caller.
func open(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// handle owns the file it wraps; its own Close releases it.
type handle struct{ f *os.File }

func (h *handle) Close() error { return h.f.Close() }

// Guard: storing the value in a struct that has its own Close transfers
// ownership into the composite.
func wrap(path string) (*handle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &handle{f: f}, nil
}

// Guard (interprocedural): drainAndClose's pass-1 summary says it closes
// its parameter, so passing f to it is a release, not a leak.
func process(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return drainAndClose(f)
}

func drainAndClose(f *os.File) error {
	defer f.Close()
	buf := make([]byte, 32)
	for {
		if _, err := f.Read(buf); err != nil {
			return nil
		}
	}
}

// Guard: the function's tail is an infinite loop with no break, so control
// cannot fall off the end; the close before the loop's only return covers
// the one real exit.
func pump(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	buf := make([]byte, 1)
	for {
		if _, err := f.Read(buf); err != nil {
			f.Close()
			return err
		}
	}
}

// Guard: the tail loop breaks on error, so fall-off is reachable — and the
// close after the loop covers it.
func pumpAll(path string, out chan<- byte) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	buf := make([]byte, 1)
	for {
		if _, err := f.Read(buf); err != nil {
			break
		}
		out <- buf[0]
	}
	f.Close()
}

// Positive: same shape without the close — the break makes fall-off a
// leaking exit.
func leakyPump(path string, out chan<- byte) {
	f, err := os.Open(path) // want `never closed`
	if err != nil {
		return
	}
	buf := make([]byte, 1)
	for {
		if _, err := f.Read(buf); err != nil {
			break
		}
		out <- buf[0]
	}
}

// Guard: sending the handle hands ownership to the channel's consumer.
func produce(path string, out chan<- *os.File) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	out <- f
	return nil
}

// Guard: storing the handle in a long-lived struct transfers ownership;
// holder's own lifecycle closes it.
type holder struct{ f *os.File }

func (h *holder) adopt(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	h.f = f
	return nil
}

// Guard: the conditional-cleanup idiom — a deferred closure closes the
// file only when a later step failed, the happy path closes explicitly.
func writeAll(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	if _, err = f.Write(data); err != nil {
		return err
	}
	return f.Close()
}
