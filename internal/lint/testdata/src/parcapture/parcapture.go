// Fixture for the parcapture analyzer: worker closures mutating captured
// shared state.
package parcapture

import (
	"sync"
	"sync/atomic"

	"errgroup"
	"par"
)

// Positive: captured plain counter incremented across workers.
func countBad(items []int, workers int) int {
	total := 0
	par.ForEach(len(items), workers, func(start, end int) {
		for i := start; i < end; i++ {
			total += items[i] // want `captured variable total`
		}
	})
	return total
}

// Guard: per-worker accumulator merged with sync/atomic is clean.
func countAtomic(items []int, workers int) int64 {
	var total int64
	par.ForEach(len(items), workers, func(start, end int) {
		sum := int64(0)
		for i := start; i < end; i++ {
			sum += int64(items[i])
		}
		atomic.AddInt64(&total, sum)
	})
	return total
}

// Guard: sharded slice writes (each worker owns its indexes) are the
// sanctioned idiom.
func squares(items []int, workers int) []int {
	out := make([]int, len(items))
	par.ForEach(len(items), workers, func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = items[i] * items[i]
		}
	})
	return out
}

// Positive: captured map written concurrently.
func mapWrite(items []string, workers int) map[string]bool {
	seen := make(map[string]bool)
	par.ForEach(len(items), workers, func(start, end int) {
		for i := start; i < end; i++ {
			seen[items[i]] = true // want `captured map seen`
		}
	})
	return seen
}

// Guard: mutex-guarded writes are a deliberate pattern.
func mapWriteLocked(items []string, workers int) map[string]bool {
	seen := make(map[string]bool)
	var mu sync.Mutex
	par.ForEach(len(items), workers, func(start, end int) {
		for i := start; i < end; i++ {
			mu.Lock()
			seen[items[i]] = true
			mu.Unlock()
		}
	})
	return seen
}

// Positive: Group.Go closure bumping a captured counter.
func groupCounter(n int) (int, error) {
	calls := 0
	g := par.NewGroup(2)
	for i := 0; i < n; i++ {
		g.Go(func() error {
			calls++ // want `captured variable calls`
			return nil
		})
	}
	return calls, g.Wait()
}

// Guard: one slice slot per iteration via Group.Go (the evasion-table
// idiom) is clean.
func rows(n int) ([]int, error) {
	out := make([]int, n)
	g := par.NewGroup(0)
	for i := 0; i < n; i++ {
		g.Go(func() error {
			out[i] = i * i
			return nil
		})
	}
	return out, g.Wait()
}

// Positive: bare go statement mutating captured state.
func goCounter() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n++ // want `captured variable n`
	}()
	wg.Wait()
	return n
}

// Guard: results handed back over a channel are synchronized.
func goSend() int {
	ch := make(chan int, 1)
	go func() {
		ch <- 42
	}()
	return <-ch
}

// Positive: an inline helper closure still runs on the worker goroutine.
func helperClosure(items []int, workers int) int {
	total := 0
	par.ForEach(len(items), workers, func(start, end int) {
		bump := func(v int) { total += v } // want `captured variable total`
		for i := start; i < end; i++ {
			bump(items[i])
		}
	})
	return total
}

// Positive: errgroup-style Group.Go is matched too.
func errgroupCounter(n int) (int, error) {
	var g errgroup.Group
	count := 0
	for i := 0; i < n; i++ {
		g.Go(func() error {
			count++ // want `captured variable count`
			return nil
		})
	}
	return count, g.Wait()
}

// Positive: captured struct field write.
type stats struct{ done int }

func fieldWrite(items []int, workers int, st *stats) {
	par.ForEach(len(items), workers, func(start, end int) {
		st.done = end // want `captured variable st`
	})
}

// Guard: a single one-shot closure owns its result slot outright.
func resultCapture() (int, error) {
	var result int
	g := par.NewGroup(0)
	g.Go(func() error {
		result = 42
		return nil
	})
	return result, g.Wait()
}

// Guard: fan-out branches each assign a distinct field — the pipeline's
// disjoint-slot idiom (each Group.Go branch owns one output field).
type pipeOut struct{ naive, refined int }

func disjointFields() (*pipeOut, error) {
	p := &pipeOut{}
	g := par.NewGroup(0)
	g.Go(func() error {
		p.naive = 1
		return nil
	})
	g.Go(func() error {
		p.refined = 2
		return nil
	})
	return p, g.Wait()
}

// Positive: two one-shot closures plainly assigning the same location.
func sameSlot() (int, error) {
	winner := 0
	g := par.NewGroup(0)
	g.Go(func() error {
		winner = 1 // want `another concurrent closure also writes`
		return nil
	})
	g.Go(func() error {
		winner = 2 // want `another concurrent closure also writes`
		return nil
	})
	return winner, g.Wait()
}

// Positive: a Go closure spawned in a loop multiplies — every instance
// targets the same captured variable.
func loopAssign(n int) (int, error) {
	last := 0
	g := par.NewGroup(0)
	for i := 0; i < n; i++ {
		g.Go(func() error {
			last = i // want `captured variable last`
			return nil
		})
	}
	return last, g.Wait()
}

// Suppressed: deliberate single-writer pattern with a reason.
func suppressed(items []int) int {
	total := 0
	par.ForEach(len(items), 1, func(start, end int) {
		//lint:ignore fistlint/parcapture workers=1 pins this to one goroutine
		total = len(items)
	})
	return total
}
