// Fixture for the atomicmix analyzer: mixing sync/atomic and plain access.
package atomicmix

import "sync/atomic"

type sealer struct {
	sealed uint64
	height int64
}

func (s *sealer) seal() {
	atomic.AddUint64(&s.sealed, 1)
}

// Positive: plain read of an atomically-written field.
func (s *sealer) report() uint64 {
	return s.sealed // want `sealed is accessed with sync/atomic`
}

// Positive: plain store to an atomically-written field.
func (s *sealer) reset() {
	s.sealed = 0 // want `sealed is accessed with sync/atomic`
}

// Guard: a field never touched by sync/atomic is free to be plain.
func (s *sealer) bump() {
	s.height++
}

// Guard: composite-literal construction names the field, it does not
// access shared state.
func newSealer() *sealer {
	return &sealer{sealed: 0, height: 1}
}

var ops uint32

func recordOp() {
	atomic.AddUint32(&ops, 1)
}

// Guard: consistent atomic access is clean.
func opsSnapshot() uint32 {
	return atomic.LoadUint32(&ops)
}

// Positive: plain read of an atomic package-level counter.
func opsRacy() uint32 {
	return ops // want `ops is accessed with sync/atomic`
}

// Suppressed: init-time reset before any goroutine exists.
func opsInit() {
	//lint:ignore fistlint/atomicmix runs before any goroutine starts
	ops = 0
}

// Guard: methods on typed atomics take value pointers, not atomic targets;
// the pointee stays an ordinary local (the Tx.TxID memoization pattern).
type memo struct {
	cached atomic.Pointer[uint64]
}

func (m *memo) get() uint64 {
	if p := m.cached.Load(); p != nil {
		return *p
	}
	v := uint64(42)
	m.cached.Store(&v)
	return v
}
