// Fixture for the ctxflow analyzer: received contexts must flow to
// ctx-accepting callees, and goroutine loops must be cancellable.
package ctxflow

import "context"

func fetch(ctx context.Context, id int) error {
	<-ctx.Done()
	return ctx.Err()
}

// Positive: receives a ctx but detaches the callee with a fresh one.
func handle(ctx context.Context, id int) error {
	return fetch(context.Background(), id) // want `context.Background\(\) detaches fetch`
}

// Positive: context.TODO is the same detachment.
func handleTODO(ctx context.Context, id int) error {
	return fetch(context.TODO(), id) // want `context.TODO\(\) detaches fetch`
}

// Suppression: a deliberately detached call carries a reason.
func audit(ctx context.Context, id int) error {
	//lint:ignore fistlint/ctxflow audit write must survive request cancellation
	return fetch(context.Background(), id)
}

// Guard: forwarding the received ctx is the contract.
func forward(ctx context.Context, id int) error {
	return fetch(ctx, id)
}

// Guard: a ctx derived from the received one still propagates
// cancellation.
func derived(ctx context.Context, id int) error {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	return fetch(c, id)
}

// Guard (interprocedural): forwarding through an in-package helper is
// clean at both hops — the helper's own summary records its ctx parameter.
func viaHelper(ctx context.Context, id int) error {
	return helper(ctx, id)
}

func helper(ctx context.Context, id int) error {
	return fetch(ctx, id)
}

type worker struct {
	tick int
	ch   chan int
}

// Positive (interprocedural): run's summary marks it spawned-by-go, and
// its infinite loop observes nothing.
func (w *worker) start() {
	go w.run()
}

func (w *worker) run() {
	for { // want `never observes cancellation`
		w.tick++
	}
}

// Positive: spawned literal spinning with no way out.
func spin(step func()) {
	go func() {
		for { // want `never observes cancellation`
			step()
		}
	}()
}

// Guard: a select on ctx.Done makes the loop cancellable.
func pump(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// Guard (interprocedural): serveForever is never spawned with `go` in this
// package — the summaries know — so its loop is the caller's problem, not
// a goroutine leak.
func serveForever(step func()) {
	for {
		step()
	}
}

// Guard: a break bound to the loop is a way out, even without a select.
func drain(done *bool, ch chan int) {
	go func() {
		for {
			if *done {
				break
			}
			<-ch
		}
	}()
}

// Guard: ranging a channel inside the loop parks on — and exits with —
// that channel.
func consume(ch chan int, sink func(int)) {
	go func() {
		for {
			for v := range ch {
				sink(v)
			}
		}
	}()
}

// Guard: a panic is an exit; watchdog loops that panic on a tripwire are
// not unobservant spins.
func watchdog(tripped *bool) {
	go func() {
		for {
			if *tripped {
				panic("watchdog tripped")
			}
		}
	}()
}

// Positive: detaching through a function value still reports, with the
// callee unnamed.
func apply(ctx context.Context, fn func(context.Context) error) error {
	return fn(context.Background()) // want `context.Background\(\) detaches the callee`
}
