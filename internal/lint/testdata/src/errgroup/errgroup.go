// Package errgroup is a test-fixture stand-in for
// golang.org/x/sync/errgroup (which this module does not depend on); the
// parcapture analyzer recognizes any Group.Go in a package whose path ends
// in "errgroup".
package errgroup

// Group mirrors errgroup.Group.
type Group struct{ err error }

// Go mirrors (*errgroup.Group).Go.
func (g *Group) Go(f func() error) {
	if err := f(); err != nil && g.err == nil {
		g.err = err
	}
}

// Wait mirrors (*errgroup.Group).Wait.
func (g *Group) Wait() error { return g.err }
