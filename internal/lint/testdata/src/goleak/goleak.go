// Fixture for the goleak analyzer: every `go` needs a visible join or
// cancellation path.
package goleak

import (
	"sort"
	"sync"
)

// Positive: spawned literal with no join evidence at all.
func fireAndForget(work func()) {
	go func() { // want `no join or cancellation path`
		work()
	}()
}

// Positive: spawned named function whose summary shows no join evidence.
func spawnTicker(s *server) {
	go s.bump() // want `bump, which has no join or cancellation path`
}

// Positive: out-of-package callee — nothing visible joins it.
func sortAsync(xs []string) {
	go sort.Strings(xs) // want `callee is outside the package`
}

// Suppression: intentional fire-and-forget carries a reason.
func auditAsync(s *server) {
	//lint:ignore fistlint/goleak audit log write is fire-and-forget by design
	go s.bump()
}

type server struct {
	ch   chan int
	done chan struct{}
	wg   sync.WaitGroup
	hits int
}

func (s *server) bump() { s.hits++ }

// loop drains the work channel; ranging over it is its join path (close
// the channel to stop it).
func (s *server) loop() {
	for v := range s.ch {
		s.hits += v
	}
	close(s.done)
}

// worker signals the WaitGroup when it finishes.
func (s *server) worker() {
	defer s.wg.Done()
	s.bump()
}

// Guard (interprocedural): the spawned named function's summary shows a
// channel range — goleak never reads loop's body here.
func (s *server) start() {
	go s.loop()
}

// Guard (interprocedural): summary shows a WaitGroup.Done.
func (s *server) startWorker() {
	s.wg.Add(1)
	go s.worker()
}

// Guard: literal with direct join evidence (WaitGroup.Done).
func (s *server) startInline() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.bump()
	}()
}

// Guard (interprocedural): the literal itself shows nothing, but it calls
// an in-package function whose summary has join evidence.
func (s *server) startWrapped() {
	go func() {
		s.loop()
	}()
}

// Guard: a done-channel send is a join path.
func (s *server) startSignalling() {
	go func() {
		s.bump()
		s.done <- struct{}{}
	}()
}
