// Fixture for the lockheld analyzer: no blocking operations while a sync
// lock is held, and no locks copied by value.
package lockheld

import "sync"

type counter struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
	n  int
}

// Positive: channel send under the lock.
func (c *counter) publish() {
	c.mu.Lock()
	c.ch <- c.n // want `channel send while c.mu is held`
	c.mu.Unlock()
}

// Positive: channel receive under a deferred unlock (the lock is held to
// function exit).
func (c *counter) take() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-c.ch // want `channel receive while c.mu is held`
}

// Positive: Wait while holding the lock.
func (c *counter) drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wg.Wait() // want `blocking call Wait while c.mu is held`
}

// flush blocks (channel send) — pass 1 records that in its summary.
func (c *counter) flush() {
	c.ch <- c.n
}

// Positive (interprocedural): the callee's summary says it blocks.
func (c *counter) publishLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flush() // want `summary says it blocks`
}

// Positive: a lock-bearing receiver taken by value is a copied lock.
func (c counter) snapshot() int { // want `receiver passes a lock by value`
	return c.n
}

// Suppression: a deliberate send under the lock carries a reason.
func (c *counter) deliberate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:ignore fistlint/lockheld buffered channel sized for worst case; send cannot block
	c.ch <- c.n
}

// Guard: unlock before the send.
func (c *counter) ok() {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	c.ch <- n
}

// Guard: the error branch unlocks before sending and returning; the
// branch-local held set doesn't leak into the fallthrough path, and the
// fallthrough keeps the lock without blocking.
func (c *counter) branchy(fail bool) {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		c.ch <- -1
		return
	}
	c.n++
	c.mu.Unlock()
}

// incr doesn't block — its summary proves calling it under the lock is
// fine (interprocedural guard).
func (c *counter) incr() {
	c.n++
}

func (c *counter) okCall() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incr()
}

// Guard: the spawned body runs without the spawner's lock.
func (c *counter) spawnUnderLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.flush()
	}()
	c.n++
}

// Guard: composite literals build fresh zero locks; only copying an
// existing lock is flagged.
func fresh() *counter {
	c := counter{ch: make(chan int)}
	return &c
}

// Positive: assigning an existing lock-bearing value copies the lock.
func clone(c *counter) int {
	dup := *c // want `copies a value containing a sync lock`
	return dup.n
}

// Positive: ranging over a channel under the lock parks the holder until
// the channel closes.
func (c *counter) rangeDrain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for v := range c.ch { // want `ranging over a channel while c.mu is held`
		c.n += v
	}
}

// Positive: a select with no default blocks under the lock; the
// default-carrying select below it is the guard.
func (c *counter) selectors(quit chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want `select without default while c.mu is held`
	case v := <-c.ch:
		c.n += v
	case <-quit:
	}
	select {
	case c.ch <- c.n:
	default:
	}
}

// Positive: the send hides inside switch and labeled-loop bodies; the
// scan must thread the held set through both.
func (c *counter) nested(mode int) {
	c.mu.Lock()
	defer c.mu.Unlock()
retry:
	for i := 0; i < 2; i++ {
		switch mode {
		case 0:
			c.ch <- i // want `channel send while c.mu is held`
		default:
			break retry
		}
	}
}

// Positive: a type switch body is scanned with the lock still held.
func (c *counter) typed(v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch x := v.(type) {
	case int:
		c.ch <- x // want `channel send while c.mu is held`
	default:
	}
}

// Positive: the spawned body runs lock-free, but its arguments evaluate
// on the spawning goroutine — a receive there still blocks under the lock.
func (c *counter) spawnArg() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go c.consume(<-c.ch) // want `channel receive while c.mu is held`
}

func (c *counter) consume(int) {}

// Guard: two locks threaded independently — releasing the inner one keeps
// the scan precise about which lock the later send is under.
func (c *counter) two(other *sync.Mutex) {
	c.mu.Lock()
	other.Lock()
	c.n++
	other.Unlock()
	c.mu.Unlock()
	c.ch <- c.n
}
