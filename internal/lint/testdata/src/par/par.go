// Package par is a test-fixture stand-in for repro/internal/par: the same
// API shape, no real concurrency — just enough for the type checker. The
// analyzers match the package by path suffix, so fixtures importing "par"
// exercise the same code paths as the real tree importing
// "repro/internal/par".
package par

// Group mirrors par.Group.
type Group struct{ err error }

// NewGroup mirrors par.NewGroup.
func NewGroup(limit int) *Group { return &Group{} }

// Go mirrors (*par.Group).Go.
func (g *Group) Go(f func() error) {
	if err := f(); err != nil && g.err == nil {
		g.err = err
	}
}

// Wait mirrors (*par.Group).Wait.
func (g *Group) Wait() error { return g.err }

// ForEach mirrors par.ForEach.
func ForEach(n, workers int, fn func(start, end int)) {
	if n > 0 {
		fn(0, n)
	}
}
