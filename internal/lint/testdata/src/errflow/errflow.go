// Fixture for the errflow analyzer: %w wrapping and goroutine error
// propagation.
package errflow

import (
	"errors"
	"fmt"

	"par"
)

var errBase = errors.New("base")

// Guard: the repo convention — errors cross boundaries wrapped with %w.
func wrapGood(err error) error {
	return fmt.Errorf("stage: %w", err)
}

// Positive: %v flattens the chain.
func wrapBadV(err error) error {
	return fmt.Errorf("stage: %v", err) // want `formatted with %v`
}

// Positive: %s flattens the chain.
func wrapBadS(err error) error {
	return fmt.Errorf("stage failed: %s", err) // want `formatted with %s`
}

// Guard: non-error args may use any verb alongside a %w-wrapped error.
func wrapMixed(path string, n int, err error) error {
	return fmt.Errorf("read %s (%d bytes): %w", path, n, err)
}

// Guard: a * width consumes an argument; the error still lines up with %w.
func wrapStar(width int, err error) error {
	return fmt.Errorf("%*d: %w", width, 0, err)
}

func work() error { return errBase }

// Positive: the spawned call's error has nowhere to go.
func spawnDirect() {
	go work() // want `go discards the callee's error`
}

// Positive: error dropped on the goroutine floor.
func spawnDropped() {
	go func() {
		work() // want `error result dropped inside a goroutine`
	}()
}

// Positive: blank-discarded error inside a goroutine.
func spawnBlank() {
	go func() {
		_ = work() // want `error result dropped inside a goroutine`
	}()
}

// Guard: propagating through the group is the convention.
func spawnGroup() error {
	g := par.NewGroup(0)
	g.Go(work)
	return g.Wait()
}

// Guard: explicitly handled errors are fine.
func spawnHandled(logf func(string, ...any)) {
	go func() {
		if err := work(); err != nil {
			logf("work: %v", err)
		}
	}()
}

// Suppressed: deliberate fire-and-forget with a recorded reason.
func spawnSuppressed() {
	go func() {
		//lint:ignore fistlint/errflow demo helper; failure is non-fatal
		work()
	}()
}
