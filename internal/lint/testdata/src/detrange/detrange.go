// Fixture for the detrange analyzer: map iteration feeding
// ordering-sensitive sinks.
package detrange

import (
	"fmt"
	"sort"
	"strings"
)

type table struct{ rows int }

func (t *table) AddRow(cells ...any) { t.rows++ }

// Positive: rendering rows straight out of a map range.
func renderCounts(t *table, counts map[string]int) {
	for k, v := range counts {
		t.AddRow(k, v) // want `AddRow called inside range over map`
	}
}

// Positive: streaming writes in map order.
func printAll(w *strings.Builder, m map[string]int) {
	for k := range m {
		fmt.Fprintf(w, "%s\n", k) // want `fmt\.Fprintf called inside range over map`
	}
}

// Positive: accumulated keys escape by return without a sort.
func keysOf(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map`
	}
	return keys
}

// Positive: accumulated keys are ranged over (rendered) unsorted.
func render(t *table, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map`
	}
	for _, k := range keys {
		t.AddRow(k)
	}
}

// Guard: the canonical sorted-keys pattern is clean.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Guard: order-insensitive reduction over a map is clean.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Guard: only the length escapes, not the order.
func countRow(t *table, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	t.AddRow(len(keys))
}

// Guard: writes into another map are order-insensitive.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Suppressed: the caller sorts; the directive must silence the finding.
func suppressedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:ignore fistlint/detrange caller sorts before rendering
		keys = append(keys, k)
	}
	return keys
}
