package lint

import (
	"go/ast"
	"go/token"
)

// GoLeak flags fire-and-forget goroutines: a `go` statement whose spawned
// body shows no join or cancellation path. In the batch pipeline a leaked
// goroutine dies with the process; under `fistful serve` each one
// accumulates until the daemon OOMs or deadlocks on shutdown, so every
// spawn must be joinable (WaitGroup / par.Group), cancellable (done
// channel, context), or channel-bound (the goroutine ranges over or sends
// on a channel the spawner controls).
//
// The check is summary-driven. For `go f()` where f is declared in the
// package, pass 1 already knows whether f's body signals a WaitGroup,
// closes a channel, or performs channel operations — so `go s.signLoop()`
// (ranges a work channel) and `go n.acceptLoop()` (defers wg.Done) pass
// without goleak reading their bodies here. For `go func() {...}()` the
// literal's body is scanned directly with the same evidence rules. A
// spawn of an out-of-package function (e.g. `go srv.Serve(ln)`) has no
// summary and no visible join, so it is flagged; genuinely intentional
// fire-and-forget spawns carry a //lint:ignore with the reason.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "flags fire-and-forget goroutines with no visible join or cancellation path (WaitGroup, par.Group, done channel, channel loop)",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, g)
			return true
		})
	}
	return nil
}

func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	info := pass.TypesInfo

	// go func() { ... }(): scan the literal for join evidence. The
	// evidence can also live in an in-package function the literal calls
	// (e.g. the closure just wraps a worker that ranges a channel), which
	// is where the summaries come in.
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if funcLitJoinEvidence(pass, lit) {
			return
		}
		pass.Reportf(g.Pos(), "goroutine has no join or cancellation path (no WaitGroup, channel op, or close); a leaked goroutine outlives every request in a long-running process")
		return
	}

	// go f(...) / go x.m(...): consult f's summary.
	if fi := pass.Sums.OfCallee(info, g.Call); fi != nil {
		if fi.JoinEvidence() {
			return
		}
		pass.Reportf(g.Pos(), "goroutine runs %s, which has no join or cancellation path (no WaitGroup, channel op, or close)", fi.Fn.Name())
		return
	}

	// Unknown callee: out-of-package function, method value, or function
	// variable. Nothing visible joins it.
	pass.Reportf(g.Pos(), "fire-and-forget goroutine: callee is outside the package and nothing visible joins or cancels it")
}

// funcLitJoinEvidence reports whether a spawned literal's body shows a
// join or cancellation path: a WaitGroup.Done, a channel close/send/
// receive/range/select, or a call to an in-package function whose summary
// shows the same.
func funcLitJoinEvidence(pass *Pass, lit *ast.FuncLit) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && isChanType(tv.Type) {
				found = true
			}
		case *ast.CallExpr:
			if callIsJoinEvidence(pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// callIsJoinEvidence reports whether one call inside a spawned body counts
// as join evidence: builtin close, WaitGroup.Done, or an in-package callee
// whose summary shows evidence (the interprocedural case).
func callIsJoinEvidence(pass *Pass, call *ast.CallExpr) bool {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil && obj.Name() == "close" && obj.Pkg() == nil {
			return true
		}
	}
	if fn := calleeFunc(info, call); fn != nil {
		if fn.Name() == "Done" && isMethodOn(fn, "sync", "WaitGroup") {
			return true
		}
	}
	if fi := pass.Sums.OfCallee(info, call); fi != nil && fi.JoinEvidence() {
		return true
	}
	return false
}
