package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, lint.CtxFlow, "ctxflow")
}
