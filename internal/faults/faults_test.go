package faults

import (
	"errors"
	"fmt"
	"io"
	"os"
	"syscall"
	"testing"
)

func TestTransientNil(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) != nil")
	}
	if IsTransient(nil) {
		t.Fatal("IsTransient(nil)")
	}
}

func TestTransientMarkAndClassify(t *testing.T) {
	base := errors.New("socket fell over")
	err := Transient(base)
	if !IsTransient(err) {
		t.Fatal("marked error not classified transient")
	}
	if !errors.Is(err, base) {
		t.Fatal("mark hides the underlying error from errors.Is")
	}
	if got := err.Error(); got != "transient: socket fell over" {
		t.Fatalf("Error() = %q", got)
	}
}

func TestTransientIdempotent(t *testing.T) {
	err := Transient(errors.New("x"))
	if again := Transient(err); again != err {
		t.Fatal("re-marking allocated a new wrapper")
	}
	// Marking a wrapped already-marked error keeps the existing mark too.
	wrapped := fmt.Errorf("outer: %w", err)
	if again := Transient(wrapped); again != wrapped {
		t.Fatal("re-marking a %w-wrapped marked error allocated a new wrapper")
	}
}

func TestMarkSurvivesWrapping(t *testing.T) {
	err := fmt.Errorf("feed: %w", fmt.Errorf("read: %w", Transient(io.ErrUnexpectedEOF)))
	if !IsTransient(err) {
		t.Fatal("mark lost through two %w wraps")
	}
}

func TestErrnoClassification(t *testing.T) {
	for _, errno := range []syscall.Errno{
		syscall.EAGAIN, syscall.EINTR, syscall.ETIMEDOUT,
		syscall.ECONNRESET, syscall.ECONNREFUSED,
	} {
		wrapped := &os.PathError{Op: "read", Path: "chain.bin", Err: errno}
		if !IsTransient(wrapped) {
			t.Errorf("%v not classified transient", errno)
		}
	}
	if IsTransient(&os.PathError{Op: "read", Path: "x", Err: syscall.ENOENT}) {
		t.Fatal("ENOENT classified transient")
	}
}

func TestFatalErrorsStayFatal(t *testing.T) {
	for _, err := range []error{
		errors.New("corrupt frame"),
		io.EOF,
		io.ErrUnexpectedEOF,
		fmt.Errorf("decode: %w", errors.New("bad magic")),
	} {
		if IsTransient(err) {
			t.Errorf("%v classified transient", err)
		}
	}
}
