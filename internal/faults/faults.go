// Package faults classifies errors as transient or fatal for the serving
// stack's supervision loops. A transient error is one whose operation is
// worth retrying unchanged — a network hiccup, an interrupted read, a
// resource that is momentarily busy — as opposed to corruption or a
// programming error, where retrying can only repeat the failure.
//
// The package sits below internal/chain, internal/p2p, and internal/serve so
// that errors can be tagged where they originate (the only layer that knows
// whether a failure is retryable) and classified where they are handled (the
// daemon's retry loop). The mark survives fmt.Errorf("%w") wrapping.
package faults

import (
	"errors"
	"syscall"
)

// TransientError marks its wrapped error as retryable. Construct it with
// Transient; test for it with IsTransient (which sees through %w wrapping).
type TransientError struct {
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient marks err as retryable. A nil error stays nil, and an error that
// is already marked is returned unchanged, so tagging is idempotent across
// layers.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	var t *TransientError
	if errors.As(err, &t) {
		return err
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err carries a transient mark anywhere in its
// wrap chain, or is one of the OS-level errnos that mean "try again"
// (EAGAIN, EINTR, ETIMEDOUT, ECONNRESET, ECONNREFUSED) — failures the
// kernel itself defines as retryable.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var t *TransientError
	if errors.As(err, &t) {
		return true
	}
	for _, errno := range []syscall.Errno{
		syscall.EAGAIN, syscall.EINTR, syscall.ETIMEDOUT,
		syscall.ECONNRESET, syscall.ECONNREFUSED,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}
