package balance

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/chaintest"
	"repro/internal/cluster"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

func setup(t *testing.T) (*chaintest.Builder, *txgraph.Graph, *cluster.Clustering, *tags.Naming) {
	t.Helper()
	b := chaintest.New(t)
	b.Coinbase("minerA")
	b.Coinbase("minerA")
	// minerA sends 40 BTC to the exchange's (seen) deposit and keeps change.
	b.Coinbase("goxdep")
	b.Pay([]string{"minerA"},
		chaintest.Out{Name: "goxdep", Value: 40 * chain.Coin},
		chaintest.Out{Name: "minerAchange", Value: 59 * chain.Coin})
	b.Mine(1)
	// The exchange spends once (hot-wallet churn with self-change) so its
	// tagged address is not a sink and its balance counts as active.
	b.Pay([]string{"goxdep"}, chaintest.Out{Name: "payout", Value: 1 * chain.Coin},
		chaintest.Out{Name: "goxdep", Value: 88 * chain.Coin})
	b.Mine(1)
	g, err := txgraph.Build(b.Chain)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.Heuristic1(g, 0)
	store := tags.NewStore()
	store.Add(tags.Tag{Addr: b.Addr("goxdep"), Service: "Mt Gox", Category: tags.CatBankExchange, Source: tags.SourceOwnTransaction})
	store.Add(tags.Tag{Addr: b.Addr("minerA"), Service: "minerA", Category: tags.CatMining, Source: tags.SourceOwnTransaction})
	n := tags.NameClusters(c, g, store)
	return b, g, c, n
}

func TestComputeSharesSumBelowTotal(t *testing.T) {
	b, g, c, n := setup(t)
	s := Compute(g, c, n, b.Chain.Params(), 4)
	if len(s.Heights) != 4 {
		t.Fatalf("samples = %d, want 4", len(s.Heights))
	}
	for si := range s.Heights {
		var sum float64
		for ci := range s.Categories {
			pct := s.SharePct[ci][si]
			if pct < -1e-9 || pct > 100+1e-9 {
				t.Fatalf("share out of range: %f", pct)
			}
			sum += pct
		}
		if sum > 100+1e-6 {
			t.Fatalf("category shares exceed 100%%: %f", sum)
		}
	}
}

func TestComputeExchangeBalanceVisible(t *testing.T) {
	b, g, c, n := setup(t)
	s := Compute(g, c, n, b.Chain.Params(), 4)
	exIdx := -1
	for i, cat := range s.Categories {
		if cat == tags.CatBankExchange {
			exIdx = i
		}
	}
	if exIdx < 0 {
		t.Fatal("no exchange category row")
	}
	last := s.SharePct[exIdx][len(s.Heights)-1]
	if last <= 0 {
		t.Fatalf("exchange share = %f, want > 0 after the 40 BTC deposit", last)
	}
	// 90 BTC on-chain total (minerAchange is a sink; goxdep spent nothing
	// but received, also sink... active excludes sink-held coins).
	if last > 100 {
		t.Fatalf("exchange share = %f out of range", last)
	}
	first := s.SharePct[exIdx][0]
	if first >= last {
		t.Fatalf("exchange share should grow: first=%f last=%f", first, last)
	}
}

func TestComputeActiveExcludesSinks(t *testing.T) {
	b, g, c, n := setup(t)
	s := Compute(g, c, n, b.Chain.Params(), 2)
	lastActive := s.ActiveBTC[len(s.ActiveBTC)-1]
	// Total minted: 4 coinbases + fees recycled. minerA spent, so its
	// remaining coinbase and change are "active" only if the address ever
	// spent. minerA spent once -> not a sink. goxdep never spent -> sink.
	// minerAchange never spent -> sink. miner (from Mine) never spent -> sink.
	var sinkSum float64
	bal := g.Balances()
	for id := 0; id < g.NumAddrs(); id++ {
		if g.IsSink(txgraph.AddrID(id)) {
			sinkSum += bal[id].ToBTC()
		}
	}
	total := b.Chain.UTXO().Total().ToBTC()
	if want := total - sinkSum; lastActive < want-0.01 || lastActive > want+0.01 {
		t.Fatalf("active = %f, want %f (total %f, sinks %f)", lastActive, want, total, sinkSum)
	}
}
