// Package balance computes Figure 2 of the paper: the balance held by each
// major service category over time, as a percentage of "active" bitcoins —
// coins not parked in sink addresses (addresses that have never spent).
package balance

import (
	"time"

	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

// Series is a sampled per-category balance time series.
type Series struct {
	// Heights are the sampled block heights.
	Heights []int64
	// Times are the corresponding simulated timestamps.
	Times []time.Time
	// Categories are the series rows, in presentation order.
	Categories []tags.Category
	// SharePct[c][s] is category c's balance at sample s as a percentage of
	// active (non-sink-held) coins.
	SharePct [][]float64
	// ActiveBTC[s] is the active coin total at each sample, for scale.
	ActiveBTC []float64
}

// Compute walks the chain once, attributing every address's running balance
// to the category of its named cluster, and samples `samples` points evenly
// across the block range.
func Compute(g *txgraph.Graph, c *cluster.Clustering, naming *tags.Naming, params *chain.Params, samples int) *Series {
	if samples < 2 {
		samples = 2
	}
	n := g.NumAddrs()

	// Precompute per-address category and sink status.
	cat := make([]tags.Category, n)
	for id := 0; id < n; id++ {
		cat[id] = naming.CategoryOf(c, txgraph.AddrID(id))
	}
	sink := make([]bool, n)
	for id := 0; id < n; id++ {
		sink[id] = g.IsSink(txgraph.AddrID(id))
	}

	catIndex := make(map[tags.Category]int, len(tags.Categories))
	s := &Series{Categories: tags.Categories}
	for i, ct := range tags.Categories {
		catIndex[ct] = i
	}
	s.SharePct = make([][]float64, len(tags.Categories))
	for i := range s.SharePct {
		s.SharePct[i] = make([]float64, 0, samples)
	}

	maxHeight := g.Height()
	sampleAt := make([]int64, samples)
	for i := 0; i < samples; i++ {
		sampleAt[i] = maxHeight * int64(i+1) / int64(samples)
	}

	bal := make([]chain.Amount, n)
	catBal := make([]chain.Amount, len(tags.Categories))
	var total, sinkHeld chain.Amount

	apply := func(id txgraph.AddrID, delta chain.Amount) {
		if id == txgraph.NoAddr {
			return
		}
		bal[id] += delta
		if sink[id] {
			// Coins parked in never-spending addresses are outside the
			// "active" economy — excluded from both the denominator and the
			// per-category numerators, as in Figure 2.
			sinkHeld += delta
			return
		}
		if i, ok := catIndex[cat[id]]; ok {
			catBal[i] += delta
		}
	}

	record := func(height int64) {
		s.Heights = append(s.Heights, height)
		s.Times = append(s.Times, params.TimeAt(height))
		active := total - sinkHeld
		s.ActiveBTC = append(s.ActiveBTC, active.ToBTC())
		for i := range tags.Categories {
			pct := 0.0
			if active > 0 {
				pct = 100 * float64(catBal[i]) / float64(active)
			}
			s.SharePct[i] = append(s.SharePct[i], pct)
		}
	}

	next := 0
	numTxs := g.NumTxs()
	for seq := 0; seq < numTxs; seq++ {
		tx := g.Tx(txgraph.TxSeq(seq))
		for next < samples && tx.Height > sampleAt[next] {
			record(sampleAt[next])
			next++
		}
		for j, id := range tx.InputAddrs {
			apply(id, -tx.InputValues[j])
		}
		var out chain.Amount
		for j, id := range tx.OutputAddrs {
			apply(id, tx.OutputValues[j])
			out += tx.OutputValues[j]
		}
		if tx.Coinbase {
			total += out
		} else {
			// Fees shrink circulating value relative to minted coins; they
			// are re-minted through coinbases, already counted above.
			var in chain.Amount
			for _, v := range tx.InputValues {
				in += v
			}
			total -= in - out
		}
	}
	for next < samples {
		record(sampleAt[next])
		next++
	}
	return s
}
