package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/chaintest"
	"repro/internal/faultinject"
)

// chaosRetry keeps chaos tests fast: tiny backoff, default budget.
func chaosRetry() RetryPolicy {
	return RetryPolicy{Max: 8, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
}

// chaosBlocks builds a small deterministic chain for fault runs.
func chaosBlocks(t *testing.T) []*chain.Block {
	t.Helper()
	b := chaintest.New(t)
	buildCommonPrefix(b)
	b.Mine(20)
	return b.Chain.Blocks()
}

// runDaemon starts d.Run on its own goroutine and returns a cancel-and-join
// func that fails the test if Run errored.
func runDaemon(t *testing.T, d *Daemon) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()
	return func() {
		cancel()
		if err := <-done; err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
}

// TestChaosFeedFaultsRetriedToConvergence injects a transient feed error
// before every third poll and proves the daemon retries through all of them
// without exiting, converging to exactly the cold-build state.
func TestChaosFeedFaultsRetriedToConvergence(t *testing.T) {
	blocks := chaosBlocks(t)
	inner := NewSourceFeed(&chainSliceSource{blocks: blocks})
	feed := faultinject.WrapFeed(inner, faultinject.NewEveryN(3), faultinject.FeedFaults{})
	ing := NewIngester(reorgAnalysis())
	d := NewDaemonOpts(ing, feed, DaemonOptions{PublishEvery: 4, Retry: chaosRetry()})

	stop := runDaemon(t, d)
	awaitHeight(t, d, int64(len(blocks)-1))
	stop()

	if feed.Injected() == 0 {
		t.Fatal("harness injected nothing; the test proved nothing")
	}
	h := d.Health()
	if h.TotalRetries != feed.Injected() {
		t.Fatalf("TotalRetries = %d, want %d (one per injected fault)", h.TotalRetries, feed.Injected())
	}
	if h.Degraded || h.State != StateOK {
		t.Fatalf("isolated faults must not trip degraded: %+v", h)
	}
	assertConverged(t, d.Snapshot(), coldSnapshot(t, blocks))
}

// TestChaosApplyFaultsRetriedToConvergence drives the same supervision loop
// through the apply seam: transient errors from block application are
// retried on the same block, losing nothing.
func TestChaosApplyFaultsRetriedToConvergence(t *testing.T) {
	blocks := chaosBlocks(t)
	ing := NewIngester(reorgAnalysis())
	d := NewDaemonOpts(ing, NewSourceFeed(&chainSliceSource{blocks: blocks}),
		DaemonOptions{PublishEvery: 4, Retry: chaosRetry()})
	sched := faultinject.NewEveryN(4)
	var injected atomic.Int64
	d.testApplyFault = func(b *chain.Block) error {
		if sched.Hit() {
			injected.Add(1)
			return Transient(fmt.Errorf("%w: apply", faultinject.ErrInjected))
		}
		return nil
	}

	stop := runDaemon(t, d)
	awaitHeight(t, d, int64(len(blocks)-1))
	stop()

	if injected.Load() == 0 {
		t.Fatal("no apply faults injected")
	}
	if got := d.Health().TotalRetries; got != injected.Load() {
		t.Fatalf("TotalRetries = %d, want %d", got, injected.Load())
	}
	assertConverged(t, d.Snapshot(), coldSnapshot(t, blocks))
}

// TestChaosTailFeedFilesystemFaults runs the daemon over a real chain file
// whose reads fail with EAGAIN (including short reads) on a deterministic
// schedule: the fs-level faults surface as transient errors through the
// chain layer, the supervision loop retries, and the daemon converges.
func TestChaosTailFeedFilesystemFaults(t *testing.T) {
	blocks := chaosBlocks(t)
	path := filepath.Join(t.TempDir(), "chain.bin")
	if err := os.WriteFile(path, frameBytes(t, blocks), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	faulty := faultinject.WrapFile(f, faultinject.NewProb(1234, 0.3), true)
	feed := NewTailFeed(chain.NewTailReader(faulty))

	ing := NewIngester(reorgAnalysis())
	d := NewDaemonOpts(ing, feed, DaemonOptions{PublishEvery: 4, Retry: chaosRetry()})
	stop := runDaemon(t, d)
	awaitHeight(t, d, int64(len(blocks)-1))
	stop()

	if faulty.Injected() == 0 {
		t.Fatal("no filesystem faults injected")
	}
	assertConverged(t, d.Snapshot(), coldSnapshot(t, blocks))
}

// flakyFeed delivers released blocks and polls for more, with a switchable
// transient failure: while failing is set, every poll errors instead of
// waiting — so the outage is observed even if the daemon is between blocks.
type flakyFeed struct {
	blocks  []*chain.Block
	next    int
	avail   atomic.Int64 // how many blocks are released for delivery
	failing atomic.Bool
}

func (f *flakyFeed) Next(ctx context.Context) (*chain.Block, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if f.failing.Load() {
			return nil, Transient(errors.New("flaky source"))
		}
		if int64(f.next) < f.avail.Load() {
			b := f.blocks[f.next]
			f.next++
			return b, nil
		}
		time.Sleep(time.Millisecond)
	}
}
func (f *flakyFeed) Rewind(int64) error { return nil }
func (f *flakyFeed) Buffered() bool     { return int64(f.next) < f.avail.Load() }
func (f *flakyFeed) Close() error       { return nil }

// TestChaosDegradedThenRecovered holds the feed in a failing state long
// enough to exhaust the retry budget, watching /v1/readyz flip ok → 503
// degraded → ok, while /v1/healthz stays 200 and the last snapshot keeps
// serving throughout. The daemon never exits.
func TestChaosDegradedThenRecovered(t *testing.T) {
	blocks := chaosBlocks(t)
	half := len(blocks) / 2
	feed := &flakyFeed{blocks: blocks}
	ing := NewIngester(reorgAnalysis())
	d := NewDaemonOpts(ing, feed, DaemonOptions{
		PublishEvery: 1,
		Retry:        RetryPolicy{Max: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	api := httptest.NewServer(NewDaemonAPI(d).Handler())
	defer api.Close()

	readyStatus := func() int {
		resp, err := api.Client().Get(api.URL + "/v1/readyz")
		if err != nil {
			t.Fatalf("readyz: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	awaitReady := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for readyStatus() != want {
			if time.Now().After(deadline) {
				t.Fatalf("readyz never reached %d (%s)", want, what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	feed.avail.Store(int64(half))
	stop := runDaemon(t, d)
	awaitHeight(t, d, int64(half-1))
	if got := readyStatus(); got != http.StatusOK {
		t.Fatalf("healthy daemon readyz = %d", got)
	}
	servedHeight := d.Snapshot().Height

	// Outage: the feed fails every poll; past Max consecutive failures the
	// daemon must report degraded — and keep serving the old snapshot.
	feed.failing.Store(true)
	awaitReady(http.StatusServiceUnavailable, "degraded after sustained faults")
	if got := d.Snapshot().Height; got != servedHeight {
		t.Fatalf("degraded daemon's snapshot moved: %d != %d", got, servedHeight)
	}
	var hz healthzResponse
	get(t, api, "/v1/healthz", http.StatusOK, &hz) // liveness stays green

	// Heal the source; the next applied block must clear the state.
	feed.avail.Store(int64(len(blocks)))
	feed.failing.Store(false)
	awaitReady(http.StatusOK, "recovered after source healed")
	awaitHeight(t, d, int64(len(blocks)-1))
	stop()

	h := d.Health()
	if h.TimesDegraded != 1 {
		t.Fatalf("TimesDegraded = %d, want exactly 1 episode", h.TimesDegraded)
	}
	if h.Degraded || h.ConsecutiveFailures != 0 {
		t.Fatalf("recovered health wrong: %+v", h)
	}
	if !strings.Contains(h.LastError, "flaky source") {
		t.Fatalf("LastError %q does not record the outage", h.LastError)
	}
	assertConverged(t, d.Snapshot(), coldSnapshot(t, blocks))
}

// TestChaosFatalErrorStillExits pins the boundary: with supervision on, a
// non-transient feed error is still fatal — retrying cannot fix corruption.
func TestChaosFatalErrorStillExits(t *testing.T) {
	fatal := errors.New("corrupt beyond repair")
	feed := &errFeed{err: fatal}
	d := NewDaemonOpts(NewIngester(reorgAnalysis()), feed, DaemonOptions{Retry: chaosRetry()})
	err := d.Run(context.Background())
	if !errors.Is(err, fatal) {
		t.Fatalf("Run = %v, want the fatal cause", err)
	}
}

// TestChaosRetryDisabled pins Max < 0: any transient error is fatal, the
// pre-supervision behavior.
func TestChaosRetryDisabled(t *testing.T) {
	cause := Transient(errors.New("would be retryable"))
	feed := &errFeed{err: cause}
	d := NewDaemonOpts(NewIngester(reorgAnalysis()), feed, DaemonOptions{Retry: RetryPolicy{Max: -1}})
	err := d.Run(context.Background())
	if !errors.Is(err, cause) {
		t.Fatalf("Run = %v, want the transient cause surfaced as fatal", err)
	}
}

// TestChaosCheckpointErrorPropagates proves checkpoint-write failures are
// never supervised away: the publish worker latches the error and Run
// surfaces it.
func TestChaosCheckpointErrorPropagates(t *testing.T) {
	blocks := chaosBlocks(t)
	dir := filepath.Join(t.TempDir(), "ckpt")
	ck, err := NewCheckpointStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Yank the directory out from under the store: every save now fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	feed := NewSourceFeed(&chainSliceSource{blocks: blocks})
	d := NewDaemonOpts(NewIngester(reorgAnalysis()), feed,
		DaemonOptions{PublishEvery: 1, Checkpoints: ck, Retry: chaosRetry()})
	err = d.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("Run = %v, want a checkpoint error", err)
	}
}

// chainSliceSource replays a block slice as a chain.BlockSource.
type chainSliceSource struct {
	blocks []*chain.Block
	next   int
}

func (s *chainSliceSource) NextBlock() (*chain.Block, error) {
	if s.next >= len(s.blocks) {
		return nil, io.EOF
	}
	b := s.blocks[s.next]
	s.next++
	return b, nil
}

// errFeed fails every poll with a fixed error.
type errFeed struct{ err error }

func (f *errFeed) Next(ctx context.Context) (*chain.Block, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, f.err
}
func (f *errFeed) Rewind(int64) error { return nil }
func (f *errFeed) Buffered() bool     { return false }
func (f *errFeed) Close() error       { return nil }
