package serve

import "sync"

// publisher runs epoch publishes on a dedicated worker goroutine so the
// classifier recompute — the expensive, non-monotone part of a publish —
// never stalls the ingest loop. It is single-flight with latest-wins
// coalescing: at most one substrate is queued, and submitting a newer one
// replaces a queued older one (the epoch-monotone snapshot install makes
// skipping intermediate epochs safe). One producer (the ingest goroutine),
// one worker.
type publisher struct {
	ing *Ingester
	ck  *CheckpointStore // nil: publish only, no persistence

	// gate, when non-nil, runs on the worker before each publish — the test
	// seam for making a publish observably slow.
	gate func(*substrate)

	subs chan *substrate // capacity 1: the coalescing slot
	done chan struct{}   // closed when the worker drains and exits

	stopOnce sync.Once

	mu       sync.Mutex
	firstErr error
}

// newPublisher starts the worker goroutine. Callers must stop() it; stop is
// the join point that guarantees the goroutine exited.
func newPublisher(ing *Ingester, ck *CheckpointStore, gate func(*substrate)) *publisher {
	p := &publisher{
		ing:  ing,
		ck:   ck,
		gate: gate,
		subs: make(chan *substrate, 1),
		done: make(chan struct{}),
	}
	go p.run()
	return p
}

// run is the worker loop: publish every substrate that survives coalescing,
// until the submit channel closes.
func (p *publisher) run() {
	defer close(p.done)
	for sub := range p.subs {
		p.publish(sub)
	}
}

// publish installs one substrate's snapshot and, when a store is attached,
// checkpoints the substrate. The first error (only checkpointing can fail)
// is latched for the producer.
func (p *publisher) publish(sub *substrate) {
	if p.gate != nil {
		p.gate(sub)
	}
	p.ing.publishFrom(sub)
	if p.ck != nil {
		if err := p.ck.saveSub(sub); err != nil {
			p.mu.Lock()
			if p.firstErr == nil {
				p.firstErr = err
			}
			p.mu.Unlock()
		}
	}
}

// submit hands a substrate to the worker, displacing a still-queued older
// one (latest wins). Never blocks: with one producer, the drain-and-retry
// loop runs at most twice. Producer goroutine only.
func (p *publisher) submit(sub *substrate) {
	for {
		select {
		case p.subs <- sub:
			return
		default:
		}
		select {
		case <-p.subs: // displace the stale queued substrate
		default: // worker grabbed it between the two selects
		}
	}
}

// stop closes the submit channel and waits for the worker to finish any
// in-flight publish and exit. Idempotent.
func (p *publisher) stop() {
	p.stopOnce.Do(func() { close(p.subs) })
	<-p.done
}

// err returns the first error the worker hit, if any.
func (p *publisher) err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.firstErr
}
