package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/chain"
)

// TestWriteErrorEnvelope pins the error contract every handler shares: a
// JSON body with an "error" field, the JSON content type, and Retry-After
// on 503s (and only on 503s).
func TestWriteErrorEnvelope(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, http.StatusNotFound, "nope")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "" {
		t.Fatalf("404 carried Retry-After %q", ra)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error != "nope" {
		t.Fatalf("body %q decode: %v", rec.Body.String(), err)
	}

	rec = httptest.NewRecorder()
	writeError(rec, http.StatusServiceUnavailable, "shed")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("503 Retry-After = %q, want \"1\"", ra)
	}
}

// TestRecoverMiddleware proves a panicking handler yields a JSON 500 and the
// server survives to answer the next request.
func TestRecoverMiddleware(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) { panic("kaboom") })
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	srv := httptest.NewServer(Recover(mux))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/boom")
	if err != nil {
		t.Fatalf("GET /boom: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic status %d, want 500", resp.StatusCode)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("panic body %q not the JSON error envelope (%v)", body, err)
	}

	resp, err = srv.Client().Get(srv.URL + "/ok")
	if err != nil {
		t.Fatalf("GET /ok after panic: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the panic: %d", resp.StatusCode)
	}
}

// TestLimitInFlightSheds fills the single in-flight slot with a parked
// request and proves the next one is shed immediately with 503 +
// Retry-After rather than queued behind it.
func TestLimitInFlightSheds(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	h := LimitInFlight(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	}), 1)
	srv := httptest.NewServer(h)
	defer srv.Close()

	first := make(chan error, 1)
	go func() {
		resp, err := srv.Client().Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
		first <- err
	}()
	<-entered

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("shed request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("shed Retry-After = %q, want \"1\"", ra)
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("parked request failed: %v", err)
	}
}

// TestLimitInFlightDisabled pins that a non-positive cap returns the handler
// unwrapped.
func TestLimitInFlightDisabled(t *testing.T) {
	h := http.NewServeMux()
	if got := LimitInFlight(h, 0); got != http.Handler(h) {
		t.Fatal("cap 0 wrapped the handler")
	}
	if got := LimitInFlight(h, -1); got != http.Handler(h) {
		t.Fatal("negative cap wrapped the handler")
	}
}

// TestNewHTTPServerOptions pins the defaulting: zero values become package
// defaults, negative values disable the corresponding bound.
func TestNewHTTPServerOptions(t *testing.T) {
	s := NewHTTPServer("127.0.0.1:0", http.NewServeMux(), HTTPOptions{})
	if s.ReadTimeout != DefaultHTTPReadTimeout ||
		s.WriteTimeout != DefaultHTTPWriteTimeout ||
		s.IdleTimeout != DefaultHTTPIdleTimeout {
		t.Fatalf("defaults not applied: %+v", s)
	}
	s = NewHTTPServer("127.0.0.1:0", http.NewServeMux(), HTTPOptions{
		ReadTimeout:  -1,
		WriteTimeout: time.Second,
		IdleTimeout:  -1,
		MaxInFlight:  -1,
	})
	if s.ReadTimeout != 0 || s.WriteTimeout != time.Second || s.IdleTimeout != 0 {
		t.Fatalf("negative timeouts not disabled: %+v", s)
	}
}

// TestReadyzReflectsDegradedState drives the daemon's health bookkeeping
// directly and checks /v1/readyz mirrors it: ok (200), degraded (503 +
// Retry-After + degraded body), recovered (200 again, with the degraded
// episode still counted).
func TestReadyzReflectsDegradedState(t *testing.T) {
	ing := NewIngester(Analysis{})
	feed := &chanFeed{ch: make(chan *chain.Block)}
	d := NewDaemonOpts(ing, feed, DaemonOptions{Retry: RetryPolicy{Max: 1}})
	srv := httptest.NewServer(NewDaemonAPI(d).Handler())
	defer srv.Close()

	var h Health
	get(t, srv, "/v1/readyz", http.StatusOK, &h)
	if h.State != StateOK || h.Degraded {
		t.Fatalf("fresh daemon not ready: %+v", h)
	}

	d.noteFailure(io.ErrUnexpectedEOF) // 1 failure: within budget
	get(t, srv, "/v1/readyz", http.StatusOK, &h)
	if h.Degraded || h.ConsecutiveFailures != 1 {
		t.Fatalf("within-budget failure reported wrong: %+v", h)
	}

	d.noteFailure(io.ErrUnexpectedEOF) // 2 > Max: degraded
	resp, err := srv.Client().Get(srv.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("degraded readyz Retry-After = %q", ra)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.State != StateDegraded || !h.Degraded || h.TimesDegraded != 1 || h.LastError == "" {
		t.Fatalf("degraded body wrong: %+v", h)
	}

	d.noteProgress() // recovery
	get(t, srv, "/v1/readyz", http.StatusOK, &h)
	if h.Degraded || h.ConsecutiveFailures != 0 || h.TimesDegraded != 1 || h.TotalRetries != 2 {
		t.Fatalf("recovered body wrong: %+v", h)
	}
	// Liveness stayed green throughout.
	get(t, srv, "/v1/healthz", http.StatusOK, nil)
}

// TestReadyzWithoutDaemon pins that a bare-Ingester API reports ready
// whenever it is alive.
func TestReadyzWithoutDaemon(t *testing.T) {
	ing := NewIngester(Analysis{})
	srv := httptest.NewServer(NewAPI(ing).Handler())
	defer srv.Close()
	var h Health
	get(t, srv, "/v1/readyz", http.StatusOK, &h)
	if h.State != StateOK {
		t.Fatalf("bare API readyz: %+v", h)
	}
}
