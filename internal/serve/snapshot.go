package serve

import (
	"sort"
	"sync/atomic"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

// atomicSnapshot is the publication point between the ingest goroutine and
// query readers.
type atomicSnapshot = atomic.Pointer[Snapshot]

// Snapshot is one published epoch of the measurement state: everything a
// query needs, fully materialized, immutable after publication. Readers must
// not call back into the live graph — the ingest loop rewrites its CSR
// arrays on the next Refresh — so the snapshot carries its own address
// table, balance vector, and pre-forced clustering caches.
type Snapshot struct {
	// Epoch counts publishes, starting at 1 for the empty snapshot.
	Epoch uint64
	// Height is the chain height covered, -1 before any block.
	Height int64
	// NumTxs and NumAddrs size the prefix this snapshot answers for.
	NumTxs   int
	NumAddrs int

	// H1 is the Heuristic 1 clustering; NamingH1 its tag propagation.
	H1       *cluster.Clustering
	NamingH1 *tags.Naming
	// Refined is the paper's refined Heuristic 2 clustering (dice
	// suppression plus wait window); Naming its tag propagation.
	Refined *cluster.Clustering
	Naming  *tags.Naming
	// Tags is the shared, immutable tag store.
	Tags *tags.Store

	balances []chain.Amount
	addrs    []address.Address
	sorted   []txgraph.AddrID // AddrIDs ordered by addrLess for Lookup
}

// Lookup resolves an address to its ID in this snapshot's prefix.
func (s *Snapshot) Lookup(a address.Address) (txgraph.AddrID, bool) {
	i := sort.Search(len(s.sorted), func(i int) bool {
		return !addrLess(s.addrs[s.sorted[i]], a)
	})
	if i < len(s.sorted) && s.addrs[s.sorted[i]] == a {
		return s.sorted[i], true
	}
	return 0, false
}

// Addr returns the address interned as id.
func (s *Snapshot) Addr(id txgraph.AddrID) address.Address { return s.addrs[id] }

// Balance returns the confirmed balance of an address at this snapshot's
// height.
func (s *Snapshot) Balance(id txgraph.AddrID) chain.Amount { return s.balances[id] }

// Balances returns the full balance vector, indexed by AddrID. Callers must
// not mutate it.
func (s *Snapshot) Balances() []chain.Amount { return s.balances }
