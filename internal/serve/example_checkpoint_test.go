package serve

import (
	"bytes"
	"fmt"

	"repro/internal/chaintest"
)

// exampleTB satisfies chaintest.TB outside a test function; builder errors
// are programming errors here, so they panic.
type exampleTB struct{}

func (exampleTB) Helper()                           {}
func (exampleTB) Fatalf(format string, args ...any) { panic(fmt.Sprintf(format, args...)) }

// Example_checkpointResume shows the daemon restart cycle in miniature:
// ingest a prefix, persist a checkpoint, restore it into a fresh Ingester —
// as `fistful serve -checkpoint` does on startup — and catch up with the
// blocks that arrived in the meantime.
func Example_checkpointResume() {
	b := chaintest.New(exampleTB{})
	b.Coinbase("alice")
	b.Coinbase("bob")
	b.Pay([]string{"alice"}, chaintest.Out{Name: "carol", Value: b.Balance("alice") / 2})
	b.Mine(3)
	blocks := b.Chain.Blocks()

	// First life: ingest all but the last block and checkpoint.
	ing := NewIngester(Analysis{WaitBlocks: 10})
	for _, blk := range blocks[:len(blocks)-1] {
		if err := ing.ApplyBlock(blk); err != nil {
			panic(err)
		}
	}
	ing.Publish()
	var ckpt bytes.Buffer
	if err := ing.WriteCheckpoint(&ckpt); err != nil {
		panic(err)
	}
	fmt.Printf("checkpointed at height %d\n", ing.Height())

	// Second life: restore, then apply only what is missing.
	resumed, err := ReadCheckpoint(Analysis{WaitBlocks: 10}, &ckpt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("resumed at height %d\n", resumed.Snapshot().Height)
	if err := resumed.ApplyBlock(blocks[len(blocks)-1]); err != nil {
		panic(err)
	}
	snap := resumed.Publish()
	fmt.Printf("caught up to height %d with %d addresses\n", snap.Height, snap.NumAddrs)

	// Output:
	// checkpointed at height 3
	// resumed at height 3
	// caught up to height 4 with 4 addresses
}
