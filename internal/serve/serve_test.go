package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/econ"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

// The test world is generated once: every test here reads it, none mutates
// it.
var (
	worldOnce sync.Once
	world     *econ.World
)

func testWorld(t *testing.T) *econ.World {
	t.Helper()
	worldOnce.Do(func() {
		cfg := econ.Small()
		cfg.Blocks, cfg.Users = 300, 60
		w, err := econ.Generate(cfg)
		if err != nil {
			t.Fatalf("generate world: %v", err)
		}
		world = w
	})
	if world == nil {
		t.Fatal("world generation failed in an earlier test")
	}
	return world
}

// testAnalysis mirrors how the batch pipeline configures its refined branch:
// researcher plus public tags, the world's dice services, a one-week wait.
func testAnalysis(w *econ.World) Analysis {
	store := tags.NewStore()
	store.AddAll(w.Tags.All())
	store.AddAll(w.PublicTags)
	return Analysis{
		Tags:       store,
		DiceNames:  w.DiceServiceNames(),
		WaitBlocks: 7 * w.BlocksPerDay,
		Workers:    2,
	}
}

// ingestAll drives a fresh Ingester over the whole chain, publishing every
// block, and returns the final snapshot.
func ingestAll(t *testing.T, w *econ.World) (*Ingester, *Snapshot) {
	t.Helper()
	ing := NewIngester(testAnalysis(w))
	for _, b := range w.Chain.Blocks() {
		if err := ing.ApplyBlock(b); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	return ing, ing.Publish()
}

// TestIngesterMatchesBatchAnalytics proves the final snapshot agrees with
// the same analytics computed the batch way — graph via BuildStream, H1 via
// Heuristic1, refined via Heuristic2OnForest, balances via Graph.Balances —
// over the full chain. (The root package's equivalence tests extend this to
// every published epoch against the real batch pipeline.)
func TestIngesterMatchesBatchAnalytics(t *testing.T) {
	w := testWorld(t)
	_, snap := ingestAll(t, w)

	g, err := txgraph.BuildStream(w.Chain.Source(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Height != w.Chain.Height() || snap.NumAddrs != g.NumAddrs() || snap.NumTxs != g.NumTxs() {
		t.Fatalf("snapshot shape (h=%d addrs=%d txs=%d) != batch (h=%d addrs=%d txs=%d)",
			snap.Height, snap.NumAddrs, snap.NumTxs, w.Chain.Height(), g.NumAddrs(), g.NumTxs())
	}

	wantBal := g.Balances()
	for id, want := range wantBal {
		if got := snap.Balance(txgraph.AddrID(id)); got != want {
			t.Fatalf("balance[%d] = %d, want %d", id, got, want)
		}
	}

	an := testAnalysis(w)
	h1 := cluster.Heuristic1(g, 2)
	namingH1 := tags.NameClusters(h1, g, an.Tags)
	dice := tags.ServiceAddrSet(h1, namingH1, g, an.DiceNames)
	base := cluster.Heuristic1Forest(g, 2)
	refined := cluster.Heuristic2OnForest(g, cluster.Refined(dice, an.WaitBlocks), base, 2)

	for id := 0; id < g.NumAddrs(); id++ {
		if snap.H1.ClusterOf(txgraph.AddrID(id)) != h1.ClusterOf(txgraph.AddrID(id)) {
			t.Fatalf("H1 label of %d differs", id)
		}
		if snap.Refined.ClusterOf(txgraph.AddrID(id)) != refined.ClusterOf(txgraph.AddrID(id)) {
			t.Fatalf("refined label of %d differs", id)
		}
	}
	if snap.Refined.ChangeStats != refined.ChangeStats {
		t.Fatalf("change stats differ:\nserve %+v\nbatch %+v", snap.Refined.ChangeStats, refined.ChangeStats)
	}
	wantNaming := tags.NameClusters(refined, g, an.Tags)
	if snap.Naming.NamedClusters != wantNaming.NamedClusters ||
		snap.Naming.NamedAddresses != wantNaming.NamedAddresses ||
		snap.Naming.DistinctServices != wantNaming.DistinctServices {
		t.Fatalf("naming differs:\nserve %+v\nbatch %+v", snap.Naming, wantNaming)
	}
}

// TestSnapshotLookup proves the sorted address index is a total, exact map:
// every interned address resolves to its own ID and an address never on
// chain misses.
func TestSnapshotLookup(t *testing.T) {
	w := testWorld(t)
	_, snap := ingestAll(t, w)
	if snap.NumAddrs == 0 {
		t.Fatal("no addresses ingested")
	}
	for id := 0; id < snap.NumAddrs; id++ {
		got, ok := snap.Lookup(snap.Addr(txgraph.AddrID(id)))
		if !ok || got != txgraph.AddrID(id) {
			t.Fatalf("Lookup(Addr(%d)) = %d, %v", id, got, ok)
		}
	}
	if _, ok := snap.Lookup(address.Address{Version: 0xff}); ok {
		t.Fatal("impossible address resolved")
	}
}

// TestEmptySnapshot: NewIngester publishes before any block, so queries are
// well-defined from the first instant of a daemon's life.
func TestEmptySnapshot(t *testing.T) {
	ing := NewIngester(Analysis{})
	s := ing.Snapshot()
	if s == nil {
		t.Fatal("no initial snapshot")
	}
	if s.Epoch != 1 || s.Height != -1 || s.NumAddrs != 0 {
		t.Fatalf("unexpected empty snapshot: %+v", s)
	}
	if _, ok := s.Lookup(address.Address{}); ok {
		t.Fatal("lookup hit in empty snapshot")
	}
}

// TestDaemonRunsSourceToEOF proves Run over a finite source applies the
// whole chain, publishes a final snapshot at the tip, then parks until the
// context ends and returns nil.
func TestDaemonRunsSourceToEOF(t *testing.T) {
	w := testWorld(t)
	ing := NewIngester(testAnalysis(w))
	d := NewDaemon(ing, NewSourceFeed(w.Chain.Source()), 32)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	deadline := time.Now().Add(30 * time.Second)
	for d.Snapshot().Height != w.Chain.Height() {
		if time.Now().After(deadline) {
			t.Fatalf("daemon stuck at height %d", d.Snapshot().Height)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ep := d.Snapshot().Epoch; ep < 2 {
		t.Fatalf("epoch %d, want at least the empty publish plus one", ep)
	}
}

// TestDaemonCancelBeforeEOF proves cancellation mid-catchup is a clean
// shutdown.
func TestDaemonCancelBeforeEOF(t *testing.T) {
	w := testWorld(t)
	ing := NewIngester(testAnalysis(w))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := NewDaemon(ing, NewSourceFeed(w.Chain.Source()), 0)
	if err := d.Run(ctx); err != nil {
		t.Fatalf("Run after cancel: %v", err)
	}
}

// get decodes one JSON API response, failing the test on transport errors
// and asserting the status code.
func get(t *testing.T, srv *httptest.Server, path string, wantStatus int, out any) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
}

// TestAPIEndpoints exercises every route against a fully ingested chain:
// happy paths answer from the snapshot, error paths use the right status
// codes.
func TestAPIEndpoints(t *testing.T) {
	w := testWorld(t)
	ing, snap := ingestAll(t, w)
	srv := httptest.NewServer(NewAPI(ing).Handler())
	defer srv.Close()

	var hz healthzResponse
	get(t, srv, "/v1/healthz", http.StatusOK, &hz)
	if hz.Epoch != snap.Epoch || hz.Height != snap.Height {
		t.Fatalf("healthz %+v does not match snapshot epoch=%d height=%d", hz, snap.Epoch, snap.Height)
	}

	var st statsResponse
	get(t, srv, "/v1/stats", http.StatusOK, &st)
	if st.Addrs != snap.NumAddrs || st.H1.Clusters != snap.H1.NumClusters() {
		t.Fatalf("stats %+v inconsistent with snapshot", st)
	}
	if st.Refined.NamedClusters == 0 {
		t.Fatal("refined clustering named nothing; tag store not wired through")
	}

	// A tagged address must resolve, carry its service name, and agree on
	// balance with the snapshot.
	tagged := ing.an.Tags.All()[0].Addr
	id, ok := snap.Lookup(tagged)
	if !ok {
		t.Fatalf("tagged address %s not on chain", tagged)
	}
	var cr clusterResponse
	get(t, srv, "/v1/cluster?addr="+tagged.String(), http.StatusOK, &cr)
	if cr.ID != uint32(id) || cr.Refined.Label != snap.Refined.ClusterOf(id) {
		t.Fatalf("cluster response %+v does not match snapshot id=%d", cr, id)
	}
	if cr.Refined.Service == "" {
		t.Fatalf("tagged address %s resolved to an unnamed cluster", tagged)
	}

	var br balanceResponse
	get(t, srv, "/v1/balance?addr="+tagged.String(), http.StatusOK, &br)
	if br.Satoshis != int64(snap.Balance(id)) {
		t.Fatalf("balance %d, want %d", br.Satoshis, snap.Balance(id))
	}

	var mr membersResponse
	label := snap.Refined.ClusterOf(id)
	get(t, srv, "/v1/cluster/members?label="+strconv.FormatInt(int64(label), 10)+"&limit=5", http.StatusOK, &mr)
	if mr.Size != len(snap.Refined.Members(label)) {
		t.Fatalf("members size %d, want %d", mr.Size, len(snap.Refined.Members(label)))
	}
	if len(mr.Members) > 5 {
		t.Fatalf("limit ignored: %d members returned", len(mr.Members))
	}
	if mr.Truncated != (mr.Size > 5) {
		t.Fatalf("truncated flag wrong: %+v", mr)
	}

	var tr tagResponse
	get(t, srv, "/v1/tags?addr="+tagged.String(), http.StatusOK, &tr)
	if tr.Service == "" {
		t.Fatalf("tag response empty for tagged address: %+v", tr)
	}

	// Error paths.
	get(t, srv, "/v1/cluster", http.StatusBadRequest, nil)
	get(t, srv, "/v1/cluster?addr=not-base58!!", http.StatusBadRequest, nil)
	get(t, srv, "/v1/balance?addr="+address.Address{Version: 0x42}.String(), http.StatusNotFound, nil)
	get(t, srv, "/v1/cluster/members?label=-1", http.StatusNotFound, nil)
	get(t, srv, "/v1/cluster/members?label=zzz", http.StatusBadRequest, nil)
	get(t, srv, "/v1/cluster/members?label=0&limit=0", http.StatusBadRequest, nil)
}

// TestSnapshotsAreIsolated proves a retained snapshot keeps answering for
// its own epoch while ingestion continues past it — the epoch/snapshot
// isolation contract queries rely on.
func TestSnapshotsAreIsolated(t *testing.T) {
	w := testWorld(t)
	blocks := w.Chain.Blocks()
	half := len(blocks) / 2

	ing := NewIngester(testAnalysis(w))
	for _, b := range blocks[:half] {
		if err := ing.ApplyBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	old := ing.Publish()
	oldBal := make([]chain.Amount, len(old.Balances()))
	copy(oldBal, old.Balances())
	oldLabels := make([]int32, old.NumAddrs)
	for id := range oldLabels {
		oldLabels[id] = old.Refined.ClusterOf(txgraph.AddrID(id))
	}

	for _, b := range blocks[half:] {
		if err := ing.ApplyBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	cur := ing.Publish()
	if cur.Height <= old.Height || cur.Epoch <= old.Epoch {
		t.Fatalf("ingest did not advance: old (e=%d h=%d) cur (e=%d h=%d)",
			old.Epoch, old.Height, cur.Epoch, cur.Height)
	}

	for id := range oldBal {
		if old.Balance(txgraph.AddrID(id)) != oldBal[id] {
			t.Fatalf("old snapshot balance[%d] changed after further ingest", id)
		}
	}
	for id, want := range oldLabels {
		if old.Refined.ClusterOf(txgraph.AddrID(id)) != want {
			t.Fatalf("old snapshot label[%d] changed after further ingest", id)
		}
	}
	if got, ok := old.Lookup(old.Addr(0)); !ok || got != 0 {
		t.Fatal("old snapshot lookup broke after further ingest")
	}
}
