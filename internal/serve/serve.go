// Package serve is the incremental ingestion engine behind `fistful serve`:
// a long-running daemon that tails a chain source and keeps the paper's
// measurement state — the transaction graph, the Heuristic 1 union-find
// forest, balances, and the Heuristic 2 classifier inputs — current block by
// block, instead of rebuilding the world per run the way the batch pipeline
// does.
//
// # Lifecycle
//
// The state machine has three moving parts, each with a fixed thread role:
//
//   - The Ingester owns the live state. ApplyBlock (ingest goroutine only)
//     extends every monotone index in O(block): the graph via
//     txgraph.Appender, Heuristic 1 unions, balance deltas. Heuristic 2
//     change labels and cluster naming are NOT monotone (the wait window
//     suppresses labels retroactively and the dice set derives from naming
//     votes), so they are recomputed per publish.
//   - Publish snapshots the live state. It freezes an immutable substrate
//     (Appender.Freeze plus a forest clone and balance copy) on the ingest
//     goroutine, then runs the non-monotone analytics — the same sharded
//     classifier the batch pipeline uses — over the frozen substrate and
//     installs the result. Because the substrate is frozen, that second
//     phase can run off-thread: the Daemon hands it to a single-flight
//     publish worker with latest-wins coalescing, so a slow epoch build
//     never stalls tailing at the tip.
//   - The Snapshot is the immutable product. It is installed behind an
//     atomic pointer with a monotone epoch, so readers always see a complete
//     epoch and block-apply never waits on a reader. A snapshot at height H
//     answers every query byte-identically to a batch pipeline built over
//     the same chain prefix; the root package's equivalence tests pin that.
//
// # Persistence and reorgs
//
// The frozen substrate is also the unit of persistence: WriteCheckpoint
// serializes it in the framed, CRC-guarded checkpoint format specified in
// docs/FORMATS.md, and ReadCheckpoint restores an Ingester that resumes
// byte-identically. The Daemon checkpoints each published epoch through a
// CheckpointStore and, when a feed signals that history was rewritten
// (RewindError), rolls back to the newest checkpoint at or below the fork
// and replays. See docs/OPERATIONS.md for the operational contract.
package serve

import (
	"sort"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/par"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

// Analysis fixes the analytic configuration the daemon serves under: the tag
// store, the dice services whose clusters the refined classifier suppresses,
// and the reuse wait window. These are batch-pipeline inputs; the serve and
// batch paths sharing them is what makes snapshot/batch equivalence a
// well-posed claim.
type Analysis struct {
	// Tags is the address tag store used for cluster naming. The Ingester
	// reads it on every publish; callers must not mutate it after handoff.
	// Nil means an empty store.
	Tags *tags.Store
	// DiceNames lists the services whose H1-named clusters feed the refined
	// classifier's dice suppression set (tags.ServiceAddrSet).
	DiceNames []string
	// WaitBlocks is the refined classifier's reuse wait window, in blocks —
	// the batch pipeline uses one simulated week.
	WaitBlocks int64
	// Workers sizes the per-block pre-pass and the publish-time classifier
	// scan; <= 0 means one per CPU.
	Workers int
}

// Ingester owns the live measurement state. ApplyBlock and Publish must be
// called from one goroutine (the daemon's ingest loop); Snapshot may be
// called from any goroutine.
type Ingester struct {
	an      Analysis
	workers int

	ap     *txgraph.Appender
	forest *cluster.UnionFind

	// balances grows in AddrID order alongside the graph's intern table;
	// sorted is the last frozen query index over the address table; tip is
	// the hash of the last applied block (ZeroHash before any), the
	// continuity anchor for checkpoint resume.
	balances []chain.Amount
	sorted   []txgraph.AddrID
	tip      chain.Hash

	epoch uint64
	snap  atomicSnapshot
}

// substrate is one epoch's frozen measurement state: everything a publish —
// or a checkpoint write — needs, fully isolated from future appends. freeze
// produces it on the ingest goroutine; after that it is immutable and safe
// to hand to the publish worker.
type substrate struct {
	epoch    uint64
	tip      chain.Hash
	g        *txgraph.Graph
	forest   *cluster.UnionFind
	balances []chain.Amount
	sorted   []txgraph.AddrID
}

// NewIngester returns an Ingester over an empty chain and publishes the
// empty snapshot, so Snapshot never returns nil.
func NewIngester(an Analysis) *Ingester {
	if an.Tags == nil {
		an.Tags = tags.NewStore()
	}
	ing := &Ingester{
		an:      an,
		workers: par.Workers(an.Workers),
		ap:      txgraph.NewAppender(an.Workers),
		forest:  cluster.NewUnionFind(0),
	}
	ing.Publish()
	return ing
}

// ApplyBlock indexes one block into every monotone structure: the graph via
// the Appender, Heuristic 1 unions for the block's new transactions, and
// balance deltas. O(block).
func (ing *Ingester) ApplyBlock(b *chain.Block) error {
	g := ing.ap.Graph()
	base := g.NumTxs()
	if err := ing.ap.AppendBlock(b); err != nil {
		return err
	}
	ing.tip = b.BlockHash()

	n := g.NumAddrs()
	ing.forest.Grow(n)
	for len(ing.balances) < n {
		ing.balances = append(ing.balances, 0)
	}

	for seq := base; seq < g.NumTxs(); seq++ {
		tx := g.Tx(txgraph.TxSeq(seq))
		// Heuristic 1: all input addresses of one transaction are one user.
		// Union first-vs-each, the same pairs applyHeuristic1 emits, so the
		// forest matches a batch Heuristic1Forest over the same prefix.
		first := txgraph.NoAddr
		for j, id := range tx.InputAddrs {
			if id == txgraph.NoAddr {
				continue
			}
			ing.balances[id] -= tx.InputValues[j]
			if first == txgraph.NoAddr {
				first = id
			} else {
				ing.forest.Union(uint32(first), uint32(id))
			}
		}
		for j, id := range tx.OutputAddrs {
			if id == txgraph.NoAddr {
				continue
			}
			ing.balances[id] += tx.OutputValues[j]
		}
	}
	return nil
}

// Height returns the chain height applied so far, -1 before any block.
// Ingest goroutine only.
func (ing *Ingester) Height() int64 { return ing.ap.Graph().Height() }

// TipHash returns the hash of the last applied block, or chain.ZeroHash
// before any. The Daemon compares it against each incoming block's
// previous-block hash, so state restored from a checkpoint that no longer
// matches the feed's history is detected instead of silently extended.
// Ingest goroutine only.
func (ing *Ingester) TipHash() chain.Hash { return ing.tip }

// freeze captures the current state as an immutable substrate: the graph
// via Appender.Freeze, a forest clone, a balance copy, and the merged
// sorted-address index. It advances the epoch — every substrate publishes
// (or is coalesced away) under its own epoch number. Ingest goroutine only.
func (ing *Ingester) freeze() *substrate {
	g := ing.ap.Freeze()
	n := g.NumAddrs()
	balances := make([]chain.Amount, n)
	copy(balances, ing.balances)
	ing.sorted = mergeSortedAddrs(ing.sorted, g.Addrs(), n)
	ing.epoch++
	return &substrate{
		epoch:    ing.epoch,
		tip:      ing.tip,
		g:        g,
		forest:   ing.forest.Clone(),
		balances: balances,
		sorted:   ing.sorted,
	}
}

// publishFrom runs the non-monotone analytics (refined Heuristic 2 and
// naming) over a frozen substrate and installs the resulting Snapshot.
// Because the substrate is immutable it is safe to call from any single
// goroutine — the publish worker in the common path, the ingest goroutine
// for synchronous publishes. Snapshots install with a monotone epoch: a
// late worker publish can never overwrite a newer one.
func (ing *Ingester) publishFrom(sub *substrate) *Snapshot {
	g := sub.g
	n := g.NumAddrs()

	// The H1 clustering takes ownership of the forest it is handed, and
	// even lookups path-compress, so both clusterings get their own copy;
	// sub.forest itself stays pristine for the checkpoint write.
	h1 := cluster.ClusteringFromForest(g, sub.forest.Clone())
	namingH1 := tags.NameClusters(h1, g, ing.an.Tags)
	dice := tags.ServiceAddrSet(h1, namingH1, g, ing.an.DiceNames)
	refined := cluster.Heuristic2OnForest(g, cluster.Refined(dice, ing.an.WaitBlocks), sub.forest, ing.workers)
	naming := tags.NameClusters(refined, g, ing.an.Tags)

	// Force every lazily cached view now so post-publish queries are pure
	// reads of cached state.
	forceClustering(h1)
	forceClustering(refined)

	s := &Snapshot{
		Epoch:    sub.epoch,
		Height:   g.Height(),
		NumTxs:   g.NumTxs(),
		NumAddrs: n,
		H1:       h1,
		NamingH1: namingH1,
		Refined:  refined,
		Naming:   naming,
		Tags:     ing.an.Tags,
		balances: sub.balances,
		addrs:    g.Addrs(),
		sorted:   sub.sorted,
	}
	for {
		cur := ing.snap.Load()
		if cur != nil && cur.Epoch >= s.Epoch {
			return s
		}
		if ing.snap.CompareAndSwap(cur, s) {
			return s
		}
	}
}

// Publish freezes the current state and publishes it synchronously on the
// calling (ingest) goroutine — freeze plus publishFrom in one step. The
// Daemon uses the split form to keep the analytics off the ingest loop;
// Publish remains the simple path for tests and bounded sources.
func (ing *Ingester) Publish() *Snapshot {
	return ing.publishFrom(ing.freeze())
}

// Snapshot returns the most recently published snapshot. Safe from any
// goroutine; never nil.
func (ing *Ingester) Snapshot() *Snapshot { return ing.snap.Load() }

// Epoch returns the number of epochs frozen so far. Ingest goroutine only;
// readers should use Snapshot().Epoch, which reports the epoch actually
// published.
func (ing *Ingester) Epoch() uint64 { return ing.epoch }

// adoptFrom replaces the live state with another Ingester's — the rollback
// path after a reorg, where other was just restored from a checkpoint. The
// epoch keeps its maximum so snapshot installs stay monotone across the
// rollback; the sorted index is taken from other (it indexes the restored
// address table). Ingest goroutine only.
func (ing *Ingester) adoptFrom(other *Ingester) {
	ing.ap = other.ap
	ing.forest = other.forest
	ing.balances = other.balances
	ing.sorted = other.sorted
	ing.tip = other.tip
	if other.epoch > ing.epoch {
		ing.epoch = other.epoch
	}
}

// reset discards the live state back to the empty chain, keeping the epoch
// counter — the rollback path when no usable checkpoint exists. Ingest
// goroutine only.
func (ing *Ingester) reset() {
	ing.ap = txgraph.NewAppender(ing.an.Workers)
	ing.forest = cluster.NewUnionFind(0)
	ing.balances = nil
	ing.sorted = nil
	ing.tip = chain.Hash{}
}

// forceClustering materializes every lazily computed view of a clustering so
// post-publish queries are pure reads of cached state.
func forceClustering(c *cluster.Clustering) {
	c.ComputeStats()
	c.ClusterSizes()
	if c.NumClusters() > 0 {
		c.Members(0)
	}
}

// mergeSortedAddrs extends the sorted-by-address ID index to cover ids
// [0, n): the previous index is already sorted and immutable, so sort only
// the fresh ids and merge — O(new·log new + n) per publish, and the merged
// slice is a fresh allocation safe to share with the snapshot.
func mergeSortedAddrs(prev []txgraph.AddrID, addrs []address.Address, n int) []txgraph.AddrID {
	if len(prev) == n {
		return prev
	}
	fresh := make([]txgraph.AddrID, 0, n-len(prev))
	for id := len(prev); id < n; id++ {
		fresh = append(fresh, txgraph.AddrID(id))
	}
	sort.Slice(fresh, func(i, j int) bool {
		return addrLess(addrs[fresh[i]], addrs[fresh[j]])
	})
	merged := make([]txgraph.AddrID, 0, n)
	i, j := 0, 0
	for i < len(prev) && j < len(fresh) {
		if addrLess(addrs[prev[i]], addrs[fresh[j]]) {
			merged = append(merged, prev[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	merged = append(merged, prev[i:]...)
	merged = append(merged, fresh[j:]...)
	return merged
}

// addrLess is a total order over addresses: by version byte, then hash.
func addrLess(a, b address.Address) bool {
	if a.Version != b.Version {
		return a.Version < b.Version
	}
	for k := 0; k < address.HashLen; k++ {
		if a.Hash[k] != b.Hash[k] {
			return a.Hash[k] < b.Hash[k]
		}
	}
	return false
}
