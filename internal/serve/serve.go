// Package serve is the incremental ingestion engine behind `fistful serve`:
// a long-running daemon that tails a chain source and keeps the paper's
// measurement state — the transaction graph, the Heuristic 1 union-find
// forest, balances, and the Heuristic 2 classifier inputs — current block by
// block, instead of rebuilding the world per run the way the batch pipeline
// does.
//
// The cost model follows from which indexes are monotone under chain growth:
//
//   - Heuristic 1 unions, address balances, first-seen/first-self-change/
//     first-reuse markers, and the per-address appearance lists only ever
//     gain information, so the Ingester maintains them exactly per block in
//     O(block) via txgraph.Appender and a growable cluster.UnionFind.
//   - Heuristic 2 change labels and cluster naming are NOT monotone (the
//     wait-window suppresses labels retroactively and the dice set is
//     derived from H1 naming votes), so Publish recomputes them over the
//     incrementally maintained substrate. That recompute is the same
//     sharded classifier the batch pipeline runs — no hashing, no signing —
//     so publishing stays far cheaper than a batch rebuild.
//
// Queries never touch live state: Publish assembles an immutable Snapshot
// and installs it behind an atomic pointer, so readers see a consistent
// epoch and block-apply never waits on a reader. A snapshot published at
// height H answers every query byte-identically to a batch pipeline built
// over the same chain prefix; the root package's equivalence tests pin that
// contract.
package serve

import (
	"sort"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/par"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

// Analysis fixes the analytic configuration the daemon serves under: the tag
// store, the dice services whose clusters the refined classifier suppresses,
// and the reuse wait window. These are batch-pipeline inputs; the serve and
// batch paths sharing them is what makes snapshot/batch equivalence a
// well-posed claim.
type Analysis struct {
	// Tags is the address tag store used for cluster naming. The Ingester
	// reads it on every publish; callers must not mutate it after handoff.
	// Nil means an empty store.
	Tags *tags.Store
	// DiceNames lists the services whose H1-named clusters feed the refined
	// classifier's dice suppression set (tags.ServiceAddrSet).
	DiceNames []string
	// WaitBlocks is the refined classifier's reuse wait window, in blocks —
	// the batch pipeline uses one simulated week.
	WaitBlocks int64
	// Workers sizes the per-block pre-pass and the publish-time classifier
	// scan; <= 0 means one per CPU.
	Workers int
}

// Ingester owns the live measurement state. ApplyBlock and Publish must be
// called from one goroutine (the daemon's ingest loop); Snapshot may be
// called from any goroutine.
type Ingester struct {
	an      Analysis
	workers int

	ap     *txgraph.Appender
	forest *cluster.UnionFind

	// balances and addrs grow in AddrID order alongside the graph's intern
	// table; sortedAddrs is the last published query index over them.
	balances []chain.Amount
	addrs    []address.Address
	sorted   []txgraph.AddrID

	epoch uint64
	snap  atomicSnapshot
}

// NewIngester returns an Ingester over an empty chain and publishes the
// empty snapshot, so Snapshot never returns nil.
func NewIngester(an Analysis) *Ingester {
	if an.Tags == nil {
		an.Tags = tags.NewStore()
	}
	ing := &Ingester{
		an:      an,
		workers: par.Workers(an.Workers),
		ap:      txgraph.NewAppender(an.Workers),
		forest:  cluster.NewUnionFind(0),
	}
	ing.Publish()
	return ing
}

// ApplyBlock indexes one block into every monotone structure: the graph via
// the Appender, Heuristic 1 unions for the block's new transactions, balance
// deltas, and the address mirror the snapshots alias. O(block).
func (ing *Ingester) ApplyBlock(b *chain.Block) error {
	g := ing.ap.Graph()
	base := g.NumTxs()
	if err := ing.ap.AppendBlock(b); err != nil {
		return err
	}

	n := g.NumAddrs()
	ing.forest.Grow(n)
	for len(ing.balances) < n {
		ing.balances = append(ing.balances, 0)
	}
	for id := len(ing.addrs); id < n; id++ {
		ing.addrs = append(ing.addrs, g.Addr(txgraph.AddrID(id)))
	}

	for seq := base; seq < g.NumTxs(); seq++ {
		tx := g.Tx(txgraph.TxSeq(seq))
		// Heuristic 1: all input addresses of one transaction are one user.
		// Union first-vs-each, the same pairs applyHeuristic1 emits, so the
		// forest matches a batch Heuristic1Forest over the same prefix.
		first := txgraph.NoAddr
		for j, id := range tx.InputAddrs {
			if id == txgraph.NoAddr {
				continue
			}
			ing.balances[id] -= tx.InputValues[j]
			if first == txgraph.NoAddr {
				first = id
			} else {
				ing.forest.Union(uint32(first), uint32(id))
			}
		}
		for j, id := range tx.OutputAddrs {
			if id == txgraph.NoAddr {
				continue
			}
			ing.balances[id] += tx.OutputValues[j]
		}
	}
	return nil
}

// Publish flattens the appearance index, re-runs the non-monotone analytics
// (refined Heuristic 2 and naming) over the current prefix, and installs a
// new immutable Snapshot. It runs on the ingest goroutine; the published
// snapshot shares only data that future appends never rewrite.
func (ing *Ingester) Publish() *Snapshot {
	g := ing.ap.Refresh()
	n := g.NumAddrs()

	// The H1 clustering takes ownership of the forest it is handed, so give
	// it a clone; the live forest keeps growing.
	h1 := cluster.ClusteringFromForest(g, ing.forest.Clone())
	namingH1 := tags.NameClusters(h1, g, ing.an.Tags)
	dice := tags.ServiceAddrSet(h1, namingH1, g, ing.an.DiceNames)
	refined := cluster.Heuristic2OnForest(g, cluster.Refined(dice, ing.an.WaitBlocks), ing.forest, ing.workers)
	naming := tags.NameClusters(refined, g, ing.an.Tags)

	// Force every lazily cached view now, while we are alone with the live
	// graph: the sync.Once fields read g's CSR arrays, which the next
	// Refresh will rewrite.
	forceClustering(h1)
	forceClustering(refined)

	balances := make([]chain.Amount, n)
	copy(balances, ing.balances)
	ing.sorted = mergeSortedAddrs(ing.sorted, ing.addrs, n)

	ing.epoch++
	s := &Snapshot{
		Epoch:    ing.epoch,
		Height:   g.Height(),
		NumTxs:   g.NumTxs(),
		NumAddrs: n,
		H1:       h1,
		NamingH1: namingH1,
		Refined:  refined,
		Naming:   naming,
		Tags:     ing.an.Tags,
		balances: balances,
		// Aliasing the mirror is race-safe: appends beyond n never rewrite
		// [0, n), and the full-capacity slice keeps later appends from
		// landing in this window.
		addrs:  ing.addrs[:n:n],
		sorted: ing.sorted,
	}
	ing.snap.Store(s)
	return s
}

// Snapshot returns the most recently published snapshot. Safe from any
// goroutine; never nil.
func (ing *Ingester) Snapshot() *Snapshot { return ing.snap.Load() }

// Epoch returns the number of snapshots published so far.
func (ing *Ingester) Epoch() uint64 { return ing.epoch }

// forceClustering materializes every lazily computed view of a clustering so
// post-publish queries are pure reads of cached state.
func forceClustering(c *cluster.Clustering) {
	c.ComputeStats()
	c.ClusterSizes()
	if c.NumClusters() > 0 {
		c.Members(0)
	}
}

// mergeSortedAddrs extends the sorted-by-address ID index to cover ids
// [0, n): the previous index is already sorted and immutable, so sort only
// the fresh ids and merge — O(new·log new + n) per publish, and the merged
// slice is a fresh allocation safe to share with the snapshot.
func mergeSortedAddrs(prev []txgraph.AddrID, addrs []address.Address, n int) []txgraph.AddrID {
	if len(prev) == n {
		return prev
	}
	fresh := make([]txgraph.AddrID, 0, n-len(prev))
	for id := len(prev); id < n; id++ {
		fresh = append(fresh, txgraph.AddrID(id))
	}
	sort.Slice(fresh, func(i, j int) bool {
		return addrLess(addrs[fresh[i]], addrs[fresh[j]])
	})
	merged := make([]txgraph.AddrID, 0, n)
	i, j := 0, 0
	for i < len(prev) && j < len(fresh) {
		if addrLess(addrs[prev[i]], addrs[fresh[j]]) {
			merged = append(merged, prev[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	merged = append(merged, prev[i:]...)
	merged = append(merged, fresh[j:]...)
	return merged
}

// addrLess is a total order over addresses: by version byte, then hash.
func addrLess(a, b address.Address) bool {
	if a.Version != b.Version {
		return a.Version < b.Version
	}
	for k := 0; k < address.HashLen; k++ {
		if a.Hash[k] != b.Hash[k] {
			return a.Hash[k] < b.Hash[k]
		}
	}
	return false
}
