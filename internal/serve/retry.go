package serve

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/faults"
)

// TransientError marks an error as retryable; it is internal/faults.Error
// re-exported so daemon callers and feed implementations share one
// vocabulary. Feeds and sources tag retryable failures at the point of
// origin (internal/chain tags EAGAIN-class read errors, internal/p2p tags
// dial and socket failures); the daemon's supervision loop retries what
// IsTransient accepts and treats everything else as fatal.
type TransientError = faults.TransientError

// Transient marks err as retryable; nil stays nil and an already-marked
// error is returned unchanged.
func Transient(err error) error { return faults.Transient(err) }

// IsTransient reports whether err is marked transient (or carries an
// EAGAIN-class errno), anywhere in its wrap chain.
func IsTransient(err error) bool { return faults.IsTransient(err) }

// Retry defaults; see RetryPolicy.
const (
	DefaultRetryMax       = 8
	DefaultRetryBaseDelay = 100 * time.Millisecond
	DefaultRetryMaxDelay  = 5 * time.Second
)

// RetryPolicy bounds the daemon's supervision of transient feed and apply
// errors. Transient failures are retried with exponential backoff plus
// jitter, starting at BaseDelay and capped at MaxDelay; the failure budget
// resets whenever a block is applied. After Max consecutive failures the
// daemon trips into the degraded state — it keeps serving the last published
// snapshot and keeps retrying at the capped delay, but Health (and the
// /v1/readyz endpoint) report it as not ready until a block applies again.
//
// The zero value means defaults. Max < 0 disables supervision entirely:
// any transient error is fatal, the pre-retry behavior.
type RetryPolicy struct {
	// Max is how many consecutive transient failures are tolerated before
	// the daemon reports itself degraded; 0 means DefaultRetryMax, negative
	// disables retrying.
	Max int
	// BaseDelay is the first backoff delay; 0 means DefaultRetryBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means DefaultRetryMaxDelay.
	MaxDelay time.Duration
}

// normalize fills in defaults, leaving a negative Max (supervision off)
// alone.
func (p RetryPolicy) normalize() RetryPolicy {
	if p.Max == 0 {
		p.Max = DefaultRetryMax
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryMaxDelay
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	return p
}

// backoff returns the delay before retry number failures (1-based):
// BaseDelay doubling per failure, capped at MaxDelay, with jitter drawn
// uniformly from [delay/2, delay] so synchronized restarts do not hammer a
// recovering source in lockstep.
func (p RetryPolicy) backoff(failures int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < failures && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if half := d / 2; half > 0 {
		d = half + time.Duration(rand.Int63n(int64(half)+1))
	}
	return d
}

// sleepBackoff parks the ingest loop for the failure's backoff delay,
// reporting false if ctx ended first (shutdown wins over retry).
func (d *Daemon) sleepBackoff(ctx context.Context, failures int) bool {
	timer := time.NewTimer(d.retry.backoff(failures))
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}
