package serve

import (
	"context"
	"io"
	"time"

	"repro/internal/chain"
	"repro/internal/p2p"
)

// A BlockFeed hands the daemon blocks in height order. Next blocks until a
// block is available, the source is exhausted (io.EOF), or ctx is done;
// Buffered reports whether another block is already available without
// waiting, which is how the daemon decides it has reached the tip and should
// publish. Close releases the source; feeds are not safe for concurrent use.
type BlockFeed interface {
	Next(ctx context.Context) (*chain.Block, error)
	Buffered() bool
	Close() error
}

// SourceFeed adapts a finite chain.BlockSource (an in-memory chain, a fully
// written chain file) into a feed: it never waits, and reports EOF once the
// source drains.
type SourceFeed struct {
	src  chain.BlockSource
	done bool
}

// NewSourceFeed wraps src. The feed does not own an underlying file; close
// the reader separately if the source has one.
func NewSourceFeed(src chain.BlockSource) *SourceFeed {
	return &SourceFeed{src: src}
}

// Next returns the next block, or io.EOF once the source is exhausted.
func (f *SourceFeed) Next(ctx context.Context) (*chain.Block, error) {
	if f.done {
		return nil, io.EOF
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b, err := f.src.NextBlock()
	if err != nil {
		if err == io.EOF {
			f.done = true
		}
		return nil, err
	}
	return b, nil
}

// Buffered reports whether the source may still yield a block.
func (f *SourceFeed) Buffered() bool { return !f.done }

// Close is a no-op; the caller owns the source.
func (f *SourceFeed) Close() error { return nil }

// TailFeed follows a framed chain file being appended by another process —
// the generator writing via GenerateToFile, or any chain.Writer. It never
// reports EOF: at the tip, Next parks until more bytes land or ctx is done.
type TailFeed struct {
	tr *chain.TailReader
}

// OpenTailFeed opens path for tailing.
func OpenTailFeed(path string) (*TailFeed, error) {
	tr, err := chain.OpenTail(path)
	if err != nil {
		return nil, err
	}
	return &TailFeed{tr: tr}, nil
}

// Next returns the next appended block, waiting for the writer if the file
// is currently at the tip.
func (f *TailFeed) Next(ctx context.Context) (*chain.Block, error) {
	return f.tr.Next(ctx)
}

// Buffered reports whether a complete frame is already on disk.
func (f *TailFeed) Buffered() bool { return f.tr.Buffered() }

// Close closes the underlying file.
func (f *TailFeed) Close() error { return f.tr.Close() }

// nodePoll bounds how stale a NodeFeed can go when the node's event channel
// drops notifications under load (Events is documented to drop rather than
// block); the feed re-checks the chain height at least this often.
const nodePoll = 250 * time.Millisecond

// NodeFeed follows a running p2p node's validated chain by height. Like
// TailFeed it never reports EOF; the node's event channel is used purely as
// a wake-up hint, with a poll fallback, so dropped events cost latency, not
// blocks.
type NodeFeed struct {
	node *p2p.Node
	next int64
}

// NewNodeFeed follows node from genesis. The caller keeps ownership of the
// node and its lifecycle.
func NewNodeFeed(node *p2p.Node) *NodeFeed {
	return &NodeFeed{node: node}
}

// Next returns the block at the next height, waiting for the node to extend
// its chain if necessary.
func (f *NodeFeed) Next(ctx context.Context) (*chain.Block, error) {
	for {
		if b := f.node.BlockAt(f.next); b != nil {
			f.next++
			return b, nil
		}
		timer := time.NewTimer(nodePoll)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-f.node.Events():
			timer.Stop()
		case <-timer.C:
		}
	}
}

// Buffered reports whether the node already holds the next height.
func (f *NodeFeed) Buffered() bool { return f.node.Height() >= f.next }

// Close is a no-op; the caller owns the node.
func (f *NodeFeed) Close() error { return nil }
