package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/chain"
	"repro/internal/faults"
	"repro/internal/p2p"
)

// A BlockFeed hands the daemon blocks in height order. Next blocks until a
// block is available, the source is exhausted (io.EOF), or ctx is done;
// Buffered reports whether another block is already available without
// waiting, which is how the daemon decides it has reached the tip and should
// publish. Close releases the source; feeds are not safe for concurrent use.
//
// A live feed (TailFeed, NodeFeed) additionally watches for its source
// rewriting history — a chain reorganization. When it detects one, Next
// returns a *RewindError naming the first height whose block changed; the
// daemon rolls its state back below that height and calls Rewind to
// repoint the feed, after which Next delivers the replacement history.
type BlockFeed interface {
	Next(ctx context.Context) (*chain.Block, error)
	// Rewind repoints the feed so the next delivered block is the one at
	// height. Rewinding forward past blocks the feed has not delivered yet
	// is allowed (the checkpoint-resume path) and must not block: if the
	// source currently holds fewer blocks, the feed repositions as far as it
	// can and lets the daemon's continuity check sort out the rest.
	Rewind(height int64) error
	Buffered() bool
	Close() error
}

// RewindError reports that the feed's source replaced previously delivered
// history. Height is the first height whose block differs (every block
// before it is unchanged); Cause is the observation that exposed the reorg,
// for diagnostics.
type RewindError struct {
	Height int64
	Cause  error
}

// Error implements error.
func (e *RewindError) Error() string {
	return fmt.Sprintf("serve: feed: history rewritten from height %d: %v", e.Height, e.Cause)
}

// Unwrap exposes the underlying observation to errors.Is/As.
func (e *RewindError) Unwrap() error { return e.Cause }

// SourceFeed adapts a finite chain.BlockSource (an in-memory chain, a fully
// written chain file) into a feed: it never waits, and reports EOF once the
// source drains.
type SourceFeed struct {
	src  chain.BlockSource
	next int64 // height the next delivered block will have
	done bool
}

// NewSourceFeed wraps src. The feed does not own an underlying file; close
// the reader separately if the source has one.
func NewSourceFeed(src chain.BlockSource) *SourceFeed {
	return &SourceFeed{src: src}
}

// Next returns the next block, or io.EOF once the source is exhausted.
func (f *SourceFeed) Next(ctx context.Context) (*chain.Block, error) {
	if f.done {
		return nil, io.EOF
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b, err := f.src.NextBlock()
	if err != nil {
		if err == io.EOF {
			f.done = true
		}
		return nil, err
	}
	f.next++
	return b, nil
}

// Rewind skips forward to height. A BlockSource cannot be re-read, so
// rewinding backwards is an error; skipping forward discards blocks, and a
// source that drains mid-skip simply leaves the feed at EOF.
func (f *SourceFeed) Rewind(height int64) error {
	if height < f.next {
		return fmt.Errorf("serve: source feed: cannot rewind to height %d (next is %d): source is not re-readable", height, f.next)
	}
	for f.next < height && !f.done {
		if _, err := f.Next(context.Background()); err != nil && err != io.EOF {
			return err
		}
	}
	return nil
}

// Buffered reports whether the source may still yield a block.
func (f *SourceFeed) Buffered() bool { return !f.done }

// Close is a no-op; the caller owns the source.
func (f *SourceFeed) Close() error { return nil }

// TailFeed follows a framed chain file being appended by another process —
// the generator writing via GenerateToFile, or any chain.Writer. It never
// reports EOF: at the tip, Next parks until more bytes land or ctx is done.
//
// The feed remembers the hash and frame-end offset of every delivered block.
// If the writer rewrites the file — the file shrinks below the read offset,
// a frame stops decoding, or a delivered height's successor no longer links
// to it — the feed binary-searches its recorded offsets for the first frame
// whose block changed and reports it as a *RewindError.
type TailFeed struct {
	tr     *chain.TailReader
	hashes []chain.Hash // hashes[h] = delivered block at height h
	ends   []int64      // ends[h] = byte offset just past frame h
	// progressed records whether any frame decoded successfully since the
	// last anomaly — the guard that keeps a corrupt (rather than reorged)
	// file from triggering an endless rescan loop: a second anomaly with no
	// intervening progress is terminal.
	progressed bool
}

// OpenTailFeed opens path for tailing.
func OpenTailFeed(path string) (*TailFeed, error) {
	tr, err := chain.OpenTail(path)
	if err != nil {
		return nil, err
	}
	return NewTailFeed(tr), nil
}

// NewTailFeed tails an already-open reader — the seam that lets tests (and
// the fault-injection harness) interpose a chain.TailFile between the feed
// and the filesystem. The feed owns tr and closes it.
func NewTailFeed(tr *chain.TailReader) *TailFeed {
	return &TailFeed{tr: tr, progressed: true}
}

// Next returns the next appended block, waiting for the writer if the file
// is currently at the tip. A rewritten file surfaces as *RewindError.
func (f *TailFeed) Next(ctx context.Context) (*chain.Block, error) {
	for {
		b, err := f.tr.TryNext()
		switch {
		case err == nil:
			h := len(f.hashes)
			if h > 0 && b.Header.PrevBlock != f.hashes[h-1] {
				// The frame decoded but no longer extends what we delivered:
				// the writer replaced a prefix of the file in place.
				return nil, f.anomaly(fmt.Errorf("block at height %d does not link to delivered block %d", h, h-1))
			}
			f.hashes = append(f.hashes, b.BlockHash())
			f.ends = append(f.ends, f.tr.Offset())
			f.progressed = true
			return b, nil
		case err == chain.ErrShortFrame:
			timer := time.NewTimer(tailFeedPoll)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
			}
		default:
			if ctx.Err() != nil {
				// Close raced with a read; shutdown, not corruption.
				return nil, ctx.Err()
			}
			if faults.IsTransient(err) {
				// An EAGAIN-class read failure says nothing about the file's
				// history — pass it to the daemon's retry loop untouched,
				// leaving the anomaly/progress bookkeeping alone.
				return nil, err
			}
			// Truncation below the offset or a frame that stopped decoding:
			// the writer rewrote history under us.
			return nil, f.anomaly(err)
		}
	}
}

// tailFeedPoll is how often Next re-probes a file with no complete frame.
const tailFeedPoll = 25 * time.Millisecond

// anomaly converts a mid-file inconsistency into a *RewindError locating the
// fork, unless nothing decoded since the previous anomaly — then the file is
// not converging and the cause is terminal.
func (f *TailFeed) anomaly(cause error) error {
	if !f.progressed {
		return fmt.Errorf("serve: tail feed: file did not converge after rewind: %w", cause)
	}
	f.progressed = false
	return &RewindError{Height: f.findFork(), Cause: cause}
}

// findFork returns the first delivered height whose frame no longer decodes
// to the block we delivered. Hash chaining makes "frame h still matches" a
// monotone predicate — a block commits to its whole ancestry, and identical
// blocks serialize identically, so frame boundaries agree too — which is
// what lets a binary search over recorded offsets find the fork in
// O(log n) frame decodes.
func (f *TailFeed) findFork() int64 {
	fork := int64(sort.Search(len(f.hashes), func(h int) bool {
		return !f.frameMatches(int64(h))
	}))
	// Reposition to deliver the fork height next, whatever the search found
	// (fork == len(hashes) means every delivered frame is intact and only
	// the tip's successor changed).
	f.truncateTo(fork)
	return fork
}

// frameMatches re-decodes frame h from its recorded offset and reports
// whether it still yields the delivered block.
func (f *TailFeed) frameMatches(h int64) bool {
	f.seekFrame(h)
	b, err := f.tr.TryNext()
	return err == nil && b.BlockHash() == f.hashes[h]
}

// seekFrame positions the reader at the start of frame h.
func (f *TailFeed) seekFrame(h int64) {
	if h == 0 {
		f.tr.Restart()
		return
	}
	f.tr.SeekFrame(f.ends[h-1], h)
}

// truncateTo forgets all delivered state from height h on and repositions
// the reader there.
func (f *TailFeed) truncateTo(h int64) {
	f.hashes = f.hashes[:h]
	f.ends = f.ends[:h]
	f.seekFrame(h)
}

// Rewind repoints the feed to deliver height next. Heights at or below the
// delivered tip reuse recorded offsets; rewinding forward (checkpoint
// resume) scans the file without waiting, stopping early if the file is
// still shorter than height.
func (f *TailFeed) Rewind(height int64) error {
	if height <= int64(len(f.hashes)) {
		f.truncateTo(height)
		return nil
	}
	for int64(len(f.hashes)) < height {
		b, err := f.tr.TryNext()
		if err != nil {
			if err == chain.ErrShortFrame {
				return nil // file shorter than requested; deliver from here
			}
			if faults.IsTransient(err) {
				return err
			}
			return f.anomaly(err)
		}
		h := len(f.hashes)
		if h > 0 && b.Header.PrevBlock != f.hashes[h-1] {
			return f.anomaly(fmt.Errorf("block at height %d does not link to delivered block %d", h, h-1))
		}
		f.hashes = append(f.hashes, b.BlockHash())
		f.ends = append(f.ends, f.tr.Offset())
		f.progressed = true
	}
	return nil
}

// Buffered reports whether a complete frame is already on disk.
func (f *TailFeed) Buffered() bool { return f.tr.Buffered() }

// Close closes the underlying file.
func (f *TailFeed) Close() error { return f.tr.Close() }

// nodePoll bounds how stale a NodeFeed can go when the node's event channel
// drops notifications under load (Events is documented to drop rather than
// block); the feed re-checks the chain height at least this often.
const nodePoll = 250 * time.Millisecond

// nodeSource is the slice of *p2p.Node a NodeFeed needs; tests substitute a
// fake to inject reorgs deterministically.
type nodeSource interface {
	Height() int64
	BlockAt(height int64) *chain.Block
	HashAt(height int64) (chain.Hash, bool)
	Events() <-chan p2p.Event
}

// NodeFeed follows a running p2p node's validated chain by height. Like
// TailFeed it never reports EOF; the node's event channel is used purely as
// a wake-up hint, with a poll fallback, so dropped events cost latency, not
// blocks.
//
// The node adopts a heavier competing branch by swapping its chain, so
// before delivering a new height the feed re-checks the hash of the last
// delivered block; a mismatch is binary-searched to the fork height and
// reported as a *RewindError.
type NodeFeed struct {
	node   nodeSource
	hashes []chain.Hash // hashes[h] = delivered block at height h
}

// NewNodeFeed follows node from genesis. The caller keeps ownership of the
// node and its lifecycle.
func NewNodeFeed(node *p2p.Node) *NodeFeed {
	return &NodeFeed{node: node}
}

// newNodeFeed is the test seam: any nodeSource.
func newNodeFeed(node nodeSource) *NodeFeed {
	return &NodeFeed{node: node}
}

// Next returns the block at the next height, waiting for the node to extend
// its chain if necessary. A node that switched branches below the delivered
// tip surfaces as *RewindError.
func (f *NodeFeed) Next(ctx context.Context) (*chain.Block, error) {
	for {
		if fork, reorged := f.forkPoint(); reorged {
			f.hashes = f.hashes[:fork]
			return nil, &RewindError{Height: fork, Cause: errors.New("node switched to a different branch")}
		}
		next := int64(len(f.hashes))
		if b := f.node.BlockAt(next); b != nil {
			f.hashes = append(f.hashes, b.BlockHash())
			return b, nil
		}
		timer := time.NewTimer(nodePoll)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-f.node.Events():
			timer.Stop()
		case <-timer.C:
		}
	}
}

// forkPoint checks whether the node still agrees with every delivered block,
// cheaply in the common case: if the delivered tip's hash is unchanged, hash
// chaining guarantees the whole prefix is. On mismatch a binary search finds
// the first differing height (a node shorter than a queried height counts as
// a mismatch at it).
func (f *NodeFeed) forkPoint() (int64, bool) {
	k := len(f.hashes)
	if k == 0 {
		return 0, false
	}
	if f.matchesAt(int64(k - 1)) {
		return 0, false
	}
	fork := sort.Search(k, func(h int) bool { return !f.matchesAt(int64(h)) })
	return int64(fork), true
}

// matchesAt reports whether the node's block at height h is still the one
// delivered.
func (f *NodeFeed) matchesAt(h int64) bool {
	got, ok := f.node.HashAt(h)
	return ok && got == f.hashes[h]
}

// Rewind repoints the feed to deliver height next. Forward rewinds record
// hashes from the node without waiting, stopping early if the node's chain
// is still shorter.
func (f *NodeFeed) Rewind(height int64) error {
	if height <= int64(len(f.hashes)) {
		f.hashes = f.hashes[:height]
		return nil
	}
	for int64(len(f.hashes)) < height {
		h, ok := f.node.HashAt(int64(len(f.hashes)))
		if !ok {
			return nil // node shorter than requested; deliver from here
		}
		f.hashes = append(f.hashes, h)
	}
	return nil
}

// Buffered reports whether the node already holds the next height.
func (f *NodeFeed) Buffered() bool { return f.node.Height() >= int64(len(f.hashes)) }

// Close is a no-op; the caller owns the node.
func (f *NodeFeed) Close() error { return nil }
