package serve

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/address"
	"repro/internal/cluster"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

// API serves read-only JSON queries over the latest published snapshot.
// Every request loads the snapshot pointer once and answers entirely from
// that epoch, so a response is internally consistent even while blocks keep
// landing. Handlers never touch the live graph or forest.
type API struct {
	ing *Ingester
	// health, when non-nil, feeds /v1/readyz the daemon's supervision state;
	// without it (a bare-Ingester API) readiness degenerates to liveness.
	health func() Health
}

// NewAPI wraps an Ingester (or the Ingester inside a Daemon) for serving.
func NewAPI(ing *Ingester) *API { return &API{ing: ing} }

// NewDaemonAPI wraps a Daemon for serving: the same routes as NewAPI, plus
// a /v1/readyz that reflects the daemon's supervision state — degraded
// answers 503 so load balancers drain traffic while the last published
// snapshot keeps serving whoever still asks.
func NewDaemonAPI(d *Daemon) *API { return &API{ing: d.ing, health: d.Health} }

// Handler returns the route table:
//
//	GET /v1/healthz                  liveness + current epoch and height
//	GET /v1/readyz                   readiness: supervision health, 503 when degraded
//	GET /v1/stats                    clustering and naming statistics
//	GET /v1/cluster?addr=A           cluster membership of one address
//	GET /v1/cluster/members?label=L  addresses in one refined cluster
//	GET /v1/balance?addr=A           confirmed balance of one address
//	GET /v1/tags?addr=A              ground-truth tag for one address
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", a.healthz)
	mux.HandleFunc("GET /v1/readyz", a.readyz)
	mux.HandleFunc("GET /v1/stats", a.stats)
	mux.HandleFunc("GET /v1/cluster", a.cluster)
	mux.HandleFunc("GET /v1/cluster/members", a.members)
	mux.HandleFunc("GET /v1/balance", a.balance)
	mux.HandleFunc("GET /v1/tags", a.tag)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The header is already out; an encode/write error here only means the
	// client went away mid-response.
	_ = json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

// writeError writes the structured JSON error envelope every non-2xx
// response uses. 503s additionally carry Retry-After so clients and probes
// back off instead of retrying immediately.
func writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
	}
	writeJSON(w, status, errorResponse{Error: msg})
}

// snapAddr resolves the ?addr= parameter against the snapshot, writing the
// error response itself when resolution fails.
func snapAddr(w http.ResponseWriter, r *http.Request, s *Snapshot) (txgraph.AddrID, address.Address, bool) {
	raw := r.URL.Query().Get("addr")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing addr parameter")
		return 0, address.Address{}, false
	}
	addr, err := address.Decode(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad address: "+err.Error())
		return 0, address.Address{}, false
	}
	id, ok := s.Lookup(addr)
	if !ok {
		writeError(w, http.StatusNotFound, "address not on chain at epoch "+strconv.FormatUint(s.Epoch, 10))
		return 0, address.Address{}, false
	}
	return id, addr, true
}

type healthzResponse struct {
	Epoch  uint64 `json:"epoch"`
	Height int64  `json:"height"`
}

func (a *API) healthz(w http.ResponseWriter, r *http.Request) {
	s := a.ing.Snapshot()
	writeJSON(w, http.StatusOK, healthzResponse{Epoch: s.Epoch, Height: s.Height})
}

// readyz answers readiness: 200 with the supervision Health while the daemon
// is healthy, 503 (plus Retry-After) with the same body once it trips
// degraded — liveness (healthz) stays green either way, because the process
// is up and serving its last snapshot. An API without a daemon is ready
// whenever it is alive.
func (a *API) readyz(w http.ResponseWriter, r *http.Request) {
	if a.health == nil {
		s := a.ing.Snapshot()
		writeJSON(w, http.StatusOK, Health{
			State:           StateOK,
			AppliedHeight:   s.Height,
			PublishedEpoch:  s.Epoch,
			PublishedHeight: s.Height,
		})
		return
	}
	h := a.health()
	status := http.StatusOK
	if h.Degraded {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
	}
	writeJSON(w, status, h)
}

type clusteringStats struct {
	Clusters        int `json:"clusters"`
	SpenderClusters int `json:"spender_clusters"`
	SinkAddresses   int `json:"sink_addresses"`
	MaxUsers        int `json:"max_users"`
	LargestCluster  int `json:"largest_cluster"`
	NamedClusters   int `json:"named_clusters"`
	NamedAddresses  int `json:"named_addresses"`
}

func summarize(c *cluster.Clustering, n *tags.Naming) clusteringStats {
	st := c.ComputeStats()
	return clusteringStats{
		Clusters:        c.NumClusters(),
		SpenderClusters: st.SpenderClusters,
		SinkAddresses:   st.SinkAddresses,
		MaxUsers:        st.MaxUsers,
		LargestCluster:  st.LargestCluster,
		NamedClusters:   n.NamedClusters,
		NamedAddresses:  n.NamedAddresses,
	}
}

type statsResponse struct {
	Epoch   uint64              `json:"epoch"`
	Height  int64               `json:"height"`
	Txs     int                 `json:"txs"`
	Addrs   int                 `json:"addrs"`
	H1      clusteringStats     `json:"h1"`
	Refined clusteringStats     `json:"refined"`
	Change  cluster.ChangeStats `json:"change"`
}

func (a *API) stats(w http.ResponseWriter, r *http.Request) {
	s := a.ing.Snapshot()
	writeJSON(w, http.StatusOK, statsResponse{
		Epoch:   s.Epoch,
		Height:  s.Height,
		Txs:     s.NumTxs,
		Addrs:   s.NumAddrs,
		H1:      summarize(s.H1, s.NamingH1),
		Refined: summarize(s.Refined, s.Naming),
		Change:  s.Refined.ChangeStats,
	})
}

type clusterView struct {
	Label    int32  `json:"label"`
	Size     int    `json:"size"`
	Service  string `json:"service,omitempty"`
	Category string `json:"category,omitempty"`
}

func viewOf(c *cluster.Clustering, n *tags.Naming, id txgraph.AddrID) clusterView {
	label := c.ClusterOf(id)
	v := clusterView{Label: label, Size: c.ClusterSizes()[label]}
	if svc, ok := n.ClusterService[label]; ok {
		v.Service = svc
		v.Category = n.ClusterCategory[label].String()
	}
	return v
}

type clusterResponse struct {
	Epoch   uint64      `json:"epoch"`
	Addr    string      `json:"addr"`
	ID      uint32      `json:"id"`
	H1      clusterView `json:"h1"`
	Refined clusterView `json:"refined"`
}

func (a *API) cluster(w http.ResponseWriter, r *http.Request) {
	s := a.ing.Snapshot()
	id, addr, ok := snapAddr(w, r, s)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, clusterResponse{
		Epoch:   s.Epoch,
		Addr:    addr.String(),
		ID:      uint32(id),
		H1:      viewOf(s.H1, s.NamingH1, id),
		Refined: viewOf(s.Refined, s.Naming, id),
	})
}

type membersResponse struct {
	Epoch     uint64   `json:"epoch"`
	Label     int32    `json:"label"`
	Size      int      `json:"size"`
	Service   string   `json:"service,omitempty"`
	Truncated bool     `json:"truncated"`
	Members   []string `json:"members"`
}

func (a *API) members(w http.ResponseWriter, r *http.Request) {
	s := a.ing.Snapshot()
	label64, err := strconv.ParseInt(r.URL.Query().Get("label"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad label parameter")
		return
	}
	label := int32(label64)
	if label < 0 || int(label) >= s.Refined.NumClusters() {
		writeError(w, http.StatusNotFound, "no such cluster at epoch "+strconv.FormatUint(s.Epoch, 10))
		return
	}
	const maxLimit = 1000
	limit := 100
	if raw := r.URL.Query().Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit < 1 {
			writeError(w, http.StatusBadRequest, "bad limit parameter")
			return
		}
	}
	if limit > maxLimit {
		limit = maxLimit
	}
	ids := s.Refined.Members(label)
	resp := membersResponse{
		Epoch:     s.Epoch,
		Label:     label,
		Size:      len(ids),
		Truncated: len(ids) > limit,
		Members:   make([]string, 0, min(limit, len(ids))),
	}
	if svc, ok := s.Naming.ClusterService[label]; ok {
		resp.Service = svc
	}
	for _, id := range ids {
		if len(resp.Members) >= limit {
			break
		}
		resp.Members = append(resp.Members, s.Addr(id).String())
	}
	writeJSON(w, http.StatusOK, resp)
}

type balanceResponse struct {
	Epoch    uint64 `json:"epoch"`
	Height   int64  `json:"height"`
	Addr     string `json:"addr"`
	Satoshis int64  `json:"satoshis"`
}

func (a *API) balance(w http.ResponseWriter, r *http.Request) {
	s := a.ing.Snapshot()
	id, addr, ok := snapAddr(w, r, s)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, balanceResponse{
		Epoch:    s.Epoch,
		Height:   s.Height,
		Addr:     addr.String(),
		Satoshis: int64(s.Balance(id)),
	})
}

type tagResponse struct {
	Epoch    uint64 `json:"epoch"`
	Addr     string `json:"addr"`
	Service  string `json:"service"`
	Category string `json:"category"`
	Source   string `json:"source"`
}

func (a *API) tag(w http.ResponseWriter, r *http.Request) {
	s := a.ing.Snapshot()
	_, addr, ok := snapAddr(w, r, s)
	if !ok {
		return
	}
	t, ok := s.Tags.Get(addr)
	if !ok {
		writeError(w, http.StatusNotFound, "address is untagged")
		return
	}
	writeJSON(w, http.StatusOK, tagResponse{
		Epoch:    s.Epoch,
		Addr:     addr.String(),
		Service:  t.Service,
		Category: t.Category.String(),
		Source:   t.Source.String(),
	})
}
