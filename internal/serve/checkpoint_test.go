package serve

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/txgraph"
)

// checkpointBytes serializes ing's current state, failing the test on error.
func checkpointBytes(t *testing.T, ing *Ingester) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ing.WriteCheckpoint(&buf); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	return buf.Bytes()
}

// assertSameState asserts two ingesters hold identical measurement state by
// comparing their published snapshots field by field.
func assertSameState(t *testing.T, got, want *Ingester) {
	t.Helper()
	gs, ws := got.Snapshot(), want.Snapshot()
	if gs.Height != ws.Height || gs.NumTxs != ws.NumTxs || gs.NumAddrs != ws.NumAddrs {
		t.Fatalf("shape (h=%d txs=%d addrs=%d) != (h=%d txs=%d addrs=%d)",
			gs.Height, gs.NumTxs, gs.NumAddrs, ws.Height, ws.NumTxs, ws.NumAddrs)
	}
	if got.TipHash() != want.TipHash() {
		t.Fatal("tip hashes differ")
	}
	for id := 0; id < gs.NumAddrs; id++ {
		aid := txgraph.AddrID(id)
		if gs.Addr(aid) != ws.Addr(aid) {
			t.Fatalf("addr %d differs", id)
		}
		if gs.Balance(aid) != ws.Balance(aid) {
			t.Fatalf("balance of %d differs", id)
		}
		if gs.H1.ClusterOf(aid) != ws.H1.ClusterOf(aid) {
			t.Fatalf("H1 label of %d differs", id)
		}
		if gs.Refined.ClusterOf(aid) != ws.Refined.ClusterOf(aid) {
			t.Fatalf("refined label of %d differs", id)
		}
	}
}

// TestCheckpointRoundTrip: write → read restores an equivalent ingester, and
// serialization is deterministic (same state, same bytes).
func TestCheckpointRoundTrip(t *testing.T) {
	w := testWorld(t)
	ing, _ := ingestAll(t, w)

	raw := checkpointBytes(t, ing)
	if !bytes.Equal(raw, checkpointBytes(t, ing)) {
		t.Fatal("checkpoint serialization is not deterministic")
	}

	restored, err := ReadCheckpoint(testAnalysis(w), bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	assertSameState(t, restored, ing)

	// The restored state must keep ingesting: epochs continue, not restart.
	if restored.Epoch() < ing.Epoch() {
		t.Fatalf("restored epoch %d went backwards from %d", restored.Epoch(), ing.Epoch())
	}
}

// TestCheckpointDetectsCorruption: a flipped payload byte fails the section
// CRC; a truncated file fails cleanly; garbage magic is rejected.
func TestCheckpointDetectsCorruption(t *testing.T) {
	w := testWorld(t)
	ing, _ := ingestAll(t, w)
	raw := checkpointBytes(t, ing)
	an := testAnalysis(w)

	for _, off := range []int{20, len(raw) / 2, len(raw) - 5} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if _, err := ReadCheckpoint(an, bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at offset %d went undetected", off)
		}
	}
	for _, n := range []int{0, 3, 12, len(raw) - 1} {
		if _, err := ReadCheckpoint(an, bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := ReadCheckpoint(an, bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic went undetected")
	}
}

// TestCheckpointSkipsUnknownTrailingSection: a future writer may append
// sections after BALS; this reader verifies their CRC and ignores them.
func TestCheckpointSkipsUnknownTrailingSection(t *testing.T) {
	w := testWorld(t)
	ing, _ := ingestAll(t, w)
	raw := checkpointBytes(t, ing)

	payload := []byte("future data")
	ext := append([]byte(nil), raw...)
	ext = append(ext, 'X', 'T', 'R', 'A')
	ext = binary.LittleEndian.AppendUint32(ext, uint32(len(payload)))
	ext = append(ext, payload...)
	ext = binary.LittleEndian.AppendUint32(ext, crc32.ChecksumIEEE(payload))

	restored, err := ReadCheckpoint(testAnalysis(w), bytes.NewReader(ext))
	if err != nil {
		t.Fatalf("unknown trailing section rejected: %v", err)
	}
	assertSameState(t, restored, ing)

	// A corrupt unknown section is still corruption.
	ext[len(ext)-6] ^= 1
	if _, err := ReadCheckpoint(testAnalysis(w), bytes.NewReader(ext)); err == nil {
		t.Fatal("corrupt trailing section went undetected")
	}
}

// TestCheckpointStore exercises the on-disk lifecycle: Save names files by
// height, Heights lists them sorted, retention prunes the oldest, LoadLatest
// and loadAtOrBelow restore the right generations.
func TestCheckpointStore(t *testing.T) {
	w := testWorld(t)
	an := testAnalysis(w)
	cs, err := NewCheckpointStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}

	// Before any block there is nothing to persist.
	empty := NewIngester(an)
	if path, err := empty.Save(cs); err != nil || path != "" {
		t.Fatalf("empty save = (%q, %v), want no-op", path, err)
	}

	ing := NewIngester(an)
	var saved []int64
	for h, b := range w.Chain.Blocks() {
		if err := ing.ApplyBlock(b); err != nil {
			t.Fatal(err)
		}
		if (h+1)%60 == 0 {
			ing.Publish()
			if _, err := ing.Save(cs); err != nil {
				t.Fatalf("save at height %d: %v", h, err)
			}
			saved = append(saved, int64(h))
		}
	}

	heights, err := cs.Heights()
	if err != nil {
		t.Fatal(err)
	}
	want := saved[len(saved)-3:] // keep=3 retains the newest three
	if len(heights) != len(want) {
		t.Fatalf("retained %v, want %v", heights, want)
	}
	for i := range want {
		if heights[i] != want[i] {
			t.Fatalf("retained %v, want %v", heights, want)
		}
	}

	latest, ok, err := cs.LoadLatest(an)
	if err != nil || !ok {
		t.Fatalf("LoadLatest = %v, %v", ok, err)
	}
	if latest.Height() != saved[len(saved)-1] {
		t.Fatalf("latest height %d, want %d", latest.Height(), saved[len(saved)-1])
	}

	mid, ok, err := cs.loadAtOrBelow(an, want[1])
	if err != nil || !ok {
		t.Fatalf("loadAtOrBelow = %v, %v", ok, err)
	}
	if mid.Height() != want[1] {
		t.Fatalf("loadAtOrBelow(%d) restored height %d", want[1], mid.Height())
	}
	if _, ok, err := cs.loadAtOrBelow(an, want[0]-1); err != nil || ok {
		t.Fatalf("loadAtOrBelow below the oldest retained = %v, %v; want miss", ok, err)
	}

	// A corrupt file is an explicit error, never a silent cold start.
	path := cs.Path(latest.Height())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 1
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.LoadLatest(an); err == nil {
		t.Fatal("corrupt checkpoint loaded without error")
	}

	// No stray temp files survive saves.
	tmps, err := filepath.Glob(filepath.Join(cs.Dir(), "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("leaked temp files: %v", tmps)
	}
}

// TestCheckpointStoreEmpty: LoadLatest on a fresh directory reports "no
// checkpoint" without error.
func TestCheckpointStoreEmpty(t *testing.T) {
	cs, err := NewCheckpointStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cs.LoadLatest(Analysis{}); err != nil || ok {
		t.Fatalf("LoadLatest on empty store = %v, %v", ok, err)
	}
}
