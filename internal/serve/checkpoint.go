package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/par"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

// Checkpoint file format (full byte-level spec in docs/FORMATS.md):
//
//	magic "FCK\x01"
//	section*            tag[4] | u32 LE payload length | payload | u32 LE CRC32-IEEE(payload)
//
// Sections appear in a fixed order — META, GRPH, FRST, BALS — and all four
// are required. Unknown sections after BALS are skipped (their CRC is still
// verified), so later versions can append data without breaking this reader.
// The framing mirrors internal/chain's length-prefixed block stream: a
// partial write is detected as a short or CRC-failing section, never decoded
// as state.

// checkpointMagic identifies a serve checkpoint file; the trailing byte is
// the container version.
var checkpointMagic = [4]byte{'F', 'C', 'K', 0x01}

// metaVersion versions the META payload layout.
const metaVersion = 1

// maxSectionLen bounds a section payload (1 GiB) so a corrupt length prefix
// cannot drive allocation.
const maxSectionLen = 1 << 30

// Section tags, in required file order.
var (
	tagMeta = [4]byte{'M', 'E', 'T', 'A'}
	tagGrph = [4]byte{'G', 'R', 'P', 'H'}
	tagFrst = [4]byte{'F', 'R', 'S', 'T'}
	tagBals = [4]byte{'B', 'A', 'L', 'S'}
)

// checkpointMeta is the decoded META section: the identity of the state the
// other sections carry, used to cross-validate them on load.
type checkpointMeta struct {
	epoch    uint64
	height   int64
	numTxs   uint64
	numAddrs uint64
	tip      chain.Hash
}

// writeSection frames one payload: tag, length, payload, CRC32-IEEE.
func writeSection(w io.Writer, tag [4]byte, payload []byte) error {
	var hdr [8]byte
	copy(hdr[:4], tag[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("serve: checkpoint: write %s header: %w", tag, err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("serve: checkpoint: write %s payload: %w", tag, err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("serve: checkpoint: write %s checksum: %w", tag, err)
	}
	return nil
}

// readSection reads the next framed section, verifying its CRC. It returns
// io.EOF cleanly only at a section boundary.
func readSection(r io.Reader) (tag [4]byte, payload []byte, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return tag, nil, io.EOF
		}
		return tag, nil, fmt.Errorf("serve: checkpoint: read section header: %w", err)
	}
	copy(tag[:], hdr[:4])
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxSectionLen {
		return tag, nil, fmt.Errorf("serve: checkpoint: section %s length %d exceeds limit (corrupt length prefix?)", tag, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return tag, nil, fmt.Errorf("serve: checkpoint: section %s: read payload: %w", tag, eofIsUnexpected(err))
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return tag, nil, fmt.Errorf("serve: checkpoint: section %s: read checksum: %w", tag, eofIsUnexpected(err))
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(sum[:]); got != want {
		return tag, nil, fmt.Errorf("serve: checkpoint: section %s: checksum mismatch (got %08x, want %08x)", tag, got, want)
	}
	return tag, payload, nil
}

// eofIsUnexpected converts a bare io.EOF into io.ErrUnexpectedEOF: inside a
// declared section, running out of bytes is truncation, not a clean end.
func eofIsUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// writeCheckpoint serializes one epoch's state — the substrate decomposition
// used by freeze, whether it comes from a frozen substrate or directly from
// the live Ingester on the ingest goroutine.
func writeCheckpoint(w io.Writer, epoch uint64, tip chain.Hash, g *txgraph.Graph, forest *cluster.UnionFind, balances []chain.Amount) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("serve: checkpoint: write magic: %w", err)
	}

	meta := make([]byte, 4+8+8+8+8+chain.HashSize)
	binary.LittleEndian.PutUint32(meta[0:], metaVersion)
	binary.LittleEndian.PutUint64(meta[4:], epoch)
	binary.LittleEndian.PutUint64(meta[12:], uint64(g.Height()))
	binary.LittleEndian.PutUint64(meta[20:], uint64(g.NumTxs()))
	binary.LittleEndian.PutUint64(meta[28:], uint64(g.NumAddrs()))
	copy(meta[36:], tip[:])
	if err := writeSection(bw, tagMeta, meta); err != nil {
		return err
	}

	var graphBuf bytesBuffer
	if err := g.WriteState(&graphBuf); err != nil {
		return fmt.Errorf("serve: checkpoint: serialize graph: %w", err)
	}
	if err := writeSection(bw, tagGrph, graphBuf.b); err != nil {
		return err
	}

	var forestBuf bytesBuffer
	if err := forest.WriteState(&forestBuf); err != nil {
		return fmt.Errorf("serve: checkpoint: serialize forest: %w", err)
	}
	if err := writeSection(bw, tagFrst, forestBuf.b); err != nil {
		return err
	}

	bals := make([]byte, 8+8*len(balances))
	binary.LittleEndian.PutUint64(bals[0:], uint64(len(balances)))
	for i, v := range balances {
		binary.LittleEndian.PutUint64(bals[8+8*i:], uint64(v))
	}
	if err := writeSection(bw, tagBals, bals); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("serve: checkpoint: flush: %w", err)
	}
	return nil
}

// bytesBuffer is a minimal append-only io.Writer; sections need the full
// payload in memory to frame it with a length prefix and CRC.
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// WriteCheckpoint serializes the Ingester's current state in the checkpoint
// format. Ingest goroutine only (it reads the live graph and forest); the
// Daemon's publish worker instead checkpoints the frozen substrate it was
// handed, which needs no such restriction.
func (ing *Ingester) WriteCheckpoint(w io.Writer) error {
	return writeCheckpoint(w, ing.epoch, ing.tip, ing.ap.Graph(), ing.forest, ing.balances)
}

// ReadCheckpoint restores an Ingester from a checkpoint stream and publishes
// its snapshot, so the result is immediately serveable. The restored state
// resumes byte-identically: applying the remaining blocks yields the same
// snapshots a cold rebuild over the full chain would.
func ReadCheckpoint(an Analysis, r io.Reader) (*Ingester, error) {
	ing, err := readCheckpointState(an, r)
	if err != nil {
		return nil, err
	}
	ing.Publish()
	return ing, nil
}

// readCheckpointState restores an Ingester without publishing — the rollback
// path, where the Daemon adopts the state and publishes on its own cadence.
func readCheckpointState(an Analysis, r io.Reader) (*Ingester, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("serve: checkpoint: read magic: %w", eofIsUnexpected(err))
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("serve: checkpoint: bad magic %q", magic[:])
	}

	meta, err := readMetaSection(br)
	if err != nil {
		return nil, err
	}

	tag, payload, err := readSection(br)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint: GRPH section: %w", err)
	}
	if tag != tagGrph {
		return nil, fmt.Errorf("serve: checkpoint: want GRPH section, got %s", tag)
	}
	ap, err := txgraph.AppenderFromState(bytes.NewReader(payload), an.Workers)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint: restore graph: %w", err)
	}
	g := ap.Graph()
	if uint64(g.NumTxs()) != meta.numTxs || uint64(g.NumAddrs()) != meta.numAddrs || g.Height() != meta.height {
		return nil, fmt.Errorf("serve: checkpoint: graph state (height %d, %d txs, %d addrs) disagrees with META (height %d, %d txs, %d addrs)",
			g.Height(), g.NumTxs(), g.NumAddrs(), meta.height, meta.numTxs, meta.numAddrs)
	}

	tag, payload, err = readSection(br)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint: FRST section: %w", err)
	}
	if tag != tagFrst {
		return nil, fmt.Errorf("serve: checkpoint: want FRST section, got %s", tag)
	}
	forest, err := cluster.UnionFindFromState(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint: restore forest: %w", err)
	}
	if forest.Len() != g.NumAddrs() {
		return nil, fmt.Errorf("serve: checkpoint: forest covers %d addresses, graph has %d", forest.Len(), g.NumAddrs())
	}

	tag, payload, err = readSection(br)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint: BALS section: %w", err)
	}
	if tag != tagBals {
		return nil, fmt.Errorf("serve: checkpoint: want BALS section, got %s", tag)
	}
	balances, err := decodeBalances(payload, g.NumAddrs())
	if err != nil {
		return nil, err
	}

	// Skip (but CRC-verify) unknown trailing sections: forward compatibility
	// with writers that append new data after BALS.
	for {
		if _, _, err := readSection(br); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
	}

	if an.Tags == nil {
		an.Tags = tags.NewStore()
	}
	ing := &Ingester{
		an:       an,
		workers:  par.Workers(an.Workers),
		ap:       ap,
		forest:   forest,
		balances: balances,
		tip:      meta.tip,
		epoch:    meta.epoch,
	}
	return ing, nil
}

// readMetaSection reads and decodes the mandatory leading META section.
func readMetaSection(r io.Reader) (checkpointMeta, error) {
	var meta checkpointMeta
	tag, payload, err := readSection(r)
	if err != nil {
		return meta, fmt.Errorf("serve: checkpoint: META section: %w", err)
	}
	if tag != tagMeta {
		return meta, fmt.Errorf("serve: checkpoint: want META section first, got %s", tag)
	}
	if len(payload) < 4 {
		return meta, errors.New("serve: checkpoint: META section too short")
	}
	if v := binary.LittleEndian.Uint32(payload[0:]); v != metaVersion {
		return meta, fmt.Errorf("serve: checkpoint: unsupported META version %d (want %d)", v, metaVersion)
	}
	if len(payload) != 4+8+8+8+8+chain.HashSize {
		return meta, fmt.Errorf("serve: checkpoint: META section has %d bytes, want %d", len(payload), 4+8+8+8+8+chain.HashSize)
	}
	meta.epoch = binary.LittleEndian.Uint64(payload[4:])
	meta.height = int64(binary.LittleEndian.Uint64(payload[12:]))
	meta.numTxs = binary.LittleEndian.Uint64(payload[20:])
	meta.numAddrs = binary.LittleEndian.Uint64(payload[28:])
	copy(meta.tip[:], payload[36:])
	if meta.height < -1 {
		return meta, fmt.Errorf("serve: checkpoint: implausible height %d", meta.height)
	}
	return meta, nil
}

// decodeBalances decodes the BALS payload and checks it covers exactly the
// graph's address table.
func decodeBalances(payload []byte, numAddrs int) ([]chain.Amount, error) {
	if len(payload) < 8 {
		return nil, errors.New("serve: checkpoint: BALS section too short")
	}
	n := binary.LittleEndian.Uint64(payload[0:])
	if uint64(numAddrs) != n {
		return nil, fmt.Errorf("serve: checkpoint: balance vector covers %d addresses, graph has %d", n, numAddrs)
	}
	if uint64(len(payload)) != 8+8*n {
		return nil, fmt.Errorf("serve: checkpoint: BALS section has %d bytes, want %d", len(payload), 8+8*n)
	}
	balances := make([]chain.Amount, n)
	for i := range balances {
		balances[i] = chain.Amount(binary.LittleEndian.Uint64(payload[8+8*i:]))
	}
	return balances, nil
}

// DefaultCheckpointKeep is how many newest checkpoints a store retains when
// the caller does not say otherwise. Several generations bound how far a
// reorg rollback can reach while keeping disk usage proportional to state
// size, not history.
const DefaultCheckpointKeep = 4

// CheckpointStore manages height-named checkpoint files in one directory:
// atomic writes (temp file, fsync, rename), newest-N retention, and
// load-by-height for the Daemon's rollback path.
type CheckpointStore struct {
	dir  string
	keep int
}

// NewCheckpointStore opens (creating if needed) a checkpoint directory.
// keep <= 0 means DefaultCheckpointKeep.
func NewCheckpointStore(dir string, keep int) (*CheckpointStore, error) {
	if keep <= 0 {
		keep = DefaultCheckpointKeep
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("serve: checkpoint store: %w", err)
	}
	return &CheckpointStore{dir: dir, keep: keep}, nil
}

// Dir returns the store's directory.
func (cs *CheckpointStore) Dir() string { return cs.dir }

// Path returns the file path a checkpoint at the given height lives at.
func (cs *CheckpointStore) Path(height int64) string {
	return filepath.Join(cs.dir, fmt.Sprintf("checkpoint-%012d.fck", height))
}

// Heights lists the heights with a checkpoint file present, ascending.
func (cs *CheckpointStore) Heights() ([]int64, error) {
	entries, err := os.ReadDir(cs.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint store: %w", err)
	}
	var heights []int64
	for _, e := range entries {
		var h int64
		if n, err := fmt.Sscanf(e.Name(), "checkpoint-%d.fck", &h); n == 1 && err == nil {
			heights = append(heights, h)
		}
	}
	sort.Slice(heights, func(i, j int) bool { return heights[i] < heights[j] })
	return heights, nil
}

// Save checkpoints the Ingester's current state under its height. Before any
// block there is nothing worth persisting, so height -1 is a no-op returning
// an empty path. Ingest goroutine only.
func (ing *Ingester) Save(cs *CheckpointStore) (string, error) {
	h := ing.Height()
	if h < 0 {
		return "", nil
	}
	if err := cs.save(h, ing.epoch, ing.tip, ing.ap.Graph(), ing.forest, ing.balances); err != nil {
		return "", err
	}
	return cs.Path(h), nil
}

// saveSub checkpoints a frozen substrate — the publish worker's path, safe
// off the ingest goroutine because the substrate is immutable.
func (cs *CheckpointStore) saveSub(sub *substrate) error {
	h := sub.g.Height()
	if h < 0 {
		return nil
	}
	return cs.save(h, sub.epoch, sub.tip, sub.g, sub.forest, sub.balances)
}

// save writes one checkpoint atomically: temp file in the same directory,
// fsync, rename over the final name, then best-effort pruning to the newest
// keep files.
func (cs *CheckpointStore) save(height int64, epoch uint64, tip chain.Hash, g *txgraph.Graph, forest *cluster.UnionFind, balances []chain.Amount) (err error) {
	f, err := os.CreateTemp(cs.dir, "checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("serve: checkpoint store: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = writeCheckpoint(f, epoch, tip, g, forest, balances); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("serve: checkpoint store: sync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("serve: checkpoint store: close: %w", err)
	}
	if err = os.Rename(tmp, cs.Path(height)); err != nil {
		return fmt.Errorf("serve: checkpoint store: %w", err)
	}
	cs.prune()
	return nil
}

// prune best-effort removes all but the newest keep checkpoints. Errors are
// ignored: retention is hygiene, not correctness.
func (cs *CheckpointStore) prune() {
	heights, err := cs.Heights()
	if err != nil {
		return
	}
	for len(heights) > cs.keep {
		os.Remove(cs.Path(heights[0]))
		heights = heights[1:]
	}
}

// Load restores a published Ingester from the checkpoint at exactly the
// given height.
func (cs *CheckpointStore) Load(an Analysis, height int64) (*Ingester, error) {
	ing, err := cs.loadState(an, height)
	if err != nil {
		return nil, err
	}
	ing.Publish()
	return ing, nil
}

// LoadLatest restores a published Ingester from the newest checkpoint. The
// second result is false when the store holds no checkpoints at all. Any
// present-but-unreadable checkpoint is an error, not a silent cold start:
// the operator decides whether to delete a corrupt file (see
// docs/OPERATIONS.md).
func (cs *CheckpointStore) LoadLatest(an Analysis) (*Ingester, bool, error) {
	heights, err := cs.Heights()
	if err != nil {
		return nil, false, err
	}
	if len(heights) == 0 {
		return nil, false, nil
	}
	ing, err := cs.Load(an, heights[len(heights)-1])
	if err != nil {
		return nil, false, err
	}
	return ing, true, nil
}

// loadAtOrBelow restores (unpublished) the newest checkpoint at or below the
// given height — the reorg rollback target. The second result is false when
// no checkpoint qualifies.
func (cs *CheckpointStore) loadAtOrBelow(an Analysis, height int64) (*Ingester, bool, error) {
	heights, err := cs.Heights()
	if err != nil {
		return nil, false, err
	}
	for i := len(heights) - 1; i >= 0; i-- {
		if heights[i] <= height {
			ing, err := cs.loadState(an, heights[i])
			if err != nil {
				return nil, false, err
			}
			return ing, true, nil
		}
	}
	return nil, false, nil
}

// loadState reads one checkpoint file into an unpublished Ingester.
func (cs *CheckpointStore) loadState(an Analysis, height int64) (*Ingester, error) {
	path := cs.Path(height)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint store: %w", err)
	}
	defer f.Close()
	ing, err := readCheckpointState(an, f)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint %s: %w", path, err)
	}
	if ing.Height() != height {
		return nil, fmt.Errorf("serve: checkpoint %s: contains height %d", path, ing.Height())
	}
	return ing, nil
}
