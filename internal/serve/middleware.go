package serve

import (
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// HTTP front defaults; see HTTPOptions.
const (
	DefaultHTTPReadTimeout  = 5 * time.Second
	DefaultHTTPWriteTimeout = 30 * time.Second
	DefaultHTTPIdleTimeout  = 2 * time.Minute
	DefaultHTTPMaxInFlight  = 256
)

// RetryAfterSeconds is the Retry-After value every 503 response advertises —
// load-shed rejections and a degraded /v1/readyz alike — so well-behaved
// clients and probes back off instead of hammering a struggling server.
const RetryAfterSeconds = 1

// HTTPOptions bounds the HTTP front so one slow or hostile client cannot
// wedge the server: connection deadlines plus an in-flight request cap.
// The zero value means the package defaults; negative values disable the
// corresponding bound.
type HTTPOptions struct {
	// ReadTimeout bounds reading a request (header and body); 0 means
	// DefaultHTTPReadTimeout, negative disables it.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing a response; 0 means
	// DefaultHTTPWriteTimeout, negative disables it.
	WriteTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit idle; 0
	// means DefaultHTTPIdleTimeout, negative disables it.
	IdleTimeout time.Duration
	// MaxInFlight caps concurrently served requests; excess requests are
	// shed immediately with 503 + Retry-After rather than queued. 0 means
	// DefaultHTTPMaxInFlight, negative disables shedding.
	MaxInFlight int
}

// normalize fills in defaults and maps "disabled" to the zero the stdlib
// expects.
func (o HTTPOptions) normalize() HTTPOptions {
	switch {
	case o.ReadTimeout == 0:
		o.ReadTimeout = DefaultHTTPReadTimeout
	case o.ReadTimeout < 0:
		o.ReadTimeout = 0
	}
	switch {
	case o.WriteTimeout == 0:
		o.WriteTimeout = DefaultHTTPWriteTimeout
	case o.WriteTimeout < 0:
		o.WriteTimeout = 0
	}
	switch {
	case o.IdleTimeout == 0:
		o.IdleTimeout = DefaultHTTPIdleTimeout
	case o.IdleTimeout < 0:
		o.IdleTimeout = 0
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = DefaultHTTPMaxInFlight
	}
	return o
}

// NewHTTPServer wraps handler in the hardening middleware (panic recovery
// outermost, then load shedding) and returns an http.Server with the
// options' connection deadlines applied. The caller owns the server's
// lifecycle — ListenAndServe, Serve, Shutdown.
func NewHTTPServer(addr string, handler http.Handler, opts HTTPOptions) *http.Server {
	opts = opts.normalize()
	return &http.Server{
		Addr:         addr,
		Handler:      Recover(LimitInFlight(handler, opts.MaxInFlight)),
		ReadTimeout:  opts.ReadTimeout,
		WriteTimeout: opts.WriteTimeout,
		IdleTimeout:  opts.IdleTimeout,
	}
}

// Recover turns a handler panic into a logged stack trace and a 500 error
// response, so one bad request cannot kill the connection's serve goroutine
// silently. http.ErrAbortHandler (the stdlib's deliberate abort) is
// re-panicked untouched.
func Recover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			log.Printf("serve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			// If the handler already wrote a header this is a no-op write
			// on a doomed response; nothing better is possible.
			writeError(w, http.StatusInternalServerError, "internal error")
		}()
		next.ServeHTTP(w, r)
	})
}

// LimitInFlight caps concurrently served requests at max, shedding the
// excess with 503 + Retry-After instead of queueing — a full server stays
// responsive about being full rather than stacking goroutines until it
// falls over. max <= 0 returns next unwrapped.
func LimitInFlight(next http.Handler, max int) http.Handler {
	if max <= 0 {
		return next
	}
	slots := make(chan struct{}, max)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case slots <- struct{}{}:
			defer func() { <-slots }()
			next.ServeHTTP(w, r)
		default:
			writeError(w, http.StatusServiceUnavailable, "server is at capacity")
		}
	})
}
