package serve

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/chaintest"
	"repro/internal/p2p"
	"repro/internal/txgraph"
)

// reorgAnalysis is the tagless analysis the reorg tests run under: chaintest
// worlds carry no tag store, so clusters stay unnamed — the clustering and
// balance state is what the tests compare.
func reorgAnalysis() Analysis { return Analysis{WaitBlocks: 10, Workers: 2} }

// buildCommonPrefix drives the same deterministic transaction history on a
// builder. Two builders fed exactly this sequence produce byte-identical
// blocks (keys mint in name-first-use order, timestamps derive from height),
// which is what lets a test splice two histories at a fork point.
func buildCommonPrefix(b *chaintest.Builder) {
	b.Coinbase("alice")
	b.Coinbase("bob")
	b.Pay([]string{"alice"}, chaintest.Out{Name: "carol", Value: b.Balance("alice") / 2},
		chaintest.Out{Name: "dan", Value: b.Balance("alice") / 4})
	b.Mine(2)
	b.Pay([]string{"bob", "carol"}, chaintest.Out{Name: "erin", Value: b.Balance("bob")})
	b.Mine(3)
}

// buildBranchA extends the prefix with the history that gets reorged away.
func buildBranchA(b *chaintest.Builder) {
	b.Pay([]string{"dan"}, chaintest.Out{Name: "alice", Value: b.Balance("dan") / 2})
	b.Mine(2)
}

// buildBranchB extends the prefix with the winning history — strictly longer
// than branch A, as a heavier competing branch is.
func buildBranchB(b *chaintest.Builder) {
	b.Pay([]string{"erin"}, chaintest.Out{Name: "frank", Value: b.Balance("erin") / 3},
		chaintest.Out{Name: "erin", Value: b.Balance("erin") / 3})
	b.Mine(3)
	b.Pay([]string{"frank", "dan"}, chaintest.Out{Name: "gus", Value: b.Balance("frank")})
	b.Mine(2)
}

// forkChains builds the two histories: chain A (common prefix + branch A)
// and chain B (common prefix + longer branch B). It returns both block
// slices and the prefix length in blocks.
func forkChains(t *testing.T) (a, b []*chain.Block, prefixLen int) {
	t.Helper()
	ba := chaintest.New(t)
	buildCommonPrefix(ba)
	prefixLen = len(ba.Chain.Blocks())
	buildBranchA(ba)

	bb := chaintest.New(t)
	buildCommonPrefix(bb)
	buildBranchB(bb)

	a, b = ba.Chain.Blocks(), bb.Chain.Blocks()
	if len(b) <= len(a) {
		t.Fatalf("branch B (%d blocks) must outgrow branch A (%d)", len(b), len(a))
	}
	for h := 0; h < prefixLen; h++ {
		if a[h].BlockHash() != b[h].BlockHash() {
			t.Fatalf("prefix diverges at height %d; the builder is not deterministic", h)
		}
	}
	if a[prefixLen].BlockHash() == b[prefixLen].BlockHash() {
		t.Fatal("branches do not diverge at the fork point")
	}
	return a, b, prefixLen
}

// frameBytes serializes blocks into framed chain-file bytes.
func frameBytes(t *testing.T, blocks []*chain.Block) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := chain.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if err := w.WriteBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// coldSnapshot is the reorg tests' reference: a fresh ingester over exactly
// the given blocks, published once.
func coldSnapshot(t *testing.T, blocks []*chain.Block) *Snapshot {
	t.Helper()
	ing := NewIngester(reorgAnalysis())
	for _, b := range blocks {
		if err := ing.ApplyBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	return ing.Publish()
}

// assertConverged compares a daemon's snapshot against the cold reference:
// same shape, same balances, same cluster labels.
func assertConverged(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.Height != want.Height || got.NumTxs != want.NumTxs || got.NumAddrs != want.NumAddrs {
		t.Fatalf("converged shape (h=%d txs=%d addrs=%d) != batch (h=%d txs=%d addrs=%d)",
			got.Height, got.NumTxs, got.NumAddrs, want.Height, want.NumTxs, want.NumAddrs)
	}
	for id := 0; id < want.NumAddrs; id++ {
		aid := txgraph.AddrID(id)
		if got.Addr(aid) != want.Addr(aid) {
			t.Fatalf("addr %d differs after reorg", id)
		}
		if got.Balance(aid) != want.Balance(aid) {
			t.Fatalf("balance of %d: got %d, want %d", id, got.Balance(aid), want.Balance(aid))
		}
		if got.H1.ClusterOf(aid) != want.H1.ClusterOf(aid) {
			t.Fatalf("H1 label of %d differs after reorg", id)
		}
		if got.Refined.ClusterOf(aid) != want.Refined.ClusterOf(aid) {
			t.Fatalf("refined label of %d differs after reorg", id)
		}
	}
}

// awaitHeight polls until the daemon's snapshot reaches height h.
func awaitHeight(t *testing.T, d *Daemon, h int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for d.Snapshot().Height != h {
		if time.Now().After(deadline) {
			t.Fatalf("daemon stuck at height %d, want %d", d.Snapshot().Height, h)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDaemonTailFeedReorg injects a fork mid-ingest through the chain file
// itself: the daemon tails a file holding branch A, then the file is
// rewritten in place — truncated to the common prefix, branch B appended.
// The daemon must detect the rewrite, roll back to a checkpoint below the
// fork, replay branch B, and converge to exactly the state a cold build
// over branch B produces.
func TestDaemonTailFeedReorg(t *testing.T) {
	chainA, chainB, prefixLen := forkChains(t)
	bytesA, bytesB := frameBytes(t, chainA), frameBytes(t, chainB)

	// The framed encodings of the two files share the prefix's bytes
	// exactly; everything after is the branch.
	prefixBytes := len(frameBytes(t, chainA[:prefixLen]))
	if !bytes.Equal(bytesA[:prefixBytes], bytesB[:prefixBytes]) {
		t.Fatal("framed prefixes differ; splice would be meaningless")
	}

	path := filepath.Join(t.TempDir(), "chain.dat")
	if err := os.WriteFile(path, bytesA, 0o666); err != nil {
		t.Fatal(err)
	}
	feed, err := OpenTailFeed(path)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCheckpointStore(t.TempDir(), 100)
	if err != nil {
		t.Fatal(err)
	}

	ing := NewIngester(reorgAnalysis())
	d := NewDaemonOpts(ing, feed, DaemonOptions{PublishEvery: 1, Checkpoints: cs})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	awaitHeight(t, d, int64(len(chainA)-1))

	// Reorg: rewrite the file in place, preserving the inode the tail
	// reader holds open — truncate to the shared prefix, append branch B.
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(int64(prefixBytes)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytesB[prefixBytes:], int64(prefixBytes)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	awaitHeight(t, d, int64(len(chainB)-1))
	assertConverged(t, d.Snapshot(), coldSnapshot(t, chainB))

	// The post-fork state must also get checkpointed (the snapshot installs
	// before the worker's save completes, so poll), so a restart lands on
	// the new branch.
	deadline := time.Now().Add(30 * time.Second)
	for {
		heights, err := cs.Heights()
		if err != nil {
			t.Fatal(err)
		}
		if len(heights) > 0 && heights[len(heights)-1] == int64(len(chainB)-1) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("newest checkpoint at %v, want height %d", heights, len(chainB)-1)
		}
		time.Sleep(2 * time.Millisecond)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// fakeNode is a nodeSource whose chain a test can swap wholesale — the
// reorg, as p2p.Node performs it, without networking.
type fakeNode struct {
	mu     sync.Mutex
	blocks []*chain.Block
	events chan p2p.Event
}

func newFakeNode(blocks []*chain.Block) *fakeNode {
	return &fakeNode{blocks: blocks, events: make(chan p2p.Event, 1)}
}

func (f *fakeNode) Height() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.blocks)) - 1
}

func (f *fakeNode) BlockAt(h int64) *chain.Block {
	f.mu.Lock()
	defer f.mu.Unlock()
	if h < 0 || h >= int64(len(f.blocks)) {
		return nil
	}
	return f.blocks[h]
}

func (f *fakeNode) HashAt(h int64) (chain.Hash, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if h < 0 || h >= int64(len(f.blocks)) {
		return chain.Hash{}, false
	}
	return f.blocks[h].BlockHash(), true
}

func (f *fakeNode) Events() <-chan p2p.Event { return f.events }

// setChain swaps the node's chain and nudges the feed, dropping the event if
// the buffer is full exactly as p2p.Node does.
func (f *fakeNode) setChain(blocks []*chain.Block) {
	f.mu.Lock()
	f.blocks = blocks
	f.mu.Unlock()
	select {
	case f.events <- p2p.Event{}:
	default:
	}
}

// TestDaemonNodeFeedReorg injects a fork through a node switching branches:
// the daemon follows branch A, the node adopts the longer branch B, and the
// daemon — running without a checkpoint store, so rollback degrades to a
// genesis replay — must converge to the cold branch-B state.
func TestDaemonNodeFeedReorg(t *testing.T) {
	chainA, chainB, _ := forkChains(t)
	node := newFakeNode(chainA)

	ing := NewIngester(reorgAnalysis())
	d := NewDaemonOpts(ing, newNodeFeed(node), DaemonOptions{PublishEvery: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	awaitHeight(t, d, int64(len(chainA)-1))
	node.setChain(chainB)
	awaitHeight(t, d, int64(len(chainB)-1))
	assertConverged(t, d.Snapshot(), coldSnapshot(t, chainB))

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// chanFeed delivers blocks pushed by the test, one at a time, reporting EOF
// when the channel closes.
type chanFeed struct{ ch chan *chain.Block }

func (f *chanFeed) Next(ctx context.Context) (*chain.Block, error) {
	select {
	case b, ok := <-f.ch:
		if !ok {
			return nil, io.EOF
		}
		return b, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
func (f *chanFeed) Rewind(height int64) error { return nil }
func (f *chanFeed) Buffered() bool            { return len(f.ch) > 0 }
func (f *chanFeed) Close() error              { return nil }

// TestPublishDoesNotStallIngest pins the off-thread publish contract: with
// the publish worker artificially blocked, the ingest loop keeps applying
// blocks (the snapshot stays at the pre-block epoch), and once the worker is
// released the latest state publishes — intermediate epochs were coalesced
// away, never queued behind one another.
func TestPublishDoesNotStallIngest(t *testing.T) {
	b := chaintest.New(t)
	b.Mine(50)
	blocks := b.Chain.Blocks()

	feed := &chanFeed{ch: make(chan *chain.Block, len(blocks))}
	ing := NewIngester(reorgAnalysis())
	release := make(chan struct{})
	d := NewDaemonOpts(ing, feed, DaemonOptions{PublishEvery: 1})
	d.testPublishGate = func(*substrate) { <-release }

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	startEpoch := ing.Snapshot().Epoch
	for _, blk := range blocks {
		feed.ch <- blk
	}
	deadline := time.Now().Add(30 * time.Second)
	for d.Applied() != int64(len(blocks)) {
		if time.Now().After(deadline) {
			t.Fatalf("ingest stalled at %d/%d applied blocks while publish was blocked",
				d.Applied(), len(blocks))
		}
		time.Sleep(time.Millisecond)
	}
	// Every block is applied, yet nothing new published: the worker is still
	// parked inside its first publish.
	if ep := ing.Snapshot().Epoch; ep != startEpoch {
		t.Fatalf("snapshot advanced to epoch %d while the publish worker was blocked", ep)
	}

	close(release)
	awaitHeight(t, d, int64(len(blocks)-1))

	// Latest-wins coalescing: far fewer publishes than freezes reached the
	// worker. The daemon froze once per block (publishEvery=1); all but a
	// handful must have been displaced while the worker was parked.
	if ep := ing.Snapshot().Epoch; ep < uint64(len(blocks)) {
		t.Logf("published epoch %d after %d freezes (coalesced)", ep, len(blocks))
	}

	close(feed.ch)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
}
