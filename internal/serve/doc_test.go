package serve

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedSymbolsAreDocumented is the godoc gate for this package: every
// exported top-level type, function, method, constant, and variable in
// non-test files must carry a doc comment, and the package itself must have
// a package comment. The serve package is the daemon's public surface —
// docs/ARCHITECTURE.md and docs/OPERATIONS.md link into its godoc, so an
// undocumented export is a broken link in the operator docs.
func TestExportedSymbolsAreDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["serve"]
	if !ok {
		t.Fatalf("package serve not found in %v", pkgs)
	}

	hasPackageDoc := false
	for _, file := range pkg.Files {
		if file.Doc != nil {
			hasPackageDoc = true
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() && d.Recv == nil {
					continue
				}
				if d.Recv != nil && !receiverExported(d.Recv) {
					continue
				}
				if d.Recv != nil && !d.Name.IsExported() {
					continue
				}
				if d.Doc == nil {
					t.Errorf("%s: exported %s lacks a doc comment", fset.Position(d.Pos()), d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							t.Errorf("%s: exported type %s lacks a doc comment", fset.Position(s.Pos()), s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								t.Errorf("%s: exported %s lacks a doc comment", fset.Position(name.Pos()), name.Name)
							}
						}
					}
				}
			}
		}
	}
	if !hasPackageDoc {
		t.Error("package serve lacks a package comment")
	}
}

// receiverExported reports whether a method's receiver type is exported —
// methods on unexported types are internal regardless of their own name.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
