package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/chain"
)

// DefaultPublishEvery is how many applied blocks a snapshot publish may lag
// behind when the feed is backlogged (catching up through a long chain
// file). At the tip the daemon publishes after every block regardless.
const DefaultPublishEvery = 64

// DaemonOptions configures a Daemon beyond its ingester and feed.
type DaemonOptions struct {
	// PublishEvery is the maximum publish lag in blocks while catching up;
	// <= 0 means DefaultPublishEvery.
	PublishEvery int
	// Checkpoints, when non-nil, persists every published epoch and is the
	// rollback source after a reorg. Without it, a reorg falls back to
	// replaying from genesis.
	Checkpoints *CheckpointStore
	// Retry supervises transient feed and apply errors; the zero value
	// means the package defaults (see RetryPolicy).
	Retry RetryPolicy
}

// Daemon ties an Ingester to a BlockFeed: apply every block, hand a frozen
// substrate to the publish worker whenever the feed idles (and at least
// every PublishEvery blocks while catching up), checkpoint each published
// epoch, and roll back and replay when the feed reports its source rewrote
// history. One Daemon per Ingester; Run owns the feed.
type Daemon struct {
	ing          *Ingester
	feed         BlockFeed
	publishEvery int
	ck           *CheckpointStore
	retry        RetryPolicy

	// applied counts blocks applied across the daemon's lifetime (not reset
	// by rollbacks); tests read it concurrently to observe ingest progress.
	applied atomic.Int64
	// appliedHeight mirrors the ingester's height for concurrent Health
	// readers (Ingester.Height is ingest-goroutine-only).
	appliedHeight atomic.Int64

	// health tracks the supervision state Health() reports.
	health healthState

	// testPublishGate, when non-nil, runs on the publish worker before each
	// publish — the seam for the publish-stall test.
	testPublishGate func(*substrate)
	// testApplyFault, when non-nil, runs before each block apply and may
	// return an error in its place — the fault-injection seam for the apply
	// half of the supervision loop.
	testApplyFault func(*chain.Block) error
}

// NewDaemon wires ing to feed. publishEvery <= 0 means DefaultPublishEvery.
func NewDaemon(ing *Ingester, feed BlockFeed, publishEvery int) *Daemon {
	return NewDaemonOpts(ing, feed, DaemonOptions{PublishEvery: publishEvery})
}

// NewDaemonOpts wires ing to feed with full options.
func NewDaemonOpts(ing *Ingester, feed BlockFeed, opts DaemonOptions) *Daemon {
	if opts.PublishEvery <= 0 {
		opts.PublishEvery = DefaultPublishEvery
	}
	d := &Daemon{
		ing:          ing,
		feed:         feed,
		publishEvery: opts.PublishEvery,
		ck:           opts.Checkpoints,
		retry:        opts.Retry.normalize(),
	}
	d.appliedHeight.Store(ing.Height())
	return d
}

// Snapshot returns the latest published snapshot; safe from any goroutine.
func (d *Daemon) Snapshot() *Snapshot { return d.ing.Snapshot() }

// Applied returns how many blocks the daemon has applied in total; safe from
// any goroutine.
func (d *Daemon) Applied() int64 { return d.applied.Load() }

// Run ingests until the context is cancelled, closing the feed on the way
// out. A finite feed (SourceFeed over a chain file) reports io.EOF; Run
// publishes the final snapshot and then parks until cancellation, so the
// query API keeps answering after a bounded source drains. Cancellation is a
// clean shutdown (nil).
//
// Feed and apply errors are supervised: a transient error (IsTransient —
// marked at the source by the chain and p2p layers, or carrying an
// EAGAIN-class errno) is retried with the bounded exponential backoff the
// Retry policy sets, and the failure budget resets whenever a block applies.
// Once the budget is exceeded the daemon trips into the degraded state —
// Health and /v1/readyz report it, the last published snapshot keeps
// serving, and retries continue at the capped delay until the feed heals.
// Fatal (non-transient) errors and checkpoint-write failures are returned.
//
// If the Ingester starts above genesis (restored from a checkpoint), Run
// first rewinds the feed to the block after the restored tip. Every applied
// block must link to the current tip hash; one that does not means the
// restored state and the feed disagree about history, and the daemon rolls
// back until they agree — hash chaining makes the single tip comparison
// cover the entire prefix.
func (d *Daemon) Run(ctx context.Context) error {
	defer d.feed.Close()

	if d.ing.Height() >= 0 {
		if err := d.feed.Rewind(d.ing.Height() + 1); err != nil {
			var rw *RewindError
			if !errors.As(err, &rw) {
				return fmt.Errorf("serve: resume: %w", err)
			}
			if err := d.rollback(rw.Height); err != nil {
				return err
			}
		}
	}
	d.appliedHeight.Store(d.ing.Height())

	pub := newPublisher(d.ing, d.ck, d.testPublishGate)
	defer pub.stop()

	pending := 0 // blocks applied since the last freeze
	for {
		b, err := d.feed.Next(ctx)
		var rw *RewindError
		switch {
		case errors.Is(err, io.EOF):
			if err := d.drain(pub, pending > 0); err != nil {
				return err
			}
			<-ctx.Done()
			return nil
		case errors.As(err, &rw):
			if rerr := d.rollback(rw.Height); rerr != nil {
				retry, ok := d.supervise(ctx, rerr)
				if !ok {
					return rerr
				}
				if !retry {
					return d.drain(pub, pending > 0)
				}
			}
			d.appliedHeight.Store(d.ing.Height())
			pending = 0
			continue
		case err != nil:
			if ctx.Err() != nil {
				return d.drain(pub, pending > 0)
			}
			retry, ok := d.supervise(ctx, err)
			if !ok {
				return fmt.Errorf("serve: feed: %w", err)
			}
			if !retry {
				return d.drain(pub, pending > 0)
			}
			continue
		}
		if b.Header.PrevBlock != d.ing.TipHash() {
			// The feed delivered a block that does not extend our state: the
			// restored checkpoint (or a partially replayed rollback) belongs
			// to a different history than the source now serves. Drop the
			// tip and retry; repeated mismatches walk back block by block
			// until the histories agree, bottoming out at genesis.
			if err := d.rollbackBelowTip(); err != nil {
				return err
			}
			d.appliedHeight.Store(d.ing.Height())
			pending = 0
			continue
		}
		for {
			aerr := d.apply(b)
			if aerr == nil {
				break
			}
			retry, ok := d.supervise(ctx, aerr)
			if !ok {
				return fmt.Errorf("serve: apply block: %w", aerr)
			}
			if !retry {
				return d.drain(pub, pending > 0)
			}
		}
		d.applied.Add(1)
		d.appliedHeight.Store(d.ing.Height())
		d.noteProgress()
		pending++
		if pending >= d.publishEvery || !d.feed.Buffered() {
			if err := pub.err(); err != nil {
				return fmt.Errorf("serve: checkpoint: %w", err)
			}
			pub.submit(d.ing.freeze())
			pending = 0
		}
	}
}

// apply runs one block through the fault-injection seam and the ingester.
// The seam fires before any state mutates, so a retried injection re-applies
// a block the ingester has not seen.
func (d *Daemon) apply(b *chain.Block) error {
	if d.testApplyFault != nil {
		if err := d.testApplyFault(b); err != nil {
			return err
		}
	}
	return d.ing.ApplyBlock(b)
}

// supervise classifies one feed/apply/rollback error. It returns ok=false
// for a fatal error (not transient, or supervision disabled): the caller
// returns the error. For a transient error it records the failure —
// tripping the degraded state when the budget is exceeded — and backs off;
// retry=false means ctx ended during the backoff and the caller should shut
// down cleanly.
func (d *Daemon) supervise(ctx context.Context, err error) (retry, ok bool) {
	if d.retry.Max < 0 || !IsTransient(err) {
		return false, false
	}
	failures := d.noteFailure(err)
	return d.sleepBackoff(ctx, failures), true
}

// drain stops the publish worker, surfaces any checkpoint error it latched,
// and synchronously publishes any blocks applied since the last freeze — the
// shared shutdown path for EOF and cancellation.
func (d *Daemon) drain(pub *publisher, pending bool) error {
	pub.stop()
	if err := pub.err(); err != nil {
		return fmt.Errorf("serve: checkpoint: %w", err)
	}
	if pending {
		if err := d.publishNow(); err != nil {
			return err
		}
	}
	return nil
}

// publishNow freezes and publishes synchronously on the ingest goroutine —
// the final-snapshot path once the publish worker has stopped.
func (d *Daemon) publishNow() error {
	sub := d.ing.freeze()
	d.ing.publishFrom(sub)
	if d.ck != nil {
		if err := d.ck.saveSub(sub); err != nil {
			return fmt.Errorf("serve: checkpoint: %w", err)
		}
	}
	return nil
}

// rollback rewinds the live state below fork — adopting the newest
// checkpoint at or below fork-1, or resetting to genesis without one — and
// repoints the feed at the first block the state is missing. A nested
// RewindError from the feed (the source moved again mid-rollback) recurses;
// the feed's own progress guards bound that.
func (d *Daemon) rollback(fork int64) error {
	target := fork - 1
	restored := false
	if d.ck != nil {
		ing, ok, err := d.ck.loadAtOrBelow(d.ing.an, target)
		if err != nil {
			return fmt.Errorf("serve: rollback to height %d: %w", target, err)
		}
		if ok {
			d.ing.adoptFrom(ing)
			restored = true
		}
	}
	if !restored {
		d.ing.reset()
	}
	if err := d.feed.Rewind(d.ing.Height() + 1); err != nil {
		var rw *RewindError
		if errors.As(err, &rw) {
			return d.rollback(rw.Height)
		}
		return fmt.Errorf("serve: rollback: %w", err)
	}
	return nil
}

// rollbackBelowTip handles a delivered block that does not extend the
// current tip: roll back the tip block itself (the deepest state the fork
// could be at, since the feed's own prefix check passed) and let the next
// iteration re-check. At genesis there is nothing left to unwind — the feed
// is serving a chain that never matched this state.
func (d *Daemon) rollbackBelowTip() error {
	h := d.ing.Height()
	if h < 0 {
		return errors.New("serve: feed delivered a block that does not connect to genesis")
	}
	return d.rollback(h)
}
