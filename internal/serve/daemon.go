package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
)

// DefaultPublishEvery is how many applied blocks a snapshot publish may lag
// behind when the feed is backlogged (catching up through a long chain
// file). At the tip the daemon publishes after every block regardless.
const DefaultPublishEvery = 64

// Daemon ties an Ingester to a BlockFeed: apply every block, publish a
// fresh snapshot whenever the feed idles (and at least every publishEvery
// blocks while catching up). One Daemon per Ingester; Run owns the feed.
type Daemon struct {
	ing          *Ingester
	feed         BlockFeed
	publishEvery int
}

// NewDaemon wires ing to feed. publishEvery <= 0 means DefaultPublishEvery.
func NewDaemon(ing *Ingester, feed BlockFeed, publishEvery int) *Daemon {
	if publishEvery <= 0 {
		publishEvery = DefaultPublishEvery
	}
	return &Daemon{ing: ing, feed: feed, publishEvery: publishEvery}
}

// Snapshot returns the latest published snapshot; safe from any goroutine.
func (d *Daemon) Snapshot() *Snapshot { return d.ing.Snapshot() }

// Run ingests until the context is cancelled, closing the feed on the way
// out. A finite feed (SourceFeed over a chain file) reports io.EOF; Run
// publishes the final snapshot and then parks until cancellation, so the
// query API keeps answering after a bounded source drains. Cancellation is a
// clean shutdown (nil); any other feed or apply error is returned.
func (d *Daemon) Run(ctx context.Context) error {
	defer d.feed.Close()
	pending := 0 // blocks applied since the last publish
	for {
		b, err := d.feed.Next(ctx)
		switch {
		case errors.Is(err, io.EOF):
			if pending > 0 {
				d.ing.Publish()
			}
			<-ctx.Done()
			return nil
		case err != nil:
			if ctx.Err() != nil {
				if pending > 0 {
					d.ing.Publish()
				}
				return nil
			}
			return fmt.Errorf("serve: feed: %w", err)
		}
		if err := d.ing.ApplyBlock(b); err != nil {
			return fmt.Errorf("serve: apply block: %w", err)
		}
		pending++
		if pending >= d.publishEvery || !d.feed.Buffered() {
			d.ing.Publish()
			pending = 0
		}
	}
}
