package serve

import "sync"

// Health state strings, as reported by Health.State and /v1/readyz.
const (
	StateOK       = "ok"
	StateDegraded = "degraded"
)

// Health is a point-in-time view of the daemon's supervision state, safe to
// read from any goroutine. It is what /v1/readyz serializes: the degraded
// flag drives the readiness verdict, and the applied-vs-published fields
// expose ingest and publish lag for dashboards and probes.
type Health struct {
	// State is StateOK or StateDegraded.
	State string `json:"state"`
	// Degraded reports that Max consecutive transient failures were
	// exceeded: the daemon is still serving its last published snapshot and
	// still retrying, but should be considered not ready for fresh traffic.
	Degraded bool `json:"degraded"`
	// ConsecutiveFailures is the current run of transient failures without
	// an applied block in between.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// TotalRetries counts every supervised retry over the daemon's lifetime.
	TotalRetries int64 `json:"total_retries"`
	// TimesDegraded counts degraded-state entries over the daemon's
	// lifetime; a recovery is visible as Degraded flipping back to false
	// without this counter moving.
	TimesDegraded int64 `json:"times_degraded"`
	// LastError is the most recent supervised failure, kept after recovery
	// for diagnostics; empty if the daemon never saw one.
	LastError string `json:"last_error,omitempty"`
	// AppliedBlocks counts blocks applied across the daemon's lifetime
	// (rollbacks do not reset it).
	AppliedBlocks int64 `json:"applied_blocks"`
	// AppliedHeight is the chain height the ingest loop has applied.
	AppliedHeight int64 `json:"applied_height"`
	// PublishedEpoch and PublishedHeight describe the snapshot queries are
	// currently answered from.
	PublishedEpoch  uint64 `json:"published_epoch"`
	PublishedHeight int64  `json:"published_height"`
	// PublishLag is how many applied blocks the published snapshot trails
	// by — nonzero while the publish worker is catching up.
	PublishLag int64 `json:"publish_lag"`
}

// healthState is the mutex-guarded slice of Daemon state the supervision
// loop writes and Health reads; only plain field accesses happen under the
// lock.
type healthState struct {
	mu            sync.Mutex
	degraded      bool
	consecutive   int
	retriesTotal  int64
	timesDegraded int64
	lastErr       string
}

// noteFailure records one supervised transient failure and returns the new
// consecutive-failure count, tripping the degraded state when the policy's
// budget is exceeded.
func (d *Daemon) noteFailure(err error) int {
	h := &d.health
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecutive++
	h.retriesTotal++
	h.lastErr = err.Error()
	if !h.degraded && h.consecutive > d.retry.Max {
		h.degraded = true
		h.timesDegraded++
	}
	return h.consecutive
}

// noteProgress resets the failure budget after an applied block, clearing
// the degraded state (recovery). LastError is kept for diagnostics.
func (d *Daemon) noteProgress() {
	h := &d.health
	h.mu.Lock()
	h.consecutive = 0
	h.degraded = false
	h.mu.Unlock()
}

// Health returns the daemon's current supervision state; safe from any
// goroutine.
func (d *Daemon) Health() Health {
	s := d.Snapshot()
	hs := &d.health
	hs.mu.Lock()
	h := Health{
		Degraded:            hs.degraded,
		ConsecutiveFailures: hs.consecutive,
		TotalRetries:        hs.retriesTotal,
		TimesDegraded:       hs.timesDegraded,
		LastError:           hs.lastErr,
	}
	hs.mu.Unlock()
	h.State = StateOK
	if h.Degraded {
		h.State = StateDegraded
	}
	h.AppliedBlocks = d.applied.Load()
	h.AppliedHeight = d.appliedHeight.Load()
	h.PublishedEpoch, h.PublishedHeight = s.Epoch, s.Height
	if lag := h.AppliedHeight - h.PublishedHeight; lag > 0 {
		h.PublishLag = lag
	}
	return h
}
