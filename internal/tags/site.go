package tags

import (
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"
)

// Site serves synthetic blockchain.info/tags-style pages over HTTP so the
// crawler has something realistic to scrape: paginated HTML tables of
// (service, address) rows plus a forum section with addresses embedded in
// free-form signatures. It stands in for the public tag sources of
// Section 3.2.
type Site struct {
	tags    []Tag
	perPage int
}

// NewSite builds a site over the given tags, perPage rows per index page.
func NewSite(siteTags []Tag, perPage int) *Site {
	if perPage <= 0 {
		perPage = 50
	}
	sorted := append([]Tag(nil), siteTags...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Service != sorted[j].Service {
			return sorted[i].Service < sorted[j].Service
		}
		return sorted[i].Addr.String() < sorted[j].Addr.String()
	})
	return &Site{tags: sorted, perPage: perPage}
}

// Pages returns the number of index pages the site serves.
func (s *Site) Pages() int {
	if len(s.tags) == 0 {
		return 1
	}
	return (len(s.tags) + s.perPage - 1) / s.perPage
}

// ServeHTTP implements http.Handler: "/" and "/tags?page=N" serve the tag
// table; "/forum" serves signature-style pages; anything else is 404.
func (s *Site) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/", "/tags":
		s.serveTagPage(w, r)
	case "/forum":
		s.serveForum(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *Site) serveTagPage(w http.ResponseWriter, r *http.Request) {
	page, _ := strconv.Atoi(r.URL.Query().Get("page"))
	if page < 0 || page >= s.Pages() {
		http.NotFound(w, r)
		return
	}
	lo := page * s.perPage
	hi := lo + s.perPage
	if hi > len(s.tags) {
		hi = len(s.tags)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><head><title>Address Tags - page %d</title></head><body>\n", page)
	fmt.Fprintf(w, "<table>\n")
	for _, t := range s.tags[lo:hi] {
		fmt.Fprintf(w, "<tr><td class=\"tag\">%s</td><td class=\"addr\">%s</td></tr>\n",
			html.EscapeString(t.Service), t.Addr)
	}
	fmt.Fprintf(w, "</table>\n")
	if page+1 < s.Pages() {
		fmt.Fprintf(w, "<a href=\"/tags?page=%d\">next</a>\n", page+1)
	}
	fmt.Fprintf(w, "<a href=\"/forum\">forum</a>\n")
	fmt.Fprintf(w, "</body></html>\n")
}

func (s *Site) serveForum(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><head><title>Forum</title></head><body>\n")
	// Forum posts embed addresses in free text; the crawler must fall back
	// to address scanning and attribute them to the post author.
	for i, t := range s.tags {
		if i%7 != 0 { // only some users sign their posts with an address
			continue
		}
		fmt.Fprintf(w, "<div class=\"post\"><b>%s</b>: selling hardware, donations to %s — thanks!</div>\n",
			html.EscapeString(t.Service), t.Addr)
	}
	fmt.Fprintf(w, "</body></html>\n")
}
