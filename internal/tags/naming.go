package tags

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/txgraph"
)

// Naming is the result of propagating tags onto clusters: the condensed
// graph "in which nodes represent entire users and services rather than
// individual public keys".
type Naming struct {
	// ClusterService maps a cluster label to the service name it was tagged
	// with; absent labels are unnamed.
	ClusterService map[int32]string
	// ClusterCategory maps a cluster label to its service category.
	ClusterCategory map[int32]Category

	// NamedClusters is the number of clusters that received a name.
	NamedClusters int
	// NamedAddresses is the number of addresses inside named clusters —
	// the paper's "accounting for over 1.8 million addresses".
	NamedAddresses int
	// TaggedAddresses is the number of tagged addresses that appear on
	// chain (the bootstrap set).
	TaggedAddresses int
	// Amplification = NamedAddresses / TaggedAddresses: how many times more
	// addresses clustering names than tagging alone (the paper's 1,600x).
	Amplification float64
	// Conflicts counts clusters where equally reliable tags disagree on the
	// service name; the most common name wins.
	Conflicts int
	// DistinctServices is the number of distinct service names assigned.
	DistinctServices int
	// CollapsedUsers is the cluster count after merging clusters that share
	// a name — the paper's 3,384,179 → 3,383,904 collapse.
	CollapsedUsers int
}

// NameClusters propagates the store's tags onto the clustering. Within a
// cluster, the most reliable source wins; among tags of equal reliability
// the most frequent service name wins (ties by lexicographic order for
// determinism).
func NameClusters(c *cluster.Clustering, g *txgraph.Graph, s *Store) *Naming {
	type vote struct {
		source Source
		count  int
	}
	votes := make(map[int32]map[string]*vote)
	catOf := make(map[string]Category)
	tagged := 0
	for _, t := range s.All() {
		id, ok := g.LookupAddr(t.Addr)
		if !ok {
			continue // tagged address never appeared on chain
		}
		tagged++
		label := c.ClusterOf(id)
		m := votes[label]
		if m == nil {
			m = make(map[string]*vote)
			votes[label] = m
		}
		v := m[t.Service]
		if v == nil {
			v = &vote{source: t.Source}
			m[t.Service] = v
		}
		if t.Source < v.source {
			v.source = t.Source
		}
		v.count++
		if _, ok := catOf[t.Service]; !ok || t.Source == SourceOwnTransaction {
			catOf[t.Service] = t.Category
		}
	}

	n := &Naming{
		ClusterService:  make(map[int32]string, len(votes)),
		ClusterCategory: make(map[int32]Category, len(votes)),
		TaggedAddresses: tagged,
	}
	for label, m := range votes {
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			vi, vj := m[names[i]], m[names[j]]
			if vi.source != vj.source {
				return vi.source < vj.source
			}
			if vi.count != vj.count {
				return vi.count > vj.count
			}
			return names[i] < names[j]
		})
		if len(names) > 1 {
			n.Conflicts++
		}
		winner := names[0]
		n.ClusterService[label] = winner
		n.ClusterCategory[label] = catOf[winner]
	}
	n.NamedClusters = len(n.ClusterService)

	sizes := c.ClusterSizes()
	services := make(map[string]struct{})
	for label, svc := range n.ClusterService {
		n.NamedAddresses += sizes[label]
		services[svc] = struct{}{}
	}
	n.DistinctServices = len(services)
	if n.TaggedAddresses > 0 {
		n.Amplification = float64(n.NamedAddresses) / float64(n.TaggedAddresses)
	}
	// Clusters sharing a name collapse into one user.
	n.CollapsedUsers = c.NumClusters() - (n.NamedClusters - n.DistinctServices)
	return n
}

// ServiceOf returns the service name for an address, via its cluster.
func (n *Naming) ServiceOf(c *cluster.Clustering, id txgraph.AddrID) (string, bool) {
	svc, ok := n.ClusterService[c.ClusterOf(id)]
	return svc, ok
}

// CategoryOf returns the category for an address, via its cluster.
func (n *Naming) CategoryOf(c *cluster.Clustering, id txgraph.AddrID) Category {
	return n.ClusterCategory[c.ClusterOf(id)]
}

// ClustersNamed returns, for each service name, how many clusters carry it —
// the paper's observation that Mt. Gox alone appeared as 20 clusters under
// Heuristic 1.
func (n *Naming) ClustersNamed() map[string]int {
	out := make(map[string]int)
	for _, svc := range n.ClusterService {
		out[svc]++
	}
	return out
}

// ServiceAddrSet expands the named clusters of the given services into a set
// of member addresses. The paper's refined Heuristic 2 uses this to bootstrap
// its dice-site suppression list: every address in a cluster that H1 naming
// attributed to a listed service counts as belonging to it. Both the batch
// pipeline and the serve daemon derive their dice sets through this one
// function so the two paths cannot drift.
func ServiceAddrSet(c *cluster.Clustering, n *Naming, g *txgraph.Graph, names []string) map[txgraph.AddrID]bool {
	want := make(map[string]bool, len(names))
	for _, name := range names {
		want[name] = true
	}
	labels := make(map[int32]bool)
	for label, svc := range n.ClusterService {
		if want[svc] {
			labels[label] = true
		}
	}
	out := make(map[txgraph.AddrID]bool)
	for id := 0; id < g.NumAddrs(); id++ {
		if labels[c.ClusterOf(txgraph.AddrID(id))] {
			out[txgraph.AddrID(id)] = true
		}
	}
	return out
}
