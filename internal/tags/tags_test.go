package tags

import (
	"net/http/httptest"
	"testing"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/chaintest"
	"repro/internal/cluster"
	"repro/internal/txgraph"
)

func addr(i uint64) address.Address {
	return address.NewKeyFromSeed(77, i).Address()
}

func TestStorePrefersReliableSources(t *testing.T) {
	s := NewStore()
	a := addr(1)
	if !s.Add(Tag{Addr: a, Service: "forum-guess", Source: SourceForum}) {
		t.Fatal("first add rejected")
	}
	if !s.Add(Tag{Addr: a, Service: "mtgox", Source: SourceOwnTransaction}) {
		t.Fatal("more reliable tag rejected")
	}
	if s.Add(Tag{Addr: a, Service: "other", Source: SourceTagSite}) {
		t.Fatal("less reliable tag overwrote own-transaction tag")
	}
	got, _ := s.Get(a)
	if got.Service != "mtgox" {
		t.Fatalf("service = %q, want mtgox", got.Service)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
}

func TestStoreAllSortedAndCounts(t *testing.T) {
	s := NewStore()
	for i := uint64(0); i < 10; i++ {
		src := SourceTagSite
		if i%2 == 0 {
			src = SourceOwnTransaction
		}
		s.Add(Tag{Addr: addr(i), Service: "svc", Source: src})
	}
	all := s.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Addr.String() > all[i].Addr.String() {
			t.Fatal("All() not sorted")
		}
	}
	counts := s.CountBySource()
	if counts[SourceOwnTransaction] != 5 || counts[SourceTagSite] != 5 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestNameClustersPropagatesTags(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("gox1")
	b.Coinbase("gox2")
	b.Coinbase("lone")
	b.Pay([]string{"gox1", "gox2"}, chaintest.Out{Name: "hot", Value: 100 * chain.Coin})
	b.Mine(1)

	g, err := txgraph.Build(b.Chain)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.Heuristic1(g, 0)
	s := NewStore()
	// Tag only gox1; the whole cluster {gox1, gox2} should be named.
	s.Add(Tag{Addr: b.Addr("gox1"), Service: "Mt. Gox", Category: CatBankExchange, Source: SourceOwnTransaction})
	n := NameClusters(c, g, s)

	gox2ID, _ := g.LookupAddr(b.Addr("gox2"))
	svc, ok := n.ServiceOf(c, gox2ID)
	if !ok || svc != "Mt. Gox" {
		t.Fatalf("gox2 service = %q (%v), want Mt. Gox", svc, ok)
	}
	if n.CategoryOf(c, gox2ID) != CatBankExchange {
		t.Fatal("category not propagated")
	}
	loneID, _ := g.LookupAddr(b.Addr("lone"))
	if _, ok := n.ServiceOf(c, loneID); ok {
		t.Fatal("unrelated cluster received a name")
	}
	if n.NamedClusters != 1 {
		t.Fatalf("NamedClusters = %d, want 1", n.NamedClusters)
	}
	if n.NamedAddresses != 2 {
		t.Fatalf("NamedAddresses = %d, want 2", n.NamedAddresses)
	}
	if n.TaggedAddresses != 1 {
		t.Fatalf("TaggedAddresses = %d, want 1", n.TaggedAddresses)
	}
	if n.Amplification != 2.0 {
		t.Fatalf("Amplification = %f, want 2.0", n.Amplification)
	}
}

func TestNameClustersCollapsesSameService(t *testing.T) {
	b := chaintest.New(t)
	// Two disjoint clusters both tagged Mt. Gox (the 20-clusters effect).
	b.Coinbase("goxA1")
	b.Coinbase("goxA2")
	b.Coinbase("goxB1")
	b.Coinbase("goxB2")
	b.Pay([]string{"goxA1", "goxA2"}, chaintest.Out{Name: "x", Value: 100 * chain.Coin})
	b.Mine(1)
	b.Pay([]string{"goxB1", "goxB2"}, chaintest.Out{Name: "y", Value: 100 * chain.Coin})
	b.Mine(1)

	g, err := txgraph.Build(b.Chain)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.Heuristic1(g, 0)
	s := NewStore()
	s.Add(Tag{Addr: b.Addr("goxA1"), Service: "Mt. Gox", Category: CatBankExchange, Source: SourceOwnTransaction})
	s.Add(Tag{Addr: b.Addr("goxB1"), Service: "Mt. Gox", Category: CatBankExchange, Source: SourceOwnTransaction})
	n := NameClusters(c, g, s)
	if n.NamedClusters != 2 {
		t.Fatalf("NamedClusters = %d, want 2", n.NamedClusters)
	}
	if got := n.ClustersNamed()["Mt. Gox"]; got != 2 {
		t.Fatalf("Mt. Gox clusters = %d, want 2", got)
	}
	if n.CollapsedUsers != c.NumClusters()-1 {
		t.Fatalf("CollapsedUsers = %d, want %d", n.CollapsedUsers, c.NumClusters()-1)
	}
}

func TestNameClustersConflictResolution(t *testing.T) {
	b := chaintest.New(t)
	b.Coinbase("a1")
	b.Coinbase("a2")
	b.Pay([]string{"a1", "a2"}, chaintest.Out{Name: "z", Value: 100 * chain.Coin})
	b.Mine(1)
	g, err := txgraph.Build(b.Chain)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.Heuristic1(g, 0)
	s := NewStore()
	// Forum says one thing, our own transaction says another: own-tx wins.
	s.Add(Tag{Addr: b.Addr("a1"), Service: "rumor-service", Source: SourceForum})
	s.Add(Tag{Addr: b.Addr("a2"), Service: "verified-service", Source: SourceOwnTransaction})
	n := NameClusters(c, g, s)
	a1, _ := g.LookupAddr(b.Addr("a1"))
	svc, _ := n.ServiceOf(c, a1)
	if svc != "verified-service" {
		t.Fatalf("winner = %q, want verified-service", svc)
	}
	if n.Conflicts != 1 {
		t.Fatalf("Conflicts = %d, want 1", n.Conflicts)
	}
}

func TestSiteAndCrawlerEndToEnd(t *testing.T) {
	var siteTags []Tag
	for i := uint64(0); i < 25; i++ {
		siteTags = append(siteTags, Tag{Addr: addr(100 + i), Service: "Svc", Source: SourceTagSite})
	}
	site := NewSite(siteTags, 10) // 3 pages
	srv := httptest.NewServer(site)
	defer srv.Close()

	c := &Crawler{Client: srv.Client()}
	got, err := c.Crawl(srv.URL + "/tags")
	if err != nil {
		t.Fatal(err)
	}
	bySource := map[Source]int{}
	addrs := map[address.Address]bool{}
	for _, tg := range got {
		bySource[tg.Source]++
		addrs[tg.Addr] = true
	}
	// All 25 table rows found across the 3 paginated pages.
	if bySource[SourceTagSite] != 25 {
		t.Fatalf("tag-site tags = %d, want 25 (sources %v)", bySource[SourceTagSite], bySource)
	}
	for i := uint64(0); i < 25; i++ {
		if !addrs[addr(100+i)] {
			t.Fatalf("address %d missing from crawl", i)
		}
	}
}

func TestCrawlerForumScanFallback(t *testing.T) {
	var siteTags []Tag
	for i := uint64(0); i < 8; i++ {
		siteTags = append(siteTags, Tag{Addr: addr(200 + i), Service: "Author", Source: SourceTagSite})
	}
	site := NewSite(siteTags, 100)
	srv := httptest.NewServer(site)
	defer srv.Close()

	c := &Crawler{Client: srv.Client()}
	got, err := c.Crawl(srv.URL + "/forum")
	if err != nil {
		t.Fatal(err)
	}
	forum := 0
	for _, tg := range got {
		if tg.Source == SourceForum {
			forum++
			if tg.Service != "Author" {
				t.Fatalf("forum tag attributed to %q", tg.Service)
			}
		}
	}
	if forum == 0 {
		t.Fatal("no forum tags extracted from signatures")
	}
}

func TestCrawlerHandles404AndPageLimit(t *testing.T) {
	site := NewSite(nil, 10)
	srv := httptest.NewServer(site)
	defer srv.Close()

	c := &Crawler{Client: srv.Client(), MaxPages: 2}
	if _, err := c.Crawl(srv.URL + "/nonexistent"); err != nil {
		t.Fatalf("crawler must skip dead pages, got error %v", err)
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		CatMining: "mining", CatWallet: "wallets", CatBankExchange: "exchanges",
		CatFixedExchange: "fixed", CatVendor: "vendors", CatGambling: "gambling",
		CatInvestment: "investment", CatMix: "mix", CatMisc: "misc",
		CatIndividual: "individual", CatThief: "thief", CatUnknown: "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}
