package tags

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"strings"
	"time"

	"repro/internal/address"
)

// Crawler scrapes tag pages the way the study harvested blockchain.info/tags
// and bitcointalk: fetch a seed page, extract (label, address) rows and
// free-text addresses, and follow same-host links breadth-first.
type Crawler struct {
	// Client is the HTTP client to use; nil means a client with a 10s
	// timeout.
	Client *http.Client
	// MaxPages bounds the crawl; 0 means 64.
	MaxPages int
	// MaxBody bounds how much of each response body is read; 0 means 1 MiB.
	MaxBody int64
}

var (
	rowRe  = regexp.MustCompile(`(?s)<tr><td class="tag">(.*?)</td><td class="addr">([1-9A-HJ-NP-Za-km-z]+)</td></tr>`)
	postRe = regexp.MustCompile(`(?s)<div class="post"><b>(.*?)</b>:(.*?)</div>`)
	hrefRe = regexp.MustCompile(`<a href="([^"]+)"`)
)

// Crawl fetches pages starting at seedURL and returns the tags it finds.
// Table rows become SourceTagSite tags; forum posts become SourceForum tags
// attributed to the post author. Addresses failing checksum validation are
// discarded.
func (c *Crawler) Crawl(seedURL string) ([]Tag, error) {
	client := c.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	maxPages := c.MaxPages
	if maxPages == 0 {
		maxPages = 64
	}
	maxBody := c.MaxBody
	if maxBody == 0 {
		maxBody = 1 << 20
	}

	seed, err := url.Parse(seedURL)
	if err != nil {
		return nil, fmt.Errorf("tags: bad seed url: %w", err)
	}
	queue := []*url.URL{seed}
	visited := map[string]bool{}
	var out []Tag
	// Dedupe per (address, source): the same address may legitimately be
	// found both in the tag table and in a forum signature, and the Store
	// resolves which source wins.
	type found struct {
		addr   address.Address
		source Source
	}
	seen := map[found]bool{}

	for len(queue) > 0 && len(visited) < maxPages {
		u := queue[0]
		queue = queue[1:]
		key := u.String()
		if visited[key] {
			continue
		}
		visited[key] = true

		body, err := fetch(client, u.String(), maxBody)
		if err != nil {
			// Dead links are routine when scraping; skip and continue.
			continue
		}

		for _, m := range rowRe.FindAllStringSubmatch(body, -1) {
			a, err := address.Decode(m[2])
			if err != nil {
				continue // lookalike or corrupted address
			}
			if seen[found{a, SourceTagSite}] {
				continue
			}
			seen[found{a, SourceTagSite}] = true
			out = append(out, Tag{Addr: a, Service: htmlUnescape(m[1]), Source: SourceTagSite})
		}
		for _, m := range postRe.FindAllStringSubmatch(body, -1) {
			authorName := htmlUnescape(m[1])
			for _, a := range address.Scan(m[2]) {
				if seen[found{a, SourceForum}] {
					continue
				}
				seen[found{a, SourceForum}] = true
				out = append(out, Tag{Addr: a, Service: authorName, Source: SourceForum})
			}
		}
		for _, m := range hrefRe.FindAllStringSubmatch(body, -1) {
			ref, err := url.Parse(m[1])
			if err != nil {
				continue
			}
			next := u.ResolveReference(ref)
			if next.Host != seed.Host {
				continue // stay on the seed host
			}
			if !visited[next.String()] {
				queue = append(queue, next)
			}
		}
	}
	return out, nil
}

func fetch(client *http.Client, u string, maxBody int64) (string, error) {
	resp, err := client.Get(u)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("tags: GET %s: status %d", u, resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// htmlUnescape handles the few entities the site emits.
func htmlUnescape(s string) string {
	r := strings.NewReplacer("&amp;", "&", "&lt;", "<", "&gt;", ">", "&#34;", `"`, "&#39;", "'")
	return strings.TrimSpace(r.Replace(s))
}
