// Package tags implements the paper's data-collection pipeline (Section 3):
// a store of address → real-world-service labels gathered from the
// researcher's own transactions (highest confidence), a blockchain.info-
// style tag site, and forum scrapes (lower confidence); plus the cluster
// naming step that transitively taints every address in a cluster with the
// cluster's known service identity (Section 4.1).
package tags

import (
	"sort"

	"repro/internal/address"
)

// Category groups services the way Table 1 and Figure 2 do.
type Category int

// Service categories. The order is the presentation order used in tables.
const (
	CatUnknown Category = iota
	CatMining
	CatWallet
	CatBankExchange  // real-time trading exchanges that hold balances
	CatFixedExchange // fixed-rate, one-time conversion exchanges
	CatVendor
	CatGambling
	CatInvestment
	CatMix // mix/laundry services
	CatMisc
	CatIndividual // ordinary users
	CatThief
)

// Categories lists all service categories in presentation order.
var Categories = []Category{
	CatMining, CatWallet, CatBankExchange, CatFixedExchange,
	CatVendor, CatGambling, CatInvestment, CatMix, CatMisc,
}

// String names the category as the paper's figures do.
func (c Category) String() string {
	switch c {
	case CatMining:
		return "mining"
	case CatWallet:
		return "wallets"
	case CatBankExchange:
		return "exchanges"
	case CatFixedExchange:
		return "fixed"
	case CatVendor:
		return "vendors"
	case CatGambling:
		return "gambling"
	case CatInvestment:
		return "investment"
	case CatMix:
		return "mix"
	case CatMisc:
		return "misc"
	case CatIndividual:
		return "individual"
	case CatThief:
		return "thief"
	default:
		return "unknown"
	}
}

// Source ranks how a tag was obtained; lower values are more trustworthy
// (Section 3 treats scraped tags as "less reliable than our own observed
// data").
type Source int

// Tag sources, most reliable first.
const (
	SourceOwnTransaction Source = iota // we transacted with the service
	SourceTagSite                      // blockchain.info/tags analogue
	SourceForum                        // bitcointalk-style scrape
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceOwnTransaction:
		return "own-tx"
	case SourceTagSite:
		return "tag-site"
	case SourceForum:
		return "forum"
	default:
		return "unknown"
	}
}

// Tag labels one address as controlled by a known service.
type Tag struct {
	Addr     address.Address
	Service  string
	Category Category
	Source   Source
}

// Store holds tags keyed by address, keeping the most reliable source when
// the same address is tagged more than once.
type Store struct {
	byAddr map[address.Address]Tag
}

// NewStore returns an empty tag store.
func NewStore() *Store {
	return &Store{byAddr: make(map[address.Address]Tag)}
}

// Add inserts a tag, returning true if it was stored (new address, or more
// reliable than the existing tag for that address).
func (s *Store) Add(t Tag) bool {
	old, ok := s.byAddr[t.Addr]
	if ok && old.Source <= t.Source {
		return false
	}
	s.byAddr[t.Addr] = t
	return true
}

// AddAll inserts a batch of tags, returning how many were stored.
func (s *Store) AddAll(tags []Tag) int {
	n := 0
	for _, t := range tags {
		if s.Add(t) {
			n++
		}
	}
	return n
}

// Get returns the tag for an address.
func (s *Store) Get(a address.Address) (Tag, bool) {
	t, ok := s.byAddr[a]
	return t, ok
}

// Len returns the number of tagged addresses.
func (s *Store) Len() int { return len(s.byAddr) }

// CountBySource returns how many stored tags came from each source.
func (s *Store) CountBySource() map[Source]int {
	out := make(map[Source]int)
	for _, t := range s.byAddr {
		out[t.Source]++
	}
	return out
}

// All returns every tag sorted by address string for determinism.
func (s *Store) All() []Tag {
	out := make([]Tag, 0, len(s.byAddr))
	for _, t := range s.byAddr {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Addr.String() < out[j].Addr.String()
	})
	return out
}
