// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON document (stdout) for CI artifacts: one entry per benchmark result
// with every metric parsed — including custom B.ReportMetric units such as
// the streaming build's peak-heap-bytes — plus the benchmark context lines
// (goos, goarch, pkg, cpu) and the raw result lines, so the artifact stays
// benchstat-comparable while being trivially machine-readable.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=1x ./... | benchjson > BENCH_pr.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmarks and the
	// GOMAXPROCS suffix, e.g. "BenchmarkStreamingBuild/stream-8".
	Name string `json:"name"`
	// Runs is the iteration count (b.N).
	Runs int64 `json:"runs"`
	// Metrics maps unit -> value, e.g. "ns/op", "B/op", "peak-heap-bytes".
	Metrics map[string]float64 `json:"metrics"`
	// Line is the raw benchmark line, preserved so the JSON artifact can be
	// converted back into benchstat input losslessly.
	Line string `json:"line"`
}

// Report is the whole converted run.
type Report struct {
	// Context holds the run's goos/goarch/pkg/cpu header lines keyed by
	// field name; pkg may appear once per package and keeps the last value.
	Context map[string]string `json:"context"`
	// Benchmarks lists every parsed result in input order.
	Benchmarks []Result `json:"benchmarks"`
}

// parseLine parses one benchmark result line, reporting ok=false for
// non-benchmark lines (context, PASS/ok trailers, test chatter).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs, Metrics: make(map[string]float64), Line: line}
	// The remainder alternates "value unit".
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}

// contextField extracts a "key: value" benchmark header line.
func contextField(line string) (key, value string, ok bool) {
	for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
		if rest, found := strings.CutPrefix(line, k+": "); found {
			return k, strings.TrimSpace(rest), true
		}
	}
	return "", "", false
}

// convert parses a whole -bench output stream into a Report.
func convert(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Context: make(map[string]string)}
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := contextField(line); ok {
			rep.Context[k] = v
			continue
		}
		if r, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	return rep, sc.Err()
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	rep, err := convert(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
