package main

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzConvert drives the -bench output parser with arbitrary text. The
// parser must not panic, must never error on any input a bufio.Scanner
// will hand it, every parsed result must carry at least one metric with
// the raw line preserved, and the report must always encode to JSON.
func FuzzConvert(f *testing.F) {
	f.Add("goos: linux\ngoarch: amd64\npkg: repro/internal/txgraph\ncpu: fake\nBenchmarkStreamingBuild/stream-8 \t 10\t 123456 ns/op\t 7890 B/op\t 12 allocs/op\nPASS\nok  \trepro/internal/txgraph\t1.234s\n")
	f.Add("BenchmarkX 1 2 ns/op 3 peak-heap-bytes\n")
	f.Add("BenchmarkNoMetrics 100\n")
	f.Add("Benchmark 1 notanumber ns/op\n")
	f.Add("pkg: one\npkg: two\n")
	f.Add("")
	f.Add("BenchmarkTrailing 5 1.5 ns/op extra\n")
	f.Fuzz(func(t *testing.T, input string) {
		rep, err := convert(bufio.NewScanner(strings.NewReader(input)))
		if err != nil {
			t.Fatalf("convert errored on scanner input: %v", err)
		}
		for _, r := range rep.Benchmarks {
			if len(r.Metrics) == 0 {
				t.Fatalf("result %q accepted with no metrics", r.Line)
			}
			if r.Line == "" {
				t.Fatalf("result %q lost its raw line", r.Name)
			}
			if !strings.HasPrefix(r.Name, "Benchmark") {
				t.Fatalf("non-benchmark name %q accepted", r.Name)
			}
		}
		if _, err := json.Marshal(rep); err != nil {
			t.Fatalf("report does not marshal: %v", err)
		}
	})
}
