package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStreamingBuild/in-memory         	       1	  35473344 ns/op	  29715560 peak-heap-bytes	     11186 txs
BenchmarkStreamingBuild/stream            	       1	  49809424 ns/op	  25893680 peak-heap-bytes	     11186 txs
BenchmarkHeuristic1/par-8   	     100	    153846 ns/op	     12 B/op	       0 allocs/op
--- BENCH: BenchmarkFigure1
    some free-form test output
PASS
ok  	repro	4.223s
`

func TestConvert(t *testing.T) {
	rep, err := convert(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Context["cpu"]; !strings.HasPrefix(got, "Intel") {
		t.Fatalf("cpu context = %q", got)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	stream := rep.Benchmarks[1]
	if stream.Name != "BenchmarkStreamingBuild/stream" {
		t.Fatalf("name = %q", stream.Name)
	}
	if stream.Runs != 1 {
		t.Fatalf("runs = %d", stream.Runs)
	}
	if stream.Metrics["peak-heap-bytes"] != 25893680 {
		t.Fatalf("peak-heap-bytes = %v", stream.Metrics["peak-heap-bytes"])
	}
	h1 := rep.Benchmarks[2]
	if h1.Metrics["allocs/op"] != 0 || h1.Metrics["B/op"] != 12 {
		t.Fatalf("h1 metrics = %v", h1.Metrics)
	}
	if !strings.Contains(h1.Line, "BenchmarkHeuristic1/par-8") {
		t.Fatal("raw line not preserved")
	}
}

func TestParseLineRejectsNonBenchLines(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \trepro\t4.223s",
		"Benchmark definitely not numbers here",
		"BenchmarkX 12", // no metrics
		"--- BENCH: BenchmarkFigure1",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("line %q parsed as a benchmark", line)
		}
	}
}
