package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	fistful "repro"
	"repro/internal/serve"
)

// serveConfig holds the parsed serve flags; registerServeFlags is split out
// so the flag-drift test can enumerate exactly what `fistful serve` accepts.
type serveConfig struct {
	small          *bool
	seed           *int64
	parallel       *int
	listen         *string
	publishEvery   *int
	chainFile      *string
	checkpointDir  *string
	checkpointKeep *int
	retryMax       *int
	retryBaseDelay *time.Duration
	retryMaxDelay  *time.Duration
}

// registerServeFlags declares every `fistful serve` flag on fs.
func registerServeFlags(fs *flag.FlagSet) *serveConfig {
	c := &serveConfig{}
	c.small, c.seed = configFlags(fs)
	c.parallel = parallelFlag(fs)
	c.listen = fs.String("listen", "127.0.0.1:8080", "address to serve the query API on")
	c.publishEvery = fs.Int("publish-every", 0,
		"max blocks a snapshot may lag during catch-up (0 = default); at the tip every block publishes")
	c.chainFile = fs.String("chain", "",
		"tail this framed chain file (following appends live) instead of generating an\n"+
			"economy in memory; the ground truth is regenerated from the same config/seed")
	c.checkpointDir = fs.String("checkpoint", "",
		"persist a checkpoint of every published epoch into this directory and resume\n"+
			"from the newest one on restart (see docs/OPERATIONS.md)")
	c.checkpointKeep = fs.Int("checkpoint-keep", 0,
		"how many newest checkpoints to retain (0 = default)")
	c.retryMax = fs.Int("retry-max", 0,
		"consecutive transient feed failures tolerated before the daemon reports itself\n"+
			"degraded on /v1/readyz — it keeps serving and retrying either way\n"+
			"(0 = default, negative disables retrying: any transient error is fatal)")
	c.retryBaseDelay = fs.Duration("retry-base-delay", 0,
		"first backoff delay after a transient feed failure (0 = default)")
	c.retryMaxDelay = fs.Duration("retry-max-delay", 0,
		"cap on the exponential retry backoff (0 = default)")
	return c
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	c := registerServeFlags(fs)
	fs.Parse(args)

	opts := fistful.ServeOptions{
		Options:        fistful.Options{Parallelism: *c.parallel},
		PublishEvery:   *c.publishEvery,
		CheckpointDir:  *c.checkpointDir,
		CheckpointKeep: *c.checkpointKeep,
		Retry: serve.RetryPolicy{
			Max:       *c.retryMax,
			BaseDelay: *c.retryBaseDelay,
			MaxDelay:  *c.retryMaxDelay,
		},
	}
	if *c.chainFile != "" {
		opts.Source = fistful.SourceChainFile(*c.chainFile)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveMain(ctx, buildConfig(*c.small, *c.seed), opts, *c.listen, os.Stderr, nil)
}

// serveMain builds the server, binds the listener, and runs the ingest
// daemon and the HTTP API until ctx ends or either fails; the other is then
// shut down and both goroutines are joined. ready, when non-nil, receives
// the bound address once the API is reachable — the e2e test's hook.
func serveMain(ctx context.Context, cfg fistful.Config, opts fistful.ServeOptions,
	listen string, out io.Writer, ready chan<- string) error {
	srv, err := fistful.NewServer(ctx, cfg, opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serving queries on http://%s (ctrl-c to stop)\n", ln.Addr())

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	//lint:ignore fistlint/leakclose hs is released on every path via the graceful hs.Shutdown below; the analyzer only recognizes Close/Flush
	hs := srv.HTTPServer("")
	errc := make(chan error, 2)
	go func() { errc <- srv.Run(runCtx) }()
	go func() {
		if serr := hs.Serve(ln); !errors.Is(serr, http.ErrServerClosed) {
			errc <- serr
			return
		}
		errc <- nil
	}()
	if ready != nil {
		ready <- ln.Addr().String()
	}

	joined := 0
	select {
	case <-runCtx.Done():
	case err = <-errc:
		joined++
		cancel() // one side failed (or finished); bring the other down
	}
	//lint:ignore fistlint/ctxflow ctx is already done (or a side failed) by the time we drain; the shutdown deadline must not inherit that cancellation or Shutdown would abort instantly
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if serr := hs.Shutdown(shutCtx); serr != nil && err == nil {
		err = serr
	}
	for ; joined < 2; joined++ {
		if e := <-errc; e != nil && err == nil {
			err = e
		}
	}
	return err
}
