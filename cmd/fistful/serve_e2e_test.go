package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	fistful "repro"
	"repro/internal/econ"
)

// smallServeConfig is a fast economy for end-to-end serving tests.
func smallServeConfig() fistful.Config {
	cfg := fistful.SmallConfig()
	cfg.Blocks, cfg.Users = 300, 60
	return cfg
}

// getJSON fetches one API response into out, failing on transport or status
// errors.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

type healthz struct {
	Epoch  uint64 `json:"epoch"`
	Height int64  `json:"height"`
}

// waitForHeight polls /v1/healthz until the daemon reports the target
// height.
func waitForHeight(t *testing.T, base string, want int64) healthz {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var hz healthz
		getJSON(t, base+"/v1/healthz", &hz)
		if hz.Height == want {
			return hz
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon stuck at height %d, want %d", hz.Height, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runServe starts serveMain on an ephemeral port and returns the API base
// URL plus the Run error channel; the context ends the server.
func runServe(t *testing.T, ctx context.Context, cfg fistful.Config, opts fistful.ServeOptions) (string, <-chan error) {
	t.Helper()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- serveMain(ctx, cfg, opts, "127.0.0.1:0", io.Discard, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, done
	case err := <-done:
		t.Fatalf("serve exited before ready: %v", err)
		return "", nil
	}
}

// TestServeE2EGenerate is the smoke path CI runs: generate an economy in
// memory, serve it, watch the daemon reach the tip, answer stats and
// cluster queries, then shut down cleanly on cancellation.
func TestServeE2EGenerate(t *testing.T) {
	cfg := smallServeConfig()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := runServe(t, ctx, cfg, fistful.ServeOptions{
		Options: fistful.Options{Parallelism: 2},
	})

	hz := waitForHeight(t, base, cfg.Blocks-1)
	if hz.Epoch < 2 {
		t.Fatalf("epoch %d after full catch-up, want >= 2", hz.Epoch)
	}

	var stats struct {
		Txs     int `json:"txs"`
		Addrs   int `json:"addrs"`
		Refined struct {
			Clusters      int `json:"clusters"`
			NamedClusters int `json:"named_clusters"`
		} `json:"refined"`
	}
	getJSON(t, base+"/v1/stats", &stats)
	if stats.Txs == 0 || stats.Addrs == 0 {
		t.Fatalf("empty stats after catch-up: %+v", stats)
	}
	if stats.Refined.NamedClusters == 0 {
		t.Fatalf("no named clusters: tag store not wired into the daemon: %+v", stats)
	}

	var members struct {
		Members []string `json:"members"`
	}
	getJSON(t, fmt.Sprintf("%s/v1/cluster/members?label=0&limit=3", base), &members)
	if len(members.Members) == 0 {
		t.Fatal("cluster 0 has no members")
	}
	var cl struct {
		Addr    string `json:"addr"`
		Refined struct {
			Size int `json:"size"`
		} `json:"refined"`
	}
	getJSON(t, base+"/v1/cluster?addr="+members.Members[0], &cl)
	if cl.Addr != members.Members[0] || cl.Refined.Size < 1 {
		t.Fatalf("cluster lookup round-trip broken: %+v", cl)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down after cancellation")
	}
}

// TestServeE2ETailChainFile covers the `-chain` path end to end: a chain
// file written by the generator is tailed by the daemon, which regenerates
// the same world for ground truth, catches up, and keeps serving at the
// tip.
func TestServeE2ETailChainFile(t *testing.T) {
	cfg := smallServeConfig()
	path := filepath.Join(t.TempDir(), "chain.bin")
	if _, err := econ.GenerateToFile(cfg, path); err != nil {
		t.Fatalf("generate chain file: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := runServe(t, ctx, cfg, fistful.ServeOptions{
		Options: fistful.Options{
			Parallelism: 2,
			Source:      fistful.SourceChainFile(path),
		},
	})

	waitForHeight(t, base, cfg.Blocks-1)

	var bal struct {
		Satoshis int64 `json:"satoshis"`
	}
	var members struct {
		Members []string `json:"members"`
	}
	getJSON(t, base+"/v1/cluster/members?label=0&limit=1", &members)
	if len(members.Members) == 0 {
		t.Fatal("no members to query balance for")
	}
	getJSON(t, base+"/v1/balance?addr="+members.Members[0], &bal)

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve shutdown: %v", err)
	}
}
