package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// TestServeFlagsDocumented pins `fistful serve`'s flag surface to its
// documentation in both directions: every registered flag must appear in the
// command's own help output and in the flags table of docs/OPERATIONS.md, and
// every flag that table documents must still be registered. Adding, renaming,
// or dropping a serve flag without updating the runbook fails here.
func TestServeFlagsDocumented(t *testing.T) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var help bytes.Buffer
	fs.SetOutput(&help)
	registerServeFlags(fs)
	fs.PrintDefaults()

	ops, err := os.ReadFile(filepath.Join("..", "..", "docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatalf("read docs/OPERATIONS.md: %v", err)
	}

	registered := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		registered[f.Name] = true
		if !bytes.Contains(help.Bytes(), []byte("-"+f.Name)) {
			t.Errorf("flag -%s missing from `fistful serve` help output", f.Name)
		}
		if !bytes.Contains(ops, []byte("`-"+f.Name+"`")) {
			t.Errorf("flag -%s not documented in docs/OPERATIONS.md", f.Name)
		}
	})
	if len(registered) == 0 {
		t.Fatal("registerServeFlags registered no flags")
	}

	// Reverse direction: the runbook's flags table rows look like
	// "| `-name` | default | meaning |"; each must name a live flag.
	row := regexp.MustCompile("(?m)^\\| `-([a-z-]+)` \\|")
	docRows := 0
	for _, m := range row.FindAllSubmatch(ops, -1) {
		docRows++
		if name := string(m[1]); !registered[name] {
			t.Errorf("docs/OPERATIONS.md documents -%s, which `fistful serve` does not register", name)
		}
	}
	if docRows == 0 {
		t.Fatal("found no flag rows in docs/OPERATIONS.md — has the flags table moved or been reformatted?")
	}
}
