package main

import (
	"fmt"
	"io"
	"time"

	"repro/internal/address"
	"repro/internal/chain"
	"repro/internal/p2p"
	"repro/internal/script"
)

// runP2PDemo reproduces Figure 1's six-step transaction lifecycle on a real
// TCP network: the merchant picks an address, the user forms and broadcasts
// a transaction, it floods to a miner, the miner finds a block, and the
// block floods back to the merchant.
func runP2PDemo(nodes int, w io.Writer) error {
	if nodes < 3 {
		nodes = 3
	}
	params := chain.MainNetParams()
	params.TargetBits = 14 // a few thousand hash attempts per block
	params.CoinbaseMaturity = 1

	start := time.Now()
	stamp := func(format string, args ...any) {
		fmt.Fprintf(w, "[%8s] ", time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(w, format+"\n", args...)
	}

	net, err := p2p.NewNetwork(p2p.Config{Params: params}, nodes)
	if err != nil {
		return err
	}
	defer net.Close()
	userNode, minerNode, merchantNode := net.Nodes[0], net.Nodes[1], net.Nodes[2]
	stamp("network up: %d nodes on localhost TCP", nodes)

	user := address.NewKeyFromSeed(99, 1)
	merchant := address.NewKeyFromSeed(99, 2)
	miner := address.NewKeyFromSeed(99, 3)

	// Fund the user.
	funding, err := minerNode.Mine(script.PayToAddr(user.Address()))
	if err != nil {
		return err
	}
	if _, err := minerNode.Mine(script.PayToAddr(miner.Address())); err != nil {
		return err
	}
	if !net.WaitHeight(1, 10*time.Second) {
		return fmt.Errorf("funding blocks did not propagate")
	}
	stamp("user funded with %v", funding.Txs[0].Outputs[0].Value)

	// Step 1-2: the merchant generates an address and sends it to the user.
	mpk := merchant.Address()
	stamp("step 1-2: merchant picks address %s and sends it to the user", mpk)

	// Step 3: the user forms the transaction transferring 0.7 BTC.
	subsidy := funding.Txs[0].Outputs[0].Value
	tx := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: chain.OutPoint{TxID: funding.Txs[0].TxID(), Index: 0}, Sequence: ^uint32(0)}},
		Outputs: []chain.TxOut{
			{Value: chain.BTC(0.7), PkScript: script.PayToAddr(mpk)},
			{Value: subsidy - chain.BTC(0.7) - chain.BTC(0.001), PkScript: script.PayToAddr(user.Address())},
		},
	}
	sig := user.Sign(chain.SigHash(tx, 0))
	tx.Inputs[0].SigScript = script.SigScript(sig, user.PubKey())
	stamp("step 3: user signs tx %s paying 0.7 BTC to the merchant", tx.TxID())

	// Step 4: broadcast; the transaction floods the network.
	if err := userNode.SubmitTx(tx); err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for minerNode.MempoolSize() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if minerNode.MempoolSize() == 0 {
		return fmt.Errorf("transaction did not reach the miner")
	}
	stamp("step 4: tx flooded the network; the miner's mempool has it")

	// Step 5: the miner works the nonce and incorporates the transaction.
	blk, err := minerNode.Mine(script.PayToAddr(miner.Address()))
	if err != nil {
		return err
	}
	stamp("step 5: miner found nonce %d; block %s contains %d txs",
		blk.Header.Nonce, blk.BlockHash(), len(blk.Txs))

	// Step 6: the block floods back; the merchant sees the payment settle.
	if !net.WaitHeight(2, 10*time.Second) {
		return fmt.Errorf("block did not propagate")
	}
	h := merchantNode.Height()
	stamp("step 6: block flooded the network; merchant node at height %d accepts payment", h)
	fmt.Fprintf(w, "\nFigure 1 lifecycle complete: payment settled in %v across %d nodes.\n",
		time.Since(start).Round(time.Millisecond), nodes)
	return nil
}
