// Command fistful runs the paper-reproduction pipeline from the command
// line: generate a synthetic economy, run the clustering heuristics, and
// print every table and figure of the evaluation.
//
// Usage:
//
//	fistful experiments [-small] [-seed N] [-csv]   # all tables & figures
//	fistful experiments -chain chain.bin            # stream the measurement side from disk
//	fistful experiments -chain chain.bin -reuse     # analyze a previously generated file
//	fistful generate -out chain.bin [-small]        # stream the chain to disk while sealing
//	fistful crawl [-small]                          # serve + crawl the tag site
//	fistful p2p-demo                                # Figure 1 over real TCP
//	fistful evasion [-small]                        # quantify heuristic evasion
//	fistful serve -chain chain.bin -checkpoint d/   # incremental ingestion daemon + query API
//
// The serve daemon's flags and runbook are documented in docs/OPERATIONS.md.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	fistful "repro"
	"repro/internal/econ"
	"repro/internal/report"
	"repro/internal/tags"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "crawl":
		err = cmdCrawl(os.Args[2:])
	case "p2p-demo":
		err = cmdP2PDemo(os.Args[2:])
	case "evasion":
		err = cmdEvasion(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fistful:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fistful <command> [flags]

commands:
  experiments   run every table and figure of the paper's evaluation
  generate      generate a synthetic chain and write it to disk
  crawl         serve the synthetic tag site over HTTP and crawl it
  p2p-demo      run the Figure 1 transaction lifecycle over TCP
  evasion       quantify heuristic evasion (the paper's open problem)
  serve         run the incremental ingestion daemon with an HTTP query API`)
}

func configFlags(fs *flag.FlagSet) (*bool, *int64) {
	small := fs.Bool("small", false, "use the small (fast) configuration")
	seed := fs.Int64("seed", 0, "override the economy RNG seed")
	return small, seed
}

func parallelFlag(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 0,
		"pipeline worker count (0 = one per CPU, 1 = sequential); results are identical for any value")
}

func chainFlag(fs *flag.FlagSet) *string {
	return fs.String("chain", "",
		"streaming mode: write the generated chain to this framed chain file and build the\n"+
			"measurement graph by streaming it back in bounded block windows (identical output)")
}

func buildConfig(small bool, seed int64) fistful.Config {
	cfg := fistful.DefaultConfig()
	if small {
		cfg = fistful.SmallConfig()
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	return cfg
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	small, seed := configFlags(fs)
	parallel := parallelFlag(fs)
	chainFile := chainFlag(fs)
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	samples := fs.Int("samples", 12, "figure 2 sample count")
	reuse := fs.Bool("reuse", false,
		"treat -chain as an existing file from a previous `generate` run with the same\n"+
			"config and seed, instead of writing it during generation")
	fs.Parse(args)

	if *reuse && *chainFile == "" {
		return fmt.Errorf("experiments: -reuse requires -chain")
	}
	start := time.Now()
	var (
		p   *fistful.Pipeline
		err error
	)
	switch {
	case *reuse:
		fmt.Fprintf(os.Stderr, "streaming pipeline from existing chain file %s...\n", *chainFile)
		p, err = fistful.NewPipelineFromChainFile(buildConfig(*small, *seed), *chainFile,
			fistful.Options{Parallelism: *parallel})
	case *chainFile != "":
		fmt.Fprintf(os.Stderr, "generating economy into %s and streaming pipeline from it...\n", *chainFile)
		p, err = fistful.NewPipelineOpts(buildConfig(*small, *seed),
			fistful.Options{Parallelism: *parallel, ChainFile: *chainFile})
	default:
		fmt.Fprintf(os.Stderr, "generating economy and running pipeline...\n")
		p, err = fistful.NewPipelineOpts(buildConfig(*small, *seed),
			fistful.Options{Parallelism: *parallel})
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pipeline ready in %v: %d txs, %d addresses, %d workers\n\n",
		time.Since(start).Round(time.Millisecond), p.Graph.NumTxs(), p.Graph.NumAddrs(), p.Parallelism)

	h1, _ := p.Heuristic1()
	h2, _, err := p.Heuristic2()
	if err != nil {
		return err
	}
	f2, _ := p.Figure2(*samples)
	t2, _ := p.Table2()
	t3, _ := p.Table3()
	tables := []*report.Table{p.Table1(), h1, h2, f2, t2, t3}
	for _, tbl := range tables {
		if *csv {
			fmt.Println(tbl.CSV())
		} else {
			fmt.Println(tbl.Render())
		}
	}
	fmt.Printf("self-change transaction share: %.1f%% (paper: 23%% in 2013-H1)\n",
		100*p.SelfChangeShare())
	fmt.Printf("total runtime %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	small, seed := configFlags(fs)
	parallel := parallelFlag(fs)
	out := fs.String("out", "chain.bin", "output file")
	fs.Parse(args)

	cfg := buildConfig(*small, *seed)
	cfg.SignWorkers = *parallel
	cfg.PipelineDepth = *parallel
	// Blocks are framed to disk as they are sealed — the seal pipeline
	// overlaps signing/validation/emission with building the next blocks —
	// so the file is complete the moment generation is.
	w, err := econ.GenerateToFile(cfg, *out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d blocks (%d txs) to %s\n", w.Chain.Height()+1, w.TxsGenerated, *out)
	return nil
}

func cmdCrawl(args []string) error {
	fs := flag.NewFlagSet("crawl", flag.ExitOnError)
	small, seed := configFlags(fs)
	fs.Parse(args)

	cfg := buildConfig(*small, *seed)
	cfg.Blocks = min64(cfg.Blocks, 1200) // the tag roster, not scale, matters here
	w, err := econ.Generate(cfg)
	if err != nil {
		return err
	}
	site := tags.NewSite(w.PublicTags, 40)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: site}
	//lint:ignore fistlint/errflow,fistlint/goleak Serve runs until the deferred Close returns ErrServerClosed; a demo server's lifecycle needs no error plumbing or join
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String() + "/tags"
	fmt.Printf("serving synthetic tag site at %s (%d tags, %d pages)\n",
		url, len(w.PublicTags), site.Pages())

	crawler := &tags.Crawler{MaxPages: 128}
	found, err := crawler.Crawl(url)
	if err != nil {
		return err
	}
	bySource := map[tags.Source]int{}
	for _, t := range found {
		bySource[t.Source]++
	}
	fmt.Printf("crawled %d tags (tag-site %d, forum %d)\n",
		len(found), bySource[tags.SourceTagSite], bySource[tags.SourceForum])
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func cmdEvasion(args []string) error {
	fs := flag.NewFlagSet("evasion", flag.ExitOnError)
	small, seed := configFlags(fs)
	parallel := parallelFlag(fs)
	fs.Parse(args)
	tbl, _, err := fistful.EvasionStudyOpts(buildConfig(*small, *seed), nil,
		fistful.Options{Parallelism: *parallel})
	if err != nil {
		return err
	}
	fmt.Println(tbl.Render())
	return nil
}

func cmdP2PDemo(args []string) error {
	fs := flag.NewFlagSet("p2p-demo", flag.ExitOnError)
	nodes := fs.Int("nodes", 6, "network size")
	fs.Parse(args)
	return runP2PDemo(*nodes, os.Stdout)
}
