package main

import (
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"
)

func report(entries ...Result) *Report { return &Report{Benchmarks: entries} }

func bench(name string, metrics map[string]float64) Result {
	return Result{Name: name, Runs: 1, Metrics: metrics}
}

var gateMetrics = []string{"allocs/op", "B/op"}

// An injected regression past the threshold must be flagged — this is the
// demonstration that the CI bench job fails on a perf regression against
// the committed baseline.
func TestCompareFlagsInjectedRegression(t *testing.T) {
	base := report(bench("BenchmarkChangeClassifier/refined/par4-8",
		map[string]float64{"allocs/op": 100, "B/op": 4096, "ns/op": 1000}))
	cur := report(bench("BenchmarkChangeClassifier/refined/par4-8",
		map[string]float64{"allocs/op": 150, "B/op": 4096, "ns/op": 5000}))
	c := compare(base, cur, gateMetrics, 0.20)
	regs := c.Regressions()
	if len(regs) != 1 {
		t.Fatalf("regressions = %d, want 1 (the +50%% allocs/op)", len(regs))
	}
	if regs[0].Metric != "allocs/op" || regs[0].Cur != 150 {
		t.Fatalf("wrong regression flagged: %+v", regs[0])
	}
	// ns/op exploded but is not in the gated metric set.
	for _, d := range c.Diffs {
		if d.Metric == "ns/op" {
			t.Fatal("ungated metric was compared")
		}
	}
}

// Increases within the threshold must pass.
func TestCompareWithinThresholdPasses(t *testing.T) {
	base := report(bench("BenchmarkX", map[string]float64{"allocs/op": 100, "B/op": 1000}))
	cur := report(bench("BenchmarkX", map[string]float64{"allocs/op": 119, "B/op": 1199}))
	c := compare(base, cur, gateMetrics, 0.20)
	if len(c.Regressions()) != 0 {
		t.Fatalf("within-threshold increase flagged: %+v", c.Regressions())
	}
	if len(c.Diffs) != 2 {
		t.Fatalf("compared %d metrics, want 2", len(c.Diffs))
	}
}

// Improvements must never be flagged, whatever their size.
func TestCompareImprovementPasses(t *testing.T) {
	base := report(bench("BenchmarkX", map[string]float64{"allocs/op": 100}))
	cur := report(bench("BenchmarkX", map[string]float64{"allocs/op": 1}))
	if c := compare(base, cur, gateMetrics, 0.20); len(c.Regressions()) != 0 {
		t.Fatal("improvement flagged as regression")
	}
}

// A zero baseline regresses on any non-zero current value (the relative
// threshold is meaningless there) and stays clean on zero.
func TestCompareZeroBaseline(t *testing.T) {
	base := report(bench("BenchmarkX", map[string]float64{"allocs/op": 0}))
	cur := report(bench("BenchmarkX", map[string]float64{"allocs/op": 3}))
	c := compare(base, cur, gateMetrics, 0.20)
	regs := c.Regressions()
	if len(regs) != 1 || !math.IsInf(regs[0].Ratio, 1) {
		t.Fatalf("zero-baseline increase not flagged: %+v", c.Diffs)
	}
	cur = report(bench("BenchmarkX", map[string]float64{"allocs/op": 0}))
	if c := compare(base, cur, gateMetrics, 0.20); len(c.Regressions()) != 0 {
		t.Fatal("zero-to-zero flagged")
	}
}

// A benchmark that vanished from the current run is reported missing; a
// benchmark new in the current run is reported but produces no diff.
func TestCompareMissingAndNew(t *testing.T) {
	base := report(bench("BenchmarkGone", map[string]float64{"allocs/op": 10}))
	cur := report(bench("BenchmarkNew", map[string]float64{"allocs/op": 10}))
	c := compare(base, cur, gateMetrics, 0.20)
	if len(c.Missing) != 1 || c.Missing[0] != "BenchmarkGone" {
		t.Fatalf("missing = %v, want [BenchmarkGone]", c.Missing)
	}
	if len(c.New) != 1 || c.New[0] != "BenchmarkNew" {
		t.Fatalf("new = %v, want [BenchmarkNew]", c.New)
	}
	if len(c.Diffs) != 0 {
		t.Fatalf("unexpected diffs: %+v", c.Diffs)
	}
}

// Metrics absent from one side of a matched benchmark are skipped rather
// than treated as zero (a benchmark without ReportAllocs has no B/op).
func TestCompareSkipsAbsentMetrics(t *testing.T) {
	base := report(bench("BenchmarkX", map[string]float64{"ns/op": 100}))
	cur := report(bench("BenchmarkX", map[string]float64{"ns/op": 100}))
	c := compare(base, cur, gateMetrics, 0.20)
	if len(c.Diffs) != 0 || len(c.Regressions()) != 0 {
		t.Fatalf("absent metrics compared: %+v", c.Diffs)
	}
}

// The comparer must accept the exact document shape benchjson emits.
func TestCompareParsesBenchjsonShape(t *testing.T) {
	doc := []byte(`{
	  "context": {"goos": "linux", "goarch": "amd64"},
	  "benchmarks": [
	    {"name": "BenchmarkHeuristic1/par-8", "runs": 1,
	     "metrics": {"ns/op": 123456, "B/op": 2048, "allocs/op": 20},
	     "line": "BenchmarkHeuristic1/par-8 1 123456 ns/op 2048 B/op 20 allocs/op"}
	  ]
	}`)
	rep := &Report{}
	if err := json.Unmarshal(doc, rep); err != nil {
		t.Fatal(err)
	}
	worse := report(bench("BenchmarkHeuristic1/par-8",
		map[string]float64{"ns/op": 123456, "B/op": 2048, "allocs/op": 60}))
	c := compare(rep, worse, gateMetrics, 0.20)
	if len(c.Regressions()) != 1 {
		t.Fatalf("regressions = %d, want 1", len(c.Regressions()))
	}
}

func TestSplitMetrics(t *testing.T) {
	got := splitMetrics(" allocs/op, B/op ,,peak-heap-bytes ")
	want := []string{"allocs/op", "B/op", "peak-heap-bytes"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// The report-only mode: metrics selected by -report are compared with the
// same machinery but must never gate, however large the delta; the summary
// renders them in an explicitly non-gating table.
func TestMarkdownSummaryReportOnlyDeltas(t *testing.T) {
	base := report(
		bench("BenchmarkEconomyGeneration-4", map[string]float64{"allocs/op": 100, "ns/op": 1000}),
		bench("BenchmarkHeuristic1/par-4", map[string]float64{"allocs/op": 50, "ns/op": 4000}))
	cur := report(
		bench("BenchmarkEconomyGeneration-4", map[string]float64{"allocs/op": 100, "ns/op": 5000}),
		bench("BenchmarkHeuristic1/par-4", map[string]float64{"allocs/op": 50, "ns/op": 2000}))

	gated := compare(base, cur, gateMetrics, 0.20)
	if len(gated.Regressions()) != 0 {
		t.Fatalf("ns/op blowup leaked into the gate: %+v", gated.Regressions())
	}
	reported := compare(base, cur, []string{"ns/op"}, 0.20)
	if len(reported.Diffs) != 2 {
		t.Fatalf("reported %d deltas, want 2", len(reported.Diffs))
	}

	md := markdownSummary(gated, reported, []string{"ns/op"}, 0.20)
	for _, want := range []string{
		"ns/op deltas (report only, not gated)",
		"| BenchmarkEconomyGeneration-4 | ns/op | 1000 | 5000 | +400.0% |",
		"| BenchmarkHeuristic1/par-4 | ns/op | 4000 | 2000 | -50.0% |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("summary missing %q:\n%s", want, md)
		}
	}
	// The gated table must still carry its own verdict column.
	if !strings.Contains(md, "| BenchmarkEconomyGeneration-4 | allocs/op | 100 | 100 | +0.0% | ok |") {
		t.Fatalf("gated table row missing:\n%s", md)
	}
}

// Without report metrics the summary omits the report section entirely, and
// gate failures are marked in the gated table.
func TestMarkdownSummaryGateOnly(t *testing.T) {
	base := report(bench("BenchmarkX", map[string]float64{"allocs/op": 100}))
	cur := report(bench("BenchmarkX", map[string]float64{"allocs/op": 200}))
	gated := compare(base, cur, gateMetrics, 0.20)
	md := markdownSummary(gated, nil, nil, 0.20)
	if strings.Contains(md, "report only") {
		t.Fatalf("phantom report section:\n%s", md)
	}
	if !strings.Contains(md, "**FAIL**") {
		t.Fatalf("regression not marked:\n%s", md)
	}
	if !strings.Contains(md, "1 regressed") {
		t.Fatalf("gate line missing regression count:\n%s", md)
	}
}

// Zero-baseline and missing/new benchmarks keep their special renderings in
// the summary.
func TestMarkdownSummaryEdgeCases(t *testing.T) {
	base := report(
		bench("BenchmarkZero", map[string]float64{"ns/op": 0}),
		bench("BenchmarkGone", map[string]float64{"ns/op": 10}))
	cur := report(
		bench("BenchmarkZero", map[string]float64{"ns/op": 5}),
		bench("BenchmarkNew", map[string]float64{"ns/op": 10}))
	gated := compare(base, cur, gateMetrics, 0.20)
	reported := compare(base, cur, []string{"ns/op"}, 0.20)
	md := markdownSummary(gated, reported, []string{"ns/op"}, 0.20)
	for _, want := range []string{
		"+inf (zero baseline)",
		"- new (not gated until the baseline is refreshed): `BenchmarkNew`",
		"- **missing** (in baseline, absent from current run): `BenchmarkGone`",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("summary missing %q:\n%s", want, md)
		}
	}
}

// Regression test for the leakclose finding: appendSummary must close the
// file on success and surface open errors without leaking a handle.
func TestAppendSummary(t *testing.T) {
	path := t.TempDir() + "/summary.md"
	if err := appendSummary(path, "# first\n"); err != nil {
		t.Fatalf("appendSummary: %v", err)
	}
	if err := appendSummary(path, "# second\n"); err != nil {
		t.Fatalf("appendSummary (append): %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data); got != "# first\n# second\n" {
		t.Errorf("summary content = %q, want both sections appended", got)
	}
	if err := appendSummary(t.TempDir()+"/no/such/dir/summary.md", "x"); err == nil {
		t.Error("appendSummary into a missing directory: want error, got nil")
	}
}
