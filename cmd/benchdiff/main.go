// Command benchdiff is the CI perf-regression gate: it compares a benchjson
// report from the current run against a committed baseline, per benchmark
// and per metric, and exits non-zero when any compared metric regresses past
// a configurable threshold.
//
// Only smaller-is-better metrics make sense here; the default set is the
// allocation counters ("allocs/op,B/op"), which are near-deterministic even
// at -benchtime=1x, unlike wall-clock ns/op on shared CI runners. Benchmarks
// present in the baseline but absent from the current run fail the gate (a
// silently dropped benchmark must not pass), unless -allow-missing is given;
// benchmarks new in the current run are reported but not gated until the
// baseline is refreshed.
//
// Alongside the gate, -report selects metrics that are compared but never
// gated — the deltas are rendered as a markdown table written to the file
// named by -summary (CI points it at $GITHUB_STEP_SUMMARY). ns/op rides
// there today: wall-clock on shared runners is too noisy to gate, but the
// per-benchmark deltas are worth a glance on every PR, and the table is the
// groundwork for gating ns/op once runners are pinned to one machine class.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_pr.json [-threshold 0.20] \
//	          [-metrics allocs/op,B/op] [-allow-missing] \
//	          [-report ns/op] [-summary "$GITHUB_STEP_SUMMARY"]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Result mirrors one benchmark entry of a benchjson report.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report mirrors the benchjson document shape (context fields are ignored).
type Report struct {
	Benchmarks []Result `json:"benchmarks"`
}

// Diff is one compared benchmark/metric pair.
type Diff struct {
	Bench  string
	Metric string
	Base   float64
	Cur    float64
	// Ratio is Cur/Base; +Inf when the baseline is zero and the current
	// value is not.
	Ratio     float64
	Regressed bool
}

// Comparison is the full gate result.
type Comparison struct {
	Diffs []Diff
	// Missing lists baseline benchmarks absent from the current run.
	Missing []string
	// New lists current benchmarks absent from the baseline (not gated).
	New []string
}

// Regressions returns the diffs that crossed the threshold.
func (c *Comparison) Regressions() []Diff {
	var out []Diff
	for _, d := range c.Diffs {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// compare evaluates every baseline benchmark against the current report over
// the selected smaller-is-better metrics. A metric regresses when
// cur > base*(1+threshold); a zero baseline regresses on any non-zero
// current value (the ratio would be infinite). Metrics missing from either
// side of a matched benchmark are skipped: the baseline decides which
// benchmarks exist, the metric list decides what is gated.
func compare(base, cur *Report, metrics []string, threshold float64) *Comparison {
	curByName := make(map[string]Result, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		curByName[r.Name] = r
	}
	baseNames := make(map[string]bool, len(base.Benchmarks))
	c := &Comparison{}
	for _, b := range base.Benchmarks {
		baseNames[b.Name] = true
		r, ok := curByName[b.Name]
		if !ok {
			c.Missing = append(c.Missing, b.Name)
			continue
		}
		for _, m := range metrics {
			bv, bok := b.Metrics[m]
			cv, cok := r.Metrics[m]
			if !bok || !cok {
				continue
			}
			d := Diff{Bench: b.Name, Metric: m, Base: bv, Cur: cv}
			switch {
			case bv == 0:
				if cv > 0 {
					d.Ratio = math.Inf(1)
					d.Regressed = true
				} else {
					d.Ratio = 1
				}
			default:
				d.Ratio = cv / bv
				d.Regressed = cv > bv*(1+threshold)
			}
			c.Diffs = append(c.Diffs, d)
		}
	}
	for _, r := range cur.Benchmarks {
		if !baseNames[r.Name] {
			c.New = append(c.New, r.Name)
		}
	}
	sort.Strings(c.Missing)
	sort.Strings(c.New)
	return c
}

// markdownSummary renders the comparison as a GitHub-flavored markdown
// document for the job summary: one table for the gated metrics with their
// verdicts, and — when report-only metrics were selected — a second,
// explicitly non-gating delta table. Reported metrics never influence the
// gate; the caller computes `reported` with a separate compare call whose
// Regressed flags are ignored here.
func markdownSummary(gated, reported *Comparison, reportMetrics []string, threshold float64) string {
	var sb strings.Builder
	sb.WriteString("## benchdiff\n\n")

	regs := len(gated.Regressions())
	fmt.Fprintf(&sb, "Gate: %d metric(s) compared at +%.0f%%, %d regressed, %d missing, %d new.\n\n",
		len(gated.Diffs), 100*threshold, regs, len(gated.Missing), len(gated.New))
	if len(gated.Diffs) > 0 {
		sb.WriteString("| benchmark | metric | baseline | current | delta | |\n")
		sb.WriteString("|---|---|---:|---:|---:|---|\n")
		for _, d := range gated.Diffs {
			mark := "ok"
			if d.Regressed {
				mark = "**FAIL**"
			}
			fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s |\n",
				d.Bench, d.Metric, formatValue(d.Base), formatValue(d.Cur), formatDelta(d.Ratio), mark)
		}
		sb.WriteString("\n")
	}

	if reported != nil && len(reported.Diffs) > 0 {
		fmt.Fprintf(&sb, "### %s deltas (report only, not gated)\n\n", strings.Join(reportMetrics, ", "))
		sb.WriteString("Wall-clock on shared runners is noise-prone; this table informs review and ")
		sb.WriteString("becomes a gate once runners are pinned.\n\n")
		sb.WriteString("| benchmark | metric | baseline | current | delta |\n")
		sb.WriteString("|---|---|---:|---:|---:|\n")
		for _, d := range reported.Diffs {
			fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s |\n",
				d.Bench, d.Metric, formatValue(d.Base), formatValue(d.Cur), formatDelta(d.Ratio))
		}
		sb.WriteString("\n")
	}

	for _, n := range gated.New {
		fmt.Fprintf(&sb, "- new (not gated until the baseline is refreshed): `%s`\n", n)
	}
	for _, n := range gated.Missing {
		fmt.Fprintf(&sb, "- **missing** (in baseline, absent from current run): `%s`\n", n)
	}
	return sb.String()
}

// formatValue renders a metric value compactly (benchjson metrics are
// integral counters or nanoseconds in practice).
func formatValue(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// formatDelta renders cur/base as a signed percentage; an infinite ratio
// (zero baseline) is spelled out.
func formatDelta(ratio float64) string {
	if math.IsInf(ratio, 1) {
		return "+inf (zero baseline)"
	}
	return fmt.Sprintf("%+.1f%%", 100*(ratio-1))
}

// loadReport reads one benchjson document.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// splitMetrics parses the -metrics flag.
// appendSummary appends md to the summary file at path, closing the file
// on every path and folding a close failure into the returned error.
func appendSummary(path, md string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.WriteString(md)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func splitMetrics(s string) []string {
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline benchjson report")
	currentPath := flag.String("current", "BENCH_pr.json", "benchjson report of the current run")
	threshold := flag.Float64("threshold", 0.20,
		"allowed relative increase per metric before failing (0.20 = +20%)")
	metricsFlag := flag.String("metrics", "allocs/op,B/op",
		"comma-separated smaller-is-better metrics to gate on")
	allowMissing := flag.Bool("allow-missing", false,
		"do not fail when a baseline benchmark is absent from the current run")
	reportFlag := flag.String("report", "",
		"comma-separated metrics to compare report-only (never gated), e.g. ns/op")
	summaryPath := flag.String("summary", "",
		"append a markdown summary (gate table + report-only deltas) to this file;\n"+
			"CI passes $GITHUB_STEP_SUMMARY")
	flag.Parse()

	metrics := splitMetrics(*metricsFlag)
	if len(metrics) == 0 || *threshold < 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: need at least one metric and a non-negative threshold")
		os.Exit(2)
	}
	base, err := loadReport(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: baseline:", err)
		os.Exit(2)
	}
	cur, err := loadReport(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: current:", err)
		os.Exit(2)
	}

	c := compare(base, cur, metrics, *threshold)

	// Report-only comparison: same machinery, but its Regressed flags are
	// never consulted — the deltas only feed the summary table.
	var reported *Comparison
	reportMetrics := splitMetrics(*reportFlag)
	if len(reportMetrics) > 0 {
		reported = compare(base, cur, reportMetrics, *threshold)
	}
	if *summaryPath != "" {
		md := markdownSummary(c, reported, reportMetrics, *threshold)
		if err := appendSummary(*summaryPath, md); err != nil {
			// The summary is informational; a broken summary file must not
			// mask the gate verdict.
			fmt.Fprintln(os.Stderr, "benchdiff: summary:", err)
		}
	}

	for _, d := range c.Diffs {
		mark := "ok  "
		if d.Regressed {
			mark = "FAIL"
		}
		fmt.Printf("%s  %-60s %-12s %14.0f -> %14.0f  (%+.1f%%)\n",
			mark, d.Bench, d.Metric, d.Base, d.Cur, 100*(d.Ratio-1))
	}
	if reported != nil {
		for _, d := range reported.Diffs {
			fmt.Printf("info  %-60s %-12s %14.0f -> %14.0f  (%+.1f%%)  [report-only]\n",
				d.Bench, d.Metric, d.Base, d.Cur, 100*(d.Ratio-1))
		}
	}
	for _, n := range c.New {
		fmt.Printf("new   %s (not gated; refresh the baseline to cover it)\n", n)
	}
	for _, n := range c.Missing {
		fmt.Printf("MISSING  %s (in baseline, absent from current run)\n", n)
	}

	if len(c.Missing) > 0 && len(c.Diffs) == 0 && len(c.New) > 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark name matched at all; names carry a -GOMAXPROCS"+
			" suffix, so baseline and current runs must use the same -cpu setting"+
			" (this repo pins -cpu=4 — see docs/DEVELOPMENT.md's baseline-refresh instructions)")
	}
	regs := c.Regressions()
	failed := len(regs) > 0 || (len(c.Missing) > 0 && !*allowMissing)
	fmt.Printf("benchdiff: %d compared, %d regressed (threshold +%.0f%%), %d missing, %d new\n",
		len(c.Diffs), len(regs), 100**threshold, len(c.Missing), len(c.New))
	if failed {
		os.Exit(1)
	}
}
