// Command benchdiff is the CI perf-regression gate: it compares a benchjson
// report from the current run against a committed baseline, per benchmark
// and per metric, and exits non-zero when any compared metric regresses past
// a configurable threshold.
//
// Only smaller-is-better metrics make sense here; the default set is the
// allocation counters ("allocs/op,B/op"), which are near-deterministic even
// at -benchtime=1x, unlike wall-clock ns/op on shared CI runners. Benchmarks
// present in the baseline but absent from the current run fail the gate (a
// silently dropped benchmark must not pass), unless -allow-missing is given;
// benchmarks new in the current run are reported but not gated until the
// baseline is refreshed.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_pr.json [-threshold 0.20] \
//	          [-metrics allocs/op,B/op] [-allow-missing]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Result mirrors one benchmark entry of a benchjson report.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report mirrors the benchjson document shape (context fields are ignored).
type Report struct {
	Benchmarks []Result `json:"benchmarks"`
}

// Diff is one compared benchmark/metric pair.
type Diff struct {
	Bench  string
	Metric string
	Base   float64
	Cur    float64
	// Ratio is Cur/Base; +Inf when the baseline is zero and the current
	// value is not.
	Ratio     float64
	Regressed bool
}

// Comparison is the full gate result.
type Comparison struct {
	Diffs []Diff
	// Missing lists baseline benchmarks absent from the current run.
	Missing []string
	// New lists current benchmarks absent from the baseline (not gated).
	New []string
}

// Regressions returns the diffs that crossed the threshold.
func (c *Comparison) Regressions() []Diff {
	var out []Diff
	for _, d := range c.Diffs {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// compare evaluates every baseline benchmark against the current report over
// the selected smaller-is-better metrics. A metric regresses when
// cur > base*(1+threshold); a zero baseline regresses on any non-zero
// current value (the ratio would be infinite). Metrics missing from either
// side of a matched benchmark are skipped: the baseline decides which
// benchmarks exist, the metric list decides what is gated.
func compare(base, cur *Report, metrics []string, threshold float64) *Comparison {
	curByName := make(map[string]Result, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		curByName[r.Name] = r
	}
	baseNames := make(map[string]bool, len(base.Benchmarks))
	c := &Comparison{}
	for _, b := range base.Benchmarks {
		baseNames[b.Name] = true
		r, ok := curByName[b.Name]
		if !ok {
			c.Missing = append(c.Missing, b.Name)
			continue
		}
		for _, m := range metrics {
			bv, bok := b.Metrics[m]
			cv, cok := r.Metrics[m]
			if !bok || !cok {
				continue
			}
			d := Diff{Bench: b.Name, Metric: m, Base: bv, Cur: cv}
			switch {
			case bv == 0:
				if cv > 0 {
					d.Ratio = math.Inf(1)
					d.Regressed = true
				} else {
					d.Ratio = 1
				}
			default:
				d.Ratio = cv / bv
				d.Regressed = cv > bv*(1+threshold)
			}
			c.Diffs = append(c.Diffs, d)
		}
	}
	for _, r := range cur.Benchmarks {
		if !baseNames[r.Name] {
			c.New = append(c.New, r.Name)
		}
	}
	sort.Strings(c.Missing)
	sort.Strings(c.New)
	return c
}

// loadReport reads one benchjson document.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// splitMetrics parses the -metrics flag.
func splitMetrics(s string) []string {
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline benchjson report")
	currentPath := flag.String("current", "BENCH_pr.json", "benchjson report of the current run")
	threshold := flag.Float64("threshold", 0.20,
		"allowed relative increase per metric before failing (0.20 = +20%)")
	metricsFlag := flag.String("metrics", "allocs/op,B/op",
		"comma-separated smaller-is-better metrics to gate on")
	allowMissing := flag.Bool("allow-missing", false,
		"do not fail when a baseline benchmark is absent from the current run")
	flag.Parse()

	metrics := splitMetrics(*metricsFlag)
	if len(metrics) == 0 || *threshold < 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: need at least one metric and a non-negative threshold")
		os.Exit(2)
	}
	base, err := loadReport(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: baseline:", err)
		os.Exit(2)
	}
	cur, err := loadReport(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: current:", err)
		os.Exit(2)
	}

	c := compare(base, cur, metrics, *threshold)
	for _, d := range c.Diffs {
		mark := "ok  "
		if d.Regressed {
			mark = "FAIL"
		}
		fmt.Printf("%s  %-60s %-12s %14.0f -> %14.0f  (%+.1f%%)\n",
			mark, d.Bench, d.Metric, d.Base, d.Cur, 100*(d.Ratio-1))
	}
	for _, n := range c.New {
		fmt.Printf("new   %s (not gated; refresh the baseline to cover it)\n", n)
	}
	for _, n := range c.Missing {
		fmt.Printf("MISSING  %s (in baseline, absent from current run)\n", n)
	}

	if len(c.Missing) > 0 && len(c.Diffs) == 0 && len(c.New) > 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark name matched at all; names carry a -GOMAXPROCS"+
			" suffix, so baseline and current runs must use the same -cpu setting"+
			" (this repo pins -cpu=4 — see the README's baseline-refresh instructions)")
	}
	regs := c.Regressions()
	failed := len(regs) > 0 || (len(c.Missing) > 0 && !*allowMissing)
	fmt.Printf("benchdiff: %d compared, %d regressed (threshold +%.0f%%), %d missing, %d new\n",
		len(c.Diffs), len(regs), 100**threshold, len(c.Missing), len(c.New))
	if failed {
		os.Exit(1)
	}
}
