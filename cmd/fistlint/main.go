// Command fistlint runs the repo's project-specific static analyzers
// (internal/lint): detrange, parcapture, atomicmix, errflow — the
// determinism and shard-safety invariants the measurement pipeline depends
// on — plus the lifecycle suite gating the always-on daemon work:
// leakclose, goleak, lockheld, ctxflow.
//
// It runs two ways:
//
//	fistlint ./...                      # standalone, loads packages itself
//	go vet -vettool=$(which fistlint) ./...   # as a vet tool
//
// `fistlint -list` prints the registered analyzers with their one-line
// docs; CI asserts the expected set so a registration regression fails
// loudly instead of silently gating on fewer checks.
//
// In vet-tool mode it speaks the go vet "unitchecker" protocol: go vet
// hands it a *.cfg JSON file per package (source file list plus export
// data for every import) and expects diagnostics on stderr with exit
// status 2. Both modes use only the standard library — package loading
// rides on `go list -export`, and imports are typechecked from compiler
// export data, never source.
//
// Test files are not analyzed: the determinism invariants are about
// pipeline output, and tests assert them rather than produce them.
//
// Findings are suppressed line-by-line with a mandatory reason:
//
//	//lint:ignore fistlint/<analyzer> reason
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	// go vet fingerprints the tool with -V=full before using it; the reply
	// must be "<name> version <...>", and for a "devel" version the final
	// field must carry a buildID go vet can use as a result-cache key, so
	// hash the binary itself: rebuilding fistlint invalidates cached vet
	// verdicts.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("fistlint version devel buildID=%s\n", selfID())
		return
	}
	// go vet also probes the tool's flag set with -flags and expects a JSON
	// array of flag definitions; fistlint exposes no tool flags.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	// -list prints the registered analyzer set; CI greps it to catch a
	// registration regression before it silently narrows the gate.
	if len(args) == 1 && args[0] == "-list" {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, firstSentence(a.Doc))
		}
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}

// exitUsage mirrors go vet's convention: 0 clean, 1 usage/internal error,
// 2 diagnostics reported.
const (
	exitClean = 0
	exitError = 1
	exitDiags = 2
)

// firstSentence truncates a doc string at its first period for -list's
// one-line-per-analyzer output.
func firstSentence(doc string) string {
	if i := strings.Index(doc, ". "); i >= 0 {
		return doc[:i+1]
	}
	return doc
}

// selfID derives an actionID/contentID pair from the executable's bytes.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown/unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown/unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x/%x", sum[:12], sum[:12])
}

// ---------------------------------------------------------------------------
// vet-tool mode (unitchecker protocol)

// vetConfig is the JSON the go command writes for each package unit; the
// field set mirrors x/tools' unitchecker.Config, which is the protocol's
// de-facto spec.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fistlint: %v\n", err)
		return exitError
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fistlint: parse %s: %v\n", cfgPath, err)
		return exitError
	}
	// The go command caches and re-feeds the facts file to dependents; it
	// must exist even though fistlint's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "fistlint: write facts: %v\n", err)
			return exitError
		}
	}
	if cfg.VetxOnly {
		return exitClean
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return exitClean
			}
			fmt.Fprintf(os.Stderr, "fistlint: %v\n", err)
			return exitError
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return exitClean
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	diags, err := check(fset, files, cfg.ImportPath, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return exitClean
		}
		fmt.Fprintf(os.Stderr, "fistlint: %s: %v\n", cfg.ImportPath, err)
		return exitError
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, render(d))
	}
	if len(diags) > 0 {
		return exitDiags
	}
	return exitClean
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ---------------------------------------------------------------------------
// standalone mode

// listPkg is the slice of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Incomplete bool
	Error      *struct{ Err string }
}

func standalone(patterns []string) int {
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(os.Stderr, "usage: fistlint [packages]\n   or: go vet -vettool=$(which fistlint) [packages]\n")
			return exitError
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fistlint: %v\n", err)
		return exitError
	}

	fset := token.NewFileSet()
	exportFile := make(map[string]string) // import path -> export data file
	gcImp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	// Every import resolves from export data, even when the imported package
	// is itself a target we typechecked from source. Mixing the two universes
	// is unsound: a dep-only package's export data mentions the gc flavor of
	// a shared dependency, and handing a dependent the source flavor of that
	// same path makes identical types compare unequal ("cannot use *T as
	// *T"). go list -deps emits dependencies first, so a target's export
	// data is always on file before its dependents need it.
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gcImp.Import(path)
	})

	found := 0
	for _, p := range pkgs {
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "fistlint: %s: %s\n", p.ImportPath, p.Error.Err)
			return exitError
		}
		exportFile[p.ImportPath] = p.Export
		if p.DepOnly || p.Standard {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fistlint: %v\n", err)
				return exitError
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		diags, err := check(fset, files, p.ImportPath, imp, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "fistlint: %s: %v\n", p.ImportPath, err)
			return exitError
		}
		for _, d := range diags {
			fmt.Println(render(d))
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "fistlint: %d finding(s)\n", found)
		return exitDiags
	}
	return exitClean
}

// goList runs `go list -e -deps -export -json` over the patterns; -deps
// emits dependencies before dependents, so every import of a target package
// is resolvable (from source or export data) by the time it is reached.
func goList(patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ---------------------------------------------------------------------------
// shared typecheck-and-run core

func check(fset *token.FileSet, files []*ast.File, path string, imp types.Importer, goVersion string) ([]lint.Diagnostic, error) {
	info := newInfo()
	conf := types.Config{Importer: imp, GoVersion: goVersion}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return lint.Run(fset, files, pkg, info, lint.All())
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// render formats one diagnostic, with file paths relative to the working
// directory when possible (matching go vet's output style).
func render(d lint.Diagnostic) string {
	name := d.Pos.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: fistlint/%s: %s", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}
