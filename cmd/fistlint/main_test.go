package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the fistlint binary once into a temp dir and returns
// its absolute path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fistlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build fistlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway single-package module and returns its dir.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":     "module scratch\n\ngo 1.21\n",
		"scratch.go": src,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// dirty has a detrange finding: fmt.Fprintln inside a range over a map.
const dirty = `package scratch

import (
	"fmt"
	"io"
)

func Dump(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k)
	}
}
`

// clean iterates the same map but collects and sorts first.
const clean = `package scratch

import (
	"fmt"
	"io"
	"sort"
)

func Dump(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}
`

func runIn(dir string, name string, args ...string) (stdout, stderr string, code int) {
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var outBuf, errBuf strings.Builder
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		code = -1
	}
	return outBuf.String(), errBuf.String(), code
}

func TestVersionHandshake(t *testing.T) {
	bin := buildTool(t)
	out, _, code := runIn(t.TempDir(), bin, "-V=full")
	if code != 0 {
		t.Fatalf("fistlint -V=full: exit %d", code)
	}
	// go vet fingerprints tools via -V=full and requires the second field
	// to be "version" with at least three fields total.
	fields := strings.Fields(out)
	if len(fields) < 3 || fields[1] != "version" {
		t.Fatalf("handshake output %q does not match \"<name> version <...>\"", out)
	}
}

func TestStandaloneFindsAndExits2(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, dirty)
	out, _, code := runIn(dir, bin, "./...")
	if code != exitDiags {
		t.Fatalf("exit %d, want %d; stdout:\n%s", code, exitDiags, out)
	}
	if !strings.Contains(out, "fistlint/detrange") {
		t.Fatalf("stdout missing detrange finding:\n%s", out)
	}
}

func TestStandaloneCleanExits0(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, clean)
	out, errOut, code := runIn(dir, bin, "./...")
	if code != exitClean {
		t.Fatalf("exit %d, want 0; stdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}

// lifecycleCases are minimal single-finding sources for each of the four
// lifecycle analyzers, driven end-to-end through the vet-tool protocol.
var lifecycleCases = []struct {
	analyzer string
	src      string
}{
	{"leakclose", `package scratch

import "os"

func Leak(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 4)
	n, err := f.Read(buf)
	return n, err
}
`},
	{"goleak", `package scratch

func Spawn(work func()) {
	go func() {
		work()
	}()
}
`},
	{"lockheld", `package scratch

import "sync"

type Box struct {
	mu sync.Mutex
	ch chan int
}

func (b *Box) Pub(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- v
}
`},
	{"ctxflow", `package scratch

import "context"

func fetch(ctx context.Context) error { return ctx.Err() }

func Handle(ctx context.Context) error {
	return fetch(context.Background())
}
`},
}

// TestVetToolLifecycleAnalyzers drives each lifecycle analyzer through
// `go vet -vettool` against a scratch module, the same path CI gates on.
func TestVetToolLifecycleAnalyzers(t *testing.T) {
	bin := buildTool(t)
	for _, tc := range lifecycleCases {
		t.Run(tc.analyzer, func(t *testing.T) {
			dir := writeModule(t, tc.src)
			_, errOut, code := runIn(dir, "go", "vet", "-vettool="+bin, "./...")
			if code == 0 {
				t.Fatalf("go vet -vettool exited 0; want a %s finding", tc.analyzer)
			}
			if !strings.Contains(errOut, "fistlint/"+tc.analyzer) {
				t.Fatalf("go vet stderr missing %s finding:\n%s", tc.analyzer, errOut)
			}
		})
	}
}

// TestListPrintsAllAnalyzers pins -list output to the full registered set,
// in order — the same assertion CI makes before gating on the tool.
func TestListPrintsAllAnalyzers(t *testing.T) {
	bin := buildTool(t)
	out, _, code := runIn(t.TempDir(), bin, "-list")
	if code != 0 {
		t.Fatalf("fistlint -list: exit %d", code)
	}
	want := []string{"detrange", "parcapture", "atomicmix", "errflow", "leakclose", "goleak", "lockheld", "ctxflow"}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(want) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(want), out)
	}
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("-list line %d has no doc: %q", i, line)
		}
		if fields[0] != want[i] {
			t.Errorf("-list line %d names %q, want %q", i, fields[0], want[i])
		}
	}
}

// TestStandaloneMultiplePatterns pins the import-resolution fix for
// multi-pattern invocations: when the patterns cover a shared dependency
// (dep) but not the root package that also imports it, the root loads from
// export data while dep is typechecked from source. Both flavors of dep
// meet inside ./use, and unless every import resolves from the one export
// universe, the typechecker rejects identical types ("cannot use T as T").
func TestStandaloneMultiplePatterns(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":     "module scratch\n\ngo 1.21\n",
		"root.go":    "package scratch\n\nimport \"scratch/dep\"\n\nfunc Make() dep.T { return dep.T{} }\n",
		"dep/dep.go": "package dep\n\ntype T struct{ N int }\n",
		"use/use.go": "package use\n\nimport (\n\t\"scratch\"\n\t\"scratch/dep\"\n)\n\nfunc Sum() int {\n\tvals := []dep.T{scratch.Make()}\n\treturn vals[0].N\n}\n",
	}
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	out, errOut, code := runIn(dir, bin, "./dep/...", "./use/...")
	if code != exitClean {
		t.Fatalf("exit %d, want 0; stdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}

func TestVetToolProtocol(t *testing.T) {
	bin := buildTool(t)

	dir := writeModule(t, dirty)
	_, errOut, code := runIn(dir, "go", "vet", "-vettool="+bin, "./...")
	if code == 0 {
		t.Fatalf("go vet -vettool exited 0 on a package with a finding; stderr:\n%s", errOut)
	}
	if !strings.Contains(errOut, "fistlint/detrange") {
		t.Fatalf("go vet stderr missing detrange finding:\n%s", errOut)
	}

	cleanDir := writeModule(t, clean)
	_, errOut, code = runIn(cleanDir, "go", "vet", "-vettool="+bin, "./...")
	if code != 0 {
		t.Fatalf("go vet -vettool exited %d on a clean package; stderr:\n%s", code, errOut)
	}
}
