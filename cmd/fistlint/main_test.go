package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the fistlint binary once into a temp dir and returns
// its absolute path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fistlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build fistlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway single-package module and returns its dir.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":     "module scratch\n\ngo 1.21\n",
		"scratch.go": src,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// dirty has a detrange finding: fmt.Fprintln inside a range over a map.
const dirty = `package scratch

import (
	"fmt"
	"io"
)

func Dump(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k)
	}
}
`

// clean iterates the same map but collects and sorts first.
const clean = `package scratch

import (
	"fmt"
	"io"
	"sort"
)

func Dump(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}
`

func runIn(dir string, name string, args ...string) (stdout, stderr string, code int) {
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var outBuf, errBuf strings.Builder
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		code = -1
	}
	return outBuf.String(), errBuf.String(), code
}

func TestVersionHandshake(t *testing.T) {
	bin := buildTool(t)
	out, _, code := runIn(t.TempDir(), bin, "-V=full")
	if code != 0 {
		t.Fatalf("fistlint -V=full: exit %d", code)
	}
	// go vet fingerprints tools via -V=full and requires the second field
	// to be "version" with at least three fields total.
	fields := strings.Fields(out)
	if len(fields) < 3 || fields[1] != "version" {
		t.Fatalf("handshake output %q does not match \"<name> version <...>\"", out)
	}
}

func TestStandaloneFindsAndExits2(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, dirty)
	out, _, code := runIn(dir, bin, "./...")
	if code != exitDiags {
		t.Fatalf("exit %d, want %d; stdout:\n%s", code, exitDiags, out)
	}
	if !strings.Contains(out, "fistlint/detrange") {
		t.Fatalf("stdout missing detrange finding:\n%s", out)
	}
}

func TestStandaloneCleanExits0(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, clean)
	out, errOut, code := runIn(dir, bin, "./...")
	if code != exitClean {
		t.Fatalf("exit %d, want 0; stdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}

func TestVetToolProtocol(t *testing.T) {
	bin := buildTool(t)

	dir := writeModule(t, dirty)
	_, errOut, code := runIn(dir, "go", "vet", "-vettool="+bin, "./...")
	if code == 0 {
		t.Fatalf("go vet -vettool exited 0 on a package with a finding; stderr:\n%s", errOut)
	}
	if !strings.Contains(errOut, "fistlint/detrange") {
		t.Fatalf("go vet stderr missing detrange finding:\n%s", errOut)
	}

	cleanDir := writeModule(t, clean)
	_, errOut, code = runIn(cleanDir, "go", "vet", "-vettool="+bin, "./...")
	if code != 0 {
		t.Fatalf("go vet -vettool exited %d on a clean package; stderr:\n%s", code, errOut)
	}
}
