package fistful

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (go test -bench=. -benchmem). Each benchmark reruns the
// analysis stage that produces its artifact over a shared small-scale
// pipeline; BenchmarkPipeline and BenchmarkEconomyGeneration cover the
// end-to-end costs. Key reproduced quantities are attached as custom
// metrics so `-bench` output doubles as a results summary.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/address"
	"repro/internal/balance"
	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/econ"
	"repro/internal/flow"
	"repro/internal/p2p"
	"repro/internal/script"
	"repro/internal/serve"
	"repro/internal/tags"
	"repro/internal/txgraph"
)

func benchPipeline(b *testing.B) *Pipeline {
	b.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = NewPipeline(SmallConfig())
	})
	if pipeErr != nil {
		b.Fatalf("pipeline: %v", pipeErr)
	}
	return pipe
}

// BenchmarkEconomyGeneration measures the substrate: producing a full
// validated synthetic chain with the default (pipelined) block sealing.
func BenchmarkEconomyGeneration(b *testing.B) {
	cfg := SmallConfig()
	cfg.Blocks = 400
	cfg.Users = 60
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := econ.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEconomyGenerationSealing isolates the seal pipeline: the same
// economy generated with the fully inline seal path (sign, validate, emit
// at every block boundary before the next block may start) against the
// bounded pipeline overlapping that tail with building. The seal-pipeline
// test proves every depth produces byte-identical chains.
func BenchmarkEconomyGenerationSealing(b *testing.B) {
	run := func(depth int) func(*testing.B) {
		return func(b *testing.B) {
			cfg := SmallConfig()
			cfg.Blocks = 400
			cfg.Users = 60
			cfg.PipelineDepth = depth
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				if _, err := econ.Generate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("inline", run(1))
	b.Run("pipelined", run(0))
}

// BenchmarkEconomyGenerationSigning isolates the block-seal signing fan-out
// on the inline seal path: the same economy generated with sequential and
// parallel signing. The determinism test proves both settings produce
// byte-identical chains.
func BenchmarkEconomyGenerationSigning(b *testing.B) {
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			cfg := SmallConfig()
			cfg.Blocks = 400
			cfg.Users = 60
			cfg.SignWorkers = workers
			cfg.PipelineDepth = 1 // isolate the fan-out from the pipeline
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				if _, err := econ.Generate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("seq", run(1))
	b.Run("par", run(0))
}

// BenchmarkSigHash compares the per-input digest API against the one-pass
// SigHashes on a whale-sized transfer (256 inputs, the payBig/sweep cap):
// the per-input form re-hashes the whole transaction for every input.
func BenchmarkSigHash(b *testing.B) {
	tx := &chain.Tx{Version: 1}
	for i := 0; i < 256; i++ {
		var id chain.Hash
		id[0], id[1] = byte(i), byte(i>>8)
		tx.Inputs = append(tx.Inputs, chain.TxIn{
			Prev: chain.OutPoint{TxID: id, Index: uint32(i)}, Sequence: ^uint32(0),
		})
	}
	key := address.NewKeyFromSeed(1, 1)
	tx.Outputs = []chain.TxOut{{Value: chain.BTC(1), PkScript: script.PayToAddr(key.Address())}}
	b.Run("per-input", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range tx.Inputs {
				_ = chain.SigHash(tx, j)
			}
		}
	})
	b.Run("one-pass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = chain.SigHashes(tx)
		}
	})
}

// BenchmarkTxGraphBuild measures indexing the chain into the dense graph,
// sequentially and with the parallel hash/script pre-pass.
func BenchmarkTxGraphBuild(b *testing.B) {
	p := benchPipeline(b)
	b.Run("seq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := txgraph.BuildWorkers(p.World.Chain, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("par", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := txgraph.Build(p.World.Chain); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// peakTracker samples the heap while a benchmark body runs and reports the
// maximum observed HeapAlloc as a custom metric. Sampling starts from a
// forced GC so leftover garbage from setup does not count against the
// measured stage.
type peakTracker struct {
	stop chan struct{}
	done chan struct{}
	max  uint64
}

func startPeakTracker() *peakTracker {
	runtime.GC()
	t := &peakTracker{stop: make(chan struct{}), done: make(chan struct{})}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.max = ms.HeapAlloc
	go func() {
		defer close(t.done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > t.max {
					t.max = ms.HeapAlloc
				}
			}
		}
	}()
	return t
}

func (t *peakTracker) report(b *testing.B) {
	close(t.stop)
	<-t.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > t.max {
		t.max = ms.HeapAlloc
	}
	b.ReportMetric(float64(t.max), "peak-heap-bytes")
}

// BenchmarkStreamingBuild compares the peak heap footprint of indexing a
// chain resident in memory against streaming the same chain from disk, on
// a configuration twice the small scale. The in-memory peak includes the
// resident block chain; the streaming peak holds only the graph plus one
// bounded window of blocks — the gap is what lets the measurement side
// scale past chains that fit in RAM.
func BenchmarkStreamingBuild(b *testing.B) {
	cfg := SmallConfig()
	cfg.Blocks *= 2
	cfg.Users *= 2
	path := filepath.Join(b.TempDir(), "chain.bin")

	// Scope the world so the resident chain is collectable before the
	// streaming sub-benchmark samples its peak.
	func() {
		w, err := econ.GenerateToFile(cfg, path)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("in-memory", func(b *testing.B) {
			var g *txgraph.Graph
			peak := startPeakTracker()
			for i := 0; i < b.N; i++ {
				var err error
				if g, err = txgraph.Build(w.Chain); err != nil {
					b.Fatal(err)
				}
			}
			peak.report(b)
			b.ReportMetric(float64(g.NumTxs()), "txs")
		})
	}()

	b.Run("stream", func(b *testing.B) {
		var g *txgraph.Graph
		peak := startPeakTracker()
		for i := 0; i < b.N; i++ {
			src, err := chain.OpenReader(path)
			if err != nil {
				b.Fatal(err)
			}
			if g, err = txgraph.BuildStream(src, 0); err != nil {
				b.Fatal(err)
			}
			src.Close()
		}
		peak.report(b)
		b.ReportMetric(float64(g.NumTxs()), "txs")
	})
}

// BenchmarkTable1 regenerates the data-collection table (Table 1).
func BenchmarkTable1(b *testing.B) {
	p := benchPipeline(b)
	var tagged int
	for i := 0; i < b.N; i++ {
		tbl := p.Table1()
		tagged = len(tbl.Rows)
	}
	b.ReportMetric(float64(p.World.ResearcherTxCount), "researcher-txs")
	_ = tagged
}

// BenchmarkFigure1 runs the full Figure 1 transaction lifecycle on a live
// 3-node TCP network per iteration.
func BenchmarkFigure1(b *testing.B) {
	params := chain.MainNetParams()
	params.TargetBits = 8
	params.CoinbaseMaturity = 1
	for i := 0; i < b.N; i++ {
		net, err := p2p.NewNetwork(p2p.Config{Params: params}, 3)
		if err != nil {
			b.Fatal(err)
		}
		user := address.NewKeyFromSeed(int64(i), 1)
		merchant := address.NewKeyFromSeed(int64(i), 2)
		funding, err := net.Nodes[1].Mine(script.PayToAddr(user.Address()))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.Nodes[1].Mine(script.PayToAddr(user.Address())); err != nil {
			b.Fatal(err)
		}
		subsidy := funding.Txs[0].Outputs[0].Value
		tx := &chain.Tx{
			Version: 1,
			Inputs:  []chain.TxIn{{Prev: chain.OutPoint{TxID: funding.Txs[0].TxID(), Index: 0}, Sequence: ^uint32(0)}},
			Outputs: []chain.TxOut{
				{Value: chain.BTC(0.7), PkScript: script.PayToAddr(merchant.Address())},
				{Value: subsidy - chain.BTC(0.701), PkScript: script.PayToAddr(user.Address())},
			},
		}
		sig := user.Sign(chain.SigHash(tx, 0))
		tx.Inputs[0].SigScript = script.SigScript(sig, user.PubKey())
		if !net.WaitHeight(1, 5*time.Second) {
			b.Fatal("funding blocks did not propagate")
		}
		if err := net.Nodes[0].SubmitTx(tx); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for net.Nodes[1].MempoolSize() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if _, err := net.Nodes[1].Mine(script.PayToAddr(user.Address())); err != nil {
			b.Fatal(err)
		}
		if !net.WaitHeight(2, 5*time.Second) {
			b.Fatal("no convergence")
		}
		net.Close()
	}
}

// BenchmarkHeuristic1 regenerates the Section 4.1 clustering, sequentially
// and with the sharded union-find scan.
func BenchmarkHeuristic1(b *testing.B) {
	p := benchPipeline(b)
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var stats cluster.Stats
			for i := 0; i < b.N; i++ {
				c := cluster.Heuristic1(p.Graph, workers)
				stats = c.ComputeStats()
			}
			b.ReportMetric(float64(stats.SpenderClusters), "clusters")
			b.ReportMetric(float64(stats.MaxUsers), "max-users")
		}
	}
	b.Run("seq", run(1))
	b.Run("par", run(0))
}

// BenchmarkHeuristic2Naive regenerates the unrefined change classifier (the
// 13%-FP first attempt).
func BenchmarkHeuristic2Naive(b *testing.B) {
	p := benchPipeline(b)
	b.ReportAllocs()
	var st cluster.ChangeStats
	for i := 0; i < b.N; i++ {
		_, st = cluster.FindChangeOutputs(p.Graph, cluster.Unrefined())
	}
	b.ReportMetric(st.FPRate()*100, "fp-pct")
}

// BenchmarkHeuristic2Refined regenerates the final refined classifier used
// for all Section 5 analysis.
func BenchmarkHeuristic2Refined(b *testing.B) {
	p := benchPipeline(b)
	b.ReportAllocs()
	var st cluster.ChangeStats
	for i := 0; i < b.N; i++ {
		_, st = cluster.FindChangeOutputs(p.Graph, cluster.Refined(p.Dice, p.WaitWeek()))
	}
	b.ReportMetric(st.FPRate()*100, "fp-pct")
	b.ReportMetric(float64(st.Labeled), "labeled")
}

// BenchmarkChangeClassifier compares the sequential Heuristic 2 temporal
// replay against the sharded scan at 4 workers, for both the unrefined and
// the fully refined configuration. The determinism suite proves the two
// paths byte-identical; on multi-core machines the sharded scan wins by
// roughly the worker count (the scan is embarrassingly parallel once the
// as-of-time state is precomputed), while on a single core it degrades to
// the replay plus the per-query binary searches.
func BenchmarkChangeClassifier(b *testing.B) {
	p := benchPipeline(b)
	configs := []struct {
		name string
		cfg  cluster.ChangeConfig
	}{
		{"unrefined", cluster.Unrefined()},
		{"refined", cluster.Refined(p.Dice, p.WaitWeek())},
	}
	for _, tc := range configs {
		tc := tc
		run := func(workers int) func(*testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				var st cluster.ChangeStats
				for i := 0; i < b.N; i++ {
					_, st = cluster.FindChangeOutputsWorkers(p.Graph, tc.cfg, workers)
				}
				b.ReportMetric(float64(st.Labeled), "labeled")
			}
		}
		b.Run(tc.name+"/seq", run(1))
		b.Run(tc.name+"/par4", run(4))
	}
}

// BenchmarkH2FullLadder regenerates the entire refinement ladder, the
// quantity grid behind Section 4.2.
func BenchmarkH2FullLadder(b *testing.B) {
	p := benchPipeline(b)
	for i := 0; i < b.N; i++ {
		if _, r, err := p.Heuristic2(); err != nil || len(r.Ladder) != 5 {
			b.Fatal("ladder incomplete")
		}
	}
}

// BenchmarkFigure2 regenerates the category balance time series.
func BenchmarkFigure2(b *testing.B) {
	p := benchPipeline(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		balance.Compute(p.Graph, p.Refined, p.Naming, p.World.Chain.Params(), 12)
	}
}

// BenchmarkTable2 regenerates the dissolution tracking: three peeling
// chains followed via Heuristic 2 change links.
func BenchmarkTable2(b *testing.B) {
	p := benchPipeline(b)
	linker := flow.NewLabelLinker(p.Refined.ChangeLabels)
	namer := flow.NamingAdapter{Clusters: p.Refined, Naming: p.Naming}
	d := p.World.Dissolution
	var hops int
	for i := 0; i < b.N; i++ {
		hops = 0
		for ci := 0; ci < 3; ci++ {
			res := flow.FollowPeelingChain(p.Graph, d.ChainStarts[ci], p.World.Config.PeelHops, linker, namer)
			hops += res.Hops
		}
	}
	b.ReportMetric(float64(hops), "hops")
}

// BenchmarkTable3 regenerates the theft tracking table.
func BenchmarkTable3(b *testing.B) {
	p := benchPipeline(b)
	namer := flow.NamingAdapter{Clusters: p.Refined, Naming: p.Naming}
	var reached int
	for i := 0; i < b.N; i++ {
		reached = 0
		for _, theft := range p.World.Thefts {
			rep := flow.TrackTheft(p.Graph, theft.TheftOutputs, namer, 400)
			if len(rep.ReachedExchanges) > 0 {
				reached++
			}
		}
	}
	b.ReportMetric(float64(reached), "thefts-at-exchanges")
}

// BenchmarkNameClusters measures tag propagation over the refined clusters.
func BenchmarkNameClusters(b *testing.B) {
	p := benchPipeline(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tags.NameClusters(p.Refined, p.Graph, p.Tags)
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationPeelLinker compares the Heuristic 2 label linker against
// the cluster-membership linker for chain following.
func BenchmarkAblationPeelLinker(b *testing.B) {
	p := benchPipeline(b)
	d := p.World.Dissolution
	b.Run("labels", func(b *testing.B) {
		linker := flow.NewLabelLinker(p.Refined.ChangeLabels)
		for i := 0; i < b.N; i++ {
			flow.FollowPeelingChain(p.Graph, d.ChainStarts[0], p.World.Config.PeelHops, linker, nil)
		}
	})
	b.Run("clusters", func(b *testing.B) {
		linker := &flow.ClusterLinker{Clusters: p.Refined}
		for i := 0; i < b.N; i++ {
			flow.FollowPeelingChain(p.Graph, d.ChainStarts[0], p.World.Config.PeelHops, linker, nil)
		}
	})
}

// BenchmarkAblationDiceSet compares the tag-bootstrapped dice set against
// the ground-truth oracle set.
func BenchmarkAblationDiceSet(b *testing.B) {
	p := benchPipeline(b)
	oracle := p.World.GroundTruthDiceIDs(p.Graph)
	b.Run("bootstrapped", func(b *testing.B) {
		var st cluster.ChangeStats
		for i := 0; i < b.N; i++ {
			_, st = cluster.FindChangeOutputs(p.Graph, cluster.WithDice(p.Dice))
		}
		b.ReportMetric(st.FPRate()*100, "fp-pct")
	})
	b.Run("oracle", func(b *testing.B) {
		var st cluster.ChangeStats
		for i := 0; i < b.N; i++ {
			_, st = cluster.FindChangeOutputs(p.Graph, cluster.WithDice(oracle))
		}
		b.ReportMetric(st.FPRate()*100, "fp-pct")
	})
}

// BenchmarkAblationGuards isolates the cost and yield of the super-cluster
// guards relative to wait-only refinement.
func BenchmarkAblationGuards(b *testing.B) {
	p := benchPipeline(b)
	cfgs := map[string]cluster.ChangeConfig{
		"wait-only":   {Dice: p.Dice, ExemptDice: true, WaitBlocks: p.WaitWeek()},
		"with-guards": cluster.Refined(p.Dice, p.WaitWeek()),
	}
	for name, cfg := range cfgs {
		cfg := cfg
		b.Run(name, func(b *testing.B) {
			var st cluster.ChangeStats
			for i := 0; i < b.N; i++ {
				_, st = cluster.FindChangeOutputs(p.Graph, cfg)
			}
			b.ReportMetric(float64(st.Labeled), "labeled")
		})
	}
}

// BenchmarkUnionFind measures the disjoint-set core at clustering scale.
func BenchmarkUnionFind(b *testing.B) {
	p := benchPipeline(b)
	n := p.Graph.NumAddrs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := cluster.NewUnionFind(n)
		for j := 0; j+1 < n; j += 2 {
			u.Union(uint32(j), uint32(j+1))
		}
		if u.Sets() == n {
			b.Fatal("no merges")
		}
	}
}

// BenchmarkWireRoundTrip measures tx serialization through the p2p framing.
func BenchmarkWireRoundTrip(b *testing.B) {
	p := benchPipeline(b)
	blk := p.World.Chain.BlockAt(p.World.Chain.Height() / 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, tx := range blk.Txs {
			_ = tx.TxID()
		}
	}
}

// BenchmarkIncrementalApply measures the serve daemon's per-block ingest
// path: one full chain applied block by block to a fresh Ingester — graph
// append, Heuristic 1 unions, balance deltas — without publishing. The
// blocks/op metric makes the per-block cost readable off the ns/op.
func BenchmarkIncrementalApply(b *testing.B) {
	p := benchPipeline(b)
	an := analysisFromWorld(p.World, 2)
	blocks := p.World.Chain.Blocks()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ing := serve.NewIngester(an)
		for _, blk := range blocks {
			if err := ing.ApplyBlock(blk); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(blocks)), "blocks/op")
}

// BenchmarkIncrementalPublish measures one snapshot publication at full
// chain height: the appearance-index flatten plus the non-monotone
// recompute (refined Heuristic 2, naming, dice bootstrap) that each epoch
// pays instead of a whole batch rebuild.
func BenchmarkIncrementalPublish(b *testing.B) {
	p := benchPipeline(b)
	ing := serve.NewIngester(analysisFromWorld(p.World, 2))
	for _, blk := range p.World.Chain.Blocks() {
		if err := ing.ApplyBlock(blk); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := ing.Publish(); s.Height != p.World.Chain.Height() {
			b.Fatalf("published height %d", s.Height)
		}
	}
}

// BenchmarkSnapshotQuery measures the read path queries pay per request:
// the direct snapshot lookups (address resolve, cluster label and size,
// balance) and the same query through the full HTTP handler with JSON
// encoding.
func BenchmarkSnapshotQuery(b *testing.B) {
	p := benchPipeline(b)
	ing := serve.NewIngester(analysisFromWorld(p.World, 2))
	for _, blk := range p.World.Chain.Blocks() {
		if err := ing.ApplyBlock(blk); err != nil {
			b.Fatal(err)
		}
	}
	snap := ing.Publish()
	addrs := make([]address.Address, 256)
	for i := range addrs {
		addrs[i] = snap.Addr(txgraph.AddrID(i * snap.NumAddrs / len(addrs)))
	}

	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := addrs[i%len(addrs)]
			id, ok := snap.Lookup(a)
			if !ok {
				b.Fatalf("address %s missing", a)
			}
			label := snap.Refined.ClusterOf(id)
			if snap.Refined.ClusterSizes()[label] < 1 {
				b.Fatal("empty cluster")
			}
			_ = snap.Balance(id)
		}
	})
	b.Run("http", func(b *testing.B) {
		srv := httptest.NewServer(serve.NewAPI(ing).Handler())
		defer srv.Close()
		client := srv.Client()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Get(srv.URL + "/v1/cluster?addr=" + addrs[i%len(addrs)].String())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
}
