package fistful

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocLinks is the docs gate CI runs: every relative link in README.md and
// the docs/ tree must point at a file that exists, and every fragment link
// (`file.md#anchor` or `#anchor`) must match a heading in the target file
// under GitHub's anchor-slug rules. External http(s) links are not fetched —
// this test guards the repo's own structure, not the internet.
func TestDocLinks(t *testing.T) {
	files := []string{"README.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatalf("read docs/: %v", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	if len(files) < 2 {
		t.Fatalf("expected README.md plus a docs/ tree, found only %v", files)
	}

	// First pass: collect each file's heading anchors.
	anchors := map[string]map[string]bool{}
	contents := map[string]string{}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		contents[f] = string(raw)
		anchors[f] = headingAnchors(string(raw))
	}

	linkRe := regexp.MustCompile(`\]\(([^()\s]+)\)`)
	for _, f := range files {
		for _, m := range linkRe.FindAllStringSubmatch(contents[f], -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			resolved := f
			if path != "" {
				resolved = filepath.Join(filepath.Dir(f), path)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", f, target, err)
					continue
				}
			}
			if frag == "" {
				continue
			}
			set, ok := anchors[resolved]
			if !ok {
				// Fragment into a file outside the checked set (e.g. source
				// code); existence was verified above, anchors are not.
				continue
			}
			if !set[frag] {
				t.Errorf("%s: link %q: no heading in %s slugs to #%s", f, target, resolved, frag)
			}
		}
	}
}

// headingAnchors extracts the GitHub anchor slugs of a markdown file's
// headings: lowercase, backticks and other punctuation stripped, spaces
// replaced by hyphens. Fenced code blocks are skipped so a commented `#` in
// a shell snippet is not mistaken for a heading.
func headingAnchors(src string) map[string]bool {
	out := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if !strings.HasPrefix(text, " ") {
			continue // not a heading (e.g. "#!/bin/sh" outside a fence)
		}
		out[slugify(strings.TrimSpace(text))] = true
	}
	return out
}

// slugify mirrors GitHub's heading-to-anchor transformation closely enough
// for this repo's docs: lowercase; keep letters, digits, spaces, hyphens and
// underscores; drop everything else; then turn each space into a hyphen.
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
