package fistful

import (
	"context"
	"fmt"
	"net/http"

	"repro/internal/econ"
	"repro/internal/par"
	"repro/internal/serve"
	"repro/internal/tags"
)

// ServeOptions configures a Server. The embedded Options selects the chain
// source and the worker budget exactly as for a batch pipeline; every
// source is accepted, including SourceNode.
type ServeOptions struct {
	Options

	// PublishEvery caps how many blocks a snapshot may lag while the daemon
	// is catching up through a backlog; at the tip it publishes after every
	// block. <= 0 means serve.DefaultPublishEvery.
	PublishEvery int

	// CheckpointDir, when non-empty, makes the daemon restartable: every
	// published epoch is checkpointed there (see docs/FORMATS.md for the file
	// format), startup resumes from the newest checkpoint instead of
	// replaying the whole chain, and reorg rollbacks restore from the
	// nearest checkpoint below the fork. A present-but-corrupt checkpoint is
	// a startup error, not a silent cold start; delete the file to rebuild
	// (see docs/OPERATIONS.md).
	CheckpointDir string

	// CheckpointKeep is how many newest checkpoints to retain; <= 0 means
	// serve.DefaultCheckpointKeep.
	CheckpointKeep int

	// Retry supervises transient feed and apply errors: bounded exponential
	// backoff, a degraded state past the failure budget, recovery on the
	// next applied block. The zero value means the serve package defaults;
	// Retry.Max < 0 disables supervision (any transient error is fatal).
	Retry serve.RetryPolicy
}

// Server is the `fistful serve` daemon: it tails the selected chain source,
// applies each block incrementally to the transaction graph, the
// Heuristic 1 forest, and the balance vector, and publishes immutable
// snapshots that the HTTP API answers from. A snapshot published at height
// H answers every query identically to a batch pipeline built over the same
// prefix.
type Server struct {
	daemon *serve.Daemon
	api    *serve.API
}

// NewServer builds a Server from the source the options select:
//
//   - SourceGenerate / SourceGenerateToFile: generate the economy first,
//     then serve its chain (the file source additionally writes the framed
//     file); the daemon reaches the tip and parks, so this is demo mode.
//   - SourceWorld: serve an existing world's resident chain.
//   - SourceChainFile / SourceWorldChainFile: tail the framed chain file —
//     following appends live, so a generator may still be writing it. With
//     a bare chain-file source the ground-truth analytics (tags, dice set,
//     wait window) come from regenerating the world from cfg.
//   - SourceNode: follow a live p2p node's validated chain. No world means
//     no tags: clusters stay unnamed and the refined classifier runs with
//     an empty dice set and a default one-week wait window.
//
// Generation respects ctx; the returned Server does nothing until Run.
func NewServer(ctx context.Context, cfg Config, opts ServeOptions) (*Server, error) {
	src := opts.resolveSource()
	cfg = applyWorkerBudget(cfg, opts.Options)
	workers := par.Workers(opts.Parallelism)

	var (
		w    *econ.World
		err  error
		feed serve.BlockFeed
	)
	switch src.kind {
	case srcGenerate:
		w, err = econ.GenerateCtx(ctx, cfg)
	case srcGenerateToFile:
		w, err = econ.GenerateToFileCtx(ctx, cfg, src.chainFile)
	case srcChainFile:
		w, err = econ.GenerateCtx(ctx, cfg)
	case srcWorld, srcWorldChainFile:
		w = src.world
	case srcNode:
		// Live chain, no ground truth: serve with an empty tag store and
		// the default wait window.
	}
	if err != nil {
		return nil, fmt.Errorf("fistful: generate: %w", err)
	}

	an := serve.Analysis{Workers: workers, WaitBlocks: defaultWaitBlocks}
	if w != nil {
		an = analysisFromWorld(w, workers)
	}

	var ck *serve.CheckpointStore
	ing := serve.NewIngester(an)
	if opts.CheckpointDir != "" {
		ck, err = serve.NewCheckpointStore(opts.CheckpointDir, opts.CheckpointKeep)
		if err != nil {
			return nil, fmt.Errorf("fistful: %w", err)
		}
		restored, ok, err := ck.LoadLatest(an)
		if err != nil {
			return nil, fmt.Errorf("fistful: %w", err)
		}
		if ok {
			ing = restored
		}
	}

	switch src.kind {
	case srcGenerate, srcGenerateToFile, srcWorld:
		feed = serve.NewSourceFeed(w.Chain.Source())
	case srcChainFile, srcWorldChainFile:
		feed, err = serve.OpenTailFeed(src.chainFile)
		if err != nil {
			return nil, fmt.Errorf("fistful: open chain file: %w", err)
		}
	case srcNode:
		feed = serve.NewNodeFeed(src.node)
	}

	daemon := serve.NewDaemonOpts(ing, feed, serve.DaemonOptions{
		PublishEvery: opts.PublishEvery,
		Checkpoints:  ck,
		Retry:        opts.Retry,
	})
	return &Server{
		daemon: daemon,
		api:    serve.NewDaemonAPI(daemon),
	}, nil
}

// defaultWaitBlocks is the refined classifier's wait window when no world
// supplies BlocksPerDay: one week at Bitcoin's nominal 144 blocks/day.
const defaultWaitBlocks = 7 * 144

// buildTagStore combines the researcher's own-transaction tags with the
// public (tag-site and forum) tags, as the study did. The batch pipeline and
// the serve daemon both construct their store here, so the two paths name
// clusters from identical inputs.
func buildTagStore(w *econ.World) *tags.Store {
	store := tags.NewStore()
	store.AddAll(w.Tags.All())
	store.AddAll(w.PublicTags)
	return store
}

// analysisFromWorld derives the serve-side analytic configuration from a
// world the same way pipelineFromGraph configures the batch refined branch:
// researcher plus public tags, the tagged dice services, a one-week wait.
func analysisFromWorld(w *econ.World, workers int) serve.Analysis {
	return serve.Analysis{
		Tags:       buildTagStore(w),
		DiceNames:  w.DiceServiceNames(),
		WaitBlocks: 7 * w.BlocksPerDay,
		Workers:    workers,
	}
}

// Run ingests until ctx is cancelled; see serve.Daemon.Run. It owns the
// feed and closes it on return.
func (s *Server) Run(ctx context.Context) error { return s.daemon.Run(ctx) }

// Handler returns the query API routes; see serve.API.Handler.
func (s *Server) Handler() http.Handler { return s.api.Handler() }

// HTTPServer returns a hardened http.Server for the query API: panic
// recovery, in-flight load shedding, and connection deadlines, all at the
// serve package defaults (see serve.NewHTTPServer). The caller owns its
// lifecycle.
func (s *Server) HTTPServer(addr string) *http.Server {
	return serve.NewHTTPServer(addr, s.Handler(), serve.HTTPOptions{})
}

// Health returns the daemon's supervision state — what /v1/readyz reports;
// safe from any goroutine.
func (s *Server) Health() serve.Health { return s.daemon.Health() }

// Snapshot returns the latest published snapshot; safe from any goroutine.
func (s *Server) Snapshot() *serve.Snapshot { return s.daemon.Snapshot() }
