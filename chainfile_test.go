package fistful

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chain"
	"repro/internal/econ"
)

// writeSmallChainFile generates the small economy's chain into a temp file
// once per test and returns its path (the file is mutated by the corruption
// tests, so each caller gets its own copy).
func writeSmallChainFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "chain.bin")
	if _, err := econ.GenerateToFile(SmallConfig(), path); err != nil {
		t.Fatal(err)
	}
	return path
}

// A chain file cut off mid-frame must fail the pipeline with the wrapped
// truncation error from chain.Reader — not a zero-result run, and not a
// generic parse failure.
func TestPipelineFromChainFileTruncated(t *testing.T) {
	path := writeSmallChainFile(t)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < 128 {
		t.Fatalf("chain file implausibly small: %d bytes", info.Size())
	}
	if err := os.Truncate(path, info.Size()-11); err != nil {
		t.Fatal(err)
	}
	_, err = NewPipelineFromChainFile(SmallConfig(), path, Options{})
	if err == nil {
		t.Fatal("truncated chain file produced a pipeline")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("error does not wrap io.ErrUnexpectedEOF: %v", err)
	}
	if !strings.Contains(err.Error(), "truncated frame") {
		t.Fatalf("error does not name the truncated frame: %v", err)
	}
}

// A corrupted frame length prefix (larger than the format bound) must fail
// with the corrupt-length error, naming the failing block, instead of
// attempting a giant read.
func TestPipelineFromChainFileCorruptLength(t *testing.T) {
	path := writeSmallChainFile(t)
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the first frame's length prefix (right after the 4-byte
	// magic header) with an impossible value.
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, 4); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = NewPipelineFromChainFile(SmallConfig(), path, Options{})
	if err == nil {
		t.Fatal("corrupt length prefix produced a pipeline")
	}
	if !strings.Contains(err.Error(), "corrupt length prefix") {
		t.Fatalf("error does not flag the corrupt length prefix: %v", err)
	}
}

// A file that is not a framed chain at all must fail with chain.ErrBadMagic.
func TestPipelineFromChainFileBadMagic(t *testing.T) {
	path := writeSmallChainFile(t)
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{'X'}, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPipelineFromChainFile(SmallConfig(), path, Options{}); !errors.Is(err, chain.ErrBadMagic) {
		t.Fatalf("error is not chain.ErrBadMagic: %v", err)
	}
}

// A missing file must fail at open, wrapping the fs error.
func TestPipelineFromChainFileMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.bin")
	if _, err := NewPipelineFromChainFile(SmallConfig(), path, Options{}); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("error is not fs.ErrNotExist: %v", err)
	}
}

// The happy path: an intact file from a previous generate run yields the
// same measurement results as the in-memory pipeline.
func TestPipelineFromChainFileMatchesInMemory(t *testing.T) {
	path := writeSmallChainFile(t)
	fromFile, err := NewPipelineFromChainFile(SmallConfig(), path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem := smallPipeline(t)
	if fromFile.Graph.NumTxs() != mem.Graph.NumTxs() || fromFile.Graph.NumAddrs() != mem.Graph.NumAddrs() {
		t.Fatalf("graph differs: %d txs/%d addrs vs %d/%d", fromFile.Graph.NumTxs(),
			fromFile.Graph.NumAddrs(), mem.Graph.NumTxs(), mem.Graph.NumAddrs())
	}
	if fromFile.Refined.ChangeStats != mem.Refined.ChangeStats {
		t.Fatalf("refined change stats differ:\nfile: %+v\nmem:  %+v",
			fromFile.Refined.ChangeStats, mem.Refined.ChangeStats)
	}
}
