package fistful_test

import (
	"context"
	"fmt"
	"log"
	"net/http"

	fistful "repro"
)

// ExampleNew builds the batch measurement pipeline: generate a synthetic
// economy, index the chain, and run both clustering heuristics. The same
// constructor serves every chain source; see the Source constructors.
func ExampleNew() {
	ctx := context.Background()
	p, err := fistful.New(ctx, fistful.SmallConfig(), fistful.Options{Parallelism: 0})
	if err != nil {
		log.Fatal(err)
	}
	tbl, _, err := p.Heuristic2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tbl.Render())
}

// ExampleNew_chainFile streams an existing framed chain file (a previous
// `fistful generate -out` run) instead of holding the chain in memory; the
// ground truth is regenerated from the same configuration.
func ExampleNew_chainFile() {
	ctx := context.Background()
	p, err := fistful.New(ctx, fistful.SmallConfig(), fistful.Options{
		Source: fistful.SourceChainFile("chain.bin"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Graph.NumTxs(), "transactions indexed")
}

// ExampleNewServer runs the incremental ingestion daemon: tail the chain
// file as a generator appends to it, publish a snapshot per epoch, and
// answer queries over HTTP without ever blocking ingestion.
func ExampleNewServer() {
	ctx := context.Background()
	srv, err := fistful.NewServer(ctx, fistful.SmallConfig(), fistful.ServeOptions{
		Options: fistful.Options{Source: fistful.SourceChainFile("chain.bin")},
	})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Run(ctx); err != nil {
			log.Fatal(err)
		}
	}()
	log.Fatal(http.ListenAndServe("127.0.0.1:8080", srv.Handler()))
}
