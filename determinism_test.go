package fistful

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/econ"
	"repro/internal/txgraph"
)

// The concurrency contract of the whole pipeline: any Parallelism setting
// produces byte-identical results to the fully sequential path — same graph,
// same Heuristic 1/2 labels, same stats, same change labels. Run under
// -race this also shakes out unsynchronized sharing between the fanned-out
// stages. Exercised at SmallConfig scale and at a larger configuration.
func TestPipelineParallelismInvariant(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"small", SmallConfig()},
		{"larger", largerConfig()},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, err := econ.Generate(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := NewPipelineFromWorldOpts(w, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, parallelism := range []int{0, 3} {
				par, err := NewPipelineFromWorldOpts(w, Options{Parallelism: parallelism})
				if err != nil {
					t.Fatalf("parallelism=%d: %v", parallelism, err)
				}
				comparePipelines(t, parallelism, seq, par)
			}
		})
	}
}

// TestPipelineStreamingInvariant is the disk-backed counterpart of the
// parallelism invariant: a pipeline that streams its graph from a framed
// chain file (Options.ChainFile) produces byte-identical labels, cluster
// stats, change labels, naming, and owners to the in-memory sequential
// path, at two scales and for sequential and parallel streaming builds.
func TestPipelineStreamingInvariant(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"small", SmallConfig()},
		{"larger", largerConfig()},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "chain.bin")
			w, err := econ.GenerateToFile(tc.cfg, path)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := NewPipelineFromWorldOpts(w, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, parallelism := range []int{1, 0} {
				streamed, err := NewPipelineFromWorldOpts(w, Options{Parallelism: parallelism, ChainFile: path})
				if err != nil {
					t.Fatalf("parallelism=%d: %v", parallelism, err)
				}
				comparePipelines(t, parallelism, seq, streamed)
			}
		})
	}
}

// TestPipelineChainFileMismatch proves streaming mode rejects a chain file
// that does not hold the world's chain instead of silently desynchronizing.
func TestPipelineChainFileMismatch(t *testing.T) {
	cfg := SmallConfig()
	path := filepath.Join(t.TempDir(), "chain.bin")
	other := cfg
	other.Seed = cfg.Seed + 1
	if _, err := econ.GenerateToFile(other, path); err != nil {
		t.Fatal(err)
	}
	w, err := econ.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPipelineFromWorldOpts(w, Options{ChainFile: path}); err == nil {
		t.Fatal("mismatched chain file accepted")
	}
}

// largerConfig scales the small economy up enough that the parallel shards
// and pre-pass chunks all hold multiple blocks of work.
func largerConfig() Config {
	cfg := SmallConfig()
	cfg.Blocks = cfg.Blocks * 2
	cfg.Users = cfg.Users * 2
	return cfg
}

func comparePipelines(t *testing.T, parallelism int, seq, par *Pipeline) {
	t.Helper()
	if par.Graph.NumTxs() != seq.Graph.NumTxs() || par.Graph.NumAddrs() != seq.Graph.NumAddrs() {
		t.Fatalf("parallelism=%d: graph %d txs/%d addrs, sequential %d/%d", parallelism,
			par.Graph.NumTxs(), par.Graph.NumAddrs(), seq.Graph.NumTxs(), seq.Graph.NumAddrs())
	}
	clusterings := []struct {
		name     string
		seq, par *cluster.Clustering
	}{
		{"H1", seq.H1, par.H1},
		{"Naive", seq.Naive, par.Naive},
		{"Refined", seq.Refined, par.Refined},
	}
	for _, c := range clusterings {
		if c.par.NumClusters() != c.seq.NumClusters() {
			t.Fatalf("parallelism=%d: %s clusters %d, sequential %d", parallelism,
				c.name, c.par.NumClusters(), c.seq.NumClusters())
		}
		for id := 0; id < seq.Graph.NumAddrs(); id++ {
			if c.par.ClusterOf(txgraph.AddrID(id)) != c.seq.ClusterOf(txgraph.AddrID(id)) {
				t.Fatalf("parallelism=%d: %s label of addr %d differs", parallelism, c.name, id)
			}
		}
		if c.par.ComputeStats() != c.seq.ComputeStats() {
			t.Fatalf("parallelism=%d: %s stats differ:\nseq: %+v\npar: %+v", parallelism,
				c.name, c.seq.ComputeStats(), c.par.ComputeStats())
		}
		if !reflect.DeepEqual(c.par.ChangeLabels, c.seq.ChangeLabels) {
			t.Fatalf("parallelism=%d: %s change labels differ", parallelism, c.name)
		}
		if c.par.ChangeStats != c.seq.ChangeStats {
			t.Fatalf("parallelism=%d: %s change stats differ", parallelism, c.name)
		}
	}
	if par.Naming.NamedClusters != seq.Naming.NamedClusters ||
		par.Naming.NamedAddresses != seq.Naming.NamedAddresses ||
		par.Naming.Amplification != seq.Naming.Amplification {
		t.Fatalf("parallelism=%d: naming differs", parallelism)
	}
	if !reflect.DeepEqual(par.Owners, seq.Owners) {
		t.Fatalf("parallelism=%d: owners differ", parallelism)
	}
	if len(par.Dice) != len(seq.Dice) {
		t.Fatalf("parallelism=%d: dice set %d addrs, sequential %d", parallelism,
			len(par.Dice), len(seq.Dice))
	}
}
